// Quickstart: declare a hierarchical decomposition, run a few
// transactions under the HDD controller, and audit serializability.
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "graph/dhg.h"
#include "hdd/hdd_controller.h"
#include "storage/database.h"
#include "txn/dependency_graph.h"

int main() {
  using namespace hdd;

  // 1. Describe the application: two segments. "events" is written by
  //    type `log`, "summary" is written by type `post` which also reads
  //    events. The induced DHG (summary -> events) is a transitive
  //    semi-tree, so the decomposition is legal.
  PartitionSpec spec;
  spec.segment_names = {"events", "summary"};
  spec.transaction_types = {
      {"log", /*root=*/0, /*reads=*/{}},
      {"post", /*root=*/1, /*reads=*/{0}},
  };
  auto schema = HierarchySchema::Create(spec);
  if (!schema.ok()) {
    std::cerr << "illegal decomposition: " << schema.status() << "\n";
    return 1;
  }

  // 2. Build a database (1 granule per segment here) and the controller.
  Database db({"events", "summary"}, /*granules_per_segment=*/1);
  LogicalClock clock;
  HddController cc(&db, &clock, &*schema);

  // 3. An event logger (class 0) and a summarizer (class 1), interleaved.
  auto logger = cc.Begin({.txn_class = 0});
  auto summarizer = cc.Begin({.txn_class = 1});

  // The logger records an event but has not committed yet...
  (void)cc.Write(*logger, {0, 0}, 42);

  // ...so the summarizer's *unregistered* Protocol A read is steered to
  // the consistent pre-logger state: no lock, no timestamp, no waiting.
  auto seen = cc.Read(*summarizer, {0, 0});
  std::cout << "summarizer saw events=" << *seen
            << " (logger still in flight)\n";
  (void)cc.Write(*summarizer, {1, 0}, *seen);
  (void)cc.Commit(*summarizer);
  (void)cc.Commit(*logger);

  // A later summarizer sees the committed event.
  auto late = cc.Begin({.txn_class = 1});
  std::cout << "later summarizer saw events=" << *cc.Read(*late, {0, 0})
            << "\n";
  (void)cc.Commit(*late);

  // 4. Audit: the recorded schedule must be serializable, and the
  //    cross-segment reads must have been free of registration.
  auto report = CheckSerializability(cc.recorder());
  std::cout << "serializable: " << (report.serializable ? "yes" : "NO")
            << "\n";
  std::cout << "equivalent serial order:";
  for (TxnId t : report.serial_order) std::cout << " t" << t;
  std::cout << "\nread locks taken: "
            << cc.metrics().read_locks_acquired.load()
            << ", unregistered reads: "
            << cc.metrics().unregistered_reads.load() << "\n";
  return report.serializable ? 0 : 1;
}
