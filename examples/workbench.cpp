// Interactive experiment driver: pick a workload, a controller set, and a
// size from the command line, get the comparison table, the
// serializability audit and the modeled §7.4 costs.
//
// Usage:
//   workbench [--workload inventory|synthetic|banking|ledger]
//             [--txns N] [--threads N] [--depth N] [--items N]
//             [--yield] [--csv] [--controllers hdd,2pl,to,...]
//             [--reg-cost US]
//
// Examples:
//   ./build/examples/workbench --workload inventory --txns 5000
//   ./build/examples/workbench --workload synthetic --depth 6 --yield
//   ./build/examples/workbench --controllers hdd,sdd1 --reg-cost 25

#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "engine/banking_workload.h"
#include "engine/cost_model.h"
#include "engine/harness.h"
#include "engine/inventory_workload.h"
#include "engine/ledger_workload.h"
#include "engine/synthetic_workload.h"
#include "txn/dependency_graph.h"

namespace {

using namespace hdd;

struct Args {
  std::string workload = "inventory";
  std::uint64_t txns = 2000;
  int threads = 4;
  int depth = 4;
  std::uint32_t items = 16;
  bool yield = false;
  bool csv = false;
  double reg_cost = 2.0;
  std::vector<std::string> controllers;  // empty = all
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--workload") {
      const char* v = next();
      if (!v) return false;
      args->workload = v;
    } else if (flag == "--txns") {
      const char* v = next();
      if (!v) return false;
      args->txns = std::strtoull(v, nullptr, 10);
    } else if (flag == "--threads") {
      const char* v = next();
      if (!v) return false;
      args->threads = std::atoi(v);
    } else if (flag == "--depth") {
      const char* v = next();
      if (!v) return false;
      args->depth = std::atoi(v);
    } else if (flag == "--items") {
      const char* v = next();
      if (!v) return false;
      args->items = static_cast<std::uint32_t>(std::atoi(v));
    } else if (flag == "--yield") {
      args->yield = true;
    } else if (flag == "--csv") {
      args->csv = true;
    } else if (flag == "--reg-cost") {
      const char* v = next();
      if (!v) return false;
      args->reg_cost = std::atof(v);
    } else if (flag == "--controllers") {
      const char* v = next();
      if (!v) return false;
      std::stringstream ss(v);
      std::string token;
      while (std::getline(ss, token, ',')) {
        args->controllers.push_back(token);
      }
    } else if (flag == "--help" || flag == "-h") {
      return false;
    } else {
      std::cerr << "unknown flag: " << flag << "\n";
      return false;
    }
  }
  return true;
}

int RunWorkbench(const Args& args) {
  // Assemble workload + schema + database factory.
  std::unique_ptr<Workload> workload;
  std::function<std::unique_ptr<Database>()> make_db;
  PartitionSpec spec;
  if (args.workload == "inventory") {
    InventoryWorkloadParams params;
    params.items = args.items;
    params.yield_between_ops = args.yield;
    auto w = std::make_unique<InventoryWorkload>(params);
    spec = InventoryWorkload::Spec();
    make_db = [w = w.get()] { return w->MakeDatabase(); };
    workload = std::move(w);
  } else if (args.workload == "synthetic") {
    SyntheticWorkloadParams params;
    params.depth = args.depth;
    auto w = std::make_unique<SyntheticWorkload>(params);
    spec = w->Spec();
    make_db = [w = w.get()] { return w->MakeDatabase(); };
    workload = std::move(w);
  } else if (args.workload == "banking") {
    BankingWorkloadParams params;
    params.accounts = args.items;
    auto w = std::make_unique<BankingWorkload>(params);
    spec = w->Spec();
    make_db = [w = w.get()] { return w->MakeDatabase(); };
    workload = std::move(w);
  } else if (args.workload == "ledger") {
    LedgerWorkloadParams params;
    params.items = args.items;
    auto w = std::make_unique<LedgerWorkload>(params);
    spec = w->Spec();
    make_db = [w = w.get()] { return w->MakeDatabase(); };
    workload = std::move(w);
  } else {
    std::cerr << "unknown workload: " << args.workload << "\n";
    return 2;
  }

  auto schema = HierarchySchema::Create(spec);
  if (!schema.ok()) {
    std::cerr << "illegal decomposition: " << schema.status() << "\n";
    return 2;
  }

  // Which controllers?
  std::vector<ControllerKind> kinds;
  if (args.controllers.empty()) {
    kinds = AllControllerKinds();
  } else {
    for (const std::string& name : args.controllers) {
      bool found = false;
      for (ControllerKind kind : AllControllerKinds()) {
        if (name == ControllerKindName(kind)) {
          kinds.push_back(kind);
          found = true;
          break;
        }
      }
      if (!found) {
        std::cerr << "unknown controller: " << name << "\n";
        return 2;
      }
    }
  }

  if (!args.csv) {
    std::cout << "workload=" << args.workload << " txns=" << args.txns
              << " threads=" << args.threads << "\n\n";
  }
  ExecutorOptions options;
  options.num_threads = args.threads;
  std::vector<ComparisonRow> rows;
  std::map<std::string, double> modeled;
  for (ControllerKind kind : kinds) {
    auto db = make_db();
    LogicalClock clock;
    auto cc = CreateController(kind, db.get(), &clock, &*schema);
    ComparisonRow row;
    row.controller = std::string(ControllerKindName(kind));
    row.stats = RunWorkload(*cc, *workload, args.txns, options);
    const CcMetrics& m = cc->metrics();
    row.read_locks = m.read_locks_acquired.load();
    row.read_timestamps = m.read_timestamps_written.load();
    row.unregistered_reads = m.unregistered_reads.load();
    row.blocked_reads = m.blocked_reads.load();
    row.blocked_writes = m.blocked_writes.load();
    row.aborts = m.aborts.load();
    row.deadlocks = m.deadlocks.load();
    row.serializable =
        CheckSerializability(cc->recorder()).serializable;
    CostModel model;
    model.registration_us = args.reg_cost;
    modeled[row.controller] =
        EstimateCost(m, row.stats, model).per_commit_us;
    rows.push_back(row);
  }
  if (args.csv) {
    std::cout << "controller,commits,txn_per_s,read_locks,read_stamps,"
                 "unregistered_reads,blocked_reads,blocked_writes,aborts,"
                 "deadlocks,p50_us,p99_us,modeled_us_per_commit,"
                 "serializable\n";
    for (const ComparisonRow& row : rows) {
      std::cout << row.controller << ',' << row.stats.committed << ','
                << static_cast<std::uint64_t>(row.stats.Throughput()) << ','
                << row.read_locks << ',' << row.read_timestamps << ','
                << row.unregistered_reads << ',' << row.blocked_reads << ','
                << row.blocked_writes << ',' << row.aborts << ','
                << row.deadlocks << ',' << row.stats.latency_p50_us << ','
                << row.stats.latency_p99_us << ','
                << modeled[row.controller] << ','
                << (row.serializable ? "yes" : "no") << "\n";
    }
    for (const ComparisonRow& row : rows) {
      if (!row.serializable) return 1;
    }
    return 0;
  }
  PrintComparisonTable(rows, std::cout);

  std::cout << "\nmodeled cost per commit (us) at registration cost "
            << args.reg_cost << "us:\n";
  for (const auto& [name, cost] : modeled) {
    std::cout << "  " << name << ": " << cost << "\n";
  }
  for (const ComparisonRow& row : rows) {
    if (!row.serializable) {
      std::cerr << "\nWARNING: " << row.controller
                << " produced a NON-SERIALIZABLE execution\n";
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    std::cerr
        << "usage: workbench [--workload inventory|synthetic|banking|"
           "ledger] [--txns N] [--threads N] [--depth N] [--items N] "
           "[--yield] [--csv] [--controllers a,b,...] [--reg-cost US]\n";
    return 2;
  }
  return RunWorkbench(args);
}
