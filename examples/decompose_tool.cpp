// Decomposition methodology (paper §7.2): takes raw transaction access
// footprints over granules, clusters them into a legal TST-hierarchical
// partition (§7.2.2), legalizing diamonds by merging (§7.2.1), and then
// demonstrates §7.1.1 dynamic restructuring on a live controller.
//
// Usage: ./build/examples/decompose_tool

#include <iostream>

#include "graph/decomposition.h"
#include "graph/report.h"
#include "hdd/hdd_controller.h"
#include "storage/database.h"

int main() {
  using namespace hdd;

  // Raw footprints: an application whose naive segment graph is a diamond
  // (two derived views over one base, one consumer of both views).
  std::vector<AccessFootprint> types = {
      {{0, 1}, {}},        // base writer (granules 0,1)
      {{2}, {0, 1}},       // view A
      {{3}, {0}},          // view B
      {{4}, {2, 3}},       // consumer of both views -> diamond!
  };
  auto dec = DecomposeFromAccessSets(5, types);
  if (!dec.ok()) {
    std::cerr << dec.status() << "\n";
    return 1;
  }
  std::cout << "granule -> segment:";
  for (std::size_t g = 0; g < dec->granule_segment.size(); ++g) {
    std::cout << " g" << g << "->D" << dec->granule_segment[g];
  }
  std::cout << "\nsegments: " << dec->num_segments
            << " (merges needed to legalize: " << dec->merges << ")\n";
  std::cout << "legal DHG:\n" << dec->dhg.ToDot();

  // Spin up a controller on the inventory-style 4-level chain and then
  // hit it with an ad-hoc transaction type that writes two segments:
  // dynamic restructuring merges the classes without full quiescence.
  PartitionSpec spec;
  spec.segment_names = {"events", "inventory", "orders"};
  spec.transaction_types = {
      {"log", 0, {}},
      {"post", 1, {0}},
      {"reorder", 2, {0, 1}},
  };
  auto schema = HierarchySchema::Create(spec);
  if (!schema.ok()) {
    std::cerr << schema.status() << "\n";
    return 1;
  }
  std::cout << "\n" << DescribeHierarchy(*schema);
  Database db(3, 4);
  LogicalClock clock;
  HddController cc(&db, &clock, &*schema);

  // Normal traffic first.
  auto t = cc.Begin({.txn_class = 1});
  (void)cc.Read(*t, {0, 0});
  (void)cc.Write(*t, {1, 0}, 7);
  (void)cc.Commit(*t);

  std::cout << "\nad-hoc type wants to write BOTH events and inventory —\n"
               "restructuring (paper 7.1.1)...\n";
  auto merged = cc.Restructure({0, 1}, {});
  if (!merged.ok()) {
    std::cerr << merged.status() << "\n";
    return 1;
  }
  std::cout << "events now in class " << cc.ClassOfSegment(0)
            << ", inventory in class " << cc.ClassOfSegment(1) << "\n";

  auto adhoc = cc.Begin({.txn_class = *merged});
  (void)cc.Write(*adhoc, {0, 1}, 1);
  (void)cc.Write(*adhoc, {1, 1}, 2);
  (void)cc.Commit(*adhoc);
  std::cout << "ad-hoc cross-segment writer committed under the merged "
               "class.\n";
  return 0;
}
