// Decomposition methodology (paper §7.2): takes raw transaction access
// footprints over granules, clusters them into a legal TST-hierarchical
// partition (§7.2.2), legalizing diamonds by merging (§7.2.1), and then
// demonstrates §7.1.1 dynamic restructuring on a live controller.
//
// Every decomposition this tool is about to trust — computed or inferred
// — goes through the SAME loud validation pass the inference path uses
// (ValidateDecomposition + ValidateAgainstTrace): semi-tree shape, full
// granule cover, conflict-edge containment. A structure that fails is
// printed and rejected, never demonstrated.
//
// Usage: ./build/examples/decompose_tool           # §7.2 walkthrough
//        ./build/examples/decompose_tool --infer   # trace -> infer ->
//                                                  # validate -> hot-swap
#include <cstring>
#include <iostream>

#include "engine/redecompose.h"
#include "graph/auto_decompose.h"
#include "graph/decomposition.h"
#include "graph/report.h"
#include "hdd/hdd_controller.h"
#include "obs/footprint.h"
#include "storage/database.h"

namespace {

using namespace hdd;

/// The shared loud validation pass: structural invariants plus
/// containment of every traced footprint. Returns false (after printing
/// why) when the decomposition must not be used.
bool ValidateLoudly(const Decomposition& dec, std::uint32_t num_granules,
                    const FootprintTrace& trace, const char* what) {
  if (Status s = ValidateDecomposition(dec, num_granules); !s.ok()) {
    std::cerr << "REJECTED " << what << ": " << s << "\n";
    return false;
  }
  if (Status s = ValidateAgainstTrace(dec, trace); !s.ok()) {
    std::cerr << "REJECTED " << what << ": " << s << "\n";
    return false;
  }
  std::cout << what << ": validated (TST shape, granule cover, "
            << "conflict-edge containment)\n";
  return true;
}

int RunMethodology() {
  // Raw footprints: an application whose naive segment graph is a diamond
  // (two derived views over one base, one consumer of both views).
  std::vector<AccessFootprint> types = {
      {{0, 1}, {}},        // base writer (granules 0,1)
      {{2}, {0, 1}},       // view A
      {{3}, {0}},          // view B
      {{4}, {2, 3}},       // consumer of both views -> diamond!
  };
  FootprintTrace trace;
  for (const AccessFootprint& t : types) {
    trace.Add(t.write_granules, t.read_granules);
  }
  auto dec = DecomposeFromAccessSets(5, types);
  if (!dec.ok()) {
    std::cerr << dec.status() << "\n";
    return 1;
  }
  if (!ValidateLoudly(*dec, 5, trace, "computed decomposition")) return 1;
  std::cout << "granule -> segment:";
  for (std::size_t g = 0; g < dec->granule_segment.size(); ++g) {
    std::cout << " g" << g << "->D" << dec->granule_segment[g];
  }
  std::cout << "\nsegments: " << dec->num_segments
            << " (merges needed to legalize: " << dec->merges << ")\n";
  std::cout << "legal DHG:\n" << dec->dhg.ToDot();

  // What the validation pass is FOR: a hand-tweaked structure that moves
  // one co-written granule to its own segment looks plausible but lies
  // about write ownership — it must be rejected, loudly.
  Decomposition tampered = *dec;
  tampered.granule_segment[1] =
      (tampered.granule_segment[1] + 1) % tampered.num_segments;
  std::cout << "\ntampering: moving granule 1 out of its co-write "
               "segment...\n";
  if (ValidateLoudly(tampered, 5, trace, "tampered decomposition")) {
    std::cerr << "BUG: validation accepted a mis-classified granule\n";
    return 1;
  }

  // Spin up a controller on the inventory-style chain and then hit it
  // with an ad-hoc transaction type that writes two segments: dynamic
  // restructuring merges the classes without full quiescence.
  PartitionSpec spec;
  spec.segment_names = {"events", "inventory", "orders"};
  spec.transaction_types = {
      {"log", 0, {}},
      {"post", 1, {0}},
      {"reorder", 2, {0, 1}},
  };
  auto schema = HierarchySchema::Create(spec);
  if (!schema.ok()) {
    std::cerr << schema.status() << "\n";
    return 1;
  }
  std::cout << "\n" << DescribeHierarchy(*schema);
  Database db(3, 4);
  LogicalClock clock;
  HddController cc(&db, &clock, &*schema);

  // Normal traffic first.
  auto t = cc.Begin({.txn_class = 1});
  (void)cc.Read(*t, {0, 0});
  (void)cc.Write(*t, {1, 0}, 7);
  (void)cc.Commit(*t);

  std::cout << "\nad-hoc type wants to write BOTH events and inventory —\n"
               "restructuring (paper 7.1.1)...\n";
  auto merged = cc.Restructure({0, 1}, {});
  if (!merged.ok()) {
    std::cerr << merged.status() << "\n";
    return 1;
  }
  std::cout << "events now in class " << cc.ClassOfSegment(0)
            << ", inventory in class " << cc.ClassOfSegment(1) << "\n";

  auto adhoc = cc.Begin({.txn_class = *merged});
  (void)cc.Write(*adhoc, {0, 1}, 1);
  (void)cc.Write(*adhoc, {1, 1}, 2);
  (void)cc.Commit(*adhoc);
  std::cout << "ad-hoc cross-segment writer committed under the merged "
               "class.\n";
  return 0;
}

/// trace -> infer -> validate -> hot-swap, on a live controller: run
/// declared traffic with a FootprintRecorder attached, let the online
/// Redecomposer learn the baseline, then declare an emergent cross-class
/// pattern and watch the drift detector restructure for it.
int RunInfer() {
  PartitionSpec spec;
  spec.segment_names = {"events", "inventory", "orders"};
  spec.transaction_types = {
      {"log", 0, {}},
      {"post", 1, {0}},
      {"reorder", 2, {0, 1}},
  };
  auto schema = HierarchySchema::Create(spec);
  if (!schema.ok()) {
    std::cerr << schema.status() << "\n";
    return 1;
  }
  Database db(3, 4);
  LogicalClock clock;
  FootprintRecorder recorder;
  HddControllerOptions options;
  options.footprint = &recorder;
  HddController cc(&db, &clock, &*schema, options);

  // Phase 1: the declared workload, observed through commits.
  std::cout << "tracing 24 transactions of the declared types...\n";
  for (int round = 0; round < 8; ++round) {
    auto log = cc.Begin({.txn_class = 0});
    (void)cc.Write(*log, {0, static_cast<std::uint32_t>(round % 4)}, round);
    (void)cc.Commit(*log);
    auto post = cc.Begin({.txn_class = 1});
    (void)cc.Read(*post, {0, 0});
    (void)cc.Write(*post, {1, static_cast<std::uint32_t>(round % 4)}, round);
    (void)cc.Commit(*post);
    auto reorder = cc.Begin({.txn_class = 2});
    (void)cc.Read(*reorder, {0, 1});
    (void)cc.Read(*reorder, {1, 1});
    (void)cc.Write(*reorder, {2, static_cast<std::uint32_t>(round % 4)},
                   round);
    (void)cc.Commit(*reorder);
  }

  Redecomposer redecomposer(&cc, &recorder, &db,
                            {.window_txns = 16, .drift_threshold = 0.25});
  if (Status s = redecomposer.Poll(); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  const RedecomposerStats& stats = redecomposer.stats();
  std::cout << "baseline learned: " << redecomposer.baseline().types().size()
            << " distinct footprints, " << stats.validations
            << " validated inference(s), " << stats.restructures
            << " restructure(s) (declared traffic is already legal)\n";

  // Phase 2: an emergent pattern — co-writing events+inventory — arrives
  // as declared intent (it cannot even execute under the current
  // structure). Enough support crosses the drift bar; the driver infers,
  // validates and hot-swaps.
  std::cout << "\ndeclaring an emergent events+inventory co-writer...\n";
  for (int i = 0; i < 16; ++i) {
    recorder.Declare({FootprintRecorder::Pack(0, 2),
                      FootprintRecorder::Pack(1, 2)},
                     /*reads=*/{});
  }
  if (Status s = redecomposer.Poll(); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  std::cout << "drift distance " << stats.last_distance << " -> "
            << stats.drift_events << " drift event(s), "
            << stats.restructures << " restructure(s)\n";
  std::cout << "events now in class " << cc.ClassOfSegment(0)
            << ", inventory in class " << cc.ClassOfSegment(1)
            << ", orders in class " << cc.ClassOfSegment(2) << "\n";

  // The emergent type runs under the merged class.
  const ClassId merged = cc.ClassOfSegment(0);
  auto adhoc = cc.Begin({.txn_class = merged});
  (void)cc.Write(*adhoc, {0, 2}, 1);
  (void)cc.Write(*adhoc, {1, 2}, 2);
  if (Status s = cc.Commit(*adhoc); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  std::cout << "emergent cross-segment writer committed under the "
               "inferred structure.\n";
  if (!redecomposer.last_error().ok()) {
    std::cerr << redecomposer.last_error() << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--infer") == 0) return RunInfer();
  return RunMethodology();
}
