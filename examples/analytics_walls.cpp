// Ad-hoc analytics with time walls (paper §5): long read-only audit
// transactions run against a live update stream without a single lock or
// read timestamp, each served a consistent cut by Protocol C.
//
// Usage: ./build/examples/analytics_walls

#include <atomic>
#include <chrono>
#include <iostream>
#include <thread>

#include "engine/inventory_workload.h"
#include "hdd/hdd_controller.h"
#include "txn/dependency_graph.h"

int main() {
  using namespace hdd;

  InventoryWorkloadParams params;
  params.items = 8;
  params.read_only_weight = 0;  // updates only; we run audits by hand
  InventoryWorkload workload(params);
  auto schema = HierarchySchema::Create(InventoryWorkload::Spec());
  if (!schema.ok()) {
    std::cerr << schema.status() << "\n";
    return 1;
  }
  auto db = workload.MakeDatabase();
  LogicalClock clock;
  HddController cc(db.get(), &clock, &*schema);

  // Background updaters.
  std::atomic<bool> stop{false};
  std::thread updater([&] {
    Rng rng(99);
    std::uint64_t index = 0;
    while (!stop.load()) {
      TxnProgram program = workload.Make(index++, rng);
      auto txn = cc.Begin(program.options);
      if (!txn.ok()) continue;
      if (program.body(cc, *txn).ok()) {
        (void)cc.Commit(*txn);
      } else {
        (void)cc.Abort(*txn);
      }
    }
  });

  // §5.2 batched releases: the system publishes a fresh wall on a cadence
  // and every read-only transaction rides the latest released one.
  cc.StartWallPacer(std::chrono::milliseconds(10));

  // Foreground: periodic audits, each pinned to a released time wall.
  for (int audit = 0; audit < 5; ++audit) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    auto reader = cc.Begin({.read_only = true});
    Value events = 0, inventory = 0, orders = 0;
    for (std::uint32_t item = 0; item < params.items; ++item) {
      const std::uint32_t base = item * params.event_slots_per_item;
      for (std::uint32_t s = 0; s < params.event_slots_per_item; ++s) {
        events += *cc.Read(*reader, {0, base + s});
      }
      inventory += *cc.Read(*reader, {1, item});
      orders += *cc.Read(*reader, {2, item});
    }
    (void)cc.Commit(*reader);
    std::cout << "audit " << audit << ": events=" << events
              << " inventory=" << inventory << " orders=" << orders
              << " (walls released so far: " << cc.num_walls() << ")\n";
  }
  cc.StopWallPacer();
  stop = true;
  updater.join();

  const CcMetrics& m = cc.metrics();
  std::cout << "\naudits acquired " << m.read_locks_acquired.load()
            << " read locks and wrote 0 cross-segment read timestamps;\n"
            << "unregistered reads: " << m.unregistered_reads.load()
            << ", blocked reads: " << m.blocked_reads.load() << "\n";
  auto report = CheckSerializability(cc.recorder());
  std::cout << "serializable: " << (report.serializable ? "yes" : "NO")
            << "\n";
  return report.serializable ? 0 : 1;
}
