// The paper's Figure 1 banking scenario: demonstrates the lost-update
// anomaly when interleaving is uncontrolled, then shows every controller
// in the library preventing it on a concurrent transfer workload.
//
// Usage: ./build/examples/bank_teller

#include <iostream>

#include "engine/banking_workload.h"
#include "engine/harness.h"
#include "txn/dependency_graph.h"

namespace {

// Replays Figure 1's exact six-step schedule by hand against the raw
// version store (no concurrency control at all) and shows the lost
// deposit, witnessed by the dependency-graph checker.
void Figure1ByHand() {
  using namespace hdd;
  std::cout << "--- Figure 1: uncontrolled interleaving ---\n";
  ScheduleRecorder recorder;
  Value balance = 100;

  const Value t1_read = balance;  // t1 reads Smith's balance
  recorder.RecordRead(1, {0, 0}, 0);
  const Value t2_read = balance;  // t2 reads Smith's balance
  recorder.RecordRead(2, {0, 0}, 0);
  balance = t1_read + 50;  // t1 deposits $50
  recorder.RecordWrite(1, {0, 0}, 1);
  balance = t2_read - 50;  // t2 withdraws $50 — t1's deposit is LOST
  recorder.RecordWrite(2, {0, 0}, 2);
  recorder.RecordOutcome(1, TxnState::kCommitted);
  recorder.RecordOutcome(2, TxnState::kCommitted);

  std::cout << "final balance: $" << balance
            << " (a serial execution would give $100)\n";
  auto report = CheckSerializability(recorder);
  std::cout << "checker verdict: "
            << (report.serializable ? "serializable" : "NOT serializable");
  if (!report.witness_cycle.empty()) {
    std::cout << "; dependency cycle:";
    for (TxnId t : report.witness_cycle) std::cout << " t" << t;
  }
  std::cout << "\n\n";
}

}  // namespace

int main() {
  using namespace hdd;
  Figure1ByHand();

  std::cout << "--- the same workload under real controllers ---\n";
  BankingWorkloadParams params;
  params.accounts = 16;
  params.deposit_weight = 0;  // transfers only: total must be conserved
  params.transfer_weight = 0.9;
  params.audit_weight = 0.1;
  BankingWorkload workload(params);
  auto schema = HierarchySchema::Create(workload.Spec());
  if (!schema.ok()) {
    std::cerr << schema.status() << "\n";
    return 1;
  }

  ExecutorOptions options;
  options.num_threads = 4;
  std::vector<ComparisonRow> rows;
  for (ControllerKind kind : AllControllerKinds()) {
    rows.push_back(MeasureController(
        kind, workload, [&] { return workload.MakeDatabase(); }, &*schema,
        500, options));
  }
  PrintComparisonTable(rows, std::cout);
  for (const ComparisonRow& row : rows) {
    if (!row.serializable) return 1;
  }
  std::cout << "\nall controllers preserved serializability; no deposit "
               "was lost.\n";
  return 0;
}
