// The paper's Figure 2 retail-inventory application, end to end: runs the
// full transaction mix (event logging, inventory posting, reordering,
// supplier profiling, ad-hoc audits) concurrently under HDD and prints
// what the concurrency control cost.
//
// Usage: ./build/examples/inventory_app [num_txns] [threads]

#include <cstdlib>
#include <iostream>

#include "engine/executor.h"
#include "engine/inventory_workload.h"
#include "hdd/hdd_controller.h"
#include "txn/dependency_graph.h"

int main(int argc, char** argv) {
  using namespace hdd;

  const std::uint64_t total = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                       : 2000;
  const int threads = argc > 2 ? std::atoi(argv[2]) : 4;

  InventoryWorkloadParams params;
  params.items = 32;
  InventoryWorkload workload(params);

  auto schema = HierarchySchema::Create(InventoryWorkload::Spec());
  if (!schema.ok()) {
    std::cerr << schema.status() << "\n";
    return 1;
  }
  auto db = workload.MakeDatabase();
  LogicalClock clock;
  HddController cc(db.get(), &clock, &*schema);

  std::cout << "Data hierarchy graph (critical arcs):\n"
            << schema->tst().reduction().ToDot(
                   {"events", "inventory", "orders", "suppliers"});

  ExecutorOptions options;
  options.num_threads = threads;
  ExecutorStats stats = RunWorkload(cc, workload, total, options);

  std::cout << "\ncommitted " << stats.committed << " txns in "
            << stats.seconds << "s (" << stats.Throughput() << " txn/s, "
            << stats.aborted_attempts << " conflict restarts)\n";

  const CcMetrics& m = cc.metrics();
  std::cout << "read locks:            " << m.read_locks_acquired.load()
            << "\nread timestamps:       "
            << m.read_timestamps_written.load()
            << "  (root-segment Protocol B reads)"
            << "\nunregistered reads:    " << m.unregistered_reads.load()
            << "  (Protocol A cross-segment + Protocol C audits)"
            << "\nblocked reads:         " << m.blocked_reads.load()
            << "\ntime walls released:   " << cc.num_walls() << "\n";

  // Version store upkeep (paper §7.3). Release a fresh wall first so the
  // horizon is not pinned by a wall released at the start of the run.
  std::cout << "versions before GC:    " << db->TotalVersions() << "\n";
  (void)cc.ReleaseNewWall();
  db->CollectGarbage(cc.SafeGcHorizon());
  std::cout << "versions after GC:     " << db->TotalVersions() << "\n";

  auto report = CheckSerializability(cc.recorder());
  std::cout << "serializable:          "
            << (report.serializable ? "yes" : "NO") << "\n";
  return report.serializable && stats.failed == 0 ? 0 : 1;
}
