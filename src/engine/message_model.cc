#include "engine/message_model.h"

namespace hdd {

MessageStats ComputeMessageStats(
    const std::vector<Step>& steps,
    const std::unordered_map<TxnId, ScheduleRecorder::TxnIdentity>&
        identities,
    const CcMetrics& metrics) {
  MessageStats stats;
  for (const Step& step : steps) {
    auto it = identities.find(step.txn);
    const ClassId home =
        it == identities.end() ? kReadOnlyClass : it->second.txn_class;
    const bool remote = home != step.granule.segment;
    if (!remote) {
      ++stats.local_accesses;
      continue;
    }
    ++stats.remote_accesses;
    stats.transfer_messages += 2;
    if (step.action == Step::Action::kRead && step.registered) {
      stats.registration_messages += 1;
    }
  }
  stats.blocking_messages =
      2 * (metrics.blocked_reads.Value() + metrics.blocked_writes.Value());
  stats.total_messages = stats.transfer_messages +
                         stats.registration_messages +
                         stats.blocking_messages;
  const std::uint64_t commits = metrics.commits.Value();
  if (commits > 0) {
    stats.per_commit = static_cast<double>(stats.total_messages) /
                       static_cast<double>(commits);
  }
  return stats;
}

}  // namespace hdd
