#include "engine/epoch_executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "common/sim_hook.h"
#include "obs/trace.h"
#include "sim/sim_scheduler.h"

// Yield-point convention: same as src/hdd (see hdd_controller.cc) — the
// executor's own yields sit OUTSIDE any lock and are non-interruptible
// (injected SimFaults must fire only inside a transaction attempt, where
// the node/admission handlers own the recovery); every wait on the shared
// state condition variable goes through SimWait/SimNotifyAll.

namespace hdd {

namespace {

bool SameGranule(GranuleRef a, GranuleRef b) {
  return a.segment == b.segment && a.index == b.index;
}

bool Intersects(const std::vector<GranuleRef>& a,
                const std::vector<GranuleRef>& b) {
  for (GranuleRef x : a) {
    for (GranuleRef y : b) {
      if (SameGranule(x, y)) return true;
    }
  }
  return false;
}

/// One program's lifetime across epochs (re-admitted until it commits,
/// fails its budget, or is crash-abandoned). Owned by the shared state's
/// slot vector; between admissions only the coordinating worker touches
/// it, during execution only the executing worker does.
struct Slot {
  TxnProgram program;
  std::uint64_t index = 0;  // position in the workload stream
  int attempts = 0;         // aborted attempts consumed
  std::chrono::steady_clock::time_point t0;
};

enum class Outcome { kCommitted, kRetry, kFailed, kCrashed };

}  // namespace

EpochGraph BuildEpochGraph(const std::vector<const TxnProgram*>& batch,
                           bool skip_first_edge) {
  const int n = static_cast<int>(batch.size());
  EpochGraph graph;
  graph.successors.resize(static_cast<std::size_t>(n));
  graph.indegree.assign(static_cast<std::size_t>(n), 0);
  // Only same-class pairs can touch the same own segment (classes own
  // disjoint segments; Restructure during an epoch is unsupported), so
  // bucket the updaters by class up front: the pair scan is then
  // quadratic in the largest same-class sub-batch, not in the epoch.
  // Pairs are still visited in exactly the (i, j) lexicographic order of
  // the naive scan, which pins down which edge the canary drops.
  std::vector<std::vector<int>> by_class;
  std::vector<int> pos(static_cast<std::size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    const TxnProgram& p = *batch[static_cast<std::size_t>(i)];
    if (p.options.read_only) continue;
    const auto cls = static_cast<std::size_t>(p.options.txn_class);
    if (by_class.size() <= cls) by_class.resize(cls + 1);
    pos[static_cast<std::size_t>(i)] = static_cast<int>(by_class[cls].size());
    by_class[cls].push_back(i);
  }
  bool skipped = false;
  for (int i = 0; i < n; ++i) {
    if (pos[static_cast<std::size_t>(i)] < 0) continue;
    const TxnProgram& a = *batch[static_cast<std::size_t>(i)];
    const std::vector<int>& peers =
        by_class[static_cast<std::size_t>(a.options.txn_class)];
    for (std::size_t k =
             static_cast<std::size_t>(pos[static_cast<std::size_t>(i)]) + 1;
         k < peers.size(); ++k) {
      const int j = peers[k];
      const TxnProgram& b = *batch[static_cast<std::size_t>(j)];
      const bool conflict = Intersects(a.declared_writes, b.declared_writes) ||
                            Intersects(a.declared_writes, b.declared_reads) ||
                            Intersects(a.declared_reads, b.declared_writes);
      if (!conflict) continue;
      if (skip_first_edge && !skipped) {
        // Mutation canary: the first conflicting pair of the epoch runs
        // unordered.
        skipped = true;
        continue;
      }
      graph.successors[static_cast<std::size_t>(i)].push_back(j);
      ++graph.indegree[static_cast<std::size_t>(j)];
      ++graph.num_edges;
    }
  }
  return graph;
}

namespace {

/// All cross-worker coordination state; `mu` is never held across a yield
/// point, a controller call, or anything else that can block.
struct EpochState {
  std::mutex mu;
  std::condition_variable cv;

  // Program slots, append-only under `mu`; capacity is reserved for the
  // whole run up front (one slot per stream program, retries reuse
  // theirs), so the backing array never reallocates and workers may
  // index it without the lock — push_back only ever writes a fresh
  // element past everything a concurrent reader can name.
  std::vector<std::unique_ptr<Slot>> slots;
  std::vector<int> retry;  // slot indices awaiting the next epoch
  std::uint64_t next_stream = 0;

  // Current epoch (valid while epoch_open).
  EpochGraph graph;
  std::vector<int> node_slot;
  std::vector<TxnDescriptor> node_txn;
  std::deque<int> ready;
  std::size_t nodes_done = 0;
  std::size_t nodes_total = 0;

  bool epoch_open = false;  // nodes of an epoch are executing
  bool admitting = false;   // one worker is building the next epoch
  bool finished = false;

  // Controller epoch handle; touched only by the worker holding
  // `admitting` (epochs never overlap, so there is exactly one).
  EpochHandle handle;
  bool handle_open = false;

  std::uint64_t epochs = 0;
};

}  // namespace

ExecutorStats RunWorkloadEpochs(ConcurrencyController& cc,
                                const Workload& workload,
                                std::uint64_t total_txns,
                                const EpochExecutorOptions& options) {
  EpochState state;
  state.slots.reserve(total_txns);  // see EpochState::slots
  std::atomic<std::uint64_t> committed{0};
  std::atomic<std::uint64_t> aborted{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> crashed{0};
  std::atomic<std::uint64_t> done{0};
  const std::uint64_t epoch_size = std::max<std::uint64_t>(1, options.epoch_size);

  std::vector<LatencyReservoir> latencies;
  latencies.reserve(static_cast<std::size_t>(options.num_threads));
  for (int i = 0; i < options.num_threads; ++i) {
    latencies.emplace_back(/*capacity=*/4096,
                           options.seed * 6271 + static_cast<std::uint64_t>(i));
  }

  // Per-worker class breakdowns, merged after the join (finish_program may
  // run on any worker, but never concurrently for one worker_id).
  std::vector<std::map<ClassId, PerClassStats>> per_class_by_worker(
      static_cast<std::size_t>(options.num_threads));

  const auto finish_program = [&](int slot_idx, Outcome outcome,
                                  int worker_id) {
    Slot* slot = state.slots[static_cast<std::size_t>(slot_idx)].get();
    switch (outcome) {
      case Outcome::kCommitted: {
        committed.fetch_add(1);
        const auto t1 = std::chrono::steady_clock::now();
        latencies[static_cast<std::size_t>(worker_id)].Add(
            std::chrono::duration<double, std::micro>(t1 - slot->t0).count());
        break;
      }
      case Outcome::kFailed:
        failed.fetch_add(1);
        break;
      case Outcome::kCrashed:
        crashed.fetch_add(1);
        break;
      case Outcome::kRetry:
        return;  // not terminal; no completion callback
    }
    ProgramResult result;
    result.committed = outcome == Outcome::kCommitted;
    result.failed = outcome == Outcome::kFailed;
    result.crashed = outcome == Outcome::kCrashed;
    result.aborted_attempts = static_cast<std::uint64_t>(slot->attempts);
    const ClassId cls = slot->program.options.read_only
                            ? kReadOnlyClass
                            : slot->program.options.txn_class;
    PerClassStats& row =
        per_class_by_worker[static_cast<std::size_t>(worker_id)][cls];
    row.committed += result.committed ? 1 : 0;
    row.aborted_attempts += result.aborted_attempts;
    row.failed += result.failed ? 1 : 0;
    row.crashed += result.crashed ? 1 : 0;
    if (options.on_program_done) options.on_program_done(slot->index, result);
    if (options.on_txn_done) options.on_txn_done(done.fetch_add(1) + 1);
  };

  // Executes one ready node to completion (the attempt/fault boundary,
  // mirroring the per-txn executor's RunOne). Returns the outcome; the
  // caller owns the graph bookkeeping.
  const auto run_node = [&](Slot* slot, const TxnDescriptor& txn) -> Outcome {
    HDD_TRACE_SPAN("exec", "epoch_txn");
    if (options.sim != nullptr) options.sim->OnTxnAttemptStart();
    Status status;
    bool faulted = false;
    bool fault_crash = false;
    try {
      status = slot->program.body(cc, txn);
      if (status.ok()) {
        status = cc.Commit(txn);
        if (status.ok()) return Outcome::kCommitted;
        if (status.IsRetryable()) {
          // Commit-time validation failure: the controller already
          // discarded the transaction; re-admit next epoch.
          ++slot->attempts;
          aborted.fetch_add(1);
          return slot->attempts > options.max_retries ? Outcome::kFailed
                                                      : Outcome::kRetry;
        }
        return Outcome::kFailed;
      }
    } catch (const SimFault& fault) {
      faulted = true;
      fault_crash = fault.kind == SimFaultKind::kCrash;
    }
    // Abort paths are non-interruptible, so this never throws SimFault;
    // SimHalt still propagates to the worker loop via RAII.
    (void)cc.Abort(txn);
    if (faulted && fault_crash) return Outcome::kCrashed;
    if (faulted || status.IsRetryable() ||
        status.code() == StatusCode::kBusy) {
      ++slot->attempts;
      aborted.fetch_add(1);
      return slot->attempts > options.max_retries ? Outcome::kFailed
                                                  : Outcome::kRetry;
    }
    return Outcome::kFailed;
  };

  // Admits the next epoch. Called by the worker holding `admitting`, with
  // no locks held. Gathers retries plus fresh stream programs, runs the
  // controller admission (retrying injected faults), builds the graph and
  // publishes the ready set. Sets `finished` when the work ran dry.
  const auto admit_next = [&](int worker_id, Rng& rng) {
    if (state.handle_open) {
      // All nodes of the previous epoch completed (the barrier): close it
      // before the next anchor is ticked.
      (void)cc.EndEpoch(state.handle);
      state.handle_open = false;
    }
    for (;;) {
      std::vector<int> batch_slots;
      {
        std::unique_lock<std::mutex> lock(state.mu);
        batch_slots = std::move(state.retry);
        state.retry.clear();
        while (batch_slots.size() < epoch_size &&
               state.next_stream < total_txns) {
          const std::uint64_t index = state.next_stream++;
          auto slot = std::make_unique<Slot>();
          slot->program = workload.Make(index, rng);
          slot->index = index;
          slot->t0 = std::chrono::steady_clock::now();
          state.slots.push_back(std::move(slot));
          batch_slots.push_back(static_cast<int>(state.slots.size()) - 1);
        }
        if (batch_slots.empty()) {
          state.admitting = false;
          state.finished = true;
          lock.unlock();
          SimNotifyAll(state.cv, &state.cv);
          return;
        }
      }
      // Controller admission, outside the state lock. An injected fault
      // unwinding out of BeginBatch left no transaction behind (BeginBatch
      // rolls back); kAbort retries the admission (budgeted against the
      // batch head), kCrash abandons the head — mirroring the per-txn
      // executor's "fault before the transaction existed".
      std::vector<TxnOptions> batch_options;
      batch_options.reserve(batch_slots.size());
      for (int s : batch_slots) {
        batch_options.push_back(
            state.slots[static_cast<std::size_t>(s)]->program.options);
      }
      if (options.sim != nullptr) options.sim->OnTxnAttemptStart();
      Result<EpochHandle> handle = cc.BeginEpoch();
      if (!handle.ok()) {
        if (handle.status().code() == StatusCode::kBusy ||
            handle.status().IsRetryable()) {
          // Transient (e.g. a Restructure holds the epoch/restructure
          // exclusion): charge the head's budget and retry the batch.
          Slot* head =
              state.slots[static_cast<std::size_t>(batch_slots.front())].get();
          ++head->attempts;
          aborted.fetch_add(1);
          if (head->attempts > options.max_retries) {
            finish_program(batch_slots.front(), Outcome::kFailed, worker_id);
            batch_slots.erase(batch_slots.begin());
          }
          std::lock_guard<std::mutex> lock(state.mu);
          state.retry.insert(state.retry.end(), batch_slots.begin(),
                             batch_slots.end());
          continue;
        }
        for (int s : batch_slots) finish_program(s, Outcome::kFailed, worker_id);
        continue;
      }
      Result<std::vector<TxnDescriptor>> descriptors = [&] {
        try {
          return cc.BeginBatch(*handle, batch_options);
        } catch (const SimFault& fault) {
          (void)cc.EndEpoch(*handle);
          return Result<std::vector<TxnDescriptor>>(
              fault.kind == SimFaultKind::kCrash
                  ? Status::Aborted("sim crash during admission")
                  : Status::Busy("sim fault during admission"));
        }
      }();
      if (!descriptors.ok()) {
        const StatusCode code = descriptors.status().code();
        const bool head_crashed =
            code == StatusCode::kAborted &&
            descriptors.status().message() == "sim crash during admission";
        if (head_crashed) {
          finish_program(batch_slots.front(), Outcome::kCrashed, worker_id);
          batch_slots.erase(batch_slots.begin());
        } else if (code == StatusCode::kBusy ||
                   descriptors.status().IsRetryable()) {
          Slot* head =
              state.slots[static_cast<std::size_t>(batch_slots.front())].get();
          ++head->attempts;
          aborted.fetch_add(1);
          if (head->attempts > options.max_retries) {
            finish_program(batch_slots.front(), Outcome::kFailed, worker_id);
            batch_slots.erase(batch_slots.begin());
          }
        } else {
          (void)cc.EndEpoch(*handle);
          for (int s : batch_slots) {
            finish_program(s, Outcome::kFailed, worker_id);
          }
          continue;
        }
        (void)cc.EndEpoch(*handle);
        // Survivors go back to the retry list and the next round
        // re-gathers (possibly topping up from the stream).
        std::lock_guard<std::mutex> lock(state.mu);
        state.retry.insert(state.retry.end(), batch_slots.begin(),
                           batch_slots.end());
        continue;
      }
      std::vector<const TxnProgram*> programs;
      programs.reserve(batch_slots.size());
      for (int s : batch_slots) {
        programs.push_back(&state.slots[static_cast<std::size_t>(s)]->program);
      }
      EpochGraph graph =
          BuildEpochGraph(programs, options.mutation_skip_dependency_edge);
      HDD_TRACE_INSTANT("exec", "epoch_publish");
      {
        std::lock_guard<std::mutex> lock(state.mu);
        state.handle = *handle;
        state.handle_open = true;
        state.graph = std::move(graph);
        state.node_slot = std::move(batch_slots);
        state.node_txn = std::move(*descriptors);
        state.ready.clear();
        for (int i = 0; i < static_cast<int>(state.node_slot.size()); ++i) {
          if (state.graph.indegree[static_cast<std::size_t>(i)] == 0) {
            state.ready.push_back(i);
          }
        }
        state.nodes_done = 0;
        state.nodes_total = state.node_slot.size();
        state.epoch_open = true;
        state.admitting = false;
        ++state.epochs;
      }
      SimNotifyAll(state.cv, &state.cv);
      return;
    }
  };

  if (options.sim != nullptr) {
    options.sim->ExpectTasks(options.num_threads +
                             (options.service ? 1 : 0));
  }
  std::atomic<bool> workers_done{false};
  std::atomic<int> workers_left{options.num_threads};

  const auto start = std::chrono::steady_clock::now();
  auto worker_body = [&](int worker_id, Rng& rng) {
    for (;;) {
      SimYield("epoch/next", /*interruptible=*/false);
      std::unique_lock<std::mutex> lock(state.mu);
      if (state.finished) return;
      if (!state.ready.empty()) {
        // Claim a fair share of the ready set in one lock round: the
        // graph already proved these nodes independent, so per-node queue
        // round-trips (lock, pop, unlock ... lock, release, notify) are
        // pure coordination overhead. Under simulation claim exactly one
        // node — the model-checked schedule keeps its per-node
        // granularity.
        std::size_t want = 1;
        if (options.sim == nullptr) {
          want = std::max<std::size_t>(
              1, state.ready.size() /
                     static_cast<std::size_t>(options.num_threads));
        }
        struct Claim {
          int node;
          int slot_idx;
          TxnDescriptor txn;
          Outcome outcome;
        };
        std::vector<Claim> claims;
        claims.reserve(want);
        while (claims.size() < want && !state.ready.empty()) {
          const int node = state.ready.front();
          state.ready.pop_front();
          claims.push_back({node,
                            state.node_slot[static_cast<std::size_t>(node)],
                            state.node_txn[static_cast<std::size_t>(node)],
                            Outcome::kRetry});
        }
        lock.unlock();
        for (Claim& c : claims) {
          Slot* slot = state.slots[static_cast<std::size_t>(c.slot_idx)].get();
          c.outcome = run_node(slot, c.txn);
        }
        // Graph bookkeeping AFTER the commit/abort fully finished: only
        // now may successors (which the controller no longer orders
        // against us) start.
        bool epoch_complete = false;
        bool ready_grew = false;
        {
          std::lock_guard<std::mutex> guard(state.mu);
          for (const Claim& c : claims) {
            for (int succ :
                 state.graph.successors[static_cast<std::size_t>(c.node)]) {
              if (--state.graph.indegree[static_cast<std::size_t>(succ)] ==
                  0) {
                state.ready.push_back(succ);
                ready_grew = true;
              }
            }
            if (c.outcome == Outcome::kRetry) state.retry.push_back(c.slot_idx);
            ++state.nodes_done;
          }
          if (state.nodes_done == state.nodes_total) {
            state.epoch_open = false;
            state.admitting = true;  // this worker coordinates the next epoch
            epoch_complete = true;
          }
        }
        // Waiters only care about new ready nodes (the epoch handoff is
        // performed by this worker directly, below). Under simulation
        // always notify, as before — wakeup delivery is schedule state.
        if (options.sim != nullptr || ready_grew || epoch_complete) {
          SimNotifyAll(state.cv, &state.cv);
        }
        for (const Claim& c : claims) {
          finish_program(c.slot_idx, c.outcome, worker_id);
        }
        if (epoch_complete) admit_next(worker_id, rng);
        continue;
      }
      if (!state.epoch_open && !state.admitting) {
        state.admitting = true;
        lock.unlock();
        admit_next(worker_id, rng);
        continue;
      }
      // Epoch in flight with no ready node, or another worker admitting.
      SimWait(state.cv, lock, &state.cv);
    }
  };
  auto worker = [&](int worker_id) {
    Rng rng(options.seed * 7919 + static_cast<std::uint64_t>(worker_id));
    if (options.sim == nullptr) {
      worker_body(worker_id, rng);
      if (workers_left.fetch_sub(1) == 1) workers_done.store(true);
      return;
    }
    try {
      options.sim->RegisterCurrentTask(worker_id);
      worker_body(worker_id, rng);
    } catch (const SimHalt&) {
      // Run halted (deadlock finding / budget); stack unwound via RAII.
    }
    // Last worker raises the service shutdown flag while still registered
    // (same determinism argument as RunWorkload: the count of trailing
    // service steps must be schedule state, not OS-timing state).
    if (workers_left.fetch_sub(1) == 1) workers_done.store(true);
    options.sim->UnregisterCurrentTask();
  };
  auto service = [&] {
    if (options.sim == nullptr) {
      options.service(workers_done);
      return;
    }
    try {
      options.sim->RegisterCurrentTask(options.num_threads);
      options.service(workers_done);
    } catch (const SimHalt&) {
      // Same halt contract as the workers.
    }
    options.sim->UnregisterCurrentTask();
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(options.num_threads));
  for (int i = 0; i < options.num_threads; ++i) threads.emplace_back(worker, i);
  std::thread service_thread;
  if (options.service) service_thread = std::thread(service);
  for (auto& t : threads) t.join();
  if (service_thread.joinable()) service_thread.join();
  const auto end = std::chrono::steady_clock::now();

  ExecutorStats stats;
  stats.committed = committed.load();
  stats.aborted_attempts = aborted.load();
  stats.failed = failed.load();
  stats.crashed = crashed.load();
  stats.epochs = state.epochs;
  stats.seconds = std::chrono::duration<double>(end - start).count();

  const LatencyDigest digest = MergeReservoirs(latencies);
  stats.latency_p50_us = digest.p50_us;
  stats.latency_p95_us = digest.p95_us;
  stats.latency_p99_us = digest.p99_us;
  stats.latency_max_us = digest.max_us;
  stats.cc = cc.metrics().ToMap();
  if (options.wal_metrics != nullptr) stats.wal = options.wal_metrics->ToMap();
  for (const auto& worker_map : per_class_by_worker) {
    for (const auto& [cls, row] : worker_map) {
      PerClassStats& merged = stats.per_class[cls];
      merged.committed += row.committed;
      merged.aborted_attempts += row.aborted_attempts;
      merged.failed += row.failed;
      merged.crashed += row.crashed;
    }
  }
  return stats;
}

}  // namespace hdd
