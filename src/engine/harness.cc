#include "engine/harness.h"

#include <iomanip>

#include "cc/mvto.h"
#include "cc/sdd1.h"
#include "cc/occ.h"
#include "cc/serial.h"
#include "cc/timestamp_ordering.h"
#include "cc/two_phase_locking.h"
#include "hdd/hdd_controller.h"
#include "txn/dependency_graph.h"

namespace hdd {

std::string_view ControllerKindName(ControllerKind kind) {
  switch (kind) {
    case ControllerKind::kHdd:
      return "hdd";
    case ControllerKind::kHddBasicTo:
      return "hdd-basic-to";
    case ControllerKind::kTwoPhase:
      return "2pl";
    case ControllerKind::kTwoPhaseWaitDie:
      return "2pl-wait-die";
    case ControllerKind::kTwoPhaseNoWait:
      return "2pl-nowait";
    case ControllerKind::kTimestampOrdering:
      return "to";
    case ControllerKind::kMvto:
      return "mvto";
    case ControllerKind::kMv2pl:
      return "mv2pl";
    case ControllerKind::kSdd1:
      return "sdd1";
    case ControllerKind::kOcc:
      return "occ";
    case ControllerKind::kSerial:
      return "serial";
  }
  return "unknown";
}

std::vector<ControllerKind> AllControllerKinds() {
  return {ControllerKind::kHdd,
          ControllerKind::kHddBasicTo,
          ControllerKind::kTwoPhase,
          ControllerKind::kTwoPhaseWaitDie,
          ControllerKind::kTwoPhaseNoWait,
          ControllerKind::kTimestampOrdering,
          ControllerKind::kMvto,
          ControllerKind::kMv2pl,
          ControllerKind::kSdd1,
          ControllerKind::kOcc,
          ControllerKind::kSerial};
}

std::unique_ptr<ConcurrencyController> CreateController(
    ControllerKind kind, Database* db, LogicalClock* clock,
    const HierarchySchema* schema) {
  switch (kind) {
    case ControllerKind::kHdd: {
      return std::make_unique<HddController>(db, clock, schema);
    }
    case ControllerKind::kHddBasicTo: {
      HddControllerOptions options;
      options.protocol_b = ProtocolBEngine::kBasicTo;
      options.name = "hdd-basic-to";
      return std::make_unique<HddController>(db, clock, schema, options);
    }
    case ControllerKind::kTwoPhase: {
      return std::make_unique<TwoPhaseLocking>(db, clock);
    }
    case ControllerKind::kTwoPhaseWaitDie: {
      TwoPhaseLockingOptions options;
      options.deadlock_policy = DeadlockPolicy::kWaitDie;
      options.name = "2pl-wait-die";
      return std::make_unique<TwoPhaseLocking>(db, clock, options);
    }
    case ControllerKind::kTwoPhaseNoWait: {
      TwoPhaseLockingOptions options;
      options.deadlock_policy = DeadlockPolicy::kNoWait;
      options.name = "2pl-nowait";
      return std::make_unique<TwoPhaseLocking>(db, clock, options);
    }
    case ControllerKind::kTimestampOrdering: {
      return std::make_unique<TimestampOrdering>(db, clock);
    }
    case ControllerKind::kMvto: {
      return std::make_unique<Mvto>(db, clock);
    }
    case ControllerKind::kMv2pl: {
      TwoPhaseLockingOptions options;
      options.snapshot_read_only = true;
      options.name = "mv2pl";
      return std::make_unique<TwoPhaseLocking>(db, clock, options);
    }
    case ControllerKind::kSdd1: {
      return std::make_unique<Sdd1>(db, clock);
    }
    case ControllerKind::kOcc: {
      return std::make_unique<Occ>(db, clock);
    }
    case ControllerKind::kSerial: {
      return std::make_unique<SerialController>(db, clock);
    }
  }
  return nullptr;
}

ComparisonRow MeasureController(
    ControllerKind kind, const Workload& workload,
    const std::function<std::unique_ptr<Database>()>& make_db,
    const HierarchySchema* schema, std::uint64_t total_txns,
    const ExecutorOptions& options) {
  auto db = make_db();
  LogicalClock clock;
  auto cc = CreateController(kind, db.get(), &clock, schema);
  ComparisonRow row;
  row.controller = std::string(ControllerKindName(kind));
  row.stats = RunWorkload(*cc, workload, total_txns, options);
  const CcMetrics& m = cc->metrics();
  row.read_locks = m.read_locks_acquired.Value();
  row.read_timestamps = m.read_timestamps_written.Value();
  row.unregistered_reads = m.unregistered_reads.Value();
  row.blocked_reads = m.blocked_reads.Value();
  row.blocked_writes = m.blocked_writes.Value();
  row.aborts = m.aborts.Value();
  row.deadlocks = m.deadlocks.Value();
  row.serializable = CheckSerializability(cc->recorder()).serializable;
  return row;
}

void PrintComparisonTable(const std::vector<ComparisonRow>& rows,
                          std::ostream& os) {
  os << std::left << std::setw(14) << "controller" << std::right
     << std::setw(10) << "commits" << std::setw(10) << "txn/s"
     << std::setw(11) << "rd-locks" << std::setw(11) << "rd-stamps"
     << std::setw(11) << "unreg-rd" << std::setw(10) << "blk-rd"
     << std::setw(10) << "blk-wr" << std::setw(9) << "aborts"
     << std::setw(10) << "deadlk" << std::setw(10) << "p99 us"
     << std::setw(13) << "serializable" << "\n";
  for (const ComparisonRow& row : rows) {
    os << std::left << std::setw(14) << row.controller << std::right
       << std::setw(10) << row.stats.committed << std::setw(10)
       << static_cast<std::uint64_t>(row.stats.Throughput())
       << std::setw(11) << row.read_locks << std::setw(11)
       << row.read_timestamps << std::setw(11) << row.unregistered_reads
       << std::setw(10) << row.blocked_reads << std::setw(10)
       << row.blocked_writes << std::setw(9) << row.aborts << std::setw(10)
       << row.deadlocks << std::setw(10)
       << static_cast<std::uint64_t>(row.stats.latency_p99_us)
       << std::setw(13) << (row.serializable ? "yes" : "NO") << "\n";
  }
}

}  // namespace hdd
