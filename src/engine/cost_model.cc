#include "engine/cost_model.h"

namespace hdd {

CostEstimate EstimateCost(const CcMetrics& metrics,
                          const ExecutorStats& stats,
                          const CostModel& model) {
  const double registrations =
      static_cast<double>(metrics.read_locks_acquired.Value() +
                          metrics.read_timestamps_written.Value());
  const double blocks = static_cast<double>(metrics.blocked_reads.Value() +
                                            metrics.blocked_writes.Value());
  CostEstimate estimate;
  estimate.total_us =
      static_cast<double>(metrics.version_reads.Value()) *
          model.read_version_us +
      static_cast<double>(metrics.versions_created.Value()) *
          model.write_version_us +
      registrations * model.registration_us +
      static_cast<double>(metrics.write_locks_acquired.Value()) *
          model.lock_bookkeeping_us +
      blocks * model.block_us +
      static_cast<double>(stats.aborted_attempts) * model.restart_us +
      static_cast<double>(metrics.unregistered_reads.Value()) *
          model.link_eval_us;
  if (stats.committed > 0) {
    estimate.per_commit_us =
        estimate.total_us / static_cast<double>(stats.committed);
    estimate.modeled_tps = 1e6 / estimate.per_commit_us;
  }
  return estimate;
}

}  // namespace hdd
