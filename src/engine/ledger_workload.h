#ifndef HDD_ENGINE_LEDGER_WORKLOAD_H_
#define HDD_ENGINE_LEDGER_WORKLOAD_H_

#include <memory>

#include "engine/txn_program.h"
#include "graph/dhg.h"
#include "storage/database.h"

namespace hdd {

/// The paper's §1.2.1 observation made executable: "the sales records,
/// once committed, will not be modified ... have become read-only
/// records." An append-only event ledger per item plus derived summaries:
///
///   segment 0 "ledger":  per item, a cursor granule followed by
///                        `capacity` write-once event slots;
///   segment 1 "summary": one granule per item.
///
/// Transaction types:
///   append (class 0):    reads the cursor c, writes event slot c, then
///                        advances the cursor — the record becomes
///                        immutable after commit;
///   summarize (class 1): reads the cursor and every event below it
///                        (all cross-class, unregistered under HDD!) and
///                        posts the sum;
///   audit (read-only):   reads cursor + summary, checks the summary
///                        never exceeds the ledger prefix it was built
///                        from (consistency witness).
struct LedgerWorkloadParams {
  std::uint32_t items = 8;
  std::uint32_t capacity = 64;  // event slots per item
  double append_weight = 0.6;
  double summarize_weight = 0.3;
  double audit_weight = 0.1;
};

class LedgerWorkload : public Workload {
 public:
  explicit LedgerWorkload(LedgerWorkloadParams params = {});

  PartitionSpec Spec() const;
  std::unique_ptr<Database> MakeDatabase() const;

  TxnProgram Make(std::uint64_t index, Rng& rng) const override;

  const LedgerWorkloadParams& params() const { return params_; }

  /// Granule addresses.
  GranuleRef Cursor(std::uint32_t item) const {
    return {0, item * (params_.capacity + 1)};
  }
  GranuleRef Event(std::uint32_t item, std::uint32_t slot) const {
    return {0, item * (params_.capacity + 1) + 1 + slot};
  }
  GranuleRef Summary(std::uint32_t item) const { return {1, item}; }

 private:
  LedgerWorkloadParams params_;
};

}  // namespace hdd

#endif  // HDD_ENGINE_LEDGER_WORKLOAD_H_
