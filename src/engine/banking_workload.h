#ifndef HDD_ENGINE_BANKING_WORKLOAD_H_
#define HDD_ENGINE_BANKING_WORKLOAD_H_

#include <memory>

#include "engine/txn_program.h"
#include "graph/dhg.h"
#include "storage/database.h"

namespace hdd {

/// The paper's Figure 1 banking scenario, scaled out: one `accounts`
/// segment; deposit/withdraw and transfer transactions, plus audits that
/// sum every balance. The invariant "total money is conserved by
/// transfers" makes lost updates observable, which is exactly what
/// Figure 1 is about.
struct BankingWorkloadParams {
  std::uint32_t accounts = 32;
  Value initial_balance = 100;
  double transfer_weight = 0.6;
  double deposit_weight = 0.3;
  double audit_weight = 0.1;
};

class BankingWorkload : public Workload {
 public:
  explicit BankingWorkload(BankingWorkloadParams params = {});

  PartitionSpec Spec() const;
  std::unique_ptr<Database> MakeDatabase() const;

  TxnProgram Make(std::uint64_t index, Rng& rng) const override;

  /// Expected total across all accounts if and only if no update was lost
  /// (audits and transfers conserve it; deposits add their recorded sum).
  Value InitialTotal() const {
    return static_cast<Value>(params_.accounts) * params_.initial_balance;
  }

  const BankingWorkloadParams& params() const { return params_; }

 private:
  BankingWorkloadParams params_;
};

}  // namespace hdd

#endif  // HDD_ENGINE_BANKING_WORKLOAD_H_
