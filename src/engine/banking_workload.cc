#include "engine/banking_workload.h"

#include <memory>

namespace hdd {

BankingWorkload::BankingWorkload(BankingWorkloadParams params)
    : params_(params) {}

PartitionSpec BankingWorkload::Spec() const {
  PartitionSpec spec;
  spec.segment_names = {"accounts"};
  spec.transaction_types = {
      {"transfer", 0, {}},
      {"deposit", 0, {}},
  };
  return spec;
}

std::unique_ptr<Database> BankingWorkload::MakeDatabase() const {
  return std::make_unique<Database>(std::vector<std::string>{"accounts"},
                                    params_.accounts,
                                    params_.initial_balance);
}

TxnProgram BankingWorkload::Make(std::uint64_t index, Rng& rng) const {
  (void)index;
  const double total = params_.transfer_weight + params_.deposit_weight +
                       params_.audit_weight;
  const double roll = rng.NextDouble() * total;
  TxnProgram program;
  if (roll < params_.transfer_weight) {
    const std::uint32_t from =
        static_cast<std::uint32_t>(rng.NextBounded(params_.accounts));
    std::uint32_t to =
        static_cast<std::uint32_t>(rng.NextBounded(params_.accounts));
    if (to == from) to = (to + 1) % params_.accounts;
    const Value amount = static_cast<Value>(rng.NextInRange(1, 10));
    program.options.txn_class = 0;
    program.body = [from, to, amount](ConcurrencyController& cc,
                                      const TxnDescriptor& txn) -> Status {
      HDD_ASSIGN_OR_RETURN(Value a, cc.Read(txn, {0, from}));
      HDD_ASSIGN_OR_RETURN(Value b, cc.Read(txn, {0, to}));
      HDD_RETURN_IF_ERROR(cc.Write(txn, {0, from}, a - amount));
      return cc.Write(txn, {0, to}, b + amount);
    };
    return program;
  }
  if (roll < params_.transfer_weight + params_.deposit_weight) {
    const std::uint32_t account =
        static_cast<std::uint32_t>(rng.NextBounded(params_.accounts));
    const Value amount = static_cast<Value>(rng.NextInRange(1, 10));
    program.options.txn_class = 0;
    program.body = [account, amount](ConcurrencyController& cc,
                                     const TxnDescriptor& txn) -> Status {
      HDD_ASSIGN_OR_RETURN(Value balance, cc.Read(txn, {0, account}));
      return cc.Write(txn, {0, account}, balance + amount);
    };
    return program;
  }
  const std::uint32_t accounts = params_.accounts;
  program.options.read_only = true;
  program.options.txn_class = kReadOnlyClass;
  program.body = [accounts](ConcurrencyController& cc,
                            const TxnDescriptor& txn) -> Status {
    Value sum = 0;
    for (std::uint32_t a = 0; a < accounts; ++a) {
      HDD_ASSIGN_OR_RETURN(Value balance, cc.Read(txn, {0, a}));
      sum += balance;
    }
    (void)sum;
    return Status::OK();
  };
  return program;
}

}  // namespace hdd
