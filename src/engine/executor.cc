#include "engine/executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <optional>
#include <thread>
#include <vector>

#include "common/sim_hook.h"
#include "obs/trace.h"
#include "sim/sim_scheduler.h"

namespace hdd {

// Runs one program to completion (commit, or failure after the retry
// budget). Under simulation this is also the fault boundary: a SimFault
// thrown from an interruptible yield point inside the controller unwinds
// to here, the in-flight transaction is aborted (modelling recovery), and
// the attempt is retried (kAbort) or abandoned (kCrash).
ProgramResult RunProgram(ConcurrencyController& cc, const TxnProgram& program,
                         int max_retries, SimScheduler* sim) {
  HDD_TRACE_SPAN("exec", "txn");
  ProgramResult result;
  std::uint64_t& aborted = result.aborted_attempts;
  for (int attempt = 0; attempt <= max_retries; ++attempt) {
    if (sim != nullptr) sim->OnTxnAttemptStart();
    std::optional<Result<TxnDescriptor>> txn;
    try {
      txn.emplace(cc.Begin(program.options));
    } catch (const SimFault& fault) {
      // Fault before the transaction existed: nothing to clean up.
      if (fault.kind == SimFaultKind::kCrash) {
        result.crashed = true;
        return result;
      }
      ++aborted;
      continue;
    }
    if (!txn->ok()) {
      result.failed = true;
      return result;
    }
    Status status;
    bool fault_crash = false;
    bool faulted = false;
    try {
      status = program.body(cc, **txn);
      if (status.ok()) {
        status = cc.Commit(**txn);
        if (status.ok()) {
          result.committed = true;
          return result;
        }
        if (status.IsRetryable()) {
          // Commit-time validation failure (e.g. OCC): the controller has
          // already discarded the transaction; just restart the program.
          ++aborted;
          continue;
        }
        result.failed = true;
        return result;
      }
    } catch (const SimFault& fault) {
      faulted = true;
      fault_crash = fault.kind == SimFaultKind::kCrash;
    }
    // Abort paths are non-interruptible yield sites, so this never throws
    // SimFault (a throw here would escape the attempt boundary); SimHalt
    // still propagates to the worker loop, unwinding via RAII only.
    (void)cc.Abort(**txn);  // best effort; the txn may already be gone
    if (faulted) {
      if (fault_crash) {
        result.crashed = true;
        return result;
      }
      ++aborted;
      continue;
    }
    if (status.IsRetryable() || status.code() == StatusCode::kBusy) {
      ++aborted;
      // Exponential backoff breaks symmetric abort-retry livelocks
      // (e.g. TO read-modify-write storms on a hot granule). Under
      // simulation the sleep is a plain reschedule.
      if (attempt > 2) {
        SimSleep(std::chrono::microseconds(
            std::min(1 << std::min(attempt, 12), 2000)));
      }
      continue;
    }
    result.failed = true;
    return result;
  }
  result.failed = true;
  return result;
}

LatencyDigest MergeReservoirs(const std::vector<LatencyReservoir>& parts) {
  LatencyDigest digest;
  // Each retained sample represents count/size observations of its
  // reservoir; weighted nearest-rank percentiles over the union.
  std::vector<std::pair<double, double>> weighted;  // (value, weight)
  double total_weight = 0.0;
  for (const LatencyReservoir& part : parts) {
    digest.count += part.count();
    if (part.samples().empty()) continue;
    digest.max_us = std::max(digest.max_us, part.max_us());
    const double weight = static_cast<double>(part.count()) /
                          static_cast<double>(part.samples().size());
    for (double value : part.samples()) {
      weighted.emplace_back(value, weight);
      total_weight += weight;
    }
  }
  if (weighted.empty()) return digest;
  std::sort(weighted.begin(), weighted.end());
  auto percentile = [&](double p) {
    const double target = p * total_weight;
    double cumulative = 0.0;
    for (const auto& [value, weight] : weighted) {
      cumulative += weight;
      if (cumulative >= target) return value;
    }
    return weighted.back().first;
  };
  digest.p50_us = percentile(0.50);
  digest.p95_us = percentile(0.95);
  digest.p99_us = percentile(0.99);
  return digest;
}

ExecutorStats RunWorkload(ConcurrencyController& cc, const Workload& workload,
                          std::uint64_t total_txns,
                          const ExecutorOptions& options) {
  std::atomic<std::uint64_t> next_index{0};
  std::atomic<std::uint64_t> committed{0};
  std::atomic<std::uint64_t> aborted{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> crashed{0};
  std::vector<LatencyReservoir> latencies;
  latencies.reserve(options.num_threads);
  for (int i = 0; i < options.num_threads; ++i) {
    latencies.emplace_back(/*capacity=*/4096,
                           options.seed * 6271 +
                               static_cast<std::uint64_t>(i));
  }
  // Per-worker class breakdowns, merged after the join (no contention on
  // the hot path).
  std::vector<std::map<ClassId, PerClassStats>> per_class_by_worker(
      static_cast<std::size_t>(options.num_threads));

  // Under simulation, task identity must be assigned by US (worker id),
  // not by thread startup order — the one nondeterminism the scheduler
  // cannot own — and no task may run before all have registered. The
  // service loop, when present, is one more task (id = num_threads).
  if (options.sim != nullptr) {
    options.sim->ExpectTasks(options.num_threads +
                             (options.service ? 1 : 0));
  }

  std::atomic<std::uint64_t> done{0};
  std::atomic<bool> workers_done{false};
  std::atomic<int> workers_left{options.num_threads};
  const auto start = std::chrono::steady_clock::now();
  auto worker_body = [&](int worker_id, Rng& rng) {
    for (;;) {
      const std::uint64_t index = next_index.fetch_add(1);
      if (index >= total_txns) return;
      const TxnProgram program = workload.Make(index, rng);
      const auto t0 = std::chrono::steady_clock::now();
      const ProgramResult result =
          RunProgram(cc, program, options.max_retries, options.sim);
      const auto t1 = std::chrono::steady_clock::now();
      aborted.fetch_add(result.aborted_attempts);
      if (result.crashed) {
        crashed.fetch_add(1);
      } else if (result.failed) {
        failed.fetch_add(1);
      } else {
        committed.fetch_add(1);
        latencies[worker_id].Add(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
      }
      const ClassId cls = program.options.read_only ? kReadOnlyClass
                                                    : program.options.txn_class;
      PerClassStats& row =
          per_class_by_worker[static_cast<std::size_t>(worker_id)][cls];
      row.committed += result.committed ? 1 : 0;
      row.aborted_attempts += result.aborted_attempts;
      row.failed += result.failed ? 1 : 0;
      row.crashed += result.crashed ? 1 : 0;
      if (options.on_program_done) options.on_program_done(index, result);
      if (options.on_txn_done) options.on_txn_done(done.fetch_add(1) + 1);
    }
  };
  auto worker = [&](int worker_id) {
    Rng rng(options.seed * 7919 + static_cast<std::uint64_t>(worker_id));
    if (options.sim == nullptr) {
      worker_body(worker_id, rng);
      if (workers_left.fetch_sub(1) == 1) workers_done.store(true);
      return;
    }
    try {
      options.sim->RegisterCurrentTask(worker_id);
      worker_body(worker_id, rng);
    } catch (const SimHalt&) {
      // Run halted (deadlock finding / budget); stack unwound via RAII.
    }
    // The LAST worker raises the shutdown flag while still registered:
    // the service task then observes it at a schedule-determined point,
    // not whenever the joining OS thread happens to run (which would make
    // the number of trailing service steps — and so the whole decision
    // trace — unreplayable).
    if (workers_left.fetch_sub(1) == 1) workers_done.store(true);
    options.sim->UnregisterCurrentTask();
  };
  auto service = [&] {
    if (options.sim == nullptr) {
      options.service(workers_done);
      return;
    }
    try {
      options.sim->RegisterCurrentTask(options.num_threads);
      options.service(workers_done);
    } catch (const SimHalt&) {
      // Same halt contract as the workers.
    }
    options.sim->UnregisterCurrentTask();
  };

  std::vector<std::thread> threads;
  threads.reserve(options.num_threads);
  for (int i = 0; i < options.num_threads; ++i) threads.emplace_back(worker, i);
  std::thread service_thread;
  if (options.service) service_thread = std::thread(service);
  for (auto& t : threads) t.join();
  if (service_thread.joinable()) service_thread.join();
  const auto end = std::chrono::steady_clock::now();

  ExecutorStats stats;
  stats.committed = committed.load();
  stats.aborted_attempts = aborted.load();
  stats.failed = failed.load();
  stats.crashed = crashed.load();
  stats.seconds = std::chrono::duration<double>(end - start).count();

  const LatencyDigest digest = MergeReservoirs(latencies);
  stats.latency_p50_us = digest.p50_us;
  stats.latency_p95_us = digest.p95_us;
  stats.latency_p99_us = digest.p99_us;
  stats.latency_max_us = digest.max_us;
  stats.cc = cc.metrics().ToMap();
  if (options.wal_metrics != nullptr) stats.wal = options.wal_metrics->ToMap();
  for (const auto& worker_map : per_class_by_worker) {
    for (const auto& [cls, row] : worker_map) {
      PerClassStats& merged = stats.per_class[cls];
      merged.committed += row.committed;
      merged.aborted_attempts += row.aborted_attempts;
      merged.failed += row.failed;
      merged.crashed += row.crashed;
    }
  }
  return stats;
}

}  // namespace hdd
