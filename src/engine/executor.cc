#include "engine/executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <optional>
#include <thread>
#include <vector>

#include "common/sim_hook.h"
#include "obs/trace.h"
#include "sim/sim_scheduler.h"

namespace hdd {

namespace {

// Runs one program to completion (commit, or failure after the retry
// budget). Returns the number of aborted attempts consumed; sets *failed
// and *crashed. Under simulation this is also the fault boundary: a
// SimFault thrown from an interruptible yield point inside the controller
// unwinds to here, the in-flight transaction is aborted (modelling
// recovery), and the attempt is retried (kAbort) or abandoned (kCrash).
std::uint64_t RunOne(ConcurrencyController& cc, const TxnProgram& program,
                     int max_retries, SimScheduler* sim, bool* failed,
                     bool* crashed) {
  HDD_TRACE_SPAN("exec", "txn");
  std::uint64_t aborted = 0;
  *failed = false;
  *crashed = false;
  for (int attempt = 0; attempt <= max_retries; ++attempt) {
    if (sim != nullptr) sim->OnTxnAttemptStart();
    std::optional<Result<TxnDescriptor>> txn;
    try {
      txn.emplace(cc.Begin(program.options));
    } catch (const SimFault& fault) {
      // Fault before the transaction existed: nothing to clean up.
      if (fault.kind == SimFaultKind::kCrash) {
        *crashed = true;
        return aborted;
      }
      ++aborted;
      continue;
    }
    if (!txn->ok()) {
      *failed = true;
      return aborted;
    }
    Status status;
    bool fault_crash = false;
    bool faulted = false;
    try {
      status = program.body(cc, **txn);
      if (status.ok()) {
        status = cc.Commit(**txn);
        if (status.ok()) return aborted;
        if (status.IsRetryable()) {
          // Commit-time validation failure (e.g. OCC): the controller has
          // already discarded the transaction; just restart the program.
          ++aborted;
          continue;
        }
        *failed = true;
        return aborted;
      }
    } catch (const SimFault& fault) {
      faulted = true;
      fault_crash = fault.kind == SimFaultKind::kCrash;
    }
    // Abort paths are non-interruptible yield sites, so this never throws
    // SimFault (a throw here would escape the attempt boundary); SimHalt
    // still propagates to the worker loop, unwinding via RAII only.
    (void)cc.Abort(**txn);  // best effort; the txn may already be gone
    if (faulted) {
      if (fault_crash) {
        *crashed = true;
        return aborted;
      }
      ++aborted;
      continue;
    }
    if (status.IsRetryable() || status.code() == StatusCode::kBusy) {
      ++aborted;
      // Exponential backoff breaks symmetric abort-retry livelocks
      // (e.g. TO read-modify-write storms on a hot granule). Under
      // simulation the sleep is a plain reschedule.
      if (attempt > 2) {
        SimSleep(std::chrono::microseconds(
            std::min(1 << std::min(attempt, 12), 2000)));
      }
      continue;
    }
    *failed = true;
    return aborted;
  }
  *failed = true;
  return aborted;
}

}  // namespace

LatencyDigest MergeReservoirs(const std::vector<LatencyReservoir>& parts) {
  LatencyDigest digest;
  // Each retained sample represents count/size observations of its
  // reservoir; weighted nearest-rank percentiles over the union.
  std::vector<std::pair<double, double>> weighted;  // (value, weight)
  double total_weight = 0.0;
  for (const LatencyReservoir& part : parts) {
    digest.count += part.count();
    if (part.samples().empty()) continue;
    digest.max_us = std::max(digest.max_us, part.max_us());
    const double weight = static_cast<double>(part.count()) /
                          static_cast<double>(part.samples().size());
    for (double value : part.samples()) {
      weighted.emplace_back(value, weight);
      total_weight += weight;
    }
  }
  if (weighted.empty()) return digest;
  std::sort(weighted.begin(), weighted.end());
  auto percentile = [&](double p) {
    const double target = p * total_weight;
    double cumulative = 0.0;
    for (const auto& [value, weight] : weighted) {
      cumulative += weight;
      if (cumulative >= target) return value;
    }
    return weighted.back().first;
  };
  digest.p50_us = percentile(0.50);
  digest.p95_us = percentile(0.95);
  digest.p99_us = percentile(0.99);
  return digest;
}

ExecutorStats RunWorkload(ConcurrencyController& cc, const Workload& workload,
                          std::uint64_t total_txns,
                          const ExecutorOptions& options) {
  std::atomic<std::uint64_t> next_index{0};
  std::atomic<std::uint64_t> committed{0};
  std::atomic<std::uint64_t> aborted{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> crashed{0};
  std::vector<LatencyReservoir> latencies;
  latencies.reserve(options.num_threads);
  for (int i = 0; i < options.num_threads; ++i) {
    latencies.emplace_back(/*capacity=*/4096,
                           options.seed * 6271 +
                               static_cast<std::uint64_t>(i));
  }

  // Under simulation, task identity must be assigned by US (worker id),
  // not by thread startup order — the one nondeterminism the scheduler
  // cannot own — and no task may run before all have registered. The
  // service loop, when present, is one more task (id = num_threads).
  if (options.sim != nullptr) {
    options.sim->ExpectTasks(options.num_threads +
                             (options.service ? 1 : 0));
  }

  std::atomic<std::uint64_t> done{0};
  std::atomic<bool> workers_done{false};
  std::atomic<int> workers_left{options.num_threads};
  const auto start = std::chrono::steady_clock::now();
  auto worker_body = [&](int worker_id, Rng& rng) {
    for (;;) {
      const std::uint64_t index = next_index.fetch_add(1);
      if (index >= total_txns) return;
      const TxnProgram program = workload.Make(index, rng);
      bool this_failed = false;
      bool this_crashed = false;
      const auto t0 = std::chrono::steady_clock::now();
      aborted.fetch_add(RunOne(cc, program, options.max_retries, options.sim,
                               &this_failed, &this_crashed));
      const auto t1 = std::chrono::steady_clock::now();
      if (this_crashed) {
        crashed.fetch_add(1);
      } else if (this_failed) {
        failed.fetch_add(1);
      } else {
        committed.fetch_add(1);
        latencies[worker_id].Add(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
      }
      if (options.on_txn_done) options.on_txn_done(done.fetch_add(1) + 1);
    }
  };
  auto worker = [&](int worker_id) {
    Rng rng(options.seed * 7919 + static_cast<std::uint64_t>(worker_id));
    if (options.sim == nullptr) {
      worker_body(worker_id, rng);
      if (workers_left.fetch_sub(1) == 1) workers_done.store(true);
      return;
    }
    try {
      options.sim->RegisterCurrentTask(worker_id);
      worker_body(worker_id, rng);
    } catch (const SimHalt&) {
      // Run halted (deadlock finding / budget); stack unwound via RAII.
    }
    // The LAST worker raises the shutdown flag while still registered:
    // the service task then observes it at a schedule-determined point,
    // not whenever the joining OS thread happens to run (which would make
    // the number of trailing service steps — and so the whole decision
    // trace — unreplayable).
    if (workers_left.fetch_sub(1) == 1) workers_done.store(true);
    options.sim->UnregisterCurrentTask();
  };
  auto service = [&] {
    if (options.sim == nullptr) {
      options.service(workers_done);
      return;
    }
    try {
      options.sim->RegisterCurrentTask(options.num_threads);
      options.service(workers_done);
    } catch (const SimHalt&) {
      // Same halt contract as the workers.
    }
    options.sim->UnregisterCurrentTask();
  };

  std::vector<std::thread> threads;
  threads.reserve(options.num_threads);
  for (int i = 0; i < options.num_threads; ++i) threads.emplace_back(worker, i);
  std::thread service_thread;
  if (options.service) service_thread = std::thread(service);
  for (auto& t : threads) t.join();
  if (service_thread.joinable()) service_thread.join();
  const auto end = std::chrono::steady_clock::now();

  ExecutorStats stats;
  stats.committed = committed.load();
  stats.aborted_attempts = aborted.load();
  stats.failed = failed.load();
  stats.crashed = crashed.load();
  stats.seconds = std::chrono::duration<double>(end - start).count();

  const LatencyDigest digest = MergeReservoirs(latencies);
  stats.latency_p50_us = digest.p50_us;
  stats.latency_p95_us = digest.p95_us;
  stats.latency_p99_us = digest.p99_us;
  stats.latency_max_us = digest.max_us;
  stats.cc = cc.metrics().ToMap();
  if (options.wal_metrics != nullptr) stats.wal = options.wal_metrics->ToMap();
  return stats;
}

}  // namespace hdd
