#include "engine/executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace hdd {

namespace {

// Runs one program to completion (commit, or failure after the retry
// budget). Returns the number of aborted attempts consumed; sets *failed.
std::uint64_t RunOne(ConcurrencyController& cc, const TxnProgram& program,
                     int max_retries, bool* failed) {
  std::uint64_t aborted = 0;
  *failed = false;
  for (int attempt = 0; attempt <= max_retries; ++attempt) {
    auto txn = cc.Begin(program.options);
    if (!txn.ok()) {
      *failed = true;
      return aborted;
    }
    Status status = program.body(cc, *txn);
    if (status.ok()) {
      status = cc.Commit(*txn);
      if (status.ok()) return aborted;
      if (status.IsRetryable()) {
        // Commit-time validation failure (e.g. OCC): the controller has
        // already discarded the transaction; just restart the program.
        ++aborted;
        continue;
      }
      *failed = true;
      return aborted;
    }
    (void)cc.Abort(*txn);  // best effort; the txn may already be gone
    if (status.IsRetryable() || status.code() == StatusCode::kBusy) {
      ++aborted;
      // Exponential backoff breaks symmetric abort-retry livelocks
      // (e.g. TO read-modify-write storms on a hot granule).
      if (attempt > 2) {
        std::this_thread::sleep_for(std::chrono::microseconds(
            std::min(1 << std::min(attempt, 12), 2000)));
      }
      continue;
    }
    *failed = true;
    return aborted;
  }
  *failed = true;
  return aborted;
}

}  // namespace

LatencyDigest MergeReservoirs(const std::vector<LatencyReservoir>& parts) {
  LatencyDigest digest;
  // Each retained sample represents count/size observations of its
  // reservoir; weighted nearest-rank percentiles over the union.
  std::vector<std::pair<double, double>> weighted;  // (value, weight)
  double total_weight = 0.0;
  for (const LatencyReservoir& part : parts) {
    digest.count += part.count();
    if (part.samples().empty()) continue;
    digest.max_us = std::max(digest.max_us, part.max_us());
    const double weight = static_cast<double>(part.count()) /
                          static_cast<double>(part.samples().size());
    for (double value : part.samples()) {
      weighted.emplace_back(value, weight);
      total_weight += weight;
    }
  }
  if (weighted.empty()) return digest;
  std::sort(weighted.begin(), weighted.end());
  auto percentile = [&](double p) {
    const double target = p * total_weight;
    double cumulative = 0.0;
    for (const auto& [value, weight] : weighted) {
      cumulative += weight;
      if (cumulative >= target) return value;
    }
    return weighted.back().first;
  };
  digest.p50_us = percentile(0.50);
  digest.p95_us = percentile(0.95);
  digest.p99_us = percentile(0.99);
  return digest;
}

ExecutorStats RunWorkload(ConcurrencyController& cc, const Workload& workload,
                          std::uint64_t total_txns,
                          const ExecutorOptions& options) {
  std::atomic<std::uint64_t> next_index{0};
  std::atomic<std::uint64_t> committed{0};
  std::atomic<std::uint64_t> aborted{0};
  std::atomic<std::uint64_t> failed{0};
  std::vector<LatencyReservoir> latencies;
  latencies.reserve(options.num_threads);
  for (int i = 0; i < options.num_threads; ++i) {
    latencies.emplace_back(/*capacity=*/4096,
                           options.seed * 6271 +
                               static_cast<std::uint64_t>(i));
  }

  const auto start = std::chrono::steady_clock::now();
  auto worker = [&](int worker_id) {
    Rng rng(options.seed * 7919 + static_cast<std::uint64_t>(worker_id));
    for (;;) {
      const std::uint64_t index = next_index.fetch_add(1);
      if (index >= total_txns) return;
      const TxnProgram program = workload.Make(index, rng);
      bool this_failed = false;
      const auto t0 = std::chrono::steady_clock::now();
      aborted.fetch_add(RunOne(cc, program, options.max_retries,
                               &this_failed));
      const auto t1 = std::chrono::steady_clock::now();
      if (this_failed) {
        failed.fetch_add(1);
      } else {
        committed.fetch_add(1);
        latencies[worker_id].Add(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(options.num_threads);
  for (int i = 0; i < options.num_threads; ++i) threads.emplace_back(worker, i);
  for (auto& t : threads) t.join();
  const auto end = std::chrono::steady_clock::now();

  ExecutorStats stats;
  stats.committed = committed.load();
  stats.aborted_attempts = aborted.load();
  stats.failed = failed.load();
  stats.seconds = std::chrono::duration<double>(end - start).count();

  const LatencyDigest digest = MergeReservoirs(latencies);
  stats.latency_p50_us = digest.p50_us;
  stats.latency_p95_us = digest.p95_us;
  stats.latency_p99_us = digest.p99_us;
  stats.latency_max_us = digest.max_us;
  return stats;
}

}  // namespace hdd
