#ifndef HDD_ENGINE_MESSAGE_MODEL_H_
#define HDD_ENGINE_MESSAGE_MODEL_H_

#include <cstdint>

#include "common/metrics.h"
#include "txn/schedule.h"

namespace hdd {

/// §7.5: the INFOPLEX database computer motivation. Each data segment is
/// served by its own segment controller (processor level); a transaction
/// executes at its class's level. This model counts the inter-level
/// synchronization messages a finished execution would have cost:
///
///  * an access to a granule OUTSIDE the transaction's root segment is a
///    remote request/response pair (2 messages); root-segment accesses
///    are local (0);
///  * a *registered* remote read additionally writes its registration at
///    the remote controller (+1 message) — the cost HDD deletes;
///  * every blocking episode is a park/wake notification pair
///    (+2 messages, taken from the metrics);
///  * read-only transactions run on a query processor: every access of
///    theirs is remote.
struct MessageStats {
  std::uint64_t remote_accesses = 0;
  std::uint64_t local_accesses = 0;
  std::uint64_t transfer_messages = 0;      // 2 per remote access
  std::uint64_t registration_messages = 0;  // 1 per registered remote read
  std::uint64_t blocking_messages = 0;      // 2 per blocking episode
  std::uint64_t total_messages = 0;
  double per_commit = 0.0;
};

MessageStats ComputeMessageStats(
    const std::vector<Step>& steps,
    const std::unordered_map<TxnId, ScheduleRecorder::TxnIdentity>&
        identities,
    const CcMetrics& metrics);

}  // namespace hdd

#endif  // HDD_ENGINE_MESSAGE_MODEL_H_
