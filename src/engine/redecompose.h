#ifndef HDD_ENGINE_REDECOMPOSE_H_
#define HDD_ENGINE_REDECOMPOSE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "engine/cost_model.h"
#include "graph/auto_decompose.h"
#include "hdd/hdd_controller.h"
#include "obs/footprint.h"
#include "storage/database.h"

namespace hdd {

/// Converts the engine's CostModel into the flat scoring prices the graph
/// layer's inference takes (graph/auto_decompose.h keeps the fields as
/// plain doubles to stay independent of this library).
InferenceCosts CostsFrom(const CostModel& model);

struct RedecomposerOptions {
  /// Footprints a window must hold before it is evaluated for drift.
  std::uint64_t window_txns = 64;
  /// Conflict-graph distance (ConflictDistance, in [0,1]) between the
  /// baseline trace and the current window above which the driver infers
  /// and hot-swaps a new decomposition.
  double drift_threshold = 0.30;
  /// Inference knobs, including min-support pruning and the
  /// mutation_misclassify_granule canary.
  InferenceOptions infer;
};

struct RedecomposerStats {
  std::uint64_t polls = 0;
  std::uint64_t windows = 0;       // windows evaluated for drift
  std::uint64_t drift_events = 0;  // windows whose distance crossed the bar
  std::uint64_t inferences = 0;
  std::uint64_t validations = 0;
  std::uint64_t restructures = 0;  // successful Restructure calls
  std::uint64_t busy_retries = 0;  // Restructure returned Busy (epoch open)
  /// Canary accounting: a mutated inference rejected by validation is a
  /// catch; a mutated inference that validation PASSED is an escape — the
  /// sim sweep fails the run on any escape.
  std::uint64_t canary_catches = 0;
  std::uint64_t canary_escapes = 0;
  double last_distance = 0;
};

/// One successful Restructure call, recorded so a crash-recovery harness
/// can re-apply the merges (in order) to a freshly constructed controller
/// before restoring control state — Restructure is deterministic given
/// the same sequence, so the rebuilt class structure is identical.
struct AppliedMerge {
  std::vector<SegmentId> write_segments;
  std::vector<SegmentId> read_segments;
};

/// The online re-decomposition driver: drains the FootprintRecorder the
/// controller feeds, folds footprints into a windowed FootprintTrace,
/// thresholds the conflict-graph distance against the running baseline,
/// and on drift infers a new decomposition (InferBestDecomposition over
/// baseline + window), PROVES it (ValidateDecomposition +
/// ValidateAgainstTrace — nothing unvalidated ever reaches the
/// controller), and legalizes every shaping access pattern through
/// HddController::Restructure. Restructure returning Busy (an epoch is
/// open — the PR 5 exclusion) leaves the plan pending; the next Poll
/// retries it.
///
/// Threading: Poll/RunUntil must be called from one thread (the driver is
/// the controller's only restructuring agent); the recorder side is
/// concurrent. Under deterministic simulation, run it as the executor's
/// service task (ExecutorOptions::service) so its steps interleave under
/// the model checker.
class Redecomposer {
 public:
  /// `db` fixes the granule flattening (segment sizes must not change
  /// during the run). All pointers are borrowed and must outlive this.
  Redecomposer(HddController* cc, FootprintRecorder* recorder,
               const Database* db, RedecomposerOptions options = {});

  /// One step: drain, evaluate drift, maybe infer + validate + swap.
  /// Returns Busy when a Restructure must wait for the current epoch,
  /// the first hard error otherwise (a validation failure with no canary
  /// armed is a hard error — it means inference broke its own proof
  /// obligation). Hard errors are also latched into last_error().
  Status Poll();

  /// Service loop for ExecutorOptions::service / EpochExecutorOptions::
  /// service: polls until `done`, yielding between polls (a real sleep
  /// outside simulation), then drains one final time.
  void RunUntil(const std::atomic<bool>& done);

  /// Convenience binding for the executor options.
  std::function<void(const std::atomic<bool>&)> AsService() {
    return [this](const std::atomic<bool>& done) { RunUntil(done); };
  }

  const RedecomposerStats& stats() const { return stats_; }
  const Status& last_error() const { return last_error_; }
  const std::vector<AppliedMerge>& applied_merges() const { return applied_; }
  /// The trace accumulated as baseline so far (post-merge of evaluated
  /// windows) — exposed for tests.
  const FootprintTrace& baseline() const { return baseline_; }

 private:
  std::uint32_t Flatten(std::uint64_t packed) const;
  SegmentId SegmentOfFlat(std::uint32_t flat) const;
  Status EvaluateWindow();
  Status ApplyPending();

  HddController* cc_;
  FootprintRecorder* recorder_;
  RedecomposerOptions options_;
  std::vector<std::uint32_t> segment_base_;  // prefix sums of segment sizes
  std::uint32_t num_granules_ = 0;

  FootprintTrace baseline_;
  FootprintTrace window_;
  std::vector<AppliedMerge> pending_;
  std::vector<AppliedMerge> applied_;
  RedecomposerStats stats_;
  Status last_error_ = Status::OK();
};

}  // namespace hdd

#endif  // HDD_ENGINE_REDECOMPOSE_H_
