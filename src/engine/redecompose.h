#ifndef HDD_ENGINE_REDECOMPOSE_H_
#define HDD_ENGINE_REDECOMPOSE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/status.h"
#include "engine/cost_model.h"
#include "graph/auto_decompose.h"
#include "hdd/hdd_controller.h"
#include "obs/footprint.h"
#include "storage/database.h"

namespace hdd {

/// Converts the engine's CostModel into the flat scoring prices the graph
/// layer's inference takes (graph/auto_decompose.h keeps the fields as
/// plain doubles to stay independent of this library).
InferenceCosts CostsFrom(const CostModel& model);

struct RedecomposerOptions {
  /// Footprints a window must hold before it is evaluated for drift.
  /// With `adaptive_window` set this is only the STARTING size; the
  /// effective size is re-derived after every evaluated window (see
  /// DeriveWindowTxns).
  std::uint64_t window_txns = 64;
  /// Size the window from the observed dispersion of recent window
  /// distances instead of holding `window_txns` fixed. The window is the
  /// drift estimator's sample size: when the coefficient of variation of
  /// recent distances is above `window_cov_hi` the estimate is too noisy
  /// to threshold and the window doubles (more footprints per estimate);
  /// below `window_cov_lo` the estimate is steadier than it needs to be
  /// and the window halves (drift is detected sooner). Inside the band
  /// the size holds.
  bool adaptive_window = true;
  /// Bounds for the adaptive size. A configured `window_txns` outside
  /// this range widens the range to include it, so explicitly small (or
  /// large) windows keep working unclamped.
  std::uint64_t window_min_txns = 16;
  std::uint64_t window_max_txns = 256;
  double window_cov_lo = 0.15;
  double window_cov_hi = 0.50;
  /// Conflict-graph distance (ConflictDistance, in [0,1]) between the
  /// baseline trace and the current window above which the driver infers
  /// and hot-swaps a new decomposition.
  double drift_threshold = 0.30;
  /// Inference knobs, including min-support pruning and the
  /// mutation_misclassify_granule canary.
  InferenceOptions infer;
};

struct RedecomposerStats {
  std::uint64_t polls = 0;
  std::uint64_t windows = 0;       // windows evaluated for drift
  std::uint64_t drift_events = 0;  // windows whose distance crossed the bar
  std::uint64_t inferences = 0;
  std::uint64_t validations = 0;
  std::uint64_t restructures = 0;  // successful Restructure calls
  std::uint64_t busy_retries = 0;  // Restructure returned Busy (epoch open)
  /// Canary accounting: a mutated inference rejected by validation is a
  /// catch; a mutated inference that validation PASSED is an escape — the
  /// sim sweep fails the run on any escape.
  std::uint64_t canary_catches = 0;
  std::uint64_t canary_escapes = 0;
  double last_distance = 0;
  /// Adaptive window accounting: the size currently in force and how
  /// often DeriveWindowTxns moved it.
  std::uint64_t window_txns_current = 0;
  std::uint64_t window_grows = 0;
  std::uint64_t window_shrinks = 0;
};

/// Derives the next drift-window size from the coefficient of variation
/// (stddev / mean) of the distances the most recent windows produced.
/// Fewer than three samples, or a CoV inside [cov_lo, cov_hi], keep
/// `current`; a CoV above the band doubles it (noisy estimates need more
/// samples); a CoV below the band — or a mean of ~zero, the workload
/// sitting exactly on the baseline — halves it (a stable estimate can
/// afford to react faster). Results are clamped to [min_txns, max_txns]
/// (floored at 1). Exposed as a free function for direct unit testing.
std::uint64_t DeriveWindowTxns(const std::vector<double>& recent_distances,
                               std::uint64_t current, std::uint64_t min_txns,
                               std::uint64_t max_txns, double cov_lo,
                               double cov_hi);

/// One successful Restructure call, recorded so a crash-recovery harness
/// can re-apply the merges (in order) to a freshly constructed controller
/// before restoring control state — Restructure is deterministic given
/// the same sequence, so the rebuilt class structure is identical.
struct AppliedMerge {
  std::vector<SegmentId> write_segments;
  std::vector<SegmentId> read_segments;
};

/// The online re-decomposition driver: drains the FootprintRecorder the
/// controller feeds, folds footprints into a windowed FootprintTrace,
/// thresholds the conflict-graph distance against the running baseline,
/// and on drift infers a new decomposition (InferBestDecomposition over
/// baseline + window), PROVES it (ValidateDecomposition +
/// ValidateAgainstTrace — nothing unvalidated ever reaches the
/// controller), and legalizes every shaping access pattern through
/// HddController::Restructure. Restructure returning Busy (an epoch is
/// open — the PR 5 exclusion) leaves the plan pending; the next Poll
/// retries it.
///
/// Threading: Poll/RunUntil must be called from one thread (the driver is
/// the controller's only restructuring agent); the recorder side is
/// concurrent. Under deterministic simulation, run it as the executor's
/// service task (ExecutorOptions::service) so its steps interleave under
/// the model checker.
class Redecomposer {
 public:
  /// `db` fixes the granule flattening (segment sizes must not change
  /// during the run). All pointers are borrowed and must outlive this.
  Redecomposer(HddController* cc, FootprintRecorder* recorder,
               const Database* db, RedecomposerOptions options = {});

  /// One step: drain, evaluate drift, maybe infer + validate + swap.
  /// Returns Busy when a Restructure must wait for the current epoch,
  /// the first hard error otherwise (a validation failure with no canary
  /// armed is a hard error — it means inference broke its own proof
  /// obligation). Hard errors are also latched into last_error().
  Status Poll();

  /// Service loop for ExecutorOptions::service / EpochExecutorOptions::
  /// service: polls until `done`, yielding between polls (a real sleep
  /// outside simulation), then drains one final time.
  void RunUntil(const std::atomic<bool>& done);

  /// Convenience binding for the executor options.
  std::function<void(const std::atomic<bool>&)> AsService() {
    return [this](const std::atomic<bool>& done) { RunUntil(done); };
  }

  const RedecomposerStats& stats() const { return stats_; }
  const Status& last_error() const { return last_error_; }
  const std::vector<AppliedMerge>& applied_merges() const { return applied_; }
  /// The trace accumulated as baseline so far (post-merge of evaluated
  /// windows) — exposed for tests.
  const FootprintTrace& baseline() const { return baseline_; }

 private:
  std::uint32_t Flatten(std::uint64_t packed) const;
  SegmentId SegmentOfFlat(std::uint32_t flat) const;
  Status EvaluateWindow();
  Status ApplyPending();
  /// Records an evaluated window's distance and, under adaptive sizing,
  /// re-derives the effective window size from the recent history.
  void ResizeWindow(double distance);

  HddController* cc_;
  FootprintRecorder* recorder_;
  RedecomposerOptions options_;
  std::vector<std::uint32_t> segment_base_;  // prefix sums of segment sizes
  std::uint32_t num_granules_ = 0;

  /// Effective window size (== options_.window_txns unless adaptive
  /// sizing has moved it) and its clamp range, widened in the constructor
  /// to include the configured starting size.
  std::uint64_t window_txns_ = 0;
  std::uint64_t window_floor_ = 1;
  std::uint64_t window_ceil_ = 1;
  /// Distances of the most recent evaluated windows (bounded history;
  /// the CoV input to DeriveWindowTxns).
  std::deque<double> recent_distances_;

  FootprintTrace baseline_;
  FootprintTrace window_;
  std::vector<AppliedMerge> pending_;
  std::vector<AppliedMerge> applied_;
  RedecomposerStats stats_;
  Status last_error_ = Status::OK();
};

}  // namespace hdd

#endif  // HDD_ENGINE_REDECOMPOSE_H_
