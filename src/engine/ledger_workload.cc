#include "engine/ledger_workload.h"

#include <memory>

namespace hdd {

LedgerWorkload::LedgerWorkload(LedgerWorkloadParams params)
    : params_(params) {}

PartitionSpec LedgerWorkload::Spec() const {
  PartitionSpec spec;
  spec.segment_names = {"ledger", "summary"};
  spec.transaction_types = {
      {"append", 0, {}},
      {"summarize", 1, {0}},
  };
  return spec;
}

std::unique_ptr<Database> LedgerWorkload::MakeDatabase() const {
  auto db = std::make_unique<Database>(
      std::vector<std::string>{"ledger", "summary"}, 0u);
  for (std::uint32_t i = 0; i < params_.items * (params_.capacity + 1);
       ++i) {
    db->segment(0).Allocate(0);
  }
  for (std::uint32_t i = 0; i < params_.items; ++i) {
    db->segment(1).Allocate(0);
  }
  return db;
}

TxnProgram LedgerWorkload::Make(std::uint64_t index, Rng& rng) const {
  (void)index;
  const std::uint32_t item =
      static_cast<std::uint32_t>(rng.NextBounded(params_.items));
  const double total = params_.append_weight + params_.summarize_weight +
                       params_.audit_weight;
  const double roll = rng.NextDouble() * total;
  TxnProgram program;

  if (roll < params_.append_weight) {
    // Append: claim the cursor slot, write the immutable event, advance.
    const Value amount = static_cast<Value>(rng.NextInRange(1, 9));
    const LedgerWorkload* self = this;
    program.options.txn_class = 0;
    program.body = [self, item, amount](ConcurrencyController& cc,
                                        const TxnDescriptor& txn) -> Status {
      HDD_ASSIGN_OR_RETURN(Value cursor, cc.Read(txn, self->Cursor(item)));
      const auto slot = static_cast<std::uint32_t>(cursor);
      if (slot >= self->params_.capacity) return Status::OK();  // full
      HDD_RETURN_IF_ERROR(cc.Write(txn, self->Event(item, slot), amount));
      return cc.Write(txn, self->Cursor(item), cursor + 1);
    };
    return program;
  }

  if (roll < params_.append_weight + params_.summarize_weight) {
    // Summarize: cross-class prefix scan, then post.
    const LedgerWorkload* self = this;
    program.options.txn_class = 1;
    program.body = [self, item](ConcurrencyController& cc,
                                const TxnDescriptor& txn) -> Status {
      HDD_ASSIGN_OR_RETURN(Value cursor, cc.Read(txn, self->Cursor(item)));
      Value sum = 0;
      for (std::uint32_t slot = 0;
           slot < static_cast<std::uint32_t>(cursor); ++slot) {
        HDD_ASSIGN_OR_RETURN(Value v, cc.Read(txn, self->Event(item, slot)));
        // Write-once invariant: a slot below the cursor read from the
        // same consistent cut is always a committed, non-zero event.
        if (v == 0) {
          return Status::Internal(
              "ledger consistency violated: unwritten slot below cursor");
        }
        sum += v;
      }
      return cc.Write(txn, self->Summary(item), sum);
    };
    return program;
  }

  // Audit (read-only).
  const LedgerWorkload* self = this;
  program.options.read_only = true;
  program.options.txn_class = kReadOnlyClass;
  program.body = [self, item](ConcurrencyController& cc,
                              const TxnDescriptor& txn) -> Status {
    HDD_ASSIGN_OR_RETURN(Value cursor, cc.Read(txn, self->Cursor(item)));
    HDD_ASSIGN_OR_RETURN(Value summary, cc.Read(txn, self->Summary(item)));
    // Every event is at most 9, so a consistent summary cannot exceed
    // 9 * cursor for the cut the audit observes... the summary may lag
    // the cursor (it was posted from an older prefix), so only the upper
    // bound is checkable.
    if (summary > 9 * cursor) {
      return Status::Internal("audit saw a summary ahead of the ledger");
    }
    return Status::OK();
  };
  return program;
}

}  // namespace hdd
