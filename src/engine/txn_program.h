#ifndef HDD_ENGINE_TXN_PROGRAM_H_
#define HDD_ENGINE_TXN_PROGRAM_H_

#include <functional>
#include <vector>

#include "cc/controller.h"
#include "common/rng.h"
#include "txn/transaction.h"

namespace hdd {

/// One executable transaction: its declared options (class, read-only)
/// plus a body run between Begin and Commit. The body returns:
///  * OK            -> the executor commits;
///  * a retryable   -> the executor aborts and restarts the program with a
///    status           fresh Begin (fresh timestamp);
///  * other errors  -> the executor aborts and surfaces the error.
struct TxnProgram {
  TxnOptions options;
  std::function<Status(ConcurrencyController&, const TxnDescriptor&)> body;

  /// Declared own-segment (Protocol B) access sets, used by the epoch
  /// executor to build the intra-epoch dependency graph. Update programs
  /// that run under the epoch executor MUST declare every own-segment
  /// granule they read or write (the graph replaces MVTO's
  /// younger-reader write check for epoch transactions, so an undeclared
  /// own-segment access would be un-ordered). Cross-segment Protocol A
  /// reads need not be declared. Read-only programs leave both empty.
  std::vector<GranuleRef> declared_reads;
  std::vector<GranuleRef> declared_writes;
};

/// A stream of transaction programs. `Make` must be thread-safe for
/// distinct indices; `rng` is the calling worker's private generator.
class Workload {
 public:
  virtual ~Workload() = default;

  /// The program for the `index`-th transaction of the run.
  virtual TxnProgram Make(std::uint64_t index, Rng& rng) const = 0;
};

}  // namespace hdd

#endif  // HDD_ENGINE_TXN_PROGRAM_H_
