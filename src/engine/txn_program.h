#ifndef HDD_ENGINE_TXN_PROGRAM_H_
#define HDD_ENGINE_TXN_PROGRAM_H_

#include <functional>

#include "cc/controller.h"
#include "common/rng.h"
#include "txn/transaction.h"

namespace hdd {

/// One executable transaction: its declared options (class, read-only)
/// plus a body run between Begin and Commit. The body returns:
///  * OK            -> the executor commits;
///  * a retryable   -> the executor aborts and restarts the program with a
///    status           fresh Begin (fresh timestamp);
///  * other errors  -> the executor aborts and surfaces the error.
struct TxnProgram {
  TxnOptions options;
  std::function<Status(ConcurrencyController&, const TxnDescriptor&)> body;
};

/// A stream of transaction programs. `Make` must be thread-safe for
/// distinct indices; `rng` is the calling worker's private generator.
class Workload {
 public:
  virtual ~Workload() = default;

  /// The program for the `index`-th transaction of the run.
  virtual TxnProgram Make(std::uint64_t index, Rng& rng) const = 0;
};

}  // namespace hdd

#endif  // HDD_ENGINE_TXN_PROGRAM_H_
