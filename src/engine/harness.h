#ifndef HDD_ENGINE_HARNESS_H_
#define HDD_ENGINE_HARNESS_H_

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "cc/controller.h"
#include "engine/executor.h"
#include "engine/txn_program.h"
#include "graph/dhg.h"

namespace hdd {

/// Every concurrency-control technique the library implements, by name.
enum class ControllerKind {
  kHdd,         // the paper's technique, Protocol B = MVTO
  kHddBasicTo,  // ablation: Protocol B = basic TO
  kTwoPhase,    // strict 2PL, waits-for deadlock detection
  kTwoPhaseWaitDie,
  kTwoPhaseNoWait,  // conflicts answered kBusy; caller restarts
  kTimestampOrdering,
  kMvto,
  kMv2pl,   // 2PL updates + snapshot read-only transactions
  kSdd1,    // conservative class pipelines
  kOcc,     // optimistic, backward validation [Kung & Robinson 81]
  kSerial,  // one transaction at a time (reference lower bound)
};

std::string_view ControllerKindName(ControllerKind kind);
std::vector<ControllerKind> AllControllerKinds();

/// Instantiates a controller over `db`/`clock`. `schema` is required for
/// kHdd/kHddBasicTo and ignored elsewhere.
std::unique_ptr<ConcurrencyController> CreateController(
    ControllerKind kind, Database* db, LogicalClock* clock,
    const HierarchySchema* schema);

/// One row of a Figure-10-style comparison table.
struct ComparisonRow {
  std::string controller;
  ExecutorStats stats;
  std::uint64_t read_locks = 0;
  std::uint64_t read_timestamps = 0;
  std::uint64_t unregistered_reads = 0;
  std::uint64_t blocked_reads = 0;
  std::uint64_t blocked_writes = 0;
  std::uint64_t aborts = 0;
  std::uint64_t deadlocks = 0;
  bool serializable = false;
};

/// Runs `workload` for `total_txns` transactions on a fresh database under
/// `kind`, audits the recorded schedule for serializability, and returns
/// the comparison row. `make_db` rebuilds the database per run so
/// controllers do not observe each other's versions.
ComparisonRow MeasureController(
    ControllerKind kind, const Workload& workload,
    const std::function<std::unique_ptr<Database>()>& make_db,
    const HierarchySchema* schema, std::uint64_t total_txns,
    const ExecutorOptions& options = {});

/// Pretty-prints rows as an aligned table.
void PrintComparisonTable(const std::vector<ComparisonRow>& rows,
                          std::ostream& os);

}  // namespace hdd

#endif  // HDD_ENGINE_HARNESS_H_
