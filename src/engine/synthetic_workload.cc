#include "engine/synthetic_workload.h"

#include <string>
#include <vector>

namespace hdd {

SyntheticWorkload::SyntheticWorkload(SyntheticWorkloadParams params)
    : params_(params) {
  if (params_.granule_skew > 0) {
    granule_picker_.emplace(params_.granules_per_segment,
                            params_.granule_skew);
  }
}

PartitionSpec SyntheticWorkload::Spec() const {
  PartitionSpec spec;
  for (int d = 0; d < params_.depth; ++d) {
    spec.segment_names.push_back("L" + std::to_string(d));
  }
  for (int d = 0; d < params_.depth; ++d) {
    TransactionTypeSpec type;
    type.name = "class" + std::to_string(d);
    type.root_segment = d;
    for (int up = d - 1; up >= 0; --up) type.read_segments.push_back(up);
    spec.transaction_types.push_back(type);
  }
  return spec;
}

std::unique_ptr<Database> SyntheticWorkload::MakeDatabase() const {
  return std::make_unique<Database>(params_.depth,
                                    params_.granules_per_segment, 0);
}

std::uint32_t SyntheticWorkload::PickGranule(Rng& rng) const {
  return static_cast<std::uint32_t>(
      granule_picker_.has_value()
          ? granule_picker_->Next(rng)
          : rng.NextBounded(params_.granules_per_segment));
}

TxnProgram SyntheticWorkload::Make(std::uint64_t index, Rng& rng) const {
  (void)index;
  TxnProgram program;
  if (rng.NextBool(params_.read_only_fraction)) {
    std::vector<GranuleRef> reads;
    for (int d = 0; d < params_.depth; ++d) {
      for (int r = 0; r < params_.upper_reads; ++r) {
        reads.push_back({d, PickGranule(rng)});
      }
    }
    program.options.read_only = true;
    program.options.txn_class = kReadOnlyClass;
    program.body = [reads](ConcurrencyController& cc,
                           const TxnDescriptor& txn) -> Status {
      Value checksum = 0;
      for (GranuleRef ref : reads) {
        HDD_ASSIGN_OR_RETURN(Value v, cc.Read(txn, ref));
        checksum += v;
      }
      (void)checksum;
      return Status::OK();
    };
    return program;
  }

  const int cls = static_cast<int>(rng.NextBounded(params_.depth));
  std::vector<GranuleRef> upper;
  for (int d = cls - 1; d >= 0; --d) {
    for (int r = 0; r < params_.upper_reads; ++r) {
      upper.push_back({d, PickGranule(rng)});
    }
  }
  std::vector<std::uint32_t> own_read_granules, own_write_granules;
  for (int r = 0; r < params_.own_reads; ++r) {
    own_read_granules.push_back(PickGranule(rng));
  }
  for (int w = 0; w < params_.own_writes; ++w) {
    own_write_granules.push_back(PickGranule(rng));
  }
  program.options.txn_class = cls;
  // Declared own-segment access sets: the epoch executor's dependency
  // graph relies on these covering every Protocol B access the body
  // makes (the upper reads are Protocol A and need no declaration).
  for (std::uint32_t g : own_read_granules) {
    program.declared_reads.push_back({cls, g});
  }
  for (std::uint32_t g : own_write_granules) {
    program.declared_writes.push_back({cls, g});
  }
  program.body = [cls, upper, own_read_granules, own_write_granules](
                     ConcurrencyController& cc,
                     const TxnDescriptor& txn) -> Status {
    Value acc = 0;
    for (GranuleRef ref : upper) {
      HDD_ASSIGN_OR_RETURN(Value v, cc.Read(txn, ref));
      acc += v;
    }
    for (std::uint32_t g : own_read_granules) {
      HDD_ASSIGN_OR_RETURN(Value v, cc.Read(txn, {cls, g}));
      acc += v;
    }
    for (std::uint32_t g : own_write_granules) {
      HDD_RETURN_IF_ERROR(cc.Write(txn, {cls, g}, acc + 1));
    }
    return Status::OK();
  };
  return program;
}

}  // namespace hdd
