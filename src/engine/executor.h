#ifndef HDD_ENGINE_EXECUTOR_H_
#define HDD_ENGINE_EXECUTOR_H_

#include <cstdint>

#include "cc/controller.h"
#include "engine/txn_program.h"

namespace hdd {

struct ExecutorOptions {
  int num_threads = 4;
  /// Restart budget per transaction before it is counted as failed.
  int max_retries = 10000;
  std::uint64_t seed = 1;
};

struct ExecutorStats {
  std::uint64_t committed = 0;
  std::uint64_t aborted_attempts = 0;  // retries consumed by conflicts
  std::uint64_t failed = 0;            // budget exhausted / hard errors
  double seconds = 0.0;

  /// End-to-end latency (first Begin to final Commit, retries included)
  /// of committed transactions, in microseconds.
  double latency_p50_us = 0.0;
  double latency_p95_us = 0.0;
  double latency_p99_us = 0.0;
  double latency_max_us = 0.0;

  double Throughput() const {
    return seconds > 0 ? static_cast<double>(committed) / seconds : 0;
  }
};

/// Runs `total_txns` programs from `workload` against `cc` with
/// `num_threads` workers, retrying on retryable conflicts (kAborted,
/// kDeadlock, kBusy). Blocking controllers park workers internally.
ExecutorStats RunWorkload(ConcurrencyController& cc, const Workload& workload,
                          std::uint64_t total_txns,
                          const ExecutorOptions& options = {});

}  // namespace hdd

#endif  // HDD_ENGINE_EXECUTOR_H_
