#ifndef HDD_ENGINE_EXECUTOR_H_
#define HDD_ENGINE_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cc/controller.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "engine/txn_program.h"

namespace hdd {

class SimScheduler;

/// Terminal result of driving one program to completion (commit, budget
/// exhaustion, or sim-crash abandonment). Exactly one of committed /
/// failed / crashed is set.
struct ProgramResult {
  bool committed = false;
  bool failed = false;   // budget exhausted / hard error
  bool crashed = false;  // abandoned by an injected mid-txn crash (sim)
  std::uint64_t aborted_attempts = 0;  // retries consumed by conflicts
};

/// Runs one program to completion against `cc`: Begin/body/Commit with
/// retry on retryable conflicts (kAborted, kDeadlock, kBusy) up to
/// `max_retries`, exponential backoff after repeated aborts, and (under
/// simulation) the attempt-level fault boundary. This is the executor's
/// core, exposed so push-based drivers — the network server's worker
/// pool — run exactly the engine the workload executor runs.
ProgramResult RunProgram(ConcurrencyController& cc, const TxnProgram& program,
                         int max_retries = 10000, SimScheduler* sim = nullptr);

struct ExecutorOptions {
  int num_threads = 4;
  /// Restart budget per transaction before it is counted as failed.
  int max_retries = 10000;
  std::uint64_t seed = 1;
  /// Deterministic simulation backend. When set, each worker registers as
  /// a task of this scheduler (task id = worker id), every interleaving
  /// decision is the scheduler's, injected SimFault aborts/crashes are
  /// handled at the attempt boundary, and backoff sleeps become
  /// reschedules. When null, workers are plain OS threads.
  SimScheduler* sim = nullptr;
  /// Called by the finishing worker after each program completes (commit,
  /// failure, or crash-abandonment), with the number of programs finished
  /// so far. The crash-recovery harness uses it to trigger mid-run
  /// checkpoints; it runs on the worker thread, so under simulation it may
  /// yield but must not block outside scheduler control.
  std::function<void(std::uint64_t)> on_txn_done;
  /// When set, a snapshot of these WAL counters is folded into
  /// ExecutorStats::wal at the end of the run.
  const WalMetrics* wal_metrics = nullptr;
  /// Optional service loop run for the whole duration of the workload,
  /// alongside the workers (the online Redecomposer's poll loop rides
  /// here; see engine/redecompose.h). Under simulation it registers as
  /// one extra scheduler task (id = num_threads), so its steps interleave
  /// under the model checker like any worker's — it must yield through
  /// the sim hooks. The flag flips to true once every worker finished its
  /// stream; the service must observe it and return promptly. The LAST
  /// worker raises the flag before unregistering its task, so the number
  /// of service steps after the final transaction is fixed by the
  /// schedule, not by OS timing — replays stay byte-identical.
  std::function<void(const std::atomic<bool>& workers_done)> service;
  /// Called on the worker thread after each program reaches its terminal
  /// result, with the program's stream index. May run concurrently for
  /// different programs; the callee synchronizes. The network server uses
  /// it to turn completions into responses.
  std::function<void(std::uint64_t index, const ProgramResult&)>
      on_program_done;
};

/// Fixed-capacity uniform sample of latency observations (Vitter's
/// algorithm R), one per worker thread: memory stays bounded no matter how
/// long the run, each worker samples without synchronization, and the
/// per-thread reservoirs merge into percentile estimates afterwards.
/// Deterministic for a given seed and observation sequence.
class LatencyReservoir {
 public:
  explicit LatencyReservoir(std::size_t capacity = 4096,
                            std::uint64_t seed = 1)
      : capacity_(capacity), rng_(seed) {
    samples_.reserve(capacity);
  }

  void Add(double value_us) {
    ++count_;
    if (value_us > max_us_) max_us_ = value_us;
    if (samples_.size() < capacity_) {
      samples_.push_back(value_us);
      return;
    }
    // Keep each of the `count_` observations with probability
    // capacity / count: replace a uniformly random slot.
    const std::uint64_t slot = rng_.NextBounded(count_);
    if (slot < capacity_) samples_[slot] = value_us;
  }

  /// Observations offered (not the retained sample size).
  std::uint64_t count() const { return count_; }
  /// Exact maximum over ALL observations (tracked outside the sample).
  double max_us() const { return max_us_; }
  const std::vector<double>& samples() const { return samples_; }

 private:
  std::size_t capacity_;
  std::uint64_t count_ = 0;
  double max_us_ = 0.0;
  std::vector<double> samples_;
  Rng rng_;
};

/// Percentiles over the union of several reservoirs. Each retained sample
/// stands for count/size observations of its own reservoir, so reservoirs
/// that saw more traffic weigh proportionally more (plain concatenation
/// would skew toward idle threads). The maximum is exact.
struct LatencyDigest {
  std::uint64_t count = 0;  // total observations across reservoirs
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};
LatencyDigest MergeReservoirs(const std::vector<LatencyReservoir>& parts);

/// One class's slice of an executor run — the end-of-run report carries a
/// row per class so server-side admission/shed decisions are auditable
/// against what each class actually committed and aborted.
struct PerClassStats {
  std::uint64_t committed = 0;
  std::uint64_t aborted_attempts = 0;
  std::uint64_t failed = 0;
  std::uint64_t crashed = 0;
};

struct ExecutorStats {
  std::uint64_t committed = 0;
  std::uint64_t aborted_attempts = 0;  // retries consumed by conflicts
  std::uint64_t failed = 0;            // budget exhausted / hard errors
  std::uint64_t crashed = 0;  // abandoned by an injected mid-txn crash (sim)
  /// Epochs published by the epoch executor (0 under per-txn execution).
  std::uint64_t epochs = 0;
  double seconds = 0.0;

  /// End-to-end latency (first Begin to final Commit, retries included)
  /// of committed transactions, in microseconds; percentiles estimated
  /// from merged per-thread reservoirs, the max exact.
  double latency_p50_us = 0.0;
  double latency_p95_us = 0.0;
  double latency_p99_us = 0.0;
  double latency_max_us = 0.0;

  /// Controller metrics registry snapshot at end of run (keys as in
  /// CcMetrics::ToMap) — the executor's report is a superset of what the
  /// ad-hoc metric structs used to surface.
  std::map<std::string, std::uint64_t> cc;

  /// WAL counters at end of run (empty unless ExecutorOptions::wal_metrics
  /// was set); keys as in WalMetrics::ToMap.
  std::map<std::string, std::uint64_t> wal;

  /// Per-class admission/abort breakdown, keyed by the program's declared
  /// class (kReadOnlyClass = ad-hoc read-only). Populated by RunWorkload
  /// and RunWorkloadEpochs.
  std::map<ClassId, PerClassStats> per_class;

  double Throughput() const {
    return seconds > 0 ? static_cast<double>(committed) / seconds : 0;
  }
};

/// Runs `total_txns` programs from `workload` against `cc` with
/// `num_threads` workers, retrying on retryable conflicts (kAborted,
/// kDeadlock, kBusy). Blocking controllers park workers internally.
ExecutorStats RunWorkload(ConcurrencyController& cc, const Workload& workload,
                          std::uint64_t total_txns,
                          const ExecutorOptions& options = {});

}  // namespace hdd

#endif  // HDD_ENGINE_EXECUTOR_H_
