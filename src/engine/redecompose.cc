#include "engine/redecompose.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "common/sim_hook.h"

namespace hdd {

InferenceCosts CostsFrom(const CostModel& model) {
  InferenceCosts costs;
  costs.read_version_us = model.read_version_us;
  costs.write_version_us = model.write_version_us;
  costs.registration_us = model.registration_us;
  costs.link_eval_us = model.link_eval_us;
  return costs;
}

std::uint64_t DeriveWindowTxns(const std::vector<double>& recent_distances,
                               std::uint64_t current, std::uint64_t min_txns,
                               std::uint64_t max_txns, double cov_lo,
                               double cov_hi) {
  const auto clamp = [min_txns, max_txns](std::uint64_t w) {
    w = std::max<std::uint64_t>(w, 1);
    return std::min(max_txns, std::max(min_txns, w));
  };
  if (recent_distances.size() < 3) return clamp(current);
  double mean = 0;
  for (const double d : recent_distances) mean += d;
  mean /= static_cast<double>(recent_distances.size());
  if (mean < 1e-9) {
    // Every recent window sat exactly on the baseline; a smaller window
    // reacts faster when the workload finally moves.
    return clamp(current / 2);
  }
  double variance = 0;
  for (const double d : recent_distances) {
    variance += (d - mean) * (d - mean);
  }
  variance /= static_cast<double>(recent_distances.size());
  const double cov = std::sqrt(variance) / mean;
  if (cov > cov_hi) return clamp(current * 2);
  if (cov < cov_lo) return clamp(current / 2);
  return clamp(current);
}

Redecomposer::Redecomposer(HddController* cc, FootprintRecorder* recorder,
                           const Database* db, RedecomposerOptions options)
    : cc_(cc), recorder_(recorder), options_(options) {
  window_txns_ = std::max<std::uint64_t>(options_.window_txns, 1);
  window_floor_ = std::min(options_.window_min_txns, window_txns_);
  window_ceil_ = std::max(options_.window_max_txns, window_txns_);
  stats_.window_txns_current = window_txns_;
  segment_base_.reserve(static_cast<std::size_t>(db->num_segments()));
  std::uint32_t base = 0;
  for (int s = 0; s < db->num_segments(); ++s) {
    segment_base_.push_back(base);
    base += db->segment(s).size();
  }
  num_granules_ = base;
}

std::uint32_t Redecomposer::Flatten(std::uint64_t packed) const {
  return segment_base_[FootprintRecorder::Segment(packed)] +
         FootprintRecorder::Index(packed);
}

SegmentId Redecomposer::SegmentOfFlat(std::uint32_t flat) const {
  const auto it =
      std::upper_bound(segment_base_.begin(), segment_base_.end(), flat);
  return static_cast<SegmentId>(it - segment_base_.begin()) - 1;
}

Status Redecomposer::Poll() {
  ++stats_.polls;
  for (RawFootprint& fp : recorder_->Drain()) {
    std::vector<std::uint32_t> writes;
    std::vector<std::uint32_t> reads;
    writes.reserve(fp.writes.size());
    reads.reserve(fp.reads.size());
    for (const std::uint64_t p : fp.writes) writes.push_back(Flatten(p));
    for (const std::uint64_t p : fp.reads) reads.push_back(Flatten(p));
    window_.Add(std::move(writes), std::move(reads), fp.declared);
  }
  Status status = Status::OK();
  if (!pending_.empty()) {
    // A previous swap is still blocked on the epoch exclusion; finish it
    // before evaluating new windows (the plan stays valid — it was
    // derived from a trace that only grows).
    status = ApplyPending();
  } else if (window_.num_transactions() >= window_txns_) {
    status = EvaluateWindow();
  }
  if (!status.ok() && status.code() != StatusCode::kBusy) {
    last_error_ = status;
  }
  return status;
}

Status Redecomposer::EvaluateWindow() {
  ++stats_.windows;
  const double distance = ConflictDistance(baseline_, window_);
  stats_.last_distance = distance;
  const bool learning = baseline_.num_transactions() == 0;
  // The learning window's distance is measured against an empty baseline
  // — it says nothing about drift, so it must not feed the window sizer.
  if (!learning) ResizeWindow(distance);
  if (!learning && distance <= options_.drift_threshold) {
    // Same regime: the window refines the baseline, nothing to swap.
    baseline_.Merge(window_);
    window_ = FootprintTrace();
    return Status::OK();
  }
  if (!learning) ++stats_.drift_events;

  // Infer over baseline + window: the new structure must keep serving
  // the old traffic while legalizing the new.
  FootprintTrace combined = baseline_;
  combined.Merge(window_);
  ++stats_.inferences;
  HDD_ASSIGN_OR_RETURN(
      InferredDecomposition inferred,
      InferBestDecomposition(num_granules_, combined, options_.infer));

  // The proof obligation: nothing unvalidated reaches the controller.
  ++stats_.validations;
  Status valid = ValidateDecomposition(inferred.decomposition, num_granules_);
  if (valid.ok()) {
    valid = ValidateAgainstTrace(inferred.decomposition, combined,
                                 options_.infer.min_support);
  }
  if (!valid.ok()) {
    if (!inferred.mutated) {
      // InferBestDecomposition promises a provably valid structure; a
      // rejection here (with no canary armed) is a broken inference and
      // must stop the driver loudly, not be retried into place.
      return valid;
    }
    // The canary's mis-classified granule was caught, exactly as the
    // safety story requires. Proceed with an unmutated inference so the
    // sweep still exercises the swap itself.
    ++stats_.canary_catches;
    InferenceOptions clean = options_.infer;
    clean.mutation_misclassify_granule = false;
    HDD_ASSIGN_OR_RETURN(
        inferred, InferBestDecomposition(num_granules_, combined, clean));
    HDD_RETURN_IF_ERROR(
        ValidateDecomposition(inferred.decomposition, num_granules_));
    HDD_RETURN_IF_ERROR(ValidateAgainstTrace(inferred.decomposition, combined,
                                             options_.infer.min_support));
  } else if (inferred.mutated) {
    ++stats_.canary_escapes;
    return Status::Internal(
        "mutation canary escaped: a mis-classified granule passed "
        "validation — the safety net is broken");
  }

  // Legalize every shaping access pattern on the live controller. Only
  // patterns the CURRENT structure cannot contain need a Restructure;
  // min-support pruning already kept rare noise out of shaping_types.
  for (const TracedFootprint& type : inferred.shaping_types) {
    AppliedMerge merge;
    for (const std::uint32_t g : type.write_granules) {
      const SegmentId s = SegmentOfFlat(g);
      if (std::find(merge.write_segments.begin(), merge.write_segments.end(),
                    s) == merge.write_segments.end()) {
        merge.write_segments.push_back(s);
      }
    }
    for (const std::uint32_t g : type.read_granules) {
      const SegmentId s = SegmentOfFlat(g);
      if (std::find(merge.read_segments.begin(), merge.read_segments.end(),
                    s) == merge.read_segments.end()) {
        merge.read_segments.push_back(s);
      }
    }
    pending_.push_back(std::move(merge));
  }
  baseline_ = std::move(combined);
  window_ = FootprintTrace();
  return ApplyPending();
}

void Redecomposer::ResizeWindow(double distance) {
  constexpr std::size_t kMaxRecentDistances = 8;
  recent_distances_.push_back(distance);
  if (recent_distances_.size() > kMaxRecentDistances) {
    recent_distances_.pop_front();
  }
  if (!options_.adaptive_window) return;
  const std::vector<double> recent(recent_distances_.begin(),
                                   recent_distances_.end());
  const std::uint64_t next =
      DeriveWindowTxns(recent, window_txns_, window_floor_, window_ceil_,
                       options_.window_cov_lo, options_.window_cov_hi);
  if (next > window_txns_) {
    ++stats_.window_grows;
  } else if (next < window_txns_) {
    ++stats_.window_shrinks;
  }
  window_txns_ = next;
  stats_.window_txns_current = next;
}

Status Redecomposer::ApplyPending() {
  while (!pending_.empty()) {
    const AppliedMerge& next = pending_.front();
    // Re-check under the live structure: earlier merges of this very plan
    // (or a previous one) may have legalized the pattern already, and
    // Restructure on an already-legal pattern would still drain classes
    // for nothing.
    HDD_ASSIGN_OR_RETURN(
        const bool legal,
        cc_->IsLegalAccessPattern(next.write_segments, next.read_segments));
    if (legal) {
      pending_.erase(pending_.begin());
      continue;
    }
    Result<ClassId> merged =
        cc_->Restructure(next.write_segments, next.read_segments);
    if (!merged.ok()) {
      if (merged.status().code() == StatusCode::kBusy) ++stats_.busy_retries;
      return merged.status();
    }
    ++stats_.restructures;
    applied_.push_back(next);
    pending_.erase(pending_.begin());
  }
  return Status::OK();
}

void Redecomposer::RunUntil(const std::atomic<bool>& done) {
  while (!done.load(std::memory_order_acquire)) {
    (void)Poll();
    // Under simulation this is one scheduler reschedule; outside it is a
    // real pause so the poll loop does not busy-spin a core.
    SimSleep(std::chrono::microseconds(200));
  }
  // Final drain: fold trailing commits into the window and give a plan
  // stuck behind an epoch one last chance now that the workers are done.
  (void)Poll();
}

}  // namespace hdd
