#include "engine/inventory_workload.h"

#include <memory>
#include <thread>

namespace hdd {

namespace {

constexpr SegmentId kEvents = 0;
constexpr SegmentId kInventory = 1;
constexpr SegmentId kOrders = 2;
constexpr SegmentId kSuppliers = 3;

}  // namespace

InventoryWorkload::InventoryWorkload(InventoryWorkloadParams params)
    : params_(params) {
  const double weights[5] = {params_.type1_weight, params_.type2_weight,
                             params_.type3_weight, params_.type4_weight,
                             params_.read_only_weight};
  double total = 0;
  for (double w : weights) total += w;
  double acc = 0;
  for (int i = 0; i < 5; ++i) {
    acc += weights[i] / total;
    cumulative_[i] = acc;
  }
  if (params_.item_skew > 0) {
    item_picker_.emplace(params_.items, params_.item_skew);
  }
}

PartitionSpec InventoryWorkload::Spec() {
  PartitionSpec spec;
  spec.segment_names = {"events", "inventory", "orders", "suppliers"};
  spec.transaction_types = {
      {"log_event", kEvents, {}},
      {"post_inventory", kInventory, {kEvents}},
      {"reorder", kOrders, {kEvents, kInventory}},
      {"supplier_profile", kSuppliers, {kEvents, kOrders}},
  };
  return spec;
}

std::unique_ptr<Database> InventoryWorkload::MakeDatabase() const {
  auto db = std::make_unique<Database>(
      std::vector<std::string>{"events", "inventory", "orders", "suppliers"},
      0u);
  for (std::uint32_t i = 0;
       i < params_.items * params_.event_slots_per_item; ++i) {
    db->segment(kEvents).Allocate(0);
  }
  for (std::uint32_t i = 0; i < params_.items; ++i) {
    db->segment(kInventory).Allocate(0);
    db->segment(kOrders).Allocate(0);
    db->segment(kSuppliers).Allocate(0);
  }
  return db;
}

TxnProgram InventoryWorkload::Make(std::uint64_t index, Rng& rng) const {
  (void)index;
  const std::uint32_t item = static_cast<std::uint32_t>(
      item_picker_.has_value() ? item_picker_->Next(rng)
                               : rng.NextBounded(params_.items));
  const double roll = rng.NextDouble();
  if (roll < cumulative_[0]) return MakeType1(item, rng);
  if (roll < cumulative_[1]) return MakeType2(item);
  if (roll < cumulative_[2]) return MakeType3(item);
  if (roll < cumulative_[3]) return MakeType4(item);
  return MakeReadOnly(item);
}

TxnProgram InventoryWorkload::MakeType1(std::uint32_t item, Rng& rng) const {
  const std::uint32_t slot = static_cast<std::uint32_t>(
      rng.NextBounded(params_.event_slots_per_item));
  const std::uint32_t granule = item * params_.event_slots_per_item + slot;
  const Value delta = static_cast<Value>(rng.NextInRange(-3, 5));
  TxnProgram program;
  program.options.txn_class = kEvents;
  const bool yield = params_.yield_between_ops;
  program.body = [granule, delta, yield](ConcurrencyController& cc,
                                         const TxnDescriptor& txn) -> Status {
    const GranuleRef ref{kEvents, granule};
    HDD_ASSIGN_OR_RETURN(Value current, cc.Read(txn, ref));
    if (yield) std::this_thread::yield();
    return cc.Write(txn, ref, current + delta);
  };
  return program;
}

TxnProgram InventoryWorkload::MakeType2(std::uint32_t item) const {
  const std::uint32_t base = item * params_.event_slots_per_item;
  const std::uint32_t slots = params_.event_slots_per_item;
  TxnProgram program;
  program.options.txn_class = kInventory;
  const bool yield = params_.yield_between_ops;
  program.body = [base, slots, item, yield](ConcurrencyController& cc,
                                            const TxnDescriptor& txn) -> Status {
    Value net = 0;
    for (std::uint32_t s = 0; s < slots; ++s) {
      HDD_ASSIGN_OR_RETURN(Value v, cc.Read(txn, {kEvents, base + s}));
      net += v;
      if (yield) std::this_thread::yield();
    }
    return cc.Write(txn, {kInventory, item}, net);
  };
  return program;
}

TxnProgram InventoryWorkload::MakeType3(std::uint32_t item) const {
  const std::uint32_t base = item * params_.event_slots_per_item;
  TxnProgram program;
  program.options.txn_class = kOrders;
  const bool yield = params_.yield_between_ops;
  program.body = [base, item, yield](ConcurrencyController& cc,
                                     const TxnDescriptor& txn) -> Status {
    // Read one arrival stream plus the posted level; decide reorder.
    HDD_ASSIGN_OR_RETURN(Value arrivals, cc.Read(txn, {kEvents, base}));
    if (yield) std::this_thread::yield();
    HDD_ASSIGN_OR_RETURN(Value level, cc.Read(txn, {kInventory, item}));
    if (yield) std::this_thread::yield();
    const Value gross = level + arrivals;
    const Value order = gross < 10 ? 10 - gross : 0;
    return cc.Write(txn, {kOrders, item}, order);
  };
  return program;
}

TxnProgram InventoryWorkload::MakeType4(std::uint32_t item) const {
  const std::uint32_t base = item * params_.event_slots_per_item;
  TxnProgram program;
  program.options.txn_class = kSuppliers;
  const bool yield = params_.yield_between_ops;
  program.body = [base, item, yield](ConcurrencyController& cc,
                                     const TxnDescriptor& txn) -> Status {
    HDD_ASSIGN_OR_RETURN(Value arrivals, cc.Read(txn, {kEvents, base}));
    if (yield) std::this_thread::yield();
    HDD_ASSIGN_OR_RETURN(Value on_order, cc.Read(txn, {kOrders, item}));
    if (yield) std::this_thread::yield();
    return cc.Write(txn, {kSuppliers, item}, arrivals + on_order);
  };
  return program;
}

TxnProgram InventoryWorkload::MakeReadOnly(std::uint32_t item) const {
  const std::uint32_t base = item * params_.event_slots_per_item;
  TxnProgram program;
  program.options.read_only = true;
  program.options.txn_class = kReadOnlyClass;
  program.body = [base, item](ConcurrencyController& cc,
                              const TxnDescriptor& txn) -> Status {
    Value checksum = 0;
    HDD_ASSIGN_OR_RETURN(Value ev, cc.Read(txn, {kEvents, base}));
    checksum += ev;
    HDD_ASSIGN_OR_RETURN(Value level, cc.Read(txn, {kInventory, item}));
    checksum += level;
    HDD_ASSIGN_OR_RETURN(Value order, cc.Read(txn, {kOrders, item}));
    checksum += order;
    HDD_ASSIGN_OR_RETURN(Value supplier, cc.Read(txn, {kSuppliers, item}));
    checksum += supplier;
    (void)checksum;
    return Status::OK();
  };
  return program;
}

}  // namespace hdd
