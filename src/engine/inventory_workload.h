#ifndef HDD_ENGINE_INVENTORY_WORKLOAD_H_
#define HDD_ENGINE_INVENTORY_WORKLOAD_H_

#include <memory>
#include <optional>

#include "engine/txn_program.h"
#include "graph/dhg.h"
#include "storage/database.h"

namespace hdd {

/// Parameters of the paper's Figure 2 retail-inventory application.
struct InventoryWorkloadParams {
  /// Number of merchandise items.
  std::uint32_t items = 16;
  /// Event-accumulator granules per item (sales / sales-modification /
  /// merchandise-arrival streams collapse onto these).
  std::uint32_t event_slots_per_item = 4;

  /// Transaction mix (weights; normalized internally).
  /// type1: log an event (writes events).
  /// type2: post inventory level (reads events, writes inventory).
  /// type3: reorder decision (reads events+inventory, writes orders).
  /// type4: supplier profile (reads events+orders, writes suppliers).
  /// read_only: ad-hoc audit over all four segments.
  double type1_weight = 0.40;
  double type2_weight = 0.25;
  double type3_weight = 0.20;
  double type4_weight = 0.10;
  double read_only_weight = 0.05;

  /// Zipfian skew on item choice (0 = uniform).
  double item_skew = 0.0;

  /// Yield the CPU between operations. On few-core hosts transactions
  /// otherwise tend to run to completion within one timeslice; yielding
  /// forces the adversarial interleavings the anomaly experiments need.
  bool yield_between_ops = false;
};

/// The paper's motivating application (Figure 2 plus the §1.2.2
/// supplier-profile extension), runnable against any controller.
///
/// Segment layout:
///   0 events     (granule e = item * event_slots + slot)
///   1 inventory  (granule = item)
///   2 orders     (granule = item)
///   3 suppliers  (granule = item)
class InventoryWorkload : public Workload {
 public:
  explicit InventoryWorkload(InventoryWorkloadParams params = {});

  /// The TST-hierarchical decomposition of this application.
  static PartitionSpec Spec();

  /// A database shaped for `params`.
  std::unique_ptr<Database> MakeDatabase() const;

  TxnProgram Make(std::uint64_t index, Rng& rng) const override;

  const InventoryWorkloadParams& params() const { return params_; }

 private:
  TxnProgram MakeType1(std::uint32_t item, Rng& rng) const;
  TxnProgram MakeType2(std::uint32_t item) const;
  TxnProgram MakeType3(std::uint32_t item) const;
  TxnProgram MakeType4(std::uint32_t item) const;
  TxnProgram MakeReadOnly(std::uint32_t item) const;

  InventoryWorkloadParams params_;
  double cumulative_[5];
  std::optional<ZipfianGenerator> item_picker_;  // set when item_skew > 0
};

}  // namespace hdd

#endif  // HDD_ENGINE_INVENTORY_WORKLOAD_H_
