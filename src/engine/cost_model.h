#ifndef HDD_ENGINE_COST_MODEL_H_
#define HDD_ENGINE_COST_MODEL_H_

#include "common/metrics.h"
#include "engine/executor.h"

namespace hdd {

/// §7.4 efficacy analysis. This library's substrate is an in-memory
/// simulator, so wall-clock throughput does not reflect the paper's
/// claim: there, *registering a read* (setting a read lock or writing a
/// read timestamp) is an extra database write — orders of magnitude more
/// expensive than the in-memory counter bump the simulator pays. The cost
/// model prices each recorded synchronization action so the claim can be
/// evaluated under explicit assumptions, swept in bench_cost_model.
struct CostModel {
  /// Serving one version to a read.
  double read_version_us = 1.0;
  /// Creating one version (the transaction's useful write work).
  double write_version_us = 2.0;
  /// Registering a read: a read lock set or a read timestamp written.
  /// The paper's central overhead; sweep it.
  double registration_us = 2.0;
  /// Lock-manager bookkeeping for a write lock.
  double lock_bookkeeping_us = 0.5;
  /// One blocking episode (enqueue, context switch, wake).
  double block_us = 50.0;
  /// One transaction restart (wasted work plus rollback).
  double restart_us = 20.0;
  /// One activity-link / pipeline-gate evaluation — what HDD (and the
  /// SDD-1 read rule) computes INSTEAD of registering.
  double link_eval_us = 0.5;
};

struct CostEstimate {
  double total_us = 0;
  double per_commit_us = 0;
  /// Committed transactions per second of modeled work (single-server
  /// sequential-cost view; relative numbers are what matter).
  double modeled_tps = 0;
};

/// Prices a finished run.
CostEstimate EstimateCost(const CcMetrics& metrics,
                          const ExecutorStats& stats,
                          const CostModel& model);

}  // namespace hdd

#endif  // HDD_ENGINE_COST_MODEL_H_
