#ifndef HDD_ENGINE_EPOCH_EXECUTOR_H_
#define HDD_ENGINE_EPOCH_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "engine/executor.h"
#include "engine/txn_program.h"

namespace hdd {

/// Epoch/batch execution (DGCC-style, see PAPERS.md): one worker admits a
/// batch of programs per epoch through the controller's
/// BeginEpoch/BeginBatch path, intra-epoch conflicts are ordered by a
/// dependency graph built from the programs' DECLARED own-segment access
/// sets, and the worker pool executes ready nodes concurrently. A node's
/// successors are released only after its commit/abort fully finished, so
/// a controller may rely on the graph ordering (HDD skips MVTO's
/// younger-reader write check for epoch transactions). Retryable aborts
/// re-admit the program in the next epoch; epochs never overlap.
struct EpochExecutorOptions {
  int num_threads = 4;
  /// Programs admitted per epoch (retries from the previous epoch come
  /// first, topped up from the workload stream).
  std::uint64_t epoch_size = 32;
  /// Re-admission budget per program before it is counted as failed.
  int max_retries = 10000;
  std::uint64_t seed = 1;
  /// Deterministic simulation backend; same contract as ExecutorOptions.
  SimScheduler* sim = nullptr;
  /// Same contract as ExecutorOptions::on_txn_done.
  std::function<void(std::uint64_t)> on_txn_done;
  /// Same contract as ExecutorOptions::on_program_done: stream index plus
  /// terminal result, on the worker thread, possibly concurrently.
  std::function<void(std::uint64_t index, const ProgramResult&)>
      on_program_done;
  const WalMetrics* wal_metrics = nullptr;
  /// Same contract as ExecutorOptions::service. Note a Restructure issued
  /// from the service returns Busy while an epoch is open (the PR 5
  /// exclusion) — the service retries between epochs.
  std::function<void(const std::atomic<bool>& workers_done)> service;
  /// TEST-ONLY mutation canary (sim harness): drop the first dependency
  /// edge of every epoch's graph. Two conflicting transactions of one
  /// class then run unordered while HDD's epoch mode has delegated the
  /// younger-reader check to this very graph — the 1SR oracle must catch
  /// the resulting anomaly with a replayable seed.
  bool mutation_skip_dependency_edge = false;
};

/// Intra-epoch dependency graph over the batch, nodes = batch indices in
/// admission order. Edge i -> j (i < j) iff both are update programs of
/// the same class and their declared own-segment access sets conflict
/// (w-w, w-r or r-w on at least one granule). Always a DAG: edges point
/// forward in admission order, which BeginBatch maps to timestamp order.
struct EpochGraph {
  std::vector<std::vector<int>> successors;
  std::vector<int> indegree;
  std::size_t num_edges = 0;
};

/// Exposed for tests. `skip_first_edge` implements the mutation canary.
EpochGraph BuildEpochGraph(const std::vector<const TxnProgram*>& batch,
                           bool skip_first_edge = false);

/// Runs `total_txns` programs from `workload` against `cc` in epochs.
/// Works with any controller (the base-class BeginBatch degrades to
/// per-txn Begin); HDD additionally shares Protocol A bounds per epoch.
/// Update programs MUST declare their own-segment access sets (see
/// TxnProgram); while a run is in progress no other update transactions
/// may be started on `cc` outside the epochs.
ExecutorStats RunWorkloadEpochs(ConcurrencyController& cc,
                                const Workload& workload,
                                std::uint64_t total_txns,
                                const EpochExecutorOptions& options = {});

}  // namespace hdd

#endif  // HDD_ENGINE_EPOCH_EXECUTOR_H_
