#ifndef HDD_ENGINE_SYNTHETIC_WORKLOAD_H_
#define HDD_ENGINE_SYNTHETIC_WORKLOAD_H_

#include <memory>
#include <optional>

#include "engine/txn_program.h"
#include "graph/dhg.h"
#include "storage/database.h"

namespace hdd {

/// Parameterized chain-hierarchy workload for sweeps: segment `depth-1` is
/// the lowest class, segment 0 the highest; every class reads all segments
/// above its own (the transitively-closed chain DHG, still a TST).
struct SyntheticWorkloadParams {
  int depth = 4;
  std::uint32_t granules_per_segment = 64;

  /// Accesses per transaction.
  int own_reads = 2;
  int own_writes = 2;
  /// Reads against EACH segment above the transaction's class.
  int upper_reads = 2;

  /// Fraction of ad-hoc read-only transactions (read every level).
  double read_only_fraction = 0.1;

  /// Zipfian skew on granule choice within a segment (0 = uniform).
  double granule_skew = 0.0;
};

class SyntheticWorkload : public Workload {
 public:
  explicit SyntheticWorkload(SyntheticWorkloadParams params = {});

  PartitionSpec Spec() const;
  std::unique_ptr<Database> MakeDatabase() const;

  TxnProgram Make(std::uint64_t index, Rng& rng) const override;

  const SyntheticWorkloadParams& params() const { return params_; }

 private:
  std::uint32_t PickGranule(Rng& rng) const;

  SyntheticWorkloadParams params_;
  std::optional<ZipfianGenerator> granule_picker_;
};

}  // namespace hdd

#endif  // HDD_ENGINE_SYNTHETIC_WORKLOAD_H_
