#ifndef HDD_NET_ADMISSION_H_
#define HDD_NET_ADMISSION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "graph/dhg.h"
#include "obs/metrics_registry.h"

namespace hdd {

/// Per-class admission policy. HDD's class hierarchy is the server's QoS
/// boundary: every transaction declares its class up front (the paper's
/// a-priori analysis), so the server can rate-shape and queue-bound per
/// class *before* any concurrency-control work happens — and shed
/// Protocol C analytics first, because by construction those never
/// invalidate update transactions and are the cheapest traffic to retry.
struct ClassPolicy {
  /// Relative service share in the worker pool's deficit-round-robin
  /// scheduling, and the shed-priority signal: classes with weight below
  /// AdmissionOptions::shed_weight_floor are refused outright once the
  /// server is past the overload threshold.
  std::uint32_t weight = 8;
  /// Max requests of this class admitted but not yet answered
  /// (queued + executing). 0 = derive from weight:
  /// total_inflight_cap * weight / (sum of weights).
  std::size_t inflight_cap = 0;
  /// Token-bucket rate limit in requests/second; 0 = unlimited.
  double rate_per_sec = 0.0;
  /// Bucket depth (burst allowance), in requests.
  double burst = 256.0;
};

struct AdmissionOptions {
  /// Policy override per update class; classes not listed use
  /// default_update.
  std::map<ClassId, ClassPolicy> per_class;
  ClassPolicy default_update{.weight = 8};
  /// Ad-hoc read-only (Protocol C) traffic: lowest weight by default, so
  /// it sheds first under overload.
  ClassPolicy read_only{.weight = 1};
  /// Cap on total admitted-but-unanswered requests across all classes.
  /// This is the server's ONLY elastic buffer; everything past it pushes
  /// back to the socket (paused reads), never into memory.
  std::size_t total_inflight_cap = 4096;
  /// Fraction of total_inflight_cap past which sheddable classes (weight
  /// < shed_weight_floor) are refused even when their own queue has room.
  double shed_threshold = 0.5;
  std::uint32_t shed_weight_floor = 2;
};

/// Decision for one decoded request.
struct AdmitDecision {
  bool admitted = false;
  /// When shed: how long the client should back off. Derived from the
  /// token deficit (rate-limited classes) or the queue drain estimate.
  std::uint32_t retry_after_ms = 0;
};

/// Tracks per-class tokens and inflight counts. Thread-safe; one short
/// critical section per decision. Publishes per-class admitted/shed
/// counters and inflight gauges into the server's MetricsRegistry as
/// net_class_<name>_{admitted,shed} / net_class_<name>_inflight, where
/// <name> is "c<id>" for update classes and "ro" for read-only.
class AdmissionController {
 public:
  /// `num_classes` = number of update classes (ids 0..num_classes-1);
  /// kReadOnlyClass is always accepted as a class argument. `metrics` is
  /// not owned and must outlive the controller.
  AdmissionController(const AdmissionOptions& options, int num_classes,
                      MetricsRegistry* metrics);

  /// Classifies and decides one request. Out-of-range classes are the
  /// caller's problem (answer kError); this accepts only ids it knows.
  bool KnowsClass(ClassId cls) const;
  AdmitDecision TryAdmit(ClassId cls);

  /// The admitted request was answered (committed, failed, or dropped on
  /// a dead connection) — its inflight slot frees up.
  void Finish(ClassId cls);

  /// Refuse everything from now on (graceful shutdown).
  void Close();

  std::uint64_t total_inflight() const;
  std::uint64_t inflight(ClassId cls) const;
  std::uint32_t weight(ClassId cls) const;
  int num_cells() const { return static_cast<int>(cells_.size()); }

 private:
  struct Cell {
    mutable std::mutex mu;
    ClassPolicy policy;
    std::size_t cap = 0;  // resolved inflight cap
    double tokens = 0.0;
    std::chrono::steady_clock::time_point last_refill;
    std::uint64_t inflight = 0;
    Counter* admitted = nullptr;
    Counter* shed = nullptr;
    Gauge* inflight_gauge = nullptr;
  };

  std::size_t CellIndex(ClassId cls) const;

  std::vector<Cell> cells_;  // update classes, then read-only last
  std::size_t total_cap_;
  double shed_threshold_;
  std::uint32_t shed_weight_floor_;
  std::atomic<std::uint64_t> total_inflight_{0};
  std::atomic<bool> closed_{false};
};

}  // namespace hdd

#endif  // HDD_NET_ADMISSION_H_
