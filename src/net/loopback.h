#ifndef HDD_NET_LOOPBACK_H_
#define HDD_NET_LOOPBACK_H_

#include <memory>
#include <optional>

#include "engine/harness.h"
#include "engine/synthetic_workload.h"
#include "net/protocol.h"
#include "storage/database.h"

namespace hdd {

/// Everything a served HDD instance needs to exist: the synthetic chain
/// hierarchy's database, clock, schema and a controller over them. Shared
/// by hdd_server_main, bench_server and the loopback tests so they all
/// serve the same world.
struct ServerWorld {
  SyntheticWorkloadParams params;
  std::unique_ptr<Database> db;
  std::unique_ptr<LogicalClock> clock;
  std::optional<HierarchySchema> schema;
  std::unique_ptr<ConcurrencyController> cc;
};

/// Builds the world for `params` under controller `kind` (schema-requiring
/// kinds get the chain schema). Null on schema rejection (can only happen
/// with out-of-contract params).
std::unique_ptr<ServerWorld> MakeServerWorld(
    ControllerKind kind, const SyntheticWorkloadParams& params = {});

/// One random wire request against the chain hierarchy, mirroring what
/// SyntheticWorkload::Make generates natively: with probability
/// read_only_fraction an ad-hoc read across every segment, otherwise an
/// update of a random class with own-segment reads/writes plus
/// `upper_reads` reads against each segment above. The caller assigns
/// request_id.
RequestMsg MakeSyntheticRequest(const SyntheticWorkloadParams& params,
                                Rng& rng);

}  // namespace hdd

#endif  // HDD_NET_LOOPBACK_H_
