#ifndef HDD_NET_SERVER_H_
#define HDD_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cc/controller.h"
#include "engine/executor.h"
#include "net/admission.h"
#include "net/epoll_loop.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "obs/metrics_registry.h"

namespace hdd {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral; the bound port is available via port() after Start().
  std::uint16_t port = 0;
  int listen_backlog = 1024;
  /// Threads multiplexing socket IO (accept + read/decode + write). Each
  /// connection is EPOLLONESHOT, so any IO thread may service any
  /// connection, one at a time.
  int num_io_threads = 2;
  /// Threads executing admitted transaction programs.
  int num_workers = 4;

  /// How admitted programs reach the engine. kPerTxn: each worker drives
  /// RunProgram (the workload executor's core) per request. kEpoch:
  /// admitted programs are collected into batches and driven through
  /// RunWorkloadEpochs, so remote traffic gets the epoch executor's
  /// dependency-graph ordering.
  enum class Backend { kPerTxn, kEpoch };
  Backend backend = Backend::kPerTxn;
  /// kEpoch: max programs per collected batch.
  std::uint64_t epoch_size = 64;
  int max_retries = 10000;

  /// Number of update classes the server accepts (ids 0..num_classes-1);
  /// read-only traffic is always accepted as kReadOnlyClass.
  int num_classes = 1;
  AdmissionOptions admission;

  /// Backpressure bounds. A connection with this many admitted-but-
  /// unanswered requests stops being read (EPOLLIN not re-armed) until
  /// responses drain — pipelining deeper than this parks bytes in the
  /// kernel socket buffer, never in server memory.
  std::size_t per_connection_inflight_cap = 64;
  /// A connection whose pending response bytes exceed this also stops
  /// being read until the client drains its receive side.
  std::size_t outbox_pause_bytes = 1u << 20;

  /// TEST-ONLY: while the pointee is true, workers idle without popping,
  /// so a test can pile up an admitted backlog deterministically (on a
  /// one-core host, timing-based backlogs are unwinnable races) and
  /// observe admission decisions against it.
  std::shared_ptr<std::atomic<bool>> test_pause_workers;

  /// Terminal outcome of a shard-executed submit (see shard_execute).
  struct ShardOutcome {
    bool committed = false;
    std::uint32_t aborted_attempts = 0;
    std::vector<Value> values;  // reads of the committed attempt, in order
  };
  /// Sharded deployment hook (hdd_server --shard): when set, workers run
  /// each admitted submit through this callback instead of the local
  /// engine. The binding bridges to dist/DistSession — routing remote
  /// Protocol A reads and two-phasing remotely-owned writes — while net/
  /// stays independent of dist/. Per-txn backend only (Start refuses
  /// kEpoch: batching across shards would need a distributed epoch
  /// barrier that does not exist).
  std::function<ShardOutcome(const SubmitRequest&)> shard_execute;
};

/// The HDD network front end: a non-blocking epoll server speaking the
/// length-prefixed CRC-framed protocol of net/frame.h + net/protocol.h,
/// decoding submits into TxnPrograms and driving the existing engine
/// (RunProgram / RunWorkloadEpochs) through a worker pool behind per-class
/// admission control.
///
/// Metrics (all through the MetricsRegistry passed in):
///   counters   net_accepted, net_closed, net_frames,
///              net_protocol_errors, net_admitted, net_shed,
///              net_committed, net_failed,
///              net_class_<c>_{admitted,shed,committed} per class
///   gauges     net_connections, net_queue_depth,
///              net_class_<c>_inflight per class
///   histogram  net_request_us (admission to response enqueue)
class HddServer {
 public:
  /// `cc` and `metrics` are borrowed and must outlive the server.
  HddServer(ConcurrencyController* cc, const ServerOptions& options,
            MetricsRegistry* metrics);
  ~HddServer();

  HddServer(const HddServer&) = delete;
  HddServer& operator=(const HddServer&) = delete;

  /// Binds, listens and spawns the IO + worker threads.
  Status Start();

  /// Graceful shutdown: stop accepting, refuse new admissions, drain
  /// already-admitted programs and flush their responses, then join all
  /// threads and close every connection. Idempotent.
  void Stop();

  std::uint16_t port() const { return port_; }
  std::uint64_t connection_count() const;

 private:
  struct Connection {
    int fd = -1;
    std::uint64_t id = 0;
    std::mutex mu;
    FrameDecoder decoder;
    std::string outbox;       // encoded frames not yet written
    std::size_t outbox_off = 0;
    std::uint32_t inflight = 0;  // admitted, not yet answered
    bool closed = false;
  };
  using ConnPtr = std::shared_ptr<Connection>;

  /// One admitted program waiting for (or in) execution.
  struct WorkItem {
    ConnPtr conn;
    std::uint64_t request_id = 0;
    ClassId cls = 0;  // admission class (kReadOnlyClass for read-only)
    TxnProgram program;
    /// Shard mode keeps the wire form instead of a compiled program (the
    /// dist session routes raw ops; `program` stays empty).
    SubmitRequest submit;
    std::shared_ptr<std::vector<Value>> values;
    std::chrono::steady_clock::time_point admitted_at;
  };

  void IoThread();
  void WorkerThread();
  void EpochBatcherThread();

  void HandleAccept();
  void HandleConnEvent(std::uint64_t id, std::uint32_t events);
  /// Reads + decodes under conn->mu; returns false if the connection died.
  bool DrainReadable(const ConnPtr& conn);
  void HandleFrame(const ConnPtr& conn, std::string_view payload);
  /// Appends an encoded response frame and tries to flush. Caller holds
  /// conn->mu.
  void EnqueueResponseLocked(Connection& conn, const ResponseMsg& msg);
  /// write()s as much of the outbox as the socket takes. Caller holds
  /// conn->mu. Returns false on fatal socket error.
  bool FlushOutboxLocked(Connection& conn);
  /// Recomputes the EPOLLONESHOT mask from inflight/outbox state and
  /// re-arms. Caller holds conn->mu.
  void RearmLocked(Connection& conn);
  void CloseConn(const ConnPtr& conn);
  void Respond(const ConnPtr& conn, const ResponseMsg& msg);

  /// Completion path shared by both backends.
  void FinishItem(const WorkItem& item, const ProgramResult& result);

  bool PopItemLocked(WorkItem* item);
  std::size_t QueueIndex(ClassId cls) const;

  ConcurrencyController* cc_;
  ServerOptions options_;
  MetricsRegistry* metrics_;
  AdmissionController admission_;

  EpollLoop loop_;
  // Atomic: Stop() retires it while IO threads may be mid-accept.
  std::atomic<int> listen_fd_{-1};
  std::uint16_t port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> io_stop_{false};
  std::atomic<bool> workers_stop_{false};

  mutable std::mutex conns_mu_;
  std::unordered_map<std::uint64_t, ConnPtr> conns_;
  std::uint64_t next_conn_id_ = 1;

  // Per-class work queues (update classes 0..n-1, read-only last) with
  // deficit-round-robin service weighted by the class policy weights.
  std::mutex dispatch_mu_;
  std::condition_variable dispatch_cv_;
  std::vector<std::deque<WorkItem>> queues_;
  std::vector<std::uint32_t> deficits_;
  std::size_t drr_cursor_ = 0;
  std::size_t queued_ = 0;
  std::uint64_t executing_ = 0;

  std::vector<std::thread> io_threads_;
  std::vector<std::thread> worker_threads_;

  // Flat metric handles (per-class handles live in admission_).
  Counter* m_accepted_ = nullptr;
  Counter* m_closed_ = nullptr;
  Counter* m_frames_ = nullptr;
  Counter* m_protocol_errors_ = nullptr;
  Counter* m_admitted_ = nullptr;
  Counter* m_shed_ = nullptr;
  Counter* m_committed_ = nullptr;
  Counter* m_failed_ = nullptr;
  Gauge* m_connections_ = nullptr;
  Gauge* m_queue_depth_ = nullptr;
  Histogram* m_request_us_ = nullptr;
  std::vector<Counter*> m_class_committed_;
};

}  // namespace hdd

#endif  // HDD_NET_SERVER_H_
