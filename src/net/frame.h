#ifndef HDD_NET_FRAME_H_
#define HDD_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace hdd {

/// The wire framing is byte-identical to the WAL's (src/wal/log_format.h):
///
///   +----------------+----------------+=====================+
///   | length  u32 LE | crc32   u32 LE | payload (length B)  |
///   +----------------+----------------+=====================+
///
/// with the CRC over the payload only. The semantics differ from disk
/// recovery, though: a socket has no torn tail — an incomplete frame just
/// means more bytes are in flight — while a CRC mismatch or an insane
/// header is a protocol violation that closes the connection loudly.

/// Sanity cap on one network frame's payload. Requests and responses are
/// small; a complete header announcing more is treated as garbage (a
/// stray client, a desynchronized stream) rather than a huge message, so
/// a malicious or broken peer cannot make the server buffer unboundedly.
inline constexpr std::uint32_t kMaxNetFramePayload = 1u << 20;

/// Appends one frame around `payload` to `out` (delegates to the WAL
/// encoder — same layout, same CRC).
void AppendNetFrame(std::string* out, std::string_view payload);

/// Incremental decoder over a socket byte stream. Feed() appends whatever
/// arrived; Poll() yields complete frames until the buffer runs dry.
/// Consumed bytes are compacted away lazily, so long-lived pipelined
/// connections keep a small, bounded buffer.
class FrameDecoder {
 public:
  enum class Next {
    kFrame,     // *payload filled with one complete frame's payload
    kNeedMore,  // buffer holds no complete frame; Feed() more bytes
    kCorrupt,   // CRC mismatch or insane header: close the connection
  };

  void Feed(std::string_view bytes);
  Next Poll(std::string* payload);

  /// Bytes buffered but not yet consumed by Poll().
  std::size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  std::size_t consumed_ = 0;
  bool corrupt_ = false;
};

}  // namespace hdd

#endif  // HDD_NET_FRAME_H_
