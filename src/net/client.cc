#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "net/epoll_loop.h"

namespace hdd {

namespace {

int ConnectTcp(const std::string& host, std::uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0) {
    close(fd);
    return -1;
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool WriteAll(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Status SyncClient::Connect(const std::string& host, std::uint16_t port) {
  Close();
  fd_ = ConnectTcp(host, port);
  if (fd_ < 0) {
    return Status::IoError("connect " + host + ":" + std::to_string(port) +
                           ": " + std::strerror(errno));
  }
  return Status::OK();
}

Status SyncClient::Send(const RequestMsg& msg) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  std::string frame;
  AppendNetFrame(&frame, EncodeRequest(msg));
  if (!WriteAll(fd_, frame)) return Status::IoError("send failed");
  return Status::OK();
}

Result<ResponseMsg> SyncClient::Recv() {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  std::string payload;
  char buf[16384];
  for (;;) {
    const FrameDecoder::Next next = decoder_.Poll(&payload);
    if (next == FrameDecoder::Next::kFrame) return DecodeResponse(payload);
    if (next == FrameDecoder::Next::kCorrupt) {
      return Status::Corruption("corrupt response frame");
    }
    const ssize_t n = read(fd_, buf, sizeof(buf));
    if (n == 0) return Status::IoError("connection closed by server");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("recv: ") + std::strerror(errno));
    }
    decoder_.Feed(std::string_view(buf, static_cast<std::size_t>(n)));
  }
}

Result<ResponseMsg> SyncClient::Call(const RequestMsg& msg) {
  Status status = Send(msg);
  if (!status.ok()) return status;
  return Recv();
}

void SyncClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  decoder_ = FrameDecoder();
}

RetryingClient::RetryingClient(RetryPolicy policy)
    : policy_(policy), rng_(policy.seed) {}

Status RetryingClient::Connect(const std::string& host, std::uint16_t port) {
  host_ = host;
  port_ = port;
  return client_.Connect(host, port);
}

std::uint32_t RetryingClient::DelayMs(int attempt,
                                      std::uint32_t server_hint_ms) const {
  const std::uint64_t exp = static_cast<std::uint64_t>(policy_.base_backoff_ms)
                            << std::min(attempt, 20);
  const std::uint64_t want = std::max<std::uint64_t>(exp, server_hint_ms);
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(want, policy_.max_backoff_ms));
}

void RetryingClient::Backoff(std::uint32_t delay_ms) {
  if (delay_ms == 0) return;
  // Jitter factor in [0.5, 1.5): a fleet shed at the same instant must
  // not come back at the same instant.
  const std::uint64_t us = static_cast<std::uint64_t>(delay_ms) * 500 +
                           rng_.NextBounded(1000) * delay_ms;
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

Result<ResponseMsg> RetryingClient::Call(const RequestMsg& msg) {
  Status last = Status::IoError("no attempt made");
  for (int attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    if (!client_.connected()) {
      if (host_.empty()) return Status::FailedPrecondition("not connected");
      if (!policy_.reconnect) return last;
      const Status reopened = client_.Connect(host_, port_);
      if (!reopened.ok()) {
        last = reopened;
        Backoff(DelayMs(attempt, 0));
        continue;
      }
      ++stats_.reconnects;
    }
    ++stats_.attempts;
    Result<ResponseMsg> result = client_.Call(msg);
    if (result.ok()) {
      if (result->type == NetMsgType::kOverload &&
          attempt + 1 < policy_.max_attempts) {
        ++stats_.overload_retries;
        Backoff(DelayMs(attempt, result->retry_after_ms));
        continue;
      }
      return result;
    }
    // Transport failure (peer close, socket error, corrupt frame): the
    // stream is beyond resync; drop it and resend on a fresh connection.
    last = result.status();
    client_.Close();
    if (!policy_.reconnect) return last;
    Backoff(DelayMs(attempt, 0));
  }
  return last;
}

std::string SerializeDriverStats(const DriverStats& stats) {
  std::ostringstream out;
  out << "connected " << stats.connected << "\n"
      << "connect_failures " << stats.connect_failures << "\n"
      << "sent " << stats.sent << "\n"
      << "responses " << stats.responses << "\n"
      << "committed " << stats.committed << "\n"
      << "failed " << stats.failed << "\n"
      << "overload " << stats.overload << "\n"
      << "errors " << stats.errors << "\n"
      << "seconds " << stats.seconds << "\n"
      << "lat_count " << stats.latency.count << "\n"
      << "lat_p50 " << stats.latency.p50_us << "\n"
      << "lat_p95 " << stats.latency.p95_us << "\n"
      << "lat_p99 " << stats.latency.p99_us << "\n"
      << "lat_max " << stats.latency.max_us << "\n";
  for (const auto& [cls, row] : stats.per_class) {
    out << "class " << cls << " " << row.sent << " " << row.committed << " "
        << row.failed << " " << row.overload << "\n";
  }
  return out.str();
}

bool ParseDriverStats(const std::string& text, DriverStats* stats) {
  std::istringstream in(text);
  std::string key;
  while (in >> key) {
    if (key == "connected") {
      if (!(in >> stats->connected)) return false;
    } else if (key == "connect_failures") {
      if (!(in >> stats->connect_failures)) return false;
    } else if (key == "sent") {
      if (!(in >> stats->sent)) return false;
    } else if (key == "responses") {
      if (!(in >> stats->responses)) return false;
    } else if (key == "committed") {
      if (!(in >> stats->committed)) return false;
    } else if (key == "failed") {
      if (!(in >> stats->failed)) return false;
    } else if (key == "overload") {
      if (!(in >> stats->overload)) return false;
    } else if (key == "errors") {
      if (!(in >> stats->errors)) return false;
    } else if (key == "seconds") {
      if (!(in >> stats->seconds)) return false;
    } else if (key == "lat_count") {
      if (!(in >> stats->latency.count)) return false;
    } else if (key == "lat_p50") {
      if (!(in >> stats->latency.p50_us)) return false;
    } else if (key == "lat_p95") {
      if (!(in >> stats->latency.p95_us)) return false;
    } else if (key == "lat_p99") {
      if (!(in >> stats->latency.p99_us)) return false;
    } else if (key == "lat_max") {
      if (!(in >> stats->latency.max_us)) return false;
    } else if (key == "class") {
      int cls = 0;
      DriverClassStats row;
      if (!(in >> cls >> row.sent >> row.committed >> row.failed >>
            row.overload)) {
        return false;
      }
      stats->per_class[cls] = row;
    } else {
      return false;
    }
  }
  return true;
}

namespace {

struct DriverConn {
  int fd = -1;
  FrameDecoder decoder;
  std::string outbox;
  std::size_t outbox_off = 0;
  std::uint64_t next_seq = 0;
  std::uint64_t responses = 0;
  bool want_out = false;
  bool dead = false;
  // request_id -> (send time, class); bounded by the pipeline depth.
  std::unordered_map<std::uint64_t,
                     std::pair<std::chrono::steady_clock::time_point, int>>
      inflight;
};

}  // namespace

DriverStats RunLoadDriver(const DriverOptions& options) {
  using Clock = std::chrono::steady_clock;
  DriverStats stats;
  if (!options.make_request) return stats;
  EpollLoop loop;
  if (!loop.ok()) return stats;
  Rng rng(options.seed);
  LatencyReservoir reservoir(4096, options.seed + 1);

  std::vector<DriverConn> conns(options.connections);
  // Connect in paced chunks so the server's accept loop keeps up and the
  // listen backlog never overflows into SYN retransmit stalls.
  constexpr std::size_t kConnectChunk = 256;
  for (std::size_t i = 0; i < conns.size(); ++i) {
    conns[i].fd = ConnectTcp(options.host, options.port);
    if (conns[i].fd < 0) {
      conns[i].dead = true;
      ++stats.connect_failures;
      continue;
    }
    SetNonBlocking(conns[i].fd);
    if (!loop.AddPersistent(conns[i].fd, EPOLLIN, i).ok()) {
      close(conns[i].fd);
      conns[i].dead = true;
      ++stats.connect_failures;
      continue;
    }
    ++stats.connected;
    if ((i + 1) % kConnectChunk == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  const auto start = Clock::now();
  const auto send_deadline =
      options.requests_per_connection == 0
          ? start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(
                            options.duration_seconds))
          : Clock::time_point::max();
  const auto hard_deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(options.deadline_seconds));

  std::uint64_t live_inflight = 0;
  std::uint64_t live_conns = stats.connected;

  auto kill_conn = [&](DriverConn& conn) {
    if (conn.dead) return;
    conn.dead = true;
    live_inflight -= conn.inflight.size();
    conn.inflight.clear();
    (void)loop.Remove(conn.fd);
    close(conn.fd);
    conn.fd = -1;
    --live_conns;
  };

  auto flush = [&](std::size_t index) {
    DriverConn& conn = conns[index];
    while (conn.outbox_off < conn.outbox.size()) {
      const ssize_t n = write(conn.fd, conn.outbox.data() + conn.outbox_off,
                              conn.outbox.size() - conn.outbox_off);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        ++stats.errors;
        kill_conn(conn);
        return;
      }
      conn.outbox_off += static_cast<std::size_t>(n);
    }
    if (conn.outbox_off >= conn.outbox.size()) {
      conn.outbox.clear();
      conn.outbox_off = 0;
    }
    const bool want_out = !conn.outbox.empty();
    if (want_out != conn.want_out) {
      conn.want_out = want_out;
      (void)loop.Modify(conn.fd, want_out ? (EPOLLIN | EPOLLOUT) : EPOLLIN,
                        index);
    }
  };

  auto top_up = [&](std::size_t index) {
    DriverConn& conn = conns[index];
    if (conn.dead) return;
    const auto now = Clock::now();
    while (conn.inflight.size() < options.pipeline && now < send_deadline &&
           (options.requests_per_connection == 0 ||
            conn.next_seq < options.requests_per_connection)) {
      RequestMsg msg = options.make_request(index, conn.next_seq, rng);
      const std::uint64_t id = conn.next_seq++;
      if (msg.type == NetMsgType::kSubmit) {
        msg.submit.request_id = id;
      } else {
        msg.request_id = id;
      }
      const int cls = msg.type == NetMsgType::kSubmit
                          ? (msg.submit.read_only
                                 ? static_cast<int>(kReadOnlyClass)
                                 : static_cast<int>(msg.submit.txn_class))
                          : 0;
      AppendNetFrame(&conn.outbox, EncodeRequest(msg));
      conn.inflight.emplace(id, std::make_pair(Clock::now(), cls));
      ++live_inflight;
      ++stats.sent;
      ++stats.per_class[cls].sent;
    }
    flush(index);
  };

  auto handle_response = [&](DriverConn& conn, const ResponseMsg& msg) {
    ++stats.responses;
    ++conn.responses;
    auto it = conn.inflight.find(msg.request_id);
    if (it != conn.inflight.end()) {
      const double us =
          std::chrono::duration<double, std::micro>(Clock::now() -
                                                    it->second.first)
              .count();
      reservoir.Add(us);
      DriverClassStats& row = stats.per_class[it->second.second];
      switch (msg.type) {
        case NetMsgType::kResult:
          if (msg.committed) {
            ++stats.committed;
            ++row.committed;
          } else {
            ++stats.failed;
            ++row.failed;
          }
          break;
        case NetMsgType::kOverload:
          ++stats.overload;
          ++row.overload;
          break;
        default:
          ++stats.errors;
          break;
      }
      conn.inflight.erase(it);
      --live_inflight;
    }
  };

  auto drain_read = [&](std::size_t index) {
    DriverConn& conn = conns[index];
    char buf[16384];
    for (int i = 0; i < 16 && !conn.dead; ++i) {
      const ssize_t n = read(conn.fd, buf, sizeof(buf));
      if (n == 0) {
        ++stats.errors;
        kill_conn(conn);
        return;
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno != EAGAIN && errno != EWOULDBLOCK) {
          ++stats.errors;
          kill_conn(conn);
        }
        return;
      }
      conn.decoder.Feed(std::string_view(buf, static_cast<std::size_t>(n)));
      std::string payload;
      for (;;) {
        const FrameDecoder::Next next = conn.decoder.Poll(&payload);
        if (next == FrameDecoder::Next::kNeedMore) break;
        if (next == FrameDecoder::Next::kCorrupt) {
          ++stats.errors;
          kill_conn(conn);
          return;
        }
        Result<ResponseMsg> msg = DecodeResponse(payload);
        if (!msg.ok()) {
          ++stats.errors;
          kill_conn(conn);
          return;
        }
        handle_response(conn, *msg);
      }
      if (n < static_cast<ssize_t>(sizeof(buf))) break;
    }
  };

  // Prime every connection's pipeline, then run the event loop until all
  // work is answered (count mode) or the send window closed and inflight
  // drained (duration mode).
  for (std::size_t i = 0; i < conns.size(); ++i) {
    if (!conns[i].dead) top_up(i);
  }
  std::vector<EpollLoop::Event> events;
  for (;;) {
    const auto now = Clock::now();
    if (now >= hard_deadline) break;
    bool work_left = live_inflight > 0;
    if (!work_left && options.requests_per_connection != 0) {
      for (std::size_t i = 0; i < conns.size() && !work_left; ++i) {
        work_left = !conns[i].dead &&
                    conns[i].next_seq < options.requests_per_connection;
      }
    }
    if (!work_left && options.requests_per_connection == 0 &&
        now < send_deadline && live_conns > 0) {
      work_left = true;  // duration window still open
    }
    if (!work_left || live_conns == 0) break;
    events.clear();
    loop.Wait(&events, 100);
    if (events.empty()) {
      // Idle tick: nothing readable/writable, but pipelines may have gone
      // empty (e.g. a burst of overload replies) — refill them.
      for (std::size_t i = 0; i < conns.size(); ++i) {
        if (!conns[i].dead) top_up(i);
      }
      continue;
    }
    for (const EpollLoop::Event& ev : events) {
      if (ev.data == EpollLoop::kWakeData) continue;
      const std::size_t index = static_cast<std::size_t>(ev.data);
      DriverConn& conn = conns[index];
      if (conn.dead) continue;
      if ((ev.events & (EPOLLHUP | EPOLLERR)) != 0) {
        ++stats.errors;
        kill_conn(conn);
        continue;
      }
      if ((ev.events & EPOLLOUT) != 0) flush(index);
      if ((ev.events & EPOLLIN) != 0 && !conn.dead) drain_read(index);
      if (!conn.dead) top_up(index);
    }
  }
  stats.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  for (DriverConn& conn : conns) {
    if (!conn.dead && conn.fd >= 0) {
      close(conn.fd);
      conn.fd = -1;
    }
  }
  std::vector<LatencyReservoir> parts;
  parts.push_back(std::move(reservoir));
  stats.latency = MergeReservoirs(parts);
  return stats;
}

}  // namespace hdd
