#include "net/protocol.h"

#include <utility>

#include "wal/log_format.h"

namespace hdd {

namespace {

// Caps on repeated fields, far above anything a sane program needs but
// far below what a hostile length prefix could otherwise make the server
// allocate. (The frame payload itself is already capped at 1 MiB.)
constexpr std::uint32_t kMaxOps = 1u << 16;
constexpr std::uint32_t kMaxScope = 1u << 12;

void PutU8(std::string* out, std::uint8_t v) {
  out->push_back(static_cast<char>(v));
}

bool GetU8(std::string_view* data, std::uint8_t* v) {
  if (data->empty()) return false;
  *v = static_cast<std::uint8_t>((*data)[0]);
  data->remove_prefix(1);
  return true;
}

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("malformed message: ") + what);
}

}  // namespace

std::string EncodeRequest(const RequestMsg& msg) {
  std::string out;
  PutU8(&out, static_cast<std::uint8_t>(msg.type));
  if (msg.type == NetMsgType::kPing) {
    PutU64(&out, msg.request_id);
    return out;
  }
  const SubmitRequest& submit = msg.submit;
  PutU64(&out, submit.request_id);
  PutU32(&out, static_cast<std::uint32_t>(submit.txn_class));
  PutU8(&out, submit.read_only ? 1 : 0);
  PutU32(&out, static_cast<std::uint32_t>(submit.read_scope.size()));
  for (SegmentId segment : submit.read_scope) {
    PutU32(&out, static_cast<std::uint32_t>(segment));
  }
  PutU32(&out, static_cast<std::uint32_t>(submit.ops.size()));
  for (const WireOp& op : submit.ops) {
    PutU8(&out, static_cast<std::uint8_t>(op.kind));
    PutU32(&out, static_cast<std::uint32_t>(op.granule.segment));
    PutU32(&out, op.granule.index);
    PutU64(&out, static_cast<std::uint64_t>(op.value));
  }
  return out;
}

Result<RequestMsg> DecodeRequest(std::string_view payload) {
  RequestMsg msg;
  std::uint8_t type = 0;
  if (!GetU8(&payload, &type)) return Malformed("empty request");
  switch (static_cast<NetMsgType>(type)) {
    case NetMsgType::kSubmit:
    case NetMsgType::kPing:
      msg.type = static_cast<NetMsgType>(type);
      break;
    default:
      return Malformed("unknown request type");
  }
  if (msg.type == NetMsgType::kPing) {
    if (!GetU64(&payload, &msg.request_id)) return Malformed("ping id");
    if (!payload.empty()) return Malformed("trailing bytes");
    return msg;
  }
  SubmitRequest& submit = msg.submit;
  std::uint32_t txn_class = 0;
  std::uint8_t read_only = 0;
  std::uint32_t n_scope = 0;
  if (!GetU64(&payload, &submit.request_id) ||
      !GetU32(&payload, &txn_class) || !GetU8(&payload, &read_only) ||
      !GetU32(&payload, &n_scope)) {
    return Malformed("submit header");
  }
  submit.txn_class = static_cast<ClassId>(static_cast<std::int32_t>(txn_class));
  submit.read_only = read_only != 0;
  if (n_scope > kMaxScope) return Malformed("read_scope too large");
  submit.read_scope.reserve(n_scope);
  for (std::uint32_t i = 0; i < n_scope; ++i) {
    std::uint32_t segment = 0;
    if (!GetU32(&payload, &segment)) return Malformed("read_scope entry");
    submit.read_scope.push_back(
        static_cast<SegmentId>(static_cast<std::int32_t>(segment)));
  }
  std::uint32_t n_ops = 0;
  if (!GetU32(&payload, &n_ops)) return Malformed("op count");
  if (n_ops > kMaxOps) return Malformed("too many ops");
  submit.ops.reserve(n_ops);
  for (std::uint32_t i = 0; i < n_ops; ++i) {
    WireOp op;
    std::uint8_t kind = 0;
    std::uint32_t segment = 0;
    std::uint64_t value = 0;
    if (!GetU8(&payload, &kind) || !GetU32(&payload, &segment) ||
        !GetU32(&payload, &op.granule.index) || !GetU64(&payload, &value)) {
      return Malformed("op entry");
    }
    if (kind > static_cast<std::uint8_t>(WireOp::Kind::kWrite)) {
      return Malformed("unknown op kind");
    }
    op.kind = static_cast<WireOp::Kind>(kind);
    op.granule.segment =
        static_cast<SegmentId>(static_cast<std::int32_t>(segment));
    op.value = static_cast<Value>(value);
    submit.ops.push_back(op);
  }
  if (!payload.empty()) return Malformed("trailing bytes");
  return msg;
}

std::string EncodeResponse(const ResponseMsg& msg) {
  std::string out;
  PutU8(&out, static_cast<std::uint8_t>(msg.type));
  PutU64(&out, msg.request_id);
  switch (msg.type) {
    case NetMsgType::kResult:
      PutU8(&out, msg.committed ? 1 : 0);
      PutU32(&out, msg.aborted_attempts);
      PutU32(&out, static_cast<std::uint32_t>(msg.values.size()));
      for (Value value : msg.values) {
        PutU64(&out, static_cast<std::uint64_t>(value));
      }
      break;
    case NetMsgType::kOverload:
      PutU32(&out, msg.retry_after_ms);
      break;
    case NetMsgType::kError:
      PutU32(&out, static_cast<std::uint32_t>(msg.error.size()));
      out.append(msg.error);
      break;
    case NetMsgType::kPong:
      break;
    default:
      break;  // encoding a request type as a response is a caller bug
  }
  return out;
}

Result<ResponseMsg> DecodeResponse(std::string_view payload) {
  ResponseMsg msg;
  std::uint8_t type = 0;
  if (!GetU8(&payload, &type) || !GetU64(&payload, &msg.request_id)) {
    return Malformed("response header");
  }
  msg.type = static_cast<NetMsgType>(type);
  switch (msg.type) {
    case NetMsgType::kResult: {
      std::uint8_t committed = 0;
      std::uint32_t n_values = 0;
      if (!GetU8(&payload, &committed) ||
          !GetU32(&payload, &msg.aborted_attempts) ||
          !GetU32(&payload, &n_values)) {
        return Malformed("result header");
      }
      msg.committed = committed != 0;
      if (static_cast<std::uint64_t>(n_values) * 8 > payload.size()) {
        return Malformed("value count");
      }
      msg.values.reserve(n_values);
      for (std::uint32_t i = 0; i < n_values; ++i) {
        std::uint64_t value = 0;
        if (!GetU64(&payload, &value)) return Malformed("value entry");
        msg.values.push_back(static_cast<Value>(value));
      }
      break;
    }
    case NetMsgType::kOverload:
      if (!GetU32(&payload, &msg.retry_after_ms)) {
        return Malformed("overload hint");
      }
      break;
    case NetMsgType::kError: {
      std::uint32_t length = 0;
      if (!GetU32(&payload, &length) || length > payload.size()) {
        return Malformed("error length");
      }
      msg.error.assign(payload.substr(0, length));
      payload.remove_prefix(length);
      break;
    }
    case NetMsgType::kPong:
      break;
    default:
      return Malformed("unknown response type");
  }
  if (!payload.empty()) return Malformed("trailing bytes");
  return msg;
}

TxnProgram ToTxnProgram(const SubmitRequest& request,
                        std::shared_ptr<std::vector<Value>> values) {
  TxnProgram program;
  program.options.read_only = request.read_only;
  program.options.txn_class =
      request.read_only ? kReadOnlyClass : request.txn_class;
  program.options.read_scope = request.read_scope;
  if (!request.read_only) {
    for (const WireOp& op : request.ops) {
      if (op.granule.segment != request.txn_class) continue;
      (op.kind == WireOp::Kind::kWrite ? program.declared_writes
                                       : program.declared_reads)
          .push_back(op.granule);
    }
  }
  program.body = [ops = request.ops, values = std::move(values)](
                     ConcurrencyController& cc,
                     const TxnDescriptor& txn) -> Status {
    if (values) values->clear();  // retries re-run the whole body
    for (const WireOp& op : ops) {
      if (op.kind == WireOp::Kind::kWrite) {
        Status status = cc.Write(txn, op.granule, op.value);
        if (!status.ok()) return status;
      } else {
        Result<Value> value = cc.Read(txn, op.granule);
        if (!value.ok()) return value.status();
        if (values) values->push_back(*value);
      }
    }
    return Status::OK();
  };
  return program;
}

}  // namespace hdd
