#include "net/admission.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace hdd {

namespace {

std::string ClassLabel(ClassId cls) {
  return cls == kReadOnlyClass ? std::string("ro")
                               : "c" + std::to_string(cls);
}

}  // namespace

AdmissionController::AdmissionController(const AdmissionOptions& options,
                                         int num_classes,
                                         MetricsRegistry* metrics)
    : total_cap_(options.total_inflight_cap),
      shed_threshold_(options.shed_threshold),
      shed_weight_floor_(options.shed_weight_floor) {
  cells_ = std::vector<Cell>(static_cast<std::size_t>(num_classes) + 1);
  std::uint64_t weight_sum = 0;
  const auto policy_for = [&](ClassId cls) -> ClassPolicy {
    if (cls == kReadOnlyClass) return options.read_only;
    auto it = options.per_class.find(cls);
    return it != options.per_class.end() ? it->second : options.default_update;
  };
  for (int i = 0; i <= num_classes; ++i) {
    const ClassId cls = i == num_classes ? kReadOnlyClass : ClassId{i};
    weight_sum += std::max<std::uint32_t>(1, policy_for(cls).weight);
  }
  const auto now = std::chrono::steady_clock::now();
  for (int i = 0; i <= num_classes; ++i) {
    const ClassId cls = i == num_classes ? kReadOnlyClass : ClassId{i};
    Cell& cell = cells_[CellIndex(cls)];
    cell.policy = policy_for(cls);
    cell.cap = cell.policy.inflight_cap != 0
                   ? cell.policy.inflight_cap
                   : std::max<std::size_t>(
                         1, total_cap_ *
                                std::max<std::uint32_t>(1, cell.policy.weight) /
                                weight_sum);
    cell.tokens = cell.policy.burst;
    cell.last_refill = now;
    if (metrics != nullptr) {
      const std::string label = ClassLabel(cls);
      cell.admitted = &metrics->GetCounter("net_class_" + label + "_admitted");
      cell.shed = &metrics->GetCounter("net_class_" + label + "_shed");
      cell.inflight_gauge =
          &metrics->GetGauge("net_class_" + label + "_inflight");
    }
  }
}

std::size_t AdmissionController::CellIndex(ClassId cls) const {
  return cls == kReadOnlyClass ? cells_.size() - 1
                               : static_cast<std::size_t>(cls);
}

bool AdmissionController::KnowsClass(ClassId cls) const {
  if (cls == kReadOnlyClass) return true;
  return cls >= 0 && static_cast<std::size_t>(cls) + 1 < cells_.size();
}

AdmitDecision AdmissionController::TryAdmit(ClassId cls) {
  AdmitDecision decision;
  Cell& cell = cells_[CellIndex(cls)];
  std::lock_guard<std::mutex> lock(cell.mu);
  if (closed_.load(std::memory_order_relaxed)) {
    decision.retry_after_ms = 1000;
    if (cell.shed != nullptr) cell.shed->Add();
    return decision;
  }
  // Overload shedding: once the server-wide inflight pool is past the
  // threshold, low-weight classes (Protocol C analytics by default) are
  // refused outright so the remaining headroom serves update classes.
  const std::uint64_t total = total_inflight_.load(std::memory_order_relaxed);
  if (cell.policy.weight < shed_weight_floor_ &&
      static_cast<double>(total) >=
          shed_threshold_ * static_cast<double>(total_cap_)) {
    decision.retry_after_ms = 50;
    if (cell.shed != nullptr) cell.shed->Add();
    return decision;
  }
  if (total >= total_cap_ || cell.inflight >= cell.cap) {
    decision.retry_after_ms = 20;
    if (cell.shed != nullptr) cell.shed->Add();
    return decision;
  }
  if (cell.policy.rate_per_sec > 0.0) {
    const auto now = std::chrono::steady_clock::now();
    const double elapsed =
        std::chrono::duration<double>(now - cell.last_refill).count();
    cell.last_refill = now;
    cell.tokens = std::min(cell.policy.burst,
                           cell.tokens + elapsed * cell.policy.rate_per_sec);
    if (cell.tokens < 1.0) {
      decision.retry_after_ms = static_cast<std::uint32_t>(std::ceil(
          (1.0 - cell.tokens) / cell.policy.rate_per_sec * 1000.0));
      if (cell.shed != nullptr) cell.shed->Add();
      return decision;
    }
    cell.tokens -= 1.0;
  }
  ++cell.inflight;
  total_inflight_.fetch_add(1, std::memory_order_relaxed);
  decision.admitted = true;
  if (cell.admitted != nullptr) cell.admitted->Add();
  if (cell.inflight_gauge != nullptr) cell.inflight_gauge->Add();
  return decision;
}

void AdmissionController::Finish(ClassId cls) {
  Cell& cell = cells_[CellIndex(cls)];
  {
    std::lock_guard<std::mutex> lock(cell.mu);
    if (cell.inflight > 0) --cell.inflight;
  }
  total_inflight_.fetch_sub(1, std::memory_order_relaxed);
  if (cell.inflight_gauge != nullptr) cell.inflight_gauge->Sub();
}

void AdmissionController::Close() {
  closed_.store(true, std::memory_order_relaxed);
}

std::uint64_t AdmissionController::total_inflight() const {
  return total_inflight_.load(std::memory_order_relaxed);
}

std::uint64_t AdmissionController::inflight(ClassId cls) const {
  const Cell& cell = cells_[CellIndex(cls)];
  std::lock_guard<std::mutex> lock(cell.mu);
  return cell.inflight;
}

std::uint32_t AdmissionController::weight(ClassId cls) const {
  return cells_[CellIndex(cls)].policy.weight;
}

}  // namespace hdd
