// hdd_server: serve an HDD instance over TCP.
//
//   hdd_server [--port=N] [--controller=hdd|2pl|mvto|...] [--depth=N]
//              [--granules=N] [--io_threads=N] [--workers=N]
//              [--backend=per_txn|epoch] [--inflight_cap=N]
//
// Binds 127.0.0.1 (loopback service; put a real proxy in front for
// anything else), prints the bound port on stdout, serves until SIGINT or
// SIGTERM, then shuts down gracefully and prints a per-class summary.

#include <csignal>
#include <cstdlib>
#include <ctime>
#include <iostream>
#include <string>

#include "engine/harness.h"
#include "net/loopback.h"
#include "net/server.h"
#include "obs/report.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

std::uint64_t IntFlagOr(int argc, char** argv, const std::string& flag,
                        std::uint64_t fallback) {
  const auto value = hdd::FlagValue(argc, argv, flag);
  if (!value) return fallback;
  return static_cast<std::uint64_t>(std::strtoull(value->c_str(), nullptr, 10));
}

hdd::ControllerKind KindFromName(const std::string& name) {
  for (hdd::ControllerKind kind : hdd::AllControllerKinds()) {
    if (hdd::ControllerKindName(kind) == name) return kind;
  }
  std::cerr << "unknown controller '" << name << "', using hdd\n";
  return hdd::ControllerKind::kHdd;
}

}  // namespace

int main(int argc, char** argv) {
  hdd::SyntheticWorkloadParams params;
  params.depth = static_cast<int>(IntFlagOr(argc, argv, "--depth", 4));
  params.granules_per_segment =
      static_cast<std::uint32_t>(IntFlagOr(argc, argv, "--granules", 256));
  const hdd::ControllerKind kind =
      KindFromName(hdd::FlagValue(argc, argv, "--controller").value_or("hdd"));
  auto world = hdd::MakeServerWorld(kind, params);
  if (!world) {
    std::cerr << "failed to build hierarchy schema\n";
    return 1;
  }

  hdd::ServerOptions options;
  options.port =
      static_cast<std::uint16_t>(IntFlagOr(argc, argv, "--port", 0));
  options.num_io_threads =
      static_cast<int>(IntFlagOr(argc, argv, "--io_threads", 2));
  options.num_workers =
      static_cast<int>(IntFlagOr(argc, argv, "--workers", 4));
  options.num_classes = params.depth;
  options.admission.total_inflight_cap =
      IntFlagOr(argc, argv, "--inflight_cap", 4096);
  if (hdd::FlagValue(argc, argv, "--backend").value_or("per_txn") == "epoch") {
    options.backend = hdd::ServerOptions::Backend::kEpoch;
  }

  hdd::MetricsRegistry metrics;
  hdd::HddServer server(world->cc.get(), options, &metrics);
  const hdd::Status status = server.Start();
  if (!status.ok()) {
    std::cerr << "server start failed: " << status << "\n";
    return 1;
  }
  std::cout << "hdd_server listening on 127.0.0.1:" << server.port()
            << " (controller=" << hdd::ControllerKindName(kind)
            << ", classes=" << params.depth << ")\n"
            << std::flush;

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) {
    struct timespec ts = {0, 100 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  server.Stop();

  std::cout << "\nshutdown. counters:\n";
  for (const auto& [name, value] : metrics.SnapshotCounters()) {
    std::cout << "  " << name << " " << value << "\n";
  }
  return 0;
}
