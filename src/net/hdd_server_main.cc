// hdd_server: serve an HDD instance over TCP.
//
//   hdd_server [--port=N] [--controller=hdd|2pl|mvto|...] [--depth=N]
//              [--granules=N] [--io_threads=N] [--workers=N]
//              [--backend=per_txn|epoch] [--inflight_cap=N]
//
// Sharded deployment (one process per shard node, see src/dist/):
//
//   hdd_server --shard=I --shard_peers=P0,P1,... [--port=N] [--depth=N]
//              [--granules=N] [--workers=N] [--inflight_cap=N]
//
// where every process gets the SAME --shard_peers list (dist-transport
// ports; process I binds PI) and a distinct --shard index. Node 0 hosts
// the cluster clock. Update transactions must be submitted to the front
// end of their class's home node; read-only anywhere.
//
// Binds 127.0.0.1 (loopback service; put a real proxy in front for
// anything else), prints the bound port on stdout, serves until SIGINT or
// SIGTERM, then shuts down gracefully and prints a per-class summary.

#include <csignal>
#include <cstdlib>
#include <ctime>
#include <iostream>
#include <string>
#include <vector>

#include "dist/shard_server.h"
#include "engine/harness.h"
#include "net/loopback.h"
#include "net/server.h"
#include "obs/report.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

std::uint64_t IntFlagOr(int argc, char** argv, const std::string& flag,
                        std::uint64_t fallback) {
  const auto value = hdd::FlagValue(argc, argv, flag);
  if (!value) return fallback;
  return static_cast<std::uint64_t>(std::strtoull(value->c_str(), nullptr, 10));
}

hdd::ControllerKind KindFromName(const std::string& name) {
  for (hdd::ControllerKind kind : hdd::AllControllerKinds()) {
    if (hdd::ControllerKindName(kind) == name) return kind;
  }
  std::cerr << "unknown controller '" << name << "', using hdd\n";
  return hdd::ControllerKind::kHdd;
}

std::vector<hdd::SocketPeer> ParsePeers(const std::string& list) {
  std::vector<hdd::SocketPeer> peers;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::string token =
        list.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (!token.empty()) {
      peers.push_back(hdd::SocketPeer{
          "", static_cast<std::uint16_t>(
                  std::strtoul(token.c_str(), nullptr, 10))});
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return peers;
}

int RunShard(int argc, char** argv, int node_id) {
  hdd::ShardServerOptions options;
  options.node_id = node_id;
  options.peers =
      ParsePeers(hdd::FlagValue(argc, argv, "--shard_peers").value_or(""));
  if (options.peers.size() < 2 ||
      node_id >= static_cast<int>(options.peers.size())) {
    std::cerr << "--shard_peers must list a dist port per node and "
                 "--shard must index into it\n";
    return 1;
  }
  options.depth = static_cast<int>(IntFlagOr(argc, argv, "--depth", 4));
  options.granules_per_segment =
      static_cast<std::uint32_t>(IntFlagOr(argc, argv, "--granules", 64));
  options.front_port =
      static_cast<std::uint16_t>(IntFlagOr(argc, argv, "--port", 0));
  options.front_workers =
      static_cast<int>(IntFlagOr(argc, argv, "--workers", 2));
  options.inflight_cap = IntFlagOr(argc, argv, "--inflight_cap", 1024);

  hdd::ShardServer server(std::move(options));
  const hdd::Status status = server.Start();
  if (!status.ok()) {
    std::cerr << "shard start failed: " << status << "\n";
    return 1;
  }
  std::cout << "hdd_server shard " << node_id << "/"
            << server.shard_map().num_nodes() << " listening on 127.0.0.1:"
            << server.front_port() << " (dist port " << server.dist_port()
            << ")\n"
            << std::flush;

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) {
    struct timespec ts = {0, 100 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  const hdd::Status stopped = server.Stop();
  if (!stopped.ok()) {
    std::cerr << "shard degraded: " << stopped << "\n";
    return 1;
  }
  const int leaked = server.transport_open_fds();
  if (leaked != 0) {
    std::cerr << "transport leaked " << leaked << " fds\n";
    return 1;
  }
  std::cout << "shard " << node_id << " shutdown clean\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (const auto shard = hdd::FlagValue(argc, argv, "--shard")) {
    return RunShard(argc, argv,
                    static_cast<int>(std::strtol(shard->c_str(), nullptr, 10)));
  }
  hdd::SyntheticWorkloadParams params;
  params.depth = static_cast<int>(IntFlagOr(argc, argv, "--depth", 4));
  params.granules_per_segment =
      static_cast<std::uint32_t>(IntFlagOr(argc, argv, "--granules", 256));
  const hdd::ControllerKind kind =
      KindFromName(hdd::FlagValue(argc, argv, "--controller").value_or("hdd"));
  auto world = hdd::MakeServerWorld(kind, params);
  if (!world) {
    std::cerr << "failed to build hierarchy schema\n";
    return 1;
  }

  hdd::ServerOptions options;
  options.port =
      static_cast<std::uint16_t>(IntFlagOr(argc, argv, "--port", 0));
  options.num_io_threads =
      static_cast<int>(IntFlagOr(argc, argv, "--io_threads", 2));
  options.num_workers =
      static_cast<int>(IntFlagOr(argc, argv, "--workers", 4));
  options.num_classes = params.depth;
  options.admission.total_inflight_cap =
      IntFlagOr(argc, argv, "--inflight_cap", 4096);
  if (hdd::FlagValue(argc, argv, "--backend").value_or("per_txn") == "epoch") {
    options.backend = hdd::ServerOptions::Backend::kEpoch;
  }

  hdd::MetricsRegistry metrics;
  hdd::HddServer server(world->cc.get(), options, &metrics);
  const hdd::Status status = server.Start();
  if (!status.ok()) {
    std::cerr << "server start failed: " << status << "\n";
    return 1;
  }
  std::cout << "hdd_server listening on 127.0.0.1:" << server.port()
            << " (controller=" << hdd::ControllerKindName(kind)
            << ", classes=" << params.depth << ")\n"
            << std::flush;

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) {
    struct timespec ts = {0, 100 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  server.Stop();

  std::cout << "\nshutdown. counters:\n";
  for (const auto& [name, value] : metrics.SnapshotCounters()) {
    std::cout << "  " << name << " " << value << "\n";
  }
  return 0;
}
