#include "net/loopback.h"

#include <utility>

namespace hdd {

std::unique_ptr<ServerWorld> MakeServerWorld(
    ControllerKind kind, const SyntheticWorkloadParams& params) {
  auto world = std::make_unique<ServerWorld>();
  world->params = params;
  SyntheticWorkload workload(params);
  auto schema = HierarchySchema::Create(workload.Spec());
  if (!schema.ok()) return nullptr;
  world->schema.emplace(std::move(schema).value());
  world->db = workload.MakeDatabase();
  world->clock = std::make_unique<LogicalClock>();
  world->cc = CreateController(kind, world->db.get(), world->clock.get(),
                               &*world->schema);
  // The server's traffic is open-ended, not a recorded batch: schedule
  // recording would grow without bound.
  world->cc->recorder().set_enabled(false);
  return world;
}

RequestMsg MakeSyntheticRequest(const SyntheticWorkloadParams& params,
                                Rng& rng) {
  RequestMsg msg;
  msg.type = NetMsgType::kSubmit;
  SubmitRequest& submit = msg.submit;
  const auto granule = [&](int segment) {
    GranuleRef ref;
    ref.segment = segment;
    ref.index =
        static_cast<std::uint32_t>(rng.NextBounded(params.granules_per_segment));
    return ref;
  };
  if (rng.NextBool(params.read_only_fraction)) {
    submit.read_only = true;
    for (int level = 0; level < params.depth; ++level) {
      WireOp op;
      op.kind = WireOp::Kind::kRead;
      op.granule = granule(level);
      submit.ops.push_back(op);
    }
    return msg;
  }
  const int cls = static_cast<int>(
      rng.NextBounded(static_cast<std::uint64_t>(params.depth)));
  submit.txn_class = cls;
  for (int upper = 0; upper < cls; ++upper) {
    for (int i = 0; i < params.upper_reads; ++i) {
      WireOp op;
      op.kind = WireOp::Kind::kRead;
      op.granule = granule(upper);
      submit.ops.push_back(op);
    }
  }
  for (int i = 0; i < params.own_reads; ++i) {
    WireOp op;
    op.kind = WireOp::Kind::kRead;
    op.granule = granule(cls);
    submit.ops.push_back(op);
  }
  for (int i = 0; i < params.own_writes; ++i) {
    WireOp op;
    op.kind = WireOp::Kind::kWrite;
    op.granule = granule(cls);
    op.value = static_cast<Value>(rng.Next() % 1000003);
    submit.ops.push_back(op);
  }
  return msg;
}

}  // namespace hdd
