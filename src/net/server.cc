#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "engine/epoch_executor.h"
#include "engine/executor.h"

namespace hdd {

namespace {

// Listener sentinel in epoll event data; connection ids start at 1 and
// EpollLoop::kWakeData is ~0, so neither collides.
constexpr std::uint64_t kListenData = ~std::uint64_t{0} - 1;

// Cap on read() calls per connection event so one firehose connection
// cannot starve the rest of an IO thread's event batch; level-triggered
// epoll re-delivers whatever is left.
constexpr int kMaxReadsPerEvent = 16;

/// Replays a fixed vector of collected programs as a Workload, so a batch
/// of admitted network requests can be driven through RunWorkloadEpochs.
class VectorWorkload : public Workload {
 public:
  explicit VectorWorkload(std::vector<TxnProgram> programs)
      : programs_(std::move(programs)) {}
  TxnProgram Make(std::uint64_t index, Rng&) const override {
    return programs_[index];
  }

 private:
  std::vector<TxnProgram> programs_;
};

}  // namespace

HddServer::HddServer(ConcurrencyController* cc, const ServerOptions& options,
                     MetricsRegistry* metrics)
    : cc_(cc),
      options_(options),
      metrics_(metrics),
      admission_(options.admission, options.num_classes, metrics) {
  queues_.resize(static_cast<std::size_t>(options_.num_classes) + 1);
  deficits_.assign(queues_.size(), 0);
  m_accepted_ = &metrics_->GetCounter("net_accepted");
  m_closed_ = &metrics_->GetCounter("net_closed");
  m_frames_ = &metrics_->GetCounter("net_frames");
  m_protocol_errors_ = &metrics_->GetCounter("net_protocol_errors");
  m_admitted_ = &metrics_->GetCounter("net_admitted");
  m_shed_ = &metrics_->GetCounter("net_shed");
  m_committed_ = &metrics_->GetCounter("net_committed");
  m_failed_ = &metrics_->GetCounter("net_failed");
  m_connections_ = &metrics_->GetGauge("net_connections");
  m_queue_depth_ = &metrics_->GetGauge("net_queue_depth");
  m_request_us_ = &metrics_->GetHistogram("net_request_us");
  m_class_committed_.resize(queues_.size());
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    const std::string label =
        i + 1 == queues_.size() ? std::string("ro") : "c" + std::to_string(i);
    m_class_committed_[i] =
        &metrics_->GetCounter("net_class_" + label + "_committed");
  }
}

HddServer::~HddServer() { Stop(); }

Status HddServer::Start() {
  if (!loop_.ok()) return Status::IoError("epoll/eventfd setup failed");
  if (options_.shard_execute &&
      options_.backend == ServerOptions::Backend::kEpoch) {
    return Status::InvalidArgument(
        "shard_execute requires the per-txn backend");
  }
  const int lfd =
      socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (lfd < 0) return Status::IoError("socket() failed");
  const int one = 1;
  setsockopt(lfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    close(lfd);
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(lfd, options_.listen_backlog) != 0) {
    close(lfd);
    return Status::IoError(std::string("bind/listen: ") +
                           std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  Status status = loop_.AddPersistent(lfd, EPOLLIN, kListenData);
  if (!status.ok()) {
    close(lfd);
    return status;
  }
  listen_fd_.store(lfd, std::memory_order_release);
  started_.store(true, std::memory_order_release);
  for (int i = 0; i < options_.num_io_threads; ++i) {
    io_threads_.emplace_back([this] { IoThread(); });
  }
  if (options_.backend == ServerOptions::Backend::kEpoch) {
    worker_threads_.emplace_back([this] { EpochBatcherThread(); });
  } else {
    for (int i = 0; i < options_.num_workers; ++i) {
      worker_threads_.emplace_back([this] { WorkerThread(); });
    }
  }
  return Status::OK();
}

void HddServer::Stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) return;

  // 1. Stop the intake: no new connections, no new admissions. IO threads
  //    stay up so in-flight responses still reach their sockets.
  const int lfd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (lfd >= 0) {
    (void)loop_.Remove(lfd);
    close(lfd);
  }
  admission_.Close();

  // 2. Drain everything already admitted.
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(dispatch_mu_);
      if (queued_ == 0 && executing_ == 0) break;
    }
    dispatch_cv_.notify_all();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // 3. Give pending outboxes a moment to flush through the IO threads.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  for (;;) {
    bool pending = false;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (const auto& [id, conn] : conns_) {
        std::lock_guard<std::mutex> conn_lock(conn->mu);
        if (!conn->closed && conn->outbox.size() > conn->outbox_off) {
          pending = true;
          break;
        }
      }
    }
    if (!pending || std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // 4. Tear the thread pools down.
  {
    std::lock_guard<std::mutex> lock(dispatch_mu_);
    workers_stop_ = true;
  }
  dispatch_cv_.notify_all();
  for (std::thread& t : worker_threads_) t.join();
  worker_threads_.clear();
  io_stop_.store(true, std::memory_order_release);
  loop_.Wakeup();
  for (std::thread& t : io_threads_) t.join();
  io_threads_.clear();

  // 5. Close whatever connections remain.
  std::vector<ConnPtr> leftover;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    leftover.reserve(conns_.size());
    for (const auto& [id, conn] : conns_) leftover.push_back(conn);
  }
  for (const ConnPtr& conn : leftover) CloseConn(conn);
  started_.store(false, std::memory_order_release);
}

std::uint64_t HddServer::connection_count() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  return conns_.size();
}

void HddServer::IoThread() {
  std::vector<EpollLoop::Event> events;
  while (!io_stop_.load(std::memory_order_acquire)) {
    events.clear();
    loop_.Wait(&events, 100);
    for (const EpollLoop::Event& ev : events) {
      if (ev.data == EpollLoop::kWakeData) continue;
      if (ev.data == kListenData) {
        HandleAccept();
        continue;
      }
      HandleConnEvent(ev.data, ev.events);
    }
  }
}

void HddServer::HandleAccept() {
  const int lfd = listen_fd_.load(std::memory_order_acquire);
  if (lfd < 0) return;  // Stop() already retired the listener
  for (;;) {
    const int fd =
        accept4(lfd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN (another IO thread won the race) or error
    if (stopping_.load(std::memory_order_relaxed)) {
      close(fd);
      continue;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conn->id = next_conn_id_++;
      conns_.emplace(conn->id, conn);
    }
    if (!loop_.AddOneshot(fd, EPOLLIN | EPOLLRDHUP, conn->id).ok()) {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.erase(conn->id);
      close(fd);
      continue;
    }
    m_accepted_->Add();
    m_connections_->Add();
  }
}

void HddServer::HandleConnEvent(std::uint64_t id, std::uint32_t events) {
  ConnPtr conn;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    auto it = conns_.find(id);
    if (it == conns_.end()) return;
    conn = it->second;
  }
  bool dead = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) return;
    if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
      dead = true;
    } else {
      if ((events & EPOLLOUT) != 0) dead = !FlushOutboxLocked(*conn);
      if (!dead && (events & (EPOLLIN | EPOLLRDHUP)) != 0) {
        dead = !DrainReadable(conn);
      }
      if (!dead) RearmLocked(*conn);
    }
  }
  if (dead) CloseConn(conn);
}

bool HddServer::DrainReadable(const ConnPtr& conn) {
  Connection& c = *conn;
  char buf[16384];
  for (int i = 0; i < kMaxReadsPerEvent; ++i) {
    // Backpressure: at the inflight or outbox bound we simply stop
    // reading; unread bytes stay in the kernel socket buffer and TCP flow
    // control pushes back to the client. Never buffered server-side.
    if (c.inflight >= options_.per_connection_inflight_cap ||
        c.outbox.size() - c.outbox_off >= options_.outbox_pause_bytes) {
      return true;
    }
    const ssize_t n = read(c.fd, buf, sizeof(buf));
    if (n == 0) return false;  // orderly EOF
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno == EAGAIN || errno == EWOULDBLOCK;
    }
    c.decoder.Feed(std::string_view(buf, static_cast<std::size_t>(n)));
    std::string payload;
    while (c.inflight < options_.per_connection_inflight_cap &&
           c.outbox.size() - c.outbox_off < options_.outbox_pause_bytes) {
      const FrameDecoder::Next next = c.decoder.Poll(&payload);
      if (next == FrameDecoder::Next::kNeedMore) break;
      if (next == FrameDecoder::Next::kCorrupt) {
        m_protocol_errors_->Add();
        return false;
      }
      HandleFrame(conn, payload);
      if (c.closed) return false;
    }
    if (n < static_cast<ssize_t>(sizeof(buf))) return true;
  }
  return true;
}

void HddServer::HandleFrame(const ConnPtr& conn, std::string_view payload) {
  m_frames_->Add();
  Result<RequestMsg> decoded = DecodeRequest(payload);
  if (!decoded.ok()) {
    m_protocol_errors_->Add();
    ResponseMsg msg;
    msg.type = NetMsgType::kError;
    msg.error = decoded.status().message();
    EnqueueResponseLocked(*conn, msg);
    return;
  }
  const RequestMsg& req = *decoded;
  if (req.type == NetMsgType::kPing) {
    ResponseMsg msg;
    msg.type = NetMsgType::kPong;
    msg.request_id = req.request_id;
    EnqueueResponseLocked(*conn, msg);
    return;
  }
  const SubmitRequest& submit = req.submit;
  if (!submit.read_only && !admission_.KnowsClass(submit.txn_class)) {
    ResponseMsg msg;
    msg.type = NetMsgType::kError;
    msg.request_id = submit.request_id;
    msg.error = "unknown transaction class";
    EnqueueResponseLocked(*conn, msg);
    return;
  }
  const ClassId cls = submit.read_only ? kReadOnlyClass : submit.txn_class;
  const AdmitDecision decision = admission_.TryAdmit(cls);
  if (!decision.admitted) {
    m_shed_->Add();
    ResponseMsg msg;
    msg.type = NetMsgType::kOverload;
    msg.request_id = submit.request_id;
    msg.retry_after_ms = decision.retry_after_ms;
    EnqueueResponseLocked(*conn, msg);
    return;
  }
  m_admitted_->Add();
  ++conn->inflight;
  WorkItem item;
  item.conn = conn;
  item.request_id = submit.request_id;
  item.cls = cls;
  item.values = std::make_shared<std::vector<Value>>();
  if (options_.shard_execute) {
    item.submit = submit;
  } else {
    item.program = ToTxnProgram(submit, item.values);
  }
  item.admitted_at = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(dispatch_mu_);
    queues_[QueueIndex(cls)].push_back(std::move(item));
    ++queued_;
  }
  m_queue_depth_->Add();
  dispatch_cv_.notify_one();
}

void HddServer::EnqueueResponseLocked(Connection& conn,
                                      const ResponseMsg& msg) {
  if (conn.closed) return;
  AppendNetFrame(&conn.outbox, EncodeResponse(msg));
  if (!FlushOutboxLocked(conn)) conn.closed = true;  // caller notices
}

bool HddServer::FlushOutboxLocked(Connection& conn) {
  while (conn.outbox_off < conn.outbox.size()) {
    const ssize_t n = write(conn.fd, conn.outbox.data() + conn.outbox_off,
                            conn.outbox.size() - conn.outbox_off);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;
    }
    conn.outbox_off += static_cast<std::size_t>(n);
  }
  conn.outbox.clear();
  conn.outbox_off = 0;
  return true;
}

void HddServer::RearmLocked(Connection& conn) {
  if (conn.closed) return;
  std::uint32_t events = EPOLLRDHUP;
  if (conn.outbox.size() > conn.outbox_off) events |= EPOLLOUT;
  const bool paused =
      conn.inflight >= options_.per_connection_inflight_cap ||
      conn.outbox.size() - conn.outbox_off >= options_.outbox_pause_bytes;
  if (!paused) events |= EPOLLIN;
  (void)loop_.Rearm(conn.fd, events, conn.id);
}

void HddServer::CloseConn(const ConnPtr& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed && conn->fd < 0) return;
    conn->closed = true;
    if (conn->fd >= 0) {
      (void)loop_.Remove(conn->fd);
      close(conn->fd);
      conn->fd = -1;
    }
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.erase(conn->id);
  }
  m_closed_->Add();
  m_connections_->Sub();
}

void HddServer::Respond(const ConnPtr& conn, const ResponseMsg& msg) {
  bool dead = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->inflight > 0) --conn->inflight;
    if (conn->closed) return;
    EnqueueResponseLocked(*conn, msg);
    dead = conn->closed;
    if (!dead) {
      // The inflight drop may unpause reads; also resume any complete
      // frames parked in the decoder while we were at the cap (epoll
      // cannot re-notify for bytes already read into userspace).
      std::string payload;
      while (conn->inflight < options_.per_connection_inflight_cap &&
             conn->outbox.size() - conn->outbox_off <
                 options_.outbox_pause_bytes) {
        const FrameDecoder::Next next = conn->decoder.Poll(&payload);
        if (next == FrameDecoder::Next::kNeedMore) break;
        if (next == FrameDecoder::Next::kCorrupt) {
          m_protocol_errors_->Add();
          dead = true;
          break;
        }
        HandleFrame(conn, payload);
        if (conn->closed) {
          dead = true;
          break;
        }
      }
    }
    if (!dead) RearmLocked(*conn);
  }
  if (dead) CloseConn(conn);
}

void HddServer::FinishItem(const WorkItem& item, const ProgramResult& result) {
  admission_.Finish(item.cls);
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - item.admitted_at)
                           .count();
  m_request_us_->Record(static_cast<std::uint64_t>(elapsed));
  if (result.committed) {
    m_committed_->Add();
    m_class_committed_[QueueIndex(item.cls)]->Add();
  } else {
    m_failed_->Add();
  }
  ResponseMsg msg;
  msg.type = NetMsgType::kResult;
  msg.request_id = item.request_id;
  msg.committed = result.committed;
  msg.aborted_attempts =
      static_cast<std::uint32_t>(result.aborted_attempts);
  if (item.values) msg.values = *item.values;
  Respond(item.conn, msg);
}

std::size_t HddServer::QueueIndex(ClassId cls) const {
  return cls == kReadOnlyClass ? queues_.size() - 1
                               : static_cast<std::size_t>(cls);
}

bool HddServer::PopItemLocked(WorkItem* item) {
  // Deficit round robin weighted by the class policy weights: a backlogged
  // class gets `weight` consecutive pops before the cursor moves on, so
  // service share under contention tracks the configured ratios.
  const std::size_t n = queues_.size();
  for (std::size_t scanned = 0; scanned < 2 * n; ++scanned) {
    std::deque<WorkItem>& q = queues_[drr_cursor_];
    if (q.empty()) {
      deficits_[drr_cursor_] = 0;
      drr_cursor_ = (drr_cursor_ + 1) % n;
      continue;
    }
    if (deficits_[drr_cursor_] == 0) {
      const ClassId cls = drr_cursor_ + 1 == n
                              ? kReadOnlyClass
                              : static_cast<ClassId>(drr_cursor_);
      deficits_[drr_cursor_] = std::max<std::uint32_t>(
          1, admission_.weight(cls));
    }
    *item = std::move(q.front());
    q.pop_front();
    if (--deficits_[drr_cursor_] == 0) drr_cursor_ = (drr_cursor_ + 1) % n;
    return true;
  }
  return false;
}

void HddServer::WorkerThread() {
  for (;;) {
    WorkItem item;
    if (options_.test_pause_workers &&
        options_.test_pause_workers->load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      {
        std::lock_guard<std::mutex> lock(dispatch_mu_);
        if (workers_stop_ && queued_ == 0) return;
      }
      continue;
    }
    {
      std::unique_lock<std::mutex> lock(dispatch_mu_);
      dispatch_cv_.wait(lock, [this] { return queued_ > 0 || workers_stop_; });
      if (queued_ == 0) {
        if (workers_stop_) return;
        continue;
      }
      if (!PopItemLocked(&item)) continue;
      --queued_;
      ++executing_;
    }
    m_queue_depth_->Sub();
    ProgramResult result;
    if (options_.shard_execute) {
      ServerOptions::ShardOutcome out = options_.shard_execute(item.submit);
      result.committed = out.committed;
      result.failed = !out.committed;
      result.aborted_attempts = out.aborted_attempts;
      *item.values = std::move(out.values);
    } else {
      result = RunProgram(*cc_, item.program, options_.max_retries);
    }
    FinishItem(item, result);
    {
      std::lock_guard<std::mutex> lock(dispatch_mu_);
      --executing_;
    }
    dispatch_cv_.notify_all();  // Stop() polls queued_/executing_
  }
}

void HddServer::EpochBatcherThread() {
  for (;;) {
    std::vector<WorkItem> batch;
    {
      std::unique_lock<std::mutex> lock(dispatch_mu_);
      dispatch_cv_.wait(lock, [this] { return queued_ > 0 || workers_stop_; });
      if (queued_ == 0) {
        if (workers_stop_) return;
        continue;
      }
      while (batch.size() < options_.epoch_size && queued_ > 0) {
        WorkItem item;
        if (!PopItemLocked(&item)) break;
        --queued_;
        batch.push_back(std::move(item));
      }
      executing_ += batch.size();
    }
    for (std::size_t i = 0; i < batch.size(); ++i) m_queue_depth_->Sub();
    std::vector<TxnProgram> programs;
    programs.reserve(batch.size());
    for (const WorkItem& item : batch) programs.push_back(item.program);
    VectorWorkload workload(std::move(programs));
    EpochExecutorOptions eo;
    eo.num_threads = options_.num_workers;
    eo.epoch_size = options_.epoch_size;
    eo.max_retries = options_.max_retries;
    eo.on_program_done = [this, &batch](std::uint64_t index,
                                        const ProgramResult& result) {
      FinishItem(batch[index], result);
    };
    RunWorkloadEpochs(*cc_, workload, batch.size(), eo);
    {
      std::lock_guard<std::mutex> lock(dispatch_mu_);
      executing_ -= batch.size();
    }
    dispatch_cv_.notify_all();
  }
}

}  // namespace hdd
