#include "net/frame.h"

#include "wal/log_format.h"

namespace hdd {

void AppendNetFrame(std::string* out, std::string_view payload) {
  AppendFrame(out, payload);
}

void FrameDecoder::Feed(std::string_view bytes) {
  // Compact once the consumed prefix dominates the buffer, so the memory
  // held per connection tracks the in-flight frame, not stream history.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(bytes.data(), bytes.size());
}

FrameDecoder::Next FrameDecoder::Poll(std::string* payload) {
  if (corrupt_) return Next::kCorrupt;
  const std::size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderBytes) return Next::kNeedMore;
  std::string_view header(buffer_.data() + consumed_, kFrameHeaderBytes);
  std::uint32_t length = 0;
  std::uint32_t crc = 0;
  GetU32(&header, &length);
  GetU32(&header, &crc);
  if (length > kMaxNetFramePayload) {
    // A complete header announcing an insane payload: the stream is
    // garbage or desynchronized, not mid-frame.
    corrupt_ = true;
    return Next::kCorrupt;
  }
  if (available < kFrameHeaderBytes + length) return Next::kNeedMore;
  const std::string_view body(buffer_.data() + consumed_ + kFrameHeaderBytes,
                              length);
  if (Crc32(body) != crc) {
    corrupt_ = true;
    return Next::kCorrupt;
  }
  payload->assign(body);
  consumed_ += kFrameHeaderBytes + length;
  return Next::kFrame;
}

}  // namespace hdd
