#include "net/epoll_loop.h"

#include <fcntl.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace hdd {

namespace {

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

EpollLoop::EpollLoop() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (ok()) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeData;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
      close(wake_fd_);
      wake_fd_ = -1;
    }
  }
}

EpollLoop::~EpollLoop() {
  if (wake_fd_ >= 0) close(wake_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

Status EpollLoop::AddOneshot(int fd, std::uint32_t events,
                             std::uint64_t data) {
  epoll_event ev{};
  ev.events = events | EPOLLONESHOT;
  ev.data.u64 = data;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Errno("epoll_ctl(ADD oneshot)");
  }
  return Status::OK();
}

Status EpollLoop::Rearm(int fd, std::uint32_t events, std::uint64_t data) {
  epoll_event ev{};
  ev.events = events | EPOLLONESHOT;
  ev.data.u64 = data;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Errno("epoll_ctl(MOD)");
  }
  return Status::OK();
}

Status EpollLoop::AddPersistent(int fd, std::uint32_t events,
                                std::uint64_t data) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = data;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Errno("epoll_ctl(ADD)");
  }
  return Status::OK();
}

Status EpollLoop::Modify(int fd, std::uint32_t events, std::uint64_t data) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = data;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Errno("epoll_ctl(MOD persistent)");
  }
  return Status::OK();
}

Status EpollLoop::Remove(int fd) {
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) != 0) {
    return Errno("epoll_ctl(DEL)");
  }
  return Status::OK();
}

int EpollLoop::Wait(std::vector<Event>* out, int timeout_ms) {
  epoll_event events[128];
  const int n = epoll_wait(epoll_fd_, events, 128, timeout_ms);
  if (n < 0) return errno == EINTR ? 0 : n;
  for (int i = 0; i < n; ++i) {
    if (events[i].data.u64 == kWakeData) {
      std::uint64_t drained = 0;
      // Drain so a level-triggered eventfd does not spin; the wakeup is
      // sticky enough — every poller sees the kWakeData event this round.
      ssize_t ignored = read(wake_fd_, &drained, sizeof(drained));
      (void)ignored;
    }
    out->push_back(Event{events[i].events, events[i].data.u64});
  }
  return n;
}

void EpollLoop::Wakeup() {
  const std::uint64_t one = 1;
  ssize_t ignored = write(wake_fd_, &one, sizeof(one));
  (void)ignored;
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace hdd
