#ifndef HDD_NET_PROTOCOL_H_
#define HDD_NET_PROTOCOL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "engine/txn_program.h"
#include "graph/dhg.h"
#include "storage/version.h"

namespace hdd {

/// Message types carried inside a net frame (first payload byte). A
/// connection is a pipelined request/response stream: every kSubmit or
/// kPing is answered by exactly one response frame carrying the same
/// request_id; responses may interleave across requests of one connection
/// (workers finish out of order), so the id — not arrival order — pairs
/// them up.
enum class NetMsgType : std::uint8_t {
  // Client -> server.
  kSubmit = 1,  // one transaction program
  kPing = 2,    // liveness / fence: answered kPong after prior admissions
  // Server -> client.
  kResult = 3,    // terminal transaction outcome (committed or failed)
  kOverload = 4,  // shed by admission control; carries a retry-after hint
  kError = 5,     // malformed or unserviceable request
  kPong = 6,
};

/// One declared operation of a wire transaction program, executed in
/// order between Begin and Commit.
struct WireOp {
  enum class Kind : std::uint8_t { kRead = 0, kWrite = 1 };
  Kind kind = Kind::kRead;
  GranuleRef granule;
  Value value = 0;  // kWrite only
};

/// A transaction program in wire form: the declared TxnOptions plus a
/// straight-line op list. Straight-line programs are exactly what the
/// epoch executor needs (declared access sets are derivable), and what a
/// remote client can express without shipping code.
struct SubmitRequest {
  std::uint64_t request_id = 0;
  /// Root class for updates; ignored when read_only (the server runs
  /// read-only programs as kReadOnlyClass ad-hoc transactions).
  ClassId txn_class = 0;
  bool read_only = false;
  /// Optional Protocol C -> hosted-Protocol A declaration (see
  /// TxnOptions::read_scope); read-only programs only.
  std::vector<SegmentId> read_scope;
  std::vector<WireOp> ops;
};

/// A decoded client -> server message.
struct RequestMsg {
  NetMsgType type = NetMsgType::kSubmit;
  std::uint64_t request_id = 0;  // kPing (kSubmit carries its own)
  SubmitRequest submit;          // kSubmit only
};

/// A server -> client message.
struct ResponseMsg {
  NetMsgType type = NetMsgType::kResult;
  std::uint64_t request_id = 0;
  // kResult:
  bool committed = false;
  std::uint32_t aborted_attempts = 0;
  std::vector<Value> values;  // read results, in op order
  // kOverload:
  std::uint32_t retry_after_ms = 0;
  // kError:
  std::string error;
};

/// Payload encoders/decoders (framing is the caller's: net/frame.h).
/// Decoders reject trailing bytes and out-of-range enums loudly — a
/// malformed payload inside a CRC-valid frame is a client bug, answered
/// with kError, never a crash.
std::string EncodeRequest(const RequestMsg& msg);
Result<RequestMsg> DecodeRequest(std::string_view payload);
std::string EncodeResponse(const ResponseMsg& msg);
Result<ResponseMsg> DecodeResponse(std::string_view payload);

/// Compiles a decoded submit into an executable program. Read results are
/// appended to `*values` in op order; the body clears the vector at every
/// attempt start, so retries do not duplicate. The declared own-segment
/// access sets (granules whose segment == txn_class) are filled so the
/// program is admissible under the epoch executor.
TxnProgram ToTxnProgram(const SubmitRequest& request,
                        std::shared_ptr<std::vector<Value>> values);

}  // namespace hdd

#endif  // HDD_NET_PROTOCOL_H_
