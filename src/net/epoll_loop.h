#ifndef HDD_NET_EPOLL_LOOP_H_
#define HDD_NET_EPOLL_LOOP_H_

#include <sys/epoll.h>

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace hdd {

/// Thin RAII wrapper over an epoll instance plus an eventfd wakeup.
///
/// Connections are registered EPOLLONESHOT: after the kernel delivers an
/// event for a fd, that fd is disarmed until Rearm() — so exactly one IO
/// thread services a connection at a time without a lock around the event
/// loop, and "pause reads" (backpressure) is simply *not* re-arming
/// EPOLLIN. The listener and the eventfd are registered persistent
/// (level-triggered, no ONESHOT) because they are single-reader by
/// construction.
class EpollLoop {
 public:
  EpollLoop();
  ~EpollLoop();
  EpollLoop(const EpollLoop&) = delete;
  EpollLoop& operator=(const EpollLoop&) = delete;

  bool ok() const { return epoll_fd_ >= 0 && wake_fd_ >= 0; }

  /// Registers `fd` with EPOLLONESHOT | events. `data` comes back in
  /// Event::data (typically a connection id).
  Status AddOneshot(int fd, std::uint32_t events, std::uint64_t data);
  /// Re-arms a oneshot fd with a fresh event mask (EPOLL_CTL_MOD).
  Status Rearm(int fd, std::uint32_t events, std::uint64_t data);
  /// Registers `fd` level-triggered without ONESHOT (listener, eventfd).
  Status AddPersistent(int fd, std::uint32_t events, std::uint64_t data);
  /// Changes a persistent registration's mask (EPOLL_CTL_MOD, no ONESHOT).
  Status Modify(int fd, std::uint32_t events, std::uint64_t data);
  Status Remove(int fd);

  struct Event {
    std::uint32_t events = 0;
    std::uint64_t data = 0;
  };

  /// Blocks up to timeout_ms (-1 = forever) and appends ready events to
  /// `*out`. Wakeup events (the eventfd) are consumed internally and
  /// reported with data == kWakeData so pollers can notice shutdown.
  int Wait(std::vector<Event>* out, int timeout_ms);

  /// Makes any number of concurrent/future Wait() calls return promptly.
  void Wakeup();

  static constexpr std::uint64_t kWakeData = ~std::uint64_t{0};

 private:
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
};

/// Makes `fd` non-blocking (O_NONBLOCK). Returns false on fcntl failure.
bool SetNonBlocking(int fd);

}  // namespace hdd

#endif  // HDD_NET_EPOLL_LOOP_H_
