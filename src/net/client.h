#ifndef HDD_NET_CLIENT_H_
#define HDD_NET_CLIENT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "engine/executor.h"
#include "net/frame.h"
#include "net/protocol.h"

namespace hdd {

/// Blocking single-connection client, the simplest correct speaker of the
/// wire protocol — tests and tools. Send() and Recv() are independent, so
/// a caller can pipeline: N Sends, then N Recvs (responses arrive in
/// completion order; match by request_id).
class SyncClient {
 public:
  SyncClient() = default;
  ~SyncClient() { Close(); }
  SyncClient(const SyncClient&) = delete;
  SyncClient& operator=(const SyncClient&) = delete;

  Status Connect(const std::string& host, std::uint16_t port);
  Status Send(const RequestMsg& msg);
  /// Blocks for the next response frame. IoError on EOF/socket error,
  /// Corruption on framing violation.
  Result<ResponseMsg> Recv();
  /// Send + Recv for the unpipelined case.
  Result<ResponseMsg> Call(const RequestMsg& msg);
  void Close();
  bool connected() const { return fd_ >= 0; }
  /// The raw socket, for tests that need to write hostile bytes.
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

/// Backoff/retry policy for RetryingClient.
struct RetryPolicy {
  /// Total send attempts per Call (first try included).
  int max_attempts = 8;
  /// Exponential backoff base: attempt n waits ~base << n ms, capped.
  std::uint32_t base_backoff_ms = 1;
  std::uint32_t max_backoff_ms = 200;
  /// Seed for the backoff jitter (factor in [0.5, 1.5) — herds of
  /// clients shed together must not retry together).
  std::uint64_t seed = 1;
  /// Reopen the connection and resend after a socket/framing failure.
  bool reconnect = true;
};

struct RetryStats {
  std::uint64_t attempts = 0;          // wire round trips tried
  std::uint64_t overload_retries = 0;  // kOverload responses retried
  std::uint64_t reconnects = 0;        // successful re-Connects
};

/// SyncClient wrapped in the client-side half of admission control: a
/// kOverload response is retried after max(server retry-after hint,
/// exponential backoff) with jitter, and a dead connection (peer close,
/// socket error, corrupt frame) is transparently reopened and the request
/// resent. Retrying resubmits the program, so a request that is not
/// idempotent may execute more than once when its response was lost —
/// at-most-once is the caller's to layer on top.
class RetryingClient {
 public:
  explicit RetryingClient(RetryPolicy policy = {});

  Status Connect(const std::string& host, std::uint16_t port);
  /// One request to a terminal answer: retries overloads and transport
  /// failures within the attempt budget. Returns the last kOverload
  /// response when the budget ends on overload, the last transport error
  /// when it ends on one.
  Result<ResponseMsg> Call(const RequestMsg& msg);
  void Close() { client_.Close(); }
  bool connected() const { return client_.connected(); }
  const RetryStats& stats() const { return stats_; }
  /// The wrapped client, for tests that need the raw socket.
  SyncClient& sync() { return client_; }

 private:
  /// Jittered sleep of ~delay_ms scaled by [0.5, 1.5).
  void Backoff(std::uint32_t delay_ms);
  std::uint32_t DelayMs(int attempt, std::uint32_t server_hint_ms) const;

  RetryPolicy policy_;
  RetryStats stats_;
  SyncClient client_;
  std::string host_;
  std::uint16_t port_ = 0;
  Rng rng_;
};

/// Aggregated outcome of a load run; mergeable across driver processes
/// (the 10k-connection bench forks the driver so client fds live in a
/// child process, see bench/bench_server.cc).
struct DriverClassStats {
  std::uint64_t sent = 0;
  std::uint64_t committed = 0;
  std::uint64_t failed = 0;
  std::uint64_t overload = 0;
};

struct DriverStats {
  std::uint64_t connected = 0;
  std::uint64_t connect_failures = 0;
  std::uint64_t sent = 0;
  std::uint64_t responses = 0;
  std::uint64_t committed = 0;
  std::uint64_t failed = 0;
  std::uint64_t overload = 0;
  std::uint64_t errors = 0;  // kError responses + socket/framing failures
  double seconds = 0.0;
  LatencyDigest latency;  // request write -> response decode
  std::map<int, DriverClassStats> per_class;  // key: ClassId (-1 = RO)
};

/// Serialization over the bench's fork pipe: plain "key value" lines.
std::string SerializeDriverStats(const DriverStats& stats);
bool ParseDriverStats(const std::string& text, DriverStats* stats);

struct DriverOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Simulated client connections, multiplexed on one epoll thread.
  std::size_t connections = 100;
  /// Requests kept in flight per connection (pipelining depth).
  std::size_t pipeline = 4;
  /// Requests per connection; 0 = run until `duration_seconds` elapses.
  std::uint64_t requests_per_connection = 0;
  double duration_seconds = 1.0;
  /// Hard cap on the whole run (connect + run + drain), a hang backstop.
  double deadline_seconds = 120.0;
  std::uint64_t seed = 1;
  /// Produces the `seq`-th request of connection `conn`. The driver
  /// overwrites request_id with `seq` (ids are per-connection).
  std::function<RequestMsg(std::size_t conn, std::uint64_t seq, Rng& rng)>
      make_request;
};

/// Epoll-driven open-loop load driver: `connections` sockets, each keeping
/// `pipeline` requests in flight, single thread. Counts every response by
/// type and class and samples end-to-end latency.
DriverStats RunLoadDriver(const DriverOptions& options);

}  // namespace hdd

#endif  // HDD_NET_CLIENT_H_
