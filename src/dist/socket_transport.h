#ifndef HDD_DIST_SOCKET_TRANSPORT_H_
#define HDD_DIST_SOCKET_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dist/transport.h"

namespace hdd {

/// Address of one shard node. Loopback deployments leave host empty
/// (= 127.0.0.1).
struct SocketPeer {
  std::string host;
  std::uint16_t port = 0;
};

/// Transport over real TCP sockets, one process per shard node, framed
/// exactly like the net/ front end (length + crc32 + payload):
///
///   request  frame payload: [rpc_id u64 LE][from u32 LE][request bytes]
///   response frame payload: [rpc_id u64 LE][response envelope]
///
/// The server side runs one acceptor thread plus one thread per inbound
/// connection (peers keep one long-lived connection each, so this is
/// num_nodes-1 threads, not a thread-per-request model). The client side
/// lazily connects one socket per peer and serializes calls on it — the
/// session's RPCs are synchronous, so per-peer pipelining buys nothing.
/// Every socket this object opens is counted; open_fds() must be zero
/// after Stop() (the smoke test's fd-leak assert).
class SocketTransport : public Transport {
 public:
  /// `peers[i]` is node i's address; this node listens on
  /// `peers[node_id].port`.
  SocketTransport(int node_id, std::vector<SocketPeer> peers);
  ~SocketTransport() override;

  /// Binds, listens and starts the acceptor. Call once before any Call.
  Status Start(DistHandler handler);

  /// Closes the listener, every server connection and every client
  /// connection, and joins all threads. Idempotent.
  void Stop();

  Result<std::string> Call(int from, int to, const std::string& request,
                           bool interruptible) override;

  /// Sockets currently open (listener + inbound + outbound).
  int open_fds() const { return open_fds_.load(std::memory_order_relaxed); }

  /// Port actually bound (when constructed with port 0 the OS picks one).
  std::uint16_t bound_port() const { return bound_port_; }

 private:
  struct PeerConn {
    std::mutex mu;
    int fd = -1;
    std::uint64_t next_rpc = 1;
  };

  void AcceptLoop(int listen_fd);
  void ServeConnection(int fd);
  /// Opens (or reuses) the outbound connection to `to`; caller holds the
  /// peer mutex.
  Status EnsureConnected(PeerConn& peer, int to);
  void CloseFd(int& fd);

  int node_id_;
  std::vector<SocketPeer> peers_;
  DistHandler handler_;

  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::thread acceptor_;
  std::mutex server_mu_;  // guards server_threads_ and server_fds_
  std::vector<std::thread> server_threads_;
  std::vector<int> server_fds_;
  std::vector<std::unique_ptr<PeerConn>> clients_;
  std::atomic<bool> stopped_{false};
  std::atomic<int> open_fds_{0};
};

}  // namespace hdd

#endif  // HDD_DIST_SOCKET_TRANSPORT_H_
