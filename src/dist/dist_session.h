#ifndef HDD_DIST_DIST_SESSION_H_
#define HDD_DIST_DIST_SESSION_H_

#include <cstdint>
#include <map>
#include <vector>

#include "dist/activity_slice.h"
#include "dist/shard_map.h"
#include "dist/transport.h"
#include "hdd/hdd_controller.h"

namespace hdd {

class SimScheduler;

struct DistOptions {
  /// TEST-ONLY mutation switch, the canary of the distributed simulation
  /// harness: when set, cross-node reads are served at the reader's raw
  /// initiation time instead of the slice-evaluated activity-link bound
  /// A_i^j(I(t)) — the "unbounded snapshot" a broken implementation would
  /// ship. An older remote transaction of the target class still active
  /// at I(t) may commit a version below the served bound afterwards, so
  /// the merged-history oracle must catch this with a replayable seed.
  bool mutation_stale_bound_snapshot = false;
};

/// One client-visible operation of a distributed transaction program.
struct DistOp {
  bool is_write = false;
  GranuleRef granule;
  Value value = 0;  // writes only
};

struct DistProgram {
  TxnOptions options;
  std::vector<DistOp> ops;
};

struct DistTxnResult {
  bool committed = false;
  bool failed = false;
  bool crashed = false;
  std::uint64_t aborted_attempts = 0;
  /// Values read by the committed attempt, in op order (reads only).
  std::vector<Value> values;
};

/// Drives transactions on one shard node of a distributed HDD deployment.
///
/// Placement rules (class ids are identical to segment ids — Restructure
/// is not supported in sharded mode):
///  * an update transaction of class c runs at home(c); its own-segment
///    accesses go through the local controller (Protocol B), and the home
///    node's stand-in chain for c's segment is write-authoritative since
///    every writer of that segment runs here;
///  * a cross-segment Protocol A read is served locally when every class
///    on the critical path is homed here AND the segment is owned here;
///    otherwise the session fetches the path classes' activity slices
///    (once per transaction per remote home — classes are batched into
///    one message per node), evaluates A_i^j(I(t)) LOCALLY against the
///    shipped slices, and picks the read version out of the owner's
///    shipped committed chain. No registration message exists: the owner
///    never learns the read happened.
///  * a read-only transaction must declare a read_scope (time walls are
///    node-local and therefore unsound across shards); it is hosted below
///    the scope's lowest class per §5.0, with the base I^old_h(m) and all
///    bounds evaluated from slices when any piece is remote;
///  * an update transaction whose own segment is owned by ANOTHER node
///    (ShardMap::SetSegmentOwner override) two-phases its commit: shipped
///    writes are prepared at the owner through the owner's WAL, the
///    coordinator makes the commit durable locally, participants commit,
///    and only then does the transaction deregister — so no activity-link
///    bound anywhere can pass I(t) before every copy is committed.
class DistSession {
 public:
  DistSession(int node_id, const ShardMap* map, Transport* transport,
              HddController* cc, DistOptions options = {});

  /// Runs one program to completion with the executor's attempt loop
  /// (fault boundary under simulation; `sim` may be null).
  DistTxnResult Run(const DistProgram& program, int max_retries,
                    SimScheduler* sim);

  HddController& controller() { return *cc_; }
  int node_id() const { return node_id_; }

 private:
  struct AttemptState {
    SliceSource slices;
    bool base_ready = false;
    ClassId host = kReadOnlyClass;  // hosted read-only txns (slice path)
    Timestamp base = kTimestampMin;
    /// Writes destined for remotely-owned segments, accumulated by the op
    /// loop and two-phased at commit.
    std::map<SegmentId, std::vector<std::pair<std::uint32_t, Value>>>
        remote_writes;
    /// Segments successfully prepared at their owners (abort targets).
    std::vector<SegmentId> prepared;
    std::vector<Value> values;
  };

  Result<Value> ReadOp(const TxnDescriptor& txn, GranuleRef granule,
                       bool local_plain, const std::vector<SegmentId>& scope,
                       AttemptState& state);
  /// Slice-path read: evaluate `bound` locally, fetch the owner's
  /// committed chain, serve the latest version below the bound.
  Result<Value> BoundedRead(const TxnDescriptor& txn, GranuleRef granule,
                            Timestamp bound, AttemptState& state);
  /// Fetches activity slices for every class in `classes` not yet cached
  /// (local classes directly, remote ones batched into one message per
  /// home node). Slices are always fetched BEFORE the chains they bound:
  /// a slice can only be "stale" in the safe direction (lower bound).
  Status EnsureSlices(AttemptState& state, const std::vector<ClassId>& classes,
                      Timestamp frontier);
  Status PrepareRemotes(const TxnDescriptor& txn, AttemptState& state);
  void AbortRemotes(const TxnDescriptor& txn, AttemptState& state);
  void CommitRemotes(const TxnDescriptor& txn, AttemptState& state);

  int node_id_;
  const ShardMap* map_;
  Transport* transport_;
  HddController* cc_;
  DistOptions options_;
};

}  // namespace hdd

#endif  // HDD_DIST_DIST_SESSION_H_
