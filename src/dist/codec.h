#ifndef HDD_DIST_CODEC_H_
#define HDD_DIST_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace hdd {
namespace distcodec {

/// Little-endian integer codec shared by the dist message and activity
/// slice encoders. Same byte conventions as the WAL's record codec, kept
/// separate so src/dist does not reach into src/wal internals.

inline void PutU8(std::string* out, std::uint8_t v) {
  out->push_back(static_cast<char>(v));
}

inline void PutU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

inline void PutU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

inline bool GetU8(std::string_view* data, std::uint8_t* v) {
  if (data->size() < 1) return false;
  *v = static_cast<std::uint8_t>((*data)[0]);
  data->remove_prefix(1);
  return true;
}

inline bool GetU32(std::string_view* data, std::uint32_t* v) {
  if (data->size() < 4) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<std::uint32_t>(static_cast<unsigned char>((*data)[i]))
          << (8 * i);
  }
  data->remove_prefix(4);
  return true;
}

inline bool GetU64(std::string_view* data, std::uint64_t* v) {
  if (data->size() < 8) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<std::uint64_t>(static_cast<unsigned char>((*data)[i]))
          << (8 * i);
  }
  data->remove_prefix(8);
  return true;
}

}  // namespace distcodec
}  // namespace hdd

#endif  // HDD_DIST_CODEC_H_
