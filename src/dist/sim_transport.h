#ifndef HDD_DIST_SIM_TRANSPORT_H_
#define HDD_DIST_SIM_TRANSPORT_H_

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "dist/transport.h"

namespace hdd {

struct SimTransportOptions {
  /// Seed for the message-fault draws (derive from the run's seed so
  /// failing sweeps replay byte-for-byte).
  std::uint64_t seed = 1;

  /// Message faults, decided per delivery attempt by the inbox's seeded
  /// RNG. A "delayed" message is re-queued at the back (bounded times —
  /// this is also the loss model: true loss would wedge the synchronous
  /// caller, so a dropped message is a delayed retransmit, which is what
  /// a retrying sender produces anyway). "Reordered" delivers a random
  /// queued message instead of the head. "Duplicated" re-queues a copy
  /// AND delivers — handlers are idempotent and the caller takes the
  /// first response per RPC.
  double delay_prob = 0.0;
  double reorder_prob = 0.0;
  double duplicate_prob = 0.0;
  int max_delays_per_message = 3;
};

/// In-process message hub for N logical nodes: per-node inboxes drained
/// by pump loops the harness runs as sim tasks (deterministic simulation)
/// or plain threads (bench). All waits go through SimWait/SimNotifyAll,
/// so under the sim scheduler every delivery decision — who pumps next,
/// which message, whether a fault fires — is part of the replayable
/// schedule. Requests are byte-encoded even in process: the same codec
/// the socket transport ships is exercised by every simulated run.
class SimTransport : public Transport {
 public:
  SimTransport(int num_nodes, SimTransportOptions options);
  ~SimTransport() override;

  void RegisterHandler(int node, DistHandler handler);

  Result<std::string> Call(int from, int to, const std::string& request,
                           bool interruptible) override;

  /// Body of one pump task for `node`'s inbox; returns when Stop() was
  /// called and the inbox is drained. Run it on a registered sim task
  /// (the harness) or a plain thread (bench).
  void PumpLoop(int node);

  /// Stops every pump loop once their inboxes drain. Under simulation,
  /// call from a REGISTERED sim task (the last finishing worker): the
  /// wakeups must be delivered by the scheduler.
  void Stop();

  int num_nodes() const { return static_cast<int>(inboxes_.size()); }

 private:
  struct PendingRpc {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status;  // non-OK: handler failed
    std::string response;
  };

  struct Message {
    int from = 0;
    std::string request;
    int delays = 0;
    std::shared_ptr<PendingRpc> rpc;
  };

  struct Inbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> queue;
    Rng rng{1};
  };

  SimTransportOptions options_;
  std::vector<std::unique_ptr<Inbox>> inboxes_;
  std::vector<DistHandler> handlers_;
  std::atomic<bool> stop_{false};
};

}  // namespace hdd

#endif  // HDD_DIST_SIM_TRANSPORT_H_
