#include "dist/socket_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "dist/codec.h"
#include "net/frame.h"

namespace hdd {

namespace {

Status SendAll(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

/// Reads until the decoder yields one frame. IoError on EOF/corruption.
Status ReadFrame(int fd, FrameDecoder& decoder, std::string* payload) {
  for (;;) {
    switch (decoder.Poll(payload)) {
      case FrameDecoder::Next::kFrame:
        return Status::OK();
      case FrameDecoder::Next::kCorrupt:
        return Status::IoError("corrupt frame");
      case FrameDecoder::Next::kNeedMore:
        break;
    }
    char buf[4096];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) return Status::IoError("peer closed");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("recv: ") + std::strerror(errno));
    }
    decoder.Feed(std::string_view(buf, static_cast<std::size_t>(n)));
  }
}

}  // namespace

SocketTransport::SocketTransport(int node_id, std::vector<SocketPeer> peers)
    : node_id_(node_id), peers_(std::move(peers)) {
  clients_.reserve(peers_.size());
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    clients_.push_back(std::make_unique<PeerConn>());
  }
}

SocketTransport::~SocketTransport() { Stop(); }

void SocketTransport::CloseFd(int& fd) {
  if (fd < 0) return;
  ::close(fd);
  fd = -1;
  open_fds_.fetch_sub(1, std::memory_order_relaxed);
}

Status SocketTransport::Start(DistHandler handler) {
  handler_ = std::move(handler);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  open_fds_.fetch_add(1, std::memory_order_relaxed);
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(peers_[static_cast<std::size_t>(node_id_)].port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status =
        Status::IoError(std::string("bind: ") + std::strerror(errno));
    CloseFd(listen_fd_);
    return status;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  bound_port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 16) < 0) {
    const Status status =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    CloseFd(listen_fd_);
    return status;
  }
  const int listen_fd = listen_fd_;
  acceptor_ = std::thread([this, listen_fd] { AcceptLoop(listen_fd); });
  return Status::OK();
}

void SocketTransport::AcceptLoop(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by Stop()
    }
    open_fds_.fetch_add(1, std::memory_order_relaxed);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> guard(server_mu_);
    if (stopped_.load()) {
      int closing = fd;
      CloseFd(closing);
      return;
    }
    server_fds_.push_back(fd);
    server_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void SocketTransport::ServeConnection(int fd) {
  FrameDecoder decoder;
  std::string payload;
  while (ReadFrame(fd, decoder, &payload).ok()) {
    std::string_view in(payload);
    std::uint64_t rpc_id = 0;
    std::uint32_t from = 0;
    if (!distcodec::GetU64(&in, &rpc_id) || !distcodec::GetU32(&in, &from)) {
      break;  // protocol violation: drop the connection
    }
    Result<std::string> result =
        handler_ ? handler_(static_cast<int>(from), std::string(in))
                 : Result<std::string>(
                       Status::Internal("dist: no handler registered"));
    std::string reply;
    distcodec::PutU64(&reply, rpc_id);
    reply += EncodeDistResponse(result);
    std::string framed;
    AppendNetFrame(&framed, reply);
    if (!SendAll(fd, framed).ok()) break;
  }
  // The fd is closed by Stop() (which owns server_fds_); shutting down
  // here would race the final response of a concurrent sender.
}

Status SocketTransport::EnsureConnected(PeerConn& peer, int to) {
  if (peer.fd >= 0) return Status::OK();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  open_fds_.fetch_add(1, std::memory_order_relaxed);
  const SocketPeer& target = peers_[static_cast<std::size_t>(to)];
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(target.port);
  const char* host = target.host.empty() ? "127.0.0.1" : target.host.c_str();
  if (::inet_pton(AF_INET, host, &addr.sin_addr) != 1) {
    int closing = fd;
    CloseFd(closing);
    return Status::InvalidArgument("bad peer address: " + target.host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status =
        Status::IoError(std::string("connect: ") + std::strerror(errno));
    int closing = fd;
    CloseFd(closing);
    return status;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  peer.fd = fd;
  return Status::OK();
}

Result<std::string> SocketTransport::Call(int from, int to,
                                          const std::string& request,
                                          bool interruptible) {
  (void)interruptible;  // no fault injection on the real-socket path
  counters_.Bump(PeekDistMsgType(request));
  PeerConn& peer = *clients_[static_cast<std::size_t>(to)];
  std::lock_guard<std::mutex> guard(peer.mu);
  // One transparent reconnect: the first attempt may find a connection
  // the peer closed (restart, idle timeout) — retry once on a fresh one.
  for (int attempt = 0; attempt < 2; ++attempt) {
    HDD_RETURN_IF_ERROR(EnsureConnected(peer, to));
    const std::uint64_t rpc_id = peer.next_rpc++;
    std::string payload;
    distcodec::PutU64(&payload, rpc_id);
    distcodec::PutU32(&payload, static_cast<std::uint32_t>(from));
    payload += request;
    std::string framed;
    AppendNetFrame(&framed, payload);
    Status io = SendAll(peer.fd, framed);
    std::string reply;
    if (io.ok()) {
      FrameDecoder decoder;
      io = ReadFrame(peer.fd, decoder, &reply);
    }
    if (!io.ok()) {
      CloseFd(peer.fd);
      if (attempt == 0 && !stopped_.load()) continue;
      return io;
    }
    std::string_view in(reply);
    std::uint64_t got_id = 0;
    if (!distcodec::GetU64(&in, &got_id) || got_id != rpc_id) {
      CloseFd(peer.fd);
      return Status::IoError("dist: response for a different rpc");
    }
    return DecodeDistResponse(in);
  }
  return Status::IoError("dist: unreachable peer");
}

void SocketTransport::Stop() {
  if (stopped_.exchange(true)) return;
  // Closing the listener unblocks accept(); shutdown unblocks recv() in
  // the per-connection servers.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  CloseFd(listen_fd_);
  std::vector<std::thread> servers;
  {
    std::lock_guard<std::mutex> guard(server_mu_);
    for (int& fd : server_fds_) {
      ::shutdown(fd, SHUT_RDWR);
    }
    servers.swap(server_threads_);
  }
  for (std::thread& t : servers) t.join();
  {
    std::lock_guard<std::mutex> guard(server_mu_);
    for (int& fd : server_fds_) CloseFd(fd);
    server_fds_.clear();
  }
  for (auto& peer : clients_) {
    std::lock_guard<std::mutex> guard(peer->mu);
    CloseFd(peer->fd);
  }
}

}  // namespace hdd
