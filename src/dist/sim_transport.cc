#include "dist/sim_transport.h"

#include <cassert>
#include <utility>

#include "common/sim_hook.h"

namespace hdd {

SimTransport::SimTransport(int num_nodes, SimTransportOptions options)
    : options_(options), handlers_(static_cast<std::size_t>(num_nodes)) {
  assert(num_nodes > 0);
  inboxes_.reserve(static_cast<std::size_t>(num_nodes));
  for (int n = 0; n < num_nodes; ++n) {
    auto inbox = std::make_unique<Inbox>();
    inbox->rng.Seed(options_.seed ^ (0x9E3779B97F4A7C15ULL * (n + 1)));
    inboxes_.push_back(std::move(inbox));
  }
}

SimTransport::~SimTransport() = default;

void SimTransport::RegisterHandler(int node, DistHandler handler) {
  handlers_[static_cast<std::size_t>(node)] = std::move(handler);
}

Result<std::string> SimTransport::Call(int from, int to,
                                       const std::string& request,
                                       bool interruptible) {
  assert(to >= 0 && to < num_nodes());
  assert(!request.empty());
  // The send is the fault point: an injected abort fires before anything
  // was enqueued, so the attempt unwinds with no message in flight.
  SimYield("dist/transport/call", interruptible);
  counters_.Bump(PeekDistMsgType(request));

  auto rpc = std::make_shared<PendingRpc>();
  Inbox& inbox = *inboxes_[static_cast<std::size_t>(to)];
  {
    std::unique_lock<std::mutex> lock(inbox.mu);
    inbox.queue.push_back(Message{from, request, 0, rpc});
  }
  SimNotifyAll(inbox.cv, &inbox);

  std::unique_lock<std::mutex> lock(rpc->mu);
  while (!rpc->done) SimWait(rpc->cv, lock, rpc.get());
  if (!rpc->status.ok()) return rpc->status;
  return rpc->response;
}

void SimTransport::PumpLoop(int node) {
  Inbox& inbox = *inboxes_[static_cast<std::size_t>(node)];
  const DistHandler& handler = handlers_[static_cast<std::size_t>(node)];
  for (;;) {
    Message msg;
    {
      std::unique_lock<std::mutex> lock(inbox.mu);
      while (inbox.queue.empty()) {
        if (stop_.load(std::memory_order_acquire)) return;
        SimWait(inbox.cv, lock, &inbox);
      }
      // Reorder fault: deliver a random queued message instead of the
      // head. Harmless for correctness — the protocol orders nothing by
      // arrival — but it perturbs which handler's effects land first.
      std::size_t pick = 0;
      if (inbox.queue.size() > 1 && inbox.rng.NextBool(options_.reorder_prob)) {
        pick = inbox.rng.NextBounded(inbox.queue.size());
      }
      msg = inbox.queue[pick];
      inbox.queue.erase(inbox.queue.begin() + static_cast<std::ptrdiff_t>(pick));

      // Delay fault (the loss model: a lost message is a delayed
      // retransmit — true loss would wedge the synchronous caller).
      if (msg.delays < options_.max_delays_per_message &&
          inbox.rng.NextBool(options_.delay_prob)) {
        Message delayed = msg;
        ++delayed.delays;
        inbox.queue.push_back(std::move(delayed));
        continue;
      }
      // Duplicate fault: re-queue a copy and ALSO deliver this one.
      // Handlers are idempotent; the caller takes the first response.
      if (msg.delays < options_.max_delays_per_message &&
          inbox.rng.NextBool(options_.duplicate_prob)) {
        Message dup = msg;
        ++dup.delays;
        inbox.queue.push_back(std::move(dup));
      }
    }

    // Handler runs outside the inbox lock; pump tasks never arm faults
    // (no OnTxnAttemptStart), so SimFault cannot unwind a half-applied
    // handler. SimHalt still can — it propagates out to the task wrapper.
    Result<std::string> result =
        handler ? handler(msg.from, msg.request)
                : Result<std::string>(
                      Status::Internal("dist: no handler registered"));
    {
      std::unique_lock<std::mutex> lock(msg.rpc->mu);
      if (!msg.rpc->done) {  // first response wins (duplicates discarded)
        msg.rpc->done = true;
        if (result.ok()) {
          msg.rpc->response = std::move(*result);
        } else {
          msg.rpc->status = result.status();
        }
      }
    }
    SimNotifyAll(msg.rpc->cv, msg.rpc.get());
  }
}

void SimTransport::Stop() {
  stop_.store(true, std::memory_order_release);
  for (auto& inbox : inboxes_) {
    std::unique_lock<std::mutex> lock(inbox->mu);
    lock.unlock();
    SimNotifyAll(inbox->cv, inbox.get());
  }
}

}  // namespace hdd
