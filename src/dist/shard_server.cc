#include "dist/shard_server.h"

#include <utility>

namespace hdd {

namespace {

SyntheticWorkloadParams MakeParams(const ShardServerOptions& options) {
  SyntheticWorkloadParams params;
  params.depth = options.depth;
  params.granules_per_segment = options.granules_per_segment;
  return params;
}

}  // namespace

ShardServer::ShardServer(ShardServerOptions options)
    : options_(std::move(options)),
      workload_(MakeParams(options_)),
      map_(ShardMap::Contiguous(options_.depth,
                                static_cast<int>(options_.peers.size()))) {
  Result<HierarchySchema> schema = HierarchySchema::Create(workload_.Spec());
  if (!schema.ok()) {
    init_error_ = schema.status().ToString();
    return;
  }
  schema_.emplace(std::move(*schema));
  for (const auto& [segment, node] : options_.owner_overrides) {
    map_.SetSegmentOwner(segment, node);
  }
  transport_ = std::make_unique<SocketTransport>(options_.node_id,
                                                 options_.peers);
  if (options_.node_id == 0) {
    clock_ = std::make_unique<LogicalClock>();
  } else {
    clock_ = std::make_unique<RemoteClock>(transport_.get(),
                                           options_.node_id);
  }
  db_ = workload_.MakeDatabase();
  if (options_.with_wal) {
    storage_ = std::make_unique<SimWalStorage>();
    Result<std::unique_ptr<WalManager>> wal = WalManager::Open(
        storage_.get(), db_->num_segments(), options_.wal);
    if (!wal.ok()) {
      init_error_ = wal.status().ToString();
      return;
    }
    wal_ = std::move(*wal);
    db_->AttachWal(wal_.get());
  }
  HddControllerOptions copts;
  // Disjoint id ranges per node, as in DistWorld: 2PC prepares carry the
  // coordinator in the id's top half, and merged histories need global
  // uniqueness.
  copts.first_txn_id =
      static_cast<TxnId>(options_.node_id) * (1ull << 32) + 1;
  // Idle-point trimming is node-local reasoning — unsound here (a remote
  // reader's bound may stab below this node's clock while it idles).
  copts.auto_trim_history = false;
  copts.name = "hdd-shard-" + std::to_string(options_.node_id);
  cc_ = std::make_unique<HddController>(db_.get(), clock_.get(), &*schema_,
                                        copts);
  node_ = std::make_unique<DistNode>(options_.node_id, cc_.get(),
                                     options_.node_id == 0 ? clock_.get()
                                                           : nullptr);
  session_ = std::make_unique<DistSession>(options_.node_id, &map_,
                                           transport_.get(), cc_.get(),
                                           options_.session);

  ServerOptions sopts;
  sopts.port = options_.front_port;
  sopts.num_io_threads = options_.front_io_threads;
  sopts.num_workers = options_.front_workers;
  sopts.num_classes = options_.depth;
  sopts.max_retries = options_.max_retries;
  sopts.admission.total_inflight_cap = options_.inflight_cap;
  sopts.shard_execute =
      [this](const SubmitRequest& submit) -> ServerOptions::ShardOutcome {
    ServerOptions::ShardOutcome out;
    for (const WireOp& op : submit.ops) {
      // Validate against the shared schema BEFORE routing: a wild
      // segment id would index the shard map out of bounds.
      if (op.granule.segment < 0 || op.granule.segment >= options_.depth ||
          op.granule.index >= options_.granules_per_segment) {
        return out;
      }
    }
    if (!submit.read_only &&
        map_.home(submit.txn_class) != options_.node_id) {
      // Mis-routed update: the Protocol B path is single-sited at the
      // class's home. Fail loudly, never execute against a stand-in.
      return out;
    }
    DistProgram program;
    program.options.read_only = submit.read_only;
    program.options.txn_class =
        submit.read_only ? kReadOnlyClass : submit.txn_class;
    program.options.read_scope = submit.read_scope;
    program.ops.reserve(submit.ops.size());
    for (const WireOp& op : submit.ops) {
      program.ops.push_back(DistOp{op.kind == WireOp::Kind::kWrite,
                                   op.granule, op.value});
    }
    const DistTxnResult result =
        session_->Run(program, options_.max_retries, /*sim=*/nullptr);
    out.committed = result.committed;
    out.aborted_attempts =
        static_cast<std::uint32_t>(result.aborted_attempts);
    out.values = result.values;
    return out;
  };
  front_ = std::make_unique<HddServer>(cc_.get(), sopts, &metrics_);
}

ShardServer::~ShardServer() { (void)Stop(); }

Status ShardServer::Start() {
  if (!init_error_.empty()) return Status::Internal(init_error_);
  if (started_) return Status::FailedPrecondition("already started");
  DistNode* node = node_.get();
  Status status = transport_->Start(
      [node](int from, const std::string& request) {
        return node->Handle(from, request);
      });
  if (!status.ok()) return status;
  status = front_->Start();
  if (!status.ok()) {
    transport_->Stop();
    return status;
  }
  started_ = true;
  return Status::OK();
}

Status ShardServer::Stop() {
  if (!started_ || stopped_) return Status::OK();
  stopped_ = true;
  front_->Stop();
  transport_->Stop();
  if (auto* remote = dynamic_cast<RemoteClock*>(clock_.get())) {
    // A degraded clock means every timestamp since the failure is
    // suspect; surface it as the deployment's verdict.
    return remote->last_error();
  }
  return Status::OK();
}

std::uint16_t ShardServer::front_port() const { return front_->port(); }

}  // namespace hdd
