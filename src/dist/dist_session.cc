#include "dist/dist_session.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <optional>
#include <utility>

#include "common/sim_hook.h"
#include "dist/dist_message.h"
#include "sim/sim_scheduler.h"

namespace hdd {

DistSession::DistSession(int node_id, const ShardMap* map,
                         Transport* transport, HddController* cc,
                         DistOptions options)
    : node_id_(node_id),
      map_(map),
      transport_(transport),
      cc_(cc),
      options_(options) {}

Status DistSession::EnsureSlices(AttemptState& state,
                                 const std::vector<ClassId>& classes,
                                 Timestamp frontier) {
  std::map<int, std::vector<ClassId>> remote;  // home node -> classes
  for (const ClassId c : classes) {
    if (state.slices.Has(c)) continue;
    const int home = map_->home(c);
    if (home == node_id_) {
      HDD_ASSIGN_OR_RETURN(ActivitySlice slice,
                           cc_->ExportActivitySlice(c, frontier));
      state.slices.Install(slice);
    } else {
      remote[home].push_back(c);
    }
  }
  for (const auto& [home, cls] : remote) {
    ActivityReq req;
    req.frontier = frontier;
    req.classes = cls;
    HDD_ASSIGN_OR_RETURN(
        std::string body,
        transport_->Call(node_id_, home, EncodeActivityReq(req),
                         /*interruptible=*/true));
    HDD_ASSIGN_OR_RETURN(std::vector<ActivitySlice> slices,
                         DecodeSlices(body));
    for (const ActivitySlice& slice : slices) state.slices.Install(slice);
  }
  return Status::OK();
}

Result<Value> DistSession::BoundedRead(const TxnDescriptor& txn,
                                       GranuleRef granule, Timestamp bound,
                                       AttemptState& state) {
  (void)state;
  // Chains are fetched strictly AFTER the slices that produced `bound`.
  std::vector<Version> chain;
  if (map_->owner(granule.segment) == node_id_) {
    HDD_ASSIGN_OR_RETURN(chain,
                         cc_->ExportVersions(granule.segment, granule.index));
  } else {
    SnapshotReq req;
    req.segment = granule.segment;
    req.index = granule.index;
    HDD_ASSIGN_OR_RETURN(
        std::string body,
        transport_->Call(node_id_, map_->owner(granule.segment),
                         EncodeSnapshotReq(req), /*interruptible=*/true));
    HDD_ASSIGN_OR_RETURN(chain, DecodeVersions(body));
  }
  const Version* pick = nullptr;
  for (const Version& v : chain) {
    if (v.order_key < bound && (pick == nullptr || v.order_key > pick->order_key)) {
      pick = &v;
    }
  }
  if (pick == nullptr) {
    return Status::Internal("dist: no committed version below bound");
  }
  HDD_RETURN_IF_ERROR(
      cc_->RecordExternalRead(txn, granule, pick->order_key, bound));
  return pick->value;
}

Result<Value> DistSession::ReadOp(const TxnDescriptor& txn, GranuleRef granule,
                                  bool local_plain,
                                  const std::vector<SegmentId>& scope,
                                  AttemptState& state) {
  if (local_plain) return cc_->Read(txn, granule);
  const TstAnalysis& tst = cc_->class_tst();
  const ClassId target = cc_->ClassOfSegment(granule.segment);

  if (!txn.read_only) {
    const ClassId own = txn.txn_class;
    // Own-segment accesses are Protocol B against the home node's chain,
    // which is write-authoritative: every transaction of this class runs
    // here. (With an owner override the owner's copy trails until the 2PC
    // commit, but no local reader consults it.)
    if (target == own) return cc_->Read(txn, granule);
    std::optional<std::vector<NodeId>> path = tst.CriticalPath(own, target);
    if (!path.has_value()) {
      return Status::InvalidArgument(
          "dist: no critical path to the read segment");
    }
    // Local fast path: the bound only composes I^old of classes homed
    // here, and the chain is owned here — the plain controller read is
    // byte-identical to the slice evaluation. A remote-homed class on the
    // path makes the local activity table a stand-in (empty => I^old = m,
    // an unsound overestimate), so those reads MUST take the slice path.
    bool all_local = map_->owner(granule.segment) == node_id_;
    for (const NodeId c : *path) {
      if (map_->home(static_cast<ClassId>(c)) != node_id_) all_local = false;
    }
    if (all_local && !options_.mutation_stale_bound_snapshot) {
      return cc_->Read(txn, granule);
    }
    Timestamp bound = txn.init_ts;  // the canary's "unbounded" snapshot
    if (!options_.mutation_stale_bound_snapshot) {
      std::vector<ClassId> above(path->begin() + 1, path->end());
      HDD_RETURN_IF_ERROR(EnsureSlices(state, above, txn.init_ts));
      ActivityLinkEvaluator eval(&tst, &state.slices);
      HDD_ASSIGN_OR_RETURN(bound, eval.A(own, target, txn.init_ts));
    }
    return BoundedRead(txn, granule, bound, state);
  }

  // Hosted read-only transaction on the slice path (§5.0 generalized):
  // reads must stay inside the declared scope.
  if (std::find(scope.begin(), scope.end(), granule.segment) == scope.end()) {
    return Status::InvalidArgument("dist: read outside declared scope");
  }
  Timestamp bound = txn.init_ts;  // the canary's "unbounded" snapshot
  if (!options_.mutation_stale_bound_snapshot) {
    if (!state.base_ready) {
      HDD_RETURN_IF_ERROR(EnsureSlices(state, {state.host}, txn.init_ts));
      state.base = state.slices.OldestActiveAt(state.host, txn.init_ts);
      state.base_ready = true;
    }
    if (target == state.host) {
      bound = state.base;
    } else {
      std::optional<std::vector<NodeId>> path =
          tst.CriticalPath(state.host, target);
      if (!path.has_value()) {
        return Status::InvalidArgument("dist: scope is not host-reachable");
      }
      std::vector<ClassId> above(path->begin() + 1, path->end());
      HDD_RETURN_IF_ERROR(EnsureSlices(state, above, txn.init_ts));
      ActivityLinkEvaluator eval(&tst, &state.slices);
      HDD_ASSIGN_OR_RETURN(bound, eval.A(state.host, target, state.base));
    }
  }
  return BoundedRead(txn, granule, bound, state);
}

Status DistSession::PrepareRemotes(const TxnDescriptor& txn,
                                   AttemptState& state) {
  for (const auto& [segment, writes] : state.remote_writes) {
    PrepareReq req;
    req.txn = txn.id;
    req.init_ts = txn.init_ts;
    req.segment = segment;
    req.writes = writes;
    Result<std::string> ack =
        transport_->Call(node_id_, map_->owner(segment), EncodePrepareReq(req),
                         /*interruptible=*/true);
    if (!ack.ok()) return ack.status();
    state.prepared.push_back(segment);
  }
  return Status::OK();
}

void DistSession::AbortRemotes(const TxnDescriptor& txn, AttemptState& state) {
  for (const SegmentId segment : state.prepared) {
    TxnSegmentReq req;
    req.txn = txn.id;
    req.init_ts = txn.init_ts;
    req.segment = segment;
    (void)transport_->Call(node_id_, map_->owner(segment),
                           EncodeTxnSegmentReq(DistMsgType::kAbortReq, req),
                           /*interruptible=*/false);
  }
  state.prepared.clear();
}

void DistSession::CommitRemotes(const TxnDescriptor& txn,
                                AttemptState& state) {
  // The decision is durable: roll forward until every participant acked.
  // CommitExternal is idempotent, so retrying a possibly-delivered call
  // is safe; calls are non-interruptible (no fault may unwind this).
  for (const SegmentId segment : state.prepared) {
    TxnSegmentReq req;
    req.txn = txn.id;
    req.init_ts = txn.init_ts;
    req.segment = segment;
    for (int attempt = 0; attempt < 64; ++attempt) {
      Result<std::string> ack = transport_->Call(
          node_id_, map_->owner(segment),
          EncodeTxnSegmentReq(DistMsgType::kCommitReq, req),
          /*interruptible=*/false);
      if (ack.ok()) break;
      SimSleep(std::chrono::microseconds(50));
    }
  }
  state.prepared.clear();
}

DistTxnResult DistSession::Run(const DistProgram& program, int max_retries,
                               SimScheduler* sim) {
  DistTxnResult result;
  const TstAnalysis& tst = cc_->class_tst();

  // Placement + path selection, fixed across attempts.
  bool local_plain = false;
  ClassId host = kReadOnlyClass;
  TxnOptions begin_options = program.options;
  if (!program.options.read_only) {
    if (map_->home(program.options.txn_class) != node_id_) {
      result.failed = true;  // misrouted: update txns run at their home
      return result;
    }
  } else {
    const std::vector<SegmentId>& scope = program.options.read_scope;
    if (scope.empty()) {
      // Time walls are node-local consistent cuts; a cross-shard wall
      // read would be unsound, so ad-hoc unscoped RO is not offered.
      result.failed = true;
      return result;
    }
    local_plain = true;
    for (const SegmentId s : scope) {
      const ClassId c = cc_->ClassOfSegment(s);
      if (map_->home(c) != node_id_ || map_->owner(s) != node_id_) {
        local_plain = false;
      }
    }
    if (options_.mutation_stale_bound_snapshot) local_plain = false;
    if (!local_plain) {
      // Resolve the host class ourselves (the §5.0 rule: the unique
      // scope class every other scope class is higher than) and begin an
      // UNSCOPED read-only transaction: the local controller would
      // otherwise host it against stand-in activity tables.
      begin_options.read_scope.clear();
      for (const SegmentId cand : scope) {
        const ClassId c = cc_->ClassOfSegment(cand);
        bool hosts_all = true;
        for (const SegmentId other : scope) {
          const ClassId o = cc_->ClassOfSegment(other);
          if (o != c && !tst.Higher(o, c)) hosts_all = false;
        }
        if (hosts_all) {
          host = c;
          break;
        }
      }
      if (host == kReadOnlyClass) {
        result.failed = true;  // scope spans no single critical-path fan
        return result;
      }
    }
  }

  for (int attempt = 0; attempt <= max_retries; ++attempt) {
    if (sim != nullptr) sim->OnTxnAttemptStart();
    AttemptState state;
    state.host = host;
    std::optional<Result<TxnDescriptor>> txn;
    try {
      txn.emplace(cc_->Begin(begin_options));
    } catch (const SimFault& fault) {
      if (fault.kind == SimFaultKind::kCrash) {
        result.crashed = true;
        return result;
      }
      ++result.aborted_attempts;
      continue;
    }
    if (!txn->ok()) {
      result.failed = true;
      return result;
    }
    Status status;
    bool faulted = false;
    bool fault_crash = false;
    bool committed = false;
    try {
      for (const DistOp& op : program.ops) {
        if (op.is_write) {
          status = cc_->Write(**txn, op.granule, op.value);
          if (status.ok() &&
              map_->owner(op.granule.segment) != node_id_) {
            state.remote_writes[op.granule.segment].emplace_back(
                op.granule.index, op.value);
          }
        } else {
          Result<Value> value = ReadOp(**txn, op.granule, local_plain,
                                       program.options.read_scope, state);
          status = value.status();
          if (value.ok()) state.values.push_back(*value);
        }
        if (!status.ok()) break;
      }
      if (status.ok()) {
        if (state.remote_writes.empty()) {
          status = cc_->Commit(**txn);
          committed = status.ok();
        } else {
          status = PrepareRemotes(**txn, state);
          if (status.ok()) {
            // The local durable commit record IS the decision: before it
            // an abort is still possible, after it only roll-forward.
            status = cc_->CommitDurablePhase(**txn);
          }
          if (status.ok()) {
            CommitRemotes(**txn, state);
            (void)cc_->FinishDistributedCommit(**txn);
            committed = true;
          }
        }
        if (committed) {
          result.committed = true;
          result.values = std::move(state.values);
          return result;
        }
        if (status.IsRetryable()) {
          AbortRemotes(**txn, state);
          (void)cc_->Abort(**txn);
          ++result.aborted_attempts;
          continue;
        }
        AbortRemotes(**txn, state);
        (void)cc_->Abort(**txn);
        result.failed = true;
        return result;
      }
    } catch (const SimFault& fault) {
      faulted = true;
      fault_crash = fault.kind == SimFaultKind::kCrash;
    }
    if (faulted && fault_crash) {
      // Coordinator "crash": the driver vanishes without aborting its
      // prepared participants. Their versions stay uncommitted — invisible
      // to every bounded read — which is exactly the classic blocked-2PC
      // residue the sweep is meant to exercise.
      result.crashed = true;
      return result;
    }
    AbortRemotes(**txn, state);
    (void)cc_->Abort(**txn);  // best effort; the txn may already be gone
    if (faulted) {
      ++result.aborted_attempts;
      continue;
    }
    if (status.IsRetryable() || status.code() == StatusCode::kBusy) {
      ++result.aborted_attempts;
      if (attempt > 2) {
        SimSleep(std::chrono::microseconds(
            std::min(1 << std::min(attempt, 12), 2000)));
      }
      continue;
    }
    result.failed = true;
    return result;
  }
  result.failed = true;
  return result;
}

}  // namespace hdd
