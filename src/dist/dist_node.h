#ifndef HDD_DIST_DIST_NODE_H_
#define HDD_DIST_DIST_NODE_H_

#include <string>

#include "common/clock.h"
#include "common/status.h"
#include "hdd/hdd_controller.h"

namespace hdd {

/// Server side of one shard: dispatches incoming dist messages to the
/// node's HddController. Handlers are strictly local — they never issue
/// outbound RPCs (see DistHandler's contract) — and idempotent, so a
/// duplicated delivery is harmless.
class DistNode {
 public:
  /// `clock` may be null on nodes that do not host the clock service
  /// (clock requests then fail; in sim deployments the shared SimClock is
  /// reached directly and no clock messages are ever sent).
  DistNode(int node_id, HddController* cc, LogicalClock* clock)
      : node_id_(node_id), cc_(cc), clock_(clock) {}

  /// Full request bytes in (type byte included), response body out.
  Result<std::string> Handle(int from, const std::string& request);

  int node_id() const { return node_id_; }

 private:
  int node_id_;
  HddController* cc_;
  LogicalClock* clock_;
};

}  // namespace hdd

#endif  // HDD_DIST_DIST_NODE_H_
