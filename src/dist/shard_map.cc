#include "dist/shard_map.h"

#include <cassert>

namespace hdd {

ShardMap ShardMap::Contiguous(int num_segments, int num_nodes) {
  assert(num_nodes >= 1 && num_nodes <= num_segments);
  ShardMap map;
  map.num_nodes_ = num_nodes;
  map.home_of_class_.resize(static_cast<std::size_t>(num_segments));
  // Balanced split: the first `num_segments % num_nodes` nodes take one
  // extra class, so every node homes at least one class (a ceil-split can
  // starve the tail — 4 classes over 3 nodes would leave node 2 empty).
  const int base = num_segments / num_nodes;
  const int extra = num_segments % num_nodes;
  int c = 0;
  for (int n = 0; n < num_nodes; ++n) {
    const int take = base + (n < extra ? 1 : 0);
    for (int i = 0; i < take; ++i) {
      map.home_of_class_[static_cast<std::size_t>(c++)] = n;
    }
  }
  map.owner_of_segment_ = map.home_of_class_;
  return map;
}

void ShardMap::SetSegmentOwner(SegmentId s, int node) {
  assert(s >= 0 && s < num_segments());
  assert(node >= 0 && node < num_nodes_);
  owner_of_segment_[static_cast<std::size_t>(s)] = node;
}

std::vector<SegmentId> ShardMap::SegmentsOwnedBy(int node) const {
  std::vector<SegmentId> out;
  for (int s = 0; s < num_segments(); ++s) {
    if (owner_of_segment_[static_cast<std::size_t>(s)] == node) {
      out.push_back(s);
    }
  }
  return out;
}

std::vector<ClassId> ShardMap::ClassesHomedAt(int node) const {
  std::vector<ClassId> out;
  for (std::size_t c = 0; c < home_of_class_.size(); ++c) {
    if (home_of_class_[c] == node) out.push_back(static_cast<ClassId>(c));
  }
  return out;
}

}  // namespace hdd
