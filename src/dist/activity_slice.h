#ifndef HDD_DIST_ACTIVITY_SLICE_H_
#define HDD_DIST_ACTIVITY_SLICE_H_

#include <map>
#include <string>
#include <string_view>

#include "common/status.h"
#include "hdd/hdd_controller.h"
#include "hdd/link_functions.h"

namespace hdd {

/// Wire codec for ActivitySlice (hdd/hdd_controller.h). Append-style
/// encode and cursor-style decode so slices embed in larger messages.
void EncodeActivitySlice(const ActivitySlice& slice, std::string* out);
Result<ActivitySlice> DecodeActivitySlice(std::string_view* in);

/// Rebuilds a queryable activity table from a shipped slice: every
/// active initiation is re-begun, every finished record replayed. The
/// result answers I^old(v) for any v <= slice.frontier exactly as the
/// owning node's live table would have at the moment the slice was taken
/// — and, for earlier v, exactly as it would ever answer (stability).
ClassActivityTable BuildSliceTable(const ActivitySlice& slice);

/// ActivityTableSource over shipped slices: the requester-side evaluator
/// (hdd/link_functions.h) walks a critical path against REMOTE activity
/// state without sending one more message — the zero-registration
/// Protocol A read. The caller must Install() a slice for every class the
/// evaluation can touch (all classes strictly above the start of the
/// path, plus the host class for hosted read-only transactions); querying
/// a missing class returns `m` (as if idle), which is only sound because
/// the session installs the full path before evaluating.
class SliceSource : public ActivityTableSource {
 public:
  void Install(const ActivitySlice& slice) {
    tables_[slice.class_id] = BuildSliceTable(slice);
  }

  bool Has(ClassId c) const { return tables_.count(c) > 0; }

  Timestamp OldestActiveAt(ClassId c, Timestamp m) const override {
    const auto it = tables_.find(c);
    return it == tables_.end() ? m : it->second.OldestActiveAt(m);
  }

  Result<Timestamp> LatestEndAt(ClassId c, Timestamp m) const override {
    const auto it = tables_.find(c);
    if (it == tables_.end()) {
      return Status::Busy("no activity slice for class");
    }
    return it->second.LatestEndAt(m);
  }

 private:
  std::map<ClassId, ClassActivityTable> tables_;
};

}  // namespace hdd

#endif  // HDD_DIST_ACTIVITY_SLICE_H_
