#ifndef HDD_DIST_TRANSPORT_H_
#define HDD_DIST_TRANSPORT_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"
#include "dist/dist_message.h"

namespace hdd {

/// Per-type message counters, the data behind the §7.5-style message
/// table of bench_dist. One counter per request type; responses ride the
/// same exchange and are not counted separately (a Call is one
/// request/response round trip).
struct MessageCounters {
  std::array<std::atomic<std::uint64_t>, kNumDistMsgTypes> sent{};

  void Bump(DistMsgType type) {
    const auto i = static_cast<std::size_t>(type);
    if (i < sent.size()) sent[i].fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t Get(DistMsgType type) const {
    const auto i = static_cast<std::size_t>(type);
    return i < sent.size() ? sent[i].load(std::memory_order_relaxed) : 0;
  }
  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const auto& c : sent) sum += c.load(std::memory_order_relaxed);
    return sum;
  }

  /// The paper's claim (§4.2), made structural: the protocol has NO
  /// registration message type — a remote Protocol A read leaves no
  /// trace at the owner — so this is zero by construction. bench_dist
  /// still asserts it against the SDD-1-lite comparator, whose model
  /// charges one registration message per remote read.
  std::uint64_t registration_messages() const { return 0; }

  void Reset() {
    for (auto& c : sent) c.store(0, std::memory_order_relaxed);
  }
};

/// Handler a node registers for incoming requests: full request bytes in
/// (type byte included), response body out. Handlers must never issue
/// outbound RPCs — a handler blocked on another node's handler would be a
/// distributed deadlock the cooperative simulation cannot break.
using DistHandler =
    std::function<Result<std::string>(int from, const std::string& request)>;

/// Message layer between shard nodes. Two implementations: SimTransport
/// (N logical nodes in one process — deterministic under the sim
/// scheduler with message faults, plain condition variables under real
/// threads) and SocketTransport (real processes over TCP, reusing the
/// net/frame framing).
class Transport {
 public:
  virtual ~Transport() = default;

  /// Synchronous RPC: sends `request` from node `from` to node `to` and
  /// blocks until the response arrives. `interruptible` marks whether an
  /// injected fault may abort the calling transaction attempt at this
  /// boundary — pass false on the 2PC roll-forward path, where the
  /// commit decision is already durable.
  virtual Result<std::string> Call(int from, int to,
                                   const std::string& request,
                                   bool interruptible) = 0;

  MessageCounters& counters() { return counters_; }
  const MessageCounters& counters() const { return counters_; }

 protected:
  MessageCounters counters_;
};

}  // namespace hdd

#endif  // HDD_DIST_TRANSPORT_H_
