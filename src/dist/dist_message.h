#ifndef HDD_DIST_DIST_MESSAGE_H_
#define HDD_DIST_DIST_MESSAGE_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "hdd/hdd_controller.h"
#include "storage/version.h"

namespace hdd {

/// Wire messages of the sharded deployment. Every request starts with one
/// type byte; the transport's counters index by it, which is what the
/// bench's per-transaction message table is built from. Note what is NOT
/// here: there is no registration message of any kind — a cross-node
/// Protocol A read costs activity slices (once per transaction per remote
/// home) plus one snapshot fetch per read, and writes nothing anywhere.
enum class DistMsgType : std::uint8_t {
  kActivityReq = 1,  // frontier + class list -> activity slices
  kSnapshotReq = 2,  // segment + granule -> committed version chain
  kPrepareReq = 3,   // 2PC phase 1: install + log shipped writes
  kCommitReq = 4,    // 2PC phase 2: mark committed + log
  kAbortReq = 5,     // 2PC abort: remove installed writes
  kClockTickReq = 6, // clock service (socket deployments): issue a tick
  kClockNowReq = 7,  // clock service: read the latest timestamp
};

/// One past the largest type value (counter array size).
inline constexpr int kNumDistMsgTypes = 8;

/// Type byte of an encoded request (0 when empty/garbage).
DistMsgType PeekDistMsgType(std::string_view payload);
const char* DistMsgTypeName(DistMsgType type);

struct ActivityReq {
  Timestamp frontier = kTimestampMin;
  std::vector<ClassId> classes;
};

struct SnapshotReq {
  SegmentId segment = 0;
  std::uint32_t index = 0;
};

struct PrepareReq {
  TxnId txn = kInvalidTxn;
  Timestamp init_ts = kTimestampMin;
  SegmentId segment = 0;
  std::vector<std::pair<std::uint32_t, Value>> writes;  // (granule, value)
};

/// Commit/abort share one body (type byte disambiguates).
struct TxnSegmentReq {
  TxnId txn = kInvalidTxn;
  Timestamp init_ts = kTimestampMin;
  SegmentId segment = 0;
};

// Requests. Encoders produce [type byte][body]; decoders take the full
// request (type byte included) and verify it.
std::string EncodeActivityReq(const ActivityReq& req);
Result<ActivityReq> DecodeActivityReq(std::string_view payload);
std::string EncodeSnapshotReq(const SnapshotReq& req);
Result<SnapshotReq> DecodeSnapshotReq(std::string_view payload);
std::string EncodePrepareReq(const PrepareReq& req);
Result<PrepareReq> DecodePrepareReq(std::string_view payload);
std::string EncodeTxnSegmentReq(DistMsgType type, const TxnSegmentReq& req);
Result<TxnSegmentReq> DecodeTxnSegmentReq(std::string_view payload);
std::string EncodeClockReq(DistMsgType type);

// Response bodies (the transport's envelope carries ok/error).
std::string EncodeSlices(const std::vector<ActivitySlice>& slices);
Result<std::vector<ActivitySlice>> DecodeSlices(std::string_view payload);
std::string EncodeVersions(const std::vector<Version>& versions);
Result<std::vector<Version>> DecodeVersions(std::string_view payload);
std::string EncodeTimestamp(Timestamp ts);
Result<Timestamp> DecodeTimestamp(std::string_view payload);

/// Response envelope: [0x01][body] on success, [0x00][code u32][message]
/// on error. Lets a handler's Status travel back to the calling node.
std::string EncodeDistResponse(const Result<std::string>& result);
Result<std::string> DecodeDistResponse(std::string_view payload);

}  // namespace hdd

#endif  // HDD_DIST_DIST_MESSAGE_H_
