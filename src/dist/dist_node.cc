#include "dist/dist_node.h"

#include <utility>
#include <vector>

#include "dist/dist_message.h"

namespace hdd {

Result<std::string> DistNode::Handle(int from, const std::string& request) {
  (void)from;
  switch (PeekDistMsgType(request)) {
    case DistMsgType::kActivityReq: {
      HDD_ASSIGN_OR_RETURN(ActivityReq req, DecodeActivityReq(request));
      std::vector<ActivitySlice> slices;
      slices.reserve(req.classes.size());
      for (const ClassId c : req.classes) {
        HDD_ASSIGN_OR_RETURN(ActivitySlice slice,
                             cc_->ExportActivitySlice(c, req.frontier));
        slices.push_back(std::move(slice));
      }
      return EncodeSlices(slices);
    }
    case DistMsgType::kSnapshotReq: {
      HDD_ASSIGN_OR_RETURN(SnapshotReq req, DecodeSnapshotReq(request));
      HDD_ASSIGN_OR_RETURN(std::vector<Version> versions,
                           cc_->ExportVersions(req.segment, req.index));
      // Cross-node read barrier: a committed version is marked in memory
      // in the same latch window that appends its commit record, but the
      // single-WAL ticket argument that makes local acked reads
      // crash-proof does not span nodes. Syncing this node's WAL before
      // the snapshot leaves guarantees every shipped committed version
      // survives recovery — a requester's acked result never dangles.
      HDD_RETURN_IF_ERROR(cc_->AwaitWalReadStable());
      return EncodeVersions(versions);
    }
    case DistMsgType::kPrepareReq: {
      HDD_ASSIGN_OR_RETURN(PrepareReq req, DecodePrepareReq(request));
      HDD_RETURN_IF_ERROR(
          cc_->PrepareExternal(req.segment, req.txn, req.init_ts, req.writes));
      return std::string();
    }
    case DistMsgType::kCommitReq: {
      HDD_ASSIGN_OR_RETURN(TxnSegmentReq req, DecodeTxnSegmentReq(request));
      HDD_RETURN_IF_ERROR(
          cc_->CommitExternal(req.segment, req.txn, req.init_ts));
      return std::string();
    }
    case DistMsgType::kAbortReq: {
      HDD_ASSIGN_OR_RETURN(TxnSegmentReq req, DecodeTxnSegmentReq(request));
      HDD_RETURN_IF_ERROR(
          cc_->AbortExternal(req.segment, req.txn, req.init_ts));
      return std::string();
    }
    case DistMsgType::kClockTickReq: {
      if (clock_ == nullptr) {
        return Status::FailedPrecondition("dist: node hosts no clock service");
      }
      return EncodeTimestamp(clock_->Tick());
    }
    case DistMsgType::kClockNowReq: {
      if (clock_ == nullptr) {
        return Status::FailedPrecondition("dist: node hosts no clock service");
      }
      return EncodeTimestamp(clock_->Now());
    }
  }
  return Status::InvalidArgument("dist: unknown message type");
}

}  // namespace hdd
