#include "dist/activity_slice.h"

#include "dist/codec.h"

namespace hdd {

using distcodec::GetU32;
using distcodec::GetU64;
using distcodec::PutU32;
using distcodec::PutU64;

void EncodeActivitySlice(const ActivitySlice& slice, std::string* out) {
  PutU32(out, static_cast<std::uint32_t>(slice.class_id));
  PutU64(out, slice.frontier);
  PutU32(out, static_cast<std::uint32_t>(slice.active.size()));
  for (const Timestamp init : slice.active) PutU64(out, init);
  PutU32(out, static_cast<std::uint32_t>(slice.finished.size()));
  for (const auto& [init, end] : slice.finished) {
    PutU64(out, init);
    PutU64(out, end);
  }
}

Result<ActivitySlice> DecodeActivitySlice(std::string_view* in) {
  ActivitySlice slice;
  std::uint32_t class_id = 0;
  std::uint32_t n_active = 0;
  if (!GetU32(in, &class_id) || !GetU64(in, &slice.frontier) ||
      !GetU32(in, &n_active)) {
    return Status::Corruption("activity slice: truncated header");
  }
  slice.class_id = static_cast<ClassId>(class_id);
  slice.active.reserve(n_active);
  for (std::uint32_t i = 0; i < n_active; ++i) {
    Timestamp init = 0;
    if (!GetU64(in, &init)) {
      return Status::Corruption("activity slice: truncated active list");
    }
    slice.active.push_back(init);
  }
  std::uint32_t n_finished = 0;
  if (!GetU32(in, &n_finished)) {
    return Status::Corruption("activity slice: truncated finished count");
  }
  slice.finished.reserve(n_finished);
  for (std::uint32_t i = 0; i < n_finished; ++i) {
    Timestamp init = 0;
    Timestamp end = 0;
    if (!GetU64(in, &init) || !GetU64(in, &end)) {
      return Status::Corruption("activity slice: truncated finished list");
    }
    slice.finished.emplace_back(init, end);
  }
  return slice;
}

ClassActivityTable BuildSliceTable(const ActivitySlice& slice) {
  ClassActivityTable table;
  for (const Timestamp init : slice.active) table.OnBegin(init);
  for (const auto& [init, end] : slice.finished) {
    table.OnBegin(init);
    table.OnFinish(init, end);
  }
  return table;
}

}  // namespace hdd
