#ifndef HDD_DIST_SHARD_SERVER_H_
#define HDD_DIST_SHARD_SERVER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/clock.h"
#include "dist/dist_node.h"
#include "dist/dist_session.h"
#include "dist/remote_clock.h"
#include "dist/shard_map.h"
#include "dist/socket_transport.h"
#include "engine/synthetic_workload.h"
#include "net/server.h"
#include "obs/metrics_registry.h"
#include "wal/wal_manager.h"
#include "wal/wal_storage.h"

namespace hdd {

struct ShardServerOptions {
  /// This process's node id and every node's dist-transport address
  /// (peers[node_id] is the port THIS process binds; all processes must
  /// be started with the same peer list).
  int node_id = 0;
  std::vector<SocketPeer> peers;

  /// Chain-hierarchy shape, shared by every node (all processes must
  /// agree or the shard maps diverge).
  int depth = 4;
  std::uint32_t granules_per_segment = 64;

  /// Owner overrides applied after the contiguous split (the cross-shard
  /// 2PC scenario); must be identical on every process.
  std::vector<std::pair<SegmentId, int>> owner_overrides;

  /// In-memory WAL per node: prepares and commits run the full logging +
  /// group-commit path (the durability frontier 2PC acks ride on).
  bool with_wal = true;
  WalOptions wal;

  /// Net front end (client-facing). Port 0 = ephemeral.
  std::uint16_t front_port = 0;
  int front_io_threads = 1;
  int front_workers = 2;
  std::uint64_t inflight_cap = 1024;
  int max_retries = 50;

  DistOptions session;
};

/// One process of the sharded deployment (`hdd_server --shard`): a
/// SocketTransport node serving the dist protocol to its peers, a full-
/// schema HddController owning this shard's segments, a DistSession
/// routing cross-shard reads and 2PC writes, and an HddServer front end
/// whose workers execute admitted submits through the session
/// (ServerOptions::shard_execute). Node 0 hosts the cluster's logical
/// clock; every other node reaches it through RemoteClock.
///
/// Client placement contract: update transactions must be submitted to
/// the front end of their class's HOME node (the session's Protocol B
/// path is single-sited); a mis-routed update fails, it is never
/// silently proxied. Read-only transactions may be submitted anywhere.
class ShardServer {
 public:
  explicit ShardServer(ShardServerOptions options);
  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  /// Starts the dist transport, then the front end. On error nothing is
  /// left running.
  Status Start();

  /// Stops the front end (draining admitted work), then the transport.
  /// Returns the first deployment error observed (a degraded RemoteClock
  /// latches one). Idempotent.
  Status Stop();

  std::uint16_t front_port() const;
  std::uint16_t dist_port() const { return transport_->bound_port(); }
  /// Transport sockets still open — must be 0 after Stop().
  int transport_open_fds() const { return transport_->open_fds(); }

  const ShardMap& shard_map() const { return map_; }
  HddController& controller() { return *cc_; }
  DistSession& session() { return *session_; }
  SocketTransport& transport() { return *transport_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  const std::string& init_error() const { return init_error_; }

 private:
  ShardServerOptions options_;
  SyntheticWorkload workload_;
  std::optional<HierarchySchema> schema_;
  ShardMap map_;
  std::unique_ptr<SocketTransport> transport_;
  std::unique_ptr<LogicalClock> clock_;  // LogicalClock or RemoteClock
  std::unique_ptr<SimWalStorage> storage_;
  std::unique_ptr<WalManager> wal_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<HddController> cc_;
  std::unique_ptr<DistNode> node_;
  std::unique_ptr<DistSession> session_;
  MetricsRegistry metrics_;
  std::unique_ptr<HddServer> front_;
  bool started_ = false;
  bool stopped_ = false;
  std::string init_error_;
};

}  // namespace hdd

#endif  // HDD_DIST_SHARD_SERVER_H_
