#ifndef HDD_DIST_SHARD_MAP_H_
#define HDD_DIST_SHARD_MAP_H_

#include <vector>

#include "common/status.h"
#include "storage/version.h"
#include "txn/transaction.h"

namespace hdd {

/// How a sharded HDD deployment (src/dist/) splits the class hierarchy
/// across processes. Two independent assignments:
///
///  * home(class):   the node that REGISTERS the class — runs its update
///    transactions, keeps its activity table, and coordinates its
///    commits. Derived from the hierarchy: contiguous class-id ranges, so
///    a class and its neighbours on the critical path tend to co-locate
///    and most Protocol A bounds resolve without leaving the node.
///  * owner(segment): the node holding the AUTHORITATIVE version chains
///    of the segment. Defaults to the home of the segment's class; an
///    override (SetSegmentOwner) separates the two, which is exactly the
///    cross-shard-update scenario — the class's transactions still
///    execute at its home, but their commits must two-phase into the
///    owner's chains and WAL.
///
/// Every node runs the full schema; segments it does not own are local
/// stand-in copies (the home's stand-in sees every write of its own
/// classes, which is what keeps Protocol B single-sited and correct).
/// Dynamic restructuring is NOT supported in sharded mode, so class ids
/// and segment ids coincide for the deployment's lifetime.
class ShardMap {
 public:
  /// Contiguous split of `num_segments` classes over `num_nodes` nodes
  /// (node 0 gets the highest classes). num_nodes must be >= 1 and at
  /// most num_segments.
  static ShardMap Contiguous(int num_segments, int num_nodes);

  int home(ClassId c) const { return home_of_class_[c]; }
  int owner(SegmentId s) const { return owner_of_segment_[s]; }

  /// Re-assigns a segment's chains to another node (see class comment).
  void SetSegmentOwner(SegmentId s, int node);

  int num_nodes() const { return num_nodes_; }
  int num_segments() const {
    return static_cast<int>(owner_of_segment_.size());
  }

  std::vector<SegmentId> SegmentsOwnedBy(int node) const;
  std::vector<ClassId> ClassesHomedAt(int node) const;

 private:
  ShardMap() = default;

  int num_nodes_ = 1;
  std::vector<int> home_of_class_;
  std::vector<int> owner_of_segment_;
};

}  // namespace hdd

#endif  // HDD_DIST_SHARD_MAP_H_
