#ifndef HDD_DIST_DIST_WORLD_H_
#define HDD_DIST_DIST_WORLD_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "dist/dist_node.h"
#include "dist/dist_session.h"
#include "dist/shard_map.h"
#include "dist/sim_transport.h"
#include "engine/synthetic_workload.h"
#include "graph/dhg.h"
#include "sim/sim_clock.h"
#include "wal/wal_manager.h"
#include "wal/wal_storage.h"

namespace hdd {

struct DistWorldOptions {
  int num_nodes = 2;

  /// Chain-hierarchy shape (segment depth-1 lowest, 0 highest), shared by
  /// every node; the shard map splits the classes contiguously.
  int depth = 4;
  std::uint32_t granules_per_segment = 3;

  /// Owner overrides applied after the contiguous split: (segment, node)
  /// pairs making owner(segment) differ from home(class) — the
  /// cross-shard-update scenario (2PC path).
  std::vector<std::pair<SegmentId, int>> owner_overrides;

  bool with_wal = true;
  WalOptions wal;

  int txns_per_node = 6;
  int workers_per_node = 2;
  int pumps_per_node = 2;
  int max_retries = 50;

  /// Program mix (see MakeProgram).
  double read_only_fraction = 0.25;
  int own_reads = 1;
  int own_writes = 2;
  int upper_reads = 1;
  std::uint64_t workload_seed = 77;

  SimTransportOptions transport;
  DistOptions session;
};

/// N logical shard nodes in one process: per node a full-schema database
/// (+ optional WAL on simulated storage), an HddController with a disjoint
/// transaction-id range, a DistNode handler and a DistSession — wired
/// through one SimTransport and one shared logical clock. Under a
/// SimScheduler the whole cluster is deterministic (workers and message
/// pumps are sim tasks); with `sched == nullptr` the same world runs on
/// plain threads (the bench configuration).
class DistWorld {
 public:
  /// On construction failure `init_error()` is non-empty and the world
  /// must not be run.
  DistWorld(DistWorldOptions options, SimScheduler* sched);
  ~DistWorld();

  const std::string& init_error() const { return init_error_; }

  /// Runs the full workload to completion: spawns one thread per worker
  /// and per pump (registered as sim tasks when simulated; the caller
  /// must NOT have called ExpectTasks — this does). Returns "" or a
  /// failure description. Safe to call once.
  std::string RunWorkload();

  /// Total sim tasks RunWorkload registers (for harnesses composing
  /// additional tasks).
  int TotalTasks() const;

  /// Merges every node's recorded history (node-major, sequence-rebased),
  /// rebuilds the final database from each segment's OWNER chains and
  /// runs the full 1SR + bound-replay oracle. Call after RunWorkload on a
  /// non-halted run.
  std::string CheckHistory();

  /// The program worker `node` runs as its `index`-th transaction —
  /// exposed so the crash harness can re-derive the workload.
  DistProgram MakeProgram(int node, int index) const;

  int num_nodes() const { return options_.num_nodes; }
  const ShardMap& shard_map() const { return map_; }
  SimTransport& transport() { return *transport_; }
  HddController& controller(int node) { return *controllers_[node]; }
  Database& database(int node) { return *dbs_[node]; }
  SimWalStorage& storage(int node) { return *storages_[node]; }
  const HierarchySchema& schema() const { return *schema_; }
  std::unique_ptr<Database> MakeFreshDatabase() const {
    return workload_.MakeDatabase();
  }

  std::uint64_t committed() const { return committed_.load(); }
  std::uint64_t failed() const { return failed_.load(); }
  std::uint64_t crashed() const { return crashed_.load(); }
  std::uint64_t aborted_attempts() const { return aborted_attempts_.load(); }

 private:
  void WorkerBody(int node);

  DistWorldOptions options_;
  SimScheduler* sched_;
  SyntheticWorkload workload_;
  std::optional<HierarchySchema> schema_;
  ShardMap map_;
  SimClock clock_;
  std::unique_ptr<SimTransport> transport_;
  std::vector<std::unique_ptr<SimWalStorage>> storages_;
  std::vector<std::unique_ptr<WalManager>> wals_;
  std::vector<std::unique_ptr<Database>> dbs_;
  std::vector<std::unique_ptr<HddController>> controllers_;
  std::vector<std::unique_ptr<DistNode>> nodes_;
  std::vector<std::unique_ptr<DistSession>> sessions_;
  std::string init_error_;

  std::vector<std::unique_ptr<std::atomic<int>>> next_index_;
  std::atomic<int> workers_left_{0};
  std::atomic<std::uint64_t> committed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> crashed_{0};
  std::atomic<std::uint64_t> aborted_attempts_{0};
};

/// Rebases `steps` so their sequence numbers follow everything already in
/// `combined` (node-major concatenation is a legal interleaving for the
/// graph-based oracle: dependencies are derived from version keys, not
/// from sequence adjacency).
void AppendRebased(std::vector<Step>& combined, std::vector<Step> steps);

}  // namespace hdd

#endif  // HDD_DIST_DIST_WORLD_H_
