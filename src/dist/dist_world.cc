#include "dist/dist_world.h"

#include <thread>
#include <utility>

#include "sim/explorer.h"
#include "sim/sim_scheduler.h"

namespace hdd {

namespace {

SyntheticWorkloadParams MakeParams(const DistWorldOptions& options) {
  SyntheticWorkloadParams params;
  params.depth = options.depth;
  params.granules_per_segment = options.granules_per_segment;
  params.own_reads = options.own_reads;
  params.own_writes = options.own_writes;
  params.upper_reads = options.upper_reads;
  params.read_only_fraction = options.read_only_fraction;
  return params;
}

}  // namespace

DistWorld::DistWorld(DistWorldOptions options, SimScheduler* sched)
    : options_(options),
      sched_(sched),
      workload_(MakeParams(options)),
      map_(ShardMap::Contiguous(options.depth, options.num_nodes)),
      clock_(sched) {
  Result<HierarchySchema> schema = HierarchySchema::Create(workload_.Spec());
  if (!schema.ok()) {
    init_error_ = schema.status().ToString();
    return;
  }
  schema_.emplace(std::move(*schema));
  for (const auto& [segment, node] : options_.owner_overrides) {
    map_.SetSegmentOwner(segment, node);
  }
  SimTransportOptions topts = options_.transport;
  transport_ = std::make_unique<SimTransport>(options_.num_nodes, topts);
  for (int n = 0; n < options_.num_nodes; ++n) {
    dbs_.push_back(workload_.MakeDatabase());
    if (options_.with_wal) {
      storages_.push_back(std::make_unique<SimWalStorage>());
      Result<std::unique_ptr<WalManager>> wal = WalManager::Open(
          storages_.back().get(), dbs_.back()->num_segments(), options_.wal);
      if (!wal.ok()) {
        init_error_ = wal.status().ToString();
        return;
      }
      wals_.push_back(std::move(*wal));
      dbs_.back()->AttachWal(wals_.back().get());
    }
    HddControllerOptions copts;
    // Disjoint id ranges per node: the merged multi-node history needs
    // globally unique transaction ids.
    copts.first_txn_id = static_cast<TxnId>(n) * (1ull << 32) + 1;
    // Idle-point trimming is node-local reasoning and therefore UNSOUND
    // here: a remote reader's bound may stab below this node's clock
    // while the node itself is idle.
    copts.auto_trim_history = false;
    copts.name = "hdd-dist-" + std::to_string(n);
    controllers_.push_back(std::make_unique<HddController>(
        dbs_.back().get(), &clock_, &*schema_, copts));
    nodes_.push_back(
        std::make_unique<DistNode>(n, controllers_.back().get(), &clock_));
    DistNode* dist_node = nodes_.back().get();
    transport_->RegisterHandler(
        n, [dist_node](int from, const std::string& request) {
          return dist_node->Handle(from, request);
        });
    sessions_.push_back(std::make_unique<DistSession>(
        n, &map_, transport_.get(), controllers_.back().get(),
        options_.session));
    next_index_.push_back(std::make_unique<std::atomic<int>>(0));
  }
}

DistWorld::~DistWorld() = default;

DistProgram DistWorld::MakeProgram(int node, int index) const {
  Rng rng(options_.workload_seed * 0x9E3779B97F4A7C15ULL +
          static_cast<std::uint64_t>(node) * 8191 +
          static_cast<std::uint64_t>(index) * 131 + 1);
  const auto granule = [&](SegmentId s) {
    return GranuleRef{s, static_cast<std::uint32_t>(
                             rng.NextBounded(options_.granules_per_segment))};
  };
  DistProgram program;
  if (rng.NextBool(options_.read_only_fraction)) {
    // Hosted read-only: scope = the chain from the root down to a random
    // class h (every scoped class above h is critical-path-reachable).
    const int h = static_cast<int>(rng.NextBounded(
        static_cast<std::uint64_t>(options_.depth)));
    program.options.read_only = true;
    for (int s = 0; s <= h; ++s) {
      program.options.read_scope.push_back(static_cast<SegmentId>(s));
    }
    for (int s = 0; s <= h; ++s) {
      program.ops.push_back(
          DistOp{false, granule(static_cast<SegmentId>(s)), 0});
    }
    return program;
  }
  const std::vector<ClassId> classes = map_.ClassesHomedAt(node);
  const ClassId c = classes[rng.NextBounded(classes.size())];
  program.options.txn_class = c;
  for (SegmentId s = 0; s < c; ++s) {
    for (int r = 0; r < options_.upper_reads; ++r) {
      program.ops.push_back(DistOp{false, granule(s), 0});
    }
  }
  for (int r = 0; r < options_.own_reads; ++r) {
    program.ops.push_back(DistOp{false, granule(c), 0});
  }
  for (int w = 0; w < options_.own_writes; ++w) {
    program.ops.push_back(DistOp{
        true, granule(c), static_cast<Value>(rng.NextBounded(1000000))});
  }
  return program;
}

void DistWorld::WorkerBody(int node) {
  std::atomic<int>& next = *next_index_[node];
  for (;;) {
    const int index = next.fetch_add(1);
    if (index >= options_.txns_per_node) break;
    const DistProgram program = MakeProgram(node, index);
    const DistTxnResult r =
        sessions_[node]->Run(program, options_.max_retries, sched_);
    if (r.committed) committed_.fetch_add(1);
    if (r.failed) failed_.fetch_add(1);
    if (r.crashed) crashed_.fetch_add(1);
    aborted_attempts_.fetch_add(r.aborted_attempts);
  }
  // The LAST worker stops the pumps — from a registered sim task, so the
  // scheduler delivers the wakeups (a notify from a non-sim thread is
  // invisible to parked sim tasks).
  if (workers_left_.fetch_sub(1) == 1) transport_->Stop();
}

int DistWorld::TotalTasks() const {
  return options_.num_nodes *
         (options_.workers_per_node + options_.pumps_per_node);
}

std::string DistWorld::RunWorkload() {
  if (!init_error_.empty()) return init_error_;
  const int num_workers = options_.num_nodes * options_.workers_per_node;
  const int num_pumps = options_.num_nodes * options_.pumps_per_node;
  workers_left_.store(num_workers);
  if (sched_ != nullptr) sched_->ExpectTasks(num_workers + num_pumps);

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_workers + num_pumps));
  const auto launch = [&](int task_id, auto body) {
    threads.emplace_back([this, task_id, body] {
      if (sched_ == nullptr) {
        body();
        return;
      }
      try {
        sched_->RegisterCurrentTask(task_id);
        body();
      } catch (const SimHalt&) {
      }
      sched_->UnregisterCurrentTask();
    });
  };
  int task_id = 0;
  for (int n = 0; n < options_.num_nodes; ++n) {
    for (int w = 0; w < options_.workers_per_node; ++w) {
      launch(task_id++, [this, n] { WorkerBody(n); });
    }
  }
  for (int n = 0; n < options_.num_nodes; ++n) {
    for (int p = 0; p < options_.pumps_per_node; ++p) {
      launch(task_id++, [this, n] { transport_->PumpLoop(n); });
    }
  }
  for (std::thread& t : threads) t.join();

  if (sched_ != nullptr && sched_->halted() && !sched_->process_crashed()) {
    return "halted: " + sched_->halt_reason();
  }
  return "";
}

std::string DistWorld::CheckHistory() {
  std::vector<Step> combined;
  std::unordered_map<TxnId, TxnState> outcomes;
  std::unordered_map<TxnId, ScheduleRecorder::TxnIdentity> identities;
  for (int n = 0; n < options_.num_nodes; ++n) {
    const ScheduleRecorder& rec = controllers_[n]->recorder();
    AppendRebased(combined, rec.steps());
    for (const auto& [id, outcome] : rec.outcomes()) outcomes[id] = outcome;
    for (const auto& [id, ident] : rec.identities()) identities[id] = ident;
  }
  // The final database: each segment's chains come from its OWNER node
  // (committed versions only — 2PC leftovers of crashed coordinators are
  // uncommitted residue no bounded read could observe).
  std::unique_ptr<Database> merged = workload_.MakeDatabase();
  for (int s = 0; s < options_.depth; ++s) {
    const int owner = map_.owner(static_cast<SegmentId>(s));
    for (std::uint32_t g = 0; g < options_.granules_per_segment; ++g) {
      Result<std::vector<Version>> chain =
          controllers_[owner]->ExportVersions(static_cast<SegmentId>(s), g);
      if (!chain.ok()) return chain.status().ToString();
      Status restored =
          merged->granule(GranuleRef{static_cast<SegmentId>(s), g})
              .RestoreVersions(std::move(*chain));
      if (!restored.ok()) return restored.ToString();
    }
  }
  return CheckRecordedHistory(combined, outcomes, identities, *merged,
                              /*replay_bounds=*/true);
}

void AppendRebased(std::vector<Step>& combined, std::vector<Step> steps) {
  const std::uint64_t base = combined.empty() ? 0 : combined.back().seq + 1;
  for (Step& step : steps) step.seq += base;
  combined.insert(combined.end(), steps.begin(), steps.end());
}

}  // namespace hdd
