#include "dist/remote_clock.h"

#include "dist/dist_message.h"

namespace hdd {

Timestamp RemoteClock::Call(DistMsgType type) {
  // Not interruptible: a fault-aborted clock fetch would abort whatever
  // transaction attempt happened to need a timestamp, for no model value.
  Result<std::string> response = transport_->Call(
      node_id_, clock_node_, EncodeClockReq(type), /*interruptible=*/false);
  if (response.ok()) {
    const Result<Timestamp> ts = DecodeTimestamp(*response);
    if (ts.ok()) {
      // Keep the fallback floor above everything the service issued.
      Timestamp seen = last_seen_.load(std::memory_order_relaxed);
      while (seen < *ts && !last_seen_.compare_exchange_weak(
                               seen, *ts, std::memory_order_relaxed)) {
      }
      return *ts;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (last_error_.ok()) last_error_ = ts.status();
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    if (last_error_.ok()) last_error_ = response.status();
  }
  // Degraded: locally monotone, globally meaningless. last_error() is
  // latched; the deployment must treat the run as failed.
  return last_seen_.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace hdd
