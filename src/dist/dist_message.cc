#include "dist/dist_message.h"

#include "dist/activity_slice.h"
#include "dist/codec.h"

namespace hdd {

using distcodec::GetU32;
using distcodec::GetU64;
using distcodec::GetU8;
using distcodec::PutU32;
using distcodec::PutU64;
using distcodec::PutU8;

DistMsgType PeekDistMsgType(std::string_view payload) {
  if (payload.empty()) return static_cast<DistMsgType>(0);
  return static_cast<DistMsgType>(static_cast<std::uint8_t>(payload[0]));
}

const char* DistMsgTypeName(DistMsgType type) {
  switch (type) {
    case DistMsgType::kActivityReq:
      return "activity";
    case DistMsgType::kSnapshotReq:
      return "snapshot";
    case DistMsgType::kPrepareReq:
      return "prepare";
    case DistMsgType::kCommitReq:
      return "commit";
    case DistMsgType::kAbortReq:
      return "abort";
    case DistMsgType::kClockTickReq:
      return "clock_tick";
    case DistMsgType::kClockNowReq:
      return "clock_now";
  }
  return "unknown";
}

namespace {

bool ConsumeType(std::string_view* in, DistMsgType expected) {
  std::uint8_t type = 0;
  return GetU8(in, &type) && type == static_cast<std::uint8_t>(expected);
}

}  // namespace

std::string EncodeActivityReq(const ActivityReq& req) {
  std::string out;
  PutU8(&out, static_cast<std::uint8_t>(DistMsgType::kActivityReq));
  PutU64(&out, req.frontier);
  PutU32(&out, static_cast<std::uint32_t>(req.classes.size()));
  for (const ClassId c : req.classes) {
    PutU32(&out, static_cast<std::uint32_t>(c));
  }
  return out;
}

Result<ActivityReq> DecodeActivityReq(std::string_view payload) {
  std::string_view in = payload;
  ActivityReq req;
  std::uint32_t count = 0;
  if (!ConsumeType(&in, DistMsgType::kActivityReq) ||
      !GetU64(&in, &req.frontier) || !GetU32(&in, &count)) {
    return Status::Corruption("activity request: truncated");
  }
  req.classes.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t c = 0;
    if (!GetU32(&in, &c)) {
      return Status::Corruption("activity request: truncated class list");
    }
    req.classes.push_back(static_cast<ClassId>(c));
  }
  return req;
}

std::string EncodeSnapshotReq(const SnapshotReq& req) {
  std::string out;
  PutU8(&out, static_cast<std::uint8_t>(DistMsgType::kSnapshotReq));
  PutU32(&out, static_cast<std::uint32_t>(req.segment));
  PutU32(&out, req.index);
  return out;
}

Result<SnapshotReq> DecodeSnapshotReq(std::string_view payload) {
  std::string_view in = payload;
  SnapshotReq req;
  std::uint32_t segment = 0;
  if (!ConsumeType(&in, DistMsgType::kSnapshotReq) ||
      !GetU32(&in, &segment) || !GetU32(&in, &req.index)) {
    return Status::Corruption("snapshot request: truncated");
  }
  req.segment = static_cast<SegmentId>(segment);
  return req;
}

std::string EncodePrepareReq(const PrepareReq& req) {
  std::string out;
  PutU8(&out, static_cast<std::uint8_t>(DistMsgType::kPrepareReq));
  PutU64(&out, req.txn);
  PutU64(&out, req.init_ts);
  PutU32(&out, static_cast<std::uint32_t>(req.segment));
  PutU32(&out, static_cast<std::uint32_t>(req.writes.size()));
  for (const auto& [granule, value] : req.writes) {
    PutU32(&out, granule);
    PutU64(&out, static_cast<std::uint64_t>(value));
  }
  return out;
}

Result<PrepareReq> DecodePrepareReq(std::string_view payload) {
  std::string_view in = payload;
  PrepareReq req;
  std::uint32_t segment = 0;
  std::uint32_t count = 0;
  if (!ConsumeType(&in, DistMsgType::kPrepareReq) || !GetU64(&in, &req.txn) ||
      !GetU64(&in, &req.init_ts) || !GetU32(&in, &segment) ||
      !GetU32(&in, &count)) {
    return Status::Corruption("prepare request: truncated");
  }
  req.segment = static_cast<SegmentId>(segment);
  req.writes.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t granule = 0;
    std::uint64_t value = 0;
    if (!GetU32(&in, &granule) || !GetU64(&in, &value)) {
      return Status::Corruption("prepare request: truncated write list");
    }
    req.writes.emplace_back(granule, static_cast<Value>(value));
  }
  return req;
}

std::string EncodeTxnSegmentReq(DistMsgType type, const TxnSegmentReq& req) {
  std::string out;
  PutU8(&out, static_cast<std::uint8_t>(type));
  PutU64(&out, req.txn);
  PutU64(&out, req.init_ts);
  PutU32(&out, static_cast<std::uint32_t>(req.segment));
  return out;
}

Result<TxnSegmentReq> DecodeTxnSegmentReq(std::string_view payload) {
  std::string_view in = payload;
  TxnSegmentReq req;
  std::uint8_t type = 0;
  std::uint32_t segment = 0;
  if (!GetU8(&in, &type) || !GetU64(&in, &req.txn) ||
      !GetU64(&in, &req.init_ts) || !GetU32(&in, &segment)) {
    return Status::Corruption("txn-segment request: truncated");
  }
  req.segment = static_cast<SegmentId>(segment);
  return req;
}

std::string EncodeClockReq(DistMsgType type) {
  std::string out;
  PutU8(&out, static_cast<std::uint8_t>(type));
  return out;
}

std::string EncodeSlices(const std::vector<ActivitySlice>& slices) {
  std::string out;
  PutU32(&out, static_cast<std::uint32_t>(slices.size()));
  for (const ActivitySlice& slice : slices) EncodeActivitySlice(slice, &out);
  return out;
}

Result<std::vector<ActivitySlice>> DecodeSlices(std::string_view payload) {
  std::string_view in = payload;
  std::uint32_t count = 0;
  if (!GetU32(&in, &count)) {
    return Status::Corruption("slice response: truncated");
  }
  std::vector<ActivitySlice> slices;
  slices.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    HDD_ASSIGN_OR_RETURN(ActivitySlice slice, DecodeActivitySlice(&in));
    slices.push_back(std::move(slice));
  }
  return slices;
}

std::string EncodeVersions(const std::vector<Version>& versions) {
  std::string out;
  PutU32(&out, static_cast<std::uint32_t>(versions.size()));
  for (const Version& v : versions) {
    PutU64(&out, v.order_key);
    PutU64(&out, v.wts);
    PutU64(&out, v.rts);
    PutU64(&out, v.creator);
    PutU64(&out, static_cast<std::uint64_t>(v.value));
  }
  return out;
}

Result<std::vector<Version>> DecodeVersions(std::string_view payload) {
  std::string_view in = payload;
  std::uint32_t count = 0;
  if (!GetU32(&in, &count)) {
    return Status::Corruption("version response: truncated");
  }
  std::vector<Version> versions;
  versions.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Version v;
    std::uint64_t value = 0;
    if (!GetU64(&in, &v.order_key) || !GetU64(&in, &v.wts) ||
        !GetU64(&in, &v.rts) || !GetU64(&in, &v.creator) ||
        !GetU64(&in, &value)) {
      return Status::Corruption("version response: truncated version");
    }
    v.value = static_cast<Value>(value);
    v.committed = true;  // only committed versions are ever shipped
    versions.push_back(v);
  }
  return versions;
}

std::string EncodeTimestamp(Timestamp ts) {
  std::string out;
  PutU64(&out, ts);
  return out;
}

Result<Timestamp> DecodeTimestamp(std::string_view payload) {
  std::string_view in = payload;
  Timestamp ts = 0;
  if (!GetU64(&in, &ts)) {
    return Status::Corruption("clock response: truncated");
  }
  return ts;
}

std::string EncodeDistResponse(const Result<std::string>& result) {
  std::string out;
  if (result.ok()) {
    PutU8(&out, 1);
    out.append(*result);
  } else {
    PutU8(&out, 0);
    PutU32(&out, static_cast<std::uint32_t>(result.status().code()));
    out.append(result.status().message());
  }
  return out;
}

Result<std::string> DecodeDistResponse(std::string_view payload) {
  std::string_view in = payload;
  std::uint8_t ok = 0;
  if (!GetU8(&in, &ok)) {
    return Status::Corruption("response envelope: empty");
  }
  if (ok == 1) return std::string(in);
  std::uint32_t code = 0;
  if (!GetU32(&in, &code)) {
    return Status::Corruption("response envelope: truncated error");
  }
  return Status(static_cast<StatusCode>(code),
                "remote: " + std::string(in));
}

}  // namespace hdd
