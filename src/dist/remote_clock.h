#ifndef HDD_DIST_REMOTE_CLOCK_H_
#define HDD_DIST_REMOTE_CLOCK_H_

#include <atomic>
#include <mutex>

#include "common/clock.h"
#include "common/status.h"
#include "dist/transport.h"

namespace hdd {

/// LogicalClock backed by the cluster's clock service (the node hosting
/// the real clock — node 0 by convention — answers kClockTickReq /
/// kClockNowReq, see DistNode). Socket deployments use this on every
/// other node so all initiation and commit timestamps across the cluster
/// stay totally ordered, exactly as the paper's single logical clock
/// requires.
///
/// Each Tick is one synchronous RPC. That is the honest price of a
/// centralized timestamp authority and is acceptable for the shard
/// deployment's scale; a controller latch may be held across the call,
/// which delays local peers but cannot deadlock — the clock handler
/// touches no controller state.
///
/// Transport failure cannot be surfaced through Tick's signature, so the
/// first error is latched (last_error()) and the clock falls back to a
/// locally monotone counter seeded above the last remote value. The
/// deployment is broken at that point — callers must check last_error()
/// at shutdown — but the fallback keeps the process coherent enough to
/// shut down instead of handing out duplicate or zero timestamps.
class RemoteClock : public LogicalClock {
 public:
  RemoteClock(Transport* transport, int node_id, int clock_node = 0)
      : transport_(transport), node_id_(node_id), clock_node_(clock_node) {}

  Timestamp Tick() override { return Call(DistMsgType::kClockTickReq); }
  Timestamp Now() const override {
    return const_cast<RemoteClock*>(this)->Call(DistMsgType::kClockNowReq);
  }

  Status last_error() const {
    std::lock_guard<std::mutex> lock(mu_);
    return last_error_;
  }

 private:
  Timestamp Call(DistMsgType type);

  Transport* transport_;
  int node_id_;
  int clock_node_;
  mutable std::mutex mu_;
  Status last_error_ = Status::OK();
  /// Highest timestamp seen from the service; the failure fallback counts
  /// on from here.
  std::atomic<Timestamp> last_seen_{0};
};

}  // namespace hdd

#endif  // HDD_DIST_REMOTE_CLOCK_H_
