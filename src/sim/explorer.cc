#include "sim/explorer.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "cc/controller.h"
#include "storage/database.h"
#include "txn/dependency_graph.h"
#include "txn/schedule_analysis.h"

namespace hdd {

namespace {

std::string DescribeScript(const std::vector<int>& script) {
  std::string out = "[";
  for (std::size_t i = 0; i < script.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(script[i]);
  }
  out += "]";
  return out;
}

}  // namespace

SimRunReport RunSimulation(const SimScheduler::Options& options,
                           const SimWorkloadFn& fn) {
  SimScheduler sched(options);
  SimRunReport report;
  report.failure = fn(sched);
  if (report.failure.empty() && sched.deadlocked()) {
    report.failure = "simulated deadlock: " + sched.halt_reason();
  }
  if (report.failure.empty() && sched.decision_limit_hit()) {
    report.failure = "livelock suspected: " + sched.halt_reason();
  }
  report.deadlocked = sched.deadlocked();
  report.decision_limit_hit = sched.decision_limit_hit();
  report.decisions = sched.decisions_made();
  report.faults_injected = sched.faults_injected();
  report.trace = sched.trace();
  report.choices = sched.choices();
  report.choice_arity = sched.choice_arity();
  return report;
}

SeedSweepReport RunSeedSweep(SimScheduler::Options base,
                             std::uint64_t first_seed,
                             std::uint64_t num_seeds, const SimWorkloadFn& fn,
                             const std::string& replay_hint,
                             std::size_t max_failures) {
  SeedSweepReport report;
  for (std::uint64_t i = 0; i < num_seeds; ++i) {
    const std::uint64_t seed = first_seed + i;
    base.seed = seed;
    SimRunReport run = RunSimulation(base, fn);
    ++report.runs;
    report.faults_injected += run.faults_injected;
    if (run.deadlocked) ++report.deadlocks;
    if (run.failure.empty()) continue;
    if (report.failures.size() >= max_failures) continue;

    // A failure is only actionable if it replays: run the exact same
    // options again and demand the identical trace and verdict.
    const SimRunReport replay = RunSimulation(base, fn);
    SimFailure failure;
    failure.seed = seed;
    failure.message = run.failure;
    failure.replayed_identically =
        replay.trace == run.trace && replay.failure == run.failure;
    failure.replay_command = "HDD_SIM_FIRST_SEED=" + std::to_string(seed) +
                             " HDD_SIM_SEEDS=1 " + replay_hint;
    report.failures.push_back(std::move(failure));
  }
  return report;
}

ExploreReport ExploreBoundedSchedules(SimScheduler::Options base,
                                      int branch_depth,
                                      std::uint64_t max_schedules,
                                      const SimWorkloadFn& fn,
                                      std::size_t max_failures) {
  base.scripted = true;
  base.faults = FaultInjectorConfig{};  // script = the only nondeterminism
  ExploreReport report;
  std::vector<int> prefix;
  for (;;) {
    if (report.schedules >= max_schedules) return report;  // not exhausted
    base.script = prefix;
    SimRunReport run = RunSimulation(base, fn);
    ++report.schedules;
    if (!run.failure.empty() && report.failures.size() < max_failures) {
      SimFailure failure;
      failure.seed = report.schedules - 1;
      failure.message = run.failure;
      failure.script = run.choices;
      // Scripted runs replay from their choice script, not a seed.
      failure.replay_command =
          "replay script " + DescribeScript(run.choices);
      const SimRunReport replay = RunSimulation(base, fn);
      failure.replayed_identically =
          replay.trace == run.trace && replay.failure == run.failure;
      report.failures.push_back(std::move(failure));
    }
    // Backtrack: deepest branching decision (within the depth bound) that
    // can still be incremented becomes the new prefix tail.
    const int limit = static_cast<int>(
        std::min<std::size_t>(run.choices.size(),
                              static_cast<std::size_t>(branch_depth)));
    int pos = limit - 1;
    while (pos >= 0 && run.choices[static_cast<std::size_t>(pos)] + 1 >=
                           run.choice_arity[static_cast<std::size_t>(pos)]) {
      --pos;
    }
    if (pos < 0) {
      report.exhausted = true;
      return report;
    }
    prefix.assign(run.choices.begin(), run.choices.begin() + pos + 1);
    ++prefix[static_cast<std::size_t>(pos)];
  }
}

std::string CheckSimHistory(const ConcurrencyController& cc, Database& db,
                            bool replay_bounds) {
  return CheckRecordedHistory(cc.recorder().steps(), cc.recorder().outcomes(),
                              cc.recorder().identities(), db, replay_bounds);
}

std::string CheckRecordedHistory(
    const std::vector<Step>& steps,
    const std::unordered_map<TxnId, TxnState>& outcomes,
    const std::unordered_map<TxnId, ScheduleRecorder::TxnIdentity>& identities,
    Database& db, bool replay_bounds) {
  // 1. Dependency graph acyclic.
  const SerializabilityReport sr = CheckSerializability(steps, outcomes);
  if (!sr.serializable) {
    std::string msg = "dependency cycle:";
    for (const std::string& line :
         ExplainCycle(steps, outcomes, sr.witness_cycle)) {
      msg += " | " + line;
    }
    return msg;
  }

  // 2. The serial witness: topological order replayed as a serial
  // single-version execution must reproduce every read.
  const std::vector<Step> serialized =
      SerializeSchedule(steps, outcomes, sr.serial_order);
  if (!IsSerialSchedule(serialized)) {
    return "serialized witness is not a serial schedule";
  }
  if (!IsMonoversionConsistent(serialized)) {
    return "serial witness is not monoversion-consistent (not 1SR)";
  }

  // 3. Bound replay against the final chains: no transaction may ever
  // have committed a version below a bound that was already served.
  if (replay_bounds) {
    for (const Step& step : steps) {
      if (step.action != Step::Action::kRead) continue;
      if (step.bound == kTimestampMin) continue;
      const Granule& granule = db.granule(step.granule);
      const Version* v = granule.LatestCommittedBefore(step.bound);
      if (v == nullptr) {
        std::ostringstream msg;
        msg << "txn " << step.txn << " read granule (" << step.granule.segment
            << "," << step.granule.index << ") under bound " << step.bound
            << " but the final chain has no committed version below it";
        return msg.str();
      }
      if (v->order_key != step.version) {
        std::ostringstream msg;
        msg << "txn " << step.txn << " read version " << step.version
            << " of granule (" << step.granule.segment << ","
            << step.granule.index << ") under bound " << step.bound
            << " but the final chain's latest committed version below that "
               "bound is "
            << v->order_key << " — a version committed below a served bound";
        return msg.str();
      }
      const auto identity = identities.find(step.txn);
      if (identity != identities.end() && !identity->second.read_only &&
          step.bound > identity->second.init_ts) {
        std::ostringstream msg;
        msg << "update txn " << step.txn << " served at bound " << step.bound
            << " above its initiation time " << identity->second.init_ts;
        return msg.str();
      }
    }
  }

  // 4. Consistent-cut shape for read-only transactions. Like the bound
  // replay, this is specific to bound-carrying (HDD Protocol C) histories:
  // other controllers' read-only reads legitimately record no bound.
  if (!replay_bounds) return "";
  std::map<std::pair<TxnId, SegmentId>, std::set<Timestamp>> bounds;
  std::map<std::pair<TxnId, std::uint64_t>, std::set<std::uint64_t>> seen;
  for (const Step& step : steps) {
    if (step.action != Step::Action::kRead) continue;
    const auto identity = identities.find(step.txn);
    if (identity == identities.end() || !identity->second.read_only) continue;
    if (step.bound == kTimestampMin) {
      return "read-only txn " + std::to_string(step.txn) +
             " read without a recorded bound";
    }
    bounds[{step.txn, step.granule.segment}].insert(step.bound);
    const std::uint64_t granule_key =
        (static_cast<std::uint64_t>(step.granule.segment) << 32) |
        step.granule.index;
    seen[{step.txn, granule_key}].insert(step.version);
  }
  for (const auto& [txn_segment, used] : bounds) {
    if (used.size() != 1) {
      return "read-only txn " + std::to_string(txn_segment.first) + " used " +
             std::to_string(used.size()) + " distinct bounds in segment " +
             std::to_string(txn_segment.second) + " — not a consistent cut";
    }
  }
  for (const auto& [txn_granule, versions] : seen) {
    if (versions.size() != 1) {
      return "read-only txn " + std::to_string(txn_granule.first) +
             " saw multiple versions of one granule";
    }
  }
  return "";
}

}  // namespace hdd
