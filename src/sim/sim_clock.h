#ifndef HDD_SIM_SIM_CLOCK_H_
#define HDD_SIM_SIM_CLOCK_H_

#include "common/clock.h"
#include "sim/sim_scheduler.h"

namespace hdd {

/// Virtual logical clock for deterministic simulation. Time advances only
/// when the code under test asks for a timestamp — there is no wall-clock
/// in a simulated run — and every issued tick is recorded into the
/// scheduler's trace, attributed to the task that drew it. Under a fixed
/// schedule the tick sequence is fully deterministic, so timestamps (txn
/// initiation times, version write times, wall anchors) are identical on
/// replay.
///
/// Tick() is called under controller latches; RecordTick only appends to
/// the trace under the scheduler's leaf mutex and never blocks or yields.
class SimClock : public LogicalClock {
 public:
  explicit SimClock(SimScheduler* scheduler = nullptr)
      : scheduler_(scheduler) {}

  Timestamp Tick() override {
    const Timestamp ts = LogicalClock::Tick();
    if (scheduler_ != nullptr) scheduler_->RecordTick(ts);
    return ts;
  }

 private:
  SimScheduler* scheduler_;
};

}  // namespace hdd

#endif  // HDD_SIM_SIM_CLOCK_H_
