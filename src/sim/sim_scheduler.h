#ifndef HDD_SIM_SIM_SCHEDULER_H_
#define HDD_SIM_SIM_SCHEDULER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "common/sim_hook.h"
#include "sim/fault_injector.h"

namespace hdd {

/// Deterministic cooperative scheduler. Real OS threads carry the tasks,
/// but exactly ONE task is ever RUNNING: all the others are parked on the
/// scheduler, so every interleaving decision — who runs next, when a
/// wakeup is delivered, where a fault fires — is a seeded RNG draw (or a
/// scripted choice, for bounded systematic exploration). Same seed, same
/// options, same code ⇒ byte-for-byte the same schedule, trace and
/// history, which is what makes failing runs replayable.
///
/// Protocol with the code under test (via the SimHook interface):
///  * every worker thread calls RegisterCurrentTask(id) with an id chosen
///    by the caller (NOT registration order — thread startup order is the
///    one nondeterminism the scheduler cannot own, so identity must come
///    from outside). No task runs until all ExpectTasks(n) have
///    registered; the first grant is then a deterministic choice.
///  * instrumented code calls Yield at preemption points while holding no
///    mutex that another task takes exclusively; BlockOn/NotifyAll
///    replace condition-variable waits so wakeup delivery is part of the
///    schedule instead of an OS race.
///  * the executor calls OnTxnAttemptStart before each transaction
///    attempt to arm that attempt's fault plan.
///
/// When no task is runnable and no delayed wakeup or stall is pending,
/// the run is declared deadlocked (a finding in itself) and every task is
/// unwound with SimHalt; a decision budget backstops livelocks.
class SimScheduler : public SimHook {
 public:
  struct Options {
    std::uint64_t seed = 1;
    /// Scheduling-decision budget; exceeding it halts the run (livelock
    /// and runaway-schedule backstop).
    std::uint64_t max_decisions = 1u << 20;
    FaultInjectorConfig faults;
    /// Scripted mode, for bounded systematic exploration: scheduling
    /// choices follow `script` index-by-index and then default to
    /// candidate 0. Only decisions with more than one candidate consume a
    /// script entry (the same positions that are recorded in choices()).
    /// Faults and wakeup perturbations should be disabled in this mode so
    /// the script is the only source of nondeterminism.
    bool scripted = false;
    std::vector<int> script;
  };

  /// Trace event kinds (top byte of each trace word).
  enum class Event : std::uint8_t {
    kGrant = 1,         // data = decision index
    kYield,             // data = site id
    kBlock,             // task parked on a channel
    kWake,              // wakeup delivered immediately
    kDelayedWake,       // delayed wakeup finally delivered
    kSpuriousWake,      // injected spurious wakeup
    kFault,             // data = SimFaultKind
    kTick,              // data = issued timestamp (low 48 bits)
    kHalt,
  };

  explicit SimScheduler(Options options);
  ~SimScheduler() override;  // out of line: Task is incomplete here

  SimScheduler(const SimScheduler&) = delete;
  SimScheduler& operator=(const SimScheduler&) = delete;

  /// Declares how many tasks will register. Call once, before any worker
  /// thread starts; grants begin only when all have registered.
  void ExpectTasks(int count);

  /// Adopts the calling thread as task `task_id` (in [0, count)), installs
  /// the thread hook, and blocks until this task receives its first grant.
  /// Throws SimHalt if the run halts before then.
  void RegisterCurrentTask(int task_id);

  /// Marks the calling task done (normal exit or after SimHalt), hands the
  /// schedule to the next task, and clears the thread hook. Never throws.
  void UnregisterCurrentTask();

  /// Arms the fault plan for the next transaction attempt of the calling
  /// task. No-op for non-sim threads or in scripted mode.
  void OnTxnAttemptStart();

  /// Records a clock tick into the trace (called by SimClock, possibly
  /// under controller latches — never blocks or yields).
  void RecordTick(Timestamp ts);

  // SimHook interface.
  void Yield(const char* site, bool interruptible) override;
  void BlockOn(const void* channel,
               std::unique_lock<std::mutex>& lock) override;
  void NotifyAll(const void* channel) override;

  // Post-run introspection (thread-safe, but meaningful once all tasks
  // have unregistered).
  bool halted() const;
  bool deadlocked() const;
  bool decision_limit_hit() const;
  /// Whether the halt was an injected whole-process crash (the
  /// crash-recovery harness then crashes the WAL storage and recovers).
  bool process_crashed() const;
  std::uint64_t seed() const { return options_.seed; }
  std::string halt_reason() const;
  std::uint64_t decisions_made() const;
  std::uint64_t faults_injected() const;
  /// Full event trace; equality across two runs is the replay check.
  std::vector<std::uint64_t> trace() const;
  /// Branch decisions actually taken (only positions with >1 candidate)
  /// and the number of candidates at each — the systematic explorer
  /// backtracks over these.
  std::vector<int> choices() const;
  std::vector<int> choice_arity() const;
  /// Interned yield-site names; index = site id in kYield trace words.
  std::vector<std::string> sites() const;

  /// Builds a trace word (exposed for tests/trace decoding).
  static std::uint64_t Pack(Event event, int task_id, std::uint64_t data) {
    return (static_cast<std::uint64_t>(event) << 56) |
           (static_cast<std::uint64_t>(task_id & 0xFF) << 48) |
           (data & 0xFFFFFFFFFFFFull);
  }

 private:
  struct Task;

  Task* CurrentTask() const;
  void TraceLocked(Event event, int task_id, std::uint64_t data);
  std::uint64_t InternSiteLocked(const char* site);
  int PickChoiceLocked(int arity);
  void HaltLocked(std::string reason);
  /// Picks and grants the next task (or halts). Caller must hold mu_ and
  /// have descheduled the current task already.
  void ScheduleNextLocked();
  /// Parks the caller until it is granted; throws SimHalt on halt.
  void WaitForGrantLocked(std::unique_lock<std::mutex>& lk, Task& me);

  const Options options_;
  FaultInjector injector_;

  mutable std::mutex mu_;
  Rng rng_;
  std::vector<std::unique_ptr<Task>> tasks_;
  int expected_ = 0;
  int registered_ = 0;
  int done_ = 0;
  int running_ = -1;  // task id, or -1 when none granted
  bool halted_ = false;
  bool deadlocked_ = false;
  bool decision_limit_hit_ = false;
  bool process_crashed_ = false;
  std::string halt_reason_;
  std::uint64_t decisions_made_ = 0;
  std::uint64_t faults_injected_ = 0;
  std::size_t script_pos_ = 0;
  std::vector<std::uint64_t> trace_;
  std::vector<int> choices_;
  std::vector<int> choice_arity_;
  std::unordered_map<std::string, std::uint64_t> site_ids_;
  std::vector<std::string> sites_;

  static thread_local SimScheduler* tls_scheduler_;
  static thread_local Task* tls_task_;
};

}  // namespace hdd

#endif  // HDD_SIM_SIM_SCHEDULER_H_
