#ifndef HDD_SIM_EXPLORER_H_
#define HDD_SIM_EXPLORER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/sim_scheduler.h"
#include "txn/schedule.h"

namespace hdd {

class ConcurrencyController;
class Database;

/// Result of one simulated run.
struct SimRunReport {
  std::string failure;  // empty = the run passed every check
  bool deadlocked = false;
  bool decision_limit_hit = false;
  std::uint64_t decisions = 0;
  std::uint64_t faults_injected = 0;
  std::vector<std::uint64_t> trace;
  std::vector<int> choices;
  std::vector<int> choice_arity;
};

/// One simulated workload: builds a fresh controller + database, runs it
/// to completion under `sched` (workers registered as sim tasks), checks
/// the recorded history, and returns "" or a failure description. It must
/// derive ALL nondeterminism from the scheduler and its own fixed seeds
/// so that the same SimScheduler::Options reproduce the same run.
using SimWorkloadFn = std::function<std::string(SimScheduler&)>;

/// Runs the workload once under a scheduler built from `options` and
/// folds scheduler-level findings (deadlock, decision-budget exhaustion)
/// into the report.
SimRunReport RunSimulation(const SimScheduler::Options& options,
                           const SimWorkloadFn& fn);

struct SimFailure {
  /// The seed (seed sweeps) or schedule index (systematic exploration).
  std::uint64_t seed = 0;
  std::string message;
  /// Whether re-running with identical options reproduced the identical
  /// trace AND failure — the byte-for-byte replay guarantee.
  bool replayed_identically = false;
  /// Ready-to-paste command reproducing exactly this run.
  std::string replay_command;
  /// For systematic exploration: the choice script of the failing run.
  std::vector<int> script;
};

struct SeedSweepReport {
  std::uint64_t runs = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t deadlocks = 0;
  std::vector<SimFailure> failures;
};

/// Runs `num_seeds` consecutive seeds starting at `first_seed`. Every
/// failing seed is immediately re-run with identical options and its
/// trace compared word-for-word (the replay check), and a replay command
/// of the form `HDD_SIM_FIRST_SEED=<seed> HDD_SIM_SEEDS=1 <replay_hint>`
/// is attached. Stops collecting (but keeps counting) after
/// `max_failures` failures.
SeedSweepReport RunSeedSweep(SimScheduler::Options base,
                             std::uint64_t first_seed,
                             std::uint64_t num_seeds, const SimWorkloadFn& fn,
                             const std::string& replay_hint,
                             std::size_t max_failures = 8);

struct ExploreReport {
  std::uint64_t schedules = 0;
  /// True iff the bounded space was fully enumerated (every prefix of
  /// branching decisions up to the depth bound was tried).
  bool exhausted = false;
  std::vector<SimFailure> failures;
};

/// Bounded systematic exploration: depth-first enumeration of every
/// schedule that differs within the first `branch_depth` BRANCHING
/// scheduling decisions (positions where more than one task was
/// runnable), with deterministic choice-0 tails beyond the bound. Faults
/// and wakeup perturbations are disabled so the choice script is the only
/// nondeterminism. Each run replays the previous run's choice prefix,
/// deviates at the deepest incrementable position, and lets the scheduler
/// record the new run's choices — classic stateless model checking.
ExploreReport ExploreBoundedSchedules(SimScheduler::Options base,
                                      int branch_depth,
                                      std::uint64_t max_schedules,
                                      const SimWorkloadFn& fn,
                                      std::size_t max_failures = 8);

/// The full history oracle for simulated runs, combining every check the
/// concurrency tests apply (see tests/test_concurrent_oracle.cc):
///   1. the multi-version dependency graph is acyclic (§2 criterion);
///   2. replaying its topological order as a serial schedule on a
///      single-version store reproduces every read (the 1SR witness);
///   3. if `replay_bounds`: every Protocol A/C read's recorded bound,
///      replayed against the FINAL version chains, returns exactly the
///      version the read saw (no version ever committed below a served
///      bound), and update-txn bounds never exceed the reader's init
///      timestamp;
///   4. also under `replay_bounds`: read-only transactions used one bound
///      per segment and saw one version per granule (consistent-cut
///      shape). Both bound checks apply only to bound-carrying (HDD)
///      histories.
/// Returns "" on success, else a description of the first violation.
/// `replay_bounds` requires that no GC pruned the chains during the run.
std::string CheckSimHistory(const ConcurrencyController& cc, Database& db,
                            bool replay_bounds);

/// Steps-level variant of CheckSimHistory, for histories assembled by
/// hand — the crash-recovery harness concatenates the pre-crash recording
/// (filtered to durable transactions) with the post-recovery run's and
/// checks the COMBINED history for 1SR against the final chains.
std::string CheckRecordedHistory(
    const std::vector<Step>& steps,
    const std::unordered_map<TxnId, TxnState>& outcomes,
    const std::unordered_map<TxnId, ScheduleRecorder::TxnIdentity>& identities,
    Database& db, bool replay_bounds);

}  // namespace hdd

#endif  // HDD_SIM_EXPLORER_H_
