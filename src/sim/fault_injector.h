#ifndef HDD_SIM_FAULT_INJECTOR_H_
#define HDD_SIM_FAULT_INJECTOR_H_

#include "common/rng.h"
#include "common/sim_hook.h"

namespace hdd {

/// What the simulator is allowed to break, and how often. All draws come
/// from the scheduler's seeded RNG, so a given (seed, config) pair always
/// injects the same faults at the same points — fault runs replay exactly
/// like fault-free ones.
struct FaultInjectorConfig {
  /// Per transaction attempt: probability the attempt is forcibly aborted
  /// at a yield point (the executor retries it, like any conflict abort).
  double abort_prob = 0.0;
  /// Per attempt: probability the driver "crashes" mid-transaction — the
  /// attempt is abandoned at a yield point and never retried; recovery
  /// (modelled by the executor) aborts the in-flight transaction.
  double crash_prob = 0.0;
  /// Per attempt: probability the task is stalled (descheduled for
  /// `stall_rounds` scheduling decisions) at a yield point. A stall that
  /// lands inside commit is the paper-relevant "delayed commit": versions
  /// stay uncommitted while readers pile up on them.
  double stall_prob = 0.0;
  /// An armed abort/crash/stall fires after 1..max_countdown yields.
  int max_countdown = 16;
  /// How many scheduling decisions a stall suspends its task for.
  int stall_rounds = 6;

  /// Per scheduling decision: probability one blocked task is woken
  /// spuriously (its predicate re-check loop must tolerate it).
  double spurious_wakeup_prob = 0.0;
  /// Per notified task: probability the wakeup is delayed (delivered
  /// 1..max_wakeup_delay scheduling decisions later — a dropped wakeup
  /// whose effect arrives late, which correct predicate loops absorb).
  double delayed_wakeup_prob = 0.0;
  int max_wakeup_delay = 6;

  /// Per yield point: probability the whole PROCESS dies on the spot —
  /// the scheduler halts every task, the harness then crashes the
  /// simulated WAL storage (losing a random suffix of unsynced bytes) and
  /// runs recovery. Unlike the per-attempt faults above this fires even
  /// at non-interruptible yield points: a real power cut does not respect
  /// critical sections. Keep it small (~1e-3): each firing ends the run.
  double process_crash_prob = 0.0;
};

/// A fault armed for one transaction attempt: fires when `countdown`
/// yield points have passed.
struct FaultPlan {
  SimFaultKind kind = SimFaultKind::kNone;
  int countdown = 0;
  int stall_rounds = 0;
};

/// Draws fault decisions from a shared seeded RNG. Stateless apart from
/// the config: the scheduler owns when each draw happens, which is what
/// keeps the fault stream deterministic per seed.
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultInjectorConfig config) : config_(config) {}

  /// Fault plan for a fresh transaction attempt (kNone most of the time).
  FaultPlan DrawAttemptPlan(Rng& rng) const;

  /// 0 = deliver the wakeup now; otherwise deliver after N decisions.
  /// Consumes randomness only when delayed wakeups are enabled, so
  /// fault-free (systematic) runs see an untouched choice stream.
  int DrawWakeupDelay(Rng& rng) const;

  /// Whether this scheduling decision spuriously wakes a blocked task.
  bool DrawSpuriousWakeup(Rng& rng) const;

  /// Whether the process dies at this yield point. Consumes randomness
  /// only when process crashes are enabled (same discipline as the other
  /// guarded draws).
  bool DrawProcessCrash(Rng& rng) const;

  const FaultInjectorConfig& config() const { return config_; }

 private:
  FaultInjectorConfig config_;
};

}  // namespace hdd

#endif  // HDD_SIM_FAULT_INJECTOR_H_
