#include "sim/fault_injector.h"

#include <algorithm>

namespace hdd {

FaultPlan FaultInjector::DrawAttemptPlan(Rng& rng) const {
  FaultPlan plan;
  const double total =
      config_.abort_prob + config_.crash_prob + config_.stall_prob;
  if (total <= 0.0) return plan;
  const double roll = rng.NextDouble();
  if (roll < config_.abort_prob) {
    plan.kind = SimFaultKind::kAbort;
  } else if (roll < config_.abort_prob + config_.crash_prob) {
    plan.kind = SimFaultKind::kCrash;
  } else if (roll < total) {
    plan.kind = SimFaultKind::kStall;
    plan.stall_rounds = std::max(1, config_.stall_rounds);
  } else {
    return plan;
  }
  plan.countdown =
      1 + static_cast<int>(rng.NextBounded(
              static_cast<std::uint64_t>(std::max(1, config_.max_countdown))));
  return plan;
}

int FaultInjector::DrawWakeupDelay(Rng& rng) const {
  if (config_.delayed_wakeup_prob <= 0.0) return 0;
  if (!rng.NextBool(config_.delayed_wakeup_prob)) return 0;
  return 1 + static_cast<int>(rng.NextBounded(
                 static_cast<std::uint64_t>(
                     std::max(1, config_.max_wakeup_delay))));
}

bool FaultInjector::DrawSpuriousWakeup(Rng& rng) const {
  if (config_.spurious_wakeup_prob <= 0.0) return false;
  return rng.NextBool(config_.spurious_wakeup_prob);
}

bool FaultInjector::DrawProcessCrash(Rng& rng) const {
  if (config_.process_crash_prob <= 0.0) return false;
  return rng.NextBool(config_.process_crash_prob);
}

}  // namespace hdd
