#include "sim/sim_scheduler.h"

#include <algorithm>
#include <cassert>
#include <condition_variable>

namespace hdd {

/// One simulated task. The OS thread carrying it parks on `cv` whenever
/// the task is not RUNNING; all state is guarded by the scheduler's mu_.
struct SimScheduler::Task {
  enum class State {
    kUnborn,    // created by ExpectTasks, thread not yet registered
    kRunnable,  // eligible for the next grant
    kRunning,   // the (single) granted task
    kBlocked,   // parked on a channel, waiting for NotifyAll
    kStalled,   // injected stall: runnable again after stall_until
    kDone,      // unregistered
  };

  int id = -1;
  State state = State::kUnborn;
  const void* channel = nullptr;       // valid while kBlocked
  std::uint64_t pending_wake_at = 0;   // delayed wakeup due at this decision
  std::uint64_t stall_until = 0;       // valid while kStalled
  FaultPlan fault;                     // armed fault for the current attempt
  std::condition_variable cv;
};

thread_local SimScheduler* SimScheduler::tls_scheduler_ = nullptr;
thread_local SimScheduler::Task* SimScheduler::tls_task_ = nullptr;

SimScheduler::SimScheduler(Options options)
    : options_(std::move(options)),
      injector_(options_.faults),
      rng_(options_.seed) {}

SimScheduler::~SimScheduler() = default;

void SimScheduler::ExpectTasks(int count) {
  std::lock_guard<std::mutex> lk(mu_);
  assert(tasks_.empty() && count > 0);
  expected_ = count;
  tasks_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    tasks_.push_back(std::make_unique<Task>());
    tasks_.back()->id = i;
  }
}

SimScheduler::Task* SimScheduler::CurrentTask() const {
  return tls_scheduler_ == this ? tls_task_ : nullptr;
}

void SimScheduler::TraceLocked(Event event, int task_id, std::uint64_t data) {
  trace_.push_back(Pack(event, task_id, data));
}

std::uint64_t SimScheduler::InternSiteLocked(const char* site) {
  // Content-based interning in first-use order: with a deterministic
  // schedule the assignment of ids is itself deterministic, so traces
  // from two runs of the same seed compare equal word-for-word.
  auto [it, inserted] =
      site_ids_.try_emplace(std::string(site), sites_.size());
  if (inserted) sites_.emplace_back(site);
  return it->second;
}

int SimScheduler::PickChoiceLocked(int arity) {
  int index = 0;
  if (options_.scripted) {
    if (script_pos_ < options_.script.size()) {
      index = std::clamp(options_.script[script_pos_], 0, arity - 1);
    }
    ++script_pos_;
  } else {
    index = static_cast<int>(rng_.NextBounded(
        static_cast<std::uint64_t>(arity)));
  }
  choices_.push_back(index);
  choice_arity_.push_back(arity);
  return index;
}

void SimScheduler::HaltLocked(std::string reason) {
  if (halted_) return;
  halted_ = true;
  halt_reason_ = std::move(reason);
  running_ = -1;
  TraceLocked(Event::kHalt, 0xFF, 0);
  for (auto& task : tasks_) task->cv.notify_all();
}

void SimScheduler::ScheduleNextLocked() {
  if (halted_) return;

  // Deliver delayed wakeups that have come due.
  for (auto& task : tasks_) {
    if (task->state == Task::State::kBlocked && task->pending_wake_at != 0 &&
        task->pending_wake_at <= decisions_made_) {
      task->state = Task::State::kRunnable;
      task->pending_wake_at = 0;
      TraceLocked(Event::kDelayedWake, task->id, 0);
    }
  }

  // Optionally perturb: wake one blocked task spuriously. Predicate
  // re-check loops must absorb this; the schedule stays deterministic
  // because the draw comes from the seeded RNG.
  if (!options_.scripted) {
    std::vector<Task*> blocked;
    for (auto& task : tasks_) {
      if (task->state == Task::State::kBlocked) blocked.push_back(task.get());
    }
    if (!blocked.empty() && injector_.DrawSpuriousWakeup(rng_)) {
      Task* victim = blocked[rng_.NextBounded(blocked.size())];
      victim->state = Task::State::kRunnable;
      victim->pending_wake_at = 0;
      TraceLocked(Event::kSpuriousWake, victim->id, 0);
    }
  }

  // Candidates, in ascending task-id order (tasks_ is id-ordered).
  std::vector<Task*> candidates;
  for (auto& task : tasks_) {
    if (task->state == Task::State::kRunnable ||
        (task->state == Task::State::kStalled &&
         task->stall_until <= decisions_made_)) {
      candidates.push_back(task.get());
    }
  }

  if (candidates.empty()) {
    // Last resorts, in order: cut a stall short, force a pending delayed
    // wakeup through. Both model "time passes while everyone waits" — a
    // stall or a late wakeup must never read as a deadlock.
    Task* fallback = nullptr;
    for (auto& task : tasks_) {
      if (task->state == Task::State::kStalled &&
          (fallback == nullptr || task->stall_until < fallback->stall_until)) {
        fallback = task.get();
      }
    }
    if (fallback == nullptr) {
      for (auto& task : tasks_) {
        if (task->state == Task::State::kBlocked &&
            task->pending_wake_at != 0 &&
            (fallback == nullptr ||
             task->pending_wake_at < fallback->pending_wake_at)) {
          fallback = task.get();
        }
      }
      if (fallback != nullptr) {
        fallback->state = Task::State::kRunnable;
        fallback->pending_wake_at = 0;
        TraceLocked(Event::kDelayedWake, fallback->id, 0);
      }
    }
    if (fallback != nullptr) {
      candidates.push_back(fallback);
    } else if (done_ == expected_) {
      running_ = -1;
      return;
    } else {
      int blocked_count = 0;
      for (auto& task : tasks_) {
        if (task->state == Task::State::kBlocked) ++blocked_count;
      }
      deadlocked_ = true;
      HaltLocked("deadlock: " + std::to_string(blocked_count) +
                 " task(s) blocked with no wakeup pending");
      return;
    }
  }

  const int index = candidates.size() > 1
                        ? PickChoiceLocked(static_cast<int>(candidates.size()))
                        : 0;
  Task* next = candidates[static_cast<std::size_t>(index)];
  next->state = Task::State::kRunning;
  next->stall_until = 0;
  running_ = next->id;
  ++decisions_made_;
  TraceLocked(Event::kGrant, next->id, static_cast<std::uint64_t>(index));
  if (decisions_made_ > options_.max_decisions) {
    decision_limit_hit_ = true;
    HaltLocked("decision budget exhausted (" +
               std::to_string(options_.max_decisions) + ")");
    return;  // HaltLocked woke everyone; the grantee will throw SimHalt.
  }
  next->cv.notify_all();
}

void SimScheduler::WaitForGrantLocked(std::unique_lock<std::mutex>& lk,
                                      Task& me) {
  me.cv.wait(lk, [&] { return halted_ || running_ == me.id; });
  if (halted_) throw SimHalt{};
}

void SimScheduler::RegisterCurrentTask(int task_id) {
  Task* me = nullptr;
  {
    std::unique_lock<std::mutex> lk(mu_);
    assert(task_id >= 0 &&
           task_id < static_cast<int>(tasks_.size()));
    me = tasks_[static_cast<std::size_t>(task_id)].get();
    assert(me->state == Task::State::kUnborn);
    // Install the hook before the first grant so the task sees the sim
    // from its very first instruction.
    tls_scheduler_ = this;
    tls_task_ = me;
    ThreadSimHook() = this;
    me->state = Task::State::kRunnable;
    ++registered_;
    if (registered_ == expected_) ScheduleNextLocked();
    WaitForGrantLocked(lk, *me);  // may throw SimHalt
  }
}

void SimScheduler::UnregisterCurrentTask() {
  Task* me = CurrentTask();
  if (me != nullptr) {
    std::lock_guard<std::mutex> lk(mu_);
    me->state = Task::State::kDone;
    ++done_;
    if (running_ == me->id) {
      running_ = -1;
      ScheduleNextLocked();
    }
  }
  tls_task_ = nullptr;
  tls_scheduler_ = nullptr;
  ThreadSimHook() = nullptr;
}

void SimScheduler::OnTxnAttemptStart() {
  Task* me = CurrentTask();
  if (me == nullptr || options_.scripted) return;
  std::lock_guard<std::mutex> lk(mu_);
  me->fault = injector_.DrawAttemptPlan(rng_);
}

void SimScheduler::RecordTick(Timestamp ts) {
  std::lock_guard<std::mutex> lk(mu_);
  Task* me = CurrentTask();
  TraceLocked(Event::kTick, me != nullptr ? me->id : 0xFF, ts);
}

void SimScheduler::Yield(const char* site, bool interruptible) {
  Task* me = CurrentTask();
  assert(me != nullptr && "Yield from a thread this scheduler never adopted");
  std::unique_lock<std::mutex> lk(mu_);
  if (halted_) throw SimHalt{};
  TraceLocked(Event::kYield, me->id, InternSiteLocked(site));

  // Whole-process death. Deliberately checked before the per-attempt fault
  // plan and honored even at non-interruptible sites: a power cut does not
  // respect critical sections, and the in-memory state it abandons is
  // discarded anyway — only the WAL survives into recovery.
  if (!options_.scripted && injector_.DrawProcessCrash(rng_)) {
    process_crashed_ = true;
    TraceLocked(Event::kFault, me->id,
                static_cast<std::uint64_t>(SimFaultKind::kCrash));
    HaltLocked(std::string("process crash injected at ") + site);
    throw SimHalt{};
  }

  if (me->fault.kind != SimFaultKind::kNone) {
    if (me->fault.countdown > 0) --me->fault.countdown;
    if (me->fault.countdown <= 0) {
      if (me->fault.kind == SimFaultKind::kStall) {
        const int rounds = std::max(1, me->fault.stall_rounds);
        me->fault = FaultPlan{};
        ++faults_injected_;
        TraceLocked(Event::kFault, me->id,
                    static_cast<std::uint64_t>(SimFaultKind::kStall));
        me->state = Task::State::kStalled;
        me->stall_until = decisions_made_ + static_cast<std::uint64_t>(rounds);
        ScheduleNextLocked();
        WaitForGrantLocked(lk, *me);
        return;
      }
      if (interruptible) {
        const SimFaultKind kind = me->fault.kind;
        me->fault = FaultPlan{};
        ++faults_injected_;
        TraceLocked(Event::kFault, me->id, static_cast<std::uint64_t>(kind));
        // The task stays RUNNING: it unwinds to the executor's attempt
        // boundary and keeps executing the abort/retry path from there.
        throw SimFault{kind};
      }
      // Armed but this site cannot unwind (partially applied effects);
      // the fault stays at countdown 0 and fires at the next
      // interruptible yield.
    }
  }

  me->state = Task::State::kRunnable;
  ScheduleNextLocked();
  WaitForGrantLocked(lk, *me);
}

void SimScheduler::BlockOn(const void* channel,
                           std::unique_lock<std::mutex>& lock) {
  Task* me = CurrentTask();
  assert(me != nullptr && "BlockOn from a thread this scheduler never adopted");
  // The caller's lock is released while parked (condition-variable
  // semantics) and — because descheduled tasks hold no exclusive locks —
  // reacquired without contention after the grant. On SimHalt the lock
  // stays released; callers hold it via RAII guards that track ownership.
  lock.unlock();
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (halted_) throw SimHalt{};
    TraceLocked(Event::kBlock, me->id, 0);
    me->state = Task::State::kBlocked;
    me->channel = channel;
    me->pending_wake_at = 0;
    ScheduleNextLocked();
    WaitForGrantLocked(lk, *me);
    me->channel = nullptr;
  }
  lock.lock();
}

void SimScheduler::NotifyAll(const void* channel) {
  std::lock_guard<std::mutex> lk(mu_);
  if (halted_) return;
  for (auto& task : tasks_) {
    if (task->state != Task::State::kBlocked || task->channel != channel) {
      continue;
    }
    const int delay =
        options_.scripted ? 0 : injector_.DrawWakeupDelay(rng_);
    if (delay > 0) {
      // Dropped-then-late wakeup: the task stays blocked and becomes
      // runnable only `delay` decisions later (or as a last resort when
      // nothing else can run — never a false deadlock).
      const std::uint64_t due = decisions_made_ + static_cast<std::uint64_t>(delay);
      if (task->pending_wake_at == 0 || due < task->pending_wake_at) {
        task->pending_wake_at = due;
      }
      TraceLocked(Event::kDelayedWake, task->id, 1);
    } else {
      task->state = Task::State::kRunnable;
      task->pending_wake_at = 0;
      TraceLocked(Event::kWake, task->id, 0);
    }
  }
}

bool SimScheduler::halted() const {
  std::lock_guard<std::mutex> lk(mu_);
  return halted_;
}

bool SimScheduler::deadlocked() const {
  std::lock_guard<std::mutex> lk(mu_);
  return deadlocked_;
}

bool SimScheduler::decision_limit_hit() const {
  std::lock_guard<std::mutex> lk(mu_);
  return decision_limit_hit_;
}

bool SimScheduler::process_crashed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return process_crashed_;
}

std::string SimScheduler::halt_reason() const {
  std::lock_guard<std::mutex> lk(mu_);
  return halt_reason_;
}

std::uint64_t SimScheduler::decisions_made() const {
  std::lock_guard<std::mutex> lk(mu_);
  return decisions_made_;
}

std::uint64_t SimScheduler::faults_injected() const {
  std::lock_guard<std::mutex> lk(mu_);
  return faults_injected_;
}

std::vector<std::uint64_t> SimScheduler::trace() const {
  std::lock_guard<std::mutex> lk(mu_);
  return trace_;
}

std::vector<int> SimScheduler::choices() const {
  std::lock_guard<std::mutex> lk(mu_);
  return choices_;
}

std::vector<int> SimScheduler::choice_arity() const {
  std::lock_guard<std::mutex> lk(mu_);
  return choice_arity_;
}

std::vector<std::string> SimScheduler::sites() const {
  std::lock_guard<std::mutex> lk(mu_);
  return sites_;
}

}  // namespace hdd
