#include "graph/report.h"

#include <algorithm>
#include <sstream>

#include "graph/algorithms.h"

namespace hdd {

std::vector<int> HierarchyLevels(const TstAnalysis& tst) {
  const Digraph& reduction = tst.reduction();
  const int n = reduction.num_nodes();
  std::vector<int> level(n, 0);
  // Arcs point lower -> higher; process in reverse topological order so
  // every node sees its (already-leveled) higher neighbors.
  auto order = TopologicalOrder(reduction);
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const NodeId u = *it;
    for (NodeId higher : reduction.OutNeighbors(u)) {
      level[u] = std::max(level[u], level[higher] + 1);
    }
  }
  return level;
}

std::string DescribeHierarchy(const HierarchySchema& schema) {
  std::ostringstream os;
  const TstAnalysis& tst = schema.tst();
  const std::vector<int> levels = HierarchyLevels(tst);

  os << "hierarchical decomposition: " << schema.num_segments()
     << " segments\n";
  for (SegmentId s = 0; s < schema.num_segments(); ++s) {
    os << "  D" << s << " '" << schema.segment_name(s) << "' level "
       << levels[s];
    std::vector<SegmentId> reads_up, read_by;
    for (SegmentId other = 0; other < schema.num_segments(); ++other) {
      if (tst.graph().HasArc(s, other)) reads_up.push_back(other);
      if (tst.graph().HasArc(other, s)) read_by.push_back(other);
    }
    if (!reads_up.empty()) {
      os << "; reads";
      for (SegmentId r : reads_up) {
        os << " D" << r
           << (tst.IsCriticalArc(s, r) ? "(critical)" : "(induced)");
      }
    }
    if (!read_by.empty()) {
      os << "; read by";
      for (SegmentId r : read_by) os << " D" << r;
    }
    os << "\n";
  }

  // Declared transaction types.
  os << "transaction types:\n";
  for (const auto& type : schema.spec().transaction_types) {
    os << "  " << type.name << ": writes D" << type.root_segment;
    if (!type.read_segments.empty()) {
      os << ", reads";
      for (SegmentId r : type.read_segments) os << " D" << r;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace hdd
