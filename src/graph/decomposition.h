#ifndef HDD_GRAPH_DECOMPOSITION_H_
#define HDD_GRAPH_DECOMPOSITION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/digraph.h"

namespace hdd {

/// Result of a merge-based legalization: `labels[u]` maps original node u
/// to its merged group in [0, num_groups). The quotient graph is a
/// transitive semi-tree.
struct MergePlan {
  std::vector<int> labels;
  int num_groups = 0;
  /// How many merge steps were taken (0 when the input was already legal);
  /// a granularity-loss indicator for §7.2.1 experiments.
  int merges = 0;
};

/// §7.2.1: transforms an arbitrary digraph (typically an acyclic DHG that
/// fails the semi-tree requirement) into a legal partition by merging
/// segments, preserving granularity as much as the greedy heuristic
/// allows. Directed cycles are first collapsed via SCC condensation; then,
/// while the transitive reduction of the quotient has an undirected cycle,
/// the endpoints of a cycle-closing critical arc are merged. Merging the
/// endpoints of a *reduction* arc can never create a directed cycle (a
/// reduction arc admits no alternative directed path), so the loop
/// terminates with a transitive semi-tree.
MergePlan MakeTstMergePlan(const Digraph& g);

/// Access footprint of one update-transaction type over raw granules, the
/// input to §7.2.2 decomposition-by-data-analysis.
struct AccessFootprint {
  std::vector<std::uint32_t> write_granules;
  std::vector<std::uint32_t> read_granules;
};

/// Result of decomposition from data analysis.
struct Decomposition {
  /// granule -> segment.
  std::vector<int> granule_segment;
  int num_segments = 0;
  /// The resulting legal (TST) data hierarchy graph over the segments.
  Digraph dhg;
  int merges = 0;
};

/// §7.2.2: clusters `num_granules` granules into a legal hierarchical
/// decomposition given the access footprints of all update-transaction
/// types. Granules co-written by one type are first unioned (a type must
/// write into a single segment); the induced segment graph is then
/// legalized with `MakeTstMergePlan`.
Result<Decomposition> DecomposeFromAccessSets(
    std::uint32_t num_granules, const std::vector<AccessFootprint>& types);

}  // namespace hdd

#endif  // HDD_GRAPH_DECOMPOSITION_H_
