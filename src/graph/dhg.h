#ifndef HDD_GRAPH_DHG_H_
#define HDD_GRAPH_DHG_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "graph/digraph.h"
#include "graph/semi_tree.h"

namespace hdd {

/// Identifier of a data segment in a partition. The paper's transaction
/// classification is one class per segment (`t ∈ T_i` iff `t` writes
/// `D_i`), so class ids coincide with segment ids throughout the library.
using SegmentId = int;
using ClassId = int;

/// Fictitious class id used for ad-hoc read-only transactions that are
/// "hosted" below the lowest class of a critical path (paper §5.0).
inline constexpr ClassId kReadOnlyClass = -1;

/// A declared update-transaction type: writes only inside `root_segment`,
/// may additionally read the listed other segments. Several types may share
/// a root segment — they belong to the same transaction class.
struct TransactionTypeSpec {
  std::string name;
  SegmentId root_segment = 0;
  std::vector<SegmentId> read_segments;
};

/// Raw description of a hierarchical decomposition: segment names plus the
/// update-transaction types that will run against it.
struct PartitionSpec {
  std::vector<std::string> segment_names;
  std::vector<TransactionTypeSpec> transaction_types;
};

/// A validated TST-hierarchical decomposition. Owns the data hierarchy
/// graph (DHG) built per the paper's §3.2 rule — arc `D_i -> D_j` iff some
/// declared type writes in `D_i` and accesses `D_j` — and the semi-tree
/// analysis that the activity-link machinery queries. Since classes map
/// 1:1 onto segments, the transaction hierarchy graph (THG) is the same
/// digraph under the class reading, so no second graph is materialized.
class HierarchySchema {
 public:
  /// Validates the spec: ids in range, and DHG must be a transitive
  /// semi-tree. Returns InvalidArgument otherwise.
  static Result<HierarchySchema> Create(PartitionSpec spec);

  int num_segments() const {
    return static_cast<int>(spec_.segment_names.size());
  }
  const PartitionSpec& spec() const { return spec_; }
  const Digraph& dhg() const { return tst_.graph(); }
  const TstAnalysis& tst() const { return tst_; }
  const std::string& segment_name(SegmentId s) const {
    return spec_.segment_names[s];
  }

  /// Class of a declared transaction type == its root segment.
  ClassId ClassOfType(int type_index) const {
    return spec_.transaction_types[type_index].root_segment;
  }

 private:
  HierarchySchema(PartitionSpec spec, TstAnalysis tst)
      : spec_(std::move(spec)), tst_(std::move(tst)) {}

  PartitionSpec spec_;
  TstAnalysis tst_;
};

/// Builds the (unvalidated) DHG digraph from a spec. Exposed separately so
/// the decomposition tooling can inspect illegal graphs.
Result<Digraph> BuildDhg(const PartitionSpec& spec);

/// Explains WHY a digraph fails the transitive-semi-tree requirement, in
/// terms a schema designer can act on: either the directed cycle of
/// mutually-derived segments, or the two distinct undirected critical
/// paths (a "diamond") between a pair of segments. Returns an empty
/// string when the graph is legal. `names` (optional) labels nodes.
std::string ExplainIllegalDhg(const Digraph& dhg,
                              const std::vector<std::string>& names = {});

}  // namespace hdd

#endif  // HDD_GRAPH_DHG_H_
