#include "graph/dhg.h"

#include <numeric>
#include <sstream>

#include "graph/algorithms.h"

namespace hdd {

namespace {

std::string NodeName(NodeId node, const std::vector<std::string>& names) {
  if (node < static_cast<NodeId>(names.size())) return names[node];
  return "D" + std::to_string(node);
}

}  // namespace

std::string ExplainIllegalDhg(const Digraph& dhg,
                              const std::vector<std::string>& names) {
  auto cycle = FindCycle(dhg);
  if (cycle.has_value()) {
    std::ostringstream os;
    os << "segments are mutually derived (directed cycle): ";
    for (std::size_t i = 0; i < cycle->size(); ++i) {
      if (i > 0) os << " -> ";
      os << NodeName((*cycle)[i], names);
    }
    os << ". Merge these segments into one class, or split the "
          "transaction types that write into each other's inputs.";
    return os.str();
  }
  const Digraph reduction = TransitiveReduction(dhg);
  // Find a critical arc closing an undirected cycle and name the two
  // distinct undirected paths it creates.
  std::vector<int> component(reduction.num_nodes());
  std::iota(component.begin(), component.end(), 0);
  Digraph forest(reduction.num_nodes());
  for (const auto& [u, v] : reduction.Arcs()) {
    auto existing = UndirectedTreePath(forest, u, v);
    if (existing.has_value()) {
      std::ostringstream os;
      os << "two distinct derivation paths between "
         << NodeName(u, names) << " and " << NodeName(v, names)
         << " (a diamond): the critical arc " << NodeName(u, names)
         << " -> " << NodeName(v, names) << " closes the path ";
      for (std::size_t i = 0; i < existing->size(); ++i) {
        if (i > 0) os << " - ";
        os << NodeName((*existing)[i], names);
      }
      os << ". Merge two of the segments on this cycle (see "
            "MakeTstMergePlan) or remove one of the read dependencies.";
      return os.str();
    }
    forest.AddArc(u, v);
  }
  return "";
}

Result<Digraph> BuildDhg(const PartitionSpec& spec) {
  const int n = static_cast<int>(spec.segment_names.size());
  Digraph dhg(n);
  for (const auto& type : spec.transaction_types) {
    if (type.root_segment < 0 || type.root_segment >= n) {
      return Status::InvalidArgument("transaction type '" + type.name +
                                     "': root segment out of range");
    }
    for (SegmentId s : type.read_segments) {
      if (s < 0 || s >= n) {
        return Status::InvalidArgument("transaction type '" + type.name +
                                       "': read segment out of range");
      }
      if (s != type.root_segment) dhg.AddArc(type.root_segment, s);
    }
  }
  return dhg;
}

Result<HierarchySchema> HierarchySchema::Create(PartitionSpec spec) {
  HDD_ASSIGN_OR_RETURN(Digraph dhg, BuildDhg(spec));
  auto tst = TstAnalysis::Create(dhg);
  if (!tst.ok()) {
    std::ostringstream os;
    os << "partition is not TST-hierarchical: "
       << ExplainIllegalDhg(dhg, spec.segment_names);
    return Status::InvalidArgument(os.str());
  }
  return HierarchySchema(std::move(spec), std::move(tst).value());
}

}  // namespace hdd
