#include "graph/auto_decompose.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <sstream>
#include <string>

#include "graph/semi_tree.h"

namespace hdd {
namespace {

void SortUnique(std::vector<std::uint32_t>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

std::uint32_t MaxId(const std::vector<std::uint32_t>& v) {
  return v.empty() ? 0 : v.back() + 1;  // sorted
}

/// Whether the validity contract covers this signature: observed commits
/// are facts and always must be containable; declared-only intents only
/// once they reach the support bar.
bool MustContain(const TracedFootprint& type, std::uint64_t min_support) {
  return type.observed_count > 0 || type.count >= min_support;
}

/// Segments a footprint's writes land in, deduplicated. Usually one; more
/// than one means the decomposition cannot contain the footprint.
std::vector<int> WriteSegments(const TracedFootprint& type,
                               const Decomposition& dec) {
  std::vector<int> segs;
  for (std::uint32_t g : type.write_granules) {
    const int s = dec.granule_segment[g];
    if (std::find(segs.begin(), segs.end(), s) == segs.end()) {
      segs.push_back(s);
    }
  }
  return segs;
}

/// Checks one update signature against a candidate structure. Returns an
/// empty string when containable, else a description of the violation.
std::string ContainmentViolation(const TracedFootprint& type,
                                 const Decomposition& dec,
                                 const TstAnalysis& tst) {
  const std::vector<int> write_segs = WriteSegments(type, dec);
  if (write_segs.size() > 1) {
    std::ostringstream out;
    out << "co-written granule set (first granule " << type.write_granules[0]
        << ") split across " << write_segs.size()
        << " segments — a type must write exactly one segment";
    return out.str();
  }
  const int root = write_segs[0];
  for (std::uint32_t g : type.read_granules) {
    const int s = dec.granule_segment[g];
    if (s == root || tst.Higher(s, root)) continue;
    std::ostringstream out;
    out << "read of granule " << g << " (segment " << s
        << ") not on a critical path above root segment " << root
        << " — conflict edge not containable by Protocol A/B";
    return out.str();
  }
  return {};
}

}  // namespace

void FootprintTrace::Add(std::vector<std::uint32_t> writes,
                         std::vector<std::uint32_t> reads, bool declared) {
  SortUnique(&writes);
  SortUnique(&reads);
  // Writes dominate: drop own rereads from the read set.
  std::vector<std::uint32_t> pure_reads;
  pure_reads.reserve(reads.size());
  std::set_difference(reads.begin(), reads.end(), writes.begin(), writes.end(),
                      std::back_inserter(pure_reads));
  granule_upper_bound_ = std::max(
      granule_upper_bound_, std::max(MaxId(writes), MaxId(pure_reads)));
  ++num_transactions_;
  for (TracedFootprint& t : types_) {
    if (t.write_granules == writes && t.read_granules == pure_reads) {
      ++t.count;
      if (!declared) ++t.observed_count;
      return;
    }
  }
  const bool read_only = writes.empty();
  types_.push_back(TracedFootprint{std::move(writes), std::move(pure_reads),
                                   read_only, 1, declared ? 0u : 1u});
}

void FootprintTrace::Merge(const FootprintTrace& other) {
  for (const TracedFootprint& t : other.types_) {
    bool found = false;
    for (TracedFootprint& mine : types_) {
      if (mine.write_granules == t.write_granules &&
          mine.read_granules == t.read_granules) {
        mine.count += t.count;
        mine.observed_count += t.observed_count;
        found = true;
        break;
      }
    }
    if (!found) types_.push_back(t);
  }
  num_transactions_ += other.num_transactions_;
  granule_upper_bound_ =
      std::max(granule_upper_bound_, other.granule_upper_bound_);
}

std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t>
FootprintTrace::ConflictEdges() const {
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> edges;
  for (const TracedFootprint& t : types_) {
    for (std::uint32_t w : t.write_granules) {
      for (std::uint32_t other : t.write_granules) {
        if (other != w) edges[{w, other}] += t.count;
      }
      for (std::uint32_t r : t.read_granules) edges[{w, r}] += t.count;
    }
  }
  return edges;
}

double ConflictDistance(const FootprintTrace& a, const FootprintTrace& b) {
  const auto ea = a.ConflictEdges();
  const auto eb = b.ConflictEdges();
  if (ea.empty() && eb.empty()) return 0.0;
  if (ea.empty() || eb.empty()) return 1.0;
  double total_a = 0, total_b = 0;
  for (const auto& [edge, w] : ea) total_a += static_cast<double>(w);
  for (const auto& [edge, w] : eb) total_b += static_cast<double>(w);
  double overlap = 0;
  for (const auto& [edge, w] : ea) {
    const auto it = eb.find(edge);
    if (it == eb.end()) continue;
    overlap += std::min(static_cast<double>(w) / total_a,
                        static_cast<double>(it->second) / total_b);
  }
  return 1.0 - overlap;
}

double ModeledTraceCost(const FootprintTrace& trace, const Decomposition& dec,
                        const InferenceCosts& costs) {
  double total = 0;
  for (const TracedFootprint& type : trace.types()) {
    const double n = static_cast<double>(type.count);
    if (type.read_only) {
      total += n * costs.read_version_us *
               static_cast<double>(type.read_granules.size());
      continue;
    }
    total += n * costs.write_version_us *
             static_cast<double>(type.write_granules.size());
    const std::vector<int> roots = WriteSegments(type, dec);
    for (std::uint32_t g : type.read_granules) {
      const int s = dec.granule_segment[g];
      const bool own = std::find(roots.begin(), roots.end(), s) != roots.end();
      total += n * (costs.read_version_us +
                    (own ? costs.registration_us : costs.link_eval_us));
    }
  }
  return total;
}

Status ValidateDecomposition(const Decomposition& dec,
                             std::uint32_t num_granules) {
  if (dec.granule_segment.size() != num_granules) {
    return Status::InvalidArgument(
        "decomposition does not cover the granule space: maps " +
        std::to_string(dec.granule_segment.size()) + " of " +
        std::to_string(num_granules) + " granules");
  }
  if (num_granules > 0 && dec.num_segments <= 0) {
    return Status::InvalidArgument("decomposition has no segments");
  }
  for (std::size_t g = 0; g < dec.granule_segment.size(); ++g) {
    const int s = dec.granule_segment[g];
    if (s < 0 || s >= dec.num_segments) {
      return Status::InvalidArgument(
          "granule " + std::to_string(g) + " mapped to segment " +
          std::to_string(s) + ", outside [0, " +
          std::to_string(dec.num_segments) + ") — not covered by exactly one "
          "class");
    }
  }
  if (dec.dhg.num_nodes() != dec.num_segments) {
    return Status::InvalidArgument(
        "DHG has " + std::to_string(dec.dhg.num_nodes()) + " nodes for " +
        std::to_string(dec.num_segments) + " segments");
  }
  if (!IsTransitiveSemiTree(dec.dhg)) {
    return Status::InvalidArgument("DHG is not a transitive semi-tree: " +
                                   ExplainIllegalDhg(dec.dhg));
  }
  return Status::OK();
}

Status ValidateAgainstTrace(const Decomposition& dec,
                            const FootprintTrace& trace,
                            std::uint64_t min_declared_support) {
  if (trace.granule_upper_bound() > dec.granule_segment.size()) {
    return Status::InvalidArgument(
        "trace references granule " +
        std::to_string(trace.granule_upper_bound() - 1) +
        " beyond the decomposition's " +
        std::to_string(dec.granule_segment.size()) + " granules");
  }
  HDD_ASSIGN_OR_RETURN(TstAnalysis tst, TstAnalysis::Create(dec.dhg));
  for (std::size_t i = 0; i < trace.types().size(); ++i) {
    const TracedFootprint& type = trace.types()[i];
    if (type.read_only) continue;  // Protocol C contains these under any wall.
    if (!MustContain(type, min_declared_support)) continue;
    const std::string violation = ContainmentViolation(type, dec, tst);
    if (!violation.empty()) {
      return Status::InvalidArgument("traced type " + std::to_string(i) +
                                     " (support " +
                                     std::to_string(type.count) +
                                     "): " + violation);
    }
  }
  return Status::OK();
}

PartitionSpec SpecFromDecomposition(
    const Decomposition& dec, const std::vector<TracedFootprint>& types) {
  PartitionSpec spec;
  spec.segment_names.reserve(static_cast<std::size_t>(dec.num_segments));
  for (int s = 0; s < dec.num_segments; ++s) {
    spec.segment_names.push_back("S" + std::to_string(s));
  }
  for (std::size_t i = 0; i < types.size(); ++i) {
    const TracedFootprint& type = types[i];
    if (type.read_only || type.write_granules.empty()) continue;
    TransactionTypeSpec t;
    t.name = "t" + std::to_string(i);
    t.root_segment = dec.granule_segment[type.write_granules[0]];
    for (std::uint32_t g : type.read_granules) {
      const SegmentId s = dec.granule_segment[g];
      if (s == t.root_segment) continue;
      if (std::find(t.read_segments.begin(), t.read_segments.end(), s) ==
          t.read_segments.end()) {
        t.read_segments.push_back(s);
      }
    }
    std::sort(t.read_segments.begin(), t.read_segments.end());
    spec.transaction_types.push_back(std::move(t));
  }
  return spec;
}

Result<InferredDecomposition> InferDecomposition(
    std::uint32_t num_granules, const FootprintTrace& trace,
    const InferenceOptions& options) {
  if (trace.granule_upper_bound() > num_granules) {
    return Status::InvalidArgument(
        "trace references granules beyond num_granules");
  }
  std::vector<std::size_t> updates;  // indices of update signatures
  for (std::size_t i = 0; i < trace.types().size(); ++i) {
    if (!trace.types()[i].read_only) updates.push_back(i);
  }
  if (updates.empty()) {
    return Status::InvalidArgument(
        "trace holds no update footprints — nothing to infer a class "
        "structure from");
  }
  // The shaping set: signatures at or above the support threshold. Never
  // empty — when pruning would drop everything, the heaviest signature
  // stays (an all-pruned inference is undefined).
  std::vector<bool> shaping(trace.types().size(), false);
  std::size_t num_shaping = 0;
  for (std::size_t i : updates) {
    if (trace.types()[i].count >= options.min_support) {
      shaping[i] = true;
      ++num_shaping;
    }
  }
  if (num_shaping == 0) {
    std::size_t heaviest = updates[0];
    for (std::size_t i : updates) {
      if (trace.types()[i].count > trace.types()[heaviest].count) heaviest = i;
    }
    shaping[heaviest] = true;
    ++num_shaping;
  }

  // Containment-repair loop: infer from the shaping set, then check the
  // WHOLE trace; a pruned signature the candidate cannot contain is
  // promoted and the inference re-run. Terminates: each round promotes at
  // least one signature and there are finitely many.
  Decomposition dec;
  std::uint64_t restored = 0;
  for (;;) {
    std::vector<AccessFootprint> footprints;
    footprints.reserve(num_shaping);
    for (std::size_t i : updates) {
      if (!shaping[i]) continue;
      footprints.push_back(AccessFootprint{trace.types()[i].write_granules,
                                           trace.types()[i].read_granules});
    }
    HDD_ASSIGN_OR_RETURN(dec,
                         DecomposeFromAccessSets(num_granules, footprints));
    HDD_ASSIGN_OR_RETURN(TstAnalysis tst, TstAnalysis::Create(dec.dhg));
    bool repaired = false;
    for (std::size_t i : updates) {
      if (!shaping[i] && !MustContain(trace.types()[i], options.min_support)) {
        continue;  // declared-only intent below the bar: stays pruned.
      }
      const std::string violation =
          ContainmentViolation(trace.types()[i], dec, tst);
      if (violation.empty()) continue;
      if (shaping[i]) {
        // DecomposeFromAccessSets guarantees containment for the
        // footprints that shaped it; a violation here is a bug.
        return Status::Internal("inference produced a structure violating a "
                                "shaping footprint: " +
                                violation);
      }
      shaping[i] = true;
      ++num_shaping;
      ++restored;
      repaired = true;
    }
    if (!repaired) break;
  }

  InferredDecomposition out;
  out.support_threshold = options.min_support;
  out.types_observed = trace.types().size();
  out.types_shaping = num_shaping;
  out.types_pruned = updates.size() - num_shaping;
  out.types_restored = restored;
  out.modeled_cost_us = ModeledTraceCost(trace, dec, options.costs);
  for (std::size_t i : updates) {
    if (shaping[i]) out.shaping_types.push_back(trace.types()[i]);
  }
  out.spec = SpecFromDecomposition(dec, out.shaping_types);
  out.decomposition = std::move(dec);

  if (options.mutation_misclassify_granule &&
      out.decomposition.num_segments >= 2) {
    // TEST-ONLY canary: mis-classify one granule written by a contained
    // signature. Not every move is a fault — shifting a lone writer into
    // another segment that still sits below its read segments yields a
    // DIFFERENT but valid decomposition — so the candidate search keeps
    // the first (victim, target) whose structure the validation net must
    // reject. A downstream "escape" can then only mean the net itself
    // regressed, never that the mutation happened to be harmless.
    for (std::size_t i : updates) {
      const TracedFootprint& type = trace.types()[i];
      if (!MustContain(type, options.min_support)) continue;
      if (type.write_granules.empty()) continue;
      const std::uint32_t victim = type.write_granules[0];
      const int home = out.decomposition.granule_segment[victim];
      for (int target = 0; target < out.decomposition.num_segments;
           ++target) {
        if (target == home) continue;
        out.decomposition.granule_segment[victim] = target;
        const bool rejected =
            !ValidateDecomposition(out.decomposition, num_granules).ok() ||
            !ValidateAgainstTrace(out.decomposition, trace,
                                  options.min_support)
                 .ok();
        if (rejected) {
          out.mutated = true;
          break;
        }
      }
      if (out.mutated) break;
      out.decomposition.granule_segment[victim] = home;
    }
  }
  return out;
}

Result<InferredDecomposition> InferBestDecomposition(
    std::uint32_t num_granules, const FootprintTrace& trace,
    const InferenceOptions& options) {
  std::uint64_t max_count = 0;
  for (const TracedFootprint& t : trace.types()) {
    if (!t.read_only) max_count = std::max(max_count, t.count);
  }
  const std::uint64_t floor = std::max<std::uint64_t>(1, options.min_support);
  InferenceOptions sweep = options;
  sweep.mutation_misclassify_granule = false;
  bool have_best = false;
  InferredDecomposition best;
  std::uint64_t best_threshold = floor;
  for (std::uint64_t t = floor; t <= std::max(floor, max_count); t *= 2) {
    sweep.min_support = t;
    HDD_ASSIGN_OR_RETURN(InferredDecomposition candidate,
                         InferDecomposition(num_granules, trace, sweep));
    const bool better =
        !have_best || candidate.modeled_cost_us < best.modeled_cost_us ||
        (candidate.modeled_cost_us == best.modeled_cost_us &&
         candidate.decomposition.merges < best.decomposition.merges);
    if (better) {
      best = std::move(candidate);
      best_threshold = t;
      have_best = true;
    }
  }
  if (!options.mutation_misclassify_granule) return best;
  // Re-infer the winner with the canary armed so the mutation applies to
  // exactly the structure a healthy run would have swapped in.
  InferenceOptions final_options = options;
  final_options.min_support = best_threshold;
  return InferDecomposition(num_granules, trace, final_options);
}

}  // namespace hdd
