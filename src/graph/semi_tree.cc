#include "graph/semi_tree.h"

#include <cassert>

namespace hdd {

bool IsSemiTree(const Digraph& g) { return UnderlyingUndirectedIsForest(g); }

bool IsTransitiveSemiTree(const Digraph& g) {
  if (!IsAcyclic(g)) return false;
  return IsSemiTree(TransitiveReduction(g));
}

TstAnalysis::TstAnalysis(Digraph g)
    : graph_(std::move(g)),
      reduction_(TransitiveReduction(graph_)),
      reduction_closure_(TransitiveClosureMatrix(reduction_)) {}

Result<TstAnalysis> TstAnalysis::Create(const Digraph& g) {
  if (!IsAcyclic(g)) {
    return Status::InvalidArgument("graph is not acyclic");
  }
  if (!IsSemiTree(TransitiveReduction(g))) {
    return Status::InvalidArgument(
        "transitive reduction is not a semi-tree");
  }
  return TstAnalysis(g);
}

std::optional<std::vector<NodeId>> TstAnalysis::CriticalPath(NodeId i,
                                                             NodeId j) const {
  if (i == j) return std::vector<NodeId>{i};
  if (!reduction_closure_[i][j]) return std::nullopt;
  // In a semi-tree the undirected path is unique, so the directed critical
  // path, when it exists, is that same node sequence.
  auto path = UndirectedTreePath(reduction_, i, j);
  assert(path.has_value());
  // Verify all arcs run i-to-j; reachability guarantees it, but assert in
  // debug builds.
  for (std::size_t k = 0; k + 1 < path->size(); ++k) {
    assert(reduction_.HasArc((*path)[k], (*path)[k + 1]));
  }
  return path;
}

bool TstAnalysis::Higher(NodeId j, NodeId i) const {
  if (i == j) return false;
  return reduction_closure_[i][j];
}

std::optional<std::vector<NodeId>> TstAnalysis::Ucp(NodeId i, NodeId j) const {
  return UndirectedTreePath(reduction_, i, j);
}

}  // namespace hdd
