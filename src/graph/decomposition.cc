#include "graph/decomposition.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "graph/algorithms.h"
#include "graph/semi_tree.h"

namespace hdd {

namespace {

// Simple union-find over [0, n).
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  // Returns false when already joined.
  bool Union(int a, int b) {
    const int ra = Find(a), rb = Find(b);
    if (ra == rb) return false;
    parent_[ra] = rb;
    return true;
  }

  // Compacts roots into dense labels [0, k); returns k.
  int Compact(std::vector<int>* labels) {
    const int n = static_cast<int>(parent_.size());
    labels->assign(n, -1);
    std::vector<int> root_label(n, -1);
    int next = 0;
    for (int i = 0; i < n; ++i) {
      const int r = Find(i);
      if (root_label[r] == -1) root_label[r] = next++;
      (*labels)[i] = root_label[r];
    }
    return next;
  }

 private:
  std::vector<int> parent_;
};

// Finds one arc of the transitive reduction that closes an undirected
// cycle, or returns false when the underlying undirected graph is a
// forest. Also reports antiparallel pairs as closing arcs.
bool FindClosingArc(const Digraph& reduction, NodeId* u, NodeId* v) {
  for (const auto& [a, b] : reduction.Arcs()) {
    if (reduction.HasArc(b, a)) {
      *u = a;
      *v = b;
      return true;
    }
  }
  UnionFind uf(reduction.num_nodes());
  for (const auto& [a, b] : reduction.Arcs()) {
    if (!uf.Union(a, b)) {
      *u = a;
      *v = b;
      return true;
    }
  }
  return false;
}

}  // namespace

MergePlan MakeTstMergePlan(const Digraph& g) {
  const int n = g.num_nodes();
  MergePlan plan;
  plan.labels.resize(n);
  std::iota(plan.labels.begin(), plan.labels.end(), 0);
  plan.num_groups = n;

  // Start by collapsing directed cycles.
  {
    int num_scc = 0;
    std::vector<int> scc = StronglyConnectedComponents(g, &num_scc);
    if (num_scc != n) plan.merges += n - num_scc;
    plan.labels = scc;
    plan.num_groups = num_scc;
  }

  for (;;) {
    Digraph quotient = Quotient(g, plan.labels, plan.num_groups);
    // Merging along reduction arcs preserves acyclicity, and the initial
    // condensation is acyclic, so the quotient stays a DAG.
    assert(IsAcyclic(quotient));
    Digraph reduction = TransitiveReduction(quotient);
    NodeId u, v;
    if (!FindClosingArc(reduction, &u, &v)) {
      plan.num_groups = quotient.num_nodes();
      return plan;
    }
    // Merge groups u and v.
    UnionFind uf(plan.num_groups);
    uf.Union(u, v);
    std::vector<int> group_labels;
    const int next = uf.Compact(&group_labels);
    for (int& label : plan.labels) label = group_labels[label];
    plan.num_groups = next;
    ++plan.merges;
  }
}

Result<Decomposition> DecomposeFromAccessSets(
    std::uint32_t num_granules, const std::vector<AccessFootprint>& types) {
  UnionFind uf(static_cast<int>(num_granules));
  for (const auto& type : types) {
    for (std::uint32_t granule : type.write_granules) {
      if (granule >= num_granules) {
        return Status::InvalidArgument("write granule out of range");
      }
    }
    for (std::uint32_t granule : type.read_granules) {
      if (granule >= num_granules) {
        return Status::InvalidArgument("read granule out of range");
      }
    }
    // A type writes into a single segment: union its write set.
    for (std::size_t i = 1; i < type.write_granules.size(); ++i) {
      uf.Union(static_cast<int>(type.write_granules[0]),
               static_cast<int>(type.write_granules[i]));
    }
  }
  std::vector<int> seg_of_granule;
  const int num_initial = uf.Compact(&seg_of_granule);

  // Segment graph induced by the footprints.
  Digraph seg_graph(num_initial);
  for (const auto& type : types) {
    if (type.write_granules.empty()) continue;
    const int root = seg_of_granule[type.write_granules[0]];
    for (std::uint32_t granule : type.read_granules) {
      const int s = seg_of_granule[granule];
      if (s != root) seg_graph.AddArc(root, s);
    }
  }

  MergePlan plan = MakeTstMergePlan(seg_graph);
  Decomposition out;
  out.num_segments = plan.num_groups;
  out.merges = plan.merges;
  out.granule_segment.resize(num_granules);
  for (std::uint32_t granule = 0; granule < num_granules; ++granule) {
    out.granule_segment[granule] = plan.labels[seg_of_granule[granule]];
  }
  out.dhg = Quotient(seg_graph, plan.labels, plan.num_groups);
  assert(IsTransitiveSemiTree(out.dhg));
  return out;
}

}  // namespace hdd
