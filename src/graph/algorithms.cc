#include "graph/algorithms.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <stack>

namespace hdd {

namespace {

enum class Color { kWhite, kGray, kBlack };

// Iterative DFS that reports the first back arc (u, v) found, i.e. the
// entry point of a directed cycle. Returns true when a cycle exists.
bool FindBackArc(const Digraph& g, NodeId* cycle_u, NodeId* cycle_v,
                 std::vector<NodeId>* parent) {
  const int n = g.num_nodes();
  std::vector<Color> color(n, Color::kWhite);
  parent->assign(n, -1);
  for (NodeId root = 0; root < n; ++root) {
    if (color[root] != Color::kWhite) continue;
    // Stack of (node, iterator position into OutNeighbors).
    std::stack<std::pair<NodeId, std::set<NodeId>::const_iterator>> stack;
    color[root] = Color::kGray;
    stack.push({root, g.OutNeighbors(root).begin()});
    while (!stack.empty()) {
      auto& [u, it] = stack.top();
      if (it == g.OutNeighbors(u).end()) {
        color[u] = Color::kBlack;
        stack.pop();
        continue;
      }
      const NodeId v = *it;
      ++it;
      if (color[v] == Color::kGray) {
        *cycle_u = u;
        *cycle_v = v;
        return true;
      }
      if (color[v] == Color::kWhite) {
        color[v] = Color::kGray;
        (*parent)[v] = u;
        stack.push({v, g.OutNeighbors(v).begin()});
      }
    }
  }
  return false;
}

}  // namespace

bool IsAcyclic(const Digraph& g) {
  NodeId u, v;
  std::vector<NodeId> parent;
  return !FindBackArc(g, &u, &v, &parent);
}

std::optional<std::vector<NodeId>> FindCycle(const Digraph& g) {
  NodeId u, v;
  std::vector<NodeId> parent;
  if (!FindBackArc(g, &u, &v, &parent)) return std::nullopt;
  // Back arc u -> v closes the cycle v -> ... -> u -> v.
  std::vector<NodeId> cycle;
  for (NodeId x = u; x != v; x = parent[x]) cycle.push_back(x);
  cycle.push_back(v);
  std::reverse(cycle.begin(), cycle.end());
  cycle.push_back(v);  // first == last
  return cycle;
}

std::optional<std::vector<NodeId>> TopologicalOrder(const Digraph& g) {
  const int n = g.num_nodes();
  std::vector<int> indegree(n, 0);
  for (NodeId u = 0; u < n; ++u) {
    indegree[u] = static_cast<int>(g.InNeighbors(u).size());
  }
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<NodeId> frontier;
  for (NodeId u = 0; u < n; ++u) {
    if (indegree[u] == 0) frontier.push_back(u);
  }
  while (!frontier.empty()) {
    const NodeId u = frontier.back();
    frontier.pop_back();
    order.push_back(u);
    for (NodeId v : g.OutNeighbors(u)) {
      if (--indegree[v] == 0) frontier.push_back(v);
    }
  }
  if (static_cast<int>(order.size()) != n) return std::nullopt;
  return order;
}

std::vector<NodeId> ReachableFrom(const Digraph& g, NodeId from) {
  std::vector<bool> seen(g.num_nodes(), false);
  std::vector<NodeId> stack = {from};
  std::vector<NodeId> result;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (NodeId v : g.OutNeighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        result.push_back(v);
        stack.push_back(v);
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<std::vector<bool>> TransitiveClosureMatrix(const Digraph& g) {
  const int n = g.num_nodes();
  std::vector<std::vector<bool>> closure(n, std::vector<bool>(n, false));
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : ReachableFrom(g, u)) closure[u][v] = true;
  }
  return closure;
}

Digraph TransitiveClosure(const Digraph& g) {
  Digraph closure(g.num_nodes());
  const auto matrix = TransitiveClosureMatrix(g);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (matrix[u][v] && u != v) closure.AddArc(u, v);
    }
  }
  return closure;
}

Digraph TransitiveReduction(const Digraph& g) {
  assert(IsAcyclic(g));
  // For a DAG, arc u->v is redundant iff v is reachable from some other
  // out-neighbor w of u. Quadratic in arcs times reachability, which is
  // ample for DHG/THG-sized graphs.
  const auto closure = TransitiveClosureMatrix(g);
  Digraph reduction(g.num_nodes());
  for (const auto& [u, v] : g.Arcs()) {
    bool redundant = false;
    for (NodeId w : g.OutNeighbors(u)) {
      if (w != v && closure[w][v]) {
        redundant = true;
        break;
      }
    }
    if (!redundant) reduction.AddArc(u, v);
  }
  return reduction;
}

std::vector<int> StronglyConnectedComponents(const Digraph& g,
                                             int* num_components) {
  const int n = g.num_nodes();
  std::vector<int> comp(n, -1), low(n, 0), disc(n, -1);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> scc_stack;
  int timer = 0;
  int components = 0;

  // Iterative Tarjan.
  struct Frame {
    NodeId u;
    std::set<NodeId>::const_iterator it;
  };
  for (NodeId root = 0; root < n; ++root) {
    if (disc[root] != -1) continue;
    std::stack<Frame> frames;
    disc[root] = low[root] = timer++;
    scc_stack.push_back(root);
    on_stack[root] = true;
    frames.push({root, g.OutNeighbors(root).begin()});
    while (!frames.empty()) {
      auto& [u, it] = frames.top();
      if (it != g.OutNeighbors(u).end()) {
        const NodeId v = *it;
        ++it;
        if (disc[v] == -1) {
          disc[v] = low[v] = timer++;
          scc_stack.push_back(v);
          on_stack[v] = true;
          frames.push({v, g.OutNeighbors(v).begin()});
        } else if (on_stack[v]) {
          low[u] = std::min(low[u], disc[v]);
        }
        continue;
      }
      if (low[u] == disc[u]) {
        for (;;) {
          const NodeId w = scc_stack.back();
          scc_stack.pop_back();
          on_stack[w] = false;
          comp[w] = components;
          if (w == u) break;
        }
        ++components;
      }
      const NodeId done = u;
      frames.pop();
      if (!frames.empty()) {
        low[frames.top().u] = std::min(low[frames.top().u], low[done]);
      }
    }
  }
  if (num_components != nullptr) *num_components = components;
  return comp;
}

Digraph Quotient(const Digraph& g, const std::vector<int>& labels,
                 int num_labels) {
  assert(static_cast<int>(labels.size()) == g.num_nodes());
  Digraph q(num_labels);
  for (const auto& [u, v] : g.Arcs()) {
    if (labels[u] != labels[v]) q.AddArc(labels[u], labels[v]);
  }
  return q;
}

bool UnderlyingUndirectedIsForest(const Digraph& g) {
  const int n = g.num_nodes();
  // Antiparallel arcs are two undirected paths between their endpoints.
  for (const auto& [u, v] : g.Arcs()) {
    if (g.HasArc(v, u)) return false;
  }
  // Union-find cycle check over undirected edges.
  std::vector<int> parent(n);
  for (int i = 0; i < n; ++i) parent[i] = i;
  std::function<int(int)> find = [&](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const auto& [u, v] : g.Arcs()) {
    const int ru = find(u), rv = find(v);
    if (ru == rv) return false;
    parent[ru] = rv;
  }
  return true;
}

std::optional<std::vector<NodeId>> UndirectedTreePath(const Digraph& g,
                                                      NodeId a, NodeId b) {
  assert(UnderlyingUndirectedIsForest(g));
  if (a == b) return std::vector<NodeId>{a};
  const int n = g.num_nodes();
  std::vector<NodeId> parent(n, -1);
  std::vector<bool> seen(n, false);
  std::vector<NodeId> stack = {a};
  seen[a] = true;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    auto visit = [&](NodeId v) {
      if (!seen[v]) {
        seen[v] = true;
        parent[v] = u;
        stack.push_back(v);
      }
    };
    for (NodeId v : g.OutNeighbors(u)) visit(v);
    for (NodeId v : g.InNeighbors(u)) visit(v);
  }
  if (!seen[b]) return std::nullopt;
  std::vector<NodeId> path;
  for (NodeId x = b; x != -1; x = parent[x]) path.push_back(x);
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace hdd
