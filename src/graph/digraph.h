#ifndef HDD_GRAPH_DIGRAPH_H_
#define HDD_GRAPH_DIGRAPH_H_

#include <cstddef>
#include <set>
#include <string>
#include <vector>

namespace hdd {

/// Node handle in a `Digraph`. Dense, 0-based.
using NodeId = int;

/// Simple directed graph over dense node ids with set-based adjacency.
/// No parallel arcs; self-loops are rejected (the paper's DHG/THG and
/// transaction-dependency graphs never need them: DHG arcs require
/// `i != j` and TG self-dependencies are meaningless).
class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(int num_nodes)
      : out_(num_nodes), in_(num_nodes) {}

  int num_nodes() const { return static_cast<int>(out_.size()); }
  std::size_t num_arcs() const { return num_arcs_; }

  /// Appends a node, returning its id.
  NodeId AddNode();

  /// Adds arc u -> v. Returns false (and does nothing) when the arc already
  /// exists or u == v.
  bool AddArc(NodeId u, NodeId v);

  /// Removes arc u -> v if present; returns whether it was present.
  bool RemoveArc(NodeId u, NodeId v);

  bool HasArc(NodeId u, NodeId v) const;

  const std::set<NodeId>& OutNeighbors(NodeId u) const { return out_[u]; }
  const std::set<NodeId>& InNeighbors(NodeId u) const { return in_[u]; }

  /// All arcs as (u, v) pairs, ordered.
  std::vector<std::pair<NodeId, NodeId>> Arcs() const;

  /// Structural equality (same node count and arc set).
  friend bool operator==(const Digraph& a, const Digraph& b) {
    return a.out_ == b.out_;
  }

  /// Graphviz dump for debugging / docs.
  std::string ToDot(const std::vector<std::string>& labels = {}) const;

 private:
  std::vector<std::set<NodeId>> out_;
  std::vector<std::set<NodeId>> in_;
  std::size_t num_arcs_ = 0;
};

}  // namespace hdd

#endif  // HDD_GRAPH_DIGRAPH_H_
