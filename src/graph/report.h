#ifndef HDD_GRAPH_REPORT_H_
#define HDD_GRAPH_REPORT_H_

#include <string>

#include "graph/dhg.h"

namespace hdd {

/// Human-readable analysis of a validated decomposition: per-segment
/// level (longest critical path to a top segment), critical vs induced
/// arcs, readers per segment, and which class PickWallAnchor-style logic
/// would anchor time walls at. For operators and the decompose tooling.
std::string DescribeHierarchy(const HierarchySchema& schema);

/// Level of each node in a TST: 0 for top segments (no higher segment),
/// otherwise 1 + max level of... measured DOWNWARD: the length of the
/// longest critical path from the node up to a top segment.
std::vector<int> HierarchyLevels(const TstAnalysis& tst);

}  // namespace hdd

#endif  // HDD_GRAPH_REPORT_H_
