#include "graph/digraph.h"

#include <cassert>
#include <sstream>

namespace hdd {

NodeId Digraph::AddNode() {
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<NodeId>(out_.size()) - 1;
}

bool Digraph::AddArc(NodeId u, NodeId v) {
  assert(u >= 0 && u < num_nodes() && v >= 0 && v < num_nodes());
  if (u == v) return false;
  if (!out_[u].insert(v).second) return false;
  in_[v].insert(u);
  ++num_arcs_;
  return true;
}

bool Digraph::RemoveArc(NodeId u, NodeId v) {
  assert(u >= 0 && u < num_nodes() && v >= 0 && v < num_nodes());
  if (out_[u].erase(v) == 0) return false;
  in_[v].erase(u);
  --num_arcs_;
  return true;
}

bool Digraph::HasArc(NodeId u, NodeId v) const {
  assert(u >= 0 && u < num_nodes() && v >= 0 && v < num_nodes());
  return out_[u].count(v) > 0;
}

std::vector<std::pair<NodeId, NodeId>> Digraph::Arcs() const {
  std::vector<std::pair<NodeId, NodeId>> arcs;
  arcs.reserve(num_arcs_);
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (NodeId v : out_[u]) arcs.emplace_back(u, v);
  }
  return arcs;
}

std::string Digraph::ToDot(const std::vector<std::string>& labels) const {
  std::ostringstream os;
  os << "digraph G {\n";
  for (NodeId u = 0; u < num_nodes(); ++u) {
    os << "  n" << u;
    if (u < static_cast<NodeId>(labels.size())) {
      os << " [label=\"" << labels[u] << "\"]";
    }
    os << ";\n";
  }
  for (const auto& [u, v] : Arcs()) {
    os << "  n" << u << " -> n" << v << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace hdd
