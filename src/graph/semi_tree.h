#ifndef HDD_GRAPH_SEMI_TREE_H_
#define HDD_GRAPH_SEMI_TREE_H_

#include <optional>
#include <vector>

#include "common/status.h"
#include "graph/algorithms.h"
#include "graph/digraph.h"

namespace hdd {

/// True iff `g` is a semi-tree: at most one undirected path between any
/// pair of nodes (paper §3.1). Every arc of a semi-tree is critical.
bool IsSemiTree(const Digraph& g);

/// True iff `g` is a transitive semi-tree: acyclic and its transitive
/// reduction is a semi-tree (paper §3.1).
bool IsTransitiveSemiTree(const Digraph& g);

/// Precomputed structure over a transitive semi-tree: its transitive
/// reduction (whose arcs are exactly the *critical arcs*), critical paths,
/// the `higher-than` partial order and undirected critical paths (UCPs).
///
/// This is the query interface both the DHG validation and the activity
/// link functions (`A`, `B`, `E`) are built on.
class TstAnalysis {
 public:
  /// Fails with InvalidArgument when `g` is not a transitive semi-tree.
  static Result<TstAnalysis> Create(const Digraph& g);

  const Digraph& graph() const { return graph_; }
  /// The transitive reduction; its arcs are the critical arcs.
  const Digraph& reduction() const { return reduction_; }

  bool IsCriticalArc(NodeId u, NodeId v) const {
    return reduction_.HasArc(u, v);
  }

  /// The unique critical path from i to j (node sequence i ... j, all arcs
  /// critical and directed i-to-j), or nullopt when none exists.
  /// CriticalPath(i, i) == {i}.
  std::optional<std::vector<NodeId>> CriticalPath(NodeId i, NodeId j) const;

  /// Paper's `T_j ↑ T_i` ("j higher than i"): a critical path i -> j
  /// exists. Higher(i, i) is false.
  bool Higher(NodeId j, NodeId i) const;

  /// The unique undirected critical path between i and j in the reduction
  /// (node sequence i ... j), or nullopt when i and j are in different
  /// weak components. Ucp(i, i) == {i}.
  std::optional<std::vector<NodeId>> Ucp(NodeId i, NodeId j) const;

 private:
  explicit TstAnalysis(Digraph g);

  Digraph graph_;
  Digraph reduction_;
  std::vector<std::vector<bool>> reduction_closure_;
};

}  // namespace hdd

#endif  // HDD_GRAPH_SEMI_TREE_H_
