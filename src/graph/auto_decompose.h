#ifndef HDD_GRAPH_AUTO_DECOMPOSE_H_
#define HDD_GRAPH_AUTO_DECOMPOSE_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "graph/decomposition.h"
#include "graph/dhg.h"

namespace hdd {

/// Workload-driven automatic decomposition (ROADMAP "transparent CC",
/// after Transparent Concurrency Control and Automating Fine Concurrency
/// Control — see PAPERS.md): accumulate per-transaction read/write
/// granule footprints into a conflict graph, derive a legal TST
/// decomposition from it with §7.2.2's data analysis, and prove the
/// result valid before anything trusts it for Protocol A/B admission.
///
/// The flow is trace -> infer -> validate:
///
///   FootprintTrace trace;
///   trace.Add(/*writes=*/{0, 1}, /*reads=*/{7});     // observed txns
///   auto inferred = InferBestDecomposition(num_granules, trace);
///   HDD_RETURN_IF_ERROR(ValidateDecomposition(inferred->decomposition,
///                                             num_granules));
///   HDD_RETURN_IF_ERROR(ValidateAgainstTrace(inferred->decomposition,
///                                            trace));
///
/// Validation is not optional hygiene: the controller admits Protocol A
/// reads and Protocol B writes purely from the class structure, so a
/// wrong inference is a wrong admission rule. Everything downstream
/// (decompose_tool --infer, the online Redecomposer, the sim sweeps)
/// validates every candidate before swapping it in — and the
/// `mutation_misclassify_granule` canary exists to prove that the
/// validation actually catches a bad one.

/// One distinct transaction footprint (signature) accumulated by a
/// FootprintTrace, over flat granule ids in [0, num_granules). Sets are
/// sorted and duplicate-free; `count` is the number of traced
/// transactions sharing the signature (its support).
struct TracedFootprint {
  std::vector<std::uint32_t> write_granules;
  std::vector<std::uint32_t> read_granules;
  bool read_only = false;
  /// Total traced transactions with this signature (observed + declared).
  std::uint64_t count = 0;
  /// How many of `count` were OBSERVED commits, as opposed to declared
  /// admission-time intents. The distinction carries weight: an observed
  /// conflict edge happened and must be containable unconditionally,
  /// while a declared-only pattern below the min-support bar may be
  /// pruned — don't coarsen the hierarchy for an intent announced once
  /// and never run.
  std::uint64_t observed_count = 0;
};

/// Accumulator of per-transaction read/write granule sets. Deduplicates
/// identical footprints into weighted signatures and derives the
/// intra-transaction conflict graph used for drift detection. Not
/// thread-safe: fold from one thread (the obs-layer FootprintRecorder is
/// the concurrent front end; see src/obs/footprint.h).
class FootprintTrace {
 public:
  /// Folds one transaction's footprint. Granule ids are flat; reads that
  /// also appear as writes are dropped from the read set (the write
  /// dominates — the paper's types declare reads *outside* the root
  /// segment, and Protocol B covers own-segment rereads). A transaction
  /// with no writes is a read-only footprint. `declared` marks an
  /// admission-time intent rather than an observed commit (see
  /// TracedFootprint::observed_count).
  void Add(std::vector<std::uint32_t> writes, std::vector<std::uint32_t> reads,
           bool declared = false);

  /// Folds another trace into this one (used to merge a drift window
  /// into the running baseline).
  void Merge(const FootprintTrace& other);

  /// Distinct signatures, in first-seen order (deterministic).
  const std::vector<TracedFootprint>& types() const { return types_; }
  std::uint64_t num_transactions() const { return num_transactions_; }
  /// 1 + the highest granule id seen (0 for an empty trace).
  std::uint32_t granule_upper_bound() const { return granule_upper_bound_; }

  /// The weighted intra-transaction conflict graph: key (w, a) counts
  /// transactions that wrote granule `w` while also accessing granule
  /// `a` (read or write, a != w). These co-access edges are exactly what
  /// shapes the decomposition — co-writes force granules into one
  /// segment, write+read pairs force DHG arcs — so a shift in this graph
  /// is a shift in the structure the workload wants.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t>
  ConflictEdges() const;

 private:
  std::vector<TracedFootprint> types_;
  std::uint64_t num_transactions_ = 0;
  std::uint32_t granule_upper_bound_ = 0;
};

/// Distance in [0, 1] between the normalized conflict-edge weight
/// distributions of two traces (1 - the weighted-Jaccard overlap of
/// their edge multisets). 0 when the access patterns are identical up to
/// scale, 1 when they share no conflict edge. Two empty traces are at
/// distance 0; an empty trace is at distance 1 from any non-empty one.
/// This is the drift signal the online Redecomposer thresholds.
double ConflictDistance(const FootprintTrace& a, const FootprintTrace& b);

/// Flat prices for scoring a candidate decomposition, mirroring the
/// CostModel fields the score uses (engine/cost_model.h — kept as plain
/// doubles so the graph layer does not depend on the engine library;
/// engine/redecompose.h converts). Defaults equal the CostModel defaults.
struct InferenceCosts {
  double read_version_us = 1.0;
  double write_version_us = 2.0;
  double registration_us = 2.0;
  double link_eval_us = 0.5;
};

struct InferenceOptions {
  /// Minimum signature support: footprints seen fewer times than this do
  /// not SHAPE the decomposition (they neither union co-written granules
  /// nor add DHG arcs). Rare ad-hoc patterns would otherwise merge the
  /// whole hierarchy into one class. The safety contract is asymmetric:
  /// a pruned footprint with at least one OBSERVED commit that the
  /// shaped structure cannot contain is always restored (see
  /// InferredDecomposition::types_restored — observed conflict edges are
  /// facts), while a DECLARED-only footprint below this bar stays pruned
  /// — an intent announced fewer than min_support times does not get to
  /// coarsen the hierarchy. The output is therefore always valid for
  /// every observed footprint and every declared one at or above the
  /// bar, which is exactly what ValidateAgainstTrace checks when handed
  /// the same threshold.
  std::uint64_t min_support = 1;
  /// Prices for ModeledTraceCost scoring in InferBestDecomposition.
  InferenceCosts costs;
  /// TEST-ONLY mutation canary: after inference, silently move one
  /// co-written granule to a different segment — a mis-classification
  /// that makes the structure lie about write ownership. The validation
  /// pass (ValidateAgainstTrace's co-write cover check) MUST reject the
  /// result; a pipeline that swaps it in anyway has a broken safety
  /// story, and the sim sweep's canary test proves ours is not.
  bool mutation_misclassify_granule = false;
};

/// An inferred decomposition plus the provenance a caller needs to audit
/// it. `spec` is the equivalent declared form (synthetic segment/type
/// names) accepted by HierarchySchema::Create.
struct InferredDecomposition {
  Decomposition decomposition;
  PartitionSpec spec;
  /// The update signatures that shaped the structure (post-restoration),
  /// in trace order — what an online driver must legalize through
  /// Restructure to realize this decomposition on a live controller.
  std::vector<TracedFootprint> shaping_types;
  std::uint64_t support_threshold = 1;
  std::uint64_t types_observed = 0;  // distinct signatures in the trace
  std::uint64_t types_shaping = 0;   // signatures that shaped the result
  std::uint64_t types_pruned = 0;    // below min_support, containable
  std::uint64_t types_restored = 0;  // below min_support, had to shape
  double modeled_cost_us = 0;        // ModeledTraceCost of the trace
  /// True when the mutation canary actually fired (it needs >= 2 segments
  /// to have a wrong one to pick) — escape accounting keys off this.
  bool mutated = false;
};

/// §7.2.2 decomposition from traced access sets, with min-support
/// pruning. Update signatures with count >= min_support shape the
/// structure through DecomposeFromAccessSets; every signature (shaping
/// or pruned, but not read-only — Protocol C contains those under any
/// structure) is then checked for containment, and any pruned signature
/// the candidate cannot contain is promoted into the shaping set and the
/// inference re-run. The result therefore always satisfies
/// ValidateDecomposition + ValidateAgainstTrace for the full trace —
/// unless the mutation canary is armed, in which case it deliberately
/// does not. Fails on an empty/read-only-only trace (nothing to infer).
Result<InferredDecomposition> InferDecomposition(
    std::uint32_t num_granules, const FootprintTrace& trace,
    const InferenceOptions& options = {});

/// Sweeps min_support over {1, 2, 4, ...} up to the trace's maximum
/// signature count, scores each candidate with ModeledTraceCost, and
/// returns the cheapest (ties break toward fewer merges, then lower
/// support). This is where the max-concurrency trade-off is made: higher
/// support keeps the hierarchy finer (more Protocol A reads at
/// link_eval_us instead of registered reads at registration_us), at the
/// price of restoring the pruned types that turn out uncontainable.
Result<InferredDecomposition> InferBestDecomposition(
    std::uint32_t num_granules, const FootprintTrace& trace,
    const InferenceOptions& options = {});

/// Models the synchronization cost of replaying `trace` under `dec`:
/// writes create versions; reads in the transaction's own (root) segment
/// register (registration_us + read_version_us); reads of other segments
/// go through Protocol A (link_eval_us + read_version_us); read-only
/// footprints read under a wall (read_version_us only). Footprints whose
/// writes span segments (illegal under `dec`) are priced as if the
/// spanned segments were merged — callers validate legality separately.
double ModeledTraceCost(const FootprintTrace& trace, const Decomposition& dec,
                        const InferenceCosts& costs);

/// Structural validation shared by decompose_tool and the inference
/// path: every granule mapped to exactly one in-range segment, the DHG
/// over exactly num_segments nodes, and the DHG a transitive semi-tree.
/// Errors name the violated invariant.
Status ValidateDecomposition(const Decomposition& dec,
                             std::uint32_t num_granules);

/// Semantic validation against a trace: every update signature's writes
/// land in exactly one segment (the co-write cover the class structure
/// promises Protocol B), and every read it performs outside that segment
/// targets a segment strictly higher in the DHG (containable by Protocol
/// A). Read-only signatures are skipped — Protocol C contains them under
/// any wall — and declared-only signatures seen fewer than
/// `min_declared_support` times are skipped too, mirroring the inference
/// contract (every OBSERVED signature is checked unconditionally).
/// Together with ValidateDecomposition this proves every observed
/// conflict edge is containable by Protocol A/B under the candidate,
/// because any cross-transaction conflict on a granule g is mediated by
/// g's unique segment: w-w conflicts meet in its class's Protocol B, and
/// w-r conflicts either register in that class or cross upward through
/// an activity link.
Status ValidateAgainstTrace(const Decomposition& dec,
                            const FootprintTrace& trace,
                            std::uint64_t min_declared_support = 1);

/// Builds the declared PartitionSpec equivalent to `dec` for the given
/// shaping types: segment names "S<k>", one TransactionTypeSpec per
/// update signature (root = its write segment, reads = the other
/// segments it touches). HierarchySchema::Create accepts the result iff
/// the decomposition is legal — the final word on validity.
PartitionSpec SpecFromDecomposition(const Decomposition& dec,
                                    const std::vector<TracedFootprint>& types);

}  // namespace hdd

#endif  // HDD_GRAPH_AUTO_DECOMPOSE_H_
