#ifndef HDD_GRAPH_ALGORITHMS_H_
#define HDD_GRAPH_ALGORITHMS_H_

#include <optional>
#include <vector>

#include "graph/digraph.h"

namespace hdd {

/// True iff the digraph has no directed cycle.
bool IsAcyclic(const Digraph& g);

/// Returns some directed cycle as a node sequence (first == last), or
/// nullopt when acyclic. Used by the serializability checker to produce
/// witness cycles for anomaly reports.
std::optional<std::vector<NodeId>> FindCycle(const Digraph& g);

/// Topological order of an acyclic digraph; nullopt when cyclic.
std::optional<std::vector<NodeId>> TopologicalOrder(const Digraph& g);

/// Nodes reachable from `from` via directed arcs (excluding `from` itself
/// unless it lies on a cycle through itself, which `Digraph` cannot hold).
std::vector<NodeId> ReachableFrom(const Digraph& g, NodeId from);

/// Boolean reachability matrix: closure[u][v] == true iff a nonempty
/// directed path u -> ... -> v exists.
std::vector<std::vector<bool>> TransitiveClosureMatrix(const Digraph& g);

/// Transitive closure as a digraph (arc u->v for every nonempty path).
Digraph TransitiveClosure(const Digraph& g);

/// Transitive reduction of an *acyclic* digraph: the unique minimal
/// subgraph with the same reachability. Precondition: IsAcyclic(g).
Digraph TransitiveReduction(const Digraph& g);

/// Strongly connected components (Tarjan). Returns component index per
/// node; components are numbered in reverse topological order.
std::vector<int> StronglyConnectedComponents(const Digraph& g,
                                             int* num_components);

/// Quotient graph obtained by merging nodes with equal labels.
/// `labels[u]` in [0, num_labels). Self-loops produced by a merge are
/// dropped (Digraph cannot represent them), so the caller must check for
/// intra-group arcs separately when they matter.
Digraph Quotient(const Digraph& g, const std::vector<int>& labels,
                 int num_labels);

/// True iff the *underlying undirected* graph is simple and acyclic, i.e.
/// at most one undirected path joins any pair of nodes. A pair of
/// antiparallel arcs u->v, v->u counts as two undirected paths and thus
/// disqualifies the graph.
bool UnderlyingUndirectedIsForest(const Digraph& g);

/// Unique undirected path between a and b in a graph whose underlying
/// undirected graph is a forest; nullopt when a and b are disconnected.
/// Returned as the node sequence a ... b.
std::optional<std::vector<NodeId>> UndirectedTreePath(const Digraph& g,
                                                      NodeId a, NodeId b);

}  // namespace hdd

#endif  // HDD_GRAPH_ALGORITHMS_H_
