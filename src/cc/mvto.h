#ifndef HDD_CC_MVTO_H_
#define HDD_CC_MVTO_H_

#include <condition_variable>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cc/controller.h"

namespace hdd {

struct MvtoOptions {
  /// When false, reads leave no read timestamp — unsound, for anomaly
  /// experiments only (the MV analogue of the paper's Figure 4).
  bool register_reads = true;

  /// Cap on committed versions retained per granule (0 = unbounded).
  /// 1 degenerates to single-version TO; 2 models the one-previous-
  /// version schemes the paper cites (Bayer 80); larger values climb
  /// Papadimitriou's hierarchy — "the more versions a DBMS keeps, the
  /// higher the level of concurrency it may achieve" (§1.3). A read
  /// whose target version was pruned aborts with kAborted.
  std::size_t max_versions = 0;

  std::string name = "mvto";
};

/// Multi-version timestamp ordering [Reed 78]. A read is served the
/// version with the largest write timestamp below the reader's I(t) and
/// registers a read timestamp on it; reads therefore never abort but may
/// wait for the chosen version's creator to commit. A write aborts when a
/// younger transaction already read the state the write would change.
class Mvto : public ConcurrencyController {
 public:
  Mvto(Database* db, LogicalClock* clock, MvtoOptions options = {});

  std::string_view name() const override { return options_.name; }

  Result<TxnDescriptor> Begin(const TxnOptions& options) override;
  Result<Value> Read(const TxnDescriptor& txn, GranuleRef granule) override;
  Status Write(const TxnDescriptor& txn, GranuleRef granule,
               Value value) override;
  Status Commit(const TxnDescriptor& txn) override;
  Status Abort(const TxnDescriptor& txn) override;

 private:
  struct TxnRuntime {
    TxnDescriptor descriptor;
    std::vector<GranuleRef> writes;
  };

  Result<TxnRuntime*> FindTxn(const TxnDescriptor& txn);

  /// Enforces options_.max_versions on `granule` after a commit; updates
  /// prune_floor_. Caller holds mu_.
  void EnforceVersionCap(GranuleRef granule);

  MvtoOptions options_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<TxnId, TxnRuntime> txns_;
  /// Per granule: wts of the oldest retained committed version after a
  /// prune. Readers at or below the floor abort (version unavailable).
  std::unordered_map<GranuleRef, Timestamp> prune_floor_;
  TxnId next_txn_id_ = 1;
};

}  // namespace hdd

#endif  // HDD_CC_MVTO_H_
