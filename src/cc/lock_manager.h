#ifndef HDD_CC_LOCK_MANAGER_H_
#define HDD_CC_LOCK_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "common/clock.h"
#include "common/status.h"
#include "storage/version.h"

namespace hdd {

enum class LockMode { kShared, kExclusive };

/// How lock waits that could deadlock are resolved.
enum class DeadlockPolicy {
  /// Build the waits-for graph on every block; if the requester closes a
  /// cycle it is chosen as the victim (returns kDeadlock).
  kDetect,
  /// Wait-die: an older requester (smaller timestamp) waits; a younger one
  /// dies immediately (returns kDeadlock).
  kWaitDie,
  /// Never wait: any conflict returns kBusy to the caller.
  kNoWait,
};

/// Granule-level S/X lock table with FIFO-fair waiting, supporting
/// S->X upgrade for the sole shared holder. Used by the 2PL and MV2PL
/// baselines. The paper's point of comparison: every registered read here
/// costs a shared-lock acquisition and possibly a wait.
class LockManager {
 public:
  explicit LockManager(DeadlockPolicy policy = DeadlockPolicy::kDetect)
      : policy_(policy) {}

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Acquires (or upgrades to) `mode` on `granule` for `txn`.
  /// `txn_ts` is the transaction's initiation timestamp (used by
  /// wait-die). On success sets *waited to whether the call blocked.
  /// Retryable failures: kDeadlock (victim under either policy) or kBusy
  /// (kNoWait conflict).
  Status Acquire(TxnId txn, Timestamp txn_ts, GranuleRef granule,
                 LockMode mode, bool* waited);

  /// Releases every lock held by `txn` and wakes eligible waiters.
  void ReleaseAll(TxnId txn);

  /// Locks currently held by `txn` (diagnostics/tests).
  std::size_t NumHeld(TxnId txn) const;

 private:
  struct Request {
    TxnId txn;
    Timestamp ts;
    LockMode mode;
    bool granted = false;
  };

  struct LockState {
    // Holders first (granted == true), then FIFO waiters.
    std::list<Request> queue;
  };

  // All private helpers assume mu_ is held.
  bool CanGrant(const LockState& state, const Request& request) const;
  void GrantEligible(LockState& state);
  bool WouldDeadlock(TxnId requester, GranuleRef granule);

  DeadlockPolicy policy_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<GranuleRef, LockState> table_;
  std::unordered_map<TxnId, std::unordered_set<GranuleRef>> held_;
};

}  // namespace hdd

#endif  // HDD_CC_LOCK_MANAGER_H_
