#include "cc/lock_manager.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <vector>

#include "common/sim_hook.h"

namespace hdd {

namespace {

constexpr auto kLockWaitTimeout = std::chrono::seconds(30);

bool Compatible(LockMode a, LockMode b) {
  return a == LockMode::kShared && b == LockMode::kShared;
}

}  // namespace

bool LockManager::CanGrant(const LockState& state,
                           const Request& request) const {
  for (const Request& other : state.queue) {
    if (&other == &request) {
      // FIFO fairness: nothing ahead blocked us, grantable.
      return true;
    }
    if (other.txn == request.txn) continue;
    // Both granted holders and earlier waiters gate the request, so a
    // stream of shared requests cannot starve a waiting upgrade/writer.
    if (!Compatible(other.mode, request.mode)) return false;
  }
  return true;
}

void LockManager::GrantEligible(LockState& state) {
  bool granted_any = false;
  for (Request& request : state.queue) {
    if (request.granted) continue;
    if (CanGrant(state, request)) {
      request.granted = true;
      granted_any = true;
    } else {
      break;  // FIFO: once one waiter stays blocked, later ones do too
    }
  }
  if (granted_any) SimNotifyAll(cv_, &cv_);
}

bool LockManager::WouldDeadlock(TxnId requester, GranuleRef granule) {
  // Build the waits-for graph from the whole table: each ungranted request
  // waits for every incompatible request ahead of it in its queue.
  std::unordered_map<TxnId, std::vector<TxnId>> waits_for;
  auto add_edges = [&](const LockState& state) {
    for (auto it = state.queue.begin(); it != state.queue.end(); ++it) {
      if (it->granted) continue;
      for (auto ahead = state.queue.begin(); ahead != it; ++ahead) {
        if (ahead->txn != it->txn && !Compatible(ahead->mode, it->mode)) {
          waits_for[it->txn].push_back(ahead->txn);
        }
      }
    }
  };
  for (const auto& [ref, state] : table_) {
    (void)ref;
    add_edges(state);
  }
  (void)granule;
  // DFS from the requester looking for a path back to it.
  std::vector<TxnId> stack = {requester};
  std::unordered_set<TxnId> seen;
  bool first = true;
  while (!stack.empty()) {
    const TxnId t = stack.back();
    stack.pop_back();
    if (!first && t == requester) return true;
    first = false;
    auto it = waits_for.find(t);
    if (it == waits_for.end()) continue;
    for (TxnId next : it->second) {
      if (next == requester) return true;
      if (seen.insert(next).second) stack.push_back(next);
    }
  }
  return false;
}

Status LockManager::Acquire(TxnId txn, Timestamp txn_ts, GranuleRef granule,
                            LockMode mode, bool* waited) {
  if (waited != nullptr) *waited = false;
  SimYield("lock/acquire");
  std::unique_lock<std::mutex> lock(mu_);
  LockState& state = table_[granule];

  // Re-entrant / upgrade handling.
  for (auto it = state.queue.begin(); it != state.queue.end(); ++it) {
    if (it->txn != txn) continue;
    assert(it->granted && "transaction issued a request while blocked");
    if (it->mode == LockMode::kExclusive || it->mode == mode) {
      return Status::OK();  // already covered
    }
    // S -> X upgrade.
    const bool sole_holder = std::none_of(
        state.queue.begin(), state.queue.end(), [&](const Request& r) {
          return r.granted && r.txn != txn;
        });
    if (sole_holder) {
      it->mode = LockMode::kExclusive;
      return Status::OK();
    }
    if (policy_ == DeadlockPolicy::kNoWait) {
      return Status::Busy("upgrade conflict");
    }
    if (policy_ == DeadlockPolicy::kWaitDie) {
      for (const Request& r : state.queue) {
        if (r.granted && r.txn != txn && r.ts < txn_ts) {
          return Status::Deadlock("wait-die: younger upgrader dies");
        }
      }
    }
    // Re-queue the upgrade as a fresh high-priority waiter: demote to an
    // ungranted X request placed after the granted holders so it is next
    // in FIFO order. The shared lock stays held.
    Request upgrade;
    upgrade.txn = txn;
    upgrade.ts = txn_ts;
    upgrade.mode = LockMode::kExclusive;
    upgrade.granted = false;
    auto pos = state.queue.begin();
    while (pos != state.queue.end() && pos->granted) ++pos;
    auto upgrade_it = state.queue.insert(pos, upgrade);
    if (policy_ == DeadlockPolicy::kDetect && WouldDeadlock(txn, granule)) {
      state.queue.erase(upgrade_it);
      return Status::Deadlock("deadlock detected on upgrade");
    }
    if (waited != nullptr) *waited = true;
    // Wait until every *other* holder releases.
    const bool ok = SimWaitFor(cv_, lock, &cv_, kLockWaitTimeout, [&] {
      return std::none_of(state.queue.begin(), state.queue.end(),
                          [&](const Request& r) {
                            return r.granted && r.txn != txn;
                          });
    });
    if (!ok) {
      state.queue.erase(upgrade_it);
      GrantEligible(state);
      return Status::Internal("lock wait timeout (upgrade)");
    }
    state.queue.erase(upgrade_it);
    for (Request& r : state.queue) {
      if (r.txn == txn && r.granted) r.mode = LockMode::kExclusive;
    }
    return Status::OK();
  }

  // Fresh request.
  Request request;
  request.txn = txn;
  request.ts = txn_ts;
  request.mode = mode;
  request.granted = false;
  auto it = state.queue.insert(state.queue.end(), request);
  if (CanGrant(state, *it)) {
    it->granted = true;
    held_[txn].insert(granule);
    return Status::OK();
  }
  if (policy_ == DeadlockPolicy::kNoWait) {
    state.queue.erase(it);
    return Status::Busy("lock conflict");
  }
  if (policy_ == DeadlockPolicy::kWaitDie) {
    for (const Request& r : state.queue) {
      if (&r != &*it && r.txn != txn && !Compatible(r.mode, it->mode) &&
          r.ts < txn_ts) {
        state.queue.erase(it);
        return Status::Deadlock("wait-die: younger requester dies");
      }
    }
  }
  if (policy_ == DeadlockPolicy::kDetect && WouldDeadlock(txn, granule)) {
    state.queue.erase(it);
    return Status::Deadlock("deadlock detected");
  }
  if (waited != nullptr) *waited = true;
  const bool ok = SimWaitFor(cv_, lock, &cv_, kLockWaitTimeout,
                             [&] { return it->granted; });
  if (!ok) {
    state.queue.erase(it);
    GrantEligible(state);
    return Status::Internal("lock wait timeout");
  }
  held_[txn].insert(granule);
  return Status::OK();
}

void LockManager::ReleaseAll(TxnId txn) {
  std::lock_guard<std::mutex> guard(mu_);
  auto held_it = held_.find(txn);
  if (held_it == held_.end()) return;
  for (GranuleRef granule : held_it->second) {
    auto table_it = table_.find(granule);
    if (table_it == table_.end()) continue;
    LockState& state = table_it->second;
    state.queue.remove_if(
        [&](const Request& r) { return r.txn == txn && r.granted; });
    if (state.queue.empty()) {
      table_.erase(table_it);
    } else {
      GrantEligible(state);
    }
  }
  held_.erase(held_it);
  SimNotifyAll(cv_, &cv_);
}

std::size_t LockManager::NumHeld(TxnId txn) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = held_.find(txn);
  return it == held_.end() ? 0 : it->second.size();
}

}  // namespace hdd
