#include "cc/sdd1.h"

#include <cassert>

namespace hdd {

Sdd1::Sdd1(Database* db, LogicalClock* clock, Sdd1Options options)
    : ConcurrencyController(db, clock), options_(std::move(options)) {}

Result<TxnDescriptor> Sdd1::Begin(const TxnOptions& options) {
  std::lock_guard<std::mutex> guard(mu_);
  if (!options.read_only &&
      (options.txn_class < 0 || options.txn_class >= db_->num_segments())) {
    return Status::InvalidArgument(
        "SDD-1 update transactions must declare their class");
  }
  TxnRuntime runtime;
  runtime.descriptor.id = next_txn_id_++;
  runtime.descriptor.init_ts = clock_->Tick();
  runtime.descriptor.txn_class =
      options.read_only ? kReadOnlyClass : options.txn_class;
  runtime.descriptor.read_only = options.read_only;
  const TxnDescriptor descriptor = runtime.descriptor;
  txns_.emplace(descriptor.id, std::move(runtime));
  if (!descriptor.read_only) {
    active_[descriptor.txn_class].insert(descriptor.init_ts);
  }
  recorder_.RecordBegin(descriptor.id, descriptor.txn_class,
                        descriptor.read_only, descriptor.init_ts);
  metrics_.begins.Add(1);
  return descriptor;
}

Result<Sdd1::TxnRuntime*> Sdd1::FindTxn(const TxnDescriptor& txn) {
  auto it = txns_.find(txn.id);
  if (it == txns_.end()) {
    return Status::FailedPrecondition("unknown or finished transaction");
  }
  return &it->second;
}

bool Sdd1::PipelineDrainedBelow(ClassId cls, Timestamp ts) const {
  auto it = active_.find(cls);
  if (it == active_.end() || it->second.empty()) return true;
  return *it->second.begin() >= ts;
}

Result<Value> Sdd1::Read(const TxnDescriptor& txn, GranuleRef granule) {
  HDD_RETURN_IF_ERROR(db_->Validate(granule));
  std::unique_lock<std::mutex> lock(mu_);
  HDD_ASSIGN_OR_RETURN(TxnRuntime * runtime, FindTxn(txn));
  (void)runtime;

  const ClassId writer_class = granule.segment;
  bool waited = false;
  if (writer_class == txn.txn_class) {
    // Intra-class: serialized pipelining — proceed as the class's oldest.
    while (!active_[txn.txn_class].empty() &&
           *active_[txn.txn_class].begin() < txn.init_ts) {
      waited = true;
      cv_.wait(lock);
    }
  } else {
    // Inter-class: wait for the writer class's pipeline to pass our I(t).
    while (!PipelineDrainedBelow(writer_class, txn.init_ts)) {
      waited = true;
      cv_.wait(lock);
    }
  }
  if (waited) metrics_.blocked_reads.Add(1);

  Granule& g = db_->granule(granule);
  const Version* version = g.Find(txn.init_ts) != nullptr
                               ? g.Find(txn.init_ts)
                               : g.LatestCommittedBefore(txn.init_ts);
  assert(version != nullptr);
  metrics_.unregistered_reads.Add(1);
  metrics_.version_reads.Add(1);
  recorder_.RecordRead(txn.id, granule, version->order_key);
  return version->value;
}

Status Sdd1::Write(const TxnDescriptor& txn, GranuleRef granule,
                   Value value) {
  HDD_RETURN_IF_ERROR(db_->Validate(granule));
  std::unique_lock<std::mutex> lock(mu_);
  HDD_ASSIGN_OR_RETURN(TxnRuntime * runtime, FindTxn(txn));
  if (txn.read_only) {
    return Status::FailedPrecondition("read-only transaction wrote");
  }
  if (granule.segment != txn.txn_class) {
    return Status::InvalidArgument(
        "SDD-1 class may only write its own segment");
  }

  // Serialized pipelining within the class.
  bool waited = false;
  while (!active_[txn.txn_class].empty() &&
         *active_[txn.txn_class].begin() < txn.init_ts) {
    waited = true;
    cv_.wait(lock);
  }
  if (waited) metrics_.blocked_writes.Add(1);

  Granule& g = db_->granule(granule);
  Version* own = g.Find(txn.init_ts);
  if (own != nullptr) {
    own->value = value;
    recorder_.RecordWrite(txn.id, granule, own->order_key);
    return Status::OK();
  }
  Version version;
  version.order_key = txn.init_ts;
  version.wts = txn.init_ts;
  version.creator = txn.id;
  version.value = value;
  version.committed = false;
  HDD_RETURN_IF_ERROR(g.Insert(version));
  runtime->writes.push_back(granule);
  metrics_.versions_created.Add(1);
  recorder_.RecordWrite(txn.id, granule, version.order_key);
  return Status::OK();
}

Status Sdd1::Commit(const TxnDescriptor& txn) {
  std::lock_guard<std::mutex> guard(mu_);
  HDD_ASSIGN_OR_RETURN(TxnRuntime * runtime, FindTxn(txn));
  for (GranuleRef granule : runtime->writes) {
    Version* version = db_->granule(granule).Find(txn.init_ts);
    assert(version != nullptr);
    version->committed = true;
  }
  if (!txn.read_only) active_[txn.txn_class].erase(txn.init_ts);
  txns_.erase(txn.id);
  recorder_.RecordOutcome(txn.id, TxnState::kCommitted);
  metrics_.commits.Add(1);
  cv_.notify_all();
  return Status::OK();
}

Status Sdd1::Abort(const TxnDescriptor& txn) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = txns_.find(txn.id);
  if (it == txns_.end()) {
    return Status::FailedPrecondition("unknown or finished transaction");
  }
  for (GranuleRef granule : it->second.writes) {
    Status removed = db_->granule(granule).Remove(txn.init_ts);
    assert(removed.ok());
    (void)removed;
  }
  if (!txn.read_only) active_[txn.txn_class].erase(txn.init_ts);
  txns_.erase(it);
  recorder_.RecordOutcome(txn.id, TxnState::kAborted);
  metrics_.aborts.Add(1);
  cv_.notify_all();
  return Status::OK();
}

}  // namespace hdd
