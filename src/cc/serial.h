#ifndef HDD_CC_SERIAL_H_
#define HDD_CC_SERIAL_H_

#include <condition_variable>
#include <mutex>
#include <string>
#include <unordered_map>

#include "cc/controller.h"

namespace hdd {

/// Degenerate reference controller: a single global ticket serializes
/// whole transactions — Begin blocks until no other transaction is in
/// flight. Trivially serializable, zero registration, zero concurrency.
/// Used as the lower bound in cost-model comparisons: any useful
/// technique must beat it when transactions can overlap.
class SerialController : public ConcurrencyController {
 public:
  SerialController(Database* db, LogicalClock* clock)
      : ConcurrencyController(db, clock) {}

  std::string_view name() const override { return "serial"; }

  Result<TxnDescriptor> Begin(const TxnOptions& options) override;
  Result<Value> Read(const TxnDescriptor& txn, GranuleRef granule) override;
  Status Write(const TxnDescriptor& txn, GranuleRef granule,
               Value value) override;
  Status Commit(const TxnDescriptor& txn) override;
  Status Abort(const TxnDescriptor& txn) override;

 private:
  struct TxnRuntime {
    TxnDescriptor descriptor;
    std::unordered_map<GranuleRef, std::uint64_t> writes;
  };

  std::mutex mu_;
  std::condition_variable cv_;
  bool busy_ = false;
  std::unordered_map<TxnId, TxnRuntime> txns_;  // holds at most one entry
  TxnId next_txn_id_ = 1;
  std::uint64_t next_write_key_ = 1;
};

}  // namespace hdd

#endif  // HDD_CC_SERIAL_H_
