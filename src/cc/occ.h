#ifndef HDD_CC_OCC_H_
#define HDD_CC_OCC_H_

#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cc/controller.h"

namespace hdd {

struct OccOptions {
  /// Committed write-sets older than this many commits are pruned; a
  /// validating transaction that began before the prune horizon aborts
  /// conservatively. Bounds validation memory.
  std::size_t history_limit = 4096;

  std::string name = "occ";
};

/// Optimistic concurrency control with backward validation
/// [Kung & Robinson 81] — contemporary with the paper and its natural
/// foil: like HDD it registers NO reads at all, but instead of steering
/// reads to provably-safe versions it lets transactions run against the
/// latest committed state and validates at commit, aborting whenever a
/// concurrently committed transaction wrote anything the validator read.
/// Under contention the unregistered reads come back as validation
/// aborts — which is exactly the trade-off Figure 10's comparison is
/// about.
class Occ : public ConcurrencyController {
 public:
  Occ(Database* db, LogicalClock* clock, OccOptions options = {});

  std::string_view name() const override { return options_.name; }

  Result<TxnDescriptor> Begin(const TxnOptions& options) override;
  Result<Value> Read(const TxnDescriptor& txn, GranuleRef granule) override;
  Status Write(const TxnDescriptor& txn, GranuleRef granule,
               Value value) override;
  Status Commit(const TxnDescriptor& txn) override;
  Status Abort(const TxnDescriptor& txn) override;

 private:
  struct TxnRuntime {
    TxnDescriptor descriptor;
    /// Commit-sequence watermark at Begin: validation checks every
    /// write-set committed after it.
    std::uint64_t start_seq = 0;
    std::unordered_set<GranuleRef> read_set;
    std::unordered_map<GranuleRef, Value> write_buffer;
    /// Read steps deferred to commit time: recorded only if validation
    /// passes, with the version actually observed.
    std::vector<Step> pending_reads;
  };

  struct CommittedRecord {
    std::uint64_t seq;
    std::vector<GranuleRef> write_set;
  };

  Result<TxnRuntime*> FindTxn(const TxnDescriptor& txn);

  OccOptions options_;
  std::mutex mu_;
  std::unordered_map<TxnId, TxnRuntime> txns_;
  std::deque<CommittedRecord> committed_history_;
  std::uint64_t next_commit_seq_ = 1;
  std::uint64_t pruned_below_seq_ = 0;
  std::uint64_t next_write_key_ = 1;
  TxnId next_txn_id_ = 1;
};

}  // namespace hdd

#endif  // HDD_CC_OCC_H_
