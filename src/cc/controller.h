#ifndef HDD_CC_CONTROLLER_H_
#define HDD_CC_CONTROLLER_H_

#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/status.h"
#include "storage/database.h"
#include "txn/schedule.h"
#include "txn/transaction.h"

namespace hdd {

/// Common interface of every concurrency-control technique in the library
/// (HDD and all baselines). Usage protocol:
///
///   auto txn = controller.Begin(options);          // fresh I(t)
///   auto value = controller.Read(*txn, granule);   // may block
///   controller.Write(*txn, granule, new_value);    // may fail kAborted
///   controller.Commit(*txn);                       // or Abort
///
/// Any operation may return a retryable status (kAborted / kDeadlock); the
/// caller must then call Abort() and restart the whole transaction with a
/// new Begin(). Blocking techniques park the calling thread internally.
///
/// Threading contract: controllers are safe for concurrent calls on
/// behalf of *different* transactions, but each in-flight transaction is
/// driven by one thread at a time (the executor's model). Controllers may
/// rely on that to keep per-transaction state unsynchronized.
///
/// Every successful read/write is recorded in the schedule recorder so the
/// §2 serializability checker can audit the execution offline, and every
/// synchronization action is counted in the metrics — the quantities the
/// paper's comparison (Figure 10) is about.
class ConcurrencyController {
 public:
  ConcurrencyController(Database* db, LogicalClock* clock)
      : db_(db), clock_(clock) {}
  virtual ~ConcurrencyController() = default;

  ConcurrencyController(const ConcurrencyController&) = delete;
  ConcurrencyController& operator=(const ConcurrencyController&) = delete;

  virtual std::string_view name() const = 0;

  /// Starts a transaction; assigns I(t) from the shared logical clock.
  virtual Result<TxnDescriptor> Begin(const TxnOptions& options) = 0;

  /// Reads one granule on behalf of `txn`.
  virtual Result<Value> Read(const TxnDescriptor& txn, GranuleRef granule) = 0;

  /// Writes one granule on behalf of `txn`.
  virtual Status Write(const TxnDescriptor& txn, GranuleRef granule,
                       Value value) = 0;

  virtual Status Commit(const TxnDescriptor& txn) = 0;
  virtual Status Abort(const TxnDescriptor& txn) = 0;

  /// --- Epoch/batch execution (optional) -------------------------------
  ///
  /// The epoch executor admits transactions in batches. Controllers that
  /// can amortize per-transaction work across a batch (HDD shares one
  /// activity-link bound evaluation per (class, epoch)) override these;
  /// the defaults make every controller usable under the epoch executor
  /// by degrading to the per-transaction path.
  ///
  /// Protocol: BeginEpoch -> BeginBatch (once) -> run/commit/abort every
  /// transaction of the batch -> EndEpoch. Epochs do not overlap: the
  /// caller must not call BeginEpoch again before EndEpoch, and must not
  /// mix per-txn Begin of update transactions with an open epoch.

  /// Opens an epoch and returns its handle. The default keeps the
  /// controller epoch-oblivious (id 0, anchor = current clock).
  virtual Result<EpochHandle> BeginEpoch() {
    return EpochHandle{0, clock_->Now()};
  }

  /// Admits a batch of transactions into the epoch, in order. On error
  /// any transaction already begun by this call has been aborted, so the
  /// caller may simply retry. The default loops over Begin.
  virtual Result<std::vector<TxnDescriptor>> BeginBatch(
      const EpochHandle& epoch, const std::vector<TxnOptions>& batch) {
    (void)epoch;
    std::vector<TxnDescriptor> out;
    out.reserve(batch.size());
    for (const TxnOptions& options : batch) {
      Result<TxnDescriptor> txn = Begin(options);
      if (!txn.ok()) {
        for (const TxnDescriptor& begun : out) (void)Abort(begun);
        return txn.status();
      }
      out.push_back(*txn);
    }
    return out;
  }

  /// Closes the epoch. Called after every batch transaction finished.
  virtual Status EndEpoch(const EpochHandle& epoch) {
    (void)epoch;
    return Status::OK();
  }

  Database& db() { return *db_; }
  LogicalClock& clock() { return *clock_; }
  CcMetrics& metrics() { return metrics_; }
  const CcMetrics& metrics() const { return metrics_; }
  ScheduleRecorder& recorder() { return recorder_; }
  const ScheduleRecorder& recorder() const { return recorder_; }

 protected:
  Database* db_;
  LogicalClock* clock_;
  CcMetrics metrics_;
  ScheduleRecorder recorder_;
};

}  // namespace hdd

#endif  // HDD_CC_CONTROLLER_H_
