#ifndef HDD_CC_CONTROLLER_H_
#define HDD_CC_CONTROLLER_H_

#include <string_view>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/status.h"
#include "storage/database.h"
#include "txn/schedule.h"
#include "txn/transaction.h"

namespace hdd {

/// Common interface of every concurrency-control technique in the library
/// (HDD and all baselines). Usage protocol:
///
///   auto txn = controller.Begin(options);          // fresh I(t)
///   auto value = controller.Read(*txn, granule);   // may block
///   controller.Write(*txn, granule, new_value);    // may fail kAborted
///   controller.Commit(*txn);                       // or Abort
///
/// Any operation may return a retryable status (kAborted / kDeadlock); the
/// caller must then call Abort() and restart the whole transaction with a
/// new Begin(). Blocking techniques park the calling thread internally.
///
/// Threading contract: controllers are safe for concurrent calls on
/// behalf of *different* transactions, but each in-flight transaction is
/// driven by one thread at a time (the executor's model). Controllers may
/// rely on that to keep per-transaction state unsynchronized.
///
/// Every successful read/write is recorded in the schedule recorder so the
/// §2 serializability checker can audit the execution offline, and every
/// synchronization action is counted in the metrics — the quantities the
/// paper's comparison (Figure 10) is about.
class ConcurrencyController {
 public:
  ConcurrencyController(Database* db, LogicalClock* clock)
      : db_(db), clock_(clock) {}
  virtual ~ConcurrencyController() = default;

  ConcurrencyController(const ConcurrencyController&) = delete;
  ConcurrencyController& operator=(const ConcurrencyController&) = delete;

  virtual std::string_view name() const = 0;

  /// Starts a transaction; assigns I(t) from the shared logical clock.
  virtual Result<TxnDescriptor> Begin(const TxnOptions& options) = 0;

  /// Reads one granule on behalf of `txn`.
  virtual Result<Value> Read(const TxnDescriptor& txn, GranuleRef granule) = 0;

  /// Writes one granule on behalf of `txn`.
  virtual Status Write(const TxnDescriptor& txn, GranuleRef granule,
                       Value value) = 0;

  virtual Status Commit(const TxnDescriptor& txn) = 0;
  virtual Status Abort(const TxnDescriptor& txn) = 0;

  Database& db() { return *db_; }
  LogicalClock& clock() { return *clock_; }
  CcMetrics& metrics() { return metrics_; }
  const CcMetrics& metrics() const { return metrics_; }
  ScheduleRecorder& recorder() { return recorder_; }
  const ScheduleRecorder& recorder() const { return recorder_; }

 protected:
  Database* db_;
  LogicalClock* clock_;
  CcMetrics metrics_;
  ScheduleRecorder recorder_;
};

}  // namespace hdd

#endif  // HDD_CC_CONTROLLER_H_
