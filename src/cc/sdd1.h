#ifndef HDD_CC_SDD1_H_
#define HDD_CC_SDD1_H_

#include <condition_variable>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "cc/controller.h"

namespace hdd {

struct Sdd1Options {
  std::string name = "sdd1";
};

/// Single-node rendition of the SDD-1 conflict-analysis approach
/// [Bernstein 80], the comparison point of the paper's Figure 10.
///
/// Transactions are grouped into classes (class = root segment, as in
/// HDD's transaction analysis). Conflict analysis is implicit in the
/// segment structure: a read of segment `s` conflicts exactly with the
/// class rooted at `s`. Synchronization is conservative:
///
///  * intra-class: serialized pipelining — a transaction touches its own
///    segment only when it is the oldest active transaction of its class;
///  * inter-class: a read of segment `s` waits until class `s` has no
///    active transaction older than the reader (its pipeline low-water
///    mark passed the reader's timestamp), then reads the latest version
///    older than the reader's I(t).
///
/// Reads are never rejected and leave no read timestamps, but — unlike HDD
/// Protocol A — they BLOCK on the writer class's pipeline. Every wait
/// targets a strictly older transaction, so the scheme is deadlock-free.
class Sdd1 : public ConcurrencyController {
 public:
  Sdd1(Database* db, LogicalClock* clock, Sdd1Options options = {});

  std::string_view name() const override { return options_.name; }

  Result<TxnDescriptor> Begin(const TxnOptions& options) override;
  Result<Value> Read(const TxnDescriptor& txn, GranuleRef granule) override;
  Status Write(const TxnDescriptor& txn, GranuleRef granule,
               Value value) override;
  Status Commit(const TxnDescriptor& txn) override;
  Status Abort(const TxnDescriptor& txn) override;

 private:
  struct TxnRuntime {
    TxnDescriptor descriptor;
    std::vector<GranuleRef> writes;
  };

  Result<TxnRuntime*> FindTxn(const TxnDescriptor& txn);

  /// True when class `cls` has no active transaction with I(t) < ts.
  bool PipelineDrainedBelow(ClassId cls, Timestamp ts) const;

  Sdd1Options options_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<TxnId, TxnRuntime> txns_;
  /// Active initiation timestamps per class.
  std::map<ClassId, std::set<Timestamp>> active_;
  TxnId next_txn_id_ = 1;
};

}  // namespace hdd

#endif  // HDD_CC_SDD1_H_
