#include "cc/occ.h"

#include <cassert>

namespace hdd {

Occ::Occ(Database* db, LogicalClock* clock, OccOptions options)
    : ConcurrencyController(db, clock), options_(std::move(options)) {}

Result<TxnDescriptor> Occ::Begin(const TxnOptions& options) {
  std::lock_guard<std::mutex> guard(mu_);
  TxnRuntime runtime;
  runtime.descriptor.id = next_txn_id_++;
  runtime.descriptor.init_ts = clock_->Tick();
  runtime.descriptor.txn_class = options.txn_class;
  runtime.descriptor.read_only = options.read_only;
  runtime.start_seq = next_commit_seq_ - 1;
  const TxnDescriptor descriptor = runtime.descriptor;
  txns_.emplace(descriptor.id, std::move(runtime));
  recorder_.RecordBegin(descriptor.id, descriptor.txn_class,
                        descriptor.read_only, descriptor.init_ts);
  metrics_.begins.Add(1);
  return descriptor;
}

Result<Occ::TxnRuntime*> Occ::FindTxn(const TxnDescriptor& txn) {
  auto it = txns_.find(txn.id);
  if (it == txns_.end()) {
    return Status::FailedPrecondition("unknown or finished transaction");
  }
  return &it->second;
}

Result<Value> Occ::Read(const TxnDescriptor& txn, GranuleRef granule) {
  HDD_RETURN_IF_ERROR(db_->Validate(granule));
  std::lock_guard<std::mutex> guard(mu_);
  HDD_ASSIGN_OR_RETURN(TxnRuntime * runtime, FindTxn(txn));
  // Own buffered write wins.
  auto buffered = runtime->write_buffer.find(granule);
  if (buffered != runtime->write_buffer.end()) {
    // Re-reading one's own uninstalled write: no version exists yet, so
    // nothing is recorded; the value is the buffered one.
    return buffered->second;
  }
  const Version* version = db_->granule(granule).LatestCommitted();
  assert(version != nullptr);
  runtime->read_set.insert(granule);
  // Deferred recording: if the transaction later aborts (validation or
  // user), its reads never become part of the audited schedule — exactly
  // how OCC's read phase is invisible to the system.
  Step step;
  step.txn = txn.id;
  step.action = Step::Action::kRead;
  step.granule = granule;
  step.version = version->order_key;
  step.registered = false;
  runtime->pending_reads.push_back(step);
  metrics_.unregistered_reads.Add(1);
  metrics_.version_reads.Add(1);
  return version->value;
}

Status Occ::Write(const TxnDescriptor& txn, GranuleRef granule,
                  Value value) {
  HDD_RETURN_IF_ERROR(db_->Validate(granule));
  std::lock_guard<std::mutex> guard(mu_);
  HDD_ASSIGN_OR_RETURN(TxnRuntime * runtime, FindTxn(txn));
  if (txn.read_only) {
    return Status::FailedPrecondition("read-only transaction wrote");
  }
  runtime->write_buffer[granule] = value;
  return Status::OK();
}

Status Occ::Commit(const TxnDescriptor& txn) {
  std::lock_guard<std::mutex> guard(mu_);
  HDD_ASSIGN_OR_RETURN(TxnRuntime * runtime, FindTxn(txn));

  // Backward validation: anything committed after our start watermark
  // must not have written what we read.
  if (runtime->start_seq < pruned_below_seq_) {
    txns_.erase(txn.id);
    recorder_.RecordOutcome(txn.id, TxnState::kAborted);
    metrics_.aborts.Add(1);
    return Status::Aborted("OCC: validation history pruned");
  }
  for (const CommittedRecord& record : committed_history_) {
    if (record.seq <= runtime->start_seq) continue;
    for (GranuleRef written : record.write_set) {
      if (runtime->read_set.count(written)) {
        txns_.erase(txn.id);
        recorder_.RecordOutcome(txn.id, TxnState::kAborted);
        metrics_.aborts.Add(1);
        return Status::Aborted("OCC: validation conflict");
      }
    }
  }

  // Validation passed: the reads become official, the writes install.
  for (const Step& step : runtime->pending_reads) {
    recorder_.RecordRead(step.txn, step.granule, step.version, false);
  }
  const Timestamp commit_ts = clock_->Tick();
  CommittedRecord record;
  record.seq = next_commit_seq_++;
  for (const auto& [granule, value] : runtime->write_buffer) {
    Version version;
    version.order_key = next_write_key_++;
    version.wts = commit_ts;
    version.creator = txn.id;
    version.value = value;
    version.committed = true;
    Status inserted = db_->granule(granule).Insert(version);
    assert(inserted.ok());
    (void)inserted;
    metrics_.versions_created.Add(1);
    recorder_.RecordWrite(txn.id, granule, version.order_key);
    record.write_set.push_back(granule);
  }
  if (!record.write_set.empty()) {
    committed_history_.push_back(std::move(record));
    while (committed_history_.size() > options_.history_limit) {
      pruned_below_seq_ = committed_history_.front().seq;
      committed_history_.pop_front();
    }
  }
  txns_.erase(txn.id);
  recorder_.RecordOutcome(txn.id, TxnState::kCommitted);
  metrics_.commits.Add(1);
  return Status::OK();
}

Status Occ::Abort(const TxnDescriptor& txn) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = txns_.find(txn.id);
  if (it == txns_.end()) {
    return Status::FailedPrecondition("unknown or finished transaction");
  }
  // Nothing was installed; just forget the transaction.
  txns_.erase(it);
  recorder_.RecordOutcome(txn.id, TxnState::kAborted);
  metrics_.aborts.Add(1);
  return Status::OK();
}

}  // namespace hdd
