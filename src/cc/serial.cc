#include "cc/serial.h"

#include <cassert>

namespace hdd {

Result<TxnDescriptor> SerialController::Begin(const TxnOptions& options) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return !busy_; });
  busy_ = true;
  TxnRuntime runtime;
  runtime.descriptor.id = next_txn_id_++;
  runtime.descriptor.init_ts = clock_->Tick();
  runtime.descriptor.txn_class = options.txn_class;
  runtime.descriptor.read_only = options.read_only;
  const TxnDescriptor descriptor = runtime.descriptor;
  txns_.emplace(descriptor.id, std::move(runtime));
  recorder_.RecordBegin(descriptor.id, descriptor.txn_class,
                        descriptor.read_only, descriptor.init_ts);
  metrics_.begins.Add(1);
  return descriptor;
}

Result<Value> SerialController::Read(const TxnDescriptor& txn,
                                     GranuleRef granule) {
  HDD_RETURN_IF_ERROR(db_->Validate(granule));
  std::lock_guard<std::mutex> guard(mu_);
  auto it = txns_.find(txn.id);
  if (it == txns_.end()) {
    return Status::FailedPrecondition("unknown or finished transaction");
  }
  Granule& g = db_->granule(granule);
  const Version* version = nullptr;
  auto write_it = it->second.writes.find(granule);
  if (write_it != it->second.writes.end()) {
    version = g.Find(write_it->second);
  } else {
    version = g.LatestCommitted();
  }
  assert(version != nullptr);
  metrics_.version_reads.Add(1);
  recorder_.RecordRead(txn.id, granule, version->order_key);
  return version->value;
}

Status SerialController::Write(const TxnDescriptor& txn, GranuleRef granule,
                               Value value) {
  HDD_RETURN_IF_ERROR(db_->Validate(granule));
  std::lock_guard<std::mutex> guard(mu_);
  auto it = txns_.find(txn.id);
  if (it == txns_.end()) {
    return Status::FailedPrecondition("unknown or finished transaction");
  }
  if (txn.read_only) {
    return Status::FailedPrecondition("read-only transaction wrote");
  }
  Granule& g = db_->granule(granule);
  auto write_it = it->second.writes.find(granule);
  if (write_it != it->second.writes.end()) {
    Version* own = g.Find(write_it->second);
    own->value = value;
    recorder_.RecordWrite(txn.id, granule, own->order_key);
    return Status::OK();
  }
  Version version;
  version.order_key = next_write_key_++;
  version.wts = kTimestampMin;
  version.creator = txn.id;
  version.value = value;
  version.committed = false;
  HDD_RETURN_IF_ERROR(g.Insert(version));
  it->second.writes.emplace(granule, version.order_key);
  metrics_.versions_created.Add(1);
  recorder_.RecordWrite(txn.id, granule, version.order_key);
  return Status::OK();
}

Status SerialController::Commit(const TxnDescriptor& txn) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = txns_.find(txn.id);
  if (it == txns_.end()) {
    return Status::FailedPrecondition("unknown or finished transaction");
  }
  const Timestamp commit_ts = clock_->Tick();
  for (const auto& [granule, order_key] : it->second.writes) {
    Version* version = db_->granule(granule).Find(order_key);
    version->wts = commit_ts;
    version->committed = true;
  }
  txns_.erase(it);
  busy_ = false;
  recorder_.RecordOutcome(txn.id, TxnState::kCommitted);
  metrics_.commits.Add(1);
  cv_.notify_one();
  return Status::OK();
}

Status SerialController::Abort(const TxnDescriptor& txn) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = txns_.find(txn.id);
  if (it == txns_.end()) {
    return Status::FailedPrecondition("unknown or finished transaction");
  }
  for (const auto& [granule, order_key] : it->second.writes) {
    (void)db_->granule(granule).Remove(order_key);
  }
  txns_.erase(it);
  busy_ = false;
  recorder_.RecordOutcome(txn.id, TxnState::kAborted);
  metrics_.aborts.Add(1);
  cv_.notify_one();
  return Status::OK();
}

}  // namespace hdd
