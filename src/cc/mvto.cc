#include "cc/mvto.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "common/sim_hook.h"

namespace hdd {

Mvto::Mvto(Database* db, LogicalClock* clock, MvtoOptions options)
    : ConcurrencyController(db, clock), options_(std::move(options)) {}

Result<TxnDescriptor> Mvto::Begin(const TxnOptions& options) {
  SimYield("mvto/begin");
  std::lock_guard<std::mutex> guard(mu_);
  TxnRuntime runtime;
  runtime.descriptor.id = next_txn_id_++;
  runtime.descriptor.init_ts = clock_->Tick();
  runtime.descriptor.txn_class = options.txn_class;
  runtime.descriptor.read_only = options.read_only;
  const TxnDescriptor descriptor = runtime.descriptor;
  txns_.emplace(descriptor.id, std::move(runtime));
  recorder_.RecordBegin(descriptor.id, descriptor.txn_class,
                        descriptor.read_only, descriptor.init_ts);
  metrics_.begins.Add(1);
  return descriptor;
}

Result<Mvto::TxnRuntime*> Mvto::FindTxn(const TxnDescriptor& txn) {
  auto it = txns_.find(txn.id);
  if (it == txns_.end()) {
    return Status::FailedPrecondition("unknown or finished transaction");
  }
  return &it->second;
}

Result<Value> Mvto::Read(const TxnDescriptor& txn, GranuleRef granule) {
  HDD_RETURN_IF_ERROR(db_->Validate(granule));
  SimYield("mvto/read");
  std::unique_lock<std::mutex> lock(mu_);
  HDD_ASSIGN_OR_RETURN(TxnRuntime * runtime, FindTxn(txn));
  (void)runtime;

  if (options_.max_versions > 0) {
    auto floor_it = prune_floor_.find(granule);
    if (floor_it != prune_floor_.end() &&
        txn.init_ts <= floor_it->second) {
      // The version this transaction must read was pruned by the
      // bounded-version policy: the read cannot be served consistently.
      return Status::Aborted("MVTO read: snapshot version pruned");
    }
  }
  bool waited = false;
  for (;;) {
    Granule& g = db_->granule(granule);
    // Own version (wts == our I(t)) is always readable.
    Version* own = g.Find(txn.init_ts);
    Version* version = own != nullptr ? own : g.VersionBefore(txn.init_ts);
    assert(version != nullptr);
    if (!version->committed && version->creator != txn.id) {
      // The chosen version's creator is strictly older (wts < our I(t)),
      // so waiting points only at older transactions: deadlock-free.
      waited = true;
      SimWait(cv_, lock, &cv_);
      continue;
    }
    if (waited) metrics_.blocked_reads.Add(1);
    if (options_.register_reads) {
      if (txn.init_ts > version->rts) version->rts = txn.init_ts;
      metrics_.read_timestamps_written.Add(1);
    } else {
      metrics_.unregistered_reads.Add(1);
    }
    metrics_.version_reads.Add(1);
    recorder_.RecordRead(txn.id, granule, version->order_key,
                         options_.register_reads);
    return version->value;
  }
}

Status Mvto::Write(const TxnDescriptor& txn, GranuleRef granule,
                   Value value) {
  HDD_RETURN_IF_ERROR(db_->Validate(granule));
  SimYield("mvto/write");
  std::lock_guard<std::mutex> guard(mu_);
  HDD_ASSIGN_OR_RETURN(TxnRuntime * runtime, FindTxn(txn));
  if (txn.read_only) {
    return Status::FailedPrecondition("read-only transaction wrote");
  }

  Granule& g = db_->granule(granule);
  Version* own = g.Find(txn.init_ts);
  if (own != nullptr) {
    own->value = value;
    recorder_.RecordWrite(txn.id, granule, own->order_key);
    return Status::OK();
  }
  // Reject when any version older than us was already read by a younger
  // transaction: our new version would invalidate that read.
  if (g.MaxRtsOfVersionsBefore(txn.init_ts) > txn.init_ts) {
    return Status::Aborted("MVTO write: younger read of older version");
  }
  Version version;
  version.order_key = txn.init_ts;
  version.wts = txn.init_ts;
  version.creator = txn.id;
  version.value = value;
  version.committed = false;
  HDD_RETURN_IF_ERROR(g.Insert(version));
  runtime->writes.push_back(granule);
  metrics_.versions_created.Add(1);
  recorder_.RecordWrite(txn.id, granule, version.order_key);
  return Status::OK();
}

void Mvto::EnforceVersionCap(GranuleRef granule) {
  Granule& g = db_->granule(granule);
  // Committed count (chain is sorted by order_key == wts).
  std::vector<std::uint64_t> committed_keys;
  for (const Version& v : g.versions()) {
    if (v.committed) committed_keys.push_back(v.order_key);
  }
  if (committed_keys.size() <= options_.max_versions) return;
  const std::size_t drop = committed_keys.size() - options_.max_versions;
  for (std::size_t i = 0; i < drop; ++i) {
    Status removed = g.Remove(committed_keys[i]);
    assert(removed.ok());
    (void)removed;
  }
  // Oldest retained committed version defines the read floor.
  Timestamp& floor = prune_floor_[granule];
  floor = std::max(floor, static_cast<Timestamp>(committed_keys[drop]));
}

Status Mvto::Commit(const TxnDescriptor& txn) {
  SimYield("mvto/commit");
  std::lock_guard<std::mutex> guard(mu_);
  HDD_ASSIGN_OR_RETURN(TxnRuntime * runtime, FindTxn(txn));
  for (GranuleRef granule : runtime->writes) {
    Version* version = db_->granule(granule).Find(txn.init_ts);
    assert(version != nullptr);
    version->committed = true;
    if (options_.max_versions > 0) EnforceVersionCap(granule);
  }
  txns_.erase(txn.id);
  recorder_.RecordOutcome(txn.id, TxnState::kCommitted);
  metrics_.commits.Add(1);
  SimNotifyAll(cv_, &cv_);
  return Status::OK();
}

Status Mvto::Abort(const TxnDescriptor& txn) {
  // Abort is the fault-recovery path: non-interruptible (see executor).
  SimYield("mvto/abort", /*interruptible=*/false);
  std::lock_guard<std::mutex> guard(mu_);
  auto it = txns_.find(txn.id);
  if (it == txns_.end()) {
    return Status::FailedPrecondition("unknown or finished transaction");
  }
  for (GranuleRef granule : it->second.writes) {
    Status removed = db_->granule(granule).Remove(txn.init_ts);
    assert(removed.ok());
    (void)removed;
  }
  txns_.erase(it);
  recorder_.RecordOutcome(txn.id, TxnState::kAborted);
  metrics_.aborts.Add(1);
  SimNotifyAll(cv_, &cv_);
  return Status::OK();
}

}  // namespace hdd
