#ifndef HDD_CC_TIMESTAMP_ORDERING_H_
#define HDD_CC_TIMESTAMP_ORDERING_H_

#include <condition_variable>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cc/controller.h"

namespace hdd {

struct TimestampOrderingOptions {
  /// When false, reads leave no read timestamp — the configuration the
  /// paper's Figure 4 constructs to show that skipping read registration
  /// under timestamp ordering breaks serializability.
  bool register_reads = true;

  /// Thomas write rule: a write older than the current version is silently
  /// discarded instead of aborting the writer (ablation knob).
  bool thomas_write_rule = false;

  std::string name = "to";
};

/// Basic (single-version-semantics) timestamp ordering [Bernstein 80].
/// Reads target the current (latest) version; a transaction older than the
/// current version's writer aborts. Writers abort when a younger read or
/// write has already been registered. Dirty reads are prevented by waiting
/// for the tip version's commit; waits always point at strictly older
/// transactions, so they cannot deadlock.
class TimestampOrdering : public ConcurrencyController {
 public:
  TimestampOrdering(Database* db, LogicalClock* clock,
                    TimestampOrderingOptions options = {});

  std::string_view name() const override { return options_.name; }

  Result<TxnDescriptor> Begin(const TxnOptions& options) override;
  Result<Value> Read(const TxnDescriptor& txn, GranuleRef granule) override;
  Status Write(const TxnDescriptor& txn, GranuleRef granule,
               Value value) override;
  Status Commit(const TxnDescriptor& txn) override;
  Status Abort(const TxnDescriptor& txn) override;

 private:
  struct TxnRuntime {
    TxnDescriptor descriptor;
    std::vector<GranuleRef> writes;  // granules with own version at wts
  };

  Result<TxnRuntime*> FindTxn(const TxnDescriptor& txn);

  TimestampOrderingOptions options_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<TxnId, TxnRuntime> txns_;
  TxnId next_txn_id_ = 1;
};

}  // namespace hdd

#endif  // HDD_CC_TIMESTAMP_ORDERING_H_
