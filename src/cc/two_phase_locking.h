#ifndef HDD_CC_TWO_PHASE_LOCKING_H_
#define HDD_CC_TWO_PHASE_LOCKING_H_

#include <mutex>
#include <string>
#include <unordered_map>

#include "cc/controller.h"
#include "cc/lock_manager.h"

namespace hdd {

struct TwoPhaseLockingOptions {
  DeadlockPolicy deadlock_policy = DeadlockPolicy::kDetect;

  /// When false, reads acquire no shared lock — the configuration the
  /// paper's Figure 3 constructs to show that skipping read registration
  /// under 2PL breaks serializability. Never use outside experiments.
  bool register_reads = true;

  /// When true, read-only transactions bypass the lock table entirely and
  /// read a committed snapshot as of their begin time — the MV2PL
  /// technique of the paper's Figure 10 comparison (the Bayer 80 /
  /// Stearns 81 / Chan 82 family).
  bool snapshot_read_only = false;

  /// Display name override (e.g. "mv2pl" when snapshot_read_only is set).
  std::string name = "2pl";
};

/// Strict two-phase locking over the versioned store. Writes install an
/// uncommitted tip version immediately (protected by the X lock); commit
/// stamps the versions with the commit timestamp and releases all locks.
/// The per-granule version order is the physical write order, which under
/// strict 2PL coincides with commit order.
class TwoPhaseLocking : public ConcurrencyController {
 public:
  TwoPhaseLocking(Database* db, LogicalClock* clock,
                  TwoPhaseLockingOptions options = {});

  std::string_view name() const override { return options_.name; }

  Result<TxnDescriptor> Begin(const TxnOptions& options) override;
  Result<Value> Read(const TxnDescriptor& txn, GranuleRef granule) override;
  Status Write(const TxnDescriptor& txn, GranuleRef granule,
               Value value) override;
  Status Commit(const TxnDescriptor& txn) override;
  Status Abort(const TxnDescriptor& txn) override;

 private:
  struct TxnRuntime {
    TxnDescriptor descriptor;
    /// Granule -> order_key of the uncommitted version this txn installed.
    std::unordered_map<GranuleRef, std::uint64_t> writes;
    /// Snapshot bound for read-only transactions under MV2PL
    /// (kTimestampInfinity for update transactions).
    Timestamp snapshot_bound = kTimestampInfinity;
  };

  Result<TxnRuntime*> FindTxn(const TxnDescriptor& txn);

  TwoPhaseLockingOptions options_;
  LockManager locks_;
  std::mutex mu_;  // guards txns_ and all version-chain manipulation
  std::unordered_map<TxnId, TxnRuntime> txns_;
  TxnId next_txn_id_ = 1;
  std::uint64_t next_write_key_ = 1;
};

}  // namespace hdd

#endif  // HDD_CC_TWO_PHASE_LOCKING_H_
