#include "cc/two_phase_locking.h"

#include <cassert>

#include "common/sim_hook.h"

namespace hdd {

TwoPhaseLocking::TwoPhaseLocking(Database* db, LogicalClock* clock,
                                 TwoPhaseLockingOptions options)
    : ConcurrencyController(db, clock),
      options_(std::move(options)),
      locks_(options_.deadlock_policy) {}

Result<TxnDescriptor> TwoPhaseLocking::Begin(const TxnOptions& options) {
  SimYield("2pl/begin");
  std::lock_guard<std::mutex> guard(mu_);
  TxnRuntime runtime;
  runtime.descriptor.id = next_txn_id_++;
  runtime.descriptor.init_ts = clock_->Tick();
  runtime.descriptor.txn_class = options.txn_class;
  runtime.descriptor.read_only = options.read_only;
  if (options.read_only && options_.snapshot_read_only) {
    // MV2PL: read the database state as of begin. clock_->Now() is the
    // largest timestamp issued so far, hence >= every commit timestamp
    // already assigned; commits stamped later get larger timestamps.
    runtime.snapshot_bound = clock_->Now() + 1;
  }
  const TxnDescriptor descriptor = runtime.descriptor;
  txns_.emplace(descriptor.id, std::move(runtime));
  recorder_.RecordBegin(descriptor.id, descriptor.txn_class,
                        descriptor.read_only, descriptor.init_ts);
  metrics_.begins.Add(1);
  return descriptor;
}

Result<TwoPhaseLocking::TxnRuntime*> TwoPhaseLocking::FindTxn(
    const TxnDescriptor& txn) {
  auto it = txns_.find(txn.id);
  if (it == txns_.end()) {
    return Status::FailedPrecondition("unknown or finished transaction");
  }
  return &it->second;
}

Result<Value> TwoPhaseLocking::Read(const TxnDescriptor& txn,
                                    GranuleRef granule) {
  HDD_RETURN_IF_ERROR(db_->Validate(granule));
  SimYield("2pl/read");

  // Snapshot path for read-only transactions under MV2PL: no locks.
  {
    std::lock_guard<std::mutex> guard(mu_);
    HDD_ASSIGN_OR_RETURN(TxnRuntime * runtime, FindTxn(txn));
    if (runtime->snapshot_bound != kTimestampInfinity) {
      const Version* version =
          db_->granule(granule).LatestCommittedBefore(runtime->snapshot_bound);
      assert(version != nullptr);
      metrics_.unregistered_reads.Add(1);
      metrics_.version_reads.Add(1);
      recorder_.RecordRead(txn.id, granule, version->order_key);
      return version->value;
    }
  }

  if (options_.register_reads) {
    bool waited = false;
    Status status = locks_.Acquire(txn.id, txn.init_ts, granule,
                                   LockMode::kShared, &waited);
    metrics_.read_locks_acquired.Add(1);
    if (waited) metrics_.blocked_reads.Add(1);
    if (!status.ok()) {
      if (status.code() == StatusCode::kDeadlock) {
        metrics_.deadlocks.Add(1);
      }
      return status;
    }
  } else {
    metrics_.unregistered_reads.Add(1);
  }

  std::lock_guard<std::mutex> guard(mu_);
  HDD_ASSIGN_OR_RETURN(TxnRuntime * runtime, FindTxn(txn));
  Granule& g = db_->granule(granule);
  // Own uncommitted write wins; otherwise the latest committed version.
  auto write_it = runtime->writes.find(granule);
  const Version* version = nullptr;
  if (write_it != runtime->writes.end()) {
    version = g.Find(write_it->second);
  } else {
    version = g.LatestCommitted();
  }
  assert(version != nullptr);
  metrics_.version_reads.Add(1);
  recorder_.RecordRead(txn.id, granule, version->order_key,
                       options_.register_reads);
  return version->value;
}

Status TwoPhaseLocking::Write(const TxnDescriptor& txn, GranuleRef granule,
                              Value value) {
  HDD_RETURN_IF_ERROR(db_->Validate(granule));
  SimYield("2pl/write");
  {
    std::lock_guard<std::mutex> guard(mu_);
    HDD_ASSIGN_OR_RETURN(TxnRuntime * runtime, FindTxn(txn));
    if (runtime->descriptor.read_only) {
      return Status::FailedPrecondition("read-only transaction wrote");
    }
  }

  bool waited = false;
  Status status = locks_.Acquire(txn.id, txn.init_ts, granule,
                                 LockMode::kExclusive, &waited);
  metrics_.write_locks_acquired.Add(1);
  if (waited) metrics_.blocked_writes.Add(1);
  if (!status.ok()) {
    if (status.code() == StatusCode::kDeadlock) {
      metrics_.deadlocks.Add(1);
    }
    return status;
  }

  std::lock_guard<std::mutex> guard(mu_);
  HDD_ASSIGN_OR_RETURN(TxnRuntime * runtime, FindTxn(txn));
  Granule& g = db_->granule(granule);
  auto write_it = runtime->writes.find(granule);
  if (write_it != runtime->writes.end()) {
    Version* own = g.Find(write_it->second);
    assert(own != nullptr);
    own->value = value;
    recorder_.RecordWrite(txn.id, granule, own->order_key);
    return Status::OK();
  }
  Version version;
  version.order_key = next_write_key_++;
  version.wts = kTimestampMin;  // stamped at commit
  version.creator = txn.id;
  version.value = value;
  version.committed = false;
  HDD_RETURN_IF_ERROR(g.Insert(version));
  runtime->writes.emplace(granule, version.order_key);
  metrics_.versions_created.Add(1);
  recorder_.RecordWrite(txn.id, granule, version.order_key);
  return Status::OK();
}

Status TwoPhaseLocking::Commit(const TxnDescriptor& txn) {
  SimYield("2pl/commit");
  {
    std::lock_guard<std::mutex> guard(mu_);
    HDD_ASSIGN_OR_RETURN(TxnRuntime * runtime, FindTxn(txn));
    const Timestamp commit_ts = clock_->Tick();
    for (const auto& [granule, order_key] : runtime->writes) {
      Version* version = db_->granule(granule).Find(order_key);
      assert(version != nullptr);
      version->wts = commit_ts;
      version->committed = true;
    }
    txns_.erase(txn.id);
  }
  locks_.ReleaseAll(txn.id);
  recorder_.RecordOutcome(txn.id, TxnState::kCommitted);
  metrics_.commits.Add(1);
  return Status::OK();
}

Status TwoPhaseLocking::Abort(const TxnDescriptor& txn) {
  // Abort is the fault-recovery path: non-interruptible (see executor).
  SimYield("2pl/abort", /*interruptible=*/false);
  {
    std::lock_guard<std::mutex> guard(mu_);
    auto it = txns_.find(txn.id);
    if (it == txns_.end()) {
      return Status::FailedPrecondition("unknown or finished transaction");
    }
    for (const auto& [granule, order_key] : it->second.writes) {
      Status removed = db_->granule(granule).Remove(order_key);
      assert(removed.ok());
      (void)removed;
    }
    txns_.erase(it);
  }
  locks_.ReleaseAll(txn.id);
  recorder_.RecordOutcome(txn.id, TxnState::kAborted);
  metrics_.aborts.Add(1);
  return Status::OK();
}

}  // namespace hdd
