#include "cc/timestamp_ordering.h"

#include <cassert>

namespace hdd {

TimestampOrdering::TimestampOrdering(Database* db, LogicalClock* clock,
                                     TimestampOrderingOptions options)
    : ConcurrencyController(db, clock), options_(std::move(options)) {}

Result<TxnDescriptor> TimestampOrdering::Begin(const TxnOptions& options) {
  std::lock_guard<std::mutex> guard(mu_);
  TxnRuntime runtime;
  runtime.descriptor.id = next_txn_id_++;
  runtime.descriptor.init_ts = clock_->Tick();
  runtime.descriptor.txn_class = options.txn_class;
  runtime.descriptor.read_only = options.read_only;
  const TxnDescriptor descriptor = runtime.descriptor;
  txns_.emplace(descriptor.id, std::move(runtime));
  recorder_.RecordBegin(descriptor.id, descriptor.txn_class,
                        descriptor.read_only, descriptor.init_ts);
  metrics_.begins.Add(1);
  return descriptor;
}

Result<TimestampOrdering::TxnRuntime*> TimestampOrdering::FindTxn(
    const TxnDescriptor& txn) {
  auto it = txns_.find(txn.id);
  if (it == txns_.end()) {
    return Status::FailedPrecondition("unknown or finished transaction");
  }
  return &it->second;
}

Result<Value> TimestampOrdering::Read(const TxnDescriptor& txn,
                                      GranuleRef granule) {
  HDD_RETURN_IF_ERROR(db_->Validate(granule));
  std::unique_lock<std::mutex> lock(mu_);
  HDD_ASSIGN_OR_RETURN(TxnRuntime * runtime, FindTxn(txn));
  (void)runtime;

  if (!options_.register_reads) {
    // Figure 4 anomaly mode: a completely unsynchronized read — no read
    // timestamp, no wts check, latest committed state. Unsound by design.
    const Version* version = db_->granule(granule).LatestCommitted();
    assert(version != nullptr);
    metrics_.unregistered_reads.Add(1);
    metrics_.version_reads.Add(1);
    recorder_.RecordRead(txn.id, granule, version->order_key);
    return version->value;
  }

  bool waited = false;
  for (;;) {
    Version* tip = db_->granule(granule).Latest();
    assert(tip != nullptr);
    if (tip->wts > txn.init_ts && tip->creator != txn.id) {
      // A younger transaction already overwrote the granule.
      return Status::Aborted("TO read: granule overwritten by younger txn");
    }
    if (!tip->committed && tip->creator != txn.id) {
      waited = true;
      cv_.wait(lock);
      continue;
    }
    if (waited) metrics_.blocked_reads.Add(1);
    if (txn.init_ts > tip->rts) tip->rts = txn.init_ts;
    metrics_.read_timestamps_written.Add(1);
    metrics_.version_reads.Add(1);
    recorder_.RecordRead(txn.id, granule, tip->order_key, true);
    return tip->value;
  }
}

Status TimestampOrdering::Write(const TxnDescriptor& txn, GranuleRef granule,
                                Value value) {
  HDD_RETURN_IF_ERROR(db_->Validate(granule));
  std::unique_lock<std::mutex> lock(mu_);
  HDD_ASSIGN_OR_RETURN(TxnRuntime * runtime, FindTxn(txn));
  if (txn.read_only) {
    return Status::FailedPrecondition("read-only transaction wrote");
  }

  bool waited = false;
  for (;;) {
    Granule& g = db_->granule(granule);
    Version* tip = g.Latest();
    assert(tip != nullptr);
    if (tip->creator == txn.id) {
      // Re-write of our own version.
      tip->value = value;
      recorder_.RecordWrite(txn.id, granule, tip->order_key);
      return Status::OK();
    }
    if (tip->rts > txn.init_ts) {
      return Status::Aborted("TO write: younger read already registered");
    }
    if (tip->wts > txn.init_ts) {
      if (options_.thomas_write_rule) {
        // Obsolete write: drop it silently. Not recorded — the value
        // never becomes a version.
        return Status::OK();
      }
      return Status::Aborted("TO write: granule overwritten by younger txn");
    }
    if (!tip->committed) {
      waited = true;
      cv_.wait(lock);
      continue;
    }
    if (waited) metrics_.blocked_writes.Add(1);
    Version version;
    version.order_key = txn.init_ts;
    version.wts = txn.init_ts;
    version.creator = txn.id;
    version.value = value;
    version.committed = false;
    HDD_RETURN_IF_ERROR(g.Insert(version));
    runtime->writes.push_back(granule);
    metrics_.versions_created.Add(1);
    recorder_.RecordWrite(txn.id, granule, version.order_key);
    return Status::OK();
  }
}

Status TimestampOrdering::Commit(const TxnDescriptor& txn) {
  std::lock_guard<std::mutex> guard(mu_);
  HDD_ASSIGN_OR_RETURN(TxnRuntime * runtime, FindTxn(txn));
  for (GranuleRef granule : runtime->writes) {
    Version* version = db_->granule(granule).Find(txn.init_ts);
    assert(version != nullptr);
    version->committed = true;
  }
  txns_.erase(txn.id);
  recorder_.RecordOutcome(txn.id, TxnState::kCommitted);
  metrics_.commits.Add(1);
  cv_.notify_all();
  return Status::OK();
}

Status TimestampOrdering::Abort(const TxnDescriptor& txn) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = txns_.find(txn.id);
  if (it == txns_.end()) {
    return Status::FailedPrecondition("unknown or finished transaction");
  }
  for (GranuleRef granule : it->second.writes) {
    Status removed = db_->granule(granule).Remove(txn.init_ts);
    assert(removed.ok());
    (void)removed;
  }
  txns_.erase(it);
  recorder_.RecordOutcome(txn.id, TxnState::kAborted);
  metrics_.aborts.Add(1);
  cv_.notify_all();
  return Status::OK();
}

}  // namespace hdd
