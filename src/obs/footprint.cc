#include "obs/footprint.h"

#include <utility>

namespace hdd {

void FootprintRecorder::Observe(std::vector<std::uint64_t> writes,
                                std::vector<std::uint64_t> reads,
                                bool read_only) {
  RawFootprint fp;
  fp.writes = std::move(writes);
  fp.reads = std::move(reads);
  fp.read_only = read_only;
  fp.declared = false;
  std::lock_guard<std::mutex> lock(mu_);
  window_.push_back(std::move(fp));
  ++total_;
}

void FootprintRecorder::Declare(std::vector<std::uint64_t> writes,
                                std::vector<std::uint64_t> reads) {
  RawFootprint fp;
  fp.read_only = writes.empty();
  fp.writes = std::move(writes);
  fp.reads = std::move(reads);
  fp.declared = true;
  std::lock_guard<std::mutex> lock(mu_);
  window_.push_back(std::move(fp));
  ++total_;
}

std::vector<RawFootprint> FootprintRecorder::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RawFootprint> out;
  out.swap(window_);
  return out;
}

std::size_t FootprintRecorder::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return window_.size();
}

std::uint64_t FootprintRecorder::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

}  // namespace hdd
