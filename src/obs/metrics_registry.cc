#include "obs/metrics_registry.h"

#include <bit>
#include <limits>

namespace hdd {

namespace obs_internal {

std::size_t ThreadStripe() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed);
  return stripe;
}

}  // namespace obs_internal

std::size_t Histogram::BucketIndex(std::uint64_t value) noexcept {
  if (value < kSubBuckets) return static_cast<std::size_t>(value);
  const int exponent = 63 - std::countl_zero(value);  // >= 4
  const std::size_t shift = static_cast<std::size_t>(exponent - 4);
  const std::size_t sub =
      static_cast<std::size_t>((value >> shift) - kSubBuckets);
  return kSubBuckets + shift * kSubBuckets + sub;
}

std::uint64_t Histogram::BucketUpperBound(std::size_t index) noexcept {
  if (index < kSubBuckets) return index;
  const std::size_t shift = (index - kSubBuckets) / kSubBuckets;
  const std::size_t sub = (index - kSubBuckets) % kSubBuckets;
  if (shift >= 59 && sub == kSubBuckets - 1) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return ((static_cast<std::uint64_t>(kSubBuckets) + sub + 1) << shift) - 1;
}

void Histogram::Record(std::uint64_t value) noexcept {
  Stripe& stripe =
      stripes_[obs_internal::ThreadStripe() & (kRecordStripes - 1)];
  stripe.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  stripe.count.fetch_add(1, std::memory_order_relaxed);
  stripe.sum.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = stripe.max.load(std::memory_order_relaxed);
  while (value > seen && !stripe.max.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.buckets.assign(kBucketCount, 0);
  for (const Stripe& stripe : stripes_) {
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      snap.buckets[i] += stripe.buckets[i].load(std::memory_order_relaxed);
    }
    snap.count += stripe.count.load(std::memory_order_relaxed);
    snap.sum += stripe.sum.load(std::memory_order_relaxed);
    snap.max = std::max(snap.max, stripe.max.load(std::memory_order_relaxed));
  }
  return snap;
}

std::uint64_t Histogram::Count() const {
  std::uint64_t total = 0;
  for (const Stripe& stripe : stripes_) {
    total += stripe.count.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::Reset() noexcept {
  for (Stripe& stripe : stripes_) {
    for (auto& bucket : stripe.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    stripe.count.store(0, std::memory_order_relaxed);
    stripe.sum.store(0, std::memory_order_relaxed);
    stripe.max.store(0, std::memory_order_relaxed);
  }
}

void Histogram::Snapshot::Merge(const Snapshot& other) {
  if (other.buckets.empty()) return;
  if (buckets.empty()) buckets.assign(kBucketCount, 0);
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
}

std::uint64_t Histogram::Snapshot::ValueAtQuantile(double q) const {
  if (count == 0 || buckets.empty()) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest-rank over the merged buckets: the first bucket whose
  // cumulative count reaches ceil(q * count).
  const double exact = q * static_cast<double>(count);
  std::uint64_t rank = static_cast<std::uint64_t>(exact);
  if (static_cast<double>(rank) < exact) ++rank;
  if (rank == 0) rank = 1;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) {
      // The true maximum caps the top bucket's upper bound.
      return std::min(BucketUpperBound(i), max);
    }
  }
  return max;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::map<std::string, std::uint64_t> MetricsRegistry::SnapshotCounters()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, counter] : counters_) {
    out[name] = counter->Value();
  }
  return out;
}

std::map<std::string, std::uint64_t> MetricsRegistry::SnapshotGauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, gauge] : gauges_) {
    out[name] = gauge->Value();
  }
  return out;
}

std::map<std::string, std::uint64_t> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, counter] : counters_) {
    out[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    out[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    const Histogram::Snapshot snap = histogram->snapshot();
    out[name + "_count"] = snap.count;
    out[name + "_p50"] = snap.ValueAtQuantile(0.50);
    out[name + "_p95"] = snap.ValueAtQuantile(0.95);
    out[name + "_p99"] = snap.ValueAtQuantile(0.99);
    out[name + "_max"] = snap.max;
  }
  return out;
}

std::vector<std::string> MetricsRegistry::CounterNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) names.push_back(name);
  return names;
}

std::vector<std::string> MetricsRegistry::GaugeNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) names.push_back(name);
  return names;
}

std::vector<std::string> MetricsRegistry::HistogramNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) names.push_back(name);
  return names;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Set(0);
  for (auto& [name, gauge] : gauges_) gauge->Set(0);
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace hdd
