#ifndef HDD_OBS_FOOTPRINT_H_
#define HDD_OBS_FOOTPRINT_H_

#include <cstdint>
#include <mutex>
#include <vector>

namespace hdd {

/// One transaction's access footprint over (segment, index) granule
/// coordinates, packed as raw integers: the obs layer is deliberately
/// dependency-free (see src/obs/CMakeLists.txt), so it does not know the
/// storage types. `declared` marks admission-time intent (the workload
/// announced the sets before running) as opposed to an observed commit.
struct RawFootprint {
  std::vector<std::uint64_t> writes;
  std::vector<std::uint64_t> reads;
  bool read_only = false;
  bool declared = false;
};

/// Thread-safe windowed collector of per-transaction read/write granule
/// sets — the live front end of workload-driven automatic decomposition
/// (graph/auto_decompose.h). The HDD controller publishes one footprint
/// per committed transaction (HddControllerOptions::footprint) and a
/// workload may additionally Declare intended footprints at admission
/// time; the online Redecomposer (engine/redecompose.h) periodically
/// Drains the window, folds it into a FootprintTrace and thresholds the
/// conflict-graph drift.
///
/// Each footprint arrives in one call, so the hot-path cost is one mutex
/// acquisition per *transaction* (not per operation) — the controller
/// accumulates reads in its per-transaction runtime first.
class FootprintRecorder {
 public:
  FootprintRecorder() = default;
  FootprintRecorder(const FootprintRecorder&) = delete;
  FootprintRecorder& operator=(const FootprintRecorder&) = delete;

  static std::uint64_t Pack(std::uint32_t segment, std::uint32_t index) {
    return (static_cast<std::uint64_t>(segment) << 32) | index;
  }
  static std::uint32_t Segment(std::uint64_t packed) {
    return static_cast<std::uint32_t>(packed >> 32);
  }
  static std::uint32_t Index(std::uint64_t packed) {
    return static_cast<std::uint32_t>(packed);
  }

  /// Appends one observed (committed) footprint to the current window.
  void Observe(std::vector<std::uint64_t> writes,
               std::vector<std::uint64_t> reads, bool read_only);

  /// Appends one declared footprint: a transaction type announced at
  /// admission, before (or without) executing — this is how patterns the
  /// current structure cannot even run yet become visible to the drift
  /// detector.
  void Declare(std::vector<std::uint64_t> writes,
               std::vector<std::uint64_t> reads);

  /// Removes and returns the current window, in arrival order.
  std::vector<RawFootprint> Drain();

  /// Footprints currently pending in the window.
  std::size_t pending() const;
  /// Total footprints ever recorded (monotonic, survives Drain).
  std::uint64_t total() const;

 private:
  mutable std::mutex mu_;
  std::vector<RawFootprint> window_;
  std::uint64_t total_ = 0;
};

}  // namespace hdd

#endif  // HDD_OBS_FOOTPRINT_H_
