#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <memory>
#include <mutex>

namespace hdd {

namespace {

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HDD_TSAN_BUILD 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define HDD_TSAN_BUILD 1
#endif

#if defined(HDD_TSAN_BUILD)
/// TSan neither models std::atomic_thread_fence nor lets it compile
/// under -Werror=tsan. An acq_rel RMW on one shared dummy is a stand-in
/// it does model: the RMWs form a release sequence, so the writer-side
/// "release fence" and reader-side "acquire fence" still establish the
/// happens-before edge the seqlock validation relies on (and an RMW is
/// a full barrier on the hardware TSan runs on anyway).
inline void SeqlockFence(std::memory_order order) {
  static std::atomic<unsigned> dummy{0};
  dummy.fetch_add(0, order == std::memory_order_release
                         ? std::memory_order_acq_rel
                         : std::memory_order_acquire);
}
#else
inline void SeqlockFence(std::memory_order order) {
  std::atomic_thread_fence(order);
}
#endif

/// One ring slot. The seqlock generation encodes the absolute event index
/// (`2*idx + 1` while the owner writes, `2*idx + 2` once stable), so a
/// drainer can tell a torn or recycled slot from a stable one without any
/// shared lock. Payload fields are relaxed atomics: a racing drain is a
/// benign skipped slot, never a data race.
struct alignas(8) Slot {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uintptr_t> category{0};
  std::atomic<std::uintptr_t> name{0};
  std::atomic<std::uint64_t> start_ns{0};
  /// dur_ns (low 56 bits, saturated — a 2-year span loses nothing) packed
  /// with the phase char (high 8): a 40-byte slot instead of 48 keeps the
  /// ring's cache footprint down, which in situ outweighs the pack/unpack
  /// arithmetic (the emit path is memory-bound, not ALU-bound).
  std::atomic<std::uint64_t> dur_phase{0};

  static std::uint64_t PackDurPhase(std::uint64_t dur_ns, char phase) {
    constexpr std::uint64_t kDurMask = (std::uint64_t{1} << 56) - 1;
    return std::min(dur_ns, kDurMask) |
           (static_cast<std::uint64_t>(static_cast<unsigned char>(phase))
            << 56);
  }
};

struct ThreadBuffer {
  explicit ThreadBuffer(std::uint32_t tid_in, std::size_t capacity)
      : tid(tid_in), mask(capacity - 1), slots(capacity) {}

  const std::uint32_t tid;
  const std::size_t mask;  // capacity - 1, capacity a power of two
  std::vector<Slot> slots;
  /// Next event index; only the owner thread advances it.
  std::atomic<std::uint64_t> head{0};

  void Emit(const char* category, const char* name, std::uint64_t start_ns,
            std::uint64_t dur_ns, char phase) {
    const std::uint64_t idx = head.load(std::memory_order_relaxed);
    Slot& slot = slots[idx & mask];
    // Seqlock write: mark the slot in-flight, fence, relaxed payload
    // stores, fence, mark stable. Readers validating the generation
    // before and after their payload loads never accept a torn record.
    slot.seq.store(2 * idx + 1, std::memory_order_relaxed);
    SeqlockFence(std::memory_order_release);
    slot.category.store(reinterpret_cast<std::uintptr_t>(category),
                        std::memory_order_relaxed);
    slot.name.store(reinterpret_cast<std::uintptr_t>(name),
                    std::memory_order_relaxed);
    slot.start_ns.store(start_ns, std::memory_order_relaxed);
    slot.dur_phase.store(Slot::PackDurPhase(dur_ns, phase),
                         std::memory_order_relaxed);
    SeqlockFence(std::memory_order_release);
    slot.seq.store(2 * idx + 2, std::memory_order_relaxed);
    head.store(idx + 1, std::memory_order_release);
  }
};

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;  // exited threads stay
  std::uint32_t next_tid = 1;
  /// 2048 slots x 40 B = 80 KB per thread: small enough to stay mostly
  /// cache-resident next to the workload's own working set (the dominant
  /// in-situ emit cost is the ring line miss, not the stores). Raise via
  /// SetBufferCapacity for longer windows.
  std::size_t capacity = 2048;
};

Registry& GlobalRegistry() {
  static Registry* registry = new Registry();  // leaked: outlives all threads
  return *registry;
}

std::atomic<bool> g_enabled{false};

/// Keeps the thread's buffer alive for the thread's lifetime; the
/// registry's shared_ptr keeps it drainable afterwards. Emitters go
/// through `t_raw` instead: a trivially-destructible thread_local is a
/// plain TLS load, where the shared_ptr costs a guarded wrapper call per
/// access. `t_raw` outlives `t_buffer` safely — the registry's reference
/// keeps the buffer alive until an explicit Reset.
thread_local std::shared_ptr<ThreadBuffer> t_buffer;
thread_local ThreadBuffer* t_raw = nullptr;

ThreadBuffer& LocalBuffer() {
  ThreadBuffer* raw = t_raw;
  if (raw != nullptr) return *raw;
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  t_buffer = std::make_shared<ThreadBuffer>(registry.next_tid++,
                                            registry.capacity);
  registry.buffers.push_back(t_buffer);
  t_raw = t_buffer.get();
  return *t_raw;
}

std::uint64_t SteadyNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Timestamps come from the CPU cycle counter where one exists (about
/// half the cost of clock_gettime, and two reads bound every span), and
/// are converted to nanoseconds against a frequency calibrated at
/// Enable(). Modern x86_64 (constant_tsc) and aarch64 (cntvct_el0) keep
/// these counters synchronized across cores, which is the same
/// assumption every sampling profiler makes.
#if defined(__x86_64__) || defined(__aarch64__)
#define HDD_TRACE_FAST_CLOCK 1
#else
#define HDD_TRACE_FAST_CLOCK 0
#endif

std::uint64_t RawTicks() {
#if defined(__x86_64__)
  return __builtin_ia32_rdtsc();
#elif defined(__aarch64__)
  std::uint64_t value;
  asm volatile("mrs %0, cntvct_el0" : "=r"(value));
  return value;
#else
  return SteadyNs();
#endif
}

/// (ticks, ns) pair captured at process load; both clock paths report
/// nanoseconds since this origin, so pre- and post-calibration stamps
/// share a timeline.
struct ClockOrigin {
  std::uint64_t ticks0 = RawTicks();
  std::uint64_t ns0 = SteadyNs();
};
ClockOrigin g_clock_origin;

std::atomic<double> g_ns_per_tick{0.0};  // 0 until calibrated

/// Fixes the tick->ns scale from the (ticks, ns) deltas since process
/// load. If Enable() came within 100us of load, spins the window out to
/// that length first: a 100us baseline bounds the frequency error by
/// ~2 clock granularities / 100us < 0.1%.
void CalibrateFastClock() {
#if HDD_TRACE_FAST_CLOCK
  if (g_ns_per_tick.load(std::memory_order_acquire) != 0.0) return;
  std::uint64_t ns1 = SteadyNs();
  while (ns1 - g_clock_origin.ns0 < 100'000) ns1 = SteadyNs();
  const std::uint64_t ticks1 = RawTicks();
  if (ticks1 <= g_clock_origin.ticks0) return;  // counter unusable: fall back
  g_ns_per_tick.store(static_cast<double>(ns1 - g_clock_origin.ns0) /
                          static_cast<double>(ticks1 - g_clock_origin.ticks0),
                      std::memory_order_release);
#endif
}

}  // namespace

void TraceRecorder::Enable() {
  CalibrateFastClock();  // pin the clock before the first span
  g_enabled.store(true, std::memory_order_release);
}

void TraceRecorder::Disable() {
  g_enabled.store(false, std::memory_order_release);
}

bool TraceRecorder::enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

void TraceRecorder::SetBufferCapacity(std::size_t slots_per_thread) {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.capacity = std::bit_ceil(std::max<std::size_t>(slots_per_thread, 2));
}

void TraceRecorder::Emit(const char* category, const char* name,
                         std::uint64_t start_ns, std::uint64_t dur_ns,
                         char phase) {
  LocalBuffer().Emit(category, name, start_ns, dur_ns, phase);
}

std::vector<TraceEvent> TraceRecorder::Drain() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    Registry& registry = GlobalRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    buffers = registry.buffers;
  }
  std::vector<TraceEvent> events;
  for (const auto& buffer : buffers) {
    const std::uint64_t head = buffer->head.load(std::memory_order_acquire);
    const std::uint64_t capacity = buffer->mask + 1;
    const std::uint64_t lo = head > capacity ? head - capacity : 0;
    for (std::uint64_t idx = lo; idx < head; ++idx) {
      const Slot& slot = buffer->slots[idx & buffer->mask];
      const std::uint64_t expected = 2 * idx + 2;
      if (slot.seq.load(std::memory_order_acquire) != expected) continue;
      TraceEvent event;
      event.category = reinterpret_cast<const char*>(
          slot.category.load(std::memory_order_relaxed));
      event.name = reinterpret_cast<const char*>(
          slot.name.load(std::memory_order_relaxed));
      event.start_ns = slot.start_ns.load(std::memory_order_relaxed);
      const std::uint64_t dur_phase =
          slot.dur_phase.load(std::memory_order_relaxed);
      event.dur_ns = dur_phase & ((std::uint64_t{1} << 56) - 1);
      event.phase = static_cast<char>(dur_phase >> 56);
      event.tid = buffer->tid;
      SeqlockFence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != expected) continue;
      events.push_back(event);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_ns < b.start_ns;
            });
  return events;
}

std::uint64_t TraceRecorder::dropped() {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::uint64_t total = 0;
  for (const auto& buffer : registry.buffers) {
    const std::uint64_t head = buffer->head.load(std::memory_order_acquire);
    const std::uint64_t capacity = buffer->mask + 1;
    if (head > capacity) total += head - capacity;
  }
  return total;
}

void TraceRecorder::Reset() {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  // Buffers of exited threads are dropped entirely; live threads' buffers
  // are rewound (their owners are quiescent per the contract).
  std::vector<std::shared_ptr<ThreadBuffer>> live;
  for (auto& buffer : registry.buffers) {
    if (buffer.use_count() == 1) continue;  // registry holds the only ref
    buffer->head.store(0, std::memory_order_release);
    for (Slot& slot : buffer->slots) {
      slot.seq.store(0, std::memory_order_release);
    }
    live.push_back(buffer);
  }
  registry.buffers.swap(live);
}

namespace {
/// Nanoseconds as a microsecond decimal ("12.005"), Chrome's `ts` unit.
void WriteMicros(std::ostream& os, std::uint64_t ns) {
  os << (ns / 1000) << '.';
  const std::uint64_t frac = ns % 1000;
  os << static_cast<char>('0' + frac / 100)
     << static_cast<char>('0' + (frac / 10) % 10)
     << static_cast<char>('0' + frac % 10);
}
}  // namespace

void TraceRecorder::WriteChromeTrace(std::ostream& os) {
  const std::vector<TraceEvent> events = Drain();
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"ph\":\"" << event.phase << "\",\"pid\":1,\"tid\":"
       << event.tid << ",\"cat\":\"" << event.category << "\",\"name\":\""
       << event.name << "\",\"ts\":";
    WriteMicros(os, event.start_ns);
    if (event.phase == 'X') {
      os << ",\"dur\":";
      WriteMicros(os, event.dur_ns);
    } else if (event.phase == 'i') {
      os << ",\"s\":\"t\"";
    }
    os << "}";
  }
  os << "\n]}\n";
}

std::uint64_t TraceRecorder::NowNs() {
#if HDD_TRACE_FAST_CLOCK
  const double scale = g_ns_per_tick.load(std::memory_order_relaxed);
  if (scale != 0.0) {
    return static_cast<std::uint64_t>(
        static_cast<double>(RawTicks() - g_clock_origin.ticks0) * scale);
  }
#endif
  return SteadyNs() - g_clock_origin.ns0;
}

}  // namespace hdd
