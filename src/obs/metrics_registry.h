#ifndef HDD_OBS_METRICS_REGISTRY_H_
#define HDD_OBS_METRICS_REGISTRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hdd {

namespace obs_internal {
/// Stable per-thread stripe index (dense, assigned at first use), so the
/// common executor pattern — a handful of long-lived workers — spreads
/// across stripes instead of hashing onto the same one.
std::size_t ThreadStripe();
}  // namespace obs_internal

/// Monotone counter, striped across cache lines so concurrent writers of
/// the hot paths never contend; reads sum the stripes. Drop-in for the
/// std::atomic<uint64_t> fields it replaces (load / fetch_add / operator=
/// are provided so existing readers and tests keep working).
class Counter {
 public:
  static constexpr std::size_t kStripes = 8;

  void Add(std::uint64_t n = 1) noexcept {
    stripes_[obs_internal::ThreadStripe() & (kStripes - 1)].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  std::uint64_t Value() const noexcept {
    std::uint64_t total = 0;
    for (const Cell& cell : stripes_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Sets the total (stripe 0 := v, others zeroed). Only meaningful while
  /// no writer is concurrently adding, e.g. tests and Reset().
  void Set(std::uint64_t v) noexcept {
    stripes_[0].value.store(v, std::memory_order_relaxed);
    for (std::size_t i = 1; i < kStripes; ++i) {
      stripes_[i].value.store(0, std::memory_order_relaxed);
    }
  }

  // --- std::atomic<uint64_t> drop-in compatibility ---
  std::uint64_t load(
      std::memory_order = std::memory_order_seq_cst) const noexcept {
    return Value();
  }
  void fetch_add(std::uint64_t n,
                 std::memory_order = std::memory_order_seq_cst) noexcept {
    Add(n);
  }
  Counter& operator=(std::uint64_t v) noexcept {
    Set(v);
    return *this;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Cell, kStripes> stripes_{};
};

/// Up/down level metric (live connection counts, queue depths): striped
/// like Counter so concurrent Add/Sub on hot paths never contend, but
/// signed — a stripe may go negative when the decrement lands on a
/// different stripe than the increment; only the merged sum is
/// meaningful, and reads clamp it at zero (a level can transiently read
/// low while an Add is in flight, never negative). Merged across shards
/// exactly like counters: sums add.
class Gauge {
 public:
  static constexpr std::size_t kStripes = 8;

  void Add(std::int64_t n = 1) noexcept {
    stripes_[obs_internal::ThreadStripe() & (kStripes - 1)].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  void Sub(std::int64_t n = 1) noexcept { Add(-n); }

  /// Merged level, clamped at zero (see class comment).
  std::uint64_t Value() const noexcept {
    std::int64_t total = 0;
    for (const Cell& cell : stripes_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total < 0 ? 0 : static_cast<std::uint64_t>(total);
  }

  /// Sets the level (stripe 0 := v, others zeroed). Like Counter::Set,
  /// only meaningful while no writer is concurrently adding.
  void Set(std::int64_t v) noexcept {
    stripes_[0].value.store(v, std::memory_order_relaxed);
    for (std::size_t i = 1; i < kStripes; ++i) {
      stripes_[i].value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::int64_t> value{0};
  };
  std::array<Cell, kStripes> stripes_{};
};

/// HDR-style log-linear histogram of non-negative integer values (the
/// unit is the caller's; latencies are recorded in microseconds by
/// convention). Each power-of-two octave splits into 16 linear
/// sub-buckets, so any quantile is exact to a relative error of 1/16.
/// Recording is wait-free: a relaxed add into a per-thread-stripe bucket;
/// reads merge the stripes into a Snapshot.
class Histogram {
 public:
  static constexpr std::size_t kSubBuckets = 16;      // per octave
  static constexpr std::size_t kBucketCount =
      kSubBuckets + (64 - 4) * kSubBuckets;           // values 0..2^64-1
  static constexpr std::size_t kRecordStripes = 4;

  void Record(std::uint64_t value) noexcept;

  /// Point-in-time merged view; also the unit of cross-histogram and
  /// cross-shard aggregation.
  struct Snapshot {
    std::vector<std::uint64_t> buckets;  // kBucketCount wide (or empty)
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;  // exact

    /// Folds another snapshot (or shard) into this one.
    void Merge(const Snapshot& other);
    /// Smallest recorded-bucket upper bound covering quantile `q` of the
    /// observations (q in [0,1]; q=0 -> lowest bucket with data).
    std::uint64_t ValueAtQuantile(double q) const;
    double Mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }
  };

  Snapshot snapshot() const;
  std::uint64_t Count() const;
  void Reset() noexcept;

  /// Bucket index for a value; exposed for tests of the bucketing math.
  static std::size_t BucketIndex(std::uint64_t value) noexcept;
  /// Highest value the bucket contains (the quantile representative).
  static std::uint64_t BucketUpperBound(std::size_t index) noexcept;

 private:
  struct Stripe {
    std::array<std::atomic<std::uint64_t>, kBucketCount> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> max{0};
  };
  std::array<Stripe, kRecordStripes> stripes_{};
};

/// Process- or component-scoped collection of named metrics. Lookups lock
/// a registration mutex; hot paths are expected to cache the returned
/// reference (metric objects live as long as the registry and never
/// move). The ad-hoc CcMetrics / WalMetrics structs are facades over one
/// registry each, so every counter is also reachable by name here.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// All counters, name -> value.
  std::map<std::string, std::uint64_t> SnapshotCounters() const;
  /// All gauges, name -> merged (clamped) level.
  std::map<std::string, std::uint64_t> SnapshotGauges() const;

  /// Counters and gauges plus derived histogram stats, flattened as
  /// "<name>_count", "<name>_p50", "<name>_p95", "<name>_p99",
  /// "<name>_max" — one uniform map for reports and table printers.
  std::map<std::string, std::uint64_t> Snapshot() const;

  std::vector<std::string> CounterNames() const;
  std::vector<std::string> GaugeNames() const;
  std::vector<std::string> HistogramNames() const;

  /// Zeroes every registered metric (counters and histograms). Like
  /// Counter::Set, callers quiesce writers first.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace hdd

#endif  // HDD_OBS_METRICS_REGISTRY_H_
