#include "obs/report.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace hdd {

namespace {

/// JSON string escaping for the small character set that can appear in
/// bench/config/metric names.
std::string Escaped(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

void WriteNumber(std::ostringstream& os, double value) {
  if (!std::isfinite(value)) {
    os << 0;
    return;
  }
  // Integers print as integers so counter metrics stay exact.
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    os << static_cast<long long>(value);
    return;
  }
  os.precision(6);
  os << std::fixed << value;
  os.unsetf(std::ios_base::fixed);
}

}  // namespace

RunReport::Row& RunReport::Row::Metrics(
    const std::map<std::string, std::uint64_t>& map,
    const std::string& prefix) {
  for (const auto& [key, value] : map) {
    Metric(prefix + key, static_cast<double>(value));
  }
  return *this;
}

RunReport::Row& RunReport::AddRow(const std::string& name) {
  rows_.emplace_back(name);
  return rows_.back();
}

std::string RunReport::ToJson() const {
  std::ostringstream os;
  os << "{\"schema_version\":1,\"bench\":\"" << Escaped(bench_name_)
     << "\",\"rows\":[";
  bool first_row = true;
  for (const Row& row : rows_) {
    if (!first_row) os << ",";
    first_row = false;
    os << "\n  {\"name\":\"" << Escaped(row.name()) << "\",\"metrics\":{";
    bool first_metric = true;
    for (const auto& [key, value] : row.metrics()) {
      if (!first_metric) os << ",";
      first_metric = false;
      os << "\"" << Escaped(key) << "\":";
      WriteNumber(os, value);
    }
    os << "}}";
  }
  os << "\n]}\n";
  return os.str();
}

bool RunReport::WriteFile(const std::string& path, std::string* error) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  out << ToJson();
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write failed for " + path;
    return false;
  }
  return true;
}

std::optional<std::string> FlagValue(int argc, char** argv,
                                     const std::string& flag) {
  const std::string prefix = flag + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return std::nullopt;
}

std::uint64_t EnvOr(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  if (end == raw || value == 0) return fallback;
  return static_cast<std::uint64_t>(value);
}

double CalibrationSpinsPerSec() {
  using Clock = std::chrono::steady_clock;
  // Median over several windows, NOT best-of: the reference must share
  // the benches' exposure to host noise. A best-of reference dodges a
  // sustained steal burst through one lucky preemption-free window while
  // the much longer bench runs cannot, and the burst then reads as a
  // code regression; the median window slows down with the host exactly
  // like the benches do.
  constexpr int kWindows = 9;
  constexpr std::uint64_t kSpinsPerWindow = 1'000'000;
  volatile std::uint64_t sink = 0;  // keeps the loop observable
  std::vector<double> rates;
  rates.reserve(kWindows);
  for (int w = 0; w < kWindows; ++w) {
    std::uint64_t x = 0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(w);
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < kSpinsPerWindow; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
    }
    const auto t1 = Clock::now();
    sink = sink + x;
    const double seconds = std::chrono::duration<double>(t1 - t0).count();
    if (seconds > 0) {
      rates.push_back(static_cast<double>(kSpinsPerWindow) / seconds);
    }
  }
  if (rates.empty()) return 0.0;
  std::sort(rates.begin(), rates.end());
  return rates[rates.size() / 2];
}

bool NormalizedBest::Offer(double value) {
  const double cal_after = CalibrationSpinsPerSec();
  // The slower bracket is the pessimistic host speed during the run; a
  // burst overlapping either edge pulls the pair's reference down with
  // the throughput it depressed.
  const double cal = std::min(last_cal_, cal_after);
  last_cal_ = cal_after;
  const double norm = cal > 0 ? value / cal : value;
  if (norm <= best_norm_) return false;
  best_norm_ = norm;
  best_value_ = value;
  best_cal_ = cal;
  return true;
}

std::vector<int> EnvListOr(const char* name, std::vector<int> fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  std::vector<int> out;
  std::stringstream ss(raw);
  std::string token;
  while (std::getline(ss, token, ',')) {
    const int value = std::atoi(token.c_str());
    if (value > 0) out.push_back(value);
  }
  return out.empty() ? fallback : out;
}

}  // namespace hdd
