#ifndef HDD_OBS_REPORT_H_
#define HDD_OBS_REPORT_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hdd {

/// Machine-readable result of one benchmark run, in the stable schema
/// ci/compare_bench.py diffs against the checked-in baseline
/// (BENCH_7.json at the repo root):
///
///   {
///     "schema_version": 1,
///     "bench": "<bench name>",
///     "rows": [
///       {"name": "<config name>", "metrics": {"txn_per_sec": 123.4, ...}}
///     ]
///   }
///
/// Contract with the comparator: a row is identified by (bench, name);
/// metric keys ending in "_per_sec" are throughput-like (higher is
/// better) and are regression-gated; every other metric is informational.
/// A row may carry a "gate_tolerance" metric (fraction, e.g. 0.5) to
/// widen its own gate past the default threshold — for configurations
/// whose throughput is hostage to the host (fsync-bound modes), where
/// 15% is indistinguishable from disk noise. A row named "calibration"
/// is never gated; when both baseline and current carry one (metric
/// "spins_per_sec", see CalibrationSpinsPerSec), the comparator rescales
/// the current run's throughputs by the calibration ratio first, so a
/// co-tenant slowing the whole host does not read as a code regression.
/// A regular row may carry its own "spins_per_sec" (see NormalizedBest)
/// measured adjacent to the rep that produced its throughput; the
/// comparator then prefers that row-level ratio, which also absorbs
/// bursts too brief to register in the bench-level calibration. The
/// "spins_per_sec" key itself is calibration metadata and is never
/// gated despite its suffix.
/// Adding rows or metrics is backward compatible; renaming them silently
/// drops the baseline comparison, so don't.
class RunReport {
 public:
  explicit RunReport(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  class Row {
   public:
    explicit Row(std::string name) : name_(std::move(name)) {}
    Row& Metric(const std::string& key, double value) {
      metrics_[key] = value;
      return *this;
    }
    Row& Metric(const std::string& key, std::uint64_t value) {
      return Metric(key, static_cast<double>(value));
    }
    /// Folds a whole counter map in (e.g. a MetricsRegistry snapshot).
    Row& Metrics(const std::map<std::string, std::uint64_t>& map,
                 const std::string& prefix = "");
    const std::string& name() const { return name_; }
    const std::map<std::string, double>& metrics() const { return metrics_; }

   private:
    std::string name_;
    std::map<std::string, double> metrics_;
  };

  Row& AddRow(const std::string& name);
  const std::vector<Row>& rows() const { return rows_; }
  const std::string& bench_name() const { return bench_name_; }

  std::string ToJson() const;

  /// Writes ToJson() to `path`; returns false with *error set on failure.
  bool WriteFile(const std::string& path, std::string* error) const;

 private:
  std::string bench_name_;
  std::vector<Row> rows_;
};

/// Extracts the value of a `--flag=value` argument ("--report", path out),
/// or nullopt when absent. Benches share this so every report-emitting
/// binary spells the flags the same way.
std::optional<std::string> FlagValue(int argc, char** argv,
                                     const std::string& flag);

/// `--report=PATH`: where to write the run report (nullopt: stdout note
/// only). `--trace=PATH`: enable tracing and write a Chrome trace there.
inline std::optional<std::string> ReportPathFromArgs(int argc, char** argv) {
  return FlagValue(argc, argv, "--report");
}
inline std::optional<std::string> TracePathFromArgs(int argc, char** argv) {
  return FlagValue(argc, argv, "--trace");
}

/// Reads a positive integer from environment variable `name`, defaulting
/// to `fallback` when unset or unparsable. Benches use it for CI smoke
/// runs (HDD_BENCH_TXNS, HDD_BENCH_THREADS).
std::uint64_t EnvOr(const char* name, std::uint64_t fallback);

/// Comma-separated integer list from the environment ("1,2,4"), or
/// `fallback` when unset/empty.
std::vector<int> EnvListOr(const char* name, std::vector<int> fallback);

/// Same-run CPU speed reference: best-of-several short fixed arithmetic
/// loops (xorshift64), in iterations per second. Benches publish it as
/// the "calibration" row so the comparator can divide out host-speed
/// drift between the baseline run and the current run. Takes ~20 ms.
double CalibrationSpinsPerSec();

/// Best-of-reps selector that co-locates a spin calibration with every
/// sample: Offer(tput) measures host speed right after the run and keeps
/// the sample with the highest host-normalized score, pairing it with
/// the slower of the calibrations bracketing that run. Publish the pair
/// as the row's "txn_per_sec" + "spins_per_sec" so the comparator can
/// rescale at row granularity — a steal burst that slows one config's
/// reps also slows the adjacent calibration windows, and the ratio
/// cancels, where the bench-level calibration row (measured seconds
/// away) would miss the burst entirely.
class NormalizedBest {
 public:
  NormalizedBest() : last_cal_(CalibrationSpinsPerSec()) {}

  /// Returns true when `value` becomes the new best (callers keep that
  /// rep's side data, e.g. full ExecutorStats).
  bool Offer(double value);

  double value() const { return best_value_; }
  double spins_per_sec() const { return best_cal_; }

 private:
  double last_cal_;
  double best_value_ = 0.0;
  double best_cal_ = 0.0;
  double best_norm_ = -1.0;
};

}  // namespace hdd

#endif  // HDD_OBS_REPORT_H_
