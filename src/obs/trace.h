#ifndef HDD_OBS_TRACE_H_
#define HDD_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <vector>

/// Compile-time gate: cmake -DHDD_TRACE=OFF defines HDD_TRACE_ENABLED=0
/// and every HDD_TRACE_* macro below expands to nothing — zero code, zero
/// data, zero branches in the hot paths. The default build compiles the
/// instrumentation in behind a single relaxed atomic load (tracing still
/// starts disabled at runtime; see TraceRecorder::Enable).
#ifndef HDD_TRACE_ENABLED
#define HDD_TRACE_ENABLED 1
#endif

namespace hdd {

/// One drained trace event. `category` and `name` are the string
/// *literals* passed at the emit site (the recorder stores pointers, so
/// only literals or other never-freed strings are legal).
struct TraceEvent {
  const char* category = nullptr;
  const char* name = nullptr;
  std::uint64_t start_ns = 0;  // since process start (NowNs origin)
  std::uint64_t dur_ns = 0;    // 0 for instants
  std::uint32_t tid = 0;       // recorder-assigned, dense from 1
  char phase = 'X';            // 'X' complete span, 'i' instant
};

/// Process-wide lock-free trace recorder.
///
/// Each emitting thread owns a private power-of-two ring of fixed-size
/// slots; emitting is wait-free (no CAS, no shared cache line): bump the
/// thread-local head, seqlock-publish the slot. When the ring wraps, the
/// oldest events are overwritten (`dropped()` counts them) — tracing
/// never blocks or allocates on the hot path after a thread's first
/// event.
///
/// Draining walks every thread's ring (threads that already exited
/// included) and keeps each slot only if its seqlock generation is intact
/// before and after the payload read, so a drain racing live emitters is
/// safe — and TSan-clean, because slot payloads are relaxed atomics — at
/// the cost of skipping the handful of slots being rewritten mid-read.
///
/// All methods are static: traces from every subsystem land in one
/// process-wide timeline, which is what a Chrome trace viewer wants.
class TraceRecorder {
 public:
  /// Runtime switch, off at process start. Cheap enough to leave compiled
  /// in: a disabled emit site costs one relaxed load.
  static void Enable();
  static void Disable();
  static bool enabled();

  /// Ring capacity (slots per thread), rounded up to a power of two.
  /// Affects only threads that emit their first event afterwards; call
  /// before enabling. Default 8192.
  static void SetBufferCapacity(std::size_t slots_per_thread);

  /// Records one event. Called by the macros below; public so tests and
  /// exporters can emit with synthetic timestamps. `category` and `name`
  /// must outlive the recorder (string literals).
  static void Emit(const char* category, const char* name,
                   std::uint64_t start_ns, std::uint64_t dur_ns, char phase);

  /// Snapshot of every thread's surviving events, sorted by start_ns.
  /// Safe concurrently with emitters (racing slots are skipped).
  static std::vector<TraceEvent> Drain();

  /// Events lost to ring wraparound since the last Reset.
  static std::uint64_t dropped();

  /// Clears all buffers, including those of exited threads, and the drop
  /// counter. Callers must ensure no thread is emitting (disable first
  /// and quiesce); a racing emitter corrupts no memory but may survive
  /// the reset.
  static void Reset();

  /// Drains and writes Chrome trace_event JSON ("Perfetto / about:tracing"
  /// format): {"traceEvents":[...]} with ts/dur in microseconds.
  static void WriteChromeTrace(std::ostream& os);

  /// Nanoseconds since process start (steady clock).
  static std::uint64_t NowNs();
};

/// RAII complete-span: captures the start time if tracing is enabled at
/// construction, emits one 'X' event at scope exit. Constructed disabled
/// it costs one relaxed load and writes nothing. A null `category`
/// suppresses the span entirely (the sampled macro's skip path); at
/// normal call sites the literal is non-null and the check folds away.
class TraceSpan {
 public:
  TraceSpan(const char* category, const char* name) {
    if (category != nullptr && TraceRecorder::enabled()) {
      category_ = category;
      name_ = name;
      start_ns_ = TraceRecorder::NowNs();
    }
  }
  ~TraceSpan() {
    if (category_ != nullptr) {
      TraceRecorder::Emit(category_, name_, start_ns_,
                          TraceRecorder::NowNs() - start_ns_, 'X');
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* category_ = nullptr;
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

#if HDD_TRACE_ENABLED
#define HDD_TRACE_CONCAT_INNER(a, b) a##b
#define HDD_TRACE_CONCAT(a, b) HDD_TRACE_CONCAT_INNER(a, b)
/// Scoped span: HDD_TRACE_SPAN("hdd", "gc_sweep");
#define HDD_TRACE_SPAN(category, name) \
  ::hdd::TraceSpan HDD_TRACE_CONCAT(hdd_trace_span_, __LINE__)(category, name)
/// Sampled span for sites so hot (sub-microsecond, many per txn) that
/// even a wait-free emit distorts what it measures: records every
/// `every_n`-th execution per thread, costing one thread-local counter
/// bump otherwise. `every_n` must be a compile-time constant.
///   HDD_TRACE_SPAN_SAMPLED("hdd", "protocol_a_bound", 16);
#define HDD_TRACE_SPAN_SAMPLED(category, name, every_n)                   \
  static thread_local std::uint32_t HDD_TRACE_CONCAT(hdd_trace_skip_,     \
                                                     __LINE__) = 0;       \
  ::hdd::TraceSpan HDD_TRACE_CONCAT(hdd_trace_span_, __LINE__)(           \
      ++HDD_TRACE_CONCAT(hdd_trace_skip_, __LINE__) % (every_n) == 0      \
          ? (category)                                                    \
          : nullptr,                                                      \
      name)
/// Point event: HDD_TRACE_INSTANT("hdd", "wall_release");
#define HDD_TRACE_INSTANT(category, name)                              \
  do {                                                                 \
    if (::hdd::TraceRecorder::enabled()) {                             \
      ::hdd::TraceRecorder::Emit(category, name,                       \
                                 ::hdd::TraceRecorder::NowNs(), 0,     \
                                 'i');                                 \
    }                                                                  \
  } while (0)
#else
#define HDD_TRACE_SPAN(category, name) ((void)0)
#define HDD_TRACE_SPAN_SAMPLED(category, name, every_n) ((void)0)
#define HDD_TRACE_INSTANT(category, name) ((void)0)
#endif

}  // namespace hdd

#endif  // HDD_OBS_TRACE_H_
