#ifndef HDD_COMMON_STATUS_H_
#define HDD_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace hdd {

/// Error category of a `Status`.
///
/// The concurrency-control layer distinguishes outcomes a caller must react
/// to differently:
///  - `kAborted`: the transaction lost a conflict and must be retried by the
///    caller with a fresh timestamp (the classical TO/2PL restart).
///  - `kDeadlock`: the transaction was chosen as a deadlock victim; retry.
///  - `kBusy`: a non-blocking call could not make progress right now.
/// The durability layer (src/wal/) adds two environment-fault categories:
///  - `kIoError`: a storage operation (append/fsync/truncate) failed; the
///    data may or may not be on disk, so the caller must treat the
///    affected commit as unresolved.
///  - `kCorruption`: on-disk bytes fail their integrity check (a complete
///    log frame with a CRC mismatch). Unlike a torn tail — which is the
///    expected shape of a crash and is silently truncated — corruption
///    means the medium lied, and recovery refuses to guess past it.
/// Everything else signals a programming or configuration error.
enum class StatusCode {
  kOk = 0,
  kAborted,
  kDeadlock,
  kBusy,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kUnimplemented,
  kIoError,
  kCorruption,
};

/// Returns a stable human-readable name ("Ok", "Aborted", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Value-semantic error carrier used throughout the library instead of
/// exceptions. Cheap to copy in the OK case (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Deadlock(std::string msg) {
    return Status(StatusCode::kDeadlock, std::move(msg));
  }
  static Status Busy(std::string msg) {
    return Status(StatusCode::kBusy, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// True for the outcomes that mean "restart the transaction".
  bool IsRetryable() const {
    return code_ == StatusCode::kAborted || code_ == StatusCode::kDeadlock;
  }

  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Minimal StatusOr: either a `Status` (never OK) or a value of `T`.
template <typename T>
class Result {
 public:
  /// Implicit from value and from error status, so call sites can
  /// `return value;` / `return Status::...;` naturally.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK when value_ present.
  std::optional<T> value_;
};

}  // namespace hdd

/// Propagates a non-OK status to the caller.
#define HDD_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::hdd::Status _hdd_status = (expr);      \
    if (!_hdd_status.ok()) return _hdd_status; \
  } while (0)

#define HDD_CONCAT_INNER_(a, b) a##b
#define HDD_CONCAT_(a, b) HDD_CONCAT_INNER_(a, b)

/// `HDD_ASSIGN_OR_RETURN(auto v, SomeResultCall());`
#define HDD_ASSIGN_OR_RETURN(decl, expr)                        \
  auto HDD_CONCAT_(_hdd_result_, __LINE__) = (expr);            \
  if (!HDD_CONCAT_(_hdd_result_, __LINE__).ok())                \
    return HDD_CONCAT_(_hdd_result_, __LINE__).status();        \
  decl = std::move(HDD_CONCAT_(_hdd_result_, __LINE__)).value()

#endif  // HDD_COMMON_STATUS_H_
