#ifndef HDD_COMMON_RNG_H_
#define HDD_COMMON_RNG_H_

#include <cassert>
#include <cstdint>
#include <vector>

namespace hdd {

/// Deterministic, fast PRNG (xoshiro256**). Workloads and property tests
/// seed it explicitly so every run is reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { Seed(seed); }

  /// Re-seeds via SplitMix64 expansion so that any seed (including 0)
  /// produces a well-mixed state.
  void Seed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial.
  bool NextBool(double p_true);

 private:
  std::uint64_t state_[4];
};

/// Zipfian distribution over [0, n) with skew `theta` in [0, 1) — the YCSB
/// formulation. Used by synthetic workloads to model hot granules.
class ZipfianGenerator {
 public:
  ZipfianGenerator(std::uint64_t n, double theta);

  /// Draws one sample in [0, n). Stateless after construction.
  std::uint64_t Next(Rng& rng) const;

  std::uint64_t n() const { return n_; }

 private:
  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

}  // namespace hdd

#endif  // HDD_COMMON_RNG_H_
