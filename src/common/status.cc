#include "common/status.h"

namespace hdd {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kDeadlock:
      return "Deadlock";
    case StatusCode::kBusy:
      return "Busy";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCorruption:
      return "Corruption";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace hdd
