#ifndef HDD_COMMON_METRICS_H_
#define HDD_COMMON_METRICS_H_

#include <cstdint>
#include <map>
#include <string>

#include "obs/metrics_registry.h"

namespace hdd {

/// Counters every concurrency controller reports. These quantify the
/// paper's headline claim — how much *read registration* (read locks /
/// read timestamps) and how much waiting/aborting each technique incurs.
///
/// The struct is a facade over a MetricsRegistry (src/obs/): each field
/// is a named, striped registry counter, so the same numbers are
/// reachable by name (reports, tables, the sim harness) and the fields
/// keep their historical atomic-like API (`.fetch_add()` / `.load()`).
struct CcMetrics {
  MetricsRegistry registry;

  // Registration overhead.
  Counter& read_locks_acquired = registry.GetCounter("read_locks_acquired");
  Counter& write_locks_acquired = registry.GetCounter("write_locks_acquired");
  Counter& read_timestamps_written =
      registry.GetCounter("read_timestamps_written");
  Counter& unregistered_reads =
      registry.GetCounter("unregistered_reads");  // HDD Protocol A/C reads.

  // Conflict outcomes.
  Counter& blocked_reads = registry.GetCounter("blocked_reads");
  Counter& blocked_writes = registry.GetCounter("blocked_writes");
  Counter& aborts = registry.GetCounter("aborts");
  Counter& deadlocks = registry.GetCounter("deadlocks");

  // Transaction outcomes.
  Counter& commits = registry.GetCounter("commits");
  Counter& begins = registry.GetCounter("begins");

  // Versioned-store activity.
  Counter& versions_created = registry.GetCounter("versions_created");
  Counter& version_reads = registry.GetCounter("version_reads");

  // Epoch/batch execution (HDD): closed epochs, and how often a
  // Protocol A bound was served from the per-epoch shared cache vs
  // evaluated on demand.
  Counter& epochs = registry.GetCounter("epochs");
  Counter& epoch_shared_bound_hits =
      registry.GetCounter("epoch_shared_bound_hits");
  Counter& epoch_shared_bound_misses =
      registry.GetCounter("epoch_shared_bound_misses");

  void Reset() { registry.Reset(); }

  /// Flattens into name -> value, for table printers and tests.
  std::map<std::string, std::uint64_t> ToMap() const {
    return registry.SnapshotCounters();
  }
};

/// Counters of the durability subsystem (src/wal/). The interesting ratio
/// is fsyncs per commit: group commit exists to push it far below 1.
/// Facade over a MetricsRegistry, like CcMetrics; the batch-size
/// histogram is a registry histogram whose log-linear buckets aggregate
/// exactly into the historical power-of-two "batch_size_ge_<n>" keys.
struct WalMetrics {
  MetricsRegistry registry;

  Counter& records_appended = registry.GetCounter("records_appended");
  Counter& bytes_appended = registry.GetCounter("bytes_appended");
  Counter& fsyncs = registry.GetCounter("fsyncs");
  /// Commits that waited for durability (every acked update commit).
  Counter& commit_waits = registry.GetCounter("commit_waits");
  /// Group-commit leader rounds, i.e. fsync batches.
  Counter& group_commit_batches = registry.GetCounter("group_commit_batches");
  /// Commits made durable per leader round.
  Histogram& batch_size = registry.GetHistogram("batch_size");
  Counter& checkpoints = registry.GetCounter("checkpoints");
  Counter& recovery_replayed_records =
      registry.GetCounter("recovery_replayed_records");
  Counter& recovery_replay_us = registry.GetCounter("recovery_replay_us");

  /// Legacy bucket count of the flattened batch-size histogram: bucket i
  /// counts batches of size in [2^i, 2^(i+1)), the last absorbing the
  /// tail.
  static constexpr std::size_t kBatchBuckets = 8;

  void ObserveBatch(std::uint64_t commits_in_batch) {
    group_commit_batches.Add(1);
    batch_size.Record(commits_in_batch);
  }

  void Reset() { registry.Reset(); }

  /// Flattens into name -> value; histogram buckets appear as
  /// "batch_size_ge_<lower bound>".
  std::map<std::string, std::uint64_t> ToMap() const;
};

}  // namespace hdd

#endif  // HDD_COMMON_METRICS_H_
