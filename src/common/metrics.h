#ifndef HDD_COMMON_METRICS_H_
#define HDD_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

namespace hdd {

/// Counters every concurrency controller reports. These quantify the
/// paper's headline claim — how much *read registration* (read locks /
/// read timestamps) and how much waiting/aborting each technique incurs.
struct CcMetrics {
  // Registration overhead.
  std::atomic<std::uint64_t> read_locks_acquired{0};
  std::atomic<std::uint64_t> write_locks_acquired{0};
  std::atomic<std::uint64_t> read_timestamps_written{0};
  std::atomic<std::uint64_t> unregistered_reads{0};  // HDD Protocol A/C reads.

  // Conflict outcomes.
  std::atomic<std::uint64_t> blocked_reads{0};
  std::atomic<std::uint64_t> blocked_writes{0};
  std::atomic<std::uint64_t> aborts{0};
  std::atomic<std::uint64_t> deadlocks{0};

  // Transaction outcomes.
  std::atomic<std::uint64_t> commits{0};
  std::atomic<std::uint64_t> begins{0};

  // Versioned-store activity.
  std::atomic<std::uint64_t> versions_created{0};
  std::atomic<std::uint64_t> version_reads{0};

  void Reset() {
    read_locks_acquired = 0;
    write_locks_acquired = 0;
    read_timestamps_written = 0;
    unregistered_reads = 0;
    blocked_reads = 0;
    blocked_writes = 0;
    aborts = 0;
    deadlocks = 0;
    commits = 0;
    begins = 0;
    versions_created = 0;
    version_reads = 0;
  }

  /// Flattens into name -> value, for table printers and tests.
  std::map<std::string, std::uint64_t> ToMap() const;
};

}  // namespace hdd

#endif  // HDD_COMMON_METRICS_H_
