#ifndef HDD_COMMON_METRICS_H_
#define HDD_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>

namespace hdd {

/// Counters every concurrency controller reports. These quantify the
/// paper's headline claim — how much *read registration* (read locks /
/// read timestamps) and how much waiting/aborting each technique incurs.
struct CcMetrics {
  // Registration overhead.
  std::atomic<std::uint64_t> read_locks_acquired{0};
  std::atomic<std::uint64_t> write_locks_acquired{0};
  std::atomic<std::uint64_t> read_timestamps_written{0};
  std::atomic<std::uint64_t> unregistered_reads{0};  // HDD Protocol A/C reads.

  // Conflict outcomes.
  std::atomic<std::uint64_t> blocked_reads{0};
  std::atomic<std::uint64_t> blocked_writes{0};
  std::atomic<std::uint64_t> aborts{0};
  std::atomic<std::uint64_t> deadlocks{0};

  // Transaction outcomes.
  std::atomic<std::uint64_t> commits{0};
  std::atomic<std::uint64_t> begins{0};

  // Versioned-store activity.
  std::atomic<std::uint64_t> versions_created{0};
  std::atomic<std::uint64_t> version_reads{0};

  void Reset() {
    read_locks_acquired = 0;
    write_locks_acquired = 0;
    read_timestamps_written = 0;
    unregistered_reads = 0;
    blocked_reads = 0;
    blocked_writes = 0;
    aborts = 0;
    deadlocks = 0;
    commits = 0;
    begins = 0;
    versions_created = 0;
    version_reads = 0;
  }

  /// Flattens into name -> value, for table printers and tests.
  std::map<std::string, std::uint64_t> ToMap() const;
};

/// Counters of the durability subsystem (src/wal/). The interesting ratio
/// is fsyncs per commit: group commit exists to push it far below 1.
struct WalMetrics {
  std::atomic<std::uint64_t> records_appended{0};
  std::atomic<std::uint64_t> bytes_appended{0};
  std::atomic<std::uint64_t> fsyncs{0};
  /// Commits that waited for durability (every acked update commit).
  std::atomic<std::uint64_t> commit_waits{0};
  /// Group-commit leader rounds, i.e. fsync batches.
  std::atomic<std::uint64_t> group_commit_batches{0};
  /// Histogram of commits made durable per batch: bucket i counts batches
  /// of size in [2^i, 2^(i+1)), the last bucket absorbing the tail.
  static constexpr std::size_t kBatchBuckets = 8;
  std::array<std::atomic<std::uint64_t>, kBatchBuckets> batch_size_buckets{};
  std::atomic<std::uint64_t> checkpoints{0};
  std::atomic<std::uint64_t> recovery_replayed_records{0};
  std::atomic<std::uint64_t> recovery_replay_us{0};

  void ObserveBatch(std::uint64_t commits_in_batch) {
    group_commit_batches.fetch_add(1, std::memory_order_relaxed);
    std::size_t bucket = 0;
    while (bucket + 1 < kBatchBuckets && (2ull << bucket) <= commits_in_batch) {
      ++bucket;
    }
    batch_size_buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  }

  void Reset() {
    records_appended = 0;
    bytes_appended = 0;
    fsyncs = 0;
    commit_waits = 0;
    group_commit_batches = 0;
    for (auto& bucket : batch_size_buckets) bucket = 0;
    checkpoints = 0;
    recovery_replayed_records = 0;
    recovery_replay_us = 0;
  }

  /// Flattens into name -> value; histogram buckets appear as
  /// "batch_size_ge_<lower bound>".
  std::map<std::string, std::uint64_t> ToMap() const;
};

}  // namespace hdd

#endif  // HDD_COMMON_METRICS_H_
