#include "common/metrics.h"

namespace hdd {

std::map<std::string, std::uint64_t> CcMetrics::ToMap() const {
  return {
      {"read_locks_acquired", read_locks_acquired.load()},
      {"write_locks_acquired", write_locks_acquired.load()},
      {"read_timestamps_written", read_timestamps_written.load()},
      {"unregistered_reads", unregistered_reads.load()},
      {"blocked_reads", blocked_reads.load()},
      {"blocked_writes", blocked_writes.load()},
      {"aborts", aborts.load()},
      {"deadlocks", deadlocks.load()},
      {"commits", commits.load()},
      {"begins", begins.load()},
      {"versions_created", versions_created.load()},
      {"version_reads", version_reads.load()},
  };
}

std::map<std::string, std::uint64_t> WalMetrics::ToMap() const {
  std::map<std::string, std::uint64_t> out = {
      {"records_appended", records_appended.load()},
      {"bytes_appended", bytes_appended.load()},
      {"fsyncs", fsyncs.load()},
      {"commit_waits", commit_waits.load()},
      {"group_commit_batches", group_commit_batches.load()},
      {"checkpoints", checkpoints.load()},
      {"recovery_replayed_records", recovery_replayed_records.load()},
      {"recovery_replay_us", recovery_replay_us.load()},
  };
  for (std::size_t i = 0; i < kBatchBuckets; ++i) {
    out["batch_size_ge_" + std::to_string(1ull << i)] =
        batch_size_buckets[i].load();
  }
  return out;
}

}  // namespace hdd
