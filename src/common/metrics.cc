#include "common/metrics.h"

namespace hdd {

std::map<std::string, std::uint64_t> WalMetrics::ToMap() const {
  std::map<std::string, std::uint64_t> out = registry.SnapshotCounters();

  // Flatten the batch-size histogram into the historical power-of-two
  // buckets. Every log-linear bucket lies entirely within one octave
  // (its values share a floor(log2)), so the aggregation is exact, not
  // approximate: exact buckets 0..15 are their own value; bucket
  // index >= 16 covers values with floor(log2) == 4 + (index-16)/16.
  const Histogram::Snapshot snap = batch_size.snapshot();
  std::uint64_t octaves[kBatchBuckets] = {};
  if (!snap.buckets.empty()) {
    for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
      if (snap.buckets[i] == 0) continue;
      std::size_t octave;
      if (i < Histogram::kSubBuckets) {
        std::size_t log2v = 0;
        while ((std::uint64_t{2} << log2v) <= i) ++log2v;
        octave = log2v;
      } else {
        octave = 4 + (i - Histogram::kSubBuckets) / Histogram::kSubBuckets;
      }
      if (octave >= kBatchBuckets) octave = kBatchBuckets - 1;
      octaves[octave] += snap.buckets[i];
    }
  }
  for (std::size_t i = 0; i < kBatchBuckets; ++i) {
    out["batch_size_ge_" + std::to_string(std::uint64_t{1} << i)] = octaves[i];
  }
  return out;
}

}  // namespace hdd
