#include "common/metrics.h"

namespace hdd {

std::map<std::string, std::uint64_t> CcMetrics::ToMap() const {
  return {
      {"read_locks_acquired", read_locks_acquired.load()},
      {"write_locks_acquired", write_locks_acquired.load()},
      {"read_timestamps_written", read_timestamps_written.load()},
      {"unregistered_reads", unregistered_reads.load()},
      {"blocked_reads", blocked_reads.load()},
      {"blocked_writes", blocked_writes.load()},
      {"aborts", aborts.load()},
      {"deadlocks", deadlocks.load()},
      {"commits", commits.load()},
      {"begins", begins.load()},
      {"versions_created", versions_created.load()},
      {"version_reads", version_reads.load()},
  };
}

}  // namespace hdd
