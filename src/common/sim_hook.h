#ifndef HDD_COMMON_SIM_HOOK_H_
#define HDD_COMMON_SIM_HOOK_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace hdd {

/// Faults a simulation can force onto the code under test.
enum class SimFaultKind {
  kNone,
  kAbort,  // transaction attempt forcibly aborted at a yield point
  kCrash,  // driver "crashes": the attempt is abandoned, never retried
  kStall,  // the task is descheduled for several rounds (delayed commit)
};

/// Thrown by the scheduler out of a fault-armed, interruptible yield point.
/// The executor catches it at the attempt boundary, aborts the transaction
/// (modelling recovery) and retries (kAbort) or gives up (kCrash). Yield
/// points inside code with partially applied effects must be declared
/// non-interruptible so this never unwinds half a commit.
struct SimFault {
  SimFaultKind kind = SimFaultKind::kAbort;
};

/// Thrown into every simulated task when the run is over (deadlock
/// detected, step budget exhausted, or explicit stop): tasks unwind their
/// stacks — everything on them is RAII — and exit their worker loops.
struct SimHalt {};

/// Cooperative-scheduling hook. Production code is instrumented with the
/// inline helpers below; with no hook installed they cost one thread-local
/// load and a predicted branch. Under deterministic simulation a
/// SimScheduler installs itself as the current thread's hook and then OWNS
/// every interleaving decision:
///
///  * `Yield` marks a point where the running task may be preempted (and
///    where injected faults fire). Tasks must hold no mutex that another
///    task acquires exclusively when they yield — under the simulation
///    exactly one task runs at a time, so a descheduled lock holder would
///    deadlock the party. Holding a shared lock that others also take
///    shared is fine. In this codebase that means: yield BEFORE taking a
///    shard/controller latch, never inside the critical section.
///  * `BlockOn`/`NotifyAll` replace condition-variable waits: the
///    scheduler is told synchronously who sleeps on which channel and who
///    was woken, so wakeup delivery is part of the deterministic schedule
///    instead of an OS race. Every wait site must sit in a predicate
///    re-check loop (they all do — the simulator injects spurious wakeups
///    to keep it that way).
class SimHook {
 public:
  virtual ~SimHook() = default;

  /// Preemption point. `site` is a static string naming the location (it
  /// becomes part of the replay trace); `interruptible` declares whether
  /// an injected abort/crash may fire here by throwing SimFault.
  virtual void Yield(const char* site, bool interruptible) = 0;

  /// Deschedules the current task until `channel` is notified. `lock` is
  /// the caller's held lock: released before parking, reacquired before
  /// returning (like std::condition_variable::wait). May throw SimHalt.
  virtual void BlockOn(const void* channel,
                       std::unique_lock<std::mutex>& lock) = 0;

  /// Marks every task blocked on `channel` runnable (possibly delayed, if
  /// the fault injector is dropping wakeups). Never blocks, never throws.
  virtual void NotifyAll(const void* channel) = 0;
};

/// The current thread's hook (null = real execution). A SimScheduler sets
/// it for each task thread it adopts and clears it when the task exits.
inline SimHook*& ThreadSimHook() {
  thread_local SimHook* hook = nullptr;
  return hook;
}

/// Preemption + fault injection point; no-op outside a simulation.
inline void SimYield(const char* site, bool interruptible = true) {
  if (SimHook* hook = ThreadSimHook()) hook->Yield(site, interruptible);
}

/// One round of a condition-variable wait. Callers re-check their
/// predicate in a loop around this, exactly as with a raw cv wait.
inline void SimWait(std::condition_variable& cv,
                    std::unique_lock<std::mutex>& lock, const void* channel) {
  if (SimHook* hook = ThreadSimHook()) {
    hook->BlockOn(channel, lock);
  } else {
    cv.wait(lock);
  }
}

/// Predicate wait with a real-time timeout. Simulated time has no
/// wall-clock, so under a hook the timeout is ignored (the simulator's
/// deadlock detector plays that role) and the return is always true.
template <class Rep, class Period, class Predicate>
bool SimWaitFor(std::condition_variable& cv,
                std::unique_lock<std::mutex>& lock, const void* channel,
                std::chrono::duration<Rep, Period> timeout, Predicate pred) {
  if (SimHook* hook = ThreadSimHook()) {
    while (!pred()) hook->BlockOn(channel, lock);
    return true;
  }
  return cv.wait_for(lock, timeout, std::move(pred));
}

/// notify_all that also tells the simulator (the real notify is harmless
/// under simulation: no task sleeps on the OS cv).
inline void SimNotifyAll(std::condition_variable& cv, const void* channel) {
  cv.notify_all();
  if (SimHook* hook = ThreadSimHook()) hook->NotifyAll(channel);
}

/// Backoff sleep: under simulation a sleep is just a reschedule.
template <class Rep, class Period>
void SimSleep(std::chrono::duration<Rep, Period> duration) {
  if (SimHook* hook = ThreadSimHook()) {
    hook->Yield("common/backoff", /*interruptible=*/false);
  } else {
    std::this_thread::sleep_for(duration);
  }
}

}  // namespace hdd

#endif  // HDD_COMMON_SIM_HOOK_H_
