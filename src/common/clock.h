#ifndef HDD_COMMON_CLOCK_H_
#define HDD_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>
#include <limits>

namespace hdd {

/// Logical time. The paper's `I(t)`, `C(t)` and version timestamps `TS(d^v)`
/// are all drawn from one totally ordered logical clock, so initiation and
/// commit events of all transactions are comparable.
using Timestamp = std::uint64_t;

/// "No time" sentinel: smaller than every real timestamp.
inline constexpr Timestamp kTimestampMin = 0;
/// "Not yet happened" sentinel (e.g. commit time of an active transaction).
inline constexpr Timestamp kTimestampInfinity =
    std::numeric_limits<Timestamp>::max();

/// Monotone logical clock. `Tick()` returns a fresh, strictly increasing
/// timestamp; `Now()` peeks at the latest issued value. Thread-safe.
///
/// Injectable: controllers hold a LogicalClock* and call through these
/// virtuals, so the deterministic simulation harness can substitute a
/// SimClock (src/sim/sim_clock.h) that additionally audits tick issuance
/// against the scheduled interleaving. Tick() may be called while holding
/// controller latches, so overrides must never block or yield.
class LogicalClock {
 public:
  LogicalClock() : next_(1) {}
  virtual ~LogicalClock() = default;

  LogicalClock(const LogicalClock&) = delete;
  LogicalClock& operator=(const LogicalClock&) = delete;

  /// Issues the next timestamp (1, 2, 3, ...).
  virtual Timestamp Tick() {
    return next_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Latest timestamp issued so far (0 if none).
  virtual Timestamp Now() const {
    return next_.load(std::memory_order_relaxed) - 1;
  }

  /// Ensures every future Tick() returns a value strictly above `ts`.
  /// Recovery handshake: after replaying a log whose largest timestamp is
  /// `ts`, the restarted controller must never re-issue a timestamp at or
  /// below it (order_keys would collide and version order would fork).
  void AdvanceTo(Timestamp ts) {
    Timestamp current = next_.load(std::memory_order_relaxed);
    while (current < ts + 1 &&
           !next_.compare_exchange_weak(current, ts + 1,
                                        std::memory_order_relaxed)) {
    }
  }

  /// Resets to the initial state (single-threaded use only; for tests).
  void Reset() { next_.store(1, std::memory_order_relaxed); }

 private:
  std::atomic<Timestamp> next_;
};

}  // namespace hdd

#endif  // HDD_COMMON_CLOCK_H_
