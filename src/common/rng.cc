#include "common/rng.h"

#include <cmath>

namespace hdd {

namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::Seed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p_true) { return NextDouble() < p_true; }

namespace {

double Zeta(std::uint64_t n, double theta) {
  double sum = 0;
  for (std::uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(i, theta);
  return sum;
}

}  // namespace

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta) {
  assert(n > 0);
  zetan_ = Zeta(n, theta);
  const double zeta2 = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
}

std::uint64_t ZipfianGenerator::Next(Rng& rng) const {
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto idx = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return idx >= n_ ? n_ - 1 : idx;
}

}  // namespace hdd
