#include "storage/database.h"

#include <memory>

namespace hdd {

std::uint32_t Segment::size() const {
  std::lock_guard<std::mutex> guard(latch_);
  return static_cast<std::uint32_t>(granules_.size());
}

std::uint32_t Segment::Allocate(Value initial) {
  std::lock_guard<std::mutex> guard(latch_);
  granules_.emplace_back(initial);
  return static_cast<std::uint32_t>(granules_.size()) - 1;
}

Granule& Segment::granule(std::uint32_t index) { return granules_[index]; }

const Granule& Segment::granule(std::uint32_t index) const {
  return granules_[index];
}

Database::Database(std::vector<std::string> segment_names,
                   std::uint32_t granules_per_segment, Value initial) {
  segments_.reserve(segment_names.size());
  for (auto& name : segment_names) {
    segments_.push_back(std::make_unique<Segment>(std::move(name)));
    for (std::uint32_t i = 0; i < granules_per_segment; ++i) {
      segments_.back()->Allocate(initial);
    }
  }
}

Database::Database(int num_segments, std::uint32_t granules_per_segment,
                   Value initial) {
  segments_.reserve(num_segments);
  for (int s = 0; s < num_segments; ++s) {
    segments_.push_back(std::make_unique<Segment>("D" + std::to_string(s)));
    for (std::uint32_t i = 0; i < granules_per_segment; ++i) {
      segments_.back()->Allocate(initial);
    }
  }
}

Status Database::Validate(GranuleRef ref) const {
  if (ref.segment < 0 || ref.segment >= num_segments()) {
    return Status::InvalidArgument("segment out of range");
  }
  if (ref.index >= segment(ref.segment).size()) {
    return Status::InvalidArgument("granule index out of range");
  }
  return Status::OK();
}

std::size_t Database::TotalVersions() const {
  std::size_t total = 0;
  for (const auto& seg : segments_) {
    const std::uint32_t count = seg->size();
    std::lock_guard<std::mutex> guard(seg->latch());
    for (std::uint32_t i = 0; i < count; ++i) {
      total += seg->granule(i).num_versions();
    }
  }
  return total;
}

std::size_t Database::CollectGarbage(Timestamp horizon) {
  std::size_t removed = 0;
  for (int s = 0; s < num_segments(); ++s) {
    removed += CollectGarbageSegment(s, horizon);
  }
  return removed;
}

std::size_t Database::CollectGarbageSegment(SegmentId s, Timestamp horizon) {
  Segment& seg = segment(s);
  const std::uint32_t count = seg.size();
  std::lock_guard<std::mutex> guard(seg.latch());
  std::size_t removed = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    removed += seg.granule(i).Prune(horizon);
  }
  return removed;
}

}  // namespace hdd
