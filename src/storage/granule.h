#ifndef HDD_STORAGE_GRANULE_H_
#define HDD_STORAGE_GRANULE_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "storage/version.h"

namespace hdd {

/// A data granule: "the smallest unit of access so far as concurrency
/// control is concerned" (paper §4.0), holding a chain of versions ordered
/// by `order_key`.
///
/// Granules are not internally synchronized; the owning segment's
/// controller serializes access (paper §4.2).
class Granule {
 public:
  /// Starts with one committed initial version (order_key 0, wts 0) so
  /// that every read of a fresh database finds a version.
  explicit Granule(Value initial);

  std::size_t num_versions() const { return versions_.size(); }
  const std::vector<Version>& versions() const { return versions_; }

  /// Latest committed version with `wts < bound` — the paper's
  ///   Max(TS(d^v)) s.t. TS(d^v) < bound
  /// served by Protocols A and C. Returns nullptr when none exists.
  const Version* LatestCommittedBefore(Timestamp bound) const;

  /// Latest committed version overall; nullptr when none.
  const Version* LatestCommitted() const;

  /// Version with the largest wts strictly below `ts`, committed or not —
  /// what MVTO must read (possibly waiting for commit). nullptr if none.
  Version* VersionBefore(Timestamp ts);

  /// Version with the largest order_key (the tip of the chain).
  Version* Latest();
  const Version* Latest() const;

  /// Version with the largest wts at or below any bound among *all*
  /// versions, used to detect late writes under MVTO: returns the largest
  /// registered rts among versions with wts < ts.
  Timestamp MaxRtsOfVersionsBefore(Timestamp ts) const;

  /// Smallest wts strictly greater than `ts` among committed versions;
  /// kTimestampInfinity when none. (Successor probe for MVTO writes.)
  Timestamp NextWtsAfter(Timestamp ts) const;

  /// Inserts a version keeping the chain sorted by order_key. Fails with
  /// AlreadyExists on a duplicate order_key.
  Status Insert(Version v);

  /// Removes the version with this order_key (abort path). Fails with
  /// NotFound when absent.
  Status Remove(std::uint64_t order_key);

  /// Marks the version with this order_key committed.
  Status MarkCommitted(std::uint64_t order_key);

  /// Finds a version by order_key; nullptr when absent.
  Version* Find(std::uint64_t order_key);
  const Version* Find(std::uint64_t order_key) const;

  /// Replaces the whole chain (snapshot restore / recovery tooling).
  /// `versions` must be non-empty and strictly ordered by order_key.
  Status RestoreVersions(std::vector<Version> versions);

  /// Garbage-collects committed versions that can no longer be read: every
  /// committed version older (by wts) than the newest committed version
  /// with `wts < horizon` is dropped; that newest one is retained as the
  /// snapshot base. Uncommitted versions are always retained. Returns the
  /// number of versions removed. (Paper §7.3.)
  std::size_t Prune(Timestamp horizon);

 private:
  std::vector<Version> versions_;  // sorted by order_key ascending
};

}  // namespace hdd

#endif  // HDD_STORAGE_GRANULE_H_
