#include "storage/granule.h"

#include <algorithm>

namespace hdd {

namespace {

bool OrderKeyLess(const Version& v, std::uint64_t key) {
  return v.order_key < key;
}

}  // namespace

Granule::Granule(Value initial) {
  Version v;
  v.order_key = 0;
  v.wts = kTimestampMin;
  v.creator = kInvalidTxn;
  v.value = initial;
  v.committed = true;
  versions_.push_back(v);
}

const Version* Granule::LatestCommittedBefore(Timestamp bound) const {
  const Version* best = nullptr;
  for (const Version& v : versions_) {
    if (v.committed && v.wts < bound &&
        (best == nullptr || v.wts > best->wts)) {
      best = &v;
    }
  }
  return best;
}

const Version* Granule::LatestCommitted() const {
  return LatestCommittedBefore(kTimestampInfinity);
}

Version* Granule::VersionBefore(Timestamp ts) {
  Version* best = nullptr;
  for (Version& v : versions_) {
    if (v.wts < ts && (best == nullptr || v.wts > best->wts)) best = &v;
  }
  return best;
}

Version* Granule::Latest() {
  return versions_.empty() ? nullptr : &versions_.back();
}

const Version* Granule::Latest() const {
  return versions_.empty() ? nullptr : &versions_.back();
}

Timestamp Granule::MaxRtsOfVersionsBefore(Timestamp ts) const {
  Timestamp max_rts = kTimestampMin;
  for (const Version& v : versions_) {
    if (v.wts < ts) max_rts = std::max(max_rts, v.rts);
  }
  return max_rts;
}

Timestamp Granule::NextWtsAfter(Timestamp ts) const {
  Timestamp best = kTimestampInfinity;
  for (const Version& v : versions_) {
    if (v.committed && v.wts > ts) best = std::min(best, v.wts);
  }
  return best;
}

Status Granule::Insert(Version v) {
  auto it = std::lower_bound(versions_.begin(), versions_.end(), v.order_key,
                             OrderKeyLess);
  if (it != versions_.end() && it->order_key == v.order_key) {
    return Status::AlreadyExists("duplicate version order key");
  }
  versions_.insert(it, v);
  return Status::OK();
}

Status Granule::Remove(std::uint64_t order_key) {
  auto it = std::lower_bound(versions_.begin(), versions_.end(), order_key,
                             OrderKeyLess);
  if (it == versions_.end() || it->order_key != order_key) {
    return Status::NotFound("version not found");
  }
  versions_.erase(it);
  return Status::OK();
}

Status Granule::MarkCommitted(std::uint64_t order_key) {
  Version* v = Find(order_key);
  if (v == nullptr) return Status::NotFound("version not found");
  v->committed = true;
  return Status::OK();
}

Version* Granule::Find(std::uint64_t order_key) {
  auto it = std::lower_bound(versions_.begin(), versions_.end(), order_key,
                             OrderKeyLess);
  if (it == versions_.end() || it->order_key != order_key) return nullptr;
  return &*it;
}

const Version* Granule::Find(std::uint64_t order_key) const {
  return const_cast<Granule*>(this)->Find(order_key);
}

Status Granule::RestoreVersions(std::vector<Version> versions) {
  if (versions.empty()) {
    return Status::InvalidArgument("a granule needs at least one version");
  }
  for (std::size_t i = 0; i + 1 < versions.size(); ++i) {
    if (versions[i].order_key >= versions[i + 1].order_key) {
      return Status::InvalidArgument("versions not ordered by order_key");
    }
  }
  versions_ = std::move(versions);
  return Status::OK();
}

std::size_t Granule::Prune(Timestamp horizon) {
  // Newest committed version strictly below the horizon is the snapshot
  // base every surviving reader could still need.
  const Version* base = LatestCommittedBefore(horizon);
  if (base == nullptr) return 0;
  const std::uint64_t base_key = base->order_key;
  const Timestamp base_wts = base->wts;
  const std::size_t before = versions_.size();
  versions_.erase(
      std::remove_if(versions_.begin(), versions_.end(),
                     [&](const Version& v) {
                       return v.committed && v.wts < base_wts &&
                              v.order_key != base_key;
                     }),
      versions_.end());
  return before - versions_.size();
}

}  // namespace hdd
