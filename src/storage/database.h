#ifndef HDD_STORAGE_DATABASE_H_
#define HDD_STORAGE_DATABASE_H_

#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/granule.h"
#include "storage/version.h"

namespace hdd {

class WalManager;

/// A data segment with its segment controller's latch. "Every data segment
/// is controlled by a segment controller which supervises accesses to data
/// granules within that segment" (paper §4.2); the latch serializes
/// version-chain manipulation, while the *ordering* decisions live in the
/// concurrency controllers.
class Segment {
 public:
  explicit Segment(std::string name) : name_(std::move(name)) {}

  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  const std::string& name() const { return name_; }

  /// Number of granules currently allocated.
  std::uint32_t size() const;

  /// Appends a granule initialized with `initial`; returns its index.
  /// Models record insertion (the paper's type-1 transactions insert event
  /// records): an insert is a write to a freshly allocated granule.
  std::uint32_t Allocate(Value initial);

  Granule& granule(std::uint32_t index);
  const Granule& granule(std::uint32_t index) const;

  /// Segment-controller latch. Public so controllers can hold it across a
  /// read-decide-write sequence on a chain.
  std::mutex& latch() const { return latch_; }

 private:
  std::string name_;
  mutable std::mutex latch_;
  // deque: stable addresses under Allocate.
  std::deque<Granule> granules_;
};

/// The whole multi-version database: a fixed set of segments created at
/// construction, each pre-populated with `granules_per_segment` granules.
class Database {
 public:
  Database(std::vector<std::string> segment_names,
           std::uint32_t granules_per_segment, Value initial = 0);

  /// Convenience: segments named "D0".."Dn-1".
  Database(int num_segments, std::uint32_t granules_per_segment,
           Value initial = 0);

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  int num_segments() const { return static_cast<int>(segments_.size()); }
  Segment& segment(SegmentId s) { return *segments_[s]; }
  const Segment& segment(SegmentId s) const { return *segments_[s]; }

  /// Validates that `ref` addresses an existing granule.
  Status Validate(GranuleRef ref) const;

  Granule& granule(GranuleRef ref) {
    return segment(ref.segment).granule(ref.index);
  }

  /// Total number of versions across all granules (observability/GC).
  std::size_t TotalVersions() const;

  /// §7.3 garbage collection: prunes every granule against `horizon`
  /// (see Granule::Prune). Returns the number of versions removed.
  std::size_t CollectGarbage(Timestamp horizon);

  /// Prunes one segment against `horizon` under that segment's latch.
  /// Lets a controller with per-segment latching collect incrementally
  /// while transactions keep running in other segments.
  std::size_t CollectGarbageSegment(SegmentId s, Timestamp horizon);

  /// Optional durability hookup (src/wal/): controllers that find a WAL
  /// attached log writes/commits/aborts through it. The database does not
  /// own the manager; the caller keeps it alive for the database's
  /// lifetime. nullptr (the default) means "run without durability" —
  /// every pre-WAL configuration keeps working unchanged.
  void AttachWal(WalManager* wal) { wal_ = wal; }
  WalManager* wal() const { return wal_; }

 private:
  std::vector<std::unique_ptr<Segment>> segments_;
  WalManager* wal_ = nullptr;
};

}  // namespace hdd

#endif  // HDD_STORAGE_DATABASE_H_
