#ifndef HDD_STORAGE_VERSION_H_
#define HDD_STORAGE_VERSION_H_

#include <cstdint>
#include <functional>

#include "common/clock.h"
#include "graph/dhg.h"

namespace hdd {

/// Transaction identifier, unique per database instance.
using TxnId = std::uint64_t;
inline constexpr TxnId kInvalidTxn = 0;

/// Stored value of a data granule. The concurrency-control algorithms are
/// value-agnostic; a signed counter models the paper's quantities and
/// balances while keeping versions cheap to copy.
using Value = std::int64_t;

/// Reference to a data granule: the segment that controls it plus the
/// granule's index within the segment. The paper routes every access
/// through the owning segment's controller (§4.2), so the segment is part
/// of the address.
struct GranuleRef {
  SegmentId segment = 0;
  std::uint32_t index = 0;

  friend bool operator==(const GranuleRef&, const GranuleRef&) = default;
  friend auto operator<=>(const GranuleRef&, const GranuleRef&) = default;
};

/// One version of a granule.
///
/// `order_key` defines the granule's version order — the `<<` relation the
/// dependency-graph checker uses to find a version's predecessor. The
/// timestamp-based protocols (HDD, TO, MVTO) use the creator's initiation
/// time `I(t)` (the paper's `TS(d^v)`); lock-based protocols use a global
/// physical write sequence, because under 2PL physical overwrite order is
/// the correct version order.
struct Version {
  std::uint64_t order_key = 0;
  /// The paper's `TS(d^v)`: initiation time of the creating transaction.
  Timestamp wts = kTimestampMin;
  /// Largest initiation time of a *registered* reader. Only protocols that
  /// register reads (TO, MVTO) maintain it; HDD Protocol A/C reads leave it
  /// untouched — that is the point of the paper.
  Timestamp rts = kTimestampMin;
  TxnId creator = kInvalidTxn;
  Value value = 0;
  bool committed = false;
};

}  // namespace hdd

template <>
struct std::hash<hdd::GranuleRef> {
  std::size_t operator()(const hdd::GranuleRef& g) const noexcept {
    return std::hash<std::uint64_t>()(
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(g.segment))
         << 32) |
        g.index);
  }
};

#endif  // HDD_STORAGE_VERSION_H_
