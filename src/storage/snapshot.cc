#include "storage/snapshot.h"

#include <cstring>
#include <string>
#include <vector>

namespace hdd {

namespace {

constexpr char kMagic[4] = {'H', 'D', 'D', 'B'};
constexpr std::uint32_t kFormatVersion = 1;

template <typename T>
void WritePod(std::ostream& os, T value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& is, T* value) {
  is.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(is);
}

}  // namespace

Status SaveDatabase(Database& db, std::ostream& os) {
  os.write(kMagic, sizeof(kMagic));
  WritePod<std::uint32_t>(os, kFormatVersion);
  WritePod<std::uint32_t>(os, static_cast<std::uint32_t>(db.num_segments()));
  for (SegmentId s = 0; s < db.num_segments(); ++s) {
    Segment& segment = db.segment(s);
    const std::uint32_t count = segment.size();
    std::lock_guard<std::mutex> guard(segment.latch());
    const std::string& name = segment.name();
    WritePod<std::uint32_t>(os, static_cast<std::uint32_t>(name.size()));
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    WritePod<std::uint32_t>(os, count);
    for (std::uint32_t g = 0; g < count; ++g) {
      const Granule& granule = segment.granule(g);
      WritePod<std::uint32_t>(
          os, static_cast<std::uint32_t>(granule.num_versions()));
      for (const Version& v : granule.versions()) {
        WritePod<std::uint64_t>(os, v.order_key);
        WritePod<std::uint64_t>(os, v.wts);
        WritePod<std::uint64_t>(os, v.rts);
        WritePod<std::uint64_t>(os, v.creator);
        WritePod<std::int64_t>(os, v.value);
        WritePod<std::uint8_t>(os, v.committed ? 1 : 0);
      }
    }
  }
  if (!os) return Status::Internal("write failure while saving snapshot");
  return Status::OK();
}

Result<std::unique_ptr<Database>> LoadDatabase(std::istream& is) {
  char magic[4];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a database snapshot");
  }
  std::uint32_t format = 0;
  if (!ReadPod(is, &format) || format != kFormatVersion) {
    return Status::InvalidArgument("unsupported snapshot format version");
  }
  std::uint32_t num_segments = 0;
  if (!ReadPod(is, &num_segments) || num_segments > 1u << 20) {
    return Status::InvalidArgument("corrupt snapshot: segment count");
  }

  // First pass: read everything into memory, then build the database.
  std::vector<std::string> names;
  std::vector<std::vector<std::vector<Version>>> segments;
  names.reserve(num_segments);
  segments.resize(num_segments);
  for (std::uint32_t s = 0; s < num_segments; ++s) {
    std::uint32_t name_len = 0;
    if (!ReadPod(is, &name_len) || name_len > 1u << 16) {
      return Status::InvalidArgument("corrupt snapshot: segment name");
    }
    std::string name(name_len, '\0');
    is.read(name.data(), name_len);
    if (!is) return Status::InvalidArgument("corrupt snapshot: truncated");
    names.push_back(std::move(name));
    std::uint32_t num_granules = 0;
    if (!ReadPod(is, &num_granules) || num_granules > 1u << 26) {
      return Status::InvalidArgument("corrupt snapshot: granule count");
    }
    segments[s].resize(num_granules);
    for (std::uint32_t g = 0; g < num_granules; ++g) {
      std::uint32_t num_versions = 0;
      if (!ReadPod(is, &num_versions) || num_versions == 0 ||
          num_versions > 1u << 26) {
        return Status::InvalidArgument("corrupt snapshot: version count");
      }
      std::vector<Version>& chain = segments[s][g];
      chain.resize(num_versions);
      for (Version& v : chain) {
        std::uint8_t committed = 0;
        if (!ReadPod(is, &v.order_key) || !ReadPod(is, &v.wts) ||
            !ReadPod(is, &v.rts) || !ReadPod(is, &v.creator) ||
            !ReadPod(is, &v.value) || !ReadPod(is, &committed)) {
          return Status::InvalidArgument("corrupt snapshot: truncated");
        }
        v.committed = committed != 0;
      }
    }
  }

  auto db = std::make_unique<Database>(names, /*granules_per_segment=*/0u);
  for (std::uint32_t s = 0; s < num_segments; ++s) {
    for (auto& chain : segments[s]) {
      const std::uint32_t index = db->segment(s).Allocate(0);
      HDD_RETURN_IF_ERROR(db->granule({static_cast<SegmentId>(s), index})
                              .RestoreVersions(std::move(chain)));
    }
  }
  return db;
}

}  // namespace hdd
