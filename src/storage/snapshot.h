#ifndef HDD_STORAGE_SNAPSHOT_H_
#define HDD_STORAGE_SNAPSHOT_H_

#include <istream>
#include <memory>
#include <ostream>

#include "common/status.h"
#include "storage/database.h"

namespace hdd {

/// Binary save/load of a whole database — version chains included — for
/// reproducible experiments (dump a prepared state once, reload it for
/// every controller) and for offline inspection. The writer must be
/// quiescent: the snapshot walks the chains without any controller latch.
///
/// Format (little-endian, versioned):
///   "HDDB" u32 format_version
///   u32 num_segments
///   per segment: u32 name_len, bytes, u32 num_granules
///   per granule: u32 num_versions
///   per version: u64 order_key, u64 wts, u64 rts, u64 creator,
///                i64 value, u8 committed
Status SaveDatabase(Database& db, std::ostream& os);

Result<std::unique_ptr<Database>> LoadDatabase(std::istream& is);

}  // namespace hdd

#endif  // HDD_STORAGE_SNAPSHOT_H_
