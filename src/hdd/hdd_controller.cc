#include "hdd/hdd_controller.h"

#include <algorithm>
#include <cassert>

#include "graph/algorithms.h"
#include "graph/decomposition.h"

namespace hdd {

HddController::HddController(Database* db, LogicalClock* clock,
                             const HierarchySchema* schema,
                             HddControllerOptions options)
    : ConcurrencyController(db, clock), options_(std::move(options)) {
  num_classes_ = schema->num_segments();
  class_of_segment_.resize(num_classes_);
  for (SegmentId s = 0; s < num_classes_; ++s) class_of_segment_[s] = s;
  tst_ = std::make_unique<TstAnalysis>(schema->tst());
  tables_.resize(num_classes_);
  draining_.assign(num_classes_, false);
  eval_ = std::make_unique<ActivityLinkEvaluator>(tst_.get(), &tables_);
}

HddController::~HddController() { StopWallPacer(); }

void HddController::StartWallPacer(std::chrono::milliseconds interval) {
  StopWallPacer();
  pacer_stop_.store(false);
  pacer_ = std::thread([this, interval] {
    std::unique_lock<std::mutex> lock(pacer_mu_);
    while (!pacer_stop_.load()) {
      if (pacer_cv_.wait_for(lock, interval,
                             [this] { return pacer_stop_.load(); })) {
        return;
      }
      lock.unlock();
      (void)ReleaseNewWall();
      lock.lock();
    }
  });
}

void HddController::StopWallPacer() {
  {
    std::lock_guard<std::mutex> guard(pacer_mu_);
    pacer_stop_.store(true);
  }
  pacer_cv_.notify_all();
  if (pacer_.joinable()) pacer_.join();
}

ClassId HddController::ClassOfSegment(SegmentId segment) const {
  std::lock_guard<std::mutex> guard(mu_);
  return class_of_segment_[segment];
}

std::size_t HddController::num_walls() const {
  std::lock_guard<std::mutex> guard(mu_);
  return walls_.size();
}

Result<TxnDescriptor> HddController::Begin(const TxnOptions& options) {
  std::unique_lock<std::mutex> lock(mu_);
  TxnRuntime runtime;
  runtime.descriptor.id = next_txn_id_++;
  runtime.descriptor.read_only = options.read_only;
  if (options.read_only) {
    runtime.descriptor.txn_class = kReadOnlyClass;
    if (!options.read_scope.empty()) {
      HDD_ASSIGN_OR_RETURN(runtime.hosted_below,
                           ResolveHostClass(options.read_scope));
    }
    if (options.as_of_wall >= 0) {
      if (runtime.hosted_below != kReadOnlyClass) {
        return Status::InvalidArgument(
            "as_of_wall cannot combine with a hosted read scope");
      }
      if (static_cast<std::size_t>(options.as_of_wall) >= walls_.size()) {
        return Status::InvalidArgument("no such time wall");
      }
      const TimeWall& wall = walls_[options.as_of_wall];
      for (Timestamp bound : wall.bound) {
        if (bound < last_gc_horizon_) {
          return Status::FailedPrecondition(
              "time wall predates the garbage-collection horizon; its "
              "versions may be gone");
        }
      }
      runtime.wall = &wall;
    }
  } else {
    if (options.txn_class < 0 || options.txn_class >= num_classes_) {
      return Status::InvalidArgument(
          "HDD update transactions must declare their class");
    }
    cv_.wait(lock, [&] { return !draining_[options.txn_class]; });
    runtime.descriptor.txn_class = options.txn_class;
  }
  runtime.descriptor.init_ts = clock_->Tick();
  if (!options.read_only) {
    tables_[runtime.descriptor.txn_class].OnBegin(runtime.descriptor.init_ts);
  }
  const TxnDescriptor descriptor = runtime.descriptor;
  txns_.emplace(descriptor.id, std::move(runtime));
  recorder_.RecordBegin(descriptor.id, descriptor.txn_class,
                        descriptor.read_only);
  metrics_.begins.fetch_add(1);
  return descriptor;
}

Result<ClassId> HddController::ResolveHostClass(
    const std::vector<SegmentId>& scope) {
  if (scope.empty()) {
    return Status::InvalidArgument("empty read scope");
  }
  // Map to classes and find the lowest: the class from which every other
  // scoped class is reachable by a critical path.
  std::vector<ClassId> classes;
  for (SegmentId s : scope) {
    if (s < 0 || s >= static_cast<int>(class_of_segment_.size())) {
      return Status::InvalidArgument("read scope segment out of range");
    }
    classes.push_back(class_of_segment_[s]);
  }
  ClassId lowest = classes[0];
  for (ClassId c : classes) {
    if (c == lowest || tst_->Higher(lowest, c)) {
      lowest = c;  // c is lower than (or equal to) the current lowest
    }
  }
  for (ClassId c : classes) {
    if (c != lowest && !tst_->Higher(c, lowest)) {
      return Status::InvalidArgument(
          "read scope is not reachable by critical paths from one host "
          "class; use an undeclared read-only transaction (Protocol C) "
          "instead");
    }
  }
  return lowest;
}

Result<HddController::TxnRuntime*> HddController::FindTxn(
    const TxnDescriptor& txn) {
  auto it = txns_.find(txn.id);
  if (it == txns_.end()) {
    return Status::FailedPrecondition("unknown or finished transaction");
  }
  return &it->second;
}

Result<Value> HddController::Read(const TxnDescriptor& txn,
                                  GranuleRef granule) {
  HDD_RETURN_IF_ERROR(db_->Validate(granule));
  std::unique_lock<std::mutex> lock(mu_);
  HDD_ASSIGN_OR_RETURN(TxnRuntime * runtime, FindTxn(txn));
  if (runtime->descriptor.read_only) {
    if (runtime->hosted_below != kReadOnlyClass) {
      return ReadHosted(runtime, granule);
    }
    return ReadUnderWall(lock, runtime, granule);
  }
  const ClassId own_class = runtime->descriptor.txn_class;
  const ClassId target_class = class_of_segment_[granule.segment];
  if (own_class == target_class) {
    return ReadOwnSegment(lock, runtime, granule);
  }
  return ReadHigherSegment(runtime, granule, own_class, target_class);
}

Result<Value> HddController::ReadHigherSegment(TxnRuntime* runtime,
                                               GranuleRef granule,
                                               ClassId own_class,
                                               ClassId target_class) {
  // Protocol A. The activity link function is defined exactly when the
  // target class lies higher on a critical path — which the schema
  // guarantees for every declared read segment.
  auto bound = eval_->A(own_class, target_class,
                        runtime->descriptor.init_ts);
  if (!bound.ok()) {
    return Status::InvalidArgument(
        "segment not on a critical path above the transaction's class");
  }
  Granule& g = db_->granule(granule);
  const Version* version = g.LatestCommittedBefore(*bound);
  assert(version != nullptr);
  // Theorem-backed invariant: every version below the activity link bound
  // was created by a transaction that already finished, hence the latest
  // *committed* version below the bound is the latest version, period.
  assert(g.VersionBefore(*bound) != nullptr &&
         g.VersionBefore(*bound)->wts == version->wts);
  // "No trace of this access needs to be registered in any form" (§4.2).
  metrics_.unregistered_reads.fetch_add(1);
  metrics_.version_reads.fetch_add(1);
  recorder_.RecordRead(runtime->descriptor.id, granule, version->order_key);
  return version->value;
}

Result<Value> HddController::ReadHosted(TxnRuntime* runtime,
                                        GranuleRef granule) {
  // §5.0: the transaction behaves like an update transaction of a
  // fictitious class immediately below `hosted_below`, so ALL its reads —
  // including those against the host class's own segment — are Protocol A
  // reads through one extra I^old hop at the host class.
  const ClassId target_class = class_of_segment_[granule.segment];
  const ClassId host = runtime->hosted_below;
  if (target_class != host && !tst_->Higher(target_class, host)) {
    return Status::InvalidArgument("read outside the declared read scope");
  }
  const Timestamp base =
      tables_[host].OldestActiveAt(runtime->descriptor.init_ts);
  auto bound = eval_->A(host, target_class, base);
  if (!bound.ok()) return bound.status();
  Granule& g = db_->granule(granule);
  const Version* version = g.LatestCommittedBefore(*bound);
  assert(version != nullptr);
  assert(g.VersionBefore(*bound) != nullptr &&
         g.VersionBefore(*bound)->wts == version->wts);
  metrics_.unregistered_reads.fetch_add(1);
  metrics_.version_reads.fetch_add(1);
  recorder_.RecordRead(runtime->descriptor.id, granule, version->order_key);
  return version->value;
}

Result<Value> HddController::ReadOwnSegment(
    std::unique_lock<std::mutex>& lock, TxnRuntime* runtime,
    GranuleRef granule) {
  const TxnDescriptor& txn = runtime->descriptor;
  bool waited = false;
  for (;;) {
    Granule& g = db_->granule(granule);
    Version* version = nullptr;
    if (options_.protocol_b == ProtocolBEngine::kMvto) {
      Version* own = g.Find(txn.init_ts);
      version = own != nullptr ? own : g.VersionBefore(txn.init_ts);
    } else {
      version = g.Latest();
      if (version->wts > txn.init_ts && version->creator != txn.id) {
        return Status::Aborted(
            "Protocol B (basic TO): granule overwritten by younger txn");
      }
    }
    assert(version != nullptr);
    if (!version->committed && version->creator != txn.id) {
      waited = true;
      cv_.wait(lock);
      continue;
    }
    if (waited) metrics_.blocked_reads.fetch_add(1);
    if (txn.init_ts > version->rts) version->rts = txn.init_ts;
    metrics_.read_timestamps_written.fetch_add(1);
    metrics_.version_reads.fetch_add(1);
    recorder_.RecordRead(txn.id, granule, version->order_key, true);
    return version->value;
  }
}

Result<Value> HddController::ReadUnderWall(std::unique_lock<std::mutex>& lock,
                                           TxnRuntime* runtime,
                                           GranuleRef granule) {
  // Protocol C: pin the wall on first read so the whole transaction sees
  // one consistent cut.
  if (runtime->wall == nullptr) {
    const TimeWall* chosen = nullptr;
    for (auto it = walls_.rbegin(); it != walls_.rend(); ++it) {
      if (it->release_time < runtime->descriptor.init_ts) {
        chosen = &*it;
        break;
      }
    }
    if (chosen == nullptr) {
      // No wall released before we started: release one now and use it —
      // still a consistent cut by Theorem 2, just fresher than the paper's
      // batched variant.
      HDD_ASSIGN_OR_RETURN(chosen, ReleaseWallLocked(lock));
    }
    runtime->wall = chosen;
  }
  const ClassId target_class = class_of_segment_[granule.segment];
  const Timestamp bound = runtime->wall->bound[target_class];
  bool waited = false;
  for (;;) {
    Granule& g = db_->granule(granule);
    Version* version = g.VersionBefore(bound);
    assert(version != nullptr);
    if (!version->committed) {
      // A below-wall version is still in flight (possible only for classes
      // the wall reaches through a descending run); its fate decides what
      // we must read, so wait for the creator to resolve.
      waited = true;
      cv_.wait(lock);
      continue;
    }
    if (waited) metrics_.blocked_reads.fetch_add(1);
    metrics_.unregistered_reads.fetch_add(1);
    metrics_.version_reads.fetch_add(1);
    recorder_.RecordRead(runtime->descriptor.id, granule,
                         version->order_key);
    return version->value;
  }
}

Result<const TimeWall*> HddController::ReleaseWallLocked(
    std::unique_lock<std::mutex>& lock) {
  const ClassId anchor = PickWallAnchor(*tst_);
  const Timestamp m = clock_->Tick();
  for (;;) {
    auto wall = ComputeTimeWall(*eval_, num_classes_, anchor, m);
    if (wall.ok()) {
      wall->release_time = clock_->Tick();
      walls_.push_back(*std::move(wall));
      cv_.notify_all();
      return &walls_.back();
    }
    if (wall.status().code() != StatusCode::kBusy) return wall.status();
    // Some C^late is not yet computable: wait for a transaction to finish.
    cv_.wait(lock);
  }
}

Status HddController::ReleaseNewWall() {
  std::unique_lock<std::mutex> lock(mu_);
  return ReleaseWallLocked(lock).status();
}

Status HddController::Write(const TxnDescriptor& txn, GranuleRef granule,
                            Value value) {
  HDD_RETURN_IF_ERROR(db_->Validate(granule));
  std::unique_lock<std::mutex> lock(mu_);
  HDD_ASSIGN_OR_RETURN(TxnRuntime * runtime, FindTxn(txn));
  if (runtime->descriptor.read_only) {
    return Status::FailedPrecondition("read-only transaction wrote");
  }
  const ClassId own_class = runtime->descriptor.txn_class;
  if (class_of_segment_[granule.segment] != own_class) {
    return Status::FailedPrecondition(
        "transaction may write only its root segment");
  }
  const Timestamp ts = runtime->descriptor.init_ts;

  bool waited = false;
  for (;;) {
    Granule& g = db_->granule(granule);
    Version* own = g.Find(ts);
    if (own != nullptr) {
      own->value = value;
      recorder_.RecordWrite(txn.id, granule, own->order_key);
      return Status::OK();
    }
    if (options_.protocol_b == ProtocolBEngine::kBasicTo) {
      Version* tip = g.Latest();
      if (tip->rts > ts) {
        return Status::Aborted("Protocol B: younger read already registered");
      }
      if (tip->wts > ts) {
        return Status::Aborted("Protocol B: overwritten by younger txn");
      }
      if (!tip->committed) {
        waited = true;
        cv_.wait(lock);
        continue;
      }
    } else {
      if (g.MaxRtsOfVersionsBefore(ts) > ts) {
        return Status::Aborted("Protocol B: younger read of older version");
      }
    }
    if (waited) metrics_.blocked_writes.fetch_add(1);
    Version version;
    version.order_key = ts;
    version.wts = ts;
    version.creator = txn.id;
    version.value = value;
    version.committed = false;
    HDD_RETURN_IF_ERROR(g.Insert(version));
    runtime->writes.push_back(granule);
    metrics_.versions_created.fetch_add(1);
    recorder_.RecordWrite(txn.id, granule, version.order_key);
    return Status::OK();
  }
}

Status HddController::Commit(const TxnDescriptor& txn) {
  std::lock_guard<std::mutex> guard(mu_);
  HDD_ASSIGN_OR_RETURN(TxnRuntime * runtime, FindTxn(txn));
  for (GranuleRef granule : runtime->writes) {
    Version* version =
        db_->granule(granule).Find(runtime->descriptor.init_ts);
    assert(version != nullptr);
    version->committed = true;
  }
  if (!runtime->descriptor.read_only) {
    tables_[runtime->descriptor.txn_class].OnFinish(
        runtime->descriptor.init_ts, clock_->Tick());
  }
  txns_.erase(txn.id);
  recorder_.RecordOutcome(txn.id, TxnState::kCommitted);
  metrics_.commits.fetch_add(1);
  MaybeTrimHistoryLocked();
  cv_.notify_all();
  return Status::OK();
}

Status HddController::Abort(const TxnDescriptor& txn) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = txns_.find(txn.id);
  if (it == txns_.end()) {
    return Status::FailedPrecondition("unknown or finished transaction");
  }
  TxnRuntime& runtime = it->second;
  for (GranuleRef granule : runtime.writes) {
    Status removed =
        db_->granule(granule).Remove(runtime.descriptor.init_ts);
    assert(removed.ok());
    (void)removed;
  }
  if (!runtime.descriptor.read_only) {
    tables_[runtime.descriptor.txn_class].OnFinish(
        runtime.descriptor.init_ts, clock_->Tick());
  }
  txns_.erase(it);
  recorder_.RecordOutcome(txn.id, TxnState::kAborted);
  metrics_.aborts.fetch_add(1);
  MaybeTrimHistoryLocked();
  cv_.notify_all();
  return Status::OK();
}

Result<ClassId> HddController::Restructure(
    const std::vector<SegmentId>& write_segments,
    const std::vector<SegmentId>& read_segments) {
  if (write_segments.empty()) {
    return Status::InvalidArgument("restructure needs a write segment");
  }
  std::unique_lock<std::mutex> lock(mu_);
  for (SegmentId s : write_segments) {
    if (s < 0 || s >= static_cast<int>(class_of_segment_.size())) {
      return Status::InvalidArgument("write segment out of range");
    }
  }
  for (SegmentId s : read_segments) {
    if (s < 0 || s >= static_cast<int>(class_of_segment_.size())) {
      return Status::InvalidArgument("read segment out of range");
    }
  }

  // Extend the current class graph with the ad-hoc pattern: force all
  // write classes into one group (antiparallel arcs collapse under SCC
  // condensation) and add the new read arcs, then legalize by merging.
  Digraph extended = tst_->graph();
  const ClassId primary = class_of_segment_[write_segments[0]];
  for (SegmentId s : write_segments) {
    const ClassId c = class_of_segment_[s];
    if (c != primary) {
      extended.AddArc(primary, c);
      extended.AddArc(c, primary);
    }
  }
  for (SegmentId s : read_segments) {
    const ClassId c = class_of_segment_[s];
    if (c != primary) extended.AddArc(primary, c);
  }
  MergePlan plan = MakeTstMergePlan(extended);

  // Classes whose group gained members must drain before their activity
  // tables merge.
  std::vector<int> group_size(plan.num_groups, 0);
  for (int label : plan.labels) ++group_size[label];
  std::vector<bool> affected(num_classes_, false);
  for (ClassId c = 0; c < num_classes_; ++c) {
    affected[c] = group_size[plan.labels[c]] > 1;
    if (affected[c]) draining_[c] = true;
  }
  cv_.wait(lock, [&] {
    for (ClassId c = 0; c < num_classes_; ++c) {
      if (affected[c] && tables_[c].num_active() > 0) return false;
    }
    return true;
  });

  // Apply: rebuild segment->class map, merge activity tables, rebuild the
  // semi-tree analysis and evaluator, and remap released walls (new bound
  // = min of merged old bounds, the conservative cut).
  std::vector<ClassActivityTable> new_tables(plan.num_groups);
  for (ClassId c = 0; c < num_classes_; ++c) {
    new_tables[plan.labels[c]].MergeFrom(std::move(tables_[c]));
  }
  for (SegmentId s = 0; s < static_cast<int>(class_of_segment_.size());
       ++s) {
    class_of_segment_[s] = plan.labels[class_of_segment_[s]];
  }
  for (auto& [id, runtime] : txns_) {
    (void)id;
    if (!runtime.descriptor.read_only) {
      runtime.descriptor.txn_class = plan.labels[runtime.descriptor.txn_class];
    }
  }
  for (TimeWall& wall : walls_) {
    std::vector<Timestamp> new_bound(plan.num_groups, kTimestampInfinity);
    for (ClassId c = 0; c < num_classes_; ++c) {
      new_bound[plan.labels[c]] =
          std::min(new_bound[plan.labels[c]], wall.bound[c]);
    }
    wall.bound = std::move(new_bound);
  }
  Digraph quotient = Quotient(extended, plan.labels, plan.num_groups);
  auto tst = TstAnalysis::Create(quotient);
  assert(tst.ok());
  tst_ = std::make_unique<TstAnalysis>(std::move(tst).value());
  tables_ = std::move(new_tables);
  num_classes_ = plan.num_groups;
  draining_.assign(num_classes_, false);
  eval_ = std::make_unique<ActivityLinkEvaluator>(tst_.get(), &tables_);
  cv_.notify_all();
  return plan.labels[primary];
}

Timestamp HddController::SafeGcHorizon() const {
  std::lock_guard<std::mutex> guard(mu_);
  return SafeGcHorizonLocked();
}

std::size_t HddController::CollectGarbage() {
  // Holding mu_ across the sweep is what makes this safe against running
  // transactions: every version-chain access in this controller happens
  // under mu_.
  std::lock_guard<std::mutex> guard(mu_);
  const Timestamp horizon = SafeGcHorizonLocked();
  last_gc_horizon_ = std::max(last_gc_horizon_, horizon);
  return db_->CollectGarbage(horizon);
}

std::size_t HddController::ActivityHistorySize() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::size_t total = 0;
  for (const ClassActivityTable& table : tables_) {
    total += table.history_size();
  }
  return total;
}

void HddController::MaybeTrimHistoryLocked() {
  if (!options_.auto_trim_history || !txns_.empty()) return;
  // Idle point: no transaction of any kind in flight. Every future
  // activity-link chain starts at an initiation time above the current
  // clock and, by induction over the chain, never stabs a time at or
  // below it; records that ended by now are dead.
  const Timestamp now = clock_->Now();
  for (ClassActivityTable& table : tables_) {
    table.TrimFinishedBefore(now);
  }
}

Timestamp HddController::SafeGcHorizonLocked() const {
  Timestamp horizon = clock_->Now() + 1;
  for (const ClassActivityTable& table : tables_) {
    horizon = std::min(horizon, table.OldestActiveNow());
  }
  auto wall_min = [](const TimeWall& wall) {
    Timestamp lo = kTimestampInfinity;
    for (Timestamp b : wall.bound) lo = std::min(lo, b);
    return lo;
  };
  if (!walls_.empty()) {
    horizon = std::min(horizon, wall_min(walls_.back()));
  }
  for (const auto& [id, runtime] : txns_) {
    (void)id;
    if (runtime.wall != nullptr) {
      horizon = std::min(horizon, wall_min(*runtime.wall));
    }
  }
  return horizon;
}

}  // namespace hdd
