#include "hdd/hdd_controller.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <thread>

#include "common/sim_hook.h"
#include "graph/algorithms.h"
#include "obs/trace.h"
#include "graph/decomposition.h"
#include "wal/checkpoint.h"
#include "wal/log_format.h"
#include "wal/wal_manager.h"

// Yield-point convention (deterministic simulation, src/sim/): SimYield
// marks a preemption/fault point and is always placed BEFORE a latch
// acquisition, never inside a critical section — under simulation exactly
// one task runs at a time, so a descheduled latch holder would wedge the
// party (holding the structure gate shared is fine; Restructure's one
// exclusive acquisition spins on try_lock between reschedules so parked
// shared holders can run to their release first). Sites on paths
// with partially applied effects (commit install, abort undo) are
// non-interruptible: a SimFault may not unwind them. Every cv wait goes
// through SimWait/SimNotifyAll so wakeup delivery is owned by the
// scheduler instead of the OS.

namespace hdd {

namespace {

// Per-operation runtime lookup cache. A transaction is driven by one
// thread at a time (controller.h threading contract), so after the first
// operation resolves the runtime through the stripe map, every later
// operation from the driving thread can reuse the pointer with two plain
// compares instead of a stripe mutex plus a hash probe — the dominant
// fixed cost of a Protocol A read. The entry is cleared by the same
// thread when it finishes the transaction (Commit/Abort extract the
// runtime), and the global generation counter — bumped whenever any
// controller is destroyed — invalidates entries whose controller address
// may have been reused by a newer controller.
std::atomic<std::uint64_t> g_txn_cache_generation{1};
struct CachedTxnLookup {
  const void* controller = nullptr;
  std::uint64_t generation = 0;
  TxnId id = 0;
  void* runtime = nullptr;
};
thread_local CachedTxnLookup t_txn_lookup;

}  // namespace

Timestamp HddController::ShardTableSource::OldestActiveAt(ClassId c,
                                                          Timestamp m) const {
  SimYield("hdd/table_query");
  const std::shared_ptr<ClassShard>& shard = owner_->shards_[c];
  std::lock_guard<std::mutex> lock(shard->mu);
  return shard->table.OldestActiveAt(m);
}

Result<Timestamp> HddController::ShardTableSource::LatestEndAt(
    ClassId c, Timestamp m) const {
  SimYield("hdd/table_query");
  const std::shared_ptr<ClassShard>& shard = owner_->shards_[c];
  std::lock_guard<std::mutex> lock(shard->mu);
  return shard->table.LatestEndAt(m);
}

HddController::HddController(Database* db, LogicalClock* clock,
                             const HierarchySchema* schema,
                             HddControllerOptions options)
    : ConcurrencyController(db, clock),
      options_(std::move(options)),
      wal_(db->wal()) {
  num_classes_ = schema->num_segments();
  class_of_segment_.resize(num_classes_);
  for (SegmentId s = 0; s < num_classes_; ++s) class_of_segment_[s] = s;
  tst_ = std::make_unique<TstAnalysis>(schema->tst());
  shards_.reserve(num_classes_);
  for (ClassId c = 0; c < num_classes_; ++c) {
    shards_.push_back(std::make_shared<ClassShard>());
  }
  eval_ = std::make_unique<ActivityLinkEvaluator>(tst_.get(), &shard_source_);
  next_txn_id_.store(options_.first_txn_id, std::memory_order_relaxed);
}

HddController::~HddController() {
  StopWallPacer();
  // Invalidate every thread's runtime-lookup cache entry that points into
  // this controller before the address can be reused (see t_txn_lookup).
  g_txn_cache_generation.fetch_add(1, std::memory_order_release);
}

void HddController::StartWallPacer(std::chrono::milliseconds interval) {
  StopWallPacer();
  pacer_stop_.store(false);
  pacer_ = std::thread([this, interval] {
    std::unique_lock<std::mutex> lock(pacer_mu_);
    while (!pacer_stop_.load()) {
      if (pacer_cv_.wait_for(lock, interval,
                             [this] { return pacer_stop_.load(); })) {
        return;
      }
      lock.unlock();
      (void)ReleaseNewWall();
      lock.lock();
    }
  });
}

void HddController::StopWallPacer() {
  {
    std::lock_guard<std::mutex> guard(pacer_mu_);
    pacer_stop_.store(true);
  }
  pacer_cv_.notify_all();
  if (pacer_.joinable()) pacer_.join();
}

ClassId HddController::ClassOfSegment(SegmentId segment) const {
  std::shared_lock<std::shared_mutex> gate(struct_mu_);
  return class_of_segment_[segment];
}

Result<bool> HddController::IsLegalAccessPattern(
    const std::vector<SegmentId>& write_segments,
    const std::vector<SegmentId>& read_segments) const {
  if (write_segments.empty()) {
    return Status::InvalidArgument("pattern needs a write segment");
  }
  std::shared_lock<std::shared_mutex> gate(struct_mu_);
  const int num_segments = static_cast<int>(class_of_segment_.size());
  for (SegmentId s : write_segments) {
    if (s < 0 || s >= num_segments) {
      return Status::InvalidArgument("write segment out of range");
    }
  }
  for (SegmentId s : read_segments) {
    if (s < 0 || s >= num_segments) {
      return Status::InvalidArgument("read segment out of range");
    }
  }
  const ClassId own = class_of_segment_[write_segments[0]];
  for (SegmentId s : write_segments) {
    if (class_of_segment_[s] != own) return false;
  }
  for (SegmentId s : read_segments) {
    const ClassId c = class_of_segment_[s];
    if (c != own && !tst_->Higher(c, own)) return false;
  }
  return true;
}

std::size_t HddController::num_walls() const {
  std::lock_guard<std::mutex> guard(wall_mu_);
  return walls_.size();
}

void HddController::SignalFinishEvent() {
  {
    std::lock_guard<std::mutex> guard(finish_mu_);
    finish_seq_.fetch_add(1);
  }
  SimNotifyAll(finish_cv_, &finish_cv_);
}

Result<TxnDescriptor> HddController::Begin(const TxnOptions& options) {
  for (;;) {
    SimYield("hdd/begin");
    std::shared_lock<std::shared_mutex> gate(struct_mu_);
    TxnRuntime runtime;
    runtime.descriptor.read_only = options.read_only;
    if (options.read_only) {
      runtime.descriptor.txn_class = kReadOnlyClass;
      if (!options.read_scope.empty()) {
        HDD_ASSIGN_OR_RETURN(runtime.hosted_below,
                             ResolveHostClass(options.read_scope));
      }
      if (options.as_of_wall >= 0) {
        if (runtime.hosted_below != kReadOnlyClass) {
          return Status::InvalidArgument(
              "as_of_wall cannot combine with a hosted read scope");
        }
        std::lock_guard<std::mutex> wg(wall_mu_);
        if (static_cast<std::size_t>(options.as_of_wall) >= walls_.size()) {
          return Status::InvalidArgument("no such time wall");
        }
        const TimeWall& wall = walls_[options.as_of_wall];
        for (Timestamp bound : wall.bound) {
          if (bound < last_gc_horizon_) {
            return Status::FailedPrecondition(
                "time wall predates the garbage-collection horizon; its "
                "versions may be gone");
          }
        }
        // Pin in the same critical section that validated the horizon, so
        // a concurrent collection cannot slip past the wall in between.
        ++wall_pins_[&wall];
        runtime.wall = &wall;
      }
      active_txns_.fetch_add(1);
      runtime.descriptor.init_ts = clock_->Tick();
    } else {
      if (options.txn_class < 0 || options.txn_class >= num_classes_) {
        return Status::InvalidArgument(
            "HDD update transactions must declare their class");
      }
      std::shared_ptr<ClassShard> shard = shards_[options.txn_class];
      std::unique_lock<std::mutex> shard_lock(shard->mu);
      if (shard->draining) {
        // A Restructure is quiescing this class; park on the shard (not
        // the structure gate!) until it reopens, then re-resolve the
        // class id — the restructure may have renumbered classes.
        gate.unlock();
        while (shard->draining) {
          SimWait(shard->cv, shard_lock, shard.get());
        }
        continue;
      }
      runtime.descriptor.txn_class = options.txn_class;
      // Count ourselves in-flight BEFORE taking the initiation tick: the
      // idle-point trim reads the clock before re-checking this counter,
      // so a Begin it can miss is guaranteed a later initiation time.
      active_txns_.fetch_add(1);
      runtime.descriptor.init_ts = clock_->Tick();
      shard->table.OnBegin(runtime.descriptor.init_ts);
    }
    runtime.descriptor.id = next_txn_id_.fetch_add(1);
    const TxnDescriptor descriptor = runtime.descriptor;
    {
      TxnStripe& stripe = StripeFor(descriptor.id);
      std::lock_guard<std::mutex> guard(stripe.mu);
      stripe.map.emplace(descriptor.id,
                         std::make_unique<TxnRuntime>(std::move(runtime)));
    }
    recorder_.RecordBegin(descriptor.id, descriptor.txn_class,
                          descriptor.read_only, descriptor.init_ts);
    metrics_.begins.Add(1);
    return descriptor;
  }
}

Result<EpochHandle> HddController::BeginEpoch() {
  std::shared_lock<std::shared_mutex> gate(struct_mu_);
  auto ctx = std::make_shared<EpochContext>();
  ctx->id = next_epoch_id_.fetch_add(1);
  ctx->num_classes = num_classes_;
  ctx->bounds = std::vector<std::atomic<Timestamp>>(
      static_cast<std::size_t>(num_classes_) *
      static_cast<std::size_t>(num_classes_));
  // kTimestampInfinity marks "not yet evaluated": a real bound satisfies
  // A_i^j(m) <= m, so it can never collide with the sentinel.
  for (std::atomic<Timestamp>& slot : ctx->bounds) {
    slot.store(kTimestampInfinity, std::memory_order_relaxed);
  }
  // Tick the anchor BEFORE any batch transaction begins: every batch
  // I(t) then exceeds m_e, so a shared bound A_i^j(m_e) <= m_e is below
  // every reader's initiation time — what the oracle's bound replay
  // demands of update-transaction reads.
  ctx->anchor = clock_->Tick();
  {
    std::lock_guard<std::mutex> eg(epoch_mu_);
    // Epoch transactions bypass the per-op structure gate, so an epoch
    // may not open while the structure is changing. Both sides of the
    // exclusion (this check and Restructure's current_epoch_ check)
    // decide under epoch_mu_, so exactly one of a racing pair proceeds.
    if (restructuring_) {
      return Status::Busy("restructure in progress; cannot open an epoch");
    }
    current_epoch_ = ctx;
  }
  HDD_TRACE_INSTANT("hdd", "epoch_begin");
  return EpochHandle{ctx->id, ctx->anchor};
}

Result<std::vector<TxnDescriptor>> HddController::BeginBatch(
    const EpochHandle& epoch, const std::vector<TxnOptions>& batch) {
  // Interruptible only here, before any effect: an injected fault finds
  // nothing to undo and the epoch executor simply retries the admission.
  SimYield("hdd/begin_epoch");
  HDD_TRACE_SPAN("hdd", "begin_batch");
  std::shared_ptr<EpochContext> ctx;
  {
    std::lock_guard<std::mutex> eg(epoch_mu_);
    ctx = current_epoch_;
  }
  if (ctx == nullptr || ctx->id != epoch.id) {
    return Status::FailedPrecondition("epoch is not open");
  }
  // Validate every declared class before the first effect.
  {
    std::shared_lock<std::shared_mutex> gate(struct_mu_);
    for (const TxnOptions& options : batch) {
      if (!options.read_only &&
          (options.txn_class < 0 || options.txn_class >= num_classes_)) {
        return Status::InvalidArgument(
            "HDD update transactions must declare their class");
      }
    }
  }
  std::vector<TxnDescriptor> out(batch.size());
  // Read-only admissions ride the per-txn path (wall pinning and host
  // resolution are per-transaction anyway). Roll back on any failure —
  // including an injected fault unwinding out of Begin — so the caller
  // can retry the whole admission without leaking active transactions.
  std::vector<std::size_t> ro_done;
  const auto rollback = [&] {
    for (std::size_t i : ro_done) (void)Abort(out[i]);
  };
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (!batch[i].read_only) continue;
    try {
      Result<TxnDescriptor> ro = Begin(batch[i]);
      if (!ro.ok()) {
        rollback();
        return ro.status();
      }
      out[i] = *ro;
      ro_done.push_back(i);
    } catch (...) {
      rollback();
      throw;
    }
  }
  // Bulk-admit the update transactions class by class: ONE shard critical
  // section per (class, epoch) covers every activity-table OnBegin of the
  // class's sub-batch — the per-txn path pays one latch round-trip per
  // transaction. Batch order is preserved within a class, so initiation
  // timestamps are consistent with the epoch executor's dependency-graph
  // direction (edges point from earlier to later batch index).
  std::shared_lock<std::shared_mutex> gate(struct_mu_);
  std::vector<std::vector<std::size_t>> by_class(
      static_cast<std::size_t>(num_classes_));
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (!batch[i].read_only) {
      by_class[static_cast<std::size_t>(batch[i].txn_class)].push_back(i);
    }
  }
  std::vector<std::unique_ptr<TxnRuntime>> admitted;
  admitted.reserve(batch.size());
  for (ClassId c = 0; c < num_classes_; ++c) {
    const std::vector<std::size_t>& members =
        by_class[static_cast<std::size_t>(c)];
    if (members.empty()) continue;
    SimYield("hdd/begin_epoch/admit", /*interruptible=*/false);
    std::shared_ptr<ClassShard> shard = shards_[c];
    std::unique_lock<std::mutex> shard_lock(shard->mu);
    if (shard->draining) {
      // A Restructure is quiescing this class. Epochs and Restructure are
      // not supported concurrently (see header); surface a retryable
      // status after undoing the partial admission.
      shard_lock.unlock();
      gate.unlock();
      std::vector<TxnDescriptor> undo;
      for (std::unique_ptr<TxnRuntime>& runtime : admitted) {
        undo.push_back(runtime->descriptor);
        TxnStripe& stripe = StripeFor(runtime->descriptor.id);
        std::lock_guard<std::mutex> guard(stripe.mu);
        stripe.map.emplace(runtime->descriptor.id, std::move(runtime));
      }
      for (const TxnDescriptor& descriptor : undo) (void)Abort(descriptor);
      rollback();
      return Status::Busy("class draining for restructure");
    }
    // Count the whole sub-batch in-flight BEFORE any of its initiation
    // ticks (same reasoning as the per-txn Begin: the idle trim must not
    // miss us; over-counting briefly only makes the trim more cautious).
    active_txns_.fetch_add(static_cast<std::int64_t>(members.size()));
    for (std::size_t i : members) {
      auto runtime = std::make_unique<TxnRuntime>();
      runtime->descriptor.read_only = false;
      runtime->descriptor.txn_class = c;
      runtime->descriptor.epoch = ctx->id;
      runtime->epoch = ctx;
      runtime->descriptor.init_ts = clock_->Tick();
      shard->table.OnBegin(runtime->descriptor.init_ts);
      runtime->descriptor.id = next_txn_id_.fetch_add(1);
      out[i] = runtime->descriptor;
      admitted.push_back(std::move(runtime));
    }
  }
  // Register runtimes grouped per stripe: one stripe latch acquisition
  // per stripe instead of one per transaction.
  std::array<std::vector<std::unique_ptr<TxnRuntime>*>, kTxnStripes>
      by_stripe;
  for (std::unique_ptr<TxnRuntime>& runtime : admitted) {
    by_stripe[runtime->descriptor.id % kTxnStripes].push_back(&runtime);
  }
  std::uint64_t updates = 0;
  for (std::size_t s = 0; s < kTxnStripes; ++s) {
    if (by_stripe[s].empty()) continue;
    std::lock_guard<std::mutex> guard(txn_stripes_[s].mu);
    for (std::unique_ptr<TxnRuntime>* runtime : by_stripe[s]) {
      const TxnId id = (*runtime)->descriptor.id;
      txn_stripes_[s].map.emplace(id, std::move(*runtime));
      ++updates;
    }
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].read_only) continue;
    recorder_.RecordBegin(out[i].id, out[i].txn_class,
                          /*read_only=*/false, out[i].init_ts);
  }
  metrics_.begins.Add(updates);
  return out;
}

Status HddController::EndEpoch(const EpochHandle& epoch) {
  std::lock_guard<std::mutex> eg(epoch_mu_);
  if (current_epoch_ != nullptr && current_epoch_->id == epoch.id) {
    current_epoch_.reset();
    metrics_.epochs.Add(1);
    HDD_TRACE_INSTANT("hdd", "epoch_end");
  }
  return Status::OK();
}

Result<Timestamp> HddController::EpochBound(EpochContext& ctx,
                                            ClassId own_class,
                                            ClassId target_class,
                                            TxnRuntime* runtime) {
  if (ctx.num_classes != num_classes_) {
    // Straggler path: the class structure changed shape under the epoch.
    // Evaluate uncached but still anchored at the epoch anchor — never at
    // I(t): mixing per-txn and shared anchors inside one epoch could
    // order two batch transactions' reads inconsistently.
    return eval_->A(own_class, target_class, ctx.anchor);
  }
  std::atomic<Timestamp>& slot =
      ctx.bounds[static_cast<std::size_t>(own_class) *
                     static_cast<std::size_t>(ctx.num_classes) +
                 static_cast<std::size_t>(target_class)];
  const Timestamp cached = slot.load(std::memory_order_acquire);
  if (cached != kTimestampInfinity) {
    ++runtime->n_epoch_bound_hits;
    return cached;
  }
  auto bound = [&] {
    HDD_TRACE_SPAN_SAMPLED("hdd", "epoch_bound_fill", 4);
    return eval_->A(own_class, target_class, ctx.anchor);
  }();
  if (!bound.ok()) return bound;
  // Concurrent fills race benignly: I^old values at or below the clock
  // are stable, so every evaluator publishes the identical timestamp.
  slot.store(*bound, std::memory_order_release);
  ++runtime->n_epoch_bound_misses;
  return *bound;
}

Result<ClassId> HddController::ResolveHostClass(
    const std::vector<SegmentId>& scope) {
  if (scope.empty()) {
    return Status::InvalidArgument("empty read scope");
  }
  // Map to classes and find the lowest: the class from which every other
  // scoped class is reachable by a critical path.
  std::vector<ClassId> classes;
  for (SegmentId s : scope) {
    if (s < 0 || s >= static_cast<int>(class_of_segment_.size())) {
      return Status::InvalidArgument("read scope segment out of range");
    }
    classes.push_back(class_of_segment_[s]);
  }
  ClassId lowest = classes[0];
  for (ClassId c : classes) {
    if (c == lowest || tst_->Higher(lowest, c)) {
      lowest = c;  // c is lower than (or equal to) the current lowest
    }
  }
  for (ClassId c : classes) {
    if (c != lowest && !tst_->Higher(c, lowest)) {
      return Status::InvalidArgument(
          "read scope is not reachable by critical paths from one host "
          "class; use an undeclared read-only transaction (Protocol C) "
          "instead");
    }
  }
  return lowest;
}

Result<HddController::TxnRuntime*> HddController::FindTxn(
    const TxnDescriptor& txn) {
  CachedTxnLookup& cache = t_txn_lookup;
  if (cache.controller == this && cache.id == txn.id &&
      cache.generation ==
          g_txn_cache_generation.load(std::memory_order_acquire)) {
    return static_cast<TxnRuntime*>(cache.runtime);
  }
  TxnStripe& stripe = StripeFor(txn.id);
  std::lock_guard<std::mutex> guard(stripe.mu);
  auto it = stripe.map.find(txn.id);
  if (it == stripe.map.end()) {
    return Status::FailedPrecondition("unknown or finished transaction");
  }
  cache = {this, g_txn_cache_generation.load(std::memory_order_acquire),
           txn.id, it->second.get()};
  return it->second.get();
}

Result<std::unique_ptr<HddController::TxnRuntime>> HddController::ExtractTxn(
    const TxnDescriptor& txn) {
  CachedTxnLookup& cache = t_txn_lookup;
  if (cache.controller == this && cache.id == txn.id) {
    cache = CachedTxnLookup{};
  }
  TxnStripe& stripe = StripeFor(txn.id);
  std::lock_guard<std::mutex> guard(stripe.mu);
  auto it = stripe.map.find(txn.id);
  if (it == stripe.map.end()) {
    return Status::FailedPrecondition("unknown or finished transaction");
  }
  std::unique_ptr<TxnRuntime> runtime = std::move(it->second);
  stripe.map.erase(it);
  return runtime;
}

void HddController::FlushOpMetrics(const TxnRuntime& runtime) {
  if (runtime.n_unregistered_reads != 0) {
    metrics_.unregistered_reads.Add(runtime.n_unregistered_reads);
  }
  if (runtime.n_version_reads != 0) {
    metrics_.version_reads.Add(runtime.n_version_reads);
  }
  if (runtime.n_read_timestamps != 0) {
    metrics_.read_timestamps_written.Add(runtime.n_read_timestamps);
  }
  if (runtime.n_versions_created != 0) {
    metrics_.versions_created.Add(runtime.n_versions_created);
  }
  if (runtime.n_epoch_bound_hits != 0) {
    metrics_.epoch_shared_bound_hits.Add(runtime.n_epoch_bound_hits);
  }
  if (runtime.n_epoch_bound_misses != 0) {
    metrics_.epoch_shared_bound_misses.Add(runtime.n_epoch_bound_misses);
  }
}

void HddController::PublishFootprint(const TxnRuntime& runtime) {
  std::vector<std::uint64_t> writes;
  writes.reserve(runtime.writes.size());
  for (GranuleRef g : runtime.writes) {
    writes.push_back(FootprintRecorder::Pack(
        static_cast<std::uint32_t>(g.segment),
        static_cast<std::uint32_t>(g.index)));
  }
  std::vector<std::uint64_t> reads;
  reads.reserve(runtime.fp_reads.size());
  for (GranuleRef g : runtime.fp_reads) {
    reads.push_back(FootprintRecorder::Pack(
        static_cast<std::uint32_t>(g.segment),
        static_cast<std::uint32_t>(g.index)));
  }
  options_.footprint->Observe(std::move(writes), std::move(reads),
                              runtime.descriptor.read_only);
}

Result<Value> HddController::Read(const TxnDescriptor& txn,
                                  GranuleRef granule) {
  HDD_RETURN_IF_ERROR(db_->Validate(granule));
  // Epoch-admitted transactions (txn.epoch != 0) skip the structure gate:
  // Restructure refuses to run while an epoch is open and BeginEpoch
  // refuses mid-restructure (both checked under epoch_mu_), so the class
  // structure is frozen for the epoch's whole lifetime. Per-txn
  // transactions — including every read-only admission, which BeginBatch
  // routes through Begin — still take it shared per operation.
  std::shared_lock<std::shared_mutex> gate(struct_mu_, std::defer_lock);
  if (txn.epoch == 0) gate.lock();
  HDD_ASSIGN_OR_RETURN(TxnRuntime * runtime, FindTxn(txn));
  Result<Value> result = [&]() -> Result<Value> {
    if (runtime->descriptor.read_only) {
      if (runtime->hosted_below != kReadOnlyClass) {
        return ReadHosted(runtime, granule);
      }
      return ReadUnderWall(gate, runtime, granule);
    }
    const ClassId own_class = runtime->descriptor.txn_class;
    const ClassId target_class = class_of_segment_[granule.segment];
    if (own_class == target_class) {
      return ReadOwnSegment(gate, runtime, granule);
    }
    return ReadHigherSegment(runtime, granule, own_class, target_class);
  }();
  // Footprint tracing piggybacks on the dispatch so all four read paths
  // feed the one accumulator; the per-read cost when disabled is a
  // single predictable branch.
  if (result.ok() && options_.footprint != nullptr) {
    runtime->fp_reads.push_back(granule);
  }
  return result;
}

Result<Value> HddController::ReadHigherSegment(TxnRuntime* runtime,
                                               GranuleRef granule,
                                               ClassId own_class,
                                               ClassId target_class) {
  // Protocol A. The activity link function is defined exactly when the
  // target class lies higher on a critical path — which the schema
  // guarantees for every declared read segment. The evaluation latches
  // each class shard on the path briefly, one at a time; no global latch
  // and no latch on our own class.
  SimYield("hdd/read_a");
  auto bound = [&]() -> Result<Timestamp> {
    // Epoch-admitted transactions share one bound evaluation per
    // (own class, target class, epoch), anchored at the epoch anchor m_e
    // — sound for ANY m_e at or below the clock (Theorem 1), and below
    // every batch I(t) by construction.
    if (runtime->epoch != nullptr) {
      return EpochBound(*runtime->epoch, own_class, target_class, runtime);
    }
    // Several bound evaluations per transaction, each ~100ns: sampled,
    // or the span would outweigh the evaluation it measures.
    HDD_TRACE_SPAN_SAMPLED("hdd", "protocol_a_bound", 16);
    return eval_->A(own_class, target_class, runtime->descriptor.init_ts);
  }();
  if (!bound.ok()) {
    return Status::InvalidArgument(
        "segment not on a critical path above the transaction's class");
  }
  // The canary deliberately skips the activity-link composition and reads
  // at the raw initiation time: a still-active older transaction of the
  // target class may then commit BELOW the served bound later, which the
  // oracle's bound replay against the final chains must flag.
  const Timestamp served = options_.mutation_unsafe_protocol_a
                               ? runtime->descriptor.init_ts
                               : *bound;
  // The bound is stable, so the serve point is preemptible before the
  // shard latch — this window (bound fixed, version not yet read) is
  // where racing installs would break an unsound bound.
  SimYield("hdd/read_a/serve");
  // No refcount traffic: the caller holds the structure gate shared, so
  // the shard vector cannot be swapped out from under us, and this path
  // never waits on the shard (Protocol A reads are non-blocking).
  ClassShard* shard = shards_[target_class].get();
  std::lock_guard<std::mutex> shard_lock(shard->mu);
  Granule& g = db_->granule(granule);
  const Version* version = g.LatestCommittedBefore(served);
  assert(version != nullptr);
  // Theorem-backed invariant: every version below the activity link bound
  // was created by a transaction that already finished, hence the latest
  // *committed* version below the bound is the latest version, period.
  // (Void by construction under the canary mutation.)
  assert(options_.mutation_unsafe_protocol_a ||
         (g.VersionBefore(served) != nullptr &&
          g.VersionBefore(served)->wts == version->wts));
  // "No trace of this access needs to be registered in any form" (§4.2).
  ++runtime->n_unregistered_reads;
  ++runtime->n_version_reads;
  recorder_.RecordRead(runtime->descriptor.id, granule, version->order_key,
                       /*registered=*/false, served);
  return version->value;
}

Result<Value> HddController::ReadHosted(TxnRuntime* runtime,
                                        GranuleRef granule) {
  // §5.0: the transaction behaves like an update transaction of a
  // fictitious class immediately below `hosted_below`, so ALL its reads —
  // including those against the host class's own segment — are Protocol A
  // reads through one extra I^old hop at the host class.
  const ClassId target_class = class_of_segment_[granule.segment];
  const ClassId host = runtime->hosted_below;
  if (target_class != host && !tst_->Higher(target_class, host)) {
    return Status::InvalidArgument("read outside the declared read scope");
  }
  HDD_TRACE_SPAN("hdd", "hosted_read");
  SimYield("hdd/read_hosted");
  const Timestamp base =
      shard_source_.OldestActiveAt(host, runtime->descriptor.init_ts);
  auto bound = eval_->A(host, target_class, base);
  if (!bound.ok()) return bound.status();
  SimYield("hdd/read_hosted/serve");
  // Same as Protocol A above: gate held shared, no waiting — a raw
  // pointer to the shard is safe and skips two refcount updates.
  ClassShard* shard = shards_[target_class].get();
  std::lock_guard<std::mutex> shard_lock(shard->mu);
  Granule& g = db_->granule(granule);
  const Version* version = g.LatestCommittedBefore(*bound);
  assert(version != nullptr);
  assert(g.VersionBefore(*bound) != nullptr &&
         g.VersionBefore(*bound)->wts == version->wts);
  ++runtime->n_unregistered_reads;
  ++runtime->n_version_reads;
  recorder_.RecordRead(runtime->descriptor.id, granule, version->order_key,
                       /*registered=*/false, *bound);
  return version->value;
}

Result<Value> HddController::ReadOwnSegment(
    std::shared_lock<std::shared_mutex>& gate, TxnRuntime* runtime,
    GranuleRef granule) {
  // The span covers the TO check and any wait on an uncommitted version —
  // Protocol B's whole registration cost. Sampled: the uncontended check
  // is sub-microsecond and fires for every own-segment read.
  HDD_TRACE_SPAN_SAMPLED("hdd", "protocol_b_read", 4);
  bool waited = false;
  for (;;) {
    SimYield("hdd/read_b");
    // Re-read the descriptor every attempt: a Restructure during a wait
    // may have renumbered our class (segments move with it).
    const TxnDescriptor txn = runtime->descriptor;
    // Raw pointer while the gate is held (shared): the shard vector is
    // only swapped under the exclusive gate. The wait branch below takes
    // a keep-alive reference before releasing the gate.
    ClassShard* shard = shards_[txn.txn_class].get();
    std::unique_lock<std::mutex> shard_lock(shard->mu);
    Granule& g = db_->granule(granule);
    Version* version = nullptr;
    if (options_.protocol_b == ProtocolBEngine::kMvto) {
      Version* own = g.Find(txn.init_ts);
      version = own != nullptr ? own : g.VersionBefore(txn.init_ts);
    } else {
      version = g.Latest();
      if (version->wts > txn.init_ts && version->creator != txn.id) {
        return Status::Aborted(
            "Protocol B (basic TO): granule overwritten by younger txn");
      }
    }
    assert(version != nullptr);
    if (!version->committed && version->creator != txn.id) {
      waited = true;
      // Sleep on the shard, never on the structure gate: release the gate
      // first (so a Restructure can proceed), keep the shard latch from
      // the failed check into the wait (so the creator's notify cannot be
      // missed), and re-enter through the gate afterwards. The keep-alive
      // reference outlives the gate release. Epoch transactions arrive
      // without the gate (see Read) and must not acquire it here.
      const bool had_gate = gate.owns_lock();
      std::shared_ptr<ClassShard> keep = shards_[txn.txn_class];
      if (had_gate) gate.unlock();
      SimWait(shard->cv, shard_lock, shard);
      shard_lock.unlock();
      if (had_gate) gate.lock();
      continue;
    }
    if (waited) metrics_.blocked_reads.Add(1);
    if (txn.init_ts > version->rts) version->rts = txn.init_ts;
    ++runtime->n_read_timestamps;
    ++runtime->n_version_reads;
    recorder_.RecordRead(txn.id, granule, version->order_key,
                         /*registered=*/true);
    return version->value;
  }
}

Result<Value> HddController::ReadUnderWall(
    std::shared_lock<std::shared_mutex>& gate, TxnRuntime* runtime,
    GranuleRef granule) {
  // Protocol C: pin the wall on first read so the whole transaction sees
  // one consistent cut.
  HDD_TRACE_SPAN("hdd", "protocol_c_read");
  SimYield("hdd/read_c");
  if (runtime->wall == nullptr) {
    {
      std::lock_guard<std::mutex> wg(wall_mu_);
      for (auto it = walls_.rbegin(); it != walls_.rend(); ++it) {
        if (it->release_time < runtime->descriptor.init_ts) {
          runtime->wall = &*it;
          ++wall_pins_[&*it];
          break;
        }
      }
    }
    if (runtime->wall == nullptr) {
      // No wall released before we started: release one now and use it —
      // still a consistent cut by Theorem 2, just fresher than the paper's
      // batched variant. ReleaseWallInternal pins it for us atomically
      // with publication.
      auto released = ReleaseWallInternal(gate, runtime);
      if (!released.ok()) return released.status();
    }
  }
  const TimeWall* wall = runtime->wall;
  bool waited = false;
  for (;;) {
    SimYield("hdd/read_c/serve");
    // Both the segment->class map and the wall's bound vector are remapped
    // in place by Restructure (under the exclusive gate), so re-read them
    // on every attempt.
    const ClassId target_class = class_of_segment_[granule.segment];
    const Timestamp bound = wall->bound[target_class];
    ClassShard* shard = shards_[target_class].get();
    std::unique_lock<std::mutex> shard_lock(shard->mu);
    Granule& g = db_->granule(granule);
    Version* version = g.VersionBefore(bound);
    assert(version != nullptr);
    if (!version->committed) {
      // A below-wall version is still in flight (possible only for classes
      // the wall reaches through a descending run); its fate decides what
      // we must read, so wait for the creator to resolve. Keep the shard
      // alive across the gate release.
      waited = true;
      std::shared_ptr<ClassShard> keep = shards_[target_class];
      gate.unlock();
      SimWait(shard->cv, shard_lock, shard);
      shard_lock.unlock();
      gate.lock();
      continue;
    }
    if (waited) metrics_.blocked_reads.Add(1);
    ++runtime->n_unregistered_reads;
    ++runtime->n_version_reads;
    recorder_.RecordRead(runtime->descriptor.id, granule, version->order_key,
                         /*registered=*/false, bound);
    return version->value;
  }
}

Result<const TimeWall*> HddController::ReleaseWallInternal(
    std::shared_lock<std::shared_mutex>& gate, TxnRuntime* pin_for) {
  // While a computation is mid-retry the idle trim stands down, so the
  // finished straddlers its C^late queries may stab stay available.
  struct ComputeGuard {
    std::atomic<int>& count;
    explicit ComputeGuard(std::atomic<int>& c) : count(c) { count.fetch_add(1); }
    ~ComputeGuard() { count.fetch_sub(1); }
  } compute_guard(wall_computing_);

  // Covers every retry: the span's duration is the full time-to-release,
  // including waits for straggling C^late components.
  HDD_TRACE_SPAN("hdd", "wall_compute");
  Timestamp m = clock_->Tick();
  // While an epoch is open, anchor the wall at or below the epoch anchor
  // m_e instead of the current clock. Batch transactions initiate above
  // m_e but may sit in the executor's ready queue unexecuted, so a wall
  // anchored above them would wait for finish events that no free worker
  // can produce (a guaranteed wedge at one worker). At or below m_e the
  // batch neither straddles any stabbed time nor unsettles a component,
  // so the computation never waits on the epoch itself. Protocol C is
  // indifferent to the anchor's age — any released wall is a consistent
  // cut (time travel reads strictly older walls on purpose).
  {
    std::lock_guard<std::mutex> epoch_guard(epoch_mu_);
    if (current_epoch_ != nullptr) m = std::min(m, current_epoch_->anchor);
  }
  for (;;) {
    SimYield("hdd/wall_compute");
    // Load the finish counter BEFORE attempting: a finish landing during
    // the attempt then wakes us immediately instead of being missed.
    const std::uint64_t seq0 = finish_seq_.load();
    // Re-derive the anchor each attempt — a Restructure during a wait may
    // have rebuilt the class graph.
    const ClassId anchor = PickWallAnchor(*tst_);
    auto wall = ComputeTimeWall(*eval_, num_classes_, anchor, m);
    if (wall.ok()) {
      // Release condition: a computed wall may only be served once every
      // component is settled — no class-c transaction still active with
      // initiation below bound[c]. The link functions guarantee that for
      // every class where an I^old or C^late was applied along the path,
      // but NOT where E reduces to the identity (the anchor's own class)
      // or a descending run ends (C^late excludes the run's bottom): an
      // active transaction there with init < bound[c] would later commit
      // versions below the served cut, behind reads the wall already
      // answered. Treat an unsettled component like a busy C^late and
      // wait for a finish. New transactions initiate above m >= every
      // bound, so a wall that passes this check stays settled between
      // the check and publication.
      bool settled = true;
      for (ClassId c = 0; c < num_classes_ && settled; ++c) {
        std::lock_guard<std::mutex> shard_lock(shards_[c]->mu);
        settled = shards_[c]->table.OldestActiveNow() >= wall->bound[c];
      }
      if (settled) {
        HDD_TRACE_INSTANT("hdd", "wall_release");
        wall->release_time = clock_->Tick();
        std::lock_guard<std::mutex> wg(wall_mu_);
        walls_.push_back(*std::move(wall));
        const TimeWall* released = &walls_.back();
        if (pin_for != nullptr) {
          pin_for->wall = released;
          ++wall_pins_[released];
        }
        return released;
      }
    } else if (wall.status().code() != StatusCode::kBusy) {
      return wall.status();
    }
    // Some C^late is not yet computable (or a component is unsettled):
    // wait for an update transaction to finish, with the structure gate
    // released.
    gate.unlock();
    {
      std::unique_lock<std::mutex> fl(finish_mu_);
      while (finish_seq_.load() == seq0) {
        SimWait(finish_cv_, fl, &finish_cv_);
      }
    }
    gate.lock();
  }
}

Status HddController::ReleaseNewWall() {
  std::shared_lock<std::shared_mutex> gate(struct_mu_);
  return ReleaseWallInternal(gate, nullptr).status();
}

Status HddController::Write(const TxnDescriptor& txn, GranuleRef granule,
                            Value value) {
  HDD_RETURN_IF_ERROR(db_->Validate(granule));
  // Same gate-skip as Read: the epoch/restructure exclusion freezes the
  // structure for epoch-admitted transactions.
  std::shared_lock<std::shared_mutex> gate(struct_mu_, std::defer_lock);
  if (txn.epoch == 0) gate.lock();
  HDD_ASSIGN_OR_RETURN(TxnRuntime * runtime, FindTxn(txn));
  if (runtime->descriptor.read_only) {
    return Status::FailedPrecondition("read-only transaction wrote");
  }
  HDD_TRACE_SPAN_SAMPLED("hdd", "protocol_b_write", 4);
  bool waited = false;
  for (;;) {
    SimYield("hdd/write");
    const ClassId own_class = runtime->descriptor.txn_class;
    if (class_of_segment_[granule.segment] != own_class) {
      return Status::FailedPrecondition(
          "transaction may write only its root segment");
    }
    const Timestamp ts = runtime->descriptor.init_ts;
    ClassShard* shard = shards_[own_class].get();
    std::unique_lock<std::mutex> shard_lock(shard->mu);
    Granule& g = db_->granule(granule);
    Version* own = g.Find(ts);
    if (own != nullptr) {
      own->value = value;
      if (wal_ != nullptr) {
        // Re-log the overwrite; replay applies write records for an
        // already-present order key as value updates, in log order.
        HDD_RETURN_IF_ERROR(
            wal_->LogWrite(granule.segment, txn.id, ts, granule.index, value)
                .status());
      }
      recorder_.RecordWrite(txn.id, granule, own->order_key);
      return Status::OK();
    }
    if (options_.protocol_b == ProtocolBEngine::kBasicTo) {
      Version* tip = g.Latest();
      if (tip->rts > ts) {
        return Status::Aborted("Protocol B: younger read already registered");
      }
      if (tip->wts > ts) {
        return Status::Aborted("Protocol B: overwritten by younger txn");
      }
      if (!tip->committed) {
        waited = true;
        const bool had_gate = gate.owns_lock();
        std::shared_ptr<ClassShard> keep = shards_[own_class];
        if (had_gate) gate.unlock();
        SimWait(shard->cv, shard_lock, shard);
        shard_lock.unlock();
        if (had_gate) gate.lock();
        continue;
      }
    } else {
      // Epoch-admitted transactions skip MVTO's younger-reader check: the
      // epoch executor's dependency graph orders every declared
      // same-granule conflict by admission (= timestamp) order and only
      // releases a successor after its predecessors fully finished, so a
      // younger batch reader cannot have registered an rts on an older
      // version before this write installs (an OLDER reader's rts is
      // below ts and passes the check anyway, and only Protocol B
      // own-segment reads register timestamps at all). Cross-epoch pairs
      // are ordered by the EndEpoch barrier. The sim canary that drops
      // one dependency edge (test_sim_explore) re-creates exactly the
      // anomaly this check would have caught, proving the oracle sees it.
      if (runtime->epoch == nullptr && g.MaxRtsOfVersionsBefore(ts) > ts) {
        return Status::Aborted("Protocol B: younger read of older version");
      }
    }
    if (waited) metrics_.blocked_writes.Add(1);
    Version version;
    version.order_key = ts;
    version.wts = ts;
    version.creator = txn.id;
    version.value = value;
    version.committed = false;
    HDD_RETURN_IF_ERROR(g.Insert(version));
    if (wal_ != nullptr) {
      // Same critical section as the install, so the segment log's record
      // order equals the chain's effect order (recovery replays in log
      // order). A failed append un-installs: the transaction holds no
      // version it could not redo.
      auto logged = wal_->LogWrite(granule.segment, txn.id, ts,
                                   granule.index, value);
      if (!logged.ok()) {
        (void)g.Remove(ts);
        return logged.status();
      }
    }
    runtime->writes.push_back(granule);
    ++runtime->n_versions_created;
    recorder_.RecordWrite(txn.id, granule, version.order_key);
    return Status::OK();
  }
}

Status HddController::Commit(const TxnDescriptor& txn) {
  // Interruptible only here, before the runtime is claimed: an injected
  // fault still finds a fully registered transaction for Abort to undo.
  SimYield("hdd/commit");
  HDD_TRACE_SPAN("hdd", "commit");
  // Same gate-skip as Read: the epoch/restructure exclusion freezes the
  // structure for epoch-admitted transactions.
  std::shared_lock<std::shared_mutex> gate(struct_mu_, std::defer_lock);
  if (txn.epoch == 0) gate.lock();
  HDD_ASSIGN_OR_RETURN(std::unique_ptr<TxnRuntime> runtime, ExtractTxn(txn));
  // Before any early return below: a failed commit still performed its
  // reads and installs, and the counters must say so.
  FlushOpMetrics(*runtime);
  std::uint64_t commit_ticket = 0;
  if (!runtime->descriptor.read_only) {
    // Raw pointer: only used while the gate is held (shared), and this
    // path never sleeps on the shard.
    ClassShard* shard = shards_[runtime->descriptor.txn_class].get();
    // Distinct segments this transaction wrote (one — its root segment —
    // unless a Restructure merged its class). Each gets a copy of the
    // commit record carrying the full list; recovery commits only when
    // every copy survived. Only the WAL consumes the list, so skip the
    // allocation entirely when none is attached.
    std::vector<SegmentId> written_segments;
    if (wal_ != nullptr) {
      for (GranuleRef granule : runtime->writes) {
        if (std::find(written_segments.begin(), written_segments.end(),
                      granule.segment) == written_segments.end()) {
          written_segments.push_back(granule.segment);
        }
      }
    }
    // Past the point of no return (the runtime is extracted), so this
    // site may stall — the injector's "delayed commit", which leaves the
    // uncommitted versions visible to waiting readers for a while — but
    // never unwind.
    SimYield("hdd/commit/install", /*interruptible=*/false);
    Status logged = Status::OK();
    {
      std::lock_guard<std::mutex> shard_lock(shard->mu);
      for (GranuleRef granule : runtime->writes) {
        Version* version =
            db_->granule(granule).Find(runtime->descriptor.init_ts);
        assert(version != nullptr);
        version->committed = true;
      }
      if (wal_ != nullptr) {
        // Commit records append in the SAME critical section that marks
        // the versions committed: a Protocol B read served one of these
        // versions therefore happens-after the append, so its own commit
        // ticket is higher and any sync batch acking the reader covers
        // this record too (the WaitDurable below never races it).
        for (const SegmentId s : written_segments) {
          auto ticket = wal_->LogCommit(s, runtime->descriptor.id,
                                        runtime->descriptor.init_ts,
                                        written_segments);
          if (!ticket.ok()) {
            logged = ticket.status();
            break;
          }
          commit_ticket = *ticket;
        }
      }
      shard->table.OnFinish(runtime->descriptor.init_ts, clock_->Tick());
    }
    SimNotifyAll(shard->cv, shard);
    SignalFinishEvent();
    HDD_RETURN_IF_ERROR(logged);
  } else if (wal_ != nullptr) {
    // Read-only commit: persist a clock marker (recovery must never
    // rewind below this reader's wall bound) and ride the same group
    // commit the update transactions use — the read barrier that makes
    // acked query results crash-proof.
    HDD_ASSIGN_OR_RETURN(commit_ticket, wal_->LogReadBound(clock_->Now()));
  }
  if (wal_ != nullptr && commit_ticket != 0) {
    // The durability wait sleeps in the group-commit gate; release the
    // structure gate first (never sleep holding it) and drop no latches'
    // worth of state — everything below re-reads nothing structural.
    const bool had_gate = gate.owns_lock();
    if (had_gate) gate.unlock();
    const Status durable = wal_->WaitDurable(commit_ticket);
    if (had_gate) gate.lock();
    HDD_RETURN_IF_ERROR(durable);
  }
  if (runtime->wall != nullptr) {
    std::lock_guard<std::mutex> wg(wall_mu_);
    auto it = wall_pins_.find(runtime->wall);
    assert(it != wall_pins_.end());
    if (--it->second == 0) wall_pins_.erase(it);
  }
  if (options_.footprint != nullptr) PublishFootprint(*runtime);
  recorder_.RecordOutcome(txn.id, TxnState::kCommitted);
  metrics_.commits.Add(1);
  active_txns_.fetch_sub(1);
  MaybeTrimHistory();
  return Status::OK();
}

Status HddController::Abort(const TxnDescriptor& txn) {
  // The whole abort path is non-interruptible: the executor calls Abort
  // from inside its SimFault handler (recovery), so a second fault
  // unwinding from here would escape the attempt boundary.
  SimYield("hdd/abort", /*interruptible=*/false);
  // Same gate-skip as Read: the epoch/restructure exclusion freezes the
  // structure for epoch-admitted transactions.
  std::shared_lock<std::shared_mutex> gate(struct_mu_, std::defer_lock);
  if (txn.epoch == 0) gate.lock();
  HDD_ASSIGN_OR_RETURN(std::unique_ptr<TxnRuntime> runtime, ExtractTxn(txn));
  FlushOpMetrics(*runtime);
  if (!runtime->descriptor.read_only) {
    ClassShard* shard = shards_[runtime->descriptor.txn_class].get();
    SimYield("hdd/abort/undo", /*interruptible=*/false);
    {
      std::lock_guard<std::mutex> shard_lock(shard->mu);
      std::vector<SegmentId> undone_segments;
      for (GranuleRef granule : runtime->writes) {
        Status removed =
            db_->granule(granule).Remove(runtime->descriptor.init_ts);
        assert(removed.ok());
        (void)removed;
        if (std::find(undone_segments.begin(), undone_segments.end(),
                      granule.segment) == undone_segments.end()) {
          undone_segments.push_back(granule.segment);
        }
      }
      if (wal_ != nullptr) {
        // Abort records are replay hygiene, not a durability promise: a
        // lost copy just means recovery discards the uncommitted versions
        // itself. Hence no sync and a best-effort append (an IoError here
        // must not fail the abort — the in-memory undo already happened).
        for (const SegmentId s : undone_segments) {
          (void)wal_->LogAbort(s, runtime->descriptor.id,
                               runtime->descriptor.init_ts);
        }
      }
      shard->table.OnFinish(runtime->descriptor.init_ts, clock_->Tick());
    }
    SimNotifyAll(shard->cv, shard);
    SignalFinishEvent();
  }
  if (runtime->wall != nullptr) {
    std::lock_guard<std::mutex> wg(wall_mu_);
    auto it = wall_pins_.find(runtime->wall);
    assert(it != wall_pins_.end());
    if (--it->second == 0) wall_pins_.erase(it);
  }
  recorder_.RecordOutcome(txn.id, TxnState::kAborted);
  metrics_.aborts.Add(1);
  active_txns_.fetch_sub(1);
  MaybeTrimHistory();
  return Status::OK();
}

Result<ClassId> HddController::Restructure(
    const std::vector<SegmentId>& write_segments,
    const std::vector<SegmentId>& read_segments) {
  if (write_segments.empty()) {
    return Status::InvalidArgument("restructure needs a write segment");
  }
  // One restructure at a time: the class structure only changes under this
  // mutex, so everything derived below (plan, affected set) stays valid
  // across the drain even though the structure gate is released.
  std::lock_guard<std::mutex> serial(restructure_mu_);
  {
    // Checked half of the epoch/restructure exclusion (see BeginEpoch):
    // epoch-admitted transactions run without the per-op structure gate,
    // so the structure must not change while an epoch is open. EndEpoch
    // is called only after every batch transaction finished, so "no open
    // epoch" really means "no gate-less operation in flight".
    std::lock_guard<std::mutex> eg(epoch_mu_);
    if (current_epoch_ != nullptr) {
      return Status::Busy("epoch open; restructure would race its batch");
    }
    restructuring_ = true;
  }
  struct RestructuringFlagGuard {
    HddController* cc;
    ~RestructuringFlagGuard() {
      std::lock_guard<std::mutex> eg(cc->epoch_mu_);
      cc->restructuring_ = false;
    }
  } flag_guard{this};
  HDD_TRACE_SPAN("hdd", "restructure");

  std::optional<Digraph> extended;
  MergePlan plan;
  ClassId primary = 0;
  std::vector<int> group_size;
  std::vector<std::shared_ptr<ClassShard>> affected;
  {
    std::shared_lock<std::shared_mutex> gate(struct_mu_);
    for (SegmentId s : write_segments) {
      if (s < 0 || s >= static_cast<int>(class_of_segment_.size())) {
        return Status::InvalidArgument("write segment out of range");
      }
    }
    for (SegmentId s : read_segments) {
      if (s < 0 || s >= static_cast<int>(class_of_segment_.size())) {
        return Status::InvalidArgument("read segment out of range");
      }
    }

    // Extend the current class graph with the ad-hoc pattern: force all
    // write classes into one group (antiparallel arcs collapse under SCC
    // condensation) and add the new read arcs, then legalize by merging.
    extended = tst_->graph();
    primary = class_of_segment_[write_segments[0]];
    for (SegmentId s : write_segments) {
      const ClassId c = class_of_segment_[s];
      if (c != primary) {
        extended->AddArc(primary, c);
        extended->AddArc(c, primary);
      }
    }
    for (SegmentId s : read_segments) {
      const ClassId c = class_of_segment_[s];
      if (c != primary) extended->AddArc(primary, c);
    }
    plan = MakeTstMergePlan(*extended);

    // Classes whose group gained members must drain before their activity
    // tables merge. Mark them draining (blocks new Begins) while still
    // under the shared gate.
    group_size.assign(plan.num_groups, 0);
    for (int label : plan.labels) ++group_size[label];
    for (ClassId c = 0; c < num_classes_; ++c) {
      if (group_size[plan.labels[c]] > 1) {
        std::lock_guard<std::mutex> shard_lock(shards_[c]->mu);
        shards_[c]->draining = true;
        affected.push_back(shards_[c]);
      }
    }
  }

  // Partial quiescence (§7.1.1): wait for the affected classes to drain
  // with no structure lock held — transactions of every other class, and
  // the in-flight ones of the affected classes, keep running and
  // finishing (each finish notifies its own shard's cv).
  HDD_TRACE_SPAN("hdd", "restructure_quiesce");
  for (const std::shared_ptr<ClassShard>& shard : affected) {
    std::unique_lock<std::mutex> shard_lock(shard->mu);
    while (shard->table.num_active() != 0) {
      SimWait(shard->cv, shard_lock, shard.get());
    }
  }

  {
    // The swap: the only exclusive hold of the structure gate anywhere.
    // Acquired cooperatively: reader tasks park at preemption points while
    // holding the gate shared, so a blocking exclusive acquisition here
    // would stall invisibly under the deterministic scheduler (it cannot
    // see raw futex waits). Spin on try_lock with a non-interruptible
    // reschedule instead; outside the simulation the loop degrades to a
    // short yield-spin, and readers never park holding the gate there.
    std::unique_lock<std::shared_mutex> gate(struct_mu_, std::defer_lock);
    while (!gate.try_lock()) {
      SimYield("hdd/restructure/gate", /*interruptible=*/false);
      std::this_thread::yield();
    }

    // Singleton groups keep their shard object (threads parked on its cv
    // or mid-wait stay attached to live state); merged groups get a fresh
    // shard absorbing the drained tables.
    std::vector<std::shared_ptr<ClassShard>> new_shards(plan.num_groups);
    for (ClassId c = 0; c < num_classes_; ++c) {
      if (group_size[plan.labels[c]] == 1) {
        new_shards[plan.labels[c]] = shards_[c];
      }
    }
    for (int g = 0; g < plan.num_groups; ++g) {
      if (new_shards[g] == nullptr) {
        new_shards[g] = std::make_shared<ClassShard>();
      }
    }
    for (ClassId c = 0; c < num_classes_; ++c) {
      if (group_size[plan.labels[c]] > 1) {
        new_shards[plan.labels[c]]->table.MergeFrom(
            std::move(shards_[c]->table));
      }
    }

    for (SegmentId s = 0; s < static_cast<int>(class_of_segment_.size());
         ++s) {
      class_of_segment_[s] = plan.labels[class_of_segment_[s]];
    }
    for (TxnStripe& stripe : txn_stripes_) {
      std::lock_guard<std::mutex> guard(stripe.mu);
      for (auto& [id, runtime] : stripe.map) {
        (void)id;
        if (!runtime->descriptor.read_only) {
          runtime->descriptor.txn_class =
              plan.labels[runtime->descriptor.txn_class];
        } else if (runtime->hosted_below != kReadOnlyClass) {
          runtime->hosted_below = plan.labels[runtime->hosted_below];
        }
      }
    }
    {
      // Remap released walls in place (new bound = min of merged old
      // bounds, the conservative cut).
      std::lock_guard<std::mutex> wg(wall_mu_);
      for (TimeWall& wall : walls_) {
        std::vector<Timestamp> new_bound(plan.num_groups,
                                         kTimestampInfinity);
        for (ClassId c = 0; c < num_classes_; ++c) {
          new_bound[plan.labels[c]] =
              std::min(new_bound[plan.labels[c]], wall.bound[c]);
        }
        wall.bound = std::move(new_bound);
      }
    }
    Digraph quotient = Quotient(*extended, plan.labels, plan.num_groups);
    auto tst = TstAnalysis::Create(quotient);
    assert(tst.ok());
    tst_ = std::make_unique<TstAnalysis>(std::move(tst).value());
    shards_ = std::move(new_shards);
    num_classes_ = plan.num_groups;
    eval_ =
        std::make_unique<ActivityLinkEvaluator>(tst_.get(), &shard_source_);
  }

  // Reopen the orphaned shards: Begins parked on them re-resolve their
  // class through the structure gate and land on the merged shard.
  for (const std::shared_ptr<ClassShard>& shard : affected) {
    {
      std::lock_guard<std::mutex> shard_lock(shard->mu);
      shard->draining = false;
    }
    SimNotifyAll(shard->cv, shard.get());
  }
  return plan.labels[primary];
}

Timestamp HddController::WallMin(const TimeWall& wall) {
  Timestamp lo = kTimestampInfinity;
  for (Timestamp b : wall.bound) lo = std::min(lo, b);
  return lo;
}

Timestamp HddController::SafeGcHorizon() const {
  std::shared_lock<std::shared_mutex> gate(struct_mu_);
  std::lock_guard<std::mutex> wg(wall_mu_);
  return ComputeSafeGcHorizon();
}

Timestamp HddController::ComputeSafeGcHorizon() const {
  Timestamp horizon = clock_->Now() + 1;
  for (const std::shared_ptr<ClassShard>& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    horizon = std::min(horizon, shard->table.OldestActiveNow());
  }
  {
    // An open epoch serves Protocol A reads at bounds anchored at the
    // epoch anchor m_e, which lies BELOW every batch transaction's
    // initiation time — the active-transaction minimum above does not
    // cover them. Seed the fixpoint with the anchor; the closure below
    // then under-approximates every shared bound the epoch can serve.
    std::lock_guard<std::mutex> eg(epoch_mu_);
    if (current_epoch_ != nullptr) {
      horizon = std::min(horizon, current_epoch_->anchor);
    }
  }
  // Close the horizon under I^old. A Protocol A (or hosted) read serves
  // at a composition of I^old values, and the transaction an I^old named
  // may FINISH between the bound's evaluation and the serve: its init
  // then survives only as a finished-straddler entry, invisible to
  // OldestActiveNow. Pruning above such a bound would delete the very
  // version the in-flight read is about to serve. OldestActiveAt is
  // monotone in its argument, so the fixpoint below under-approximates
  // every bound any active transaction can still be served — and the
  // iteration only ever descends, through the finite set of initiation
  // times, so it terminates.
  for (;;) {
    Timestamp closed = horizon;
    for (const std::shared_ptr<ClassShard>& shard : shards_) {
      std::lock_guard<std::mutex> shard_lock(shard->mu);
      closed = std::min(closed, shard->table.OldestActiveAt(horizon));
    }
    if (closed == horizon) break;
    horizon = closed;
  }
  if (!walls_.empty()) {
    horizon = std::min(horizon, WallMin(walls_.back()));
  }
  for (const auto& [wall, pins] : wall_pins_) {
    (void)pins;
    horizon = std::min(horizon, WallMin(*wall));
  }
  return horizon;
}

std::size_t HddController::CollectGarbage() {
  HDD_TRACE_SPAN("hdd", "gc_sweep");
  std::shared_lock<std::shared_mutex> gate(struct_mu_);
  Timestamp horizon;
  {
    // Fix the horizon and raise the AS-OF guard in one critical section:
    // a Begin pinning a wall validates against last_gc_horizon_ under the
    // same mutex, so it either pins before we compute (and the pin lowers
    // the horizon) or observes the raised guard and is rejected.
    std::lock_guard<std::mutex> wg(wall_mu_);
    horizon = ComputeSafeGcHorizon();
    last_gc_horizon_ = std::max(last_gc_horizon_, horizon);
  }
  // Prune segment by segment under the owning class's shard latch — the
  // latch every version-chain access in this controller takes. New
  // transactions beginning meanwhile get initiation times above the
  // horizon, so the cut stays safe.
  std::size_t removed = 0;
  for (SegmentId s = 0; s < static_cast<int>(class_of_segment_.size());
       ++s) {
    std::shared_ptr<ClassShard> shard = shards_[class_of_segment_[s]];
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    removed += db_->CollectGarbageSegment(s, horizon);
  }
  return removed;
}

std::size_t HddController::ActivityHistorySize() const {
  std::shared_lock<std::shared_mutex> gate(struct_mu_);
  std::size_t total = 0;
  for (const std::shared_ptr<ClassShard>& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    total += shard->table.history_size();
  }
  return total;
}

namespace {
/// Control-state blob header: magic + format version.
constexpr std::uint32_t kControlMagic = 0x4854434Cu;  // "HTCL"
constexpr std::uint32_t kControlVersion = 1;
}  // namespace

Status HddController::CheckpointWal() {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition("no WAL attached to the database");
  }
  HDD_TRACE_SPAN("wal", "checkpoint");
  std::shared_lock<std::shared_mutex> gate(struct_mu_);
  std::vector<SegmentCheckpoint> ckpts(class_of_segment_.size());
  for (SegmentId s = 0; s < static_cast<int>(class_of_segment_.size());
       ++s) {
    // Non-interruptible: checkpointing runs outside any transaction
    // attempt, so there is no Abort path for an injected fault to unwind
    // through. (Injected process crashes still fire here.)
    SimYield("hdd/checkpoint", /*interruptible=*/false);
    // ONE critical section under the owning class's shard latch: the
    // chains snapshot and the log position are consistent by construction
    // — every log record at or below the LSN is reflected in the chains,
    // every one above is not.
    std::shared_ptr<ClassShard> shard = shards_[class_of_segment_[s]];
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    ckpts[static_cast<std::size_t>(s)].chains =
        EncodeSegmentChains(db_->segment(s));
    ckpts[static_cast<std::size_t>(s)].log_end_lsn = wal_->LogEndLsn(s);
  }
  const std::string control = ExportControlStateLocked();
  // Harden every redo log BEFORE persisting any snapshot. A snapshot may
  // contain commit marks whose records were only buffered when the chains
  // were captured; persisting it first would let a crash keep the (synced)
  // snapshot while losing the (unsynced) records it reflects — silently
  // promoting unacked commits whose cross-segment dependencies may be
  // gone. After this barrier, everything a snapshot contains is also
  // derivable from durable log records, so recovery may treat committed
  // snapshot versions as durably committed.
  gate.unlock();
  HDD_RETURN_IF_ERROR(wal_->AwaitReadStable());
  // The (comparatively slow) appends+syncs happen outside every latch;
  // writers proceed, their records simply replay on top of the snapshot.
  for (SegmentId s = 0; s < static_cast<int>(ckpts.size()); ++s) {
    HDD_RETURN_IF_ERROR(AppendSegmentCheckpoint(
        &wal_->storage(), s, ckpts[static_cast<std::size_t>(s)]));
  }
  HDD_RETURN_IF_ERROR(AppendControlCheckpoint(&wal_->storage(), control));
  wal_->metrics().checkpoints.Add(1);
  return Status::OK();
}

std::string HddController::ExportControlState() const {
  std::shared_lock<std::shared_mutex> gate(struct_mu_);
  return ExportControlStateLocked();
}

std::string HddController::ExportControlStateLocked() const {
  std::string out;
  PutU32(&out, kControlMagic);
  PutU32(&out, kControlVersion);
  PutU64(&out, clock_->Now());
  PutU32(&out, static_cast<std::uint32_t>(num_classes_));
  for (ClassId c = 0; c < num_classes_; ++c) {
    const std::shared_ptr<ClassShard>& shard = shards_[c];
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    PutU32(&out,
           static_cast<std::uint32_t>(shard->table.finished().size()));
    for (const auto& [init, end] : shard->table.finished()) {
      PutU64(&out, init);
      PutU64(&out, end);
    }
  }
  std::lock_guard<std::mutex> wg(wall_mu_);
  PutU64(&out, last_gc_horizon_);
  PutU32(&out, static_cast<std::uint32_t>(walls_.size()));
  for (const TimeWall& wall : walls_) {
    PutU64(&out, wall.m);
    PutU32(&out, static_cast<std::uint32_t>(wall.s));
    PutU64(&out, wall.release_time);
    PutU32(&out, static_cast<std::uint32_t>(wall.bound.size()));
    for (const Timestamp b : wall.bound) PutU64(&out, b);
  }
  return out;
}

Status HddController::RestoreControlState(const std::string& blob) {
  if (blob.empty()) return Status::OK();  // never checkpointed: fresh start
  std::string_view in = blob;
  std::uint32_t magic = 0, version = 0, num_classes = 0;
  std::uint64_t clock_now = 0;
  if (!GetU32(&in, &magic) || magic != kControlMagic ||
      !GetU32(&in, &version) || version != kControlVersion ||
      !GetU64(&in, &clock_now) || !GetU32(&in, &num_classes)) {
    return Status::Corruption("control state: bad header");
  }
  std::shared_lock<std::shared_mutex> gate(struct_mu_);
  if (static_cast<int>(num_classes) != num_classes_) {
    return Status::FailedPrecondition(
        "control state was taken under a different class structure");
  }
  for (ClassId c = 0; c < num_classes_; ++c) {
    std::uint32_t count = 0;
    if (!GetU32(&in, &count)) {
      return Status::Corruption("control state: truncated history");
    }
    const std::shared_ptr<ClassShard>& shard = shards_[c];
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    for (std::uint32_t i = 0; i < count; ++i) {
      std::uint64_t init = 0, end = 0;
      if (!GetU64(&in, &init) || !GetU64(&in, &end)) {
        return Status::Corruption("control state: truncated history record");
      }
      shard->table.OnBegin(init);
      shard->table.OnFinish(init, end);
    }
  }
  std::uint64_t horizon = 0;
  std::uint32_t num_walls = 0;
  if (!GetU64(&in, &horizon) || !GetU32(&in, &num_walls)) {
    return Status::Corruption("control state: truncated wall section");
  }
  std::lock_guard<std::mutex> wg(wall_mu_);
  last_gc_horizon_ = std::max(last_gc_horizon_, horizon);
  for (std::uint32_t w = 0; w < num_walls; ++w) {
    TimeWall wall;
    std::uint32_t anchor = 0, bounds = 0;
    if (!GetU64(&in, &wall.m) || !GetU32(&in, &anchor) ||
        !GetU64(&in, &wall.release_time) || !GetU32(&in, &bounds) ||
        static_cast<int>(bounds) != num_classes_) {
      return Status::Corruption("control state: truncated wall");
    }
    wall.s = static_cast<ClassId>(anchor);
    wall.bound.resize(bounds);
    for (std::uint32_t b = 0; b < bounds; ++b) {
      if (!GetU64(&in, &wall.bound[b])) {
        return Status::Corruption("control state: truncated wall bound");
      }
    }
    walls_.push_back(std::move(wall));
  }
  if (!in.empty()) {
    return Status::Corruption("control state: trailing bytes");
  }
  // The restored histories and walls speak in pre-crash timestamps; the
  // clock must never re-issue them.
  clock_->AdvanceTo(clock_now);
  return Status::OK();
}

void HddController::MaybeTrimHistory() {
  if (!options_.auto_trim_history) return;
  // Idle point: no transaction of any kind in flight. Every future
  // activity-link chain starts at an initiation time above the current
  // clock and, by induction over the chain, never stabs a time at or
  // below it; records that ended by now are dead. Order matters: read the
  // clock FIRST, then re-check the counter — a Begin that slips past the
  // check ticked after our clock read, so its chains stay above `now`.
  const Timestamp now = clock_->Now();
  if (active_txns_.load() != 0) return;
  if (wall_computing_.load() != 0) return;
  for (const std::shared_ptr<ClassShard>& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    shard->table.TrimFinishedBefore(now);
  }
}

// ---------------------------------------------------------------------------
// Distribution hooks (src/dist/). See the header for the protocol; the key
// ordering invariant lives in CommitDurablePhase/FinishDistributedCommit.
// ---------------------------------------------------------------------------

Result<ActivitySlice> HddController::ExportActivitySlice(ClassId c,
                                                         Timestamp frontier) {
  std::shared_lock<std::shared_mutex> gate(struct_mu_);
  if (c < 0 || c >= num_classes_) {
    return Status::InvalidArgument("no such class");
  }
  ActivitySlice slice;
  slice.class_id = c;
  slice.frontier = frontier;
  ClassShard* shard = shards_[c].get();
  std::lock_guard<std::mutex> shard_lock(shard->mu);
  // Only initiations below the frontier can affect I^old(v) for
  // v <= frontier; transactions begun after the frontier tick are
  // invisible to every evaluation the slice is valid for.
  for (const Timestamp init : shard->table.active()) {
    if (init < frontier) slice.active.push_back(init);
  }
  slice.finished.reserve(shard->table.finished().size());
  for (const auto& [init, end] : shard->table.finished()) {
    slice.finished.emplace_back(init, end);
  }
  return slice;
}

Result<std::vector<Version>> HddController::ExportVersions(
    SegmentId segment, std::uint32_t granule) {
  std::shared_lock<std::shared_mutex> gate(struct_mu_);
  const GranuleRef ref{segment, granule};
  HDD_RETURN_IF_ERROR(db_->Validate(ref));
  ClassShard* shard = shards_[class_of_segment_[segment]].get();
  std::lock_guard<std::mutex> shard_lock(shard->mu);
  std::vector<Version> committed;
  for (const Version& v : db_->granule(ref).versions()) {
    if (v.committed) committed.push_back(v);
  }
  return committed;
}

Status HddController::RecordExternalRead(const TxnDescriptor& txn,
                                         GranuleRef granule,
                                         Timestamp version_key,
                                         Timestamp bound) {
  std::shared_lock<std::shared_mutex> gate(struct_mu_);
  HDD_ASSIGN_OR_RETURN(TxnRuntime * runtime, FindTxn(txn));
  // Same accounting as ReadHigherSegment: remote Protocol A reads are
  // unregistered version reads, and the oracle replays them by bound.
  ++runtime->n_unregistered_reads;
  ++runtime->n_version_reads;
  if (options_.footprint != nullptr) runtime->fp_reads.push_back(granule);
  recorder_.RecordRead(runtime->descriptor.id, granule, version_key,
                       /*registered=*/false, bound);
  return Status::OK();
}

Status HddController::AwaitWalReadStable() {
  if (wal_ == nullptr) return Status::OK();
  return wal_->AwaitReadStable();
}

Status HddController::PrepareExternal(
    SegmentId segment, TxnId txn, Timestamp init_ts,
    const std::vector<std::pair<std::uint32_t, Value>>& writes) {
  // Participant effects must not unwind mid-way: the coordinator resolves
  // a failed prepare with AbortExternal, not by stack unwinding here.
  SimYield("hdd/dist/prepare", /*interruptible=*/false);
  std::shared_lock<std::shared_mutex> gate(struct_mu_);
  if (segment < 0 || segment >= static_cast<int>(class_of_segment_.size())) {
    return Status::InvalidArgument("no such segment");
  }
  ClassShard* shard = shards_[class_of_segment_[segment]].get();
  std::uint64_t prepare_ticket = 0;
  {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    for (const auto& [index, value] : writes) {
      const GranuleRef ref{segment, index};
      HDD_RETURN_IF_ERROR(db_->Validate(ref));
      Granule& g = db_->granule(ref);
      if (Version* existing = g.Find(init_ts)) {
        // Duplicated prepare (the transport may redeliver) or a
        // same-granule re-write in the shipped list: update in place and
        // re-log, mirroring the local Write overwrite path (replay applies
        // write records for a present order key as value updates, in log
        // order), then fall through to re-log the marker and re-ack.
        if (existing->creator != txn) {
          return Status::FailedPrecondition(
              "prepare: order key owned by another transaction");
        }
        existing->value = value;
        if (wal_ != nullptr) {
          HDD_RETURN_IF_ERROR(
              wal_->LogWrite(segment, txn, init_ts, index, value).status());
        }
        continue;
      }
      Version v;
      v.order_key = init_ts;
      v.wts = init_ts;
      v.creator = txn;
      v.value = value;
      v.committed = false;
      HDD_RETURN_IF_ERROR(g.Insert(v));
      if (wal_ != nullptr) {
        auto logged = wal_->LogWrite(segment, txn, init_ts, index, value);
        if (!logged.ok()) {
          (void)g.Remove(init_ts);
          return logged.status();
        }
      }
    }
    if (wal_ != nullptr) {
      HDD_ASSIGN_OR_RETURN(prepare_ticket,
                           wal_->LogPrepare(segment, txn, init_ts));
    }
  }
  if (wal_ != nullptr) {
    // Ack only once the shipped writes and the marker are on disk: the
    // coordinator's commit decision assumes this node can redo them.
    const bool had_gate = gate.owns_lock();
    if (had_gate) gate.unlock();
    const Status durable = wal_->WaitDurable(prepare_ticket);
    if (had_gate) gate.lock();
    HDD_RETURN_IF_ERROR(durable);
  }
  return Status::OK();
}

Status HddController::CommitExternal(SegmentId segment, TxnId txn,
                                     Timestamp init_ts) {
  // Phase 2 rolls forward, never unwinds (the verdict is already durable
  // at the coordinator).
  SimYield("hdd/dist/commit_ext", /*interruptible=*/false);
  std::shared_lock<std::shared_mutex> gate(struct_mu_);
  if (segment < 0 || segment >= static_cast<int>(class_of_segment_.size())) {
    return Status::InvalidArgument("no such segment");
  }
  ClassShard* shard = shards_[class_of_segment_[segment]].get();
  std::uint64_t commit_ticket = 0;
  {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    Segment& seg = db_->segment(segment);
    for (std::uint32_t i = 0; i < seg.size(); ++i) {
      Version* v = seg.granule(i).Find(init_ts);
      if (v != nullptr && v->creator == txn) v->committed = true;
    }
    if (wal_ != nullptr) {
      HDD_ASSIGN_OR_RETURN(commit_ticket,
                           wal_->LogCommit(segment, txn, init_ts, {segment}));
    }
  }
  SimNotifyAll(shard->cv, shard);
  if (wal_ != nullptr) {
    const bool had_gate = gate.owns_lock();
    if (had_gate) gate.unlock();
    const Status durable = wal_->WaitDurable(commit_ticket);
    if (had_gate) gate.lock();
    HDD_RETURN_IF_ERROR(durable);
  }
  return Status::OK();
}

Status HddController::AbortExternal(SegmentId segment, TxnId txn,
                                    Timestamp init_ts) {
  SimYield("hdd/dist/abort_ext", /*interruptible=*/false);
  std::shared_lock<std::shared_mutex> gate(struct_mu_);
  if (segment < 0 || segment >= static_cast<int>(class_of_segment_.size())) {
    return Status::InvalidArgument("no such segment");
  }
  ClassShard* shard = shards_[class_of_segment_[segment]].get();
  {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    Segment& seg = db_->segment(segment);
    for (std::uint32_t i = 0; i < seg.size(); ++i) {
      Granule& g = seg.granule(i);
      const Version* v = g.Find(init_ts);
      if (v != nullptr && v->creator == txn && !v->committed) {
        (void)g.Remove(init_ts);
      }
    }
    if (wal_ != nullptr) {
      // Replay hygiene like Abort's records: a lost copy just means
      // recovery discards the unresolved prepare itself.
      (void)wal_->LogAbort(segment, txn, init_ts);
    }
  }
  SimNotifyAll(shard->cv, shard);
  return Status::OK();
}

Status HddController::CommitDurablePhase(const TxnDescriptor& txn) {
  // First half of Commit, with the transaction left REGISTERED: its
  // initiation stays in the activity table, so no activity-link bound on
  // any node can pass I(t) while remote participants are still marking
  // their versions committed. Past this point the coordinator rolls
  // forward (the fault injector may stall but not unwind).
  SimYield("hdd/dist/commit_local", /*interruptible=*/false);
  std::shared_lock<std::shared_mutex> gate(struct_mu_);
  HDD_ASSIGN_OR_RETURN(TxnRuntime * runtime, FindTxn(txn));
  if (runtime->descriptor.read_only) {
    return Status::InvalidArgument(
        "distributed commit is for update transactions");
  }
  ClassShard* shard = shards_[runtime->descriptor.txn_class].get();
  std::vector<SegmentId> written_segments;
  for (GranuleRef granule : runtime->writes) {
    if (std::find(written_segments.begin(), written_segments.end(),
                  granule.segment) == written_segments.end()) {
      written_segments.push_back(granule.segment);
    }
  }
  std::uint64_t commit_ticket = 0;
  Status logged = Status::OK();
  {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    for (GranuleRef granule : runtime->writes) {
      Version* version =
          db_->granule(granule).Find(runtime->descriptor.init_ts);
      assert(version != nullptr);
      version->committed = true;
    }
    if (wal_ != nullptr) {
      for (const SegmentId s : written_segments) {
        auto ticket = wal_->LogCommit(s, runtime->descriptor.id,
                                      runtime->descriptor.init_ts,
                                      written_segments);
        if (!ticket.ok()) {
          logged = ticket.status();
          break;
        }
        commit_ticket = *ticket;
      }
    }
  }
  SimNotifyAll(shard->cv, shard);
  HDD_RETURN_IF_ERROR(logged);
  if (wal_ != nullptr && commit_ticket != 0) {
    const bool had_gate = gate.owns_lock();
    if (had_gate) gate.unlock();
    const Status durable = wal_->WaitDurable(commit_ticket);
    if (had_gate) gate.lock();
    HDD_RETURN_IF_ERROR(durable);
  }
  return Status::OK();
}

Status HddController::FinishDistributedCommit(const TxnDescriptor& txn) {
  // Second half of Commit: deregister and run the bookkeeping. Called
  // only after every remote participant acked CommitExternal — the
  // ordering that keeps remote bounded reads sound (a bound can pass
  // I(t) only once OnFinish ran, by which time all of t's versions are
  // committed everywhere).
  SimYield("hdd/dist/finish", /*interruptible=*/false);
  std::shared_lock<std::shared_mutex> gate(struct_mu_);
  HDD_ASSIGN_OR_RETURN(std::unique_ptr<TxnRuntime> runtime, ExtractTxn(txn));
  FlushOpMetrics(*runtime);
  ClassShard* shard = shards_[runtime->descriptor.txn_class].get();
  {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    shard->table.OnFinish(runtime->descriptor.init_ts, clock_->Tick());
  }
  SimNotifyAll(shard->cv, shard);
  SignalFinishEvent();
  if (options_.footprint != nullptr) PublishFootprint(*runtime);
  recorder_.RecordOutcome(txn.id, TxnState::kCommitted);
  metrics_.commits.Add(1);
  active_txns_.fetch_sub(1);
  MaybeTrimHistory();
  return Status::OK();
}

}  // namespace hdd
