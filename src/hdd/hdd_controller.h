#ifndef HDD_HDD_HDD_CONTROLLER_H_
#define HDD_HDD_HDD_CONTROLLER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cc/controller.h"
#include "graph/dhg.h"
#include "hdd/activity.h"
#include "hdd/link_functions.h"
#include "hdd/time_wall.h"
#include "obs/footprint.h"

namespace hdd {

/// Which protocol governs accesses inside a transaction's own root
/// segment (the paper's Protocol B allows either).
enum class ProtocolBEngine {
  kMvto,     // multi-version timestamp ordering [Reed 78]
  kBasicTo,  // basic timestamp ordering [Bernstein 80]
};

struct HddControllerOptions {
  ProtocolBEngine protocol_b = ProtocolBEngine::kMvto;

  /// Trim every class's finished-transaction history whenever the system
  /// reaches an idle point (no transaction of any kind in flight). At an
  /// idle point every future activity-link chain provably stays above the
  /// current clock, so records finished earlier can never be stabbed
  /// again: trimming is exact, not approximate.
  bool auto_trim_history = true;

  /// TEST-ONLY mutation switch, the canary of the deterministic
  /// simulation harness: when set, Protocol A serves cross-segment reads
  /// at the reader's raw initiation time I(t) instead of the composed
  /// activity-link bound A_i^j(I(t)) — deliberately violating Theorem 1,
  /// since an older transaction of the target class still active at I(t)
  /// may commit a version below the served bound afterwards. The sim
  /// oracle's bound replay must catch this with a replayable seed;
  /// a harness that cannot detect the mutation is broken.
  bool mutation_unsafe_protocol_a = false;

  /// When set, the controller publishes one footprint (the packed
  /// granule read/write sets) per COMMITTED transaction — the trace feed
  /// of workload-driven automatic decomposition (graph/auto_decompose.h,
  /// engine/redecompose.h). Reads are accumulated in the transaction's
  /// runtime by its driving thread, so the publication costs one recorder
  /// call per commit, not per operation. Not owned; must outlive the
  /// controller.
  FootprintRecorder* footprint = nullptr;

  /// First transaction id this controller issues. A sharded deployment
  /// (src/dist/) gives each node's controller a disjoint id range so the
  /// merged multi-node history has globally unique transaction ids.
  TxnId first_txn_id = 1;

  std::string name = "hdd";
};

/// A copy of one class's activity state, bounded by a frontier timestamp:
/// everything needed to evaluate I^old (and C^late, when computable) at
/// any time v <= frontier. Shipped between nodes by src/dist/ so a remote
/// reader evaluates its activity-link bound locally — values at or below
/// the frontier are stable because initiation timestamps are issued
/// monotonically by the shared clock and registered under the owning
/// shard's latch before the frontier timestamp could have been issued.
struct ActivitySlice {
  ClassId class_id = 0;
  Timestamp frontier = kTimestampMin;
  /// Initiation times of transactions still active when the slice was
  /// taken (only those below the frontier matter to the evaluation).
  std::vector<Timestamp> active;
  /// Finished records, (initiation, end) pairs.
  std::vector<std::pair<Timestamp, Timestamp>> finished;
};

/// The paper's contribution: concurrency control by Hierarchical Database
/// Decomposition.
///
///  * Protocol A (§4.2): an update transaction of class `i` reading a
///    granule of a *higher* segment `j` is served the latest version with
///    write timestamp below A_i^j(I(t)). The read leaves no lock and no
///    timestamp, never waits and never aborts.
///  * Protocol B (§4.2): accesses to the transaction's own root segment
///    use (multi-version) timestamp ordering; these reads are registered.
///  * Protocol C (§5.2): an ad-hoc read-only transaction reads, in every
///    segment, below the corresponding component of a released time wall;
///    it registers nothing and never invalidates an update transaction.
///
/// Classes start out 1:1 with the schema's segments; `Restructure`
/// (paper §7.1.1) merges classes at run time to legalize an ad-hoc access
/// pattern, draining only the affected classes first.
///
/// ## Locking model (per-class sharding)
///
/// The controller takes the decomposition literally: concurrency-control
/// state is sharded by class, so transactions of different classes never
/// contend on a latch.
///
///  * One `ClassShard` per class holds the class's activity table and a
///    latch guarding it *and* the version chains of every segment the
///    class owns. Protocol B work touches exactly one shard.
///  * Protocol A reads evaluate the activity link bound by locking each
///    class shard on the critical path one at a time (never two at once):
///    I^old/C^late values at or below the clock are stable, so the
///    class-by-class walk equals an atomic snapshot — this is what lets
///    cross-segment reads proceed without any global latch.
///  * A `std::shared_mutex` structure gate protects the class structure
///    itself (segment->class map, semi-tree analysis, the shard vector).
///    Per-txn operations hold it shared; only `Restructure`'s short swap
///    window takes it exclusively. Epoch-admitted transactions skip the
///    gate entirely: `BeginEpoch` and `Restructure` exclude each other
///    under the epoch mutex, so the structure is frozen while an epoch
///    is open (each returns Busy while the other is in progress). No
///    thread ever sleeps on a condition variable while holding the gate.
///  * Released time walls, wall pin counts and the GC horizon live under
///    a dedicated wall mutex; the transaction registry is striped.
///
/// Latch order: structure gate (shared) -> { txn stripe | wall mutex ->
/// class shard }. Data paths hold at most one class shard at a time;
/// only Restructure (itself serialized) touches several.
///
/// Drivers follow the usual controller contract: each in-flight
/// transaction is driven by one thread at a time (concurrent calls for
/// *different* transactions are the point; concurrent calls for the same
/// transaction are not supported).
class HddController : public ConcurrencyController {
 public:
  /// The schema must be TST-hierarchical (enforced by HierarchySchema).
  HddController(Database* db, LogicalClock* clock,
                const HierarchySchema* schema,
                HddControllerOptions options = {});
  ~HddController() override;

  std::string_view name() const override { return options_.name; }

  Result<TxnDescriptor> Begin(const TxnOptions& options) override;
  Result<Value> Read(const TxnDescriptor& txn, GranuleRef granule) override;
  Status Write(const TxnDescriptor& txn, GranuleRef granule,
               Value value) override;
  Status Commit(const TxnDescriptor& txn) override;
  Status Abort(const TxnDescriptor& txn) override;

  /// Epoch/batch execution. BeginEpoch ticks the anchor m_e; every
  /// Protocol A bound of the epoch is evaluated at m_e exactly once per
  /// (own class, target class) pair and shared by the whole batch —
  /// sound because versions below A_i^j(m) are final for ANY m at or
  /// below the clock (Theorem 1), and m_e precedes every batch I(t).
  /// BeginBatch admits update transactions of one class under a single
  /// shard critical section. While an epoch is open the caller must not
  /// Begin update transactions outside it (read-only Begins are fine),
  /// and Restructure is unsupported. See docs/TUTORIAL §10.
  Result<EpochHandle> BeginEpoch() override;
  Result<std::vector<TxnDescriptor>> BeginBatch(
      const EpochHandle& epoch,
      const std::vector<TxnOptions>& batch) override;
  Status EndEpoch(const EpochHandle& epoch) override;

  /// Class currently owning a segment (identity until a Restructure).
  ClassId ClassOfSegment(SegmentId segment) const;

  /// Forces release of a fresh time wall anchored per PickWallAnchor at
  /// m = now. Blocks until computable. Also called lazily by the first
  /// read-only transaction that finds no released wall.
  Status ReleaseNewWall();

  /// §5.2's batched operation: starts a background pacer that releases a
  /// fresh wall every `interval` (releases are skipped while one is
  /// already computing). Idempotent restart with a new interval. The
  /// pacer stops on StopWallPacer() or destruction.
  void StartWallPacer(std::chrono::milliseconds interval);
  void StopWallPacer();

  /// Number of walls released so far.
  std::size_t num_walls() const;

  /// §7.1.1 dynamic restructuring: merges classes so that a transaction
  /// type writing `write_segments` while reading `read_segments` becomes
  /// legal, then returns the class that type must declare. Blocks until
  /// the classes being merged have no active transactions (partial
  /// quiescence — only affected classes drain; others keep running).
  /// Returns Busy while an epoch is open: batch-admitted transactions run
  /// without the per-op structure gate, so the structure must not change
  /// until EndEpoch (which the epoch executor calls only after every
  /// batch transaction finished).
  Result<ClassId> Restructure(const std::vector<SegmentId>& write_segments,
                              const std::vector<SegmentId>& read_segments);

  /// True when a transaction type writing `write_segments` while reading
  /// `read_segments` is already legal under the CURRENT class structure
  /// (all writes in one class, every read segment on a critical path
  /// above it) — i.e. Restructure for that pattern would be a no-op
  /// merge. Takes the structure gate shared; safe alongside running
  /// transactions. The online Redecomposer uses this to decide which
  /// inferred types actually require a merge.
  Result<bool> IsLegalAccessPattern(
      const std::vector<SegmentId>& write_segments,
      const std::vector<SegmentId>& read_segments) const;

  /// A version-GC horizon currently safe for garbage collection: below
  /// the initiation time of every active transaction and below every
  /// wall component still reachable by read-only transactions (§7.3).
  Timestamp SafeGcHorizon() const;

  /// §7.3 garbage collection, safe to call concurrently with running
  /// transactions: fixes a safe horizon under the wall mutex, then prunes
  /// segment by segment under the owning class's shard latch — the same
  /// latch every version-chain access in this controller takes.
  /// Returns the number of versions removed.
  std::size_t CollectGarbage();

  /// Total finished-history records across all class activity tables
  /// (observability for the trimming behaviour).
  std::size_t ActivityHistorySize() const;

  /// Fuzzy checkpoint of the attached WAL (src/wal/): snapshots every
  /// segment's chains together with its log position under the owning
  /// class's shard latch (one segment at a time — writers in other
  /// segments keep running), then appends the control state. Requires a
  /// WAL on the database; safe to call concurrently with transactions,
  /// not with a concurrent Restructure.
  Status CheckpointWal();

  /// Serializes the controller state the WAL cannot re-derive from redo
  /// records: the clock, released time walls, the GC horizon and each
  /// class's finished-transaction history. Opaque to src/wal/ — recovery
  /// hands the newest durable copy back to RestoreControlState.
  std::string ExportControlState() const;

  /// Restores a blob produced by ExportControlState (empty blob: no-op).
  /// Call on a freshly constructed controller, before any transaction
  /// begins; fails if the blob is malformed or the class count changed.
  Status RestoreControlState(const std::string& blob);

  /// Exposes the evaluator for tests and benchmarks of the link
  /// functions. The evaluator latches each class shard it consults, so
  /// calls are safe alongside running transactions (though not alongside
  /// a concurrent Restructure).
  const ActivityLinkEvaluator& evaluator() const { return *eval_; }
  const TstAnalysis& class_tst() const { return *tst_; }

  // ---------------------------------------------------------------------
  // Distribution hooks (src/dist/). A sharded deployment runs one
  // controller per node over the full schema; segments a node does not
  // own are stand-ins. These entry points let a remote peer read this
  // node's activity tables and version chains, and let a coordinator
  // two-phase a cross-node update commit through this node's WAL.
  // ---------------------------------------------------------------------

  /// Copies class `c`'s activity table, stable for evaluations at any
  /// v <= `frontier` (a clock reading the CALLER took before asking).
  /// Taken under the class's shard latch; never blocks on transactions.
  Result<ActivitySlice> ExportActivitySlice(ClassId c, Timestamp frontier);

  /// Copies the COMMITTED versions of one granule, under the owning
  /// class's shard latch. Uncommitted versions are withheld: a remote
  /// reader's bound can only pass I(W) once W's versions here are marked
  /// committed (the 2PC commit step runs before the home node's
  /// OnFinish), so withholding them never starves a legal bounded read.
  Result<std::vector<Version>> ExportVersions(SegmentId segment,
                                              std::uint32_t granule);

  /// Blocks until every WAL record appended so far is durable — in
  /// particular the commit records of every committed version a
  /// concurrent ExportVersions returned. The snapshot handler runs this
  /// before replying, extending the local acked-reads-are-durable ticket
  /// argument across nodes. No-op without a WAL.
  Status AwaitWalReadStable();

  /// Books a Protocol A read this node's txn performed against a REMOTE
  /// owner's shipped chain: bumps the unregistered-read metrics and
  /// records the (bound, version) pair with the history recorder so the
  /// merged-history oracle replays it.
  Status RecordExternalRead(const TxnDescriptor& txn, GranuleRef granule,
                            Timestamp version_key, Timestamp bound);

  /// 2PC participant, phase 1: installs `txn`'s shipped writes into the
  /// locally owned `segment` as uncommitted versions (order key
  /// `init_ts`), logging each plus a kPrepare marker, then awaits
  /// durability. Idempotent — a duplicated prepare re-acks without
  /// reinstalling. The transaction itself is registered at the
  /// COORDINATOR only; it never appears in this node's activity tables.
  Status PrepareExternal(SegmentId segment, TxnId txn, Timestamp init_ts,
                         const std::vector<std::pair<std::uint32_t, Value>>&
                             writes);

  /// 2PC participant, phase 2: marks `txn`'s versions in `segment`
  /// committed, logs the commit record and awaits durability. Idempotent.
  Status CommitExternal(SegmentId segment, TxnId txn, Timestamp init_ts);

  /// 2PC participant abort: removes `txn`'s uncommitted versions from
  /// `segment` (best-effort abort record). Idempotent.
  Status AbortExternal(SegmentId segment, TxnId txn, Timestamp init_ts);

  /// Coordinator, local half of phase 2: marks the transaction's LOCAL
  /// versions committed, logs commit records and awaits durability — but
  /// leaves the transaction registered and active, so no activity-link
  /// bound anywhere can pass I(t) yet. Pair with FinishDistributedCommit
  /// after every remote participant acked its CommitExternal.
  Status CommitDurablePhase(const TxnDescriptor& txn);

  /// Coordinator, final step: deregisters the transaction (OnFinish) and
  /// runs the commit bookkeeping. Only after this can a reader's bound
  /// pass I(t) — by which time every participant's versions are already
  /// committed, keeping remote bounded reads sound.
  Status FinishDistributedCommit(const TxnDescriptor& txn);

 private:
  /// Per-class concurrency-control state. `mu` guards the activity table,
  /// the draining flag AND the version chains of every segment currently
  /// owned by this class. `cv` wakes (a) Protocol B/C readers and writers
  /// blocked on an uncommitted version created by a transaction of this
  /// class, (b) Begins blocked on draining, and (c) a Restructure drain
  /// waiting for the class's active count to reach zero.
  ///
  /// Shards are held by shared_ptr so that a thread parked on `cv` across
  /// a Restructure (which may replace the shard) still owns the object it
  /// sleeps on; Restructure wakes such orphans after the swap and they
  /// re-resolve their class through the structure gate.
  struct ClassShard {
    std::mutex mu;
    std::condition_variable cv;
    ClassActivityTable table;
    bool draining = false;
  };

  /// ActivityTableSource over the shard vector: latches the owning shard
  /// around each I^old / C^late query (one shard at a time). Callers must
  /// hold the structure gate (shared suffices) so `shards_` is stable.
  class ShardTableSource : public ActivityTableSource {
   public:
    explicit ShardTableSource(const HddController* owner) : owner_(owner) {}
    Timestamp OldestActiveAt(ClassId c, Timestamp m) const override;
    Result<Timestamp> LatestEndAt(ClassId c, Timestamp m) const override;

   private:
    const HddController* owner_;
  };

  /// Shared per-epoch state: the anchor m_e and a lazily filled cache of
  /// activity-link bounds A_i^j(m_e), one slot per (own class, target
  /// class) pair. Slots start at kTimestampInfinity (impossible as a real
  /// bound, since A_i^j(m) <= m); the first reader of a pair evaluates
  /// and publishes, every later reader of the epoch loads. Concurrent
  /// fills race benignly: I^old values at or below the clock are stable,
  /// so every evaluator computes the identical value. Batch transactions
  /// hold the context by shared_ptr, so stragglers still running after
  /// the epoch closed keep their (still sound) anchor.
  struct EpochContext {
    EpochId id = 0;
    Timestamp anchor = kTimestampMin;
    int num_classes = 0;
    std::vector<std::atomic<Timestamp>> bounds;
  };

  struct TxnRuntime {
    TxnDescriptor descriptor;
    std::vector<GranuleRef> writes;  // touched only by the driving thread
    /// Granules read, accumulated like `writes` (driving thread only) and
    /// only when a FootprintRecorder is attached; published on commit.
    std::vector<GranuleRef> fp_reads;
    const TimeWall* wall = nullptr;  // Protocol C wall, fixed at first read
    /// For hosted read-only transactions (§5.0): the lowest class of the
    /// declared critical path; kReadOnlyClass when not hosted.
    ClassId hosted_below = kReadOnlyClass;
    /// Set iff the transaction was admitted by BeginBatch: Protocol A
    /// bounds come from the epoch's shared cache, and MVTO's
    /// younger-reader write check is delegated to the epoch executor's
    /// dependency graph.
    std::shared_ptr<EpochContext> epoch;
    /// Deferred per-operation metric counts (touched only by the driving
    /// thread, like `writes`), flushed into the shared counters once when
    /// the transaction finishes: one atomic per counter per transaction
    /// instead of one per read — measurable on the Protocol A fast path.
    std::uint32_t n_unregistered_reads = 0;
    std::uint32_t n_version_reads = 0;
    std::uint32_t n_read_timestamps = 0;
    std::uint32_t n_versions_created = 0;
    std::uint32_t n_epoch_bound_hits = 0;
    std::uint32_t n_epoch_bound_misses = 0;
  };

  /// Registry of in-flight transactions, striped by id so Begin/Commit of
  /// unrelated transactions do not contend. The unique_ptr keeps each
  /// runtime at a stable address across rehashes.
  static constexpr std::size_t kTxnStripes = 16;
  struct alignas(64) TxnStripe {
    std::mutex mu;
    std::unordered_map<TxnId, std::unique_ptr<TxnRuntime>> map;
  };

  TxnStripe& StripeFor(TxnId id) { return txn_stripes_[id % kTxnStripes]; }
  /// Looks up a runtime; the pointer stays valid until the driving thread
  /// finishes the transaction (single-driver contract).
  Result<TxnRuntime*> FindTxn(const TxnDescriptor& txn);
  /// Removes and returns the runtime (Commit/Abort claim ownership so a
  /// second finish observes FailedPrecondition).
  Result<std::unique_ptr<TxnRuntime>> ExtractTxn(const TxnDescriptor& txn);
  /// Publishes the runtime's deferred per-operation counts (see
  /// TxnRuntime) into the shared metric registry.
  void FlushOpMetrics(const TxnRuntime& runtime);
  /// Publishes the runtime's packed read/write granule sets to the
  /// attached FootprintRecorder (caller checked options_.footprint).
  void PublishFootprint(const TxnRuntime& runtime);

  /// Validates a read_scope declaration and returns the lowest class of
  /// the critical path it spans, or an error. Caller holds the structure
  /// gate.
  Result<ClassId> ResolveHostClass(const std::vector<SegmentId>& scope);

  /// Read paths. All take the caller's structure-gate lock so they can
  /// release it (and reacquire after) around any condition-variable wait.
  Result<Value> ReadOwnSegment(std::shared_lock<std::shared_mutex>& gate,
                               TxnRuntime* runtime, GranuleRef granule);
  Result<Value> ReadHigherSegment(TxnRuntime* runtime, GranuleRef granule,
                                  ClassId own_class, ClassId target_class);
  Result<Value> ReadHosted(TxnRuntime* runtime, GranuleRef granule);
  Result<Value> ReadUnderWall(std::shared_lock<std::shared_mutex>& gate,
                              TxnRuntime* runtime, GranuleRef granule);

  /// Computes and releases a wall; caller holds the structure gate
  /// (shared), which is released and reacquired around waits for a
  /// finish event while some C^late is not yet computable. When
  /// `pin_for` is non-null the new wall is pinned to that transaction in
  /// the same critical section that publishes it, so the GC horizon can
  /// never slip past it first.
  Result<const TimeWall*> ReleaseWallInternal(
      std::shared_lock<std::shared_mutex>& gate, TxnRuntime* pin_for);

  /// Minimum over bound components of a wall.
  static Timestamp WallMin(const TimeWall& wall);
  /// Caller holds the structure gate (shared) and wall_mu_; takes each
  /// class shard briefly.
  Timestamp ComputeSafeGcHorizon() const;
  /// Idle-point history trim; caller holds the structure gate (shared).
  void MaybeTrimHistory();
  /// Announces a finished update transaction to wall computations.
  void SignalFinishEvent();
  /// Serves A_{own}^{target}(anchor) from the epoch's shared cache,
  /// evaluating on first use. Falls back to an uncached evaluation at the
  /// epoch anchor when the class structure changed shape under the epoch
  /// (the straggler path). Caller holds the structure gate (shared).
  Result<Timestamp> EpochBound(EpochContext& ctx, ClassId own_class,
                               ClassId target_class, TxnRuntime* runtime);
  /// ExportControlState body; caller holds the structure gate (shared).
  std::string ExportControlStateLocked() const;

  HddControllerOptions options_;

  /// Durability hookup, cached from Database::wal() at construction;
  /// nullptr runs the controller without logging (the pre-WAL behaviour).
  WalManager* wal_ = nullptr;

  /// Structure gate: guards class_of_segment_, num_classes_, tst_, eval_
  /// and the shards_ vector (all swapped by Restructure), plus wall bound
  /// vectors' *shape*. Shared for every operation, exclusive only for the
  /// Restructure swap. Never held across a cv wait.
  mutable std::shared_mutex struct_mu_;
  std::vector<ClassId> class_of_segment_;
  int num_classes_ = 0;
  std::unique_ptr<TstAnalysis> tst_;
  std::vector<std::shared_ptr<ClassShard>> shards_;
  ShardTableSource shard_source_{this};
  std::unique_ptr<ActivityLinkEvaluator> eval_;

  /// Walls and their pins. walls_ is append-only (stable addresses);
  /// wall_pins_ maps a pinned wall to the number of read-only
  /// transactions currently reading under it. last_gc_horizon_ is the
  /// highest horizon ever passed to garbage collection; AS-OF
  /// transactions targeting walls below it are rejected (their versions
  /// may be gone). Note: collections issued directly on the Database
  /// bypass this guard.
  mutable std::mutex wall_mu_;
  std::deque<TimeWall> walls_;
  std::unordered_map<const TimeWall*, int> wall_pins_;
  Timestamp last_gc_horizon_ = kTimestampMin;

  std::array<TxnStripe, kTxnStripes> txn_stripes_;
  std::atomic<TxnId> next_txn_id_{1};

  /// All in-flight transactions (update + read-only). Incremented before
  /// the initiation tick, decremented after the finish bookkeeping; the
  /// idle-point trim re-checks it against a clock reading so any
  /// concurrent Begin is guaranteed a later initiation timestamp.
  std::atomic<std::int64_t> active_txns_{0};

  /// Wall computations in flight; the idle trim stands down while one is
  /// mid-retry so finished straddlers it may still stab stay available.
  std::atomic<int> wall_computing_{0};

  /// Finish-event channel: wall computations blocked on a not-yet
  /// computable C^late wait here for any update transaction to finish.
  std::atomic<std::uint64_t> finish_seq_{0};
  std::mutex finish_mu_;
  std::condition_variable finish_cv_;

  /// Serializes Restructure calls (drain + swap).
  std::mutex restructure_mu_;

  /// Current epoch (nullptr between epochs). Leaf mutex: taken by
  /// BeginEpoch/BeginBatch/EndEpoch and by the GC-horizon clamp; never
  /// held across a wait or a shard latch. Readers on the data path reach
  /// the context through their TxnRuntime's shared_ptr instead.
  mutable std::mutex epoch_mu_;
  std::shared_ptr<EpochContext> current_epoch_;
  std::atomic<EpochId> next_epoch_id_{1};
  /// True while a Restructure is past its epoch check (guarded by
  /// epoch_mu_). BeginEpoch returns Busy while set — the other half of
  /// the exclusion that lets epoch transactions skip the structure gate.
  bool restructuring_ = false;

  // §5.2 wall pacer.
  std::thread pacer_;
  std::atomic<bool> pacer_stop_{false};
  std::mutex pacer_mu_;
  std::condition_variable pacer_cv_;
};

}  // namespace hdd

#endif  // HDD_HDD_HDD_CONTROLLER_H_
