#ifndef HDD_HDD_HDD_CONTROLLER_H_
#define HDD_HDD_HDD_CONTROLLER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cc/controller.h"
#include "graph/dhg.h"
#include "hdd/activity.h"
#include "hdd/link_functions.h"
#include "hdd/time_wall.h"

namespace hdd {

/// Which protocol governs accesses inside a transaction's own root
/// segment (the paper's Protocol B allows either).
enum class ProtocolBEngine {
  kMvto,     // multi-version timestamp ordering [Reed 78]
  kBasicTo,  // basic timestamp ordering [Bernstein 80]
};

struct HddControllerOptions {
  ProtocolBEngine protocol_b = ProtocolBEngine::kMvto;

  /// Trim every class's finished-transaction history whenever the system
  /// reaches an idle point (no transaction of any kind in flight). At an
  /// idle point every future activity-link chain provably stays above the
  /// current clock, so records finished earlier can never be stabbed
  /// again: trimming is exact, not approximate.
  bool auto_trim_history = true;

  std::string name = "hdd";
};

/// The paper's contribution: concurrency control by Hierarchical Database
/// Decomposition.
///
///  * Protocol A (§4.2): an update transaction of class `i` reading a
///    granule of a *higher* segment `j` is served the latest version with
///    write timestamp below A_i^j(I(t)). The read leaves no lock and no
///    timestamp, never waits and never aborts.
///  * Protocol B (§4.2): accesses to the transaction's own root segment
///    use (multi-version) timestamp ordering; these reads are registered.
///  * Protocol C (§5.2): an ad-hoc read-only transaction reads, in every
///    segment, below the corresponding component of a released time wall;
///    it registers nothing and never invalidates an update transaction.
///
/// Classes start out 1:1 with the schema's segments; `Restructure`
/// (paper §7.1.1) merges classes at run time to legalize an ad-hoc access
/// pattern, draining only the affected classes first.
class HddController : public ConcurrencyController {
 public:
  /// The schema must be TST-hierarchical (enforced by HierarchySchema).
  HddController(Database* db, LogicalClock* clock,
                const HierarchySchema* schema,
                HddControllerOptions options = {});
  ~HddController() override;

  std::string_view name() const override { return options_.name; }

  Result<TxnDescriptor> Begin(const TxnOptions& options) override;
  Result<Value> Read(const TxnDescriptor& txn, GranuleRef granule) override;
  Status Write(const TxnDescriptor& txn, GranuleRef granule,
               Value value) override;
  Status Commit(const TxnDescriptor& txn) override;
  Status Abort(const TxnDescriptor& txn) override;

  /// Class currently owning a segment (identity until a Restructure).
  ClassId ClassOfSegment(SegmentId segment) const;

  /// Forces release of a fresh time wall anchored per PickWallAnchor at
  /// m = now. Blocks until computable. Also called lazily by the first
  /// read-only transaction that finds no released wall.
  Status ReleaseNewWall();

  /// §5.2's batched operation: starts a background pacer that releases a
  /// fresh wall every `interval` (releases are skipped while one is
  /// already computing). Idempotent restart with a new interval. The
  /// pacer stops on StopWallPacer() or destruction.
  void StartWallPacer(std::chrono::milliseconds interval);
  void StopWallPacer();

  /// Number of walls released so far.
  std::size_t num_walls() const;

  /// §7.1.1 dynamic restructuring: merges classes so that a transaction
  /// type writing `write_segments` while reading `read_segments` becomes
  /// legal, then returns the class that type must declare. Blocks until
  /// the classes being merged have no active transactions (partial
  /// quiescence — only affected classes drain; others keep running).
  Result<ClassId> Restructure(const std::vector<SegmentId>& write_segments,
                              const std::vector<SegmentId>& read_segments);

  /// A version-GC horizon currently safe for Database::CollectGarbage:
  /// below the initiation time of every active transaction and below every
  /// wall component still reachable by read-only transactions (§7.3).
  Timestamp SafeGcHorizon() const;

  /// §7.3 garbage collection, safe to call concurrently with running
  /// transactions: holds the controller's latch (which serializes all
  /// version-chain access) while pruning at the safe horizon. Returns the
  /// number of versions removed.
  std::size_t CollectGarbage();

  /// Total finished-history records across all class activity tables
  /// (observability for the trimming behaviour).
  std::size_t ActivityHistorySize() const;

  /// Exposes the evaluator for tests and benchmarks of the link functions.
  const ActivityLinkEvaluator& evaluator() const { return *eval_; }
  const TstAnalysis& class_tst() const { return *tst_; }

 private:
  struct TxnRuntime {
    TxnDescriptor descriptor;
    std::vector<GranuleRef> writes;
    const TimeWall* wall = nullptr;  // Protocol C wall, fixed at first read
    /// For hosted read-only transactions (§5.0): the lowest class of the
    /// declared critical path; kReadOnlyClass when not hosted.
    ClassId hosted_below = kReadOnlyClass;
  };

  Result<TxnRuntime*> FindTxn(const TxnDescriptor& txn);

  /// Validates a read_scope declaration and returns the lowest class of
  /// the critical path it spans, or an error.
  Result<ClassId> ResolveHostClass(const std::vector<SegmentId>& scope);

  Result<Value> ReadHosted(TxnRuntime* runtime, GranuleRef granule);

  Timestamp SafeGcHorizonLocked() const;
  void MaybeTrimHistoryLocked();

  /// Protocol B read/write under mu_.
  Result<Value> ReadOwnSegment(std::unique_lock<std::mutex>& lock,
                               TxnRuntime* runtime, GranuleRef granule);
  Result<Value> ReadHigherSegment(TxnRuntime* runtime, GranuleRef granule,
                                  ClassId own_class, ClassId target_class);
  Result<Value> ReadUnderWall(std::unique_lock<std::mutex>& lock,
                              TxnRuntime* runtime, GranuleRef granule);

  /// Computes and releases a wall; assumes lock held, may wait on cv_.
  Result<const TimeWall*> ReleaseWallLocked(
      std::unique_lock<std::mutex>& lock);

  HddControllerOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;

  // Class structure (mutable via Restructure).
  std::vector<ClassId> class_of_segment_;
  int num_classes_ = 0;
  std::unique_ptr<TstAnalysis> tst_;
  std::vector<ClassActivityTable> tables_;
  std::unique_ptr<ActivityLinkEvaluator> eval_;

  /// Classes currently draining for a Restructure; Begins targeting them
  /// wait so the drain cannot be starved by a stream of new transactions.
  std::vector<bool> draining_;

  std::deque<TimeWall> walls_;  // released walls, stable addresses
  /// Highest horizon ever passed to CollectGarbage; AS-OF transactions
  /// targeting walls below it are rejected (their versions may be gone).
  /// Note: collections issued directly on the Database bypass this guard.
  Timestamp last_gc_horizon_ = kTimestampMin;
  std::unordered_map<TxnId, TxnRuntime> txns_;
  TxnId next_txn_id_ = 1;

  // §5.2 wall pacer.
  std::thread pacer_;
  std::atomic<bool> pacer_stop_{false};
  std::mutex pacer_mu_;
  std::condition_variable pacer_cv_;
};

}  // namespace hdd

#endif  // HDD_HDD_HDD_CONTROLLER_H_
