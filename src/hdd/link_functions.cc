#include "hdd/link_functions.h"

#include <cassert>

namespace hdd {

ActivityLinkEvaluator::ActivityLinkEvaluator(const TstAnalysis* tst,
                                             const ActivityTableSource* source)
    : tst_(tst), source_(source), owned_vector_source_(nullptr) {}

ActivityLinkEvaluator::ActivityLinkEvaluator(
    const TstAnalysis* tst, const std::vector<ClassActivityTable>* tables)
    : tst_(tst), source_(&owned_vector_source_), owned_vector_source_(tables) {
  assert(static_cast<int>(tables->size()) == tst_->graph().num_nodes());
}

Result<Timestamp> ActivityLinkEvaluator::A(ClassId i, ClassId j,
                                           Timestamp m) const {
  auto path = tst_->CriticalPath(i, j);
  if (!path.has_value()) {
    return Status::InvalidArgument("no critical path for A");
  }
  Timestamp value = m;
  for (std::size_t k = 1; k < path->size(); ++k) {
    value = source_->OldestActiveAt((*path)[k], value);
  }
  return value;
}

Result<Timestamp> ActivityLinkEvaluator::B(ClassId j, ClassId i,
                                           Timestamp m) const {
  auto path = tst_->CriticalPath(i, j);  // directed i -> ... -> j
  if (!path.has_value()) {
    return Status::InvalidArgument("no critical path for B");
  }
  Timestamp value = m;
  // Apply C^late from the top class j down to — but excluding — the bottom
  // class i, pairing each C^late_k against the I^old_k that A applies:
  // that pairing is what makes Properties 2.1 (A(B(m)) >= m) and 2.2
  // (A(B(m)-e) < m) hold class by class.
  for (auto it = path->rbegin(); std::next(it) != path->rend(); ++it) {
    HDD_ASSIGN_OR_RETURN(value, source_->LatestEndAt(*it, value));
  }
  return value;
}

Result<Timestamp> ActivityLinkEvaluator::E(ClassId s, ClassId i,
                                           Timestamp m) const {
  auto ucp = tst_->Ucp(s, i);
  if (!ucp.has_value()) {
    return Status::InvalidArgument("classes in different components");
  }
  Timestamp value = m;
  std::size_t pos = 0;
  while (pos + 1 < ucp->size()) {
    const ClassId here = (*ucp)[pos];
    const ClassId next = (*ucp)[pos + 1];
    if (tst_->IsCriticalArc(here, next)) {
      // Ascending run: apply I^old at each class strictly above the run's
      // start, as A does.
      while (pos + 1 < ucp->size() &&
             tst_->IsCriticalArc((*ucp)[pos], (*ucp)[pos + 1])) {
        value = source_->OldestActiveAt((*ucp)[pos + 1], value);
        ++pos;
      }
    } else {
      assert(tst_->IsCriticalArc(next, here));
      // Descending run: apply C^late at every class from the run's top
      // down to — but excluding — the run's bottom, as B does.
      HDD_ASSIGN_OR_RETURN(value, source_->LatestEndAt(here, value));
      ++pos;  // now standing on the class below the run's top
      while (pos + 1 < ucp->size() &&
             tst_->IsCriticalArc((*ucp)[pos + 1], (*ucp)[pos])) {
        HDD_ASSIGN_OR_RETURN(value, source_->LatestEndAt((*ucp)[pos], value));
        ++pos;
      }
    }
  }
  return value;
}

}  // namespace hdd
