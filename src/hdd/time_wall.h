#ifndef HDD_HDD_TIME_WALL_H_
#define HDD_HDD_TIME_WALL_H_

#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "hdd/link_functions.h"

namespace hdd {

/// A released time wall TW(m, s) (paper §5.1/§5.2): one consistency bound
/// per class. A read-only transaction served under this wall reads, from
/// any granule of a segment owned by class c, the latest version with
/// write timestamp below `bound[c]`; Theorem 2 guarantees the resulting
/// state is consistent and introduces no dependency cycle.
struct TimeWall {
  Timestamp m = kTimestampMin;
  ClassId s = 0;
  std::vector<Timestamp> bound;  // indexed by class
  Timestamp release_time = kTimestampMin;
};

/// Computes a wall at time `m` anchored at class `s`: bound[i] = E_s^i(m).
/// Classes unreachable from s in the (weakly connected components of the)
/// THG get bound m — they share no transactions with s's component, so any
/// cut is consistent for them; m keeps the wall monotone.
/// Returns kBusy while some C^late on a descending run is not computable;
/// the caller should retry after the next transaction finishes.
Result<TimeWall> ComputeTimeWall(const ActivityLinkEvaluator& eval,
                                 int num_classes, ClassId s, Timestamp m);

/// Picks the anchor class the paper suggests ("one of the lowest levels"):
/// the class from which the most classes lie higher, so the maximum number
/// of wall components come from ascending (always-computable, never-stale)
/// runs. Ties break toward the smallest id.
ClassId PickWallAnchor(const TstAnalysis& tst);

}  // namespace hdd

#endif  // HDD_HDD_TIME_WALL_H_
