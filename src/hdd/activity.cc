#include "hdd/activity.h"

#include <algorithm>
#include <cassert>

namespace hdd {

void ClassActivityTable::OnBegin(Timestamp init) {
  const bool inserted = active_.insert(init).second;
  assert(inserted && "duplicate initiation timestamp");
  (void)inserted;
}

void ClassActivityTable::OnFinish(Timestamp init, Timestamp end) {
  assert(end > init);
  const std::size_t erased = active_.erase(init);
  assert(erased == 1 && "finishing a transaction that never began");
  (void)erased;
  finished_by_init_.emplace(init, end);
  finished_by_end_.emplace(end, init);
}

Timestamp ClassActivityTable::OldestActiveAt(Timestamp m) const {
  Timestamp best = m;
  // Currently active transactions that started before m.
  auto active_it = active_.begin();
  if (active_it != active_.end() && *active_it < m) {
    best = std::min(best, *active_it);
  }
  // Finished transactions that straddled m (I < m < end): only records
  // with end > m qualify, i.e. the suffix of the by-end index.
  for (auto it = finished_by_end_.upper_bound(m);
       it != finished_by_end_.end(); ++it) {
    if (it->second < best) best = it->second;
  }
  return best;
}

Result<Timestamp> ClassActivityTable::LatestEndAt(Timestamp m) const {
  if (!ComputableAt(m)) {
    return Status::Busy("C^late not computable: transaction active");
  }
  // Largest end among straddlers of m: walk ends descending and stop at
  // the first record that started before m — nothing below can beat it.
  for (auto it = finished_by_end_.rbegin(); it != finished_by_end_.rend();
       ++it) {
    if (it->first <= m) break;  // remaining ends are <= m: no straddlers
    if (it->second < m) return it->first;
  }
  return m;
}

bool ClassActivityTable::ComputableAt(Timestamp m) const {
  // Active set is ordered by I: computable iff no active I <= m.
  return active_.empty() || *active_.begin() > m;
}

Timestamp ClassActivityTable::OldestActiveNow() const {
  return active_.empty() ? kTimestampInfinity : *active_.begin();
}

void ClassActivityTable::MergeFrom(ClassActivityTable&& other) {
  active_.merge(other.active_);
  finished_by_init_.merge(other.finished_by_init_);
  finished_by_end_.merge(other.finished_by_end_);
  assert(other.active_.empty() && other.finished_by_init_.empty() &&
         "duplicate timestamps across merged classes");
}

void ClassActivityTable::TrimFinishedBefore(Timestamp ts) {
  auto end_of_prefix = finished_by_end_.upper_bound(ts);
  for (auto it = finished_by_end_.begin(); it != end_of_prefix; ++it) {
    finished_by_init_.erase(it->second);
  }
  finished_by_end_.erase(finished_by_end_.begin(), end_of_prefix);
}

}  // namespace hdd
