#include "hdd/time_wall.h"

namespace hdd {

Result<TimeWall> ComputeTimeWall(const ActivityLinkEvaluator& eval,
                                 int num_classes, ClassId s, Timestamp m) {
  TimeWall wall;
  wall.m = m;
  wall.s = s;
  wall.bound.resize(num_classes, m);
  for (ClassId c = 0; c < num_classes; ++c) {
    auto bound = eval.E(s, c, m);
    if (bound.ok()) {
      wall.bound[c] = *bound;
    } else if (bound.status().code() == StatusCode::kBusy) {
      return bound.status();
    } else {
      // Different weak component: keep the default m.
      wall.bound[c] = m;
    }
  }
  return wall;
}

ClassId PickWallAnchor(const TstAnalysis& tst) {
  const int n = tst.graph().num_nodes();
  ClassId best = 0;
  int best_above = -1;
  for (ClassId c = 0; c < n; ++c) {
    int above = 0;
    for (ClassId other = 0; other < n; ++other) {
      if (tst.Higher(other, c)) ++above;
    }
    if (above > best_above) {
      best_above = above;
      best = c;
    }
  }
  return best;
}

}  // namespace hdd
