#ifndef HDD_HDD_LINK_FUNCTIONS_H_
#define HDD_HDD_LINK_FUNCTIONS_H_

#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "graph/dhg.h"
#include "graph/semi_tree.h"
#include "hdd/activity.h"

namespace hdd {

/// Where the activity-link evaluator gets its per-class I^old / C^late
/// values from. The single-threaded tools read a plain table vector; the
/// sharded controller implements this by taking the owning class's latch
/// around each query, so an evaluation walking a critical path holds at
/// most ONE class latch at a time.
///
/// Per-query locking is sound because both functions are *stable*: for any
/// v at or below the clock, every transaction that could straddle v has
/// already initiated (initiation timestamps are issued monotonically), so
/// later begins/finishes never change I^old(v), and C^late(v) — once
/// computable — is fixed. A class-by-class evaluation therefore returns
/// the same value an atomic snapshot would.
class ActivityTableSource {
 public:
  virtual ~ActivityTableSource() = default;

  /// The paper's I^old_c(m).
  virtual Timestamp OldestActiveAt(ClassId c, Timestamp m) const = 0;

  /// The paper's C^late_c(m); kBusy when not yet computable.
  virtual Result<Timestamp> LatestEndAt(ClassId c, Timestamp m) const = 0;
};

/// Source over a plain table vector (no locking — single-threaded tools
/// and tests).
class VectorTableSource : public ActivityTableSource {
 public:
  explicit VectorTableSource(const std::vector<ClassActivityTable>* tables)
      : tables_(tables) {}

  Timestamp OldestActiveAt(ClassId c, Timestamp m) const override {
    return (*tables_)[c].OldestActiveAt(m);
  }
  Result<Timestamp> LatestEndAt(ClassId c, Timestamp m) const override {
    return (*tables_)[c].LatestEndAt(m);
  }

 private:
  const std::vector<ClassActivityTable>* tables_;
};

/// Evaluates the paper's activity-link machinery over a transaction
/// hierarchy graph (a TstAnalysis over class nodes) backed by one
/// activity history per class:
///
///  * A_i^j(m) (§4.1): walk the critical path i -> ... -> j upward,
///    applying I^old at every class above i. A_i^i(m) = m.
///  * B_j^i(m) (§5.1): walk the critical path downward from j to i,
///    applying C^late at every class from j through i *inclusive* — the
///    composition the proofs of Properties 2.1/2.2 expand
///    (B_j^1(m) = C_1(...C_n(C_j(m))...)).
///  * E_s^i(m) (§5.1): walk the undirected critical path from s to i,
///    decomposed into maximal ascending and descending runs; ascending
///    runs apply A, descending runs apply B. E_s^s(m) = m.
///
/// B and E can be temporarily not computable (kBusy) when a C^late stabs a
/// time with an unresolved transaction; callers retry after commits.
class ActivityLinkEvaluator {
 public:
  /// Neither pointer is owned; `source` must serve every class node of
  /// `tst`.
  ActivityLinkEvaluator(const TstAnalysis* tst,
                        const ActivityTableSource* source);

  /// Convenience for single-threaded use: wraps `tables` in an owned
  /// VectorTableSource. `tables` must have one entry per class node.
  ActivityLinkEvaluator(const TstAnalysis* tst,
                        const std::vector<ClassActivityTable>* tables);

  /// A_i^j(m). InvalidArgument when no critical path i -> j exists.
  Result<Timestamp> A(ClassId i, ClassId j, Timestamp m) const;

  /// B_j^i(m). InvalidArgument when no critical path i -> j exists;
  /// kBusy when a C^late along the descent is not yet computable.
  Result<Timestamp> B(ClassId j, ClassId i, Timestamp m) const;

  /// E_s^i(m). InvalidArgument when s and i are in different weak
  /// components of the THG; kBusy as for B.
  Result<Timestamp> E(ClassId s, ClassId i, Timestamp m) const;

 private:
  const TstAnalysis* tst_;
  const ActivityTableSource* source_;
  VectorTableSource owned_vector_source_;  // used by the vector constructor
};

}  // namespace hdd

#endif  // HDD_HDD_LINK_FUNCTIONS_H_
