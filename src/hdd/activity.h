#ifndef HDD_HDD_ACTIVITY_H_
#define HDD_HDD_ACTIVITY_H_

#include <map>
#include <set>

#include "common/clock.h"
#include "common/status.h"

namespace hdd {

/// Per-transaction-class activity history powering the paper's §4.1
/// functions:
///
///   I^old(m)  — initiation time of the oldest transaction of the class
///               active at time m (or m itself when none was active);
///   C^late(m) — latest finish time among transactions of the class active
///               at time m (or m itself), §5.1. "Computable at m0" iff no
///               transaction started at or before m still runs at m0.
///
/// A transaction is *active* at m when I(t) < m and end(t) > m; aborted
/// transactions count as active until their abort — treating them as
/// active only lowers I^old, which errs on the safe (older-version) side,
/// and their end bounds C^late exactly like a commit since either way the
/// transaction is resolved.
///
/// The table keeps the full (I, end) history: the activity-link functions
/// evaluate at historical times, and dropping a record that some future
/// evaluation could stab would make I^old err *high*, which is unsound.
/// `TrimFinishedBefore` lets the owner reclaim memory once it can bound
/// future query times.
class ClassActivityTable {
 public:
  ClassActivityTable() = default;

  /// Registers a transaction initiation. Initiation times are unique
  /// (issued by one logical clock).
  void OnBegin(Timestamp init);

  /// Registers the end (commit or abort) of a transaction.
  void OnFinish(Timestamp init, Timestamp end);

  /// The paper's I^old_T(m).
  Timestamp OldestActiveAt(Timestamp m) const;

  /// The paper's C^late_T(m). Fails with kBusy when not yet computable
  /// (some transaction with I <= m is still active).
  Result<Timestamp> LatestEndAt(Timestamp m) const;

  bool ComputableAt(Timestamp m) const;

  /// Initiation time of the oldest currently-active transaction, or
  /// kTimestampInfinity when the class is idle. (GC / trim hints.)
  Timestamp OldestActiveNow() const;

  std::size_t num_active() const { return active_.size(); }
  std::size_t history_size() const { return finished_by_init_.size(); }

  /// Initiation times of currently-active transactions, for exporting an
  /// activity slice to a remote node (src/dist/).
  const std::set<Timestamp>& active() const { return active_; }

  /// Finished records (I -> end), for control-state checkpointing: the
  /// restarted controller replays them through OnBegin/OnFinish so
  /// post-recovery wall computations see the pre-crash history.
  const std::map<Timestamp, Timestamp>& finished() const {
    return finished_by_init_;
  }

  /// Absorbs another class's history (dynamic restructuring, §7.1.1).
  /// Timestamps are globally unique, so the unions are disjoint.
  void MergeFrom(ClassActivityTable&& other);

  /// Drops finished records with end <= ts. Safe only when the caller can
  /// guarantee no future I^old/C^late evaluation at a time < ts — e.g.
  /// during a quiescent point, or with ts below every timestamp any
  /// in-flight activity-link chain can reach.
  void TrimFinishedBefore(Timestamp ts);

 private:
  std::set<Timestamp> active_;  // initiation times
  /// I -> end, the authoritative history.
  std::map<Timestamp, Timestamp> finished_by_init_;
  /// end -> I. Stabbing queries at time m only concern records with
  /// end > m; for the common case (m near the present) that suffix is
  /// tiny, so iterating by descending-from-recent end keeps I^old and
  /// C^late near O(log n) on live workloads regardless of history size.
  std::map<Timestamp, Timestamp> finished_by_end_;
};

}  // namespace hdd

#endif  // HDD_HDD_ACTIVITY_H_
