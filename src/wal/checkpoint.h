#ifndef HDD_WAL_CHECKPOINT_H_
#define HDD_WAL_CHECKPOINT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/status.h"
#include "storage/database.h"
#include "wal/wal_storage.h"

namespace hdd {

/// Fuzzy checkpointing. A checkpoint of segment S is the pair
///
///   (snapshot of S's version chains, S's redo-log end LSN)
///
/// captured in ONE critical section under S's shard latch — so the
/// snapshot is exactly the state produced by the log prefix up to that
/// LSN, and recovery restores the snapshot then replays only the suffix.
/// No global quiesce: each segment checkpoints independently while
/// transactions keep running in the others ("fuzzy" across segments,
/// sharp within one).
///
/// Checkpoints are appended as frames to an append-only per-segment
/// stream (SegmentCheckpointName); the LAST intact frame wins, so a crash
/// mid-checkpoint just falls back to the previous one. Control state
/// (walls, activity history, GC horizon — encoded by the controller) goes
/// to its own stream the same way.

/// One segment checkpoint: the chains blob plus the log position it covers.
struct SegmentCheckpoint {
  std::uint64_t log_end_lsn = 0;
  std::string chains;
};

/// Serializes every version chain of `segment`, committed and uncommitted
/// alike (replay of a later commit/abort record resolves the in-doubt
/// ones). Call under the shard latch that serializes installs.
std::string EncodeSegmentChains(const Segment& segment);

/// Restores chains encoded by EncodeSegmentChains into `segment`,
/// allocating granules as needed (the snapshot may cover granules
/// allocated after the database was constructed).
Status DecodeSegmentChainsInto(std::string_view blob, Segment* segment);

/// Appends `ckpt` to segment `s`'s checkpoint stream and syncs it.
Status AppendSegmentCheckpoint(WalStorage* storage, SegmentId s,
                               const SegmentCheckpoint& ckpt);

/// Loads the newest intact checkpoint of segment `s`; nullopt when the
/// stream is empty (never checkpointed). A torn tail falls back to the
/// previous intact frame; a corrupt intact frame fails loudly.
Result<std::optional<SegmentCheckpoint>> LoadSegmentCheckpoint(
    WalStorage* storage, SegmentId s);

/// Same pair of operations for the controller's opaque control-state blob.
Status AppendControlCheckpoint(WalStorage* storage,
                               std::string_view control_state);
Result<std::optional<std::string>> LoadControlCheckpoint(WalStorage* storage);

}  // namespace hdd

#endif  // HDD_WAL_CHECKPOINT_H_
