#ifndef HDD_WAL_GROUP_COMMIT_H_
#define HDD_WAL_GROUP_COMMIT_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>

#include "common/metrics.h"
#include "common/status.h"

namespace hdd {

/// How commits reach the disk.
enum class WalSyncMode {
  /// Never fsync (bench baseline / tests): commits ack immediately and a
  /// crash may lose them. No durability claim.
  kNone,
  /// Group commit: the first waiting commit becomes the LEADER, briefly
  /// waits for followers to pile in (flush interval / byte threshold),
  /// fsyncs every dirty log once, and publishes the covered ticket; the
  /// followers ride its single fsync.
  kGroupCommit,
  /// One fsync per commit (the classical, slow, baseline).
  kPerCommit,
};

/// Outcome of one sync batch: everything with an append ticket at or
/// below `stable_ticket` is durable; `commits_covered` feeds the
/// batch-size histogram.
struct SyncBatch {
  std::uint64_t stable_ticket = 0;
  std::uint64_t commits_covered = 0;
};

/// The group-commit gate. Deliberately NOT a daemon thread: a background
/// flusher would be invisible to the deterministic scheduler, so the
/// leader role instead rotates among the committing transactions
/// themselves (leader/follower group commit), and the flush-interval wait
/// is a SimSleep — one more deterministic reschedule under simulation.
class GroupCommit {
 public:
  struct Params {
    WalSyncMode mode = WalSyncMode::kGroupCommit;
    /// Leader skips its pile-in pause once this many unsynced bytes wait.
    std::uint64_t flush_bytes = 64 * 1024;
    std::chrono::microseconds flush_interval{100};
  };

  GroupCommit(Params params, WalMetrics* metrics)
      : params_(params), metrics_(metrics) {}

  GroupCommit(const GroupCommit&) = delete;
  GroupCommit& operator=(const GroupCommit&) = delete;

  /// Blocks until every append with a ticket at or below `ticket` is
  /// durable. `sync_all` captures the global append ticket and fsyncs
  /// every dirty log (called with no GroupCommit lock held);
  /// `pending_bytes` reports currently-unsynced bytes for the byte
  /// threshold. A storage failure is sticky: the WAL refuses further
  /// durability claims rather than guess what made it to disk.
  Status AwaitDurable(std::uint64_t ticket,
                      const std::function<Result<SyncBatch>()>& sync_all,
                      const std::function<std::uint64_t()>& pending_bytes);

  /// Highest ticket known durable.
  std::uint64_t stable_ticket() const;

 private:
  const Params params_;
  WalMetrics* metrics_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t stable_ = 0;
  bool leader_active_ = false;
  Status error_ = Status::OK();  // sticky first storage failure

  /// Serializes kPerCommit syncs.
  std::mutex per_commit_mu_;
};

}  // namespace hdd

#endif  // HDD_WAL_GROUP_COMMIT_H_
