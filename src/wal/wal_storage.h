#ifndef HDD_WAL_WAL_STORAGE_H_
#define HDD_WAL_WAL_STORAGE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace hdd {

/// Byte-level persistence behind the WAL: a namespace of append-only files
/// ("seg-3.log", "seg-3.ckpt", "ctrl.ckpt") with an explicit sync barrier.
/// The contract mirrors a POSIX file plus page cache:
///
///  * `Append` buffers bytes at the end of the file; they are READABLE
///    immediately (the running process sees its own writes) but not
///    durable.
///  * `Sync` makes everything appended so far survive a crash.
///  * A crash keeps every synced byte and an arbitrary PREFIX of the
///    unsynced tail — possibly cutting the last buffered record in half
///    (the torn tail recovery must detect). Loss is prefix-shaped because
///    the log is a single sequentially-appended file; reordered page
///    writeback within one file's tail is out of scope (see
///    docs/TUTORIAL.md §8).
class WalStorage {
 public:
  virtual ~WalStorage() = default;

  /// Entire current contents ("" when the file does not exist yet).
  virtual Result<std::string> Read(const std::string& name) = 0;

  /// Current size in bytes (0 when absent). The append position a fresh
  /// SegmentLog opens at.
  virtual Result<std::uint64_t> Size(const std::string& name) = 0;

  virtual Status Append(const std::string& name, std::string_view data) = 0;

  virtual Status Sync(const std::string& name) = 0;

  /// Drops everything past `size` (recovery chops the torn tail so new
  /// appends continue from a clean frame boundary).
  virtual Status Truncate(const std::string& name, std::uint64_t size) = 0;
};

/// In-memory WalStorage for tests and the deterministic simulator: each
/// file is a synced prefix plus a buffered tail, and `Crash` applies the
/// documented loss model with seeded randomness — the "SimDisk" the sim
/// harness kills at yield points.
class SimWalStorage : public WalStorage {
 public:
  SimWalStorage() = default;

  Result<std::string> Read(const std::string& name) override;
  Result<std::uint64_t> Size(const std::string& name) override;
  Status Append(const std::string& name, std::string_view data) override;
  Status Sync(const std::string& name) override;
  Status Truncate(const std::string& name, std::uint64_t size) override;

  /// Simulates the machine dying: for every file, the synced prefix
  /// survives, a seeded-random prefix of the buffered tail survives (byte
  /// granularity, so the last surviving frame may be torn), and the rest
  /// is gone. What remains is marked synced — it is what a reopening
  /// process would find on disk.
  void Crash(Rng& rng);

  /// Total unsynced bytes across files (observability for tests).
  std::uint64_t BufferedBytes() const;

  /// Makes the next `count` Sync calls fail with kIoError (error-path
  /// coverage in unit tests).
  void FailNextSyncs(int count);

 private:
  struct File {
    std::string durable;   // survives Crash
    std::string buffered;  // appended but not synced
  };

  mutable std::mutex mu_;
  std::map<std::string, File> files_;
  int fail_syncs_ = 0;
};

/// POSIX-file WalStorage rooted at a directory (created on demand). Sync
/// is fdatasync; a kill -9 leaves whatever the OS flushed, which is the
/// crash model the on-disk smoke test exercises.
class FileWalStorage : public WalStorage {
 public:
  explicit FileWalStorage(std::string dir);
  ~FileWalStorage() override;

  FileWalStorage(const FileWalStorage&) = delete;
  FileWalStorage& operator=(const FileWalStorage&) = delete;

  Result<std::string> Read(const std::string& name) override;
  Result<std::uint64_t> Size(const std::string& name) override;
  Status Append(const std::string& name, std::string_view data) override;
  Status Sync(const std::string& name) override;
  Status Truncate(const std::string& name, std::uint64_t size) override;

  const std::string& dir() const { return dir_; }

 private:
  Result<int> Fd(const std::string& name);

  std::string dir_;
  std::mutex mu_;
  std::map<std::string, int> fds_;
};

}  // namespace hdd

#endif  // HDD_WAL_WAL_STORAGE_H_
