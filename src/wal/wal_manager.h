#ifndef HDD_WAL_WAL_MANAGER_H_
#define HDD_WAL_WAL_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "storage/version.h"
#include "wal/group_commit.h"
#include "wal/segment_log.h"
#include "wal/wal_storage.h"

namespace hdd {

/// File names inside a WalStorage namespace.
std::string SegmentLogName(SegmentId segment);
std::string SegmentCheckpointName(SegmentId segment);
inline constexpr const char kControlCheckpointName[] = "ctrl.ckpt";

struct WalOptions {
  GroupCommit::Params group;

  /// First ticket issued is initial_ticket + 1. After recovery, pass
  /// RecoveryReport::frontier_ticket so the reopened WAL continues the
  /// dense global ticket sequence (recovery truncated every record past
  /// the frontier, so no on-disk ticket exceeds it).
  std::uint64_t initial_ticket = 0;

  /// TEST-ONLY mutation switch, the durability canary of the sim harness:
  /// commit records are appended but NEVER awaited (no fsync before the
  /// ack), so a crash can lose acknowledged commits. The crash-recovery
  /// sweep must catch this with a replayable seed — a harness that cannot
  /// detect the mutation is broken.
  bool mutation_skip_commit_sync = false;
};

/// The durability facade the controller talks to: one redo SegmentLog per
/// segment behind a single global commit gate.
///
/// ## Ticket discipline (why one global gate, not one per segment)
///
/// Every append draws a global, monotonically increasing *ticket* inside
/// its log's append critical section, and the ticket is written into the
/// record on disk. A sync batch captures the current ticket and then
/// fsyncs every dirty log (each fsync serializes with in-flight appends
/// through the same per-log lock), so every record ticketed at or below
/// the capture is durable afterwards — across ALL segments. Acking commit
/// T therefore implies durability of every record T causally depends on:
/// any version T read was marked committed (atomically, under the same
/// shard latch, with its commit record's append) before T's read, hence
/// before T's own commit ticket. Per-segment stability points would not
/// give that: T's cross-segment Protocol A reads would race the other
/// segment's fsync.
///
/// The on-disk tickets are what recovery's *frontier* is computed from:
/// only records whose ticket has no missing predecessor anywhere are
/// honored, so a record that survives a crash by luck while something it
/// causally depends on (possibly in another file) was lost is rolled back
/// (see WalRecord::ticket and recovery.h).
///
/// ## Ordering
///
/// Callers append write/commit/abort records under the SAME shard latch
/// that installs/commits/removes the version, so each segment log's
/// record order equals the in-memory effect order, and "record durable"
/// implies "effect happened". Replay in log order therefore reconstructs
/// the chains exactly (recovery.h).
class WalManager {
 public:
  static Result<std::unique_ptr<WalManager>> Open(WalStorage* storage,
                                                  int num_segments,
                                                  WalOptions options = {});

  WalManager(const WalManager&) = delete;
  WalManager& operator=(const WalManager&) = delete;

  /// Append hooks — call under the shard latch that serializes version
  /// installs for `segment`. Each returns the record's global ticket.
  Result<std::uint64_t> LogWrite(SegmentId segment, TxnId txn,
                                 Timestamp init_ts, std::uint32_t granule,
                                 Value value);
  /// `written_segments` lists every segment the transaction wrote; a copy
  /// of the commit record (carrying the full list, for diagnostics) goes
  /// to each, so any single segment's log replays to a complete picture of
  /// its own versions. Cross-file atomicity comes from the ticket
  /// frontier, not the copies: recovery honors a commit only when nothing
  /// ticketed before it was lost anywhere (see WalRecord::ticket).
  Result<std::uint64_t> LogCommit(SegmentId segment, TxnId txn,
                                  Timestamp init_ts,
                                  const std::vector<SegmentId>& written_segments);
  Result<std::uint64_t> LogAbort(SegmentId segment, TxnId txn,
                                 Timestamp init_ts);

  /// 2PC participant marker (see WalRecordType::kPrepare): append after
  /// every shipped write of `txn` for `segment` is logged, then await the
  /// returned ticket before acking the prepare.
  Result<std::uint64_t> LogPrepare(SegmentId segment, TxnId txn,
                                   Timestamp init_ts);

  /// Clock marker for read-only commits (see WalRecordType::kReadBound):
  /// records `now` so recovery never rewinds the clock below an acked
  /// reader's bound. Lands in segment 0's log; call before AwaitReadStable.
  Result<std::uint64_t> LogReadBound(Timestamp now);

  /// Commit-wait: blocks (leader/follower group commit) until `ticket` is
  /// durable. Call with NO latches held. Returns immediately under
  /// WalSyncMode::kNone and under the canary mutation.
  Status WaitDurable(std::uint64_t ticket);

  /// Read barrier for read-only transactions: waits until everything
  /// appended so far is durable. A read-only transaction acked after this
  /// barrier can only have observed committed versions whose commit
  /// records are on disk — results handed to the outside world never
  /// evaporate in a crash.
  Status AwaitReadStable();

  /// Current global append ticket (grows with every record).
  std::uint64_t CurrentTicket() const {
    return append_ticket_.load(std::memory_order_acquire);
  }

  /// End LSN of one segment's redo log; call under that segment's shard
  /// latch to capture a checkpoint position consistent with the chains.
  std::uint64_t LogEndLsn(SegmentId segment) const;

  int num_segments() const { return static_cast<int>(logs_.size()); }
  WalStorage& storage() { return *storage_; }
  const WalOptions& options() const { return options_; }
  WalMetrics& metrics() { return metrics_; }
  const WalMetrics& metrics() const { return metrics_; }

 private:
  WalManager(WalStorage* storage, WalOptions options);

  Result<std::uint64_t> AppendRecord(SegmentId segment,
                                     const WalRecord& record);
  Result<SyncBatch> SyncAll();
  std::uint64_t PendingBytes() const;

  WalStorage* storage_;
  WalOptions options_;
  WalMetrics metrics_;
  std::vector<SegmentLog> logs_;
  std::atomic<std::uint64_t> append_ticket_{0};
  std::atomic<std::uint64_t> pending_commits_{0};
  GroupCommit gate_;
};

}  // namespace hdd

#endif  // HDD_WAL_WAL_MANAGER_H_
