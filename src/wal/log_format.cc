#include "wal/log_format.h"

#include <array>

namespace hdd {

namespace {

std::array<std::uint32_t, 256> BuildCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

std::uint32_t Crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = BuildCrcTable();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    crc = (crc >> 8) ^ table[(crc ^ byte) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

void PutU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void PutU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

bool GetU32(std::string_view* data, std::uint32_t* v) {
  if (data->size() < 4) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<std::uint32_t>(
              static_cast<unsigned char>((*data)[static_cast<std::size_t>(i)]))
          << (8 * i);
  }
  data->remove_prefix(4);
  return true;
}

bool GetU64(std::string_view* data, std::uint64_t* v) {
  if (data->size() < 8) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<std::uint64_t>(
              static_cast<unsigned char>((*data)[static_cast<std::size_t>(i)]))
          << (8 * i);
  }
  data->remove_prefix(8);
  return true;
}

void AppendFrame(std::string* out, std::string_view payload) {
  PutU32(out, static_cast<std::uint32_t>(payload.size()));
  PutU32(out, Crc32(payload));
  out->append(payload);
}

Result<ScanResult> ScanFrames(std::string_view data) {
  ScanResult result;
  std::uint64_t offset = 0;
  while (offset < data.size()) {
    std::string_view rest = data.substr(offset);
    if (rest.size() < kFrameHeaderBytes) break;  // torn header
    std::uint32_t length = 0;
    std::uint32_t crc = 0;
    GetU32(&rest, &length);
    GetU32(&rest, &crc);
    if (length == 0 || length > kMaxFramePayload) {
      // The header is fully present and cannot be a real frame. A torn
      // tail can produce garbage length bytes, but only when the payload
      // bytes are ALSO missing; if enough bytes follow to be a payload of
      // some plausible record, guessing would risk replaying garbage —
      // refuse either way. (Zero-length frames are never written.)
      return Status::Corruption("invalid frame length " +
                                std::to_string(length) + " at offset " +
                                std::to_string(offset));
    }
    if (rest.size() < length) break;  // torn payload
    const std::string_view payload = rest.substr(0, length);
    if (Crc32(payload) != crc) {
      return Status::Corruption("frame CRC mismatch at offset " +
                                std::to_string(offset));
    }
    offset += kFrameHeaderBytes + length;
    result.frames.push_back(ScannedFrame{payload, offset});
  }
  result.valid_end = offset;
  result.torn_tail = offset < data.size();
  return result;
}

std::string EncodeWalRecord(const WalRecord& record) {
  std::string out;
  out.push_back(static_cast<char>(record.type));
  PutU64(&out, record.ticket);
  PutU64(&out, record.txn);
  PutU64(&out, record.init_ts);
  switch (record.type) {
    case WalRecordType::kWrite:
      PutU32(&out, record.granule);
      PutU64(&out, static_cast<std::uint64_t>(record.value));
      break;
    case WalRecordType::kCommit:
      PutU32(&out, static_cast<std::uint32_t>(record.segments.size()));
      for (const SegmentId s : record.segments) {
        PutU32(&out, static_cast<std::uint32_t>(s));
      }
      break;
    case WalRecordType::kAbort:
    case WalRecordType::kReadBound:
    case WalRecordType::kPrepare:
      break;
    case WalRecordType::kSegmentCheckpoint:
    case WalRecordType::kControlCheckpoint:
      out.append(record.blob);
      break;
  }
  return out;
}

Result<WalRecord> DecodeWalRecord(std::string_view payload) {
  if (payload.empty()) return Status::Corruption("empty WAL record");
  WalRecord record;
  const auto type = static_cast<std::uint8_t>(payload[0]);
  payload.remove_prefix(1);
  if (type < static_cast<std::uint8_t>(WalRecordType::kWrite) ||
      type > static_cast<std::uint8_t>(WalRecordType::kPrepare)) {
    return Status::Corruption("unknown WAL record type " +
                              std::to_string(type));
  }
  record.type = static_cast<WalRecordType>(type);
  if (!GetU64(&payload, &record.ticket) || !GetU64(&payload, &record.txn) ||
      !GetU64(&payload, &record.init_ts)) {
    return Status::Corruption("truncated WAL record header");
  }
  switch (record.type) {
    case WalRecordType::kWrite: {
      std::uint64_t value = 0;
      if (!GetU32(&payload, &record.granule) || !GetU64(&payload, &value)) {
        return Status::Corruption("truncated write record");
      }
      record.value = static_cast<Value>(value);
      break;
    }
    case WalRecordType::kCommit: {
      std::uint32_t count = 0;
      if (!GetU32(&payload, &count) || payload.size() < 4ull * count) {
        return Status::Corruption("truncated commit segment list");
      }
      record.segments.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        std::uint32_t s = 0;
        GetU32(&payload, &s);
        record.segments.push_back(static_cast<SegmentId>(s));
      }
      break;
    }
    case WalRecordType::kAbort:
    case WalRecordType::kReadBound:
    case WalRecordType::kPrepare:
      break;
    case WalRecordType::kSegmentCheckpoint:
    case WalRecordType::kControlCheckpoint:
      record.blob.assign(payload);
      break;
  }
  return record;
}

}  // namespace hdd
