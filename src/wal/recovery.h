#ifndef HDD_WAL_RECOVERY_H_
#define HDD_WAL_RECOVERY_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "storage/database.h"
#include "wal/wal_storage.h"

namespace hdd {

/// What crash recovery reconstructed and what the restarting controller
/// must do with it.
struct RecoveryReport {
  /// Transactions whose commit records survived in every log they wrote
  /// to — exactly the set whose effects the recovered database contains.
  /// Every commit ACKED before the crash is in here (that is the
  /// durability contract the sim sweep checks); unacked commits may or
  /// may not be, either answer is consistent.
  std::set<TxnId> durable_commits;

  /// Redo records replayed past the checkpoints.
  std::uint64_t replayed_records = 0;
  /// Versions dropped because their transaction never durably committed.
  std::uint64_t discarded_uncommitted = 0;
  /// Commit records discarded because they sat past the ticket frontier —
  /// the crash lost some record they may causally depend on (possibly in
  /// another segment's file), so they cannot have been acked.
  std::uint64_t incomplete_commits = 0;
  /// Streams (logs and checkpoint streams) whose torn tails were truncated.
  std::uint64_t torn_streams = 0;

  /// The ticket frontier F: the largest global append ticket with every
  /// smaller ticket present among the surviving records (tickets are
  /// issued densely across all logs; see WalRecord::ticket). Only records
  /// at or below F were honored, and every record past F was physically
  /// truncated — pass this as WalOptions::initial_ticket when reopening
  /// the WAL so the ticket sequence continues densely.
  std::uint64_t frontier_ticket = 0;

  /// Largest timestamp seen in any record, version, or read-bound marker.
  /// The restarting clock MUST advance past it (LogicalClock::AdvanceTo)
  /// or order keys would collide and acked readers' bounds would be
  /// undercut.
  Timestamp max_timestamp = kTimestampMin;

  /// Newest durable control-state blob (opaque to the WAL; the controller
  /// encodes walls, activity history and the GC horizon). Empty when no
  /// control checkpoint was ever taken.
  std::string control_state;

  /// Two-phase-commit residue (src/dist/): transactions whose kPrepare
  /// marker survived here but whose commit/abort verdict did not — the
  /// decision lives in the COORDINATOR's log (the transaction's home
  /// node). Their writes are NOT in the recovered database; they are kept
  /// aside in `prepared_writes` so the distributed restart can re-install
  /// them once the coordinator's durable_commits says committed, or drop
  /// them for good otherwise.
  std::set<TxnId> prepared;
  struct PreparedWrite {
    TxnId txn = kInvalidTxn;
    SegmentId segment = 0;
    std::uint32_t granule = 0;
    Timestamp init_ts = kTimestampMin;
    Value value = 0;
  };
  std::vector<PreparedWrite> prepared_writes;
};

/// Rebuilds `db` (freshly constructed, same shape as before the crash)
/// from the WAL in `storage`:
///
///   1. per segment: restore the newest intact checkpoint, then replay
///      the redo-log suffix past its LSN in log order — installs exactly
///      the pre-crash chain, because records were appended under the same
///      shard latch as their in-memory effect;
///   2. truncate every torn tail (crash mid-append) and sync, so future
///      appends start at a frame boundary;
///   3. compute the global ticket frontier and truncate every record past
///      it — a record is honored only if nothing ticketed before it, in
///      ANY log, was lost, so a commit surviving "by luck" in one file
///      while a record it read from in another file vanished is rolled
///      back instead of resurrected (committed-prefix semantics);
///   4. commit transactions evidenced by an honored commit record or a
///      committed version in a durable snapshot; discard every remaining
///      version of other transactions.
///
/// Torn tails are expected and silent; an intact frame with a CRC
/// mismatch is kCorruption and fails recovery loudly. Running recovery
/// twice (even over the same Database object) is idempotent.
Result<RecoveryReport> RecoverDatabase(WalStorage* storage, Database* db,
                                       WalMetrics* metrics = nullptr);

}  // namespace hdd

#endif  // HDD_WAL_RECOVERY_H_
