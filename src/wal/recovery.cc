#include "wal/recovery.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>
#include <utility>
#include <vector>

#include "wal/checkpoint.h"
#include "wal/log_format.h"
#include "wal/wal_manager.h"

namespace hdd {

namespace {

/// Drops a stream's torn tail (crash mid-append) so post-recovery appends
/// start at a frame boundary instead of burying garbage mid-log.
Status TruncateTornTail(WalStorage* storage, const std::string& name,
                        const ScanResult& scan, RecoveryReport* report) {
  if (!scan.torn_tail) return Status::OK();
  HDD_RETURN_IF_ERROR(storage->Truncate(name, scan.valid_end));
  HDD_RETURN_IF_ERROR(storage->Sync(name));
  ++report->torn_streams;
  return Status::OK();
}

/// One surviving, decoded redo record with its position in its log.
struct LoggedRecord {
  WalRecord record;
  std::uint64_t begin_offset = 0;
  std::uint64_t end_offset = 0;
};

}  // namespace

Result<RecoveryReport> RecoverDatabase(WalStorage* storage, Database* db,
                                       WalMetrics* metrics) {
  const auto started = std::chrono::steady_clock::now();
  RecoveryReport report;

  // Pass 1, per segment: restore the newest intact checkpoint (committed
  // creators in a durable snapshot are durably committed — the checkpoint
  // hardened every log before persisting the snapshot, so their commit
  // records are on disk too), then scan the whole redo log, truncating
  // torn tails. All surviving records are decoded now because the ticket
  // frontier below is computed over every log at once.
  std::vector<std::uint64_t> start_lsns(
      static_cast<std::size_t>(db->num_segments()), 0);
  std::vector<std::vector<LoggedRecord>> logs(
      static_cast<std::size_t>(db->num_segments()));
  std::unordered_set<std::uint64_t> tickets;
  std::uint64_t max_ticket = 0;
  for (SegmentId s = 0; s < db->num_segments(); ++s) {
    Segment& segment = db->segment(s);

    const std::string ckpt_name = SegmentCheckpointName(s);
    {
      HDD_ASSIGN_OR_RETURN(const std::string data, storage->Read(ckpt_name));
      HDD_ASSIGN_OR_RETURN(const ScanResult scan, ScanFrames(data));
      HDD_RETURN_IF_ERROR(TruncateTornTail(storage, ckpt_name, scan, &report));
    }
    HDD_ASSIGN_OR_RETURN(std::optional<SegmentCheckpoint> ckpt,
                         LoadSegmentCheckpoint(storage, s));
    if (ckpt.has_value()) {
      HDD_RETURN_IF_ERROR(DecodeSegmentChainsInto(ckpt->chains, &segment));
      start_lsns[static_cast<std::size_t>(s)] = ckpt->log_end_lsn;
      for (std::uint32_t i = 0; i < segment.size(); ++i) {
        for (const Version& v : segment.granule(i).versions()) {
          if (v.committed && v.creator != kInvalidTxn) {
            report.durable_commits.insert(v.creator);
          }
        }
      }
    }

    const std::string log_name = SegmentLogName(s);
    HDD_ASSIGN_OR_RETURN(const std::string data, storage->Read(log_name));
    HDD_ASSIGN_OR_RETURN(const ScanResult scan, ScanFrames(data));
    HDD_RETURN_IF_ERROR(TruncateTornTail(storage, log_name, scan, &report));
    std::uint64_t begin = 0;
    for (const ScannedFrame& frame : scan.frames) {
      HDD_ASSIGN_OR_RETURN(const WalRecord record,
                           DecodeWalRecord(frame.payload));
      if (record.type == WalRecordType::kSegmentCheckpoint ||
          record.type == WalRecordType::kControlCheckpoint) {
        return Status::Corruption("checkpoint record inside a redo log");
      }
      tickets.insert(record.ticket);
      max_ticket = std::max(max_ticket, record.ticket);
      logs[static_cast<std::size_t>(s)].push_back(
          LoggedRecord{record, begin, frame.end_offset});
      begin = frame.end_offset;
    }
  }

  // The ticket frontier F: tickets are issued densely (1, 2, 3, ...)
  // across all logs, so the first missing ticket marks the first lost
  // record; everything past it may causally depend on the loss and is
  // rolled back wholesale. Any commit acked before the crash sits at or
  // below F, because its ack's fsync batch covered every smaller ticket
  // in every log. Since tickets increase within each log, the dishonored
  // records form a suffix of each file — physically truncate them so the
  // on-disk ticket sequence stays dense for the next incarnation (and the
  // next crash's frontier).
  std::uint64_t frontier = 0;
  while (tickets.count(frontier + 1) > 0) ++frontier;
  report.frontier_ticket = frontier;
  for (SegmentId s = 0; s < db->num_segments(); ++s) {
    auto& records = logs[static_cast<std::size_t>(s)];
    auto first_past = records.end();
    for (auto it = records.begin(); it != records.end(); ++it) {
      if (it->record.ticket > frontier) {
        first_past = it;
        break;
      }
    }
    if (first_past == records.end()) continue;
    HDD_RETURN_IF_ERROR(
        storage->Truncate(SegmentLogName(s), first_past->begin_offset));
    HDD_RETURN_IF_ERROR(storage->Sync(SegmentLogName(s)));
    for (auto it = first_past; it != records.end(); ++it) {
      if (it->record.type == WalRecordType::kCommit) {
        ++report.incomplete_commits;
      }
    }
    records.erase(first_past, records.end());
  }

  // Pass 2, per segment: replay the honored suffix past the checkpoint in
  // log order. Log order equals effect order (records are appended under
  // the shard latch that installs the version), so this reconstructs the
  // pre-crash chains exactly.
  for (SegmentId s = 0; s < db->num_segments(); ++s) {
    Segment& segment = db->segment(s);
    const std::uint64_t start_lsn = start_lsns[static_cast<std::size_t>(s)];
    for (const LoggedRecord& logged : logs[static_cast<std::size_t>(s)]) {
      const WalRecord& record = logged.record;
      report.max_timestamp = std::max(report.max_timestamp, record.init_ts);
      // A frame wholly covered by the checkpoint ends at or before its
      // LSN (the LSN was captured at a frame boundary under the latch).
      if (logged.end_offset <= start_lsn) continue;
      ++report.replayed_records;
      switch (record.type) {
        case WalRecordType::kWrite: {
          while (segment.size() <= record.granule) segment.Allocate(0);
          Granule& g = segment.granule(record.granule);
          if (Version* existing = g.Find(record.init_ts)) {
            if (existing->creator != record.txn) {
              return Status::Corruption(
                  "replay: order key " + std::to_string(record.init_ts) +
                  " owned by two transactions");
            }
            existing->value = record.value;  // snapshot already had it
          } else {
            Version v;
            v.order_key = record.init_ts;
            v.wts = record.init_ts;
            v.creator = record.txn;
            v.value = record.value;
            v.committed = false;
            HDD_RETURN_IF_ERROR(g.Insert(v));
          }
          break;
        }
        case WalRecordType::kCommit:
          // At or below the frontier, so every record it causally depends
          // on — its own writes included — also survived and is honored.
          report.durable_commits.insert(record.txn);
          break;
        case WalRecordType::kAbort: {
          for (std::uint32_t i = 0; i < segment.size(); ++i) {
            Granule& g = segment.granule(i);
            const Version* v = g.Find(record.init_ts);
            if (v != nullptr && v->creator == record.txn) {
              HDD_RETURN_IF_ERROR(g.Remove(record.init_ts));
            }
          }
          report.prepared.erase(record.txn);
          break;
        }
        case WalRecordType::kPrepare:
          // A 2PC participant promise; the verdict may be in the
          // coordinator's log only. Resolved below (and by the
          // distributed restart for transactions still in doubt).
          report.prepared.insert(record.txn);
          break;
        case WalRecordType::kReadBound:
          break;  // only its timestamp matters, folded in above
        case WalRecordType::kSegmentCheckpoint:
        case WalRecordType::kControlCheckpoint:
          break;  // rejected during the scan
      }
    }
  }

  // Resolution: commit everything a durable transaction created (its
  // commit record may live in a sibling segment's log or only in a
  // snapshot), discard every other version, and fold chain timestamps —
  // including registered read timestamps restored from checkpoints — into
  // the clock floor.
  for (SegmentId s = 0; s < db->num_segments(); ++s) {
    Segment& segment = db->segment(s);
    for (std::uint32_t i = 0; i < segment.size(); ++i) {
      Granule& g = segment.granule(i);
      std::vector<std::uint64_t> doomed;
      for (const Version& v : g.versions()) {
        if (v.creator != kInvalidTxn &&
            report.durable_commits.count(v.creator) == 0) {
          doomed.push_back(v.order_key);
          if (report.prepared.count(v.creator) > 0) {
            // In-doubt 2PC write: keep it aside for the distributed
            // restart (the coordinator's log holds the verdict).
            report.prepared_writes.push_back(RecoveryReport::PreparedWrite{
                v.creator, s, i, v.order_key, v.value});
          }
          continue;
        }
        report.max_timestamp = std::max({report.max_timestamp, v.wts, v.rts});
      }
      for (const std::uint64_t key : doomed) {
        HDD_RETURN_IF_ERROR(g.Remove(key));
        ++report.discarded_uncommitted;
      }
      for (const Version& v : g.versions()) {
        if (v.creator == kInvalidTxn) continue;
        Version* survivor = g.Find(v.order_key);
        if (survivor != nullptr) survivor->committed = true;
      }
    }
  }

  // A locally durable commit/abort verdict resolves the prepare; only the
  // rest stays in doubt for the distributed restart.
  for (auto it = report.prepared.begin(); it != report.prepared.end();) {
    it = report.durable_commits.count(*it) > 0 ? report.prepared.erase(it)
                                               : std::next(it);
  }

  HDD_ASSIGN_OR_RETURN(std::optional<std::string> control,
                       LoadControlCheckpoint(storage));
  if (control.has_value()) report.control_state = std::move(*control);
  {
    const std::string name = kControlCheckpointName;
    HDD_ASSIGN_OR_RETURN(const std::string data, storage->Read(name));
    HDD_ASSIGN_OR_RETURN(const ScanResult scan, ScanFrames(data));
    HDD_RETURN_IF_ERROR(TruncateTornTail(storage, name, scan, &report));
  }

  if (metrics != nullptr) {
    metrics->recovery_replayed_records.Add(report.replayed_records);
    metrics->recovery_replay_us.Add(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - started)
            .count()));
  }
  return report;
}

}  // namespace hdd
