#include "wal/wal_storage.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace hdd {

// ---------------------------------------------------------------------------
// SimWalStorage

Result<std::string> SimWalStorage::Read(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) return std::string();
  return it->second.durable + it->second.buffered;
}

Result<std::uint64_t> SimWalStorage::Size(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) return std::uint64_t{0};
  return static_cast<std::uint64_t>(it->second.durable.size() +
                                    it->second.buffered.size());
}

Status SimWalStorage::Append(const std::string& name, std::string_view data) {
  std::lock_guard<std::mutex> lock(mu_);
  files_[name].buffered.append(data);
  return Status::OK();
}

Status SimWalStorage::Sync(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fail_syncs_ > 0) {
    --fail_syncs_;
    return Status::IoError("injected sync failure on " + name);
  }
  File& file = files_[name];
  file.durable.append(file.buffered);
  file.buffered.clear();
  return Status::OK();
}

Status SimWalStorage::Truncate(const std::string& name, std::uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  File& file = files_[name];
  if (size <= file.durable.size()) {
    file.durable.resize(size);
    file.buffered.clear();
  } else {
    file.buffered.resize(size - file.durable.size());
  }
  return Status::OK();
}

void SimWalStorage::Crash(Rng& rng) {
  std::lock_guard<std::mutex> lock(mu_);
  // Iteration order (std::map) is name-sorted, so the same seed loses the
  // same bytes — crashes replay like everything else in the simulator.
  for (auto& [name, file] : files_) {
    (void)name;
    const std::uint64_t keep =
        file.buffered.empty()
            ? 0
            : rng.NextBounded(
                  static_cast<std::uint64_t>(file.buffered.size()) + 1);
    file.durable.append(file.buffered.data(), keep);
    file.buffered.clear();
  }
}

std::uint64_t SimWalStorage::BufferedBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [name, file] : files_) {
    (void)name;
    total += file.buffered.size();
  }
  return total;
}

void SimWalStorage::FailNextSyncs(int count) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_syncs_ = count;
}

// ---------------------------------------------------------------------------
// FileWalStorage

FileWalStorage::FileWalStorage(std::string dir) : dir_(std::move(dir)) {
  ::mkdir(dir_.c_str(), 0755);  // best effort; Fd() surfaces real failures
}

FileWalStorage::~FileWalStorage() {
  for (auto& [name, fd] : fds_) {
    (void)name;
    ::close(fd);
  }
}

Result<int> FileWalStorage::Fd(const std::string& name) {
  auto it = fds_.find(name);
  if (it != fds_.end()) return it->second;
  const std::string path = dir_ + "/" + name;
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  fds_[name] = fd;
  return fd;
}

Result<std::string> FileWalStorage::Read(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  HDD_ASSIGN_OR_RETURN(const int fd, Fd(name));
  std::string out;
  char buf[1 << 16];
  std::uint64_t offset = 0;
  for (;;) {
    const ssize_t n = ::pread(fd, buf, sizeof buf,
                              static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("pread " + name + ": " + std::strerror(errno));
    }
    if (n == 0) return out;
    out.append(buf, static_cast<std::size_t>(n));
    offset += static_cast<std::uint64_t>(n);
  }
}

Result<std::uint64_t> FileWalStorage::Size(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  HDD_ASSIGN_OR_RETURN(const int fd, Fd(name));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    return Status::IoError("fstat " + name + ": " + std::strerror(errno));
  }
  return static_cast<std::uint64_t>(st.st_size);
}

Status FileWalStorage::Append(const std::string& name, std::string_view data) {
  std::lock_guard<std::mutex> lock(mu_);
  HDD_ASSIGN_OR_RETURN(const int fd, Fd(name));
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("write " + name + ": " + std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

Status FileWalStorage::Sync(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  HDD_ASSIGN_OR_RETURN(const int fd, Fd(name));
  if (::fdatasync(fd) != 0) {
    return Status::IoError("fdatasync " + name + ": " + std::strerror(errno));
  }
  return Status::OK();
}

Status FileWalStorage::Truncate(const std::string& name, std::uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  HDD_ASSIGN_OR_RETURN(const int fd, Fd(name));
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    return Status::IoError("ftruncate " + name + ": " + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace hdd
