#include "wal/group_commit.h"

#include <algorithm>

#include "common/sim_hook.h"
#include "obs/trace.h"

namespace hdd {

Status GroupCommit::AwaitDurable(
    std::uint64_t ticket, const std::function<Result<SyncBatch>()>& sync_all,
    const std::function<std::uint64_t()>& pending_bytes) {
  if (params_.mode == WalSyncMode::kNone) return Status::OK();
  metrics_->commit_waits.Add(1);

  if (params_.mode == WalSyncMode::kPerCommit) {
    // The baseline everyone pays without group commit: one (serialized)
    // fsync round per committing transaction, durable or not already.
    std::lock_guard<std::mutex> sync_lock(per_commit_mu_);
    {
      std::lock_guard<std::mutex> lock(mu_);
      HDD_RETURN_IF_ERROR(error_);
    }
    Result<SyncBatch> batch = [&] {
      HDD_TRACE_SPAN("wal", "per_commit_flush");
      return sync_all();
    }();
    std::lock_guard<std::mutex> lock(mu_);
    if (!batch.ok()) {
      error_ = batch.status();
      return error_;
    }
    stable_ = std::max(stable_, batch->stable_ticket);
    metrics_->ObserveBatch(std::max<std::uint64_t>(1, batch->commits_covered));
    return stable_ >= ticket
               ? Status::OK()
               : Status::Internal("sync batch did not cover own ticket");
  }

  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    HDD_RETURN_IF_ERROR(error_);
    if (stable_ >= ticket) return Status::OK();
    if (!leader_active_) {
      leader_active_ = true;
      lock.unlock();
      // Let followers pile in before paying the fsync — unless enough
      // bytes already wait. Under simulation this is one deterministic
      // reschedule; in real time it is the configured flush interval.
      if (params_.flush_interval.count() > 0 &&
          pending_bytes() < params_.flush_bytes) {
        SimSleep(params_.flush_interval);
      }
      Result<SyncBatch> batch = [&] {
        HDD_TRACE_SPAN("wal", "group_commit_flush");
        return sync_all();
      }();
      lock.lock();
      leader_active_ = false;
      if (!batch.ok()) {
        error_ = batch.status();
        SimNotifyAll(cv_, this);
        return error_;
      }
      stable_ = std::max(stable_, batch->stable_ticket);
      metrics_->ObserveBatch(
          std::max<std::uint64_t>(1, batch->commits_covered));
      SimNotifyAll(cv_, this);
      continue;  // re-check own ticket (a racing append may outrun a batch)
    }
    SimWait(cv_, lock, this);
  }
}

std::uint64_t GroupCommit::stable_ticket() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stable_;
}

}  // namespace hdd
