#ifndef HDD_WAL_LOG_FORMAT_H_
#define HDD_WAL_LOG_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "storage/version.h"

namespace hdd {

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `data`.
std::uint32_t Crc32(std::string_view data);

/// On-disk framing, identical in every WAL stream (redo logs and
/// checkpoint streams):
///
///   +----------------+----------------+=====================+
///   | length  u32 LE | crc32   u32 LE | payload (length B)  |
///   +----------------+----------------+=====================+
///
/// The CRC covers the payload only. A frame cut short by a crash is a
/// *torn tail* — expected, silently truncated by recovery. A complete
/// frame whose CRC mismatches (or whose header is insane while enough
/// bytes follow) is *corruption* and fails recovery loudly.
inline constexpr std::size_t kFrameHeaderBytes = 8;
/// Sanity cap on a frame's payload; anything larger in a header whose
/// bytes are all present is treated as corruption, not a huge record.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 30;

/// Appends one frame around `payload` to `out`.
void AppendFrame(std::string* out, std::string_view payload);

/// One decoded frame: the payload plus the file offset just past it.
struct ScannedFrame {
  std::string_view payload;
  std::uint64_t end_offset = 0;
};

/// Result of scanning a WAL stream from offset 0.
struct ScanResult {
  std::vector<ScannedFrame> frames;
  /// Offset of the first byte past the last intact frame — where a torn
  /// tail (if any) starts and where recovery truncates to.
  std::uint64_t valid_end = 0;
  /// Whether trailing bytes past valid_end were discarded as torn.
  bool torn_tail = false;
};

/// Walks the stream frame by frame. Returns the scan on success (torn
/// tails are success) and kCorruption on a CRC mismatch or an insane
/// header with all its bytes present. The string_views alias `data`.
Result<ScanResult> ScanFrames(std::string_view data);

/// Redo-log record types. Write/commit/abort land in per-segment redo
/// logs; the checkpoint types frame the snapshot streams.
enum class WalRecordType : std::uint8_t {
  kWrite = 1,
  kCommit = 2,
  kAbort = 3,
  kSegmentCheckpoint = 4,
  kControlCheckpoint = 5,
  /// Clock marker appended by a read-only commit before its durability
  /// barrier: `init_ts` is the clock at ack time. Without it a crash could
  /// rewind the clock below an acked reader's wall bound (bounds anchor on
  /// transactions that may never have logged anything) and a post-recovery
  /// writer could slip a version underneath that reader — an external-
  /// consistency violation the combined-history oracle would flag.
  kReadBound = 6,
  /// Two-phase-commit participant marker (src/dist/): the writes of `txn`
  /// shipped to this segment are fully logged and the participant is
  /// promising to commit them iff the coordinator's commit record becomes
  /// durable at the transaction's home node. Recovery keeps such writes
  /// aside (RecoveryReport::prepared_writes) instead of discarding them,
  /// so the distributed restart can resolve them against the
  /// coordinator's durable-commit verdict.
  kPrepare = 7,
};

/// One decoded redo-log record. `init_ts` doubles as the version
/// order_key (HDD versions are keyed by the creator's initiation time),
/// so replay re-installs versions at exactly their pre-crash position.
struct WalRecord {
  WalRecordType type = WalRecordType::kWrite;
  /// Global append ticket, assigned from one WAL-wide counter inside the
  /// owning log's append critical section — so tickets are dense across
  /// ALL logs (1, 2, 3, ...) and strictly increasing within each log.
  /// Recovery computes the *frontier* F = the largest ticket with no hole
  /// below it among the surviving records, and honors only records with
  /// ticket <= F: since a record's causal dependencies always carry
  /// smaller tickets, a commit that survived a crash "by luck" (its file's
  /// unsynced tail partially retained) while a record it depends on in
  /// ANOTHER file was lost is rolled back instead of resurrected. Acked
  /// commits always land at or below F because the ack's fsync batch
  /// covers every smaller ticket in every log.
  std::uint64_t ticket = 0;
  TxnId txn = kInvalidTxn;
  Timestamp init_ts = kTimestampMin;
  std::uint32_t granule = 0;  // kWrite only
  Value value = 0;            // kWrite only
  std::string blob;           // checkpoint types only
  /// kCommit only: every segment this transaction wrote (and therefore
  /// every log carrying a copy of this commit record). The copies make
  /// each segment's log self-contained for its own versions; the ticket
  /// frontier above is what protects against per-file fsync being
  /// non-atomic across files (a crash mid-sync persisting one copy while
  /// losing a sibling segment's records).
  std::vector<SegmentId> segments;
};

/// Record payload encoding (the bytes inside a frame).
std::string EncodeWalRecord(const WalRecord& record);
Result<WalRecord> DecodeWalRecord(std::string_view payload);

// Little-endian integer helpers shared by the checkpoint encoder.
void PutU32(std::string* out, std::uint32_t v);
void PutU64(std::string* out, std::uint64_t v);
/// Reads and advances `*data`; false when too short.
bool GetU32(std::string_view* data, std::uint32_t* v);
bool GetU64(std::string_view* data, std::uint64_t* v);

}  // namespace hdd

#endif  // HDD_WAL_LOG_FORMAT_H_
