#include "wal/wal_manager.h"

#include "obs/trace.h"

namespace hdd {

std::string SegmentLogName(SegmentId segment) {
  return "seg-" + std::to_string(segment) + ".log";
}

std::string SegmentCheckpointName(SegmentId segment) {
  return "seg-" + std::to_string(segment) + ".ckpt";
}

WalManager::WalManager(WalStorage* storage, WalOptions options)
    : storage_(storage),
      options_(options),
      gate_(options.group, &metrics_) {}

Result<std::unique_ptr<WalManager>> WalManager::Open(WalStorage* storage,
                                                     int num_segments,
                                                     WalOptions options) {
  std::unique_ptr<WalManager> wal(new WalManager(storage, options));
  wal->append_ticket_.store(options.initial_ticket,
                            std::memory_order_release);
  wal->logs_.reserve(static_cast<std::size_t>(num_segments));
  for (SegmentId s = 0; s < num_segments; ++s) {
    HDD_ASSIGN_OR_RETURN(SegmentLog log,
                         SegmentLog::Open(storage, SegmentLogName(s)));
    wal->logs_.push_back(std::move(log));
  }
  return wal;
}

Result<std::uint64_t> WalManager::AppendRecord(SegmentId segment,
                                               const WalRecord& record) {
  HDD_TRACE_SPAN("wal", "append");
  // The ticket is drawn inside the log's append critical section, so a
  // ticket visible to SyncAll's capture implies the holder is inside (or
  // past) that section and the capture's subsequent per-log Sync — which
  // reads its target under the same lock — covers the record's bytes.
  std::uint64_t ticket = 0;
  HDD_ASSIGN_OR_RETURN(
      const std::uint64_t end,
      logs_[static_cast<std::size_t>(segment)].Append(record, &append_ticket_,
                                                      &ticket));
  (void)end;
  metrics_.records_appended.Add(1);
  metrics_.bytes_appended.Add(kFrameHeaderBytes +
                              EncodeWalRecord(record).size());
  return ticket;
}

Result<std::uint64_t> WalManager::LogWrite(SegmentId segment, TxnId txn,
                                           Timestamp init_ts,
                                           std::uint32_t granule,
                                           Value value) {
  WalRecord record;
  record.type = WalRecordType::kWrite;
  record.txn = txn;
  record.init_ts = init_ts;
  record.granule = granule;
  record.value = value;
  return AppendRecord(segment, record);
}

Result<std::uint64_t> WalManager::LogCommit(
    SegmentId segment, TxnId txn, Timestamp init_ts,
    const std::vector<SegmentId>& written_segments) {
  WalRecord record;
  record.type = WalRecordType::kCommit;
  record.txn = txn;
  record.init_ts = init_ts;
  record.segments = written_segments;
  pending_commits_.fetch_add(1, std::memory_order_relaxed);
  return AppendRecord(segment, record);
}

Result<std::uint64_t> WalManager::LogAbort(SegmentId segment, TxnId txn,
                                           Timestamp init_ts) {
  WalRecord record;
  record.type = WalRecordType::kAbort;
  record.txn = txn;
  record.init_ts = init_ts;
  return AppendRecord(segment, record);
}

Result<std::uint64_t> WalManager::LogPrepare(SegmentId segment, TxnId txn,
                                             Timestamp init_ts) {
  WalRecord record;
  record.type = WalRecordType::kPrepare;
  record.txn = txn;
  record.init_ts = init_ts;
  return AppendRecord(segment, record);
}

Result<std::uint64_t> WalManager::LogReadBound(Timestamp now) {
  WalRecord record;
  record.type = WalRecordType::kReadBound;
  record.init_ts = now;
  return AppendRecord(/*segment=*/0, record);
}

Result<SyncBatch> WalManager::SyncAll() {
  SyncBatch batch;
  // Capture BEFORE syncing: a record ticketed at or below the capture was
  // inside its log's append critical section when the capture happened,
  // and each per-log Sync below reads its target under that same lock —
  // so it serializes after the append and covers the record's bytes. The
  // batch is conservative the other way — later appends may also get
  // synced — which only makes the published point tighter than claimed.
  batch.stable_ticket = append_ticket_.load(std::memory_order_acquire);
  batch.commits_covered = pending_commits_.exchange(0);
  for (SegmentLog& log : logs_) {
    if (log.unsynced_bytes() == 0) continue;  // clean logs cost no fsync
    HDD_RETURN_IF_ERROR(log.Sync());
    metrics_.fsyncs.Add(1);
  }
  return batch;
}

std::uint64_t WalManager::PendingBytes() const {
  std::uint64_t total = 0;
  for (const SegmentLog& log : logs_) total += log.unsynced_bytes();
  return total;
}

Status WalManager::WaitDurable(std::uint64_t ticket) {
  if (options_.mutation_skip_commit_sync) return Status::OK();
  return gate_.AwaitDurable(
      ticket, [this] { return SyncAll(); }, [this] { return PendingBytes(); });
}

Status WalManager::AwaitReadStable() {
  return WaitDurable(CurrentTicket());
}

std::uint64_t WalManager::LogEndLsn(SegmentId segment) const {
  return logs_[static_cast<std::size_t>(segment)].end_lsn();
}

}  // namespace hdd
