#ifndef HDD_WAL_SEGMENT_LOG_H_
#define HDD_WAL_SEGMENT_LOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "wal/log_format.h"
#include "wal/wal_storage.h"

namespace hdd {

/// The redo log of ONE segment. HDD makes this the natural logging unit:
/// an update transaction writes exactly one root segment (paper §3), so
/// its write and commit records are segment-local and segments recover
/// independently. Records are CRC32-framed (log_format.h); append order
/// equals version-install order because the controller appends under the
/// same shard latch that installs the version.
///
/// LSNs are plain byte offsets into the log file.
class SegmentLog {
 public:
  /// Opens the log named `name` inside `storage`, continuing at its
  /// current size (0 for a fresh log; recovery truncates torn tails
  /// before reattaching, so the opening offset is a frame boundary).
  static Result<SegmentLog> Open(WalStorage* storage, std::string name);

  SegmentLog(SegmentLog&&) = default;
  SegmentLog& operator=(SegmentLog&&) = default;

  /// Appends one framed record (buffered, not durable), drawing its
  /// global ticket from `ticket_counter` inside the append critical
  /// section — file order therefore equals ticket order within this log,
  /// which is what lets recovery truncate everything past the ticket
  /// frontier as one suffix cut (see WalRecord::ticket). Returns the
  /// record's end LSN and stores the assigned ticket in `*ticket_out`.
  Result<std::uint64_t> Append(WalRecord record,
                               std::atomic<std::uint64_t>* ticket_counter,
                               std::uint64_t* ticket_out);

  /// Makes every appended byte durable.
  Status Sync();

  const std::string& name() const { return *name_; }
  /// End of everything appended so far.
  std::uint64_t end_lsn() const;
  /// End of everything known durable.
  std::uint64_t durable_lsn() const;
  /// Bytes appended but not yet synced.
  std::uint64_t unsynced_bytes() const;

 private:
  SegmentLog(WalStorage* storage, std::string name, std::uint64_t end);

  WalStorage* storage_;
  // unique_ptr members keep the class movable despite the mutex.
  std::unique_ptr<std::string> name_;
  std::unique_ptr<std::mutex> mu_;
  std::uint64_t end_lsn_ = 0;
  std::uint64_t durable_lsn_ = 0;
};

}  // namespace hdd

#endif  // HDD_WAL_SEGMENT_LOG_H_
