#include "wal/checkpoint.h"

#include <utility>
#include <vector>

#include "wal/log_format.h"
#include "wal/wal_manager.h"

namespace hdd {

namespace {

/// Chain snapshot layout (everything LE):
///   u32 num_granules
///   per granule: u32 num_versions, then per version
///     u64 order_key, u64 wts, u64 rts, u64 creator, u64 value, u8 committed
constexpr char kCommittedFlag = 1;

/// Appends one checkpoint record (of `type`) as a frame and syncs the
/// stream. Appending before syncing keeps the previous checkpoint intact
/// until the new frame is fully durable — the reader takes the last valid
/// frame, so a crash anywhere here is harmless.
Status AppendCheckpointRecord(WalStorage* storage, const std::string& name,
                              WalRecordType type, std::string blob) {
  WalRecord record;
  record.type = type;
  record.blob = std::move(blob);
  std::string frame;
  AppendFrame(&frame, EncodeWalRecord(record));
  HDD_RETURN_IF_ERROR(storage->Append(name, frame));
  return storage->Sync(name);
}

/// Reads the stream and returns the payload of its last intact frame of
/// `type` (nullopt when the stream has no intact frames).
Result<std::optional<WalRecord>> LoadLastCheckpointRecord(
    WalStorage* storage, const std::string& name, WalRecordType type) {
  HDD_ASSIGN_OR_RETURN(const std::string data, storage->Read(name));
  HDD_ASSIGN_OR_RETURN(const ScanResult scan, ScanFrames(data));
  if (scan.frames.empty()) return std::optional<WalRecord>();
  HDD_ASSIGN_OR_RETURN(WalRecord record,
                       DecodeWalRecord(scan.frames.back().payload));
  if (record.type != type) {
    return Status::Corruption("checkpoint stream " + name +
                              " holds a record of the wrong type");
  }
  return std::optional<WalRecord>(std::move(record));
}

}  // namespace

std::string EncodeSegmentChains(const Segment& segment) {
  std::string out;
  PutU32(&out, segment.size());
  for (std::uint32_t i = 0; i < segment.size(); ++i) {
    const std::vector<Version>& versions = segment.granule(i).versions();
    PutU32(&out, static_cast<std::uint32_t>(versions.size()));
    for (const Version& v : versions) {
      PutU64(&out, v.order_key);
      PutU64(&out, v.wts);
      PutU64(&out, v.rts);
      PutU64(&out, v.creator);
      PutU64(&out, static_cast<std::uint64_t>(v.value));
      out.push_back(v.committed ? kCommittedFlag : 0);
    }
  }
  return out;
}

Status DecodeSegmentChainsInto(std::string_view blob, Segment* segment) {
  std::uint32_t num_granules = 0;
  if (!GetU32(&blob, &num_granules)) {
    return Status::Corruption("chain snapshot: missing granule count");
  }
  for (std::uint32_t i = 0; i < num_granules; ++i) {
    std::uint32_t num_versions = 0;
    if (!GetU32(&blob, &num_versions) || num_versions == 0) {
      return Status::Corruption("chain snapshot: bad version count");
    }
    std::vector<Version> versions;
    versions.reserve(num_versions);
    for (std::uint32_t j = 0; j < num_versions; ++j) {
      Version v;
      std::uint64_t value = 0;
      if (!GetU64(&blob, &v.order_key) || !GetU64(&blob, &v.wts) ||
          !GetU64(&blob, &v.rts) || !GetU64(&blob, &v.creator) ||
          !GetU64(&blob, &value) || blob.empty()) {
        return Status::Corruption("chain snapshot: truncated version");
      }
      v.value = static_cast<Value>(value);
      v.committed = blob.front() == kCommittedFlag;
      blob.remove_prefix(1);
      versions.push_back(v);
    }
    while (segment->size() <= i) segment->Allocate(0);
    HDD_RETURN_IF_ERROR(segment->granule(i).RestoreVersions(
        std::move(versions)));
  }
  if (!blob.empty()) {
    return Status::Corruption("chain snapshot: trailing bytes");
  }
  return Status::OK();
}

Status AppendSegmentCheckpoint(WalStorage* storage, SegmentId s,
                               const SegmentCheckpoint& ckpt) {
  std::string blob;
  PutU64(&blob, ckpt.log_end_lsn);
  blob.append(ckpt.chains);
  return AppendCheckpointRecord(storage, SegmentCheckpointName(s),
                                WalRecordType::kSegmentCheckpoint,
                                std::move(blob));
}

Result<std::optional<SegmentCheckpoint>> LoadSegmentCheckpoint(
    WalStorage* storage, SegmentId s) {
  HDD_ASSIGN_OR_RETURN(
      std::optional<WalRecord> record,
      LoadLastCheckpointRecord(storage, SegmentCheckpointName(s),
                               WalRecordType::kSegmentCheckpoint));
  if (!record.has_value()) return std::optional<SegmentCheckpoint>();
  std::string_view blob = record->blob;
  SegmentCheckpoint ckpt;
  if (!GetU64(&blob, &ckpt.log_end_lsn)) {
    return Status::Corruption("segment checkpoint: missing log LSN");
  }
  ckpt.chains.assign(blob);
  return std::optional<SegmentCheckpoint>(std::move(ckpt));
}

Status AppendControlCheckpoint(WalStorage* storage,
                               std::string_view control_state) {
  return AppendCheckpointRecord(storage, kControlCheckpointName,
                                WalRecordType::kControlCheckpoint,
                                std::string(control_state));
}

Result<std::optional<std::string>> LoadControlCheckpoint(WalStorage* storage) {
  HDD_ASSIGN_OR_RETURN(
      std::optional<WalRecord> record,
      LoadLastCheckpointRecord(storage, kControlCheckpointName,
                               WalRecordType::kControlCheckpoint));
  if (!record.has_value()) return std::optional<std::string>();
  return std::optional<std::string>(std::move(record->blob));
}

}  // namespace hdd
