#include "wal/segment_log.h"

namespace hdd {

SegmentLog::SegmentLog(WalStorage* storage, std::string name,
                       std::uint64_t end)
    : storage_(storage),
      name_(std::make_unique<std::string>(std::move(name))),
      mu_(std::make_unique<std::mutex>()),
      end_lsn_(end),
      // Everything on disk at open time is durable: either it was synced,
      // or recovery truncated to the valid prefix and synced the result.
      durable_lsn_(end) {}

Result<SegmentLog> SegmentLog::Open(WalStorage* storage, std::string name) {
  HDD_ASSIGN_OR_RETURN(const std::uint64_t size, storage->Size(name));
  return SegmentLog(storage, std::move(name), size);
}

Result<std::uint64_t> SegmentLog::Append(
    WalRecord record, std::atomic<std::uint64_t>* ticket_counter,
    std::uint64_t* ticket_out) {
  std::lock_guard<std::mutex> lock(*mu_);
  record.ticket = ticket_counter->fetch_add(1, std::memory_order_acq_rel) + 1;
  *ticket_out = record.ticket;
  std::string frame;
  AppendFrame(&frame, EncodeWalRecord(record));
  HDD_RETURN_IF_ERROR(storage_->Append(*name_, frame));
  end_lsn_ += frame.size();
  return end_lsn_;
}

Status SegmentLog::Sync() {
  std::unique_lock<std::mutex> lock(*mu_);
  const std::uint64_t target = end_lsn_;
  if (target == durable_lsn_) return Status::OK();
  // Sync without the latch held: appenders may keep appending (their
  // bytes ride along harmlessly); only the durable mark needs the latch.
  lock.unlock();
  HDD_RETURN_IF_ERROR(storage_->Sync(*name_));
  lock.lock();
  if (target > durable_lsn_) durable_lsn_ = target;
  return Status::OK();
}

std::uint64_t SegmentLog::end_lsn() const {
  std::lock_guard<std::mutex> lock(*mu_);
  return end_lsn_;
}

std::uint64_t SegmentLog::durable_lsn() const {
  std::lock_guard<std::mutex> lock(*mu_);
  return durable_lsn_;
}

std::uint64_t SegmentLog::unsynced_bytes() const {
  std::lock_guard<std::mutex> lock(*mu_);
  return end_lsn_ - durable_lsn_;
}

}  // namespace hdd
