#ifndef HDD_TXN_DEPENDENCY_GRAPH_H_
#define HDD_TXN_DEPENDENCY_GRAPH_H_

#include <unordered_map>
#include <vector>

#include "graph/digraph.h"
#include "txn/schedule.h"

namespace hdd {

struct DependencyGraphOptions {
  /// Additionally add write-write arcs along each granule's version order
  /// (creator of the successor depends on the creator of the predecessor).
  ///
  /// The paper's TG (§2) omits them and links a writer only to the readers
  /// of the *immediate* predecessor version, which is too weak to flag the
  /// Figure 1 lost update (neither offending transaction read the other's
  /// version). With ww arcs the graph transitively equals the classical
  /// multi-version serialization graph and the acyclicity check is sound,
  /// so they are on by default; set false to study the paper's literal TG.
  bool include_version_order_arcs = true;
};

/// The paper's transaction dependency graph TG(S(T)) over *committed*
/// transactions:
///   t2 -> t1  iff  t2 read a version created by t1, or t2 created a
///   version whose predecessor (in the granule's version order) was read
///   by t1.
struct DependencyAnalysis {
  Digraph graph;
  std::vector<TxnId> txn_of_node;
  std::unordered_map<TxnId, NodeId> node_of_txn;
};

DependencyAnalysis BuildDependencyGraph(
    const std::vector<Step>& steps,
    const std::unordered_map<TxnId, TxnState>& outcomes,
    const DependencyGraphOptions& options = {});

/// Outcome of the §2 correctness criterion: serializable iff TG acyclic.
struct SerializabilityReport {
  bool serializable = false;
  /// When not serializable: a dependency cycle t_a -> ... -> t_a.
  std::vector<TxnId> witness_cycle;
  /// When serializable: an equivalent serial order (topological order of
  /// TG, dependencies first — i.e. a valid serialization reading left to
  /// right).
  std::vector<TxnId> serial_order;
};

SerializabilityReport CheckSerializability(
    const std::vector<Step>& steps,
    const std::unordered_map<TxnId, TxnState>& outcomes,
    const DependencyGraphOptions& options = {});

/// Convenience overload reading straight from a recorder.
SerializabilityReport CheckSerializability(
    const ScheduleRecorder& recorder,
    const DependencyGraphOptions& options = {});

}  // namespace hdd

#endif  // HDD_TXN_DEPENDENCY_GRAPH_H_
