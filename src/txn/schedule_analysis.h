#ifndef HDD_TXN_SCHEDULE_ANALYSIS_H_
#define HDD_TXN_SCHEDULE_ANALYSIS_H_

#include <unordered_map>
#include <vector>

#include "txn/dependency_graph.h"
#include "txn/schedule.h"

namespace hdd {

/// §2 theory toolkit over recorded schedules.

/// True iff no two transactions' steps interleave (the paper's definition
/// of a serialized schedule).
bool IsSerialSchedule(const std::vector<Step>& steps);

/// The paper's equivalence: S1 ≡ S2 iff TG(S1) == TG(S2) (same
/// transactions, same direct dependencies). Both schedules must involve
/// the same committed transactions; otherwise false.
bool EquivalentSchedules(
    const std::vector<Step>& s1,
    const std::unordered_map<TxnId, TxnState>& outcomes1,
    const std::vector<Step>& s2,
    const std::unordered_map<TxnId, TxnState>& outcomes2,
    const DependencyGraphOptions& options = {});

/// Rearranges `steps` into the serialized schedule that executes the
/// committed transactions one after another in `order` (each
/// transaction's own steps keep their internal order; steps of
/// non-committed transactions are dropped). This is the witness object of
/// the paper's serializability definition: if `order` came from
/// CheckSerializability, the result is a serial schedule equivalent to
/// the original.
std::vector<Step> SerializeSchedule(
    const std::vector<Step>& steps,
    const std::unordered_map<TxnId, TxnState>& outcomes,
    const std::vector<TxnId>& order);

/// The one-copy-serializability witness check: walking the schedule in
/// order as if it executed on a SINGLE-version store, every read must
/// return exactly the version installed by the latest preceding write of
/// its granule (or the initial version 0 when none precedes). A serial
/// schedule passing this check proves the original execution equivalent
/// to a serial single-version execution — the strongest §2 guarantee.
bool IsMonoversionConsistent(const std::vector<Step>& steps);

/// Per-granule conflict statistics of a schedule — how contended each
/// granule was (reads, writes, distinct transactions). Useful for
/// decomposition analysis and experiment reporting.
struct GranuleStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t distinct_txns = 0;
};
std::unordered_map<GranuleRef, GranuleStats> AnalyzeGranules(
    const std::vector<Step>& steps);

/// Human-readable one-line-per-arc narrative of a dependency cycle, e.g.
///   "t3 read granule (0,1) version 7 created by t1".
std::vector<std::string> ExplainCycle(
    const std::vector<Step>& steps,
    const std::unordered_map<TxnId, TxnState>& outcomes,
    const std::vector<TxnId>& cycle);

}  // namespace hdd

#endif  // HDD_TXN_SCHEDULE_ANALYSIS_H_
