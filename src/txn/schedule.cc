#include "txn/schedule.h"

namespace hdd {

void ScheduleRecorder::RecordBegin(TxnId txn, ClassId txn_class,
                                   bool read_only) {
  std::lock_guard<std::mutex> guard(mu_);
  identities_[txn] = TxnIdentity{txn_class, read_only};
}

void ScheduleRecorder::RecordRead(TxnId txn, GranuleRef granule,
                                  std::uint64_t version, bool registered) {
  Record(txn, Step::Action::kRead, granule, version, registered);
}

void ScheduleRecorder::RecordWrite(TxnId txn, GranuleRef granule,
                                   std::uint64_t version) {
  Record(txn, Step::Action::kWrite, granule, version, false);
}

void ScheduleRecorder::Record(TxnId txn, Step::Action action,
                              GranuleRef granule, std::uint64_t version,
                              bool registered) {
  std::lock_guard<std::mutex> guard(mu_);
  Step step;
  step.txn = txn;
  step.action = action;
  step.granule = granule;
  step.version = version;
  step.registered = registered;
  step.seq = next_seq_++;
  steps_.push_back(step);
}

void ScheduleRecorder::RecordOutcome(TxnId txn, TxnState outcome) {
  std::lock_guard<std::mutex> guard(mu_);
  outcomes_[txn] = outcome;
}

std::vector<Step> ScheduleRecorder::steps() const {
  std::lock_guard<std::mutex> guard(mu_);
  return steps_;
}

std::unordered_map<TxnId, TxnState> ScheduleRecorder::outcomes() const {
  std::lock_guard<std::mutex> guard(mu_);
  return outcomes_;
}

std::unordered_map<TxnId, ScheduleRecorder::TxnIdentity>
ScheduleRecorder::identities() const {
  std::lock_guard<std::mutex> guard(mu_);
  return identities_;
}

void ScheduleRecorder::Clear() {
  std::lock_guard<std::mutex> guard(mu_);
  steps_.clear();
  outcomes_.clear();
  identities_.clear();
  next_seq_ = 0;
}

}  // namespace hdd
