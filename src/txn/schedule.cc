#include "txn/schedule.h"

#include <algorithm>
#include <thread>

namespace hdd {

ScheduleRecorder::Stripe& ScheduleRecorder::MyStripe() {
  // One stripe per thread (hashed); distinct workers almost always land on
  // distinct stripes, so recording never funnels through a single mutex.
  static thread_local const std::size_t slot =
      std::hash<std::thread::id>()(std::this_thread::get_id());
  return stripes_[slot % kStripes];
}

void ScheduleRecorder::RecordBegin(TxnId txn, ClassId txn_class,
                                   bool read_only, Timestamp init_ts) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> guard(meta_mu_);
  identities_[txn] = TxnIdentity{txn_class, read_only, init_ts};
}

void ScheduleRecorder::RecordRead(TxnId txn, GranuleRef granule,
                                  std::uint64_t version, bool registered,
                                  Timestamp bound) {
  Record(txn, Step::Action::kRead, granule, version, registered, bound);
}

void ScheduleRecorder::RecordWrite(TxnId txn, GranuleRef granule,
                                   std::uint64_t version) {
  Record(txn, Step::Action::kWrite, granule, version, false, kTimestampMin);
}

void ScheduleRecorder::Record(TxnId txn, Step::Action action,
                              GranuleRef granule, std::uint64_t version,
                              bool registered, Timestamp bound) {
  if (!enabled()) return;
  Step step;
  step.txn = txn;
  step.action = action;
  step.granule = granule;
  step.version = version;
  step.registered = registered;
  step.bound = bound;
  step.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  Stripe& stripe = MyStripe();
  std::lock_guard<std::mutex> guard(stripe.mu);
  stripe.steps.push_back(step);
}

void ScheduleRecorder::RecordOutcome(TxnId txn, TxnState outcome) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> guard(meta_mu_);
  outcomes_[txn] = outcome;
}

std::vector<Step> ScheduleRecorder::steps() const {
  std::vector<Step> all;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> guard(stripe.mu);
    all.insert(all.end(), stripe.steps.begin(), stripe.steps.end());
  }
  std::sort(all.begin(), all.end(),
            [](const Step& a, const Step& b) { return a.seq < b.seq; });
  return all;
}

std::unordered_map<TxnId, TxnState> ScheduleRecorder::outcomes() const {
  std::lock_guard<std::mutex> guard(meta_mu_);
  return outcomes_;
}

std::unordered_map<TxnId, ScheduleRecorder::TxnIdentity>
ScheduleRecorder::identities() const {
  std::lock_guard<std::mutex> guard(meta_mu_);
  return identities_;
}

void ScheduleRecorder::Clear() {
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> guard(stripe.mu);
    stripe.steps.clear();
  }
  {
    std::lock_guard<std::mutex> guard(meta_mu_);
    outcomes_.clear();
    identities_.clear();
  }
  next_seq_.store(0);
}

}  // namespace hdd
