#ifndef HDD_TXN_TRANSACTION_H_
#define HDD_TXN_TRANSACTION_H_

#include <cstdint>
#include <vector>

#include "common/clock.h"
#include "graph/dhg.h"
#include "storage/version.h"

namespace hdd {

/// Lifecycle state of a transaction as seen by a controller.
enum class TxnState {
  kActive,
  kCommitted,
  kAborted,
};

/// What a transaction declares when it begins. HDD needs the class (= root
/// segment) up front — the decomposition is an a-priori transaction
/// analysis (§3.2); the baselines ignore it.
struct TxnOptions {
  /// Class = root segment for update transactions; kReadOnlyClass for
  /// ad-hoc read-only transactions (paper §5).
  ClassId txn_class = kReadOnlyClass;
  bool read_only = false;

  /// Optional declaration for read-only transactions (HDD only): the
  /// segments this transaction will read. When one scope class is the
  /// lowest and every other is reachable from it by a critical path (the
  /// paper's §5.0 single-critical-path case, generalized to the union of
  /// critical paths from the host — sound because the hosted transaction
  /// is exactly an update transaction with an empty write set, which
  /// Theorem 1 covers), the controller "hosts" the transaction below that
  /// class (Figure 8's t1): every read then follows Protocol A — no
  /// registration, no waiting — instead of Protocol C's time wall.
  /// Reads outside the declared scope fail with InvalidArgument.
  std::vector<SegmentId> read_scope;

  /// Time travel (HDD only, read-only transactions): pin the transaction
  /// to an already-released time wall by index (0-based release order)
  /// instead of the freshest one — Reed's "arbitrary time slice"
  /// retrieval, constrained to the consistent cuts the system released.
  /// -1 (default) = normal behaviour. Fails with FailedPrecondition when
  /// the requested wall's versions may already be garbage-collected.
  int as_of_wall = -1;
};

/// Identifies one epoch of batched execution. 0 means "not epoch
/// admitted" — the transaction went through the plain per-txn Begin path.
using EpochId = std::uint64_t;

/// Handle returned by ConcurrencyController::BeginEpoch. `anchor` is the
/// clock value m_e ticked before any transaction of the batch begins; all
/// shared activity-link bounds of the epoch are evaluated at m_e, so
/// anchor < I(t) for every transaction admitted into the epoch.
struct EpochHandle {
  EpochId id = 0;
  Timestamp anchor = kTimestampMin;
};

/// Immutable identity of a running transaction, handed back by
/// ConcurrencyController::Begin.
struct TxnDescriptor {
  TxnId id = kInvalidTxn;
  /// The paper's I(t).
  Timestamp init_ts = kTimestampMin;
  ClassId txn_class = kReadOnlyClass;
  bool read_only = false;
  /// Epoch this transaction was batch-admitted into (0 = per-txn path).
  EpochId epoch = 0;
};

}  // namespace hdd

#endif  // HDD_TXN_TRANSACTION_H_
