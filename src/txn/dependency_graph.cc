#include "txn/dependency_graph.h"

#include <algorithm>
#include <map>

#include "graph/algorithms.h"

namespace hdd {

namespace {

bool Committed(const std::unordered_map<TxnId, TxnState>& outcomes,
               TxnId txn) {
  auto it = outcomes.find(txn);
  return it != outcomes.end() && it->second == TxnState::kCommitted;
}

}  // namespace

DependencyAnalysis BuildDependencyGraph(
    const std::vector<Step>& steps,
    const std::unordered_map<TxnId, TxnState>& outcomes,
    const DependencyGraphOptions& options) {
  DependencyAnalysis analysis;

  // Nodes: committed transactions, in first-appearance order.
  for (const Step& step : steps) {
    if (!Committed(outcomes, step.txn)) continue;
    if (analysis.node_of_txn.count(step.txn)) continue;
    const NodeId node = analysis.graph.AddNode();
    analysis.node_of_txn.emplace(step.txn, node);
    analysis.txn_of_node.push_back(step.txn);
  }

  // Per granule: committed writes keyed by version order, and the
  // committed readers of every version.
  struct GranuleHistory {
    // version order_key -> creator txn (committed writes only).
    std::map<std::uint64_t, TxnId> writes;
    // version order_key -> committed readers.
    std::map<std::uint64_t, std::vector<TxnId>> readers;
  };
  std::unordered_map<GranuleRef, GranuleHistory> histories;
  for (const Step& step : steps) {
    if (!Committed(outcomes, step.txn)) continue;
    GranuleHistory& h = histories[step.granule];
    if (step.action == Step::Action::kWrite) {
      h.writes[step.version] = step.txn;
    } else {
      h.readers[step.version].push_back(step.txn);
    }
  }

  auto add_arc = [&](TxnId from, TxnId to) {
    if (from == to) return;
    analysis.graph.AddArc(analysis.node_of_txn.at(from),
                          analysis.node_of_txn.at(to));
  };

  for (const auto& [granule, h] : histories) {
    // (1) Reads-from: reader depends on creator.
    for (const auto& [version, readers] : h.readers) {
      auto writer_it = h.writes.find(version);
      // Version 0 is the pre-loaded initial version with no creator; a
      // version absent from `writes` was created by an uncommitted or
      // unknown transaction and contributes no arc.
      if (writer_it == h.writes.end()) continue;
      for (TxnId reader : readers) add_arc(reader, writer_it->second);
    }
    // (2) Anti-dependency along version order: the creator of version k
    // depends on every reader of k's predecessor j.
    for (auto it = h.writes.begin(); it != h.writes.end(); ++it) {
      auto next = std::next(it);
      if (next == h.writes.end()) break;
      const TxnId successor_creator = next->second;
      auto readers_it = h.readers.find(it->first);
      if (readers_it != h.readers.end()) {
        for (TxnId reader : readers_it->second) {
          add_arc(successor_creator, reader);
        }
      }
      if (options.include_version_order_arcs) {
        add_arc(successor_creator, it->second);
      }
    }
    // Also cover reads of the initial version (order_key 0) when it has no
    // recorded write: the first committed writer depends on its readers.
    if (!h.writes.empty() && !h.writes.count(0)) {
      auto readers_it = h.readers.find(0);
      if (readers_it != h.readers.end()) {
        const TxnId first_creator = h.writes.begin()->second;
        for (TxnId reader : readers_it->second) {
          add_arc(first_creator, reader);
        }
      }
    }
  }
  return analysis;
}

SerializabilityReport CheckSerializability(
    const std::vector<Step>& steps,
    const std::unordered_map<TxnId, TxnState>& outcomes,
    const DependencyGraphOptions& options) {
  const DependencyAnalysis analysis =
      BuildDependencyGraph(steps, outcomes, options);
  SerializabilityReport report;
  auto cycle = FindCycle(analysis.graph);
  if (cycle.has_value()) {
    report.serializable = false;
    report.witness_cycle.reserve(cycle->size());
    for (NodeId node : *cycle) {
      report.witness_cycle.push_back(analysis.txn_of_node[node]);
    }
    return report;
  }
  report.serializable = true;
  auto order = TopologicalOrder(analysis.graph);
  // TG arcs point from dependent to dependency, so a valid serial order
  // lists dependencies first: reverse the topological order.
  report.serial_order.reserve(order->size());
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    report.serial_order.push_back(analysis.txn_of_node[*it]);
  }
  return report;
}

SerializabilityReport CheckSerializability(
    const ScheduleRecorder& recorder, const DependencyGraphOptions& options) {
  return CheckSerializability(recorder.steps(), recorder.outcomes(), options);
}

}  // namespace hdd
