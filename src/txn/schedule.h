#ifndef HDD_TXN_SCHEDULE_H_
#define HDD_TXN_SCHEDULE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "storage/version.h"
#include "txn/transaction.h"

namespace hdd {

/// One step of a multi-version schedule: the paper's tuple
///   <transaction id, action, version of a data granule>.
struct Step {
  enum class Action { kRead, kWrite };

  TxnId txn = kInvalidTxn;
  Action action = Action::kRead;
  GranuleRef granule;
  /// Identifies the version: its order_key in the granule's chain. For a
  /// read, the version returned; for a write, the version created.
  std::uint64_t version = 0;
  /// For reads: whether the access was *registered* (read lock set or
  /// read timestamp written) — the paper's overhead unit, fed into the
  /// §7.5 message model.
  bool registered = false;
  /// For HDD Protocol A/C reads: the activity-link or time-wall bound the
  /// read was served under (the read returned the latest committed
  /// version with wts < bound). kTimestampMin when not applicable. The
  /// concurrency oracle replays these bounds against the final version
  /// chains to certify that every unregistered read observed a
  /// time-wall/activity-link-consistent cut.
  Timestamp bound = kTimestampMin;
  /// Global sequence number fixing the physical interleaving.
  std::uint64_t seq = 0;
};

/// Thread-safe recorder of the executed schedule S(T), plus the final fate
/// of each transaction. Controllers call it on every successful operation;
/// the serializability checker consumes the result offline.
///
/// Steps land in per-thread stripes so that concurrent workers do not
/// serialize on one mutex (the recorder sits on every controller's hot
/// path); a global atomic sequence number preserves the physical
/// interleaving, and steps() merges the stripes back into seq order.
class ScheduleRecorder {
 public:
  ScheduleRecorder() = default;

  ScheduleRecorder(const ScheduleRecorder&) = delete;
  ScheduleRecorder& operator=(const ScheduleRecorder&) = delete;

  /// Records the declared identity of a beginning transaction (class,
  /// read-only flag and initiation timestamp), for analyses that need to
  /// know which accesses crossed segment boundaries and which versions a
  /// timestamp-based read was entitled to.
  void RecordBegin(TxnId txn, ClassId txn_class, bool read_only,
                   Timestamp init_ts = kTimestampMin);

  void RecordRead(TxnId txn, GranuleRef granule, std::uint64_t version,
                  bool registered = false, Timestamp bound = kTimestampMin);
  void RecordWrite(TxnId txn, GranuleRef granule, std::uint64_t version);
  void RecordOutcome(TxnId txn, TxnState outcome);

  /// Disables (or re-enables) recording. Benchmarks disable the recorder
  /// so throughput measurements exclude audit bookkeeping; the schedule
  /// then stays empty and CheckSerializability trivially passes.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Declared identities (from RecordBegin).
  struct TxnIdentity {
    ClassId txn_class = kReadOnlyClass;
    bool read_only = false;
    Timestamp init_ts = kTimestampMin;
  };
  std::unordered_map<TxnId, TxnIdentity> identities() const;

  /// Steps merged across stripes into physical (seq) order.
  std::vector<Step> steps() const;

  /// Outcome per transaction; transactions never recorded default-map to
  /// kActive.
  std::unordered_map<TxnId, TxnState> outcomes() const;

  void Clear();

 private:
  static constexpr std::size_t kStripes = 16;

  struct alignas(64) Stripe {
    mutable std::mutex mu;
    std::vector<Step> steps;
  };

  Stripe& MyStripe();
  void Record(TxnId txn, Step::Action action, GranuleRef granule,
              std::uint64_t version, bool registered, Timestamp bound);

  std::array<Stripe, kStripes> stripes_;
  std::atomic<std::uint64_t> next_seq_{0};
  std::atomic<bool> enabled_{true};

  mutable std::mutex meta_mu_;  // outcomes_ and identities_
  std::unordered_map<TxnId, TxnState> outcomes_;
  std::unordered_map<TxnId, TxnIdentity> identities_;
};

}  // namespace hdd

#endif  // HDD_TXN_SCHEDULE_H_
