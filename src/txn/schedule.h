#ifndef HDD_TXN_SCHEDULE_H_
#define HDD_TXN_SCHEDULE_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "storage/version.h"
#include "txn/transaction.h"

namespace hdd {

/// One step of a multi-version schedule: the paper's tuple
///   <transaction id, action, version of a data granule>.
struct Step {
  enum class Action { kRead, kWrite };

  TxnId txn = kInvalidTxn;
  Action action = Action::kRead;
  GranuleRef granule;
  /// Identifies the version: its order_key in the granule's chain. For a
  /// read, the version returned; for a write, the version created.
  std::uint64_t version = 0;
  /// For reads: whether the access was *registered* (read lock set or
  /// read timestamp written) — the paper's overhead unit, fed into the
  /// §7.5 message model.
  bool registered = false;
  /// Global sequence number fixing the physical interleaving.
  std::uint64_t seq = 0;
};

/// Thread-safe recorder of the executed schedule S(T), plus the final fate
/// of each transaction. Controllers call it on every successful operation;
/// the serializability checker consumes the result offline.
class ScheduleRecorder {
 public:
  ScheduleRecorder() = default;

  ScheduleRecorder(const ScheduleRecorder&) = delete;
  ScheduleRecorder& operator=(const ScheduleRecorder&) = delete;

  /// Records the declared identity of a beginning transaction (class and
  /// read-only flag), for analyses that need to know which accesses
  /// crossed segment boundaries.
  void RecordBegin(TxnId txn, ClassId txn_class, bool read_only);

  void RecordRead(TxnId txn, GranuleRef granule, std::uint64_t version,
                  bool registered = false);
  void RecordWrite(TxnId txn, GranuleRef granule, std::uint64_t version);
  void RecordOutcome(TxnId txn, TxnState outcome);

  /// Declared identities (from RecordBegin).
  struct TxnIdentity {
    ClassId txn_class = kReadOnlyClass;
    bool read_only = false;
  };
  std::unordered_map<TxnId, TxnIdentity> identities() const;

  /// Steps in physical order. Copy under lock.
  std::vector<Step> steps() const;

  /// Outcome per transaction; transactions never recorded default-map to
  /// kActive.
  std::unordered_map<TxnId, TxnState> outcomes() const;

  void Clear();

 private:
  void Record(TxnId txn, Step::Action action, GranuleRef granule,
              std::uint64_t version, bool registered);

  mutable std::mutex mu_;
  std::vector<Step> steps_;
  std::unordered_map<TxnId, TxnState> outcomes_;
  std::unordered_map<TxnId, TxnIdentity> identities_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace hdd

#endif  // HDD_TXN_SCHEDULE_H_
