#include "txn/schedule_analysis.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <unordered_set>

namespace hdd {

bool IsSerialSchedule(const std::vector<Step>& steps) {
  std::unordered_set<TxnId> finished;
  TxnId current = kInvalidTxn;
  for (const Step& step : steps) {
    if (step.txn == current) continue;
    if (finished.count(step.txn)) return false;  // came back: interleaved
    if (current != kInvalidTxn) finished.insert(current);
    current = step.txn;
  }
  return true;
}

namespace {

// Canonical arc-set representation of a TG for comparison.
std::set<std::pair<TxnId, TxnId>> ArcSet(
    const std::vector<Step>& steps,
    const std::unordered_map<TxnId, TxnState>& outcomes,
    const DependencyGraphOptions& options) {
  const DependencyAnalysis analysis =
      BuildDependencyGraph(steps, outcomes, options);
  std::set<std::pair<TxnId, TxnId>> arcs;
  for (const auto& [u, v] : analysis.graph.Arcs()) {
    arcs.emplace(analysis.txn_of_node[u], analysis.txn_of_node[v]);
  }
  return arcs;
}

std::set<TxnId> CommittedSet(
    const std::unordered_map<TxnId, TxnState>& outcomes) {
  std::set<TxnId> committed;
  for (const auto& [txn, state] : outcomes) {
    if (state == TxnState::kCommitted) committed.insert(txn);
  }
  return committed;
}

}  // namespace

bool EquivalentSchedules(
    const std::vector<Step>& s1,
    const std::unordered_map<TxnId, TxnState>& outcomes1,
    const std::vector<Step>& s2,
    const std::unordered_map<TxnId, TxnState>& outcomes2,
    const DependencyGraphOptions& options) {
  if (CommittedSet(outcomes1) != CommittedSet(outcomes2)) return false;
  return ArcSet(s1, outcomes1, options) == ArcSet(s2, outcomes2, options);
}

std::vector<Step> SerializeSchedule(
    const std::vector<Step>& steps,
    const std::unordered_map<TxnId, TxnState>& outcomes,
    const std::vector<TxnId>& order) {
  std::unordered_map<TxnId, std::vector<Step>> per_txn;
  for (const Step& step : steps) {
    auto it = outcomes.find(step.txn);
    if (it == outcomes.end() || it->second != TxnState::kCommitted) {
      continue;
    }
    per_txn[step.txn].push_back(step);
  }
  std::vector<Step> serialized;
  serialized.reserve(steps.size());
  std::uint64_t seq = 0;
  for (TxnId txn : order) {
    for (Step step : per_txn[txn]) {
      step.seq = seq++;
      serialized.push_back(step);
    }
  }
  return serialized;
}

bool IsMonoversionConsistent(const std::vector<Step>& steps) {
  std::unordered_map<GranuleRef, std::uint64_t> last_write;
  for (const Step& step : steps) {
    if (step.action == Step::Action::kWrite) {
      last_write[step.granule] = step.version;
      continue;
    }
    auto it = last_write.find(step.granule);
    const std::uint64_t expected = it == last_write.end() ? 0 : it->second;
    if (step.version != expected) return false;
  }
  return true;
}

std::unordered_map<GranuleRef, GranuleStats> AnalyzeGranules(
    const std::vector<Step>& steps) {
  std::unordered_map<GranuleRef, GranuleStats> stats;
  std::unordered_map<GranuleRef, std::unordered_set<TxnId>> txns;
  for (const Step& step : steps) {
    GranuleStats& s = stats[step.granule];
    if (step.action == Step::Action::kRead) {
      ++s.reads;
    } else {
      ++s.writes;
    }
    txns[step.granule].insert(step.txn);
  }
  for (auto& [granule, s] : stats) {
    s.distinct_txns = txns[granule].size();
  }
  return stats;
}

std::vector<std::string> ExplainCycle(
    const std::vector<Step>& steps,
    const std::unordered_map<TxnId, TxnState>& outcomes,
    const std::vector<TxnId>& cycle) {
  std::vector<std::string> lines;
  if (cycle.size() < 2) return lines;
  // Reconstruct, for each consecutive pair (a depends on b), a concrete
  // witness from the schedule.
  const DependencyAnalysis analysis = BuildDependencyGraph(steps, outcomes);
  // writer of each version / readers of each version per granule.
  std::unordered_map<GranuleRef,
                     std::unordered_map<std::uint64_t, TxnId>> writers;
  for (const Step& step : steps) {
    if (step.action == Step::Action::kWrite) {
      writers[step.granule][step.version] = step.txn;
    }
  }
  for (std::size_t i = 0; i + 1 < cycle.size(); ++i) {
    const TxnId a = cycle[i];
    const TxnId b = cycle[i + 1];
    std::ostringstream os;
    os << "t" << a << " depends on t" << b;
    // Find a reads-from witness first.
    bool found = false;
    for (const Step& step : steps) {
      if (step.txn != a || step.action != Step::Action::kRead) continue;
      auto w = writers.find(step.granule);
      if (w == writers.end()) continue;
      auto v = w->second.find(step.version);
      if (v != w->second.end() && v->second == b) {
        os << ": t" << a << " read version " << step.version
           << " of granule (" << step.granule.segment << ","
           << step.granule.index << ") created by t" << b;
        found = true;
        break;
      }
    }
    if (!found) {
      os << " (write-after-read or version order on a shared granule)";
    }
    lines.push_back(os.str());
  }
  return lines;
}

}  // namespace hdd
