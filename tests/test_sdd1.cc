#include "cc/sdd1.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "txn/dependency_graph.h"

namespace hdd {
namespace {

constexpr GranuleRef kEvent{0, 0};      // segment D0, written by class 0
constexpr GranuleRef kInventory{1, 0};  // segment D1, written by class 1

class Sdd1Test : public ::testing::Test {
 protected:
  Sdd1Test() : db_(2, 2, 0) {}

  Database db_;
  LogicalClock clock_;
};

TEST_F(Sdd1Test, UpdateTxnMustDeclareClass) {
  Sdd1 cc(&db_, &clock_);
  EXPECT_FALSE(cc.Begin({.txn_class = kReadOnlyClass}).ok());
  EXPECT_TRUE(cc.Begin({.txn_class = 0}).ok());
  EXPECT_TRUE(cc.Begin({.read_only = true}).ok());
}

TEST_F(Sdd1Test, WriteOutsideOwnSegmentRejected) {
  Sdd1 cc(&db_, &clock_);
  auto txn = cc.Begin({.txn_class = 0});
  EXPECT_EQ(cc.Write(*txn, kInventory, 1).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(cc.Abort(*txn).ok());
}

TEST_F(Sdd1Test, SingleClassPipelineWorks) {
  Sdd1 cc(&db_, &clock_);
  for (int i = 1; i <= 5; ++i) {
    auto txn = cc.Begin({.txn_class = 0});
    auto value = cc.Read(*txn, kEvent);
    ASSERT_TRUE(value.ok());
    ASSERT_TRUE(cc.Write(*txn, kEvent, *value + 1).ok());
    ASSERT_TRUE(cc.Commit(*txn).ok());
  }
  auto reader = cc.Begin({.read_only = true});
  auto value = cc.Read(*reader, kEvent);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 5);
  ASSERT_TRUE(cc.Commit(*reader).ok());
  EXPECT_TRUE(CheckSerializability(cc.recorder()).serializable);
}

TEST_F(Sdd1Test, CrossClassReadBlocksOnOlderWriter) {
  Sdd1 cc(&db_, &clock_);
  auto writer = cc.Begin({.txn_class = 0});  // older, active
  auto reader = cc.Begin({.txn_class = 1});  // younger

  std::atomic<bool> read_done{false};
  Value seen = -1;
  std::thread reading([&] {
    auto value = cc.Read(*reader, kEvent);  // must block on class-0 pipe
    ASSERT_TRUE(value.ok());
    seen = *value;
    read_done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(read_done.load());

  ASSERT_TRUE(cc.Write(*writer, kEvent, 42).ok());
  ASSERT_TRUE(cc.Commit(*writer).ok());
  reading.join();
  EXPECT_TRUE(read_done.load());
  EXPECT_EQ(seen, 42);  // the reader saw the older writer's value
  ASSERT_TRUE(cc.Commit(*reader).ok());
  EXPECT_GT(cc.metrics().blocked_reads.load(), 0u);
  EXPECT_TRUE(CheckSerializability(cc.recorder()).serializable);
}

TEST_F(Sdd1Test, CrossClassReadProceedsWhenPipelineDrained) {
  Sdd1 cc(&db_, &clock_);
  auto writer = cc.Begin({.txn_class = 0});
  ASSERT_TRUE(cc.Write(*writer, kEvent, 7).ok());
  ASSERT_TRUE(cc.Commit(*writer).ok());
  auto reader = cc.Begin({.txn_class = 1});
  auto value = cc.Read(*reader, kEvent);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 7);
  ASSERT_TRUE(cc.Commit(*reader).ok());
  EXPECT_EQ(cc.metrics().blocked_reads.load(), 0u);
}

TEST_F(Sdd1Test, IntraClassPipelineSerializes) {
  Sdd1 cc(&db_, &clock_);
  auto older = cc.Begin({.txn_class = 0});
  auto younger = cc.Begin({.txn_class = 0});

  std::atomic<bool> younger_done{false};
  std::thread young_thread([&] {
    auto value = cc.Read(*younger, kEvent);  // blocks behind `older`
    ASSERT_TRUE(value.ok());
    ASSERT_TRUE(cc.Write(*younger, kEvent, *value + 1).ok());
    ASSERT_TRUE(cc.Commit(*younger).ok());
    younger_done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(younger_done.load());

  ASSERT_TRUE(cc.Write(*older, kEvent, 10).ok());
  ASSERT_TRUE(cc.Commit(*older).ok());
  young_thread.join();

  auto audit = cc.Begin({.read_only = true});
  auto value = cc.Read(*audit, kEvent);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 11);  // increment saw the older write: no lost update
  ASSERT_TRUE(cc.Commit(*audit).ok());
  EXPECT_TRUE(CheckSerializability(cc.recorder()).serializable);
}

TEST_F(Sdd1Test, ReadsAreNeverRegistered) {
  Sdd1 cc(&db_, &clock_);
  auto reader = cc.Begin({.read_only = true});
  ASSERT_TRUE(cc.Read(*reader, kEvent).ok());
  ASSERT_TRUE(cc.Read(*reader, kInventory).ok());
  ASSERT_TRUE(cc.Commit(*reader).ok());
  EXPECT_EQ(cc.metrics().read_timestamps_written.load(), 0u);
  EXPECT_EQ(cc.metrics().read_locks_acquired.load(), 0u);
  EXPECT_EQ(cc.metrics().unregistered_reads.load(), 2u);
}

TEST_F(Sdd1Test, AbortUnblocksPipeline) {
  Sdd1 cc(&db_, &clock_);
  auto older = cc.Begin({.txn_class = 0});
  auto reader = cc.Begin({.txn_class = 1});
  std::atomic<bool> read_done{false};
  std::thread reading([&] {
    auto value = cc.Read(*reader, kEvent);
    ASSERT_TRUE(value.ok());
    EXPECT_EQ(*value, 0);  // aborted write invisible
    read_done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(read_done.load());
  ASSERT_TRUE(cc.Write(*older, kEvent, 9).ok());
  ASSERT_TRUE(cc.Abort(*older).ok());
  reading.join();
  ASSERT_TRUE(cc.Commit(*reader).ok());
}

}  // namespace
}  // namespace hdd
