// Loopback smoke test at CI scale (ctest label `server`, run in Release
// and TSan builds by ci/check.sh): 1k concurrent connections with
// pipelined requests against an in-process server, clean shutdown, zero
// leaked fds. The 10k-connection version lives in bench/bench_server.cc
// (it needs a forked client to stay inside the fd ulimit).

#include <dirent.h>
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>

#include "net/client.h"
#include "net/loopback.h"
#include "net/server.h"
#include "obs/metrics_registry.h"
#include "obs/report.h"

namespace hdd {
namespace {

int CountOpenFds() {
  int count = 0;
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  while (readdir(dir) != nullptr) ++count;
  closedir(dir);
  return count;
}

TEST(NetSmoke, ThousandConnectionsPipelinedCleanShutdown) {
  // HDD_SMOKE_CONNS trims the run for constrained environments.
  const std::size_t kConns =
      static_cast<std::size_t>(EnvOr("HDD_SMOKE_CONNS", 1000));
  const std::uint64_t kRequestsPerConn =
      EnvOr("HDD_SMOKE_REQUESTS_PER_CONN", 10);

  const int fds_before = CountOpenFds();
  SyntheticWorkloadParams params;
  params.depth = 4;
  params.granules_per_segment = 256;
  auto world = MakeServerWorld(ControllerKind::kHdd, params);
  ASSERT_NE(world, nullptr);

  MetricsRegistry metrics;
  ServerOptions options;
  options.num_io_threads = 2;
  options.num_workers = 4;
  options.num_classes = params.depth;
  options.listen_backlog = 4096;
  options.admission.total_inflight_cap = 4096;
  auto server = std::make_unique<HddServer>(world->cc.get(), options,
                                            &metrics);
  ASSERT_TRUE(server->Start().ok());

  DriverOptions driver;
  driver.port = server->port();
  driver.connections = kConns;
  driver.pipeline = 2;
  driver.requests_per_connection = kRequestsPerConn;
  driver.deadline_seconds = 240.0;
  driver.make_request = [&params](std::size_t, std::uint64_t, Rng& rng) {
    return MakeSyntheticRequest(params, rng);
  };
  const DriverStats stats = RunLoadDriver(driver);

  EXPECT_EQ(stats.connected, kConns);
  EXPECT_EQ(stats.connect_failures, 0u);
  EXPECT_EQ(stats.errors, 0u);
  // Every request answered: committed, failed, or an overload bounce.
  EXPECT_EQ(stats.responses, kConns * kRequestsPerConn);
  EXPECT_EQ(stats.committed + stats.failed + stats.overload,
            stats.responses);
  EXPECT_GT(stats.committed, 0u);

  // Server saw every connection and every frame.
  EXPECT_EQ(metrics.GetCounter("net_accepted").Value(), kConns);
  EXPECT_EQ(metrics.GetCounter("net_frames").Value(),
            kConns * kRequestsPerConn);
  EXPECT_EQ(metrics.GetCounter("net_protocol_errors").Value(), 0u);

  // Clean shutdown: connections torn down, queues empty, no fd leaks.
  server->Stop();
  EXPECT_EQ(server->connection_count(), 0u);
  EXPECT_EQ(metrics.GetGauge("net_connections").Value(), 0u);
  EXPECT_EQ(metrics.GetGauge("net_queue_depth").Value(), 0u);
  server.reset();
  world.reset();
  EXPECT_EQ(CountOpenFds(), fds_before);
}

}  // namespace
}  // namespace hdd
