// Differential test for workload-driven decomposition: the three example
// applications (bank_teller, inventory_app, analytics_walls) run under
// (a) their hand-specified hierarchy and (b) a hierarchy inferred purely
// from a traced run. Both executions must commit the exact same state
// bytes and pass the 1SR oracle; the throughput delta is logged so the
// bench harness has a reference point.

#include <gtest/gtest.h>

#include <iostream>
#include <memory>
#include <vector>

#include "engine/banking_workload.h"
#include "engine/executor.h"
#include "engine/inventory_workload.h"
#include "graph/auto_decompose.h"
#include "hdd/hdd_controller.h"
#include "obs/footprint.h"
#include "txn/dependency_graph.h"

namespace hdd {
namespace {

/// Every latest-committed value in segment/index order — the committed
/// state bytes two equivalent executions must agree on.
std::vector<Value> CommittedState(const Database& db) {
  std::vector<Value> state;
  for (int s = 0; s < db.num_segments(); ++s) {
    for (std::uint32_t i = 0; i < db.segment(s).size(); ++i) {
      const Version* v = db.segment(s).granule(i).LatestCommitted();
      state.push_back(v != nullptr ? v->value : Value{0});
    }
  }
  return state;
}

struct RunResult {
  ExecutorStats stats;
  std::vector<Value> state;
  bool serializable = false;
};

RunResult RunUnder(const Workload& workload, const HierarchySchema& schema,
                   Database* db, std::uint64_t txns, int threads,
                   FootprintRecorder* recorder = nullptr) {
  LogicalClock clock;
  HddControllerOptions options;
  options.footprint = recorder;
  HddController cc(db, &clock, &schema, options);
  ExecutorOptions eopts;
  eopts.num_threads = threads;
  eopts.seed = 7;
  RunResult result;
  result.stats = RunWorkload(cc, workload, txns, eopts);
  result.serializable = CheckSerializability(cc.recorder()).serializable;
  result.state = CommittedState(*db);
  return result;
}

/// Runs the whole hand-vs-inferred differential for one workload:
///  1. trace a deterministic run under the hand schema;
///  2. infer a decomposition from the trace alone, at granule level (the
///     full pipeline) and at segment level (the structure the controller
///     actually runs), validating every candidate;
///  3. re-run the same deterministic workload under the inferred schema
///     and demand byte-identical committed state plus the 1SR oracle;
///  4. run once more with real concurrency under the inferred schema.
void DifferentialCheck(const char* label, const Workload& workload,
                       const PartitionSpec& hand_spec,
                       const std::function<std::unique_ptr<Database>()>&
                           make_db,
                       std::uint64_t txns) {
  SCOPED_TRACE(label);
  auto hand_schema = HierarchySchema::Create(hand_spec);
  ASSERT_TRUE(hand_schema.ok()) << hand_schema.status();

  // --- 1. Trace a deterministic run under the hand structure. ---------
  auto trace_db = make_db();
  FootprintRecorder recorder;
  RunResult traced =
      RunUnder(workload, *hand_schema, trace_db.get(), txns, 1, &recorder);
  ASSERT_EQ(traced.stats.failed, 0u);
  ASSERT_TRUE(traced.serializable);

  std::vector<std::uint32_t> segment_base;
  std::uint32_t flat_count = 0;
  for (int s = 0; s < trace_db->num_segments(); ++s) {
    segment_base.push_back(flat_count);
    flat_count += trace_db->segment(s).size();
  }
  FootprintTrace flat_trace;
  FootprintTrace seg_trace;
  for (const RawFootprint& fp : recorder.Drain()) {
    std::vector<std::uint32_t> fw, fr, sw, sr;
    for (std::uint64_t p : fp.writes) {
      fw.push_back(segment_base[FootprintRecorder::Segment(p)] +
                   FootprintRecorder::Index(p));
      sw.push_back(FootprintRecorder::Segment(p));
    }
    for (std::uint64_t p : fp.reads) {
      fr.push_back(segment_base[FootprintRecorder::Segment(p)] +
                   FootprintRecorder::Index(p));
      sr.push_back(FootprintRecorder::Segment(p));
    }
    flat_trace.Add(std::move(fw), std::move(fr));
    seg_trace.Add(std::move(sw), std::move(sr));
  }
  ASSERT_EQ(flat_trace.num_transactions(), traced.stats.committed);

  // --- 2. Infer. Granule level first: the full automatic pipeline. ----
  auto flat_inferred = InferBestDecomposition(flat_count, flat_trace);
  ASSERT_TRUE(flat_inferred.ok()) << flat_inferred.status();
  EXPECT_TRUE(
      ValidateDecomposition(flat_inferred->decomposition, flat_count).ok());
  EXPECT_TRUE(
      ValidateAgainstTrace(flat_inferred->decomposition, flat_trace).ok());
  std::cout << "[" << label << "] granule-level inference: "
            << flat_inferred->decomposition.num_segments << " segments from "
            << flat_count << " granules, modeled cost "
            << flat_inferred->modeled_cost_us << "us, support "
            << flat_inferred->support_threshold << "\n";

  // Segment level: the same physical layout the database already has, so
  // the inferred structure can host the unmodified workload programs.
  auto seg_inferred =
      InferBestDecomposition(trace_db->num_segments(), seg_trace);
  ASSERT_TRUE(seg_inferred.ok()) << seg_inferred.status();
  ASSERT_TRUE(ValidateDecomposition(seg_inferred->decomposition,
                                    trace_db->num_segments())
                  .ok());
  ASSERT_TRUE(
      ValidateAgainstTrace(seg_inferred->decomposition, seg_trace).ok());
  // These applications' types each write one physical segment, so the
  // inference must keep every segment its own class (max concurrency) —
  // the same shape the hand spec declares.
  ASSERT_EQ(seg_inferred->decomposition.num_segments,
            trace_db->num_segments());

  // Rebuild a declared spec over the PHYSICAL segment ids from the
  // inferred shaping types: txn_class values in the workload programs are
  // root-segment ids, so the inferred schema must speak the same ids.
  PartitionSpec inferred_spec;
  inferred_spec.segment_names = hand_spec.segment_names;
  for (const TracedFootprint& type : seg_inferred->shaping_types) {
    ASSERT_EQ(type.write_granules.size(), 1u)
        << "a traced type wrote two physical segments under the hand "
           "schema — the controller should have rejected it";
    TransactionTypeSpec t;
    t.root_segment = static_cast<SegmentId>(type.write_granules[0]);
    t.name = "inferred_" + std::to_string(inferred_spec.transaction_types.size());
    for (std::uint32_t r : type.read_granules) {
      t.read_segments.push_back(static_cast<SegmentId>(r));
    }
    inferred_spec.transaction_types.push_back(std::move(t));
  }
  auto inferred_schema = HierarchySchema::Create(inferred_spec);
  ASSERT_TRUE(inferred_schema.ok())
      << "inferred spec rejected by the model check: "
      << inferred_schema.status();

  // --- 3. Same deterministic workload under both structures. ----------
  auto hand_db = make_db();
  RunResult hand =
      RunUnder(workload, *hand_schema, hand_db.get(), txns, 1);
  auto inferred_db = make_db();
  RunResult inferred =
      RunUnder(workload, *inferred_schema, inferred_db.get(), txns, 1);

  ASSERT_EQ(hand.stats.failed, 0u);
  ASSERT_EQ(inferred.stats.failed, 0u)
      << "the inferred hierarchy rejected transactions the hand one admits";
  EXPECT_TRUE(hand.serializable);
  EXPECT_TRUE(inferred.serializable);
  EXPECT_EQ(hand.state, inferred.state)
      << "committed state diverged between hand and inferred hierarchies";

  const double delta = hand.stats.Throughput() > 0
                           ? inferred.stats.Throughput() /
                                 hand.stats.Throughput()
                           : 0.0;
  std::cout << "[" << label << "] throughput hand="
            << hand.stats.Throughput() << " txn/s, inferred="
            << inferred.stats.Throughput() << " txn/s (ratio " << delta
            << ")\n";

  // --- 4. The inferred structure under real concurrency. --------------
  auto concurrent_db = make_db();
  RunResult concurrent =
      RunUnder(workload, *inferred_schema, concurrent_db.get(), txns, 4);
  EXPECT_EQ(concurrent.stats.failed, 0u);
  EXPECT_TRUE(concurrent.serializable)
      << "inferred hierarchy broke 1SR under concurrency";
}

TEST(DifferentialDecomposeTest, BankTeller) {
  BankingWorkloadParams params;
  params.accounts = 16;
  params.deposit_weight = 0;
  params.transfer_weight = 0.9;
  params.audit_weight = 0.1;
  BankingWorkload workload(params);
  DifferentialCheck("bank_teller", workload, workload.Spec(),
                    [&] { return workload.MakeDatabase(); }, 400);
}

TEST(DifferentialDecomposeTest, InventoryApp) {
  InventoryWorkloadParams params;
  params.items = 8;
  params.event_slots_per_item = 2;
  InventoryWorkload workload(params);
  DifferentialCheck("inventory_app", workload, InventoryWorkload::Spec(),
                    [&] { return workload.MakeDatabase(); }, 400);
}

TEST(DifferentialDecomposeTest, AnalyticsWalls) {
  // The analytics_walls mix: a live update stream with a heavy ad-hoc
  // read-only audit share riding Protocol C.
  InventoryWorkloadParams params;
  params.items = 8;
  params.event_slots_per_item = 2;
  params.type1_weight = 0.3;
  params.type2_weight = 0.2;
  params.type3_weight = 0.1;
  params.type4_weight = 0.1;
  params.read_only_weight = 0.3;
  InventoryWorkload workload(params);
  DifferentialCheck("analytics_walls", workload, InventoryWorkload::Spec(),
                    [&] { return workload.MakeDatabase(); }, 400);
}

}  // namespace
}  // namespace hdd
