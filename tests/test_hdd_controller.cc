#include "hdd/hdd_controller.h"

#include <gtest/gtest.h>

#include <memory>

#include "txn/dependency_graph.h"

namespace hdd {
namespace {

// The paper's Figure 2 inventory application (see test_dhg.cc):
// segments events(0) <- inventory(1) <- orders(2) <- suppliers(3).
PartitionSpec InventorySpec() {
  PartitionSpec spec;
  spec.segment_names = {"events", "inventory", "orders", "suppliers"};
  spec.transaction_types = {
      {"log_event", 0, {}},
      {"post_inventory", 1, {0}},
      {"reorder", 2, {0, 1}},
      {"supplier_profile", 3, {0, 2}},
  };
  return spec;
}

constexpr GranuleRef kEvent{0, 0};
constexpr GranuleRef kInventory{1, 0};
constexpr GranuleRef kOrder{2, 0};
constexpr GranuleRef kSupplier{3, 0};

class HddControllerTest : public ::testing::Test {
 protected:
  HddControllerTest() : db_(4, 2, 0) {
    auto schema = HierarchySchema::Create(InventorySpec());
    EXPECT_TRUE(schema.ok());
    schema_ = std::make_unique<HierarchySchema>(std::move(schema).value());
    cc_ = std::make_unique<HddController>(&db_, &clock_, schema_.get());
  }

  Database db_;
  LogicalClock clock_;
  std::unique_ptr<HierarchySchema> schema_;
  std::unique_ptr<HddController> cc_;
};

TEST_F(HddControllerTest, UpdateTxnMustDeclareClass) {
  EXPECT_FALSE(cc_->Begin({.txn_class = kReadOnlyClass}).ok());
  EXPECT_FALSE(cc_->Begin({.txn_class = 99}).ok());
  EXPECT_TRUE(cc_->Begin({.txn_class = 1}).ok());
}

TEST_F(HddControllerTest, WriteOutsideRootSegmentRejected) {
  auto txn = cc_->Begin({.txn_class = 1});
  EXPECT_EQ(cc_->Write(*txn, kEvent, 1).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(cc_->Abort(*txn).ok());
}

TEST_F(HddControllerTest, ReadBelowOwnClassRejected) {
  // Class 1 reading segment 2 (a LOWER segment) is not on a critical path
  // upward — Protocol A is undefined there.
  auto txn = cc_->Begin({.txn_class = 1});
  EXPECT_EQ(cc_->Read(*txn, kOrder).status().code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(cc_->Abort(*txn).ok());
}

TEST_F(HddControllerTest, ProtocolBReadWriteOwnSegment) {
  auto txn = cc_->Begin({.txn_class = 0});
  ASSERT_TRUE(cc_->Write(*txn, kEvent, 5).ok());
  auto value = cc_->Read(*txn, kEvent);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 5);
  ASSERT_TRUE(cc_->Commit(*txn).ok());
  EXPECT_GT(cc_->metrics().read_timestamps_written.load(), 0u);
}

TEST_F(HddControllerTest, ProtocolAReadIsUnregisteredAndNonBlocking) {
  // An uncommitted class-0 writer does NOT block a class-1 reader: the
  // activity link steers the reader below the writer's timestamp.
  auto writer = cc_->Begin({.txn_class = 0});
  ASSERT_TRUE(cc_->Write(*writer, kEvent, 42).ok());

  auto reader = cc_->Begin({.txn_class = 1});
  auto value = cc_->Read(*reader, kEvent);  // Protocol A
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 0);  // pre-writer state: writer is still active
  ASSERT_TRUE(cc_->Commit(*reader).ok());
  ASSERT_TRUE(cc_->Commit(*writer).ok());

  EXPECT_EQ(cc_->metrics().blocked_reads.load(), 0u);
  EXPECT_EQ(cc_->metrics().read_locks_acquired.load(), 0u);
  EXPECT_EQ(cc_->metrics().unregistered_reads.load(), 1u);
  EXPECT_TRUE(CheckSerializability(cc_->recorder()).serializable);
}

TEST_F(HddControllerTest, ProtocolASeesCommittedOlderWriter) {
  auto writer = cc_->Begin({.txn_class = 0});
  ASSERT_TRUE(cc_->Write(*writer, kEvent, 42).ok());
  ASSERT_TRUE(cc_->Commit(*writer).ok());

  auto reader = cc_->Begin({.txn_class = 1});
  auto value = cc_->Read(*reader, kEvent);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 42);
  ASSERT_TRUE(cc_->Commit(*reader).ok());
}

TEST_F(HddControllerTest, Figure3ScriptIsSerializableUnderHdd) {
  // The very interleaving that breaks 2PL-without-read-locks (Figure 3):
  // under HDD the type-3 transaction's unregistered reads are steered to
  // a consistent cut, so the outcome is serializable.
  auto t3 = cc_->Begin({.txn_class = 2});
  auto y0 = cc_->Read(*t3, kEvent);  // Protocol A
  ASSERT_TRUE(y0.ok());
  EXPECT_EQ(*y0, 0);

  auto t1 = cc_->Begin({.txn_class = 0});
  ASSERT_TRUE(cc_->Write(*t1, kEvent, 1).ok());
  ASSERT_TRUE(cc_->Commit(*t1).ok());

  auto t2 = cc_->Begin({.txn_class = 1});
  auto y1 = cc_->Read(*t2, kEvent);
  ASSERT_TRUE(y1.ok());
  EXPECT_EQ(*y1, 1);
  ASSERT_TRUE(cc_->Write(*t2, kInventory, *y1).ok());
  ASSERT_TRUE(cc_->Commit(*t2).ok());

  // t3 now reads the inventory: the activity link pins it BEFORE t2's
  // posting (t3 is older), keeping the view consistent with its earlier
  // unregistered read of the event record.
  auto x = cc_->Read(*t3, kInventory);
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(*x, 0);
  ASSERT_TRUE(cc_->Write(*t3, kOrder, *x + *y0).ok());
  ASSERT_TRUE(cc_->Commit(*t3).ok());

  auto report = CheckSerializability(cc_->recorder());
  EXPECT_TRUE(report.serializable);
  EXPECT_EQ(cc_->metrics().read_locks_acquired.load(), 0u);
  EXPECT_EQ(cc_->metrics().aborts.load(), 0u);
}

TEST_F(HddControllerTest, ProtocolBConflictsStillDetected) {
  // Within a class, HDD is plain (MV)TO: a late write under a younger
  // registered read aborts.
  auto old_txn = cc_->Begin({.txn_class = 0});
  auto young_txn = cc_->Begin({.txn_class = 0});
  ASSERT_TRUE(cc_->Read(*young_txn, kEvent).ok());
  ASSERT_TRUE(cc_->Commit(*young_txn).ok());
  EXPECT_EQ(cc_->Write(*old_txn, kEvent, 1).code(), StatusCode::kAborted);
  ASSERT_TRUE(cc_->Abort(*old_txn).ok());
}

TEST_F(HddControllerTest, ProtocolCReadOnlyUsesWall) {
  auto t1 = cc_->Begin({.txn_class = 0});
  ASSERT_TRUE(cc_->Write(*t1, kEvent, 10).ok());
  ASSERT_TRUE(cc_->Commit(*t1).ok());

  auto reader = cc_->Begin({.read_only = true});
  auto value = cc_->Read(*reader, kEvent);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 10);
  // Reads from several segments under one wall.
  auto inv = cc_->Read(*reader, kInventory);
  ASSERT_TRUE(inv.ok());
  auto sup = cc_->Read(*reader, kSupplier);
  ASSERT_TRUE(sup.ok());
  ASSERT_TRUE(cc_->Commit(*reader).ok());
  EXPECT_GE(cc_->num_walls(), 1u);
  EXPECT_EQ(cc_->metrics().read_locks_acquired.load(), 0u);
  EXPECT_TRUE(CheckSerializability(cc_->recorder()).serializable);
}

TEST_F(HddControllerTest, ProtocolCSnapshotIsStable) {
  auto reader = cc_->Begin({.read_only = true});
  auto before = cc_->Read(*reader, kEvent);
  ASSERT_TRUE(before.ok());

  auto writer = cc_->Begin({.txn_class = 0});
  ASSERT_TRUE(cc_->Write(*writer, kEvent, 99).ok());
  ASSERT_TRUE(cc_->Commit(*writer).ok());

  auto after = cc_->Read(*reader, kEvent);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*before, *after);  // same wall, same view
  ASSERT_TRUE(cc_->Commit(*reader).ok());
}

TEST_F(HddControllerTest, WallReusedByLaterReaders) {
  ASSERT_TRUE(cc_->ReleaseNewWall().ok());
  const std::size_t walls = cc_->num_walls();
  auto r1 = cc_->Begin({.read_only = true});
  auto r2 = cc_->Begin({.read_only = true});
  ASSERT_TRUE(cc_->Read(*r1, kEvent).ok());
  ASSERT_TRUE(cc_->Read(*r2, kInventory).ok());
  ASSERT_TRUE(cc_->Commit(*r1).ok());
  ASSERT_TRUE(cc_->Commit(*r2).ok());
  EXPECT_EQ(cc_->num_walls(), walls);  // no new wall computed
}

TEST_F(HddControllerTest, AbortRemovesVersionsAndActivity) {
  auto txn = cc_->Begin({.txn_class = 0});
  ASSERT_TRUE(cc_->Write(*txn, kEvent, 7).ok());
  ASSERT_TRUE(cc_->Abort(*txn).ok());
  auto reader = cc_->Begin({.txn_class = 1});
  auto value = cc_->Read(*reader, kEvent);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 0);
  ASSERT_TRUE(cc_->Commit(*reader).ok());
}

TEST_F(HddControllerTest, SafeGcHorizonTracksActivity) {
  const Timestamp idle_horizon = cc_->SafeGcHorizon();
  EXPECT_EQ(idle_horizon, clock_.Now() + 1);
  auto txn = cc_->Begin({.txn_class = 0});
  EXPECT_LE(cc_->SafeGcHorizon(), txn->init_ts);
  ASSERT_TRUE(cc_->Commit(*txn).ok());
  EXPECT_EQ(cc_->SafeGcHorizon(), clock_.Now() + 1);
}

TEST_F(HddControllerTest, GcKeepsVersionsReadersNeed) {
  for (int i = 1; i <= 5; ++i) {
    auto txn = cc_->Begin({.txn_class = 0});
    ASSERT_TRUE(cc_->Write(*txn, kEvent, i).ok());
    ASSERT_TRUE(cc_->Commit(*txn).ok());
  }
  EXPECT_EQ(db_.granule(kEvent).num_versions(), 6u);
  db_.CollectGarbage(cc_->SafeGcHorizon());
  EXPECT_EQ(db_.granule(kEvent).num_versions(), 1u);
  auto reader = cc_->Begin({.txn_class = 1});
  auto value = cc_->Read(*reader, kEvent);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 5);
  ASSERT_TRUE(cc_->Commit(*reader).ok());
}

TEST_F(HddControllerTest, RestructureMergesClasses) {
  // Ad-hoc pattern: write events AND inventory in one transaction.
  auto merged = cc_->Restructure({0, 1}, {});
  ASSERT_TRUE(merged.ok()) << merged.status();
  EXPECT_EQ(cc_->ClassOfSegment(0), *merged);
  EXPECT_EQ(cc_->ClassOfSegment(1), *merged);

  auto txn = cc_->Begin({.txn_class = *merged});
  ASSERT_TRUE(cc_->Write(*txn, kEvent, 1).ok());
  ASSERT_TRUE(cc_->Write(*txn, kInventory, 2).ok());
  ASSERT_TRUE(cc_->Commit(*txn).ok());

  // Other classes keep working, remapped onto the merged hierarchy.
  auto reorder = cc_->Begin({.txn_class = cc_->ClassOfSegment(2)});
  ASSERT_TRUE(cc_->Read(*reorder, kEvent).ok());
  ASSERT_TRUE(cc_->Read(*reorder, kInventory).ok());
  ASSERT_TRUE(cc_->Write(*reorder, kOrder, 3).ok());
  ASSERT_TRUE(cc_->Commit(*reorder).ok());

  EXPECT_TRUE(CheckSerializability(cc_->recorder()).serializable);
}

TEST_F(HddControllerTest, RestructureKeepsUnrelatedClassesLive) {
  // A supplier-class transaction stays active across a merge of 0 and 1.
  auto live = cc_->Begin({.txn_class = 3});
  ASSERT_TRUE(cc_->Write(*live, kSupplier, 5).ok());
  auto merged = cc_->Restructure({0, 1}, {});
  ASSERT_TRUE(merged.ok());
  ASSERT_TRUE(cc_->Commit(*live).ok());
  EXPECT_TRUE(CheckSerializability(cc_->recorder()).serializable);
}

TEST_F(HddControllerTest, BasicToProtocolBVariant) {
  HddControllerOptions options;
  options.protocol_b = ProtocolBEngine::kBasicTo;
  HddController cc(&db_, &clock_, schema_.get(), options);
  auto old_txn = cc.Begin({.txn_class = 0});
  auto young_txn = cc.Begin({.txn_class = 0});
  ASSERT_TRUE(cc.Write(*young_txn, kEvent, 9).ok());
  ASSERT_TRUE(cc.Commit(*young_txn).ok());
  // Basic TO rejects the old transaction's READ of a younger version.
  EXPECT_EQ(cc.Read(*old_txn, kEvent).status().code(),
            StatusCode::kAborted);
  ASSERT_TRUE(cc.Abort(*old_txn).ok());
}

TEST_F(HddControllerTest, InventoryPipelineEndToEnd) {
  // Runs the paper's full motivating pipeline and audits serializability.
  for (int round = 0; round < 10; ++round) {
    auto t1 = cc_->Begin({.txn_class = 0});
    auto ev = cc_->Read(*t1, kEvent);
    ASSERT_TRUE(ev.ok());
    ASSERT_TRUE(cc_->Write(*t1, kEvent, *ev + 1).ok());
    ASSERT_TRUE(cc_->Commit(*t1).ok());

    auto t2 = cc_->Begin({.txn_class = 1});
    auto total = cc_->Read(*t2, kEvent);
    ASSERT_TRUE(total.ok());
    ASSERT_TRUE(cc_->Write(*t2, kInventory, *total).ok());
    ASSERT_TRUE(cc_->Commit(*t2).ok());

    auto t3 = cc_->Begin({.txn_class = 2});
    auto inv = cc_->Read(*t3, kInventory);
    auto arr = cc_->Read(*t3, kEvent);
    ASSERT_TRUE(inv.ok());
    ASSERT_TRUE(arr.ok());
    ASSERT_TRUE(cc_->Write(*t3, kOrder, *inv + *arr).ok());
    ASSERT_TRUE(cc_->Commit(*t3).ok());
  }
  auto report = CheckSerializability(cc_->recorder());
  EXPECT_TRUE(report.serializable);
  EXPECT_EQ(cc_->metrics().aborts.load(), 0u);
  EXPECT_EQ(cc_->metrics().blocked_reads.load(), 0u);
  // Cross-class reads were never registered.
  EXPECT_GT(cc_->metrics().unregistered_reads.load(), 0u);
}

}  // namespace
}  // namespace hdd
