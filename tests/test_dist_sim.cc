// Deterministic-simulation model checker for the DISTRIBUTED deployment:
// N logical shard nodes in one process (DistWorld), every message
// delivery, fault and scheduling decision drawn from the seeded
// SimScheduler, and every completed history checked with the full 1SR +
// bound-replay oracle over the MERGED multi-node history.
//
// Three sweeps:
//  1. message faults (delay / reorder / duplicate) + transaction-level
//     faults, oracle on the merged history — the distributed Protocol A
//     acceptance sweep;
//  2. whole-cluster process crashes: every node's simulated WAL storage
//     loses a random unsynced suffix, every node recovers independently,
//     prepared 2PC residue is resolved by consulting the COORDINATOR's
//     durable log, and the durable slice of the merged history must still
//     be one-copy serializable against the merged recovered chains;
//  3. the canary: with `mutation_stale_bound_snapshot` cross-node reads
//     are served at the raw initiation time instead of the slice-evaluated
//     activity-link bound, and the sweep MUST catch that with a
//     byte-for-byte replayable seed — a harness that cannot see the
//     mutation is broken.
//
// Environment knobs (also used by ci/check.sh):
//   HDD_SIM_DIST_SEEDS        message-fault sweep seeds (default 500)
//   HDD_SIM_DIST_CRASH_SEEDS  cluster-crash sweep seeds (default 200)
//   HDD_SIM_DIST_CANARY_SEEDS canary sweep seeds (default 150)
//   HDD_SIM_FIRST_SEED        first seed of every sweep (default 1)

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "dist/dist_world.h"
#include "sim/explorer.h"
#include "sim/sim_scheduler.h"
#include "storage/database.h"
#include "wal/recovery.h"
#include "wal/wal_manager.h"

namespace hdd {
namespace {

std::uint64_t EnvOr(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

std::uint64_t FirstSeed() { return EnvOr("HDD_SIM_FIRST_SEED", 1); }

// Transaction-level fault mix for the distributed sweeps. Per-attempt
// kCrash is deliberately ZERO everywhere: a crashed DistSession driver
// abandons its registered transaction and its prepared participants
// without aborting them, so a later same-granule Protocol B access can
// block forever on the uncommitted residue — a real blocked-2PC outcome,
// but one that reads as a deadlock to the scheduler. Whole-process
// crashes (sweep 2) cover the crash axis instead: there the entire
// cluster halts and recovery resolves the residue from the logs.
FaultInjectorConfig DistFaults() {
  FaultInjectorConfig faults;
  faults.abort_prob = 0.10;
  faults.stall_prob = 0.10;
  faults.spurious_wakeup_prob = 0.05;
  faults.delayed_wakeup_prob = 0.10;
  return faults;
}

DistWorldOptions BaseOptions() {
  DistWorldOptions options;
  options.num_nodes = 2;
  options.depth = 4;
  options.granules_per_segment = 2;
  // home(3) is never node 0 for 2..4-node contiguous splits, so this
  // override keeps the two-phase commit path hot in every sweep.
  options.owner_overrides = {{SegmentId{3}, 0}};
  options.txns_per_node = 4;
  options.workers_per_node = 2;
  options.pumps_per_node = 2;
  options.read_only_fraction = 0.3;
  options.own_reads = 1;
  options.own_writes = 2;
  options.upper_reads = 1;
  options.with_wal = true;
  options.wal.group.mode = WalSyncMode::kGroupCommit;
  return options;
}

// Derives per-run nondeterminism (message-fault draws, workload mix) from
// the scheduler seed so failing seeds replay byte-for-byte.
void SeedOptions(DistWorldOptions& options, const SimScheduler& sched) {
  options.transport.seed = sched.seed() * 0x9E3779B97F4A7C15ULL + 0xD1D5;
  options.workload_seed = sched.seed() * 31 + 7;
}

void ExpectSweepClean(const SeedSweepReport& report, const char* what) {
  for (const SimFailure& failure : report.failures) {
    ADD_FAILURE() << what << " seed " << failure.seed << ": "
                  << failure.message << "\n  replayed_identically="
                  << failure.replayed_identically << "\n  replay: "
                  << failure.replay_command;
  }
}

// --- Sweep 1: message faults. ---------------------------------------------

TEST(DistSim, MessageFaultSeedSweepPassesOracle) {
  SimScheduler::Options base;
  base.faults = DistFaults();

  std::atomic<std::uint64_t> committed{0};
  const SimWorkloadFn fn = [&committed](SimScheduler& sched) -> std::string {
    DistWorldOptions options = BaseOptions();
    // 2, 3 or 4 logical nodes, by seed: the same sweep covers every
    // shard-count the acceptance criteria name.
    options.num_nodes = 2 + static_cast<int>(sched.seed() % 3);
    options.transport.delay_prob = 0.25;
    options.transport.reorder_prob = 0.25;
    options.transport.duplicate_prob = 0.15;
    SeedOptions(options, sched);
    DistWorld world(options, &sched);
    if (!world.init_error().empty()) return world.init_error();
    const std::string run = world.RunWorkload();
    if (sched.halted()) {
      return "";  // deadlock/budget findings are RunSimulation's to report
    }
    if (!run.empty()) return run;
    committed.fetch_add(world.committed(), std::memory_order_relaxed);
    return world.CheckHistory();
  };

  const std::uint64_t seeds = EnvOr("HDD_SIM_DIST_SEEDS", 500);
  const SeedSweepReport report =
      RunSeedSweep(base, FirstSeed(), seeds, fn, "ctest -R test_dist_sim");
  ExpectSweepClean(report, "dist-message-fault");
  EXPECT_EQ(report.runs, seeds);
  EXPECT_GT(report.faults_injected, 0u);
  EXPECT_GT(committed.load(), 0u);
  std::cout << "dist message-fault sweep: " << report.runs << " runs, "
            << committed.load() << " committed txns, "
            << report.faults_injected << " faults injected" << std::endl;
}

// --- Sweep 2: whole-cluster crashes. --------------------------------------

struct DistCrashCounters {
  std::atomic<std::uint64_t> process_crashes{0};
  std::atomic<std::uint64_t> recoveries{0};
  std::atomic<std::uint64_t> reinstalled_prepares{0};
  std::atomic<std::uint64_t> dropped_prepares{0};
};

// One distributed run with durability: run (to a process crash, or to
// quiescence), crash every node's storage, recover every node
// independently, resolve 2PC residue from the coordinator logs, and check
// the durable slice of the merged history against the merged recovered
// chains.
SimWorkloadFn DistCrashWorkload(DistCrashCounters* counters) {
  return [counters](SimScheduler& sched) -> std::string {
    DistWorldOptions options = BaseOptions();
    options.txns_per_node = 5;
    options.transport.delay_prob = 0.15;
    options.transport.duplicate_prob = 0.10;
    SeedOptions(options, sched);
    DistWorld world(options, &sched);
    if (!world.init_error().empty()) return world.init_error();
    const std::string run = world.RunWorkload();
    if (sched.halted() && !sched.process_crashed()) {
      return "";  // deadlock/budget findings are RunSimulation's to report
    }
    if (sched.process_crashed()) {
      counters->process_crashes.fetch_add(1, std::memory_order_relaxed);
    } else {
      if (!run.empty()) return run;
      // Clean completion: check the live history too, then die at
      // quiescence — recovery must also be exact when nothing was lost.
      const std::string live = world.CheckHistory();
      if (!live.empty()) return "live history: " + live;
    }

    const int nodes = world.num_nodes();

    // --- The whole cluster dies: every node's storage loses a random
    // unsynced suffix, independently per node but derived from the run's
    // seed so failing seeds replay byte-for-byte.
    std::vector<RecoveryReport> reports;
    std::vector<std::unique_ptr<Database>> recovered;
    for (int n = 0; n < nodes; ++n) {
      Rng crash_rng(sched.seed() ^ (0xD15C0ULL + static_cast<std::uint64_t>(n)));
      world.storage(n).Crash(crash_rng);
      recovered.push_back(world.MakeFreshDatabase());
      auto report = RecoverDatabase(&world.storage(n), recovered.back().get());
      if (!report.ok()) {
        return "node " + std::to_string(n) +
               " recovery failed: " + report.status().ToString();
      }
      reports.push_back(std::move(*report));
    }
    counters->recoveries.fetch_add(1, std::memory_order_relaxed);

    // --- Durability contract, per node: DistSession records kCommitted
    // only after the commit record is durable in the HOME node's WAL
    // (cc_->Commit for local transactions, CommitDurablePhase for 2PC
    // coordinators), so every recorded-committed update transaction must
    // be in its home's durable set.
    for (int n = 0; n < nodes; ++n) {
      const ScheduleRecorder& rec = world.controller(n).recorder();
      std::unordered_set<TxnId> writers;
      for (const Step& s : rec.steps()) {
        if (s.action == Step::Action::kWrite) writers.insert(s.txn);
      }
      for (const auto& [txn, state] : rec.outcomes()) {
        if (state != TxnState::kCommitted) continue;
        if (writers.count(txn) == 0) continue;  // nothing to make durable
        if (reports[n].durable_commits.count(txn) == 0) {
          return "acked commit lost across cluster crash: node " +
                 std::to_string(n) + " txn " + std::to_string(txn);
        }
      }
    }

    // --- Merged recovered database: each segment's chains come from its
    // OWNER node's recovered image.
    std::unique_ptr<Database> merged = world.MakeFreshDatabase();
    for (SegmentId s = 0; s < static_cast<SegmentId>(options.depth); ++s) {
      const int owner = world.shard_map().owner(s);
      for (std::uint32_t g = 0; g < options.granules_per_segment; ++g) {
        const GranuleRef ref{s, g};
        Status restored = merged->granule(ref).RestoreVersions(
            recovered[owner]->granule(ref).versions());
        if (!restored.ok()) return restored.ToString();
      }
    }

    // --- Resolve 2PC residue: a participant's in-doubt prepared write is
    // committed iff the COORDINATOR's durable log says so (transaction
    // ids are namespaced per home node, so the coordinator is id >> 32).
    // Soundness: the coordinator only makes its commit record durable
    // after every prepare was acked durable, so a durable verdict always
    // finds the shipped write; a dropped write belongs to a transaction
    // that was never acked committed anywhere and whose versions no
    // bounded read could observe (they were never committed).
    for (int n = 0; n < nodes; ++n) {
      for (const RecoveryReport::PreparedWrite& pw :
           reports[n].prepared_writes) {
        if (world.shard_map().owner(pw.segment) != n) continue;
        const int coord = static_cast<int>(pw.txn >> 32);
        if (coord < 0 || coord >= nodes ||
            reports[coord].durable_commits.count(pw.txn) == 0) {
          counters->dropped_prepares.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        Version v;
        v.order_key = pw.init_ts;
        v.wts = pw.init_ts;
        v.creator = pw.txn;
        v.value = pw.value;
        v.committed = true;
        Status inserted =
            merged->granule(GranuleRef{pw.segment, pw.granule}).Insert(v);
        if (!inserted.ok()) {
          return "prepared reinstall failed: " + inserted.ToString();
        }
        counters->reinstalled_prepares.fetch_add(1, std::memory_order_relaxed);
      }
    }

    // --- The durable slice of the merged history: recorded-committed
    // read-only transactions (their results are durable by the local read
    // barrier and the cross-node snapshot barrier), plus every
    // home-durable update transaction — recovery's verdict is
    // authoritative even when the crash landed before the outcome was
    // recorded.
    std::vector<Step> combined;
    std::unordered_map<TxnId, TxnState> outcomes;
    std::unordered_map<TxnId, ScheduleRecorder::TxnIdentity> identities;
    for (int n = 0; n < nodes; ++n) {
      const ScheduleRecorder& rec = world.controller(n).recorder();
      const auto node_outcomes = rec.outcomes();
      const auto node_identities = rec.identities();
      std::unordered_set<TxnId> keep;
      for (const auto& [txn, state] : node_outcomes) {
        if (state != TxnState::kCommitted) continue;
        const auto it = node_identities.find(txn);
        const bool read_only =
            it != node_identities.end() && it->second.read_only;
        if (read_only || reports[n].durable_commits.count(txn) > 0) {
          keep.insert(txn);
        }
      }
      for (const TxnId txn : reports[n].durable_commits) keep.insert(txn);
      std::vector<Step> kept_steps;
      for (const Step& s : rec.steps()) {
        if (keep.count(s.txn) > 0) kept_steps.push_back(s);
      }
      AppendRebased(combined, std::move(kept_steps));
      for (const TxnId txn : keep) {
        outcomes[txn] = TxnState::kCommitted;
        const auto it = node_identities.find(txn);
        if (it != node_identities.end()) identities[txn] = it->second;
      }
    }
    const std::string verdict = CheckRecordedHistory(
        combined, outcomes, identities, *merged, /*replay_bounds=*/true);
    if (!verdict.empty()) return "merged durable history: " + verdict;
    return "";
  };
}

TEST(DistSim, ClusterCrashRecoveryResolvesPreparedResidue) {
  SimScheduler::Options base;
  base.faults = DistFaults();
  base.faults.process_crash_prob = 0.001;

  DistCrashCounters counters;
  const std::uint64_t seeds = EnvOr("HDD_SIM_DIST_CRASH_SEEDS", 200);
  const SeedSweepReport report =
      RunSeedSweep(base, FirstSeed(), seeds, DistCrashWorkload(&counters),
                   "ctest -R test_dist_sim");
  ExpectSweepClean(report, "dist-cluster-crash");
  EXPECT_EQ(report.runs, seeds);
  // The sweep is only evidence if crashes actually fired and every run
  // (crashed or quiescent) went through multi-node recovery.
  EXPECT_GT(counters.process_crashes.load(), 0u);
  EXPECT_GT(counters.recoveries.load(), 0u);
  std::cout << "dist crash sweep: " << counters.process_crashes.load()
            << " cluster crashes, " << counters.recoveries.load()
            << " recoveries, " << counters.reinstalled_prepares.load()
            << " prepared writes rolled forward, "
            << counters.dropped_prepares.load()
            << " dropped over " << report.runs << " seeds" << std::endl;
}

// --- Sweep 3: the stale-bound canary. -------------------------------------

TEST(DistSim, StaleBoundCanaryIsCaught) {
  SimScheduler::Options base;
  base.faults = DistFaults();

  const SimWorkloadFn fn = [](SimScheduler& sched) -> std::string {
    DistWorldOptions options = BaseOptions();
    options.txns_per_node = 6;
    options.upper_reads = 2;
    options.read_only_fraction = 0.4;
    options.transport.delay_prob = 0.25;
    options.transport.reorder_prob = 0.20;
    options.session.mutation_stale_bound_snapshot = true;
    SeedOptions(options, sched);
    DistWorld world(options, &sched);
    if (!world.init_error().empty()) return world.init_error();
    const std::string run = world.RunWorkload();
    if (sched.halted()) return "";
    if (!run.empty()) return run;
    return world.CheckHistory();
  };

  const std::uint64_t seeds = EnvOr("HDD_SIM_DIST_CANARY_SEEDS", 150);
  const SeedSweepReport report =
      RunSeedSweep(base, FirstSeed(), seeds, fn, "ctest -R test_dist_sim");
  // The mutation ships unbounded snapshots; the merged-history oracle MUST
  // see it, and every catch must replay byte-for-byte.
  ASSERT_FALSE(report.failures.empty())
      << "stale-bound canary escaped " << report.runs << " seeds";
  for (const SimFailure& failure : report.failures) {
    EXPECT_TRUE(failure.replayed_identically)
        << "canary seed " << failure.seed << " did not replay: "
        << failure.message;
  }
  std::cout << "dist canary sweep: " << report.failures.size()
            << " catches (capped) over " << report.runs << " seeds"
            << std::endl;
}

}  // namespace
}  // namespace hdd
