#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "dist/dist_message.h"
#include "dist/dist_node.h"
#include "dist/dist_world.h"
#include "engine/synthetic_workload.h"
#include "hdd/hdd_controller.h"
#include "storage/database.h"

namespace hdd {
namespace {

// Two logical shard nodes in one process on plain threads (no sim
// scheduler): the full distributed path — slice-shipped Protocol A
// bounds, hosted read-only scopes, owner chains — with the merged
// multi-node history run through the 1SR + bound-replay oracle.
TEST(DistWorldTest, TwoNodeWorkloadPassesMergedOracle) {
  DistWorldOptions options;
  options.num_nodes = 2;
  options.depth = 4;
  options.txns_per_node = 12;
  DistWorld world(options, /*sched=*/nullptr);
  ASSERT_EQ(world.init_error(), "");

  ASSERT_EQ(world.RunWorkload(), "");
  EXPECT_GT(world.committed(), 0u);
  EXPECT_EQ(world.failed(), 0u);
  EXPECT_EQ(world.crashed(), 0u);
  EXPECT_EQ(world.CheckHistory(), "");

  // Node 1 homes classes {2,3}; their upper reads reach segments owned by
  // node 0, so the slice + snapshot path must have been exercised...
  const MessageCounters& counters = world.transport().counters();
  EXPECT_GT(counters.Get(DistMsgType::kActivityReq), 0u);
  EXPECT_GT(counters.Get(DistMsgType::kSnapshotReq), 0u);
  // ...and no 2PC traffic without owner overrides, and — the paper's
  // claim, structural in this implementation — no registration messages.
  EXPECT_EQ(counters.Get(DistMsgType::kPrepareReq), 0u);
  EXPECT_EQ(counters.registration_messages(), 0u);
}

// Owner override: class 3 still registers (and runs) at its home node 1,
// but its segment's authoritative chains live at node 0 — every commit of
// class 3 must two-phase across the nodes.
TEST(DistWorldTest, OwnerOverrideTwoPhasesCommits) {
  DistWorldOptions options;
  options.num_nodes = 2;
  options.depth = 4;
  options.txns_per_node = 12;
  options.read_only_fraction = 0.0;  // updates only: exercise 2PC hard
  options.owner_overrides = {{3, 0}};
  DistWorld world(options, /*sched=*/nullptr);
  ASSERT_EQ(world.init_error(), "");

  ASSERT_EQ(world.RunWorkload(), "");
  EXPECT_GT(world.committed(), 0u);
  EXPECT_EQ(world.CheckHistory(), "");

  const MessageCounters& counters = world.transport().counters();
  EXPECT_GT(counters.Get(DistMsgType::kPrepareReq), 0u);
  EXPECT_GT(counters.Get(DistMsgType::kCommitReq), 0u);
  EXPECT_EQ(counters.registration_messages(), 0u);

  // The prepared-then-committed writes materialized in the OWNER's chains:
  // node 0's segment-3 granules grew beyond the initial version.
  std::size_t versions = 0;
  for (std::uint32_t g = 0; g < options.granules_per_segment; ++g) {
    auto chain = world.controller(0).ExportVersions(3, g);
    ASSERT_TRUE(chain.ok());
    versions += chain->size();
  }
  EXPECT_GT(versions, options.granules_per_segment);
}

// All-read-only mix: every transaction is hosted below its scope's lowest
// class; cross-node scopes evaluate base and bounds from shipped slices.
TEST(DistWorldTest, HostedReadOnlyScopesAcrossNodes) {
  DistWorldOptions options;
  options.num_nodes = 2;
  options.depth = 4;
  options.txns_per_node = 10;
  options.read_only_fraction = 1.0;
  DistWorld world(options, /*sched=*/nullptr);
  ASSERT_EQ(world.init_error(), "");

  ASSERT_EQ(world.RunWorkload(), "");
  EXPECT_EQ(world.committed(),
            static_cast<std::uint64_t>(options.num_nodes) *
                static_cast<std::uint64_t>(options.txns_per_node));
  EXPECT_EQ(world.failed(), 0u);
  EXPECT_EQ(world.CheckHistory(), "");
  // Node 1 sessions host scopes rooted at segment 0, owned by node 0.
  EXPECT_GT(world.transport().counters().Get(DistMsgType::kSnapshotReq), 0u);
}

// Four nodes, one class each: every upper read leaves the node.
TEST(DistWorldTest, FourNodeChainPassesMergedOracle) {
  DistWorldOptions options;
  options.num_nodes = 4;
  options.depth = 4;
  options.txns_per_node = 8;
  options.workers_per_node = 1;
  DistWorld world(options, /*sched=*/nullptr);
  ASSERT_EQ(world.init_error(), "");
  ASSERT_EQ(world.RunWorkload(), "");
  EXPECT_GT(world.committed(), 0u);
  EXPECT_EQ(world.CheckHistory(), "");
  EXPECT_EQ(world.transport().counters().registration_messages(), 0u);
}

TEST(DistNodeTest, HandleDispatchesAndRejectsGarbage) {
  SyntheticWorkloadParams params;
  params.depth = 2;
  SyntheticWorkload workload(params);
  auto schema = HierarchySchema::Create(workload.Spec());
  ASSERT_TRUE(schema.ok());
  std::unique_ptr<Database> db = workload.MakeDatabase();
  LogicalClock clock;
  HddController cc(db.get(), &clock, &*schema,
                   HddControllerOptions{.auto_trim_history = false});
  DistNode node(0, &cc, &clock);

  // Garbage and unknown types are rejected, not crashed on.
  EXPECT_FALSE(node.Handle(1, "").ok());
  EXPECT_FALSE(node.Handle(1, std::string("\xff junk")).ok());

  // Clock service round trip.
  auto tick = node.Handle(1, EncodeClockReq(DistMsgType::kClockTickReq));
  ASSERT_TRUE(tick.ok());
  auto ts = DecodeTimestamp(*tick);
  ASSERT_TRUE(ts.ok());
  EXPECT_GT(*ts, 0u);
  auto now = node.Handle(1, EncodeClockReq(DistMsgType::kClockNowReq));
  ASSERT_TRUE(now.ok());
  auto ts2 = DecodeTimestamp(*now);
  ASSERT_TRUE(ts2.ok());
  EXPECT_GE(*ts2, *ts);

  // Activity request for both classes comes back decodable.
  ActivityReq areq;
  areq.frontier = clock.Now() + 1;
  areq.classes = {0, 1};
  auto slices_raw = node.Handle(1, EncodeActivityReq(areq));
  ASSERT_TRUE(slices_raw.ok());
  auto slices = DecodeSlices(*slices_raw);
  ASSERT_TRUE(slices.ok());
  ASSERT_EQ(slices->size(), 2u);
  EXPECT_EQ((*slices)[0].class_id, 0);
  EXPECT_EQ((*slices)[1].class_id, 1);

  // Snapshot of a fresh granule: exactly the initial committed version.
  auto chain_raw =
      node.Handle(1, EncodeSnapshotReq(SnapshotReq{0, 0}));
  ASSERT_TRUE(chain_raw.ok());
  auto chain = DecodeVersions(*chain_raw);
  ASSERT_TRUE(chain.ok());
  ASSERT_EQ(chain->size(), 1u);
  EXPECT_TRUE((*chain)[0].committed);

  // Out-of-range snapshot fails cleanly.
  EXPECT_FALSE(node.Handle(1, EncodeSnapshotReq(SnapshotReq{9, 0})).ok());
}

TEST(DistNodeTest, ClockServiceUnavailableWithoutClock) {
  SyntheticWorkloadParams params;
  params.depth = 2;
  SyntheticWorkload workload(params);
  auto schema = HierarchySchema::Create(workload.Spec());
  ASSERT_TRUE(schema.ok());
  std::unique_ptr<Database> db = workload.MakeDatabase();
  LogicalClock clock;
  HddController cc(db.get(), &clock, &*schema, HddControllerOptions{});
  DistNode node(1, &cc, /*clock=*/nullptr);
  auto got = node.Handle(0, EncodeClockReq(DistMsgType::kClockTickReq));
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace hdd
