#include "graph/report.h"

#include <gtest/gtest.h>

#include "engine/inventory_workload.h"

namespace hdd {
namespace {

TEST(HierarchyLevelsTest, ChainLevels) {
  Digraph g(4);
  g.AddArc(3, 2);
  g.AddArc(2, 1);
  g.AddArc(1, 0);
  auto tst = TstAnalysis::Create(g);
  ASSERT_TRUE(tst.ok());
  auto levels = HierarchyLevels(*tst);
  EXPECT_EQ(levels, (std::vector<int>{0, 1, 2, 3}));
}

TEST(HierarchyLevelsTest, BranchLevels) {
  // 2 -> 0 <- 1, and 3 -> 1.
  Digraph g(4);
  g.AddArc(2, 0);
  g.AddArc(1, 0);
  g.AddArc(3, 1);
  auto tst = TstAnalysis::Create(g);
  ASSERT_TRUE(tst.ok());
  auto levels = HierarchyLevels(*tst);
  EXPECT_EQ(levels[0], 0);
  EXPECT_EQ(levels[1], 1);
  EXPECT_EQ(levels[2], 1);
  EXPECT_EQ(levels[3], 2);
}

TEST(HierarchyLevelsTest, InducedArcsDoNotInflateLevels) {
  Digraph g(3);
  g.AddArc(2, 1);
  g.AddArc(1, 0);
  g.AddArc(2, 0);  // induced
  auto tst = TstAnalysis::Create(g);
  ASSERT_TRUE(tst.ok());
  auto levels = HierarchyLevels(*tst);
  EXPECT_EQ(levels[2], 2);  // via the critical chain, not the shortcut
}

TEST(DescribeHierarchyTest, MentionsSegmentsAndTypes) {
  auto schema = HierarchySchema::Create(InventoryWorkload::Spec());
  ASSERT_TRUE(schema.ok());
  const std::string report = DescribeHierarchy(*schema);
  EXPECT_NE(report.find("'events' level 0"), std::string::npos);
  EXPECT_NE(report.find("'suppliers' level 3"), std::string::npos);
  EXPECT_NE(report.find("reorder: writes D2, reads D0 D1"),
            std::string::npos);
  // Critical vs induced classification shows up.
  EXPECT_NE(report.find("(critical)"), std::string::npos);
  EXPECT_NE(report.find("(induced)"), std::string::npos);
}

}  // namespace
}  // namespace hdd
