// The canonical Figure 3 / Figure 4 interleaving, driven step by step
// through each controller (non-blocking configurations) and asserting
// exactly what each technique does at each step: proceed, reject (abort)
// or conflict (busy). This is the "comparison of approaches" of Figure 10
// at the granularity of individual accesses.
//
// Script (paper §1.2.1): the derived-data race.
//   step 1: t3 (reorder class) reads event record y       -> sees old
//   step 2: t1 (event class)   writes y, commits
//   step 3: t2 (posting class) reads y, writes inventory x, commits
//   step 4: t3 reads inventory x      <- the dangerous read
//   step 5: t3 writes order record, commits

#include <gtest/gtest.h>

#include <memory>

#include "cc/mvto.h"
#include "cc/timestamp_ordering.h"
#include "cc/two_phase_locking.h"
#include "engine/inventory_workload.h"
#include "hdd/hdd_controller.h"
#include "txn/dependency_graph.h"

namespace hdd {
namespace {

constexpr GranuleRef kY{0, 0};  // event record
constexpr GranuleRef kX{1, 0};  // inventory record
constexpr GranuleRef kZ{2, 0};  // order record

struct StepOutcomes {
  // What happened at each decision point.
  StatusCode t1_write_y = StatusCode::kOk;
  StatusCode t3_read_x = StatusCode::kOk;
  bool serializable = false;
  Value t3_saw_y = -1;
  Value t3_saw_x = -1;
};

StepOutcomes DriveScript(ConcurrencyController& cc) {
  StepOutcomes out;
  auto t3 = cc.Begin({.txn_class = 2});
  EXPECT_TRUE(t3.ok());
  auto y_old = cc.Read(*t3, kY);
  EXPECT_TRUE(y_old.ok());
  out.t3_saw_y = *y_old;

  auto t1 = cc.Begin({.txn_class = 0});
  Status w = cc.Write(*t1, kY, 1);
  out.t1_write_y = w.code();
  if (w.ok()) {
    EXPECT_TRUE(cc.Commit(*t1).ok());
  } else {
    EXPECT_TRUE(cc.Abort(*t1).ok());
  }

  auto t2 = cc.Begin({.txn_class = 1});
  auto y_new = cc.Read(*t2, kY);
  EXPECT_TRUE(y_new.ok());
  EXPECT_TRUE(cc.Write(*t2, kX, *y_new).ok());
  EXPECT_TRUE(cc.Commit(*t2).ok());

  auto x = cc.Read(*t3, kX);
  out.t3_read_x = x.status().code();
  if (x.ok()) {
    out.t3_saw_x = *x;
    EXPECT_TRUE(cc.Write(*t3, kZ, *x).ok());
    EXPECT_TRUE(cc.Commit(*t3).ok());
  } else {
    EXPECT_TRUE(cc.Abort(*t3).ok());
  }
  out.serializable = CheckSerializability(cc.recorder()).serializable;
  return out;
}

TEST(BehaviorMatrixTest, HddLetsEveryoneThroughConsistently) {
  Database db(4, 2, 0);
  LogicalClock clock;
  auto schema = HierarchySchema::Create(InventoryWorkload::Spec());
  HddController cc(&db, &clock, &*schema);
  StepOutcomes out = DriveScript(cc);
  // Nobody blocked, nobody aborted — and t3's view is the OLD cut on
  // both granules, keeping the outcome serializable.
  EXPECT_EQ(out.t1_write_y, StatusCode::kOk);
  EXPECT_EQ(out.t3_read_x, StatusCode::kOk);
  EXPECT_EQ(out.t3_saw_y, 0);
  EXPECT_EQ(out.t3_saw_x, 0);
  EXPECT_TRUE(out.serializable);
  EXPECT_EQ(cc.metrics().read_locks_acquired.load(), 0u);
}

TEST(BehaviorMatrixTest, TwoPhaseBlocksTheWriter) {
  Database db(4, 2, 0);
  LogicalClock clock;
  TwoPhaseLockingOptions options;
  options.deadlock_policy = DeadlockPolicy::kNoWait;
  TwoPhaseLocking cc(&db, &clock, options);
  StepOutcomes out = DriveScript(cc);
  // t3's registered read of y makes t1's write CONFLICT (busy): 2PL pays
  // with blocking where HDD pays nothing.
  EXPECT_EQ(out.t1_write_y, StatusCode::kBusy);
  EXPECT_TRUE(out.serializable);
}

TEST(BehaviorMatrixTest, TimestampOrderingAbortsTheLateReader) {
  Database db(4, 2, 0);
  LogicalClock clock;
  TimestampOrdering cc(&db, &clock);
  StepOutcomes out = DriveScript(cc);
  // t1's write proceeds (no conflicting registration yet)...
  EXPECT_EQ(out.t1_write_y, StatusCode::kOk);
  // ...but t3's dangerous read of x is REJECTED: x was written by the
  // younger t2. TO pays with an abort where HDD pays nothing.
  EXPECT_EQ(out.t3_read_x, StatusCode::kAborted);
  EXPECT_TRUE(out.serializable);
}

TEST(BehaviorMatrixTest, MvtoServesOldVersionLikeHdd) {
  Database db(4, 2, 0);
  LogicalClock clock;
  Mvto cc(&db, &clock);
  StepOutcomes out = DriveScript(cc);
  // Multi-versioning lets t3 read the OLD inventory (like HDD)...
  EXPECT_EQ(out.t1_write_y, StatusCode::kOk);
  EXPECT_EQ(out.t3_read_x, StatusCode::kOk);
  EXPECT_EQ(out.t3_saw_x, 0);
  EXPECT_TRUE(out.serializable);
  // ...but it REGISTERED every one of those reads.
  EXPECT_GT(cc.metrics().read_timestamps_written.load(), 0u);
}

TEST(BehaviorMatrixTest, UnsafeConfigsAdmitTheAnomaly) {
  {
    Database db(4, 2, 0);
    LogicalClock clock;
    TwoPhaseLockingOptions options;
    options.register_reads = false;
    TwoPhaseLocking cc(&db, &clock, options);
    StepOutcomes out = DriveScript(cc);
    EXPECT_EQ(out.t3_saw_y, 0);
    EXPECT_EQ(out.t3_saw_x, 1);  // inconsistent view
    EXPECT_FALSE(out.serializable);
  }
  {
    Database db(4, 2, 0);
    LogicalClock clock;
    TimestampOrderingOptions options;
    options.register_reads = false;
    TimestampOrdering cc(&db, &clock, options);
    StepOutcomes out = DriveScript(cc);
    EXPECT_EQ(out.t3_saw_x, 1);
    EXPECT_FALSE(out.serializable);
  }
}

}  // namespace
}  // namespace hdd
