// Adaptive drift-window sizing: DeriveWindowTxns targets a
// coefficient-of-variation band over recent window distances — noisy
// estimates grow the window, stable ones shrink it — and the Redecomposer
// wires it into Poll()'s trigger. The unit tests pin the derivation's
// edges; the integration tests check the live wiring.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "engine/redecompose.h"
#include "hdd/hdd_controller.h"
#include "obs/footprint.h"
#include "storage/database.h"

namespace hdd {
namespace {

constexpr std::uint64_t kMin = 16;
constexpr std::uint64_t kMax = 256;
constexpr double kCovLo = 0.15;
constexpr double kCovHi = 0.50;

std::uint64_t Derive(const std::vector<double>& distances,
                     std::uint64_t current) {
  return DeriveWindowTxns(distances, current, kMin, kMax, kCovLo, kCovHi);
}

TEST(DeriveWindowTxns, FewerThanThreeSamplesHoldsCurrent) {
  EXPECT_EQ(Derive({}, 64), 64u);
  EXPECT_EQ(Derive({0.5}, 64), 64u);
  EXPECT_EQ(Derive({0.1, 0.9}, 64), 64u);
}

TEST(DeriveWindowTxns, ZeroMeanShrinks) {
  // The workload sits exactly on the baseline: react faster.
  EXPECT_EQ(Derive({0.0, 0.0, 0.0}, 64), 32u);
}

TEST(DeriveWindowTxns, HighCovGrows) {
  // CoV ~1.2, far above the band: the estimate is too noisy to threshold.
  EXPECT_EQ(Derive({0.0, 0.1, 0.9}, 64), 128u);
}

TEST(DeriveWindowTxns, GrowCapsAtMax) {
  EXPECT_EQ(Derive({0.0, 0.1, 0.9}, kMax), kMax);
  EXPECT_EQ(Derive({0.0, 0.1, 0.9}, 200), kMax);
}

TEST(DeriveWindowTxns, LowCovShrinks) {
  // CoV ~0.02: the estimate is steadier than it needs to be.
  EXPECT_EQ(Derive({0.40, 0.41, 0.39}, 64), 32u);
}

TEST(DeriveWindowTxns, ShrinkFloorsAtMin) {
  EXPECT_EQ(Derive({0.40, 0.41, 0.39}, kMin), kMin);
  EXPECT_EQ(Derive({0.0, 0.0, 0.0}, kMin), kMin);
}

TEST(DeriveWindowTxns, InBandHolds) {
  // CoV ~0.20, inside [0.15, 0.50]: hold.
  EXPECT_EQ(Derive({0.3, 0.4, 0.5}, 64), 64u);
}

TEST(DeriveWindowTxns, NeverReturnsZero) {
  // Degenerate bounds still produce a usable (>= 1) window.
  EXPECT_EQ(DeriveWindowTxns({0.0, 0.0, 0.0}, 1, 0, kMax, kCovLo, kCovHi),
            1u);
}

// ---------------------------------------------------------------------
// Integration: the sizer in a live Redecomposer. Footprints are fed via
// FootprintRecorder::Declare (single-segment writes are legal under any
// structure, so no Restructure interferes).

PartitionSpec ChainSpec() {
  PartitionSpec spec;
  spec.segment_names = {"base", "mid", "top"};
  spec.transaction_types = {
      {"t0", 0, {}},
      {"t1", 1, {0}},
      {"t2", 2, {0, 1}},
  };
  return spec;
}

class RedecomposeWindowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = HierarchySchema::Create(ChainSpec());
    ASSERT_TRUE(schema.ok()) << schema.status();
    schema_ = std::make_unique<HierarchySchema>(*std::move(schema));
    db_ = std::make_unique<Database>(3, 2);
    HddControllerOptions copts;
    copts.footprint = &recorder_;
    cc_ = std::make_unique<HddController>(db_.get(), &clock_, schema_.get(),
                                          copts);
  }

  // One window's worth of identical single-granule writes.
  void FeedWindow(std::uint64_t txns) {
    for (std::uint64_t i = 0; i < txns; ++i) {
      recorder_.Declare({FootprintRecorder::Pack(0, 0)}, /*reads=*/{});
    }
  }

  std::unique_ptr<HierarchySchema> schema_;
  std::unique_ptr<Database> db_;
  LogicalClock clock_;
  FootprintRecorder recorder_;
  std::unique_ptr<HddController> cc_;
};

TEST_F(RedecomposeWindowTest, SteadyDistancesShrinkToFloor) {
  RedecomposerOptions ropts;
  ropts.window_txns = 8;
  ropts.window_min_txns = 2;
  ropts.window_max_txns = 32;
  Redecomposer redecomposer(cc_.get(), &recorder_, db_.get(), ropts);
  EXPECT_EQ(redecomposer.stats().window_txns_current, 8u);

  // Identical windows produce distance 0 against the merged baseline
  // (the learning window is excluded from the sizer). After three
  // recorded zero-distance windows each further evaluation halves the
  // window until the floor.
  for (int round = 0; round < 12; ++round) {
    FeedWindow(redecomposer.stats().window_txns_current);
    const Status status = redecomposer.Poll();
    ASSERT_TRUE(status.ok()) << status;
  }
  EXPECT_TRUE(redecomposer.last_error().ok()) << redecomposer.last_error();
  EXPECT_GE(redecomposer.stats().windows, 5u);
  EXPECT_GT(redecomposer.stats().window_shrinks, 0u);
  EXPECT_EQ(redecomposer.stats().window_txns_current, 2u);
  EXPECT_EQ(redecomposer.stats().window_grows, 0u);
}

TEST_F(RedecomposeWindowTest, DisabledAdaptiveHoldsConfiguredSize) {
  RedecomposerOptions ropts;
  ropts.window_txns = 8;
  ropts.adaptive_window = false;
  Redecomposer redecomposer(cc_.get(), &recorder_, db_.get(), ropts);
  for (int round = 0; round < 12; ++round) {
    FeedWindow(8);
    const Status status = redecomposer.Poll();
    ASSERT_TRUE(status.ok()) << status;
  }
  EXPECT_GE(redecomposer.stats().windows, 5u);
  EXPECT_EQ(redecomposer.stats().window_txns_current, 8u);
  EXPECT_EQ(redecomposer.stats().window_grows, 0u);
  EXPECT_EQ(redecomposer.stats().window_shrinks, 0u);
}

TEST_F(RedecomposeWindowTest, ConfiguredSizeBelowFloorWidensTheRange) {
  // window_txns = 4 with the default floor of 16: the range widens so the
  // explicitly small window is honored and can shrink no further.
  RedecomposerOptions ropts;
  ropts.window_txns = 4;
  Redecomposer redecomposer(cc_.get(), &recorder_, db_.get(), ropts);
  EXPECT_EQ(redecomposer.stats().window_txns_current, 4u);
  for (int round = 0; round < 12; ++round) {
    FeedWindow(redecomposer.stats().window_txns_current);
    const Status status = redecomposer.Poll();
    ASSERT_TRUE(status.ok()) << status;
  }
  EXPECT_EQ(redecomposer.stats().window_txns_current, 4u);
  EXPECT_EQ(redecomposer.stats().window_grows, 0u);
}

}  // namespace
}  // namespace hdd
