#include "hdd/link_functions.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace hdd {
namespace {

// Chain THG: class 2 (lowest) -> 1 -> 0 (highest); arcs point up.
Digraph ChainGraph() {
  Digraph g(3);
  g.AddArc(2, 1);
  g.AddArc(1, 0);
  return g;
}

// Branched THG:   3 -> 1 -> 0,  2 -> 1. (0 highest; 3 and 2 are leaves.)
Digraph BranchGraph() {
  Digraph g(4);
  g.AddArc(3, 1);
  g.AddArc(2, 1);
  g.AddArc(1, 0);
  return g;
}

class LinkFunctionsTest : public ::testing::Test {
 protected:
  void Build(const Digraph& g) {
    auto tst = TstAnalysis::Create(g);
    ASSERT_TRUE(tst.ok());
    tst_ = std::make_unique<TstAnalysis>(std::move(tst).value());
    tables_.clear();
    tables_.resize(g.num_nodes());
    eval_ =
        std::make_unique<ActivityLinkEvaluator>(tst_.get(), &tables_);
  }

  std::unique_ptr<TstAnalysis> tst_;
  std::vector<ClassActivityTable> tables_;
  std::unique_ptr<ActivityLinkEvaluator> eval_;
};

TEST_F(LinkFunctionsTest, AIdentityOnSameClass) {
  Build(ChainGraph());
  auto a = eval_->A(1, 1, 42);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, 42u);
}

TEST_F(LinkFunctionsTest, ASingleArcIsIOld) {
  Build(ChainGraph());
  tables_[1].OnBegin(5);  // oldest active txn of class 1
  auto a = eval_->A(2, 1, 10);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, 5u);
}

TEST_F(LinkFunctionsTest, AComposesAlongCriticalPath) {
  // The paper's Figure 6 shape: A_2^0(m) = I^old_0(I^old_1(m)).
  Build(ChainGraph());
  tables_[1].OnBegin(4);   // class 1's oldest active
  tables_[0].OnBegin(2);   // class 0 txn older than that
  tables_[0].OnFinish(2, 3);  // ...but finished at 3 < 4: not active at 4
  tables_[0].OnBegin(3);
  auto a = eval_->A(2, 0, 10);
  ASSERT_TRUE(a.ok());
  // I_old_1(10) = 4; I_old_0(4) = 3 (txn begun at 3 is active at 4).
  EXPECT_EQ(*a, 3u);
}

TEST_F(LinkFunctionsTest, AUndefinedAcrossBranches) {
  Build(BranchGraph());
  EXPECT_FALSE(eval_->A(3, 2, 10).ok());
  EXPECT_FALSE(eval_->A(0, 1, 10).ok());  // wrong direction
}

TEST_F(LinkFunctionsTest, AIdleClassesPassThrough) {
  Build(ChainGraph());
  auto a = eval_->A(2, 0, 17);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, 17u);
}

TEST_F(LinkFunctionsTest, BSingleArcIsCLateAtTop) {
  Build(ChainGraph());
  tables_[1].OnBegin(5);
  tables_[1].OnFinish(5, 20);
  // B_1^2(10): C^late at class 1 only (bottom class 2 excluded).
  auto b = eval_->B(1, 2, 10);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, 20u);
}

TEST_F(LinkFunctionsTest, BBusyWhileTransactionActive) {
  Build(ChainGraph());
  tables_[1].OnBegin(5);
  EXPECT_EQ(eval_->B(1, 2, 10).status().code(), StatusCode::kBusy);
  tables_[1].OnFinish(5, 20);
  EXPECT_TRUE(eval_->B(1, 2, 10).ok());
}

TEST_F(LinkFunctionsTest, EIdentityAndAscendingMatchesA) {
  Build(BranchGraph());
  tables_[1].OnBegin(6);
  tables_[0].OnBegin(3);
  auto e_same = eval_->E(3, 3, 11);
  ASSERT_TRUE(e_same.ok());
  EXPECT_EQ(*e_same, 11u);
  auto e = eval_->E(3, 0, 11);
  auto a = eval_->A(3, 0, 11);
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*e, *a);
}

TEST_F(LinkFunctionsTest, ECrossBranchUpThenDown) {
  Build(BranchGraph());
  // UCP from 3 to 2: 3 -> 1 (up), then 1 -> 2 (down).
  // Up: I_old_1(m); down from 1 to 2: C^late at 1 (bottom 2 excluded).
  tables_[1].OnBegin(5);
  tables_[1].OnFinish(5, 30);
  auto e = eval_->E(3, 2, 10);
  ASSERT_TRUE(e.ok());
  // I_old_1(10) = 5 (txn straddles 10); C_late_1(5) = 5? txn begun at 5 is
  // not active AT 5 (needs I < m). So bound = 5.
  EXPECT_EQ(*e, 5u);
}

TEST_F(LinkFunctionsTest, EDisconnectedClassesInvalid) {
  Digraph g(3);
  g.AddArc(1, 0);
  Build(g);  // class 2 isolated
  EXPECT_FALSE(eval_->E(1, 2, 10).ok());
}

// Randomized validation of the paper's Property 2.1 and 2.2 — the
// load-bearing facts behind time-wall consistency:
//   A_i^j(B_j^i(m)) >= m      and      A_i^j(B_j^i(m) - 1) < m.
TEST_F(LinkFunctionsTest, Properties21And22Randomized) {
  Rng rng(4242);
  for (int trial = 0; trial < 200; ++trial) {
    // Chain of 2-5 classes.
    const int n = static_cast<int>(rng.NextInRange(2, 5));
    Digraph g(n);
    for (int c = n - 1; c > 0; --c) g.AddArc(c, c - 1);
    Build(g);
    // Random fully-finished activity so every C^late is computable.
    Timestamp now = 1;
    for (int c = 0; c < n; ++c) {
      std::vector<Timestamp> open;
      const int events = static_cast<int>(rng.NextInRange(0, 14));
      for (int e = 0; e < events; ++e) {
        if (!open.empty() && rng.NextBool(0.5)) {
          const std::size_t pick = rng.NextBounded(open.size());
          tables_[c].OnFinish(open[pick], ++now);
          open.erase(open.begin() + static_cast<long>(pick));
        } else {
          tables_[c].OnBegin(++now);
          open.push_back(now);
        }
      }
      for (Timestamp t : open) tables_[c].OnFinish(t, ++now);
    }
    const ClassId bottom = n - 1;
    const ClassId top = 0;
    for (int probe = 0; probe < 10; ++probe) {
      const Timestamp m = 2 + rng.NextBounded(now + 4);
      auto b = eval_->B(top, bottom, m);
      ASSERT_TRUE(b.ok()) << b.status();
      auto ab = eval_->A(bottom, top, *b);
      ASSERT_TRUE(ab.ok());
      EXPECT_GE(*ab, m) << "Property 2.1 violated at trial " << trial
                        << " m=" << m << " B=" << *b;
      if (*b > 0) {
        auto ab_eps = eval_->A(bottom, top, *b - 1);
        ASSERT_TRUE(ab_eps.ok());
        EXPECT_LT(*ab_eps, m) << "Property 2.2 violated at trial " << trial
                              << " m=" << m << " B=" << *b;
      }
    }
  }
}

// Property 0.1 (composition): A_i^j = A_k^j o A_i^k for any intermediate
// class k on the critical path.
TEST_F(LinkFunctionsTest, AComposesThroughIntermediates) {
  Rng rng(55);
  Build(ChainGraph());
  Timestamp now = 1;
  for (int c = 0; c < 3; ++c) {
    std::vector<Timestamp> open;
    for (int e = 0; e < 16; ++e) {
      if (!open.empty() && rng.NextBool(0.4)) {
        const std::size_t pick = rng.NextBounded(open.size());
        tables_[c].OnFinish(open[pick], ++now);
        open.erase(open.begin() + static_cast<long>(pick));
      } else {
        tables_[c].OnBegin(++now);
        open.push_back(now);
      }
    }
    for (Timestamp t : open) tables_[c].OnFinish(t, ++now);
  }
  for (Timestamp m = 1; m < now + 3; ++m) {
    auto direct = eval_->A(2, 0, m);
    auto via_1 = eval_->A(2, 1, m);
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(via_1.ok());
    auto hop = eval_->A(1, 0, *via_1);
    ASSERT_TRUE(hop.ok());
    EXPECT_EQ(*direct, *hop) << "composition broken at m=" << m;
  }
}

// A is monotone in m (Property 0.2, used by every transitivity case).
TEST_F(LinkFunctionsTest, AMonotoneRandomized) {
  Rng rng(99);
  Build(ChainGraph());
  Timestamp now = 1;
  for (int c = 0; c < 3; ++c) {
    std::vector<Timestamp> open;
    for (int e = 0; e < 20; ++e) {
      if (!open.empty() && rng.NextBool(0.45)) {
        const std::size_t pick = rng.NextBounded(open.size());
        tables_[c].OnFinish(open[pick], ++now);
        open.erase(open.begin() + static_cast<long>(pick));
      } else {
        tables_[c].OnBegin(++now);
        open.push_back(now);
      }
    }
    for (Timestamp t : open) tables_[c].OnFinish(t, ++now);
  }
  Timestamp prev = 0;
  for (Timestamp m = 1; m < now + 3; ++m) {
    auto a = eval_->A(2, 0, m);
    ASSERT_TRUE(a.ok());
    EXPECT_GE(*a, prev) << "A not monotone at m=" << m;
    prev = *a;
  }
}

}  // namespace
}  // namespace hdd
