// Unit tests for the workload generators and the execution engine.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "engine/banking_workload.h"
#include "engine/executor.h"
#include "engine/harness.h"
#include "engine/inventory_workload.h"
#include "engine/ledger_workload.h"
#include "engine/synthetic_workload.h"
#include "txn/dependency_graph.h"

namespace hdd {
namespace {

// ------------------------------ specs ---------------------------------

TEST(WorkloadSpecTest, InventorySpecIsLegal) {
  EXPECT_TRUE(HierarchySchema::Create(InventoryWorkload::Spec()).ok());
}

TEST(WorkloadSpecTest, SyntheticSpecsLegalAtAllDepths) {
  for (int depth = 1; depth <= 10; ++depth) {
    SyntheticWorkloadParams params;
    params.depth = depth;
    SyntheticWorkload workload(params);
    EXPECT_TRUE(HierarchySchema::Create(workload.Spec()).ok())
        << "depth " << depth;
  }
}

TEST(WorkloadSpecTest, BankingAndLedgerSpecsLegal) {
  BankingWorkload banking;
  EXPECT_TRUE(HierarchySchema::Create(banking.Spec()).ok());
  LedgerWorkload ledger;
  EXPECT_TRUE(HierarchySchema::Create(ledger.Spec()).ok());
}

TEST(WorkloadSpecTest, DatabasesMatchSpecs) {
  InventoryWorkloadParams params;
  params.items = 5;
  params.event_slots_per_item = 3;
  InventoryWorkload workload(params);
  auto db = workload.MakeDatabase();
  EXPECT_EQ(db->num_segments(), 4);
  EXPECT_EQ(db->segment(0).size(), 15u);
  EXPECT_EQ(db->segment(1).size(), 5u);

  LedgerWorkloadParams ledger_params;
  ledger_params.items = 3;
  ledger_params.capacity = 4;
  LedgerWorkload ledger(ledger_params);
  auto ledger_db = ledger.MakeDatabase();
  EXPECT_EQ(ledger_db->segment(0).size(), 15u);  // 3 * (4 + 1)
  EXPECT_EQ(ledger_db->segment(1).size(), 3u);
}

// --------------------------- deterministic mix -------------------------

TEST(WorkloadMixTest, InventoryMixMatchesWeights) {
  InventoryWorkloadParams params;
  params.type1_weight = 1;
  params.type2_weight = 0;
  params.type3_weight = 0;
  params.type4_weight = 0;
  params.read_only_weight = 1;
  InventoryWorkload workload(params);
  Rng rng(5);
  int read_only = 0;
  for (int i = 0; i < 2000; ++i) {
    if (workload.Make(i, rng).options.read_only) ++read_only;
  }
  EXPECT_NEAR(read_only / 2000.0, 0.5, 0.05);
}

TEST(WorkloadMixTest, SameSeedSameClasses) {
  SyntheticWorkload workload;
  Rng a(9), b(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(workload.Make(i, a).options.txn_class,
              workload.Make(i, b).options.txn_class);
  }
}

// ------------------------------ executor -------------------------------

// A controller-independent counting workload.
class CountingWorkload : public Workload {
 public:
  TxnProgram Make(std::uint64_t, Rng&) const override {
    TxnProgram program;
    program.options.txn_class = 0;
    program.body = [](ConcurrencyController& cc,
                      const TxnDescriptor& txn) -> Status {
      HDD_ASSIGN_OR_RETURN(Value v, cc.Read(txn, {0, 0}));
      return cc.Write(txn, {0, 0}, v + 1);
    };
    return program;
  }
};

TEST(ExecutorTest, CommitsExactlyTotal) {
  Database db(1, 1, 0);
  LogicalClock clock;
  auto cc = CreateController(ControllerKind::kMvto, &db, &clock, nullptr);
  CountingWorkload workload;
  ExecutorOptions options;
  options.num_threads = 3;
  ExecutorStats stats = RunWorkload(*cc, workload, 123, options);
  EXPECT_EQ(stats.committed, 123u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(db.granule({0, 0}).LatestCommitted()->value, 123);
}

// A workload whose body always returns a non-retryable error.
class PoisonWorkload : public Workload {
 public:
  TxnProgram Make(std::uint64_t, Rng&) const override {
    TxnProgram program;
    program.options.txn_class = 0;
    program.body = [](ConcurrencyController&, const TxnDescriptor&) {
      return Status::Internal("poisoned");
    };
    return program;
  }
};

TEST(ExecutorTest, HardErrorsCountAsFailed) {
  Database db(1, 1, 0);
  LogicalClock clock;
  auto cc = CreateController(ControllerKind::kMvto, &db, &clock, nullptr);
  PoisonWorkload workload;
  ExecutorOptions options;
  options.num_threads = 2;
  ExecutorStats stats = RunWorkload(*cc, workload, 10, options);
  EXPECT_EQ(stats.committed, 0u);
  EXPECT_EQ(stats.failed, 10u);
}

// A workload that aborts retryably a fixed number of times per txn.
class FlakyWorkload : public Workload {
 public:
  TxnProgram Make(std::uint64_t, Rng&) const override {
    TxnProgram program;
    program.options.txn_class = 0;
    auto counter = std::make_shared<int>(0);
    program.body = [counter](ConcurrencyController&,
                             const TxnDescriptor&) -> Status {
      if (++*counter <= 2) return Status::Aborted("flaky");
      return Status::OK();
    };
    return program;
  }
};

TEST(ExecutorTest, RetryableErrorsAreRetried) {
  Database db(1, 1, 0);
  LogicalClock clock;
  auto cc = CreateController(ControllerKind::kMvto, &db, &clock, nullptr);
  FlakyWorkload workload;
  ExecutorOptions options;
  options.num_threads = 1;
  ExecutorStats stats = RunWorkload(*cc, workload, 5, options);
  EXPECT_EQ(stats.committed, 5u);
  EXPECT_EQ(stats.aborted_attempts, 10u);  // 2 retries each
}

TEST(ExecutorTest, RetryBudgetExhausts) {
  Database db(1, 1, 0);
  LogicalClock clock;
  auto cc = CreateController(ControllerKind::kMvto, &db, &clock, nullptr);
  class AlwaysAborts : public Workload {
   public:
    TxnProgram Make(std::uint64_t, Rng&) const override {
      TxnProgram program;
      program.options.txn_class = 0;
      program.body = [](ConcurrencyController&, const TxnDescriptor&) {
        return Status::Aborted("always");
      };
      return program;
    }
  };
  AlwaysAborts workload;
  ExecutorOptions options;
  options.num_threads = 1;
  options.max_retries = 3;
  ExecutorStats stats = RunWorkload(*cc, workload, 2, options);
  EXPECT_EQ(stats.committed, 0u);
  EXPECT_EQ(stats.failed, 2u);
}

TEST(ExecutorTest, LatencyPercentilesPopulated) {
  Database db(1, 4, 0);
  LogicalClock clock;
  auto cc = CreateController(ControllerKind::kMvto, &db, &clock, nullptr);
  CountingWorkload workload;
  ExecutorOptions options;
  options.num_threads = 2;
  ExecutorStats stats = RunWorkload(*cc, workload, 200, options);
  EXPECT_GT(stats.latency_p50_us, 0.0);
  EXPECT_LE(stats.latency_p50_us, stats.latency_p95_us);
  EXPECT_LE(stats.latency_p95_us, stats.latency_p99_us);
  EXPECT_LE(stats.latency_p99_us, stats.latency_max_us);
}

// ------------------------------ harness --------------------------------

TEST(HarnessTest, AllKindsConstructible) {
  auto schema = HierarchySchema::Create(InventoryWorkload::Spec());
  ASSERT_TRUE(schema.ok());
  Database db(4, 2, 0);
  LogicalClock clock;
  for (ControllerKind kind : AllControllerKinds()) {
    auto cc = CreateController(kind, &db, &clock, &*schema);
    ASSERT_NE(cc, nullptr);
    EXPECT_EQ(cc->name(), ControllerKindName(kind));
  }
}

TEST(HarnessTest, MeasureControllerAudits) {
  InventoryWorkloadParams params;
  params.items = 4;
  InventoryWorkload workload(params);
  auto schema = HierarchySchema::Create(InventoryWorkload::Spec());
  ExecutorOptions options;
  options.num_threads = 2;
  ComparisonRow row = MeasureController(
      ControllerKind::kHdd, workload,
      [&] { return workload.MakeDatabase(); }, &*schema, 50, options);
  EXPECT_EQ(row.controller, "hdd");
  EXPECT_EQ(row.stats.committed, 50u);
  EXPECT_TRUE(row.serializable);
}

// ------------------------------ ledger ---------------------------------

class LedgerAllControllersTest
    : public ::testing::TestWithParam<ControllerKind> {};

TEST_P(LedgerAllControllersTest, WriteOnceLedgerStaysConsistent) {
  LedgerWorkloadParams params;
  params.items = 4;
  params.capacity = 32;
  LedgerWorkload workload(params);
  auto schema = HierarchySchema::Create(workload.Spec());
  ASSERT_TRUE(schema.ok());
  auto db = workload.MakeDatabase();
  LogicalClock clock;
  auto cc = CreateController(GetParam(), db.get(), &clock, &*schema);

  ExecutorOptions options;
  options.num_threads = 4;
  options.seed = 31;
  ExecutorStats stats = RunWorkload(*cc, workload, 300, options);
  // The bodies' own consistency witnesses (unwritten slot below cursor,
  // summary ahead of ledger) return kInternal, which counts as failed.
  EXPECT_EQ(stats.failed, 0u)
      << ControllerKindName(GetParam()) << " violated ledger consistency";
  EXPECT_TRUE(CheckSerializability(cc->recorder()).serializable);

  // Every written slot below each cursor is non-zero and immutable.
  for (std::uint32_t item = 0; item < params.items; ++item) {
    const Value cursor =
        db->granule(workload.Cursor(item)).LatestCommitted()->value;
    for (Value slot = 0; slot < cursor; ++slot) {
      const Granule& g = db->granule(
          workload.Event(item, static_cast<std::uint32_t>(slot)));
      EXPECT_NE(g.LatestCommitted()->value, 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, LedgerAllControllersTest,
    ::testing::ValuesIn(AllControllerKinds()),
    [](const ::testing::TestParamInfo<ControllerKind>& info) {
      std::string name(ControllerKindName(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(LedgerHddTest, SummarizeReadsAreUnregistered) {
  LedgerWorkloadParams params;
  params.items = 2;
  params.capacity = 16;
  params.audit_weight = 0;
  LedgerWorkload workload(params);
  auto schema = HierarchySchema::Create(workload.Spec());
  auto db = workload.MakeDatabase();
  LogicalClock clock;
  auto cc =
      CreateController(ControllerKind::kHdd, db.get(), &clock, &*schema);
  ExecutorOptions options;
  options.num_threads = 2;
  ExecutorStats stats = RunWorkload(*cc, workload, 200, options);
  EXPECT_EQ(stats.failed, 0u);
  // Every ledger read by a summarizer crossed classes: unregistered.
  EXPECT_GT(cc->metrics().unregistered_reads.load(), 0u);
  EXPECT_EQ(cc->metrics().read_locks_acquired.load(), 0u);
}

}  // namespace
}  // namespace hdd
