#include "common/status.h"

#include <gtest/gtest.h>

namespace hdd {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, FactoryConstructors) {
  EXPECT_EQ(Status::Aborted("x").code(), StatusCode::kAborted);
  EXPECT_EQ(Status::Deadlock("x").code(), StatusCode::kDeadlock);
  EXPECT_EQ(Status::Busy("x").code(), StatusCode::kBusy);
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
}

TEST(StatusTest, MessagePreserved) {
  Status s = Status::Aborted("conflict on granule 7");
  EXPECT_EQ(s.message(), "conflict on granule 7");
  EXPECT_EQ(s.ToString(), "Aborted: conflict on granule 7");
}

TEST(StatusTest, RetryableClassification) {
  EXPECT_TRUE(Status::Aborted("x").IsRetryable());
  EXPECT_TRUE(Status::Deadlock("x").IsRetryable());
  EXPECT_FALSE(Status::OK().IsRetryable());
  EXPECT_FALSE(Status::Busy("x").IsRetryable());
  EXPECT_FALSE(Status::InvalidArgument("x").IsRetryable());
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::Aborted("a"), Status::Aborted("b"));
  EXPECT_FALSE(Status::Aborted("a") == Status::Deadlock("a"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "Ok");
  EXPECT_EQ(StatusCodeToString(StatusCode::kDeadlock), "Deadlock");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIoError), "IoError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
}

TEST(StatusTest, StorageCodesAreNotRetryable) {
  // Durability failures must not be retried like conflict aborts: the WAL
  // cannot know what reached the disk, so it goes sticky instead.
  EXPECT_FALSE(Status::IoError("x").IsRetryable());
  EXPECT_FALSE(Status::Corruption("x").IsRetryable());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "missing");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

Status FailingOp() { return Status::Aborted("boom"); }
Status SucceedingOp() { return Status::OK(); }

Status UseReturnIfError(bool fail) {
  if (fail) {
    HDD_RETURN_IF_ERROR(FailingOp());
  } else {
    HDD_RETURN_IF_ERROR(SucceedingOp());
  }
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnIfError) {
  EXPECT_TRUE(UseReturnIfError(false).ok());
  EXPECT_EQ(UseReturnIfError(true).code(), StatusCode::kAborted);
}

Result<int> MakeValue(bool fail) {
  if (fail) return Status::Internal("nope");
  return 7;
}

Result<int> UseAssignOrReturn(bool fail) {
  HDD_ASSIGN_OR_RETURN(int v, MakeValue(fail));
  return v * 2;
}

TEST(StatusMacrosTest, AssignOrReturn) {
  auto ok = UseAssignOrReturn(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 14);
  auto bad = UseAssignOrReturn(true);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace hdd
