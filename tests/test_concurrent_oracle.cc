// Concurrency oracle: every controller, driven by 8 worker threads on the
// banking and synthetic workloads, must produce a one-copy-serializable
// history. The check is constructive, not just "graph acyclic":
//
//   1. the multi-version dependency graph of the recorded schedule is
//      acyclic (paper §2 criterion);
//   2. replaying the topological order as a SERIAL schedule on a
//      single-version store reproduces every recorded read
//      (IsMonoversionConsistent — the 1SR witness);
//   3. for HDD, every Protocol A / Protocol C read carried its activity
//      link or time-wall bound, and replaying that bound against the
//      FINAL version chains returns exactly the version the read saw —
//      i.e. unregistered cross-segment reads observed a stable,
//      time-wall-consistent cut that later commits never perturbed.
//
// These tests are also the core of the TSan suite: they exercise the
// per-class sharded controller paths (latch-free Protocol A reads,
// per-shard Protocol B, wall release, striped txn registry) under real
// thread interleavings.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "engine/banking_workload.h"
#include "engine/executor.h"
#include "engine/harness.h"
#include "engine/synthetic_workload.h"
#include "hdd/hdd_controller.h"
#include "txn/dependency_graph.h"
#include "txn/schedule_analysis.h"

namespace hdd {
namespace {

constexpr int kThreads = 8;

// Runs the full §2 pipeline on whatever `cc` recorded and asserts 1SR.
void ExpectOneCopySerializable(const ConcurrencyController& cc,
                               const std::string& label) {
  const std::vector<Step> steps = cc.recorder().steps();
  const auto outcomes = cc.recorder().outcomes();
  const SerializabilityReport report = CheckSerializability(steps, outcomes);
  if (!report.serializable) {
    std::string narrative;
    for (const std::string& line :
         ExplainCycle(steps, outcomes, report.witness_cycle)) {
      narrative += "\n  " + line;
    }
    FAIL() << label << ": dependency cycle" << narrative;
  }
  // The serial order is only a certificate if the serialized schedule it
  // induces is (a) actually serial and (b) consistent as a SINGLE-version
  // execution — that is the one-copy-serializability witness.
  const std::vector<Step> serialized =
      SerializeSchedule(steps, outcomes, report.serial_order);
  EXPECT_TRUE(IsSerialSchedule(serialized)) << label;
  EXPECT_TRUE(IsMonoversionConsistent(serialized)) << label;
}

class ConcurrentOracleTest : public ::testing::TestWithParam<ControllerKind> {
};

TEST_P(ConcurrentOracleTest, BankingIsOneCopySerializable) {
  const ControllerKind kind = GetParam();
  BankingWorkload workload;
  auto schema = HierarchySchema::Create(workload.Spec());
  ASSERT_TRUE(schema.ok()) << schema.status();
  auto db = workload.MakeDatabase();
  LogicalClock clock;
  auto cc = CreateController(kind, db.get(), &clock, &*schema);

  ExecutorOptions options;
  options.num_threads = kThreads;
  options.seed = 2026;
  const ExecutorStats stats = RunWorkload(*cc, workload, 400, options);
  EXPECT_GT(stats.committed, 0u) << ControllerKindName(kind);

  ExpectOneCopySerializable(
      *cc, std::string(ControllerKindName(kind)) + "/banking");
}

TEST_P(ConcurrentOracleTest, SyntheticHierarchyIsOneCopySerializable) {
  const ControllerKind kind = GetParam();
  SyntheticWorkloadParams params;
  params.depth = 4;
  params.granules_per_segment = 16;
  params.upper_reads = 2;
  params.read_only_fraction = 0.2;
  SyntheticWorkload workload(params);
  auto schema = HierarchySchema::Create(workload.Spec());
  ASSERT_TRUE(schema.ok()) << schema.status();
  auto db = workload.MakeDatabase();
  LogicalClock clock;
  auto cc = CreateController(kind, db.get(), &clock, &*schema);

  ExecutorOptions options;
  options.num_threads = kThreads;
  options.seed = 4051;
  const ExecutorStats stats = RunWorkload(*cc, workload, 320, options);
  EXPECT_GT(stats.committed, 0u) << ControllerKindName(kind);

  ExpectOneCopySerializable(
      *cc, std::string(ControllerKindName(kind)) + "/synthetic");
}

INSTANTIATE_TEST_SUITE_P(
    Controllers, ConcurrentOracleTest,
    ::testing::Values(ControllerKind::kHdd, ControllerKind::kMvto,
                      ControllerKind::kTimestampOrdering,
                      ControllerKind::kTwoPhase, ControllerKind::kOcc,
                      ControllerKind::kSdd1, ControllerKind::kSerial),
    [](const ::testing::TestParamInfo<ControllerKind>& info) {
      std::string name(ControllerKindName(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// Runs the cross-segment-read-heavy synthetic workload on HDD and returns
// the controller (with its recorded schedule) plus the final database.
struct HddRun {
  std::unique_ptr<Database> db;
  std::unique_ptr<LogicalClock> clock;
  std::unique_ptr<ConcurrencyController> cc;
};

HddRun RunHddSynthetic(std::uint64_t seed) {
  SyntheticWorkloadParams params;
  params.depth = 5;
  params.granules_per_segment = 12;
  params.upper_reads = 3;
  params.read_only_fraction = 0.25;
  SyntheticWorkload workload(params);
  auto schema = HierarchySchema::Create(workload.Spec());
  EXPECT_TRUE(schema.ok()) << schema.status();

  HddRun run;
  run.db = workload.MakeDatabase();
  run.clock = std::make_unique<LogicalClock>();
  run.cc = CreateController(ControllerKind::kHdd, run.db.get(),
                            run.clock.get(), &*schema);
  ExecutorOptions options;
  options.num_threads = kThreads;
  options.seed = seed;
  const ExecutorStats stats = RunWorkload(*run.cc, workload, 500, options);
  EXPECT_EQ(stats.failed, 0u);
  return run;
}

// The tentpole's stability claim, checked end to end: a Protocol A or C
// read is served latch-free (A) or under an old wall (C) at a bound b and
// returns the latest committed version with wts < b *at read time*. The
// bound is constructed so that no transaction still running — or started
// later — can ever commit a version below it. Hence replaying b against
// the FINAL chains, after all concurrency is over, must find the very
// same version. (No GC runs here, so the final chains are complete.)
TEST(HddConcurrentCutTest, BoundReplayAgainstFinalChains) {
  HddRun run = RunHddSynthetic(7321);
  const auto steps = run.cc->recorder().steps();
  const auto identities = run.cc->recorder().identities();

  std::size_t replayed = 0;
  for (const Step& step : steps) {
    if (step.action != Step::Action::kRead) continue;
    if (step.bound == kTimestampMin) continue;  // Protocol B read
    const Granule& granule = run.db->granule(step.granule);
    const Version* v = granule.LatestCommittedBefore(step.bound);
    ASSERT_NE(v, nullptr)
        << "txn " << step.txn << " read under bound " << step.bound
        << " but the final chain has no committed version below it";
    EXPECT_EQ(v->order_key, step.version)
        << "txn " << step.txn << " at bound " << step.bound
        << ": a version committed below an already-served bound";
    // Protocol A bounds for update transactions never exceed I(t): the
    // activity link function composes OldestActiveAt values, each ≤ the
    // reader's own initiation time.
    const auto identity = identities.find(step.txn);
    ASSERT_NE(identity, identities.end());
    if (!identity->second.read_only) {
      EXPECT_LE(step.bound, identity->second.init_ts);
    }
    ++replayed;
  }
  // The workload is cross-segment-read-heavy; the oracle must actually
  // have exercised the unregistered-read paths.
  EXPECT_GT(replayed, 100u);
}

// Read-only transactions see a consistent cut: within one transaction all
// reads of a segment are served under ONE bound (per segment: the wall
// component for Protocol C, the stable activity-link value for hosted
// reads), and re-reading a granule yields the same version every time.
TEST(HddConcurrentCutTest, ReadOnlyTransactionsSeeAConsistentCut) {
  HddRun run = RunHddSynthetic(9173);
  const auto steps = run.cc->recorder().steps();
  const auto identities = run.cc->recorder().identities();

  std::map<std::pair<TxnId, SegmentId>, std::set<Timestamp>> bounds;
  std::map<std::pair<TxnId, std::uint64_t>, std::set<std::uint64_t>>
      versions_read;
  std::size_t read_only_reads = 0;
  for (const Step& step : steps) {
    if (step.action != Step::Action::kRead) continue;
    const auto identity = identities.find(step.txn);
    ASSERT_NE(identity, identities.end());
    if (!identity->second.read_only) continue;
    ++read_only_reads;
    EXPECT_NE(step.bound, kTimestampMin)
        << "read-only txn " << step.txn << " read without a recorded bound";
    bounds[{step.txn, step.granule.segment}].insert(step.bound);
    const std::uint64_t granule_key =
        (static_cast<std::uint64_t>(step.granule.segment) << 32) |
        step.granule.index;
    versions_read[{step.txn, granule_key}].insert(step.version);
  }
  EXPECT_GT(read_only_reads, 0u);
  for (const auto& [txn_segment, seen] : bounds) {
    EXPECT_EQ(seen.size(), 1u)
        << "read-only txn " << txn_segment.first << " used "
        << seen.size() << " distinct bounds in segment "
        << txn_segment.second << " — not a consistent cut";
  }
  for (const auto& [txn_granule, seen] : versions_read) {
    EXPECT_EQ(seen.size(), 1u)
        << "read-only txn " << txn_granule.first
        << " saw multiple versions of one granule";
  }
}

}  // namespace
}  // namespace hdd
