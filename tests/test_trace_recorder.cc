// Tests for the per-thread lock-free trace recorder (src/obs/trace.h):
// basic span/instant capture, ring wraparound accounting, drains racing
// live emitters across threads (the seqlock path — this test is part of
// the TSan suite's tier-1 sweep), and the compiled-out configuration.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace hdd {
namespace {

// Every test leaves the recorder disabled and empty for the next one
// (the recorder is process-wide static state).
class TraceRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::Disable();
    TraceRecorder::Reset();
  }
  void TearDown() override {
    TraceRecorder::Disable();
    TraceRecorder::Reset();
  }
};

TEST_F(TraceRecorderTest, DisabledEmitsNothing) {
  ASSERT_FALSE(TraceRecorder::enabled());
  {
    HDD_TRACE_SPAN("test", "ignored");
    HDD_TRACE_INSTANT("test", "also_ignored");
  }
  EXPECT_TRUE(TraceRecorder::Drain().empty());
  EXPECT_EQ(TraceRecorder::dropped(), 0u);
}

TEST_F(TraceRecorderTest, SpanAndInstantRoundTrip) {
  TraceRecorder::Enable();
  {
    HDD_TRACE_SPAN("cat", "span");
    HDD_TRACE_INSTANT("cat", "instant");
  }
  TraceRecorder::Disable();
  const std::vector<TraceEvent> events = TraceRecorder::Drain();
#if HDD_TRACE_ENABLED
  ASSERT_EQ(events.size(), 2u);
  // Drain sorts by start_ns; the instant fired inside the span.
  EXPECT_STREQ(events[0].name, "span");
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_STREQ(events[1].name, "instant");
  EXPECT_EQ(events[1].phase, 'i');
  EXPECT_EQ(events[1].dur_ns, 0u);
  EXPECT_GE(events[1].start_ns, events[0].start_ns);
  EXPECT_LE(events[1].start_ns, events[0].start_ns + events[0].dur_ns);
  EXPECT_GT(events[0].tid, 0u);
#else
  // cmake -DHDD_TRACE=OFF: the macros expand to nothing.
  EXPECT_TRUE(events.empty());
#endif
}

TEST_F(TraceRecorderTest, SampledSpanRecordsEveryNth) {
  TraceRecorder::Enable();
  for (int i = 0; i < 64; ++i) {
    HDD_TRACE_SPAN_SAMPLED("cat", "sampled", 16);
  }
  TraceRecorder::Disable();
#if HDD_TRACE_ENABLED
  EXPECT_EQ(TraceRecorder::Drain().size(), 64u / 16u);
#else
  EXPECT_TRUE(TraceRecorder::Drain().empty());
#endif
}

TEST_F(TraceRecorderTest, WraparoundKeepsNewestAndCountsDropped) {
  // Capacity only applies to rings created after the call, so emit from
  // a fresh thread (this test binary's main thread already owns a
  // default-capacity ring from earlier tests).
  TraceRecorder::SetBufferCapacity(64);
  TraceRecorder::Enable();
  constexpr std::uint64_t kEmitted = 1000;
  std::thread([] {
    for (std::uint64_t i = 0; i < kEmitted; ++i) {
      TraceRecorder::Emit("cat", "e", /*start_ns=*/i, /*dur_ns=*/1, 'X');
    }
  }).join();
  TraceRecorder::Disable();
  TraceRecorder::SetBufferCapacity(2048);  // restore the default
  // Direct Emit() calls bypass the compile-time macro gate, so this
  // holds in -DHDD_TRACE=OFF builds too.
  const std::vector<TraceEvent> events = TraceRecorder::Drain();
  ASSERT_EQ(events.size(), 64u);
  EXPECT_EQ(TraceRecorder::dropped(), kEmitted - 64u);
  // The ring overwrites oldest-first: the survivors are exactly the last
  // 64 emits, still in order.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].start_ns, kEmitted - 64u + i);
  }
}

TEST_F(TraceRecorderTest, CrossThreadDrainSeesEveryThread) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  TraceRecorder::Enable();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        HDD_TRACE_SPAN("mt", "work");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  TraceRecorder::Disable();
  const std::vector<TraceEvent> events = TraceRecorder::Drain();
#if HDD_TRACE_ENABLED
  // Exited threads' rings survive until Reset; nothing wrapped.
  ASSERT_EQ(events.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  std::set<std::uint32_t> tids;
  for (const TraceEvent& e : events) tids.insert(e.tid);
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
#else
  EXPECT_TRUE(events.empty());
#endif
}

TEST_F(TraceRecorderTest, DrainRacingLiveEmittersIsSafe) {
  // The seqlock contract: a drain concurrent with emitters returns only
  // intact slots and never blocks them. TSan runs this test too (the
  // stress label'd suite builds it); here we just assert no crash and
  // that drained events are well-formed.
  constexpr int kThreads = 4;
  TraceRecorder::SetBufferCapacity(64);  // force constant wrapping
  TraceRecorder::Enable();
  std::atomic<bool> stop{false};
  std::vector<std::thread> emitters;
  emitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    emitters.emplace_back([&stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        HDD_TRACE_SPAN("race", "spin");
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    for (const TraceEvent& e : TraceRecorder::Drain()) {
      ASSERT_NE(e.name, nullptr);
      ASSERT_STREQ(e.category, "race");
      ASSERT_EQ(e.phase, 'X');
    }
  }
  stop.store(true);
  for (std::thread& t : emitters) t.join();
  TraceRecorder::Disable();
  TraceRecorder::SetBufferCapacity(2048);  // restore the default
}

TEST_F(TraceRecorderTest, ChromeTraceExportIsWellFormed) {
  TraceRecorder::Enable();
  TraceRecorder::Emit("cat", "complete", 1000, 500, 'X');
  TraceRecorder::Emit("cat", "point", 2000, 0, 'i');
  TraceRecorder::Disable();
  std::ostringstream os;
  TraceRecorder::WriteChromeTrace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
#if HDD_TRACE_ENABLED
  EXPECT_NE(json.find("\"complete\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
#endif
}

TEST_F(TraceRecorderTest, ResetClearsEventsAndDropCounter) {
  TraceRecorder::SetBufferCapacity(64);
  TraceRecorder::Enable();
  std::thread([] {  // fresh thread so the 64-slot ring applies and wraps
    for (int i = 0; i < 200; ++i) TraceRecorder::Emit("cat", "e", i, 1, 'X');
  }).join();
  TraceRecorder::Disable();
  TraceRecorder::SetBufferCapacity(2048);  // restore the default
  EXPECT_GT(TraceRecorder::dropped(), 0u);  // direct Emit: holds in OFF too
  TraceRecorder::Reset();
  EXPECT_TRUE(TraceRecorder::Drain().empty());
  EXPECT_EQ(TraceRecorder::dropped(), 0u);
}

}  // namespace
}  // namespace hdd
