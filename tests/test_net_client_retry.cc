// RetryingClient: client-side half of admission control. Against a real
// loopback server in forced-shed mode it must honor kOverload's
// retry-after hint with capped exponential backoff, and it must
// transparently reconnect and resend when the peer drops the connection.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/loopback.h"
#include "net/server.h"
#include "obs/metrics_registry.h"

namespace hdd {
namespace {

class ClientRetryTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options) {
    SyntheticWorkloadParams params;
    world_ = MakeServerWorld(ControllerKind::kHdd, params);
    ASSERT_NE(world_, nullptr);
    options.num_classes = params.depth;
    server_ =
        std::make_unique<HddServer>(world_->cc.get(), options, &metrics_);
    const Status status = server_->Start();
    ASSERT_TRUE(status.ok()) << status;
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  static RequestMsg Submit(std::uint64_t id, ClassId cls,
                           std::vector<WireOp> ops) {
    RequestMsg msg;
    msg.type = NetMsgType::kSubmit;
    msg.submit.request_id = id;
    msg.submit.txn_class = cls;
    msg.submit.ops = std::move(ops);
    return msg;
  }

  MetricsRegistry metrics_;
  std::unique_ptr<ServerWorld> world_;
  std::unique_ptr<HddServer> server_;
};

TEST_F(ClientRetryTest, RetriesThroughForcedShedUntilAdmitted) {
  // Forced-shed mode: workers paused and a tiny inflight cap, so real
  // kOverload responses are deterministic (no timing races). One filler
  // request occupies the whole cap.
  ServerOptions options;
  options.test_pause_workers = std::make_shared<std::atomic<bool>>(true);
  options.admission.total_inflight_cap = 1;
  options.admission.default_update = ClassPolicy{.weight = 8,
                                                 .inflight_cap = 1};
  StartServer(options);

  SyncClient filler;
  ASSERT_TRUE(filler.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(
      filler.Send(Submit(1, 0, {{WireOp::Kind::kWrite, {0, 0}, 7}})).ok());
  // The filler is admitted (never answered while paused); everything else
  // bounces with kOverload. Poll with a plain client until the admission
  // decision is visible, then aim the retrying client at the wall.
  SyncClient probe;
  ASSERT_TRUE(probe.Connect("127.0.0.1", server_->port()).ok());
  for (int i = 0; i < 200; ++i) {
    const Result<ResponseMsg> r = probe.Call(
        Submit(100 + static_cast<std::uint64_t>(i), 0,
               {{WireOp::Kind::kRead, {0, 0}, 0}}));
    ASSERT_TRUE(r.ok()) << r.status();
    if (r->type == NetMsgType::kOverload) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_LT(i, 199) << "forced shed never engaged";
  }

  RetryPolicy policy;
  policy.max_attempts = 64;
  policy.base_backoff_ms = 1;
  policy.max_backoff_ms = 20;
  RetryingClient client(policy);
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());

  // Unpause shortly after the retry loop has eaten a few overloads; the
  // filler then drains, the cap frees, and a retry lands.
  std::thread unpause([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    options.test_pause_workers->store(false);
  });
  const Result<ResponseMsg> result =
      client.Call(Submit(2, 0, {{WireOp::Kind::kWrite, {0, 1}, 9}}));
  unpause.join();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->type, NetMsgType::kResult);
  EXPECT_TRUE(result->committed);
  EXPECT_GT(client.stats().overload_retries, 0u);
  EXPECT_GE(client.stats().attempts, 2u);

  const Result<ResponseMsg> fill = filler.Recv();
  ASSERT_TRUE(fill.ok()) << fill.status();
  EXPECT_EQ(fill->type, NetMsgType::kResult);
}

TEST_F(ClientRetryTest, BudgetExhaustedReturnsLastOverload) {
  ServerOptions options;
  options.test_pause_workers = std::make_shared<std::atomic<bool>>(true);
  options.admission.total_inflight_cap = 1;
  options.admission.default_update = ClassPolicy{.weight = 8,
                                                 .inflight_cap = 1};
  StartServer(options);

  SyncClient filler;
  ASSERT_TRUE(filler.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(
      filler.Send(Submit(1, 0, {{WireOp::Kind::kWrite, {0, 0}, 7}})).ok());
  SyncClient probe;
  ASSERT_TRUE(probe.Connect("127.0.0.1", server_->port()).ok());
  for (int i = 0; i < 200; ++i) {
    const Result<ResponseMsg> r = probe.Call(
        Submit(100 + static_cast<std::uint64_t>(i), 0,
               {{WireOp::Kind::kRead, {0, 0}, 0}}));
    ASSERT_TRUE(r.ok()) << r.status();
    if (r->type == NetMsgType::kOverload) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff_ms = 1;
  policy.max_backoff_ms = 2;
  RetryingClient client(policy);
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  const Result<ResponseMsg> result =
      client.Call(Submit(2, 0, {{WireOp::Kind::kWrite, {0, 1}, 9}}));
  // The wall never moves: the budget ends ON an overload, which is
  // returned (with its hint) rather than swallowed.
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->type, NetMsgType::kOverload);
  EXPECT_EQ(client.stats().attempts, 3u);
  EXPECT_EQ(client.stats().overload_retries, 2u);

  // Let the worker drain the filler so Stop() does not wait on it.
  options.test_pause_workers->store(false);
  const Result<ResponseMsg> fill = filler.Recv();
  ASSERT_TRUE(fill.ok()) << fill.status();
}

TEST_F(ClientRetryTest, ReconnectsAfterPeerCloseAndResends) {
  StartServer(ServerOptions{});

  RetryingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  const Result<ResponseMsg> first =
      client.Call(Submit(1, 0, {{WireOp::Kind::kWrite, {0, 0}, 11}}));
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_TRUE(first->committed);
  EXPECT_EQ(client.stats().reconnects, 0u);

  // Kill the stream: hostile bytes that cannot be a valid frame make the
  // server drop the connection.
  const std::string garbage(64, '\xff');
  ASSERT_GT(write(client.sync().fd(), garbage.data(), garbage.size()), 0);

  // The next call first finds the dead socket (send may still succeed
  // into the kernel buffer, but the response read hits EOF), reconnects
  // and resends — the caller never sees the hiccup.
  const Result<ResponseMsg> second =
      client.Call(Submit(2, 0, {{WireOp::Kind::kRead, {0, 0}, 0}}));
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->type, NetMsgType::kResult);
  EXPECT_TRUE(second->committed);
  ASSERT_EQ(second->values.size(), 1u);
  EXPECT_EQ(second->values[0], 11);
  EXPECT_EQ(client.stats().reconnects, 1u);
}

TEST_F(ClientRetryTest, NoReconnectPolicySurfacesTransportError) {
  StartServer(ServerOptions{});
  RetryPolicy policy;
  policy.reconnect = false;
  RetryingClient client(policy);
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  const std::string garbage(64, '\xff');
  ASSERT_GT(write(client.sync().fd(), garbage.data(), garbage.size()), 0);
  const Result<ResponseMsg> result =
      client.Call(Submit(1, 0, {{WireOp::Kind::kRead, {0, 0}, 0}}));
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(client.connected());
  EXPECT_EQ(client.stats().reconnects, 0u);
}

}  // namespace
}  // namespace hdd
