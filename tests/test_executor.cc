// Unit tests for the executor's latency accounting: per-thread reservoir
// sampling (Vitter's algorithm R) and the weighted merge that turns the
// per-thread reservoirs into workload-level percentiles.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "engine/executor.h"

namespace hdd {
namespace {

TEST(LatencyReservoirTest, KeepsEverythingBelowCapacity) {
  LatencyReservoir r(/*capacity=*/8, /*seed=*/3);
  for (double v : {5.0, 1.0, 9.0, 2.0, 7.0}) r.Add(v);
  EXPECT_EQ(r.count(), 5u);
  EXPECT_EQ(r.samples().size(), 5u);
  EXPECT_DOUBLE_EQ(r.max_us(), 9.0);
}

TEST(LatencyReservoirTest, SampleSizeStaysBounded) {
  LatencyReservoir r(/*capacity=*/64, /*seed=*/11);
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    r.Add(static_cast<double>(rng.NextBounded(1000)));
  }
  EXPECT_EQ(r.count(), 10000u);
  EXPECT_EQ(r.samples().size(), 64u);
}

TEST(LatencyReservoirTest, DeterministicPerSeed) {
  LatencyReservoir a(/*capacity=*/32, /*seed=*/7);
  LatencyReservoir b(/*capacity=*/32, /*seed=*/7);
  LatencyReservoir c(/*capacity=*/32, /*seed=*/8);
  for (int i = 0; i < 5000; ++i) {
    const double v = static_cast<double>(i % 997);
    a.Add(v);
    b.Add(v);
    c.Add(v);
  }
  EXPECT_EQ(a.samples(), b.samples());
  // Different seed, same stream: counts and max agree, the retained
  // sample (almost surely) does not.
  EXPECT_EQ(a.count(), c.count());
  EXPECT_DOUBLE_EQ(a.max_us(), c.max_us());
  EXPECT_NE(a.samples(), c.samples());
}

TEST(LatencyReservoirTest, MaxIsExactEvenWhenEvictedFromSample) {
  // With capacity 2 the maximum is very likely dropped from the sample at
  // some point; max_us() must still report it exactly.
  LatencyReservoir r(/*capacity=*/2, /*seed=*/5);
  for (int i = 1; i <= 1000; ++i) r.Add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(r.max_us(), 1000.0);
  for (double v : r.samples()) EXPECT_LE(v, 1000.0);
}

TEST(MergeReservoirsTest, EmptyPartsYieldZeroDigest) {
  const LatencyDigest empty = MergeReservoirs({});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.p50_us, 0.0);
  EXPECT_DOUBLE_EQ(empty.max_us, 0.0);

  std::vector<LatencyReservoir> parts;
  parts.emplace_back(16, 1);
  const LatencyDigest still_empty = MergeReservoirs(parts);
  EXPECT_EQ(still_empty.count, 0u);
}

TEST(MergeReservoirsTest, ExactPercentilesWhenNothingWasSampledOut) {
  // 900 fast + 100 slow observations, all retained (capacity is large):
  // p50 lands in the fast mass, p95 and p99 in the slow tail.
  std::vector<LatencyReservoir> parts;
  parts.emplace_back(4096, 1);
  parts.emplace_back(4096, 2);
  for (int i = 0; i < 900; ++i) parts[0].Add(10.0);
  for (int i = 0; i < 100; ++i) parts[1].Add(1000.0);

  const LatencyDigest digest = MergeReservoirs(parts);
  EXPECT_EQ(digest.count, 1000u);
  EXPECT_DOUBLE_EQ(digest.p50_us, 10.0);
  EXPECT_DOUBLE_EQ(digest.p95_us, 1000.0);
  EXPECT_DOUBLE_EQ(digest.p99_us, 1000.0);
  EXPECT_DOUBLE_EQ(digest.max_us, 1000.0);
}

TEST(MergeReservoirsTest, BusyThreadsOutweighIdleOnes) {
  // Thread A saw 1000 observations of 5µs but retains only 4 samples;
  // thread B saw 4 observations of 100µs and retains all of them. Plain
  // concatenation would put the median between the two populations;
  // weighting each retained sample by count/size keeps the percentiles
  // with the busy thread, and only the exact max reflects the idle one.
  std::vector<LatencyReservoir> parts;
  parts.emplace_back(4, 1);
  parts.emplace_back(4, 2);
  for (int i = 0; i < 1000; ++i) parts[0].Add(5.0);
  for (int i = 0; i < 4; ++i) parts[1].Add(100.0);

  const LatencyDigest digest = MergeReservoirs(parts);
  EXPECT_EQ(digest.count, 1004u);
  EXPECT_DOUBLE_EQ(digest.p50_us, 5.0);
  EXPECT_DOUBLE_EQ(digest.p99_us, 5.0);  // 0.99 * 1004 < weight of the 5s
  EXPECT_DOUBLE_EQ(digest.max_us, 100.0);
}

TEST(MergeReservoirsTest, PercentilesAreMonotone) {
  std::vector<LatencyReservoir> parts;
  for (std::uint64_t t = 0; t < 4; ++t) parts.emplace_back(128, t + 1);
  Rng rng(99);
  for (int i = 0; i < 20000; ++i) {
    parts[i % 4].Add(static_cast<double>(rng.NextBounded(100000)) / 7.0);
  }
  const LatencyDigest digest = MergeReservoirs(parts);
  EXPECT_EQ(digest.count, 20000u);
  EXPECT_GT(digest.p50_us, 0.0);
  EXPECT_LE(digest.p50_us, digest.p95_us);
  EXPECT_LE(digest.p95_us, digest.p99_us);
  EXPECT_LE(digest.p99_us, digest.max_us);
}

}  // namespace
}  // namespace hdd
