#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "common/rng.h"
#include "hdd/link_functions.h"

namespace hdd {
namespace {

// A transaction for relation-checking purposes: class + initiation time.
struct RelTxn {
  ClassId cls;
  Timestamp init;
};

// The paper's §4.3 relation "t1 topologically follows t2" (Figure 7),
// defined for transactions whose classes lie on one critical path:
//   (1) same class:        I(t1) >  I(t2)
//   (2) t1's class higher: I(t1) >= A_{cls2}^{cls1}(I(t2))
//   (3) t2's class higher: A_{cls1}^{cls2}(I(t1)) > I(t2)
// Returns nullopt when the classes are not on one critical path (the
// relation is undefined there).
std::optional<bool> TopoFollows(const ActivityLinkEvaluator& eval,
                                const TstAnalysis& tst, const RelTxn& t1,
                                const RelTxn& t2) {
  if (t1.cls == t2.cls) return t1.init > t2.init;
  if (tst.Higher(t1.cls, t2.cls)) {
    auto a = eval.A(t2.cls, t1.cls, t2.init);
    EXPECT_TRUE(a.ok());
    return t1.init >= *a;
  }
  if (tst.Higher(t2.cls, t1.cls)) {
    auto a = eval.A(t1.cls, t2.cls, t1.init);
    EXPECT_TRUE(a.ok());
    return *a > t2.init;
  }
  return std::nullopt;
}

class TopoFollowsTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  // Builds a chain THG of `n` classes (class n-1 lowest) with random
  // finished activity, and collects every transaction.
  void BuildRandom(int n, Rng& rng) {
    Digraph g(n);
    for (int c = n - 1; c > 0; --c) g.AddArc(c, c - 1);
    auto tst = TstAnalysis::Create(g);
    ASSERT_TRUE(tst.ok());
    tst_ = std::make_unique<TstAnalysis>(std::move(tst).value());
    tables_.clear();
    tables_.resize(n);
    eval_ = std::make_unique<ActivityLinkEvaluator>(tst_.get(), &tables_);
    txns_.clear();
    Timestamp now = 1;
    for (int c = 0; c < n; ++c) {
      std::vector<Timestamp> open;
      const int events = static_cast<int>(rng.NextInRange(2, 16));
      for (int e = 0; e < events; ++e) {
        if (!open.empty() && rng.NextBool(0.5)) {
          const std::size_t pick = rng.NextBounded(open.size());
          tables_[c].OnFinish(open[pick], ++now);
          open.erase(open.begin() + static_cast<long>(pick));
        } else {
          tables_[c].OnBegin(++now);
          open.push_back(now);
          txns_.push_back({c, now});
        }
      }
      for (Timestamp t : open) tables_[c].OnFinish(t, ++now);
    }
  }

  std::unique_ptr<TstAnalysis> tst_;
  std::vector<ClassActivityTable> tables_;
  std::unique_ptr<ActivityLinkEvaluator> eval_;
  std::vector<RelTxn> txns_;
};

// Property 1.1: the relation is anti-symmetric.
TEST_P(TopoFollowsTest, AntiSymmetric) {
  Rng rng(GetParam());
  BuildRandom(static_cast<int>(rng.NextInRange(2, 5)), rng);
  for (const RelTxn& t1 : txns_) {
    for (const RelTxn& t2 : txns_) {
      if (t1.init == t2.init) continue;
      auto fwd = TopoFollows(*eval_, *tst_, t1, t2);
      auto bwd = TopoFollows(*eval_, *tst_, t2, t1);
      if (!fwd.has_value() || !bwd.has_value()) continue;
      EXPECT_FALSE(*fwd && *bwd)
          << "both t(" << t1.cls << "," << t1.init << ") => t(" << t2.cls
          << "," << t2.init << ") and the converse hold";
    }
  }
}

// Property 1.2: critical-path transitivity.
TEST_P(TopoFollowsTest, CriticalPathTransitive) {
  Rng rng(GetParam() + 1000);
  BuildRandom(static_cast<int>(rng.NextInRange(2, 4)), rng);
  for (const RelTxn& t1 : txns_) {
    for (const RelTxn& t2 : txns_) {
      for (const RelTxn& t3 : txns_) {
        auto r12 = TopoFollows(*eval_, *tst_, t1, t2);
        auto r23 = TopoFollows(*eval_, *tst_, t2, t3);
        auto r13 = TopoFollows(*eval_, *tst_, t1, t3);
        if (!r12.has_value() || !r23.has_value() || !r13.has_value()) {
          continue;  // chain classes are on one critical path by design
        }
        if (t1.init == t2.init || t2.init == t3.init ||
            t1.init == t3.init) {
          continue;
        }
        if (*r12 && *r23) {
          EXPECT_TRUE(*r13)
              << "transitivity broken for (" << t1.cls << "," << t1.init
              << ") => (" << t2.cls << "," << t2.init << ") => (" << t3.cls
              << "," << t3.init << ")";
        }
      }
    }
  }
}

// On a critical path the relation is also total across distinct txns:
// either t1 => t2 or t2 => t1 (Figure 7's trichotomy).
TEST_P(TopoFollowsTest, TotalOnCriticalPath) {
  Rng rng(GetParam() + 2000);
  BuildRandom(3, rng);
  for (const RelTxn& t1 : txns_) {
    for (const RelTxn& t2 : txns_) {
      if (t1.init == t2.init) continue;
      auto fwd = TopoFollows(*eval_, *tst_, t1, t2);
      auto bwd = TopoFollows(*eval_, *tst_, t2, t1);
      ASSERT_TRUE(fwd.has_value() && bwd.has_value());
      EXPECT_TRUE(*fwd || *bwd);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopoFollowsTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u, 55u, 89u));

}  // namespace
}  // namespace hdd
