// Socket deployment smoke: the sharded hierarchy served by REAL
// processes over real TCP. Two tests:
//
//  * TwoProcessDeploymentServesClients execs the actual `hdd_server
//    --shard` binary twice (one process per shard node), drives updates
//    at each class's home front end plus a cross-shard read-only
//    transaction, and demands a clean SIGTERM shutdown (the binary
//    itself exits non-zero on a degraded clock or a leaked transport fd).
//  * InProcessPairLeaksNoFds runs two ShardServers inside this process —
//    still real sockets on loopback — so the zero-fd-leak assert can
//    inspect /proc/self/fd directly across Start/traffic/Stop.

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "dist/shard_server.h"
#include "net/client.h"
#include "net/protocol.h"

namespace hdd {
namespace {

int CountOpenFds() {
  int count = 0;
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  while (readdir(dir) != nullptr) ++count;
  closedir(dir);
  return count;
}

/// Reserves a likely-free loopback port: bind port 0, read the assignment
/// back, close. The tiny race until the server rebinds it is acceptable
/// for a smoke test (a collision fails loudly at Start, not silently).
std::uint16_t PickFreePort() {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return 0;
  }
  socklen_t len = sizeof(addr);
  getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  close(fd);
  return ntohs(addr.sin_port);
}

RequestMsg Submit(std::uint64_t id, ClassId cls, std::vector<WireOp> ops) {
  RequestMsg msg;
  msg.type = NetMsgType::kSubmit;
  msg.submit.request_id = id;
  msg.submit.txn_class = cls;
  msg.submit.ops = std::move(ops);
  return msg;
}

RequestMsg ReadOnly(std::uint64_t id, std::vector<SegmentId> scope,
                    std::vector<WireOp> ops) {
  RequestMsg msg;
  msg.type = NetMsgType::kSubmit;
  msg.submit.request_id = id;
  msg.submit.read_only = true;
  msg.submit.read_scope = std::move(scope);
  msg.submit.ops = std::move(ops);
  return msg;
}

/// The traffic both deployments must serve. Depth 4 over 2 nodes splits
/// classes {0,1} to node 0 and {2,3} to node 1.
void DriveTraffic(std::uint16_t front0, std::uint16_t front1) {
  SyncClient node0;
  SyncClient node1;
  ASSERT_TRUE(node0.Connect("127.0.0.1", front0).ok());
  ASSERT_TRUE(node1.Connect("127.0.0.1", front1).ok());

  // Update at each home: class 0 at node 0, class 3 at node 1. Class 3's
  // upper reads of segments 0..2 cross the shard boundary (slices +
  // snapshots from node 0), and its own writes stay in node 1's chains.
  Result<ResponseMsg> r =
      node0.Call(Submit(1, 0, {{WireOp::Kind::kWrite, {0, 0}, 11}}));
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->type, NetMsgType::kResult);
  EXPECT_TRUE(r->committed);

  r = node1.Call(Submit(2, 3,
                        {{WireOp::Kind::kRead, {0, 0}, 0},
                         {WireOp::Kind::kRead, {1, 0}, 0},
                         {WireOp::Kind::kRead, {2, 0}, 0},
                         {WireOp::Kind::kWrite, {3, 0}, 22}}));
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->type, NetMsgType::kResult);
  EXPECT_TRUE(r->committed);
  ASSERT_EQ(r->values.size(), 3u);
  EXPECT_EQ(r->values[0], 11);  // the cross-shard bounded read sees it

  // A mis-routed update must fail, never execute against a stand-in.
  r = node0.Call(Submit(3, 3, {{WireOp::Kind::kWrite, {3, 1}, 99}}));
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->type, NetMsgType::kResult);
  EXPECT_FALSE(r->committed);

  // Cross-shard read-only at node 0: scope spans both shards, so the
  // hosted bounds are evaluated from shipped slices and the reads of
  // segments 2..3 come out of node 1's shipped chains.
  r = node0.Call(ReadOnly(4, {0, 1, 2, 3},
                          {{WireOp::Kind::kRead, {0, 0}, 0},
                           {WireOp::Kind::kRead, {3, 0}, 0}}));
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->type, NetMsgType::kResult);
  EXPECT_TRUE(r->committed);
  ASSERT_EQ(r->values.size(), 2u);
  EXPECT_EQ(r->values[0], 11);
  EXPECT_EQ(r->values[1], 22);
}

#ifdef HDD_SERVER_BIN

struct ShardProc {
  pid_t pid = -1;
  FILE* out = nullptr;
  std::uint16_t front_port = 0;
};

/// fork+exec one `hdd_server --shard=I` process; parses the front-end
/// port from its banner line.
bool SpawnShard(int node, const std::string& peers, ShardProc* proc) {
  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) return false;
  const pid_t pid = fork();
  if (pid < 0) {
    close(pipe_fds[0]);
    close(pipe_fds[1]);
    return false;
  }
  if (pid == 0) {
    dup2(pipe_fds[1], STDOUT_FILENO);
    close(pipe_fds[0]);
    close(pipe_fds[1]);
    const std::string shard = "--shard=" + std::to_string(node);
    const std::string peer_flag = "--shard_peers=" + peers;
    execl(HDD_SERVER_BIN, HDD_SERVER_BIN, shard.c_str(), peer_flag.c_str(),
          "--port=0", "--depth=4", "--granules=8", "--workers=2",
          static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }
  close(pipe_fds[1]);
  proc->pid = pid;
  proc->out = fdopen(pipe_fds[0], "r");
  if (proc->out == nullptr) return false;
  char line[256];
  if (fgets(line, sizeof(line), proc->out) == nullptr) return false;
  const char* marker = std::strstr(line, "127.0.0.1:");
  if (marker == nullptr) return false;
  proc->front_port = static_cast<std::uint16_t>(
      std::strtoul(marker + std::strlen("127.0.0.1:"), nullptr, 10));
  return proc->front_port != 0;
}

TEST(DistSocket, TwoProcessDeploymentServesClients) {
  const std::uint16_t dist0 = PickFreePort();
  const std::uint16_t dist1 = PickFreePort();
  ASSERT_NE(dist0, 0);
  ASSERT_NE(dist1, 0);
  ASSERT_NE(dist0, dist1);
  const std::string peers =
      std::to_string(dist0) + "," + std::to_string(dist1);

  ShardProc shard0, shard1;
  ASSERT_TRUE(SpawnShard(0, peers, &shard0)) << "shard 0 failed to start";
  ASSERT_TRUE(SpawnShard(1, peers, &shard1)) << "shard 1 failed to start";

  DriveTraffic(shard0.front_port, shard1.front_port);

  // Graceful shutdown: the binary exits non-zero on a degraded remote
  // clock or a leaked transport fd, so the exit codes ARE the asserts.
  kill(shard0.pid, SIGTERM);
  kill(shard1.pid, SIGTERM);
  int status0 = 0, status1 = 0;
  ASSERT_EQ(waitpid(shard0.pid, &status0, 0), shard0.pid);
  ASSERT_EQ(waitpid(shard1.pid, &status1, 0), shard1.pid);
  fclose(shard0.out);
  fclose(shard1.out);
  EXPECT_TRUE(WIFEXITED(status0) && WEXITSTATUS(status0) == 0)
      << "shard 0 exit status " << status0;
  EXPECT_TRUE(WIFEXITED(status1) && WEXITSTATUS(status1) == 0)
      << "shard 1 exit status " << status1;
}

#endif  // HDD_SERVER_BIN

TEST(DistSocket, InProcessPairLeaksNoFds) {
  const int before = CountOpenFds();
  ASSERT_GT(before, 0);
  {
    const std::uint16_t dist0 = PickFreePort();
    const std::uint16_t dist1 = PickFreePort();
    ASSERT_NE(dist0, 0);
    ASSERT_NE(dist1, 0);
    ASSERT_NE(dist0, dist1);
    const std::vector<SocketPeer> peers = {{"", dist0}, {"", dist1}};

    ShardServerOptions options0;
    options0.node_id = 0;
    options0.peers = peers;
    options0.depth = 4;
    options0.granules_per_segment = 8;
    ShardServerOptions options1 = options0;
    options1.node_id = 1;

    ShardServer node0(options0);
    ShardServer node1(options1);
    ASSERT_EQ(node0.init_error(), "");
    ASSERT_EQ(node1.init_error(), "");
    ASSERT_TRUE(node0.Start().ok());
    ASSERT_TRUE(node1.Start().ok());

    DriveTraffic(node0.front_port(), node1.front_port());
    // The cross-shard traffic above went over real sockets.
    EXPECT_GT(node1.transport().counters().total(), 0u);
    EXPECT_EQ(node1.transport().counters().registration_messages(), 0u);

    EXPECT_TRUE(node0.Stop().ok());
    EXPECT_TRUE(node1.Stop().ok());
    EXPECT_EQ(node0.transport_open_fds(), 0);
    EXPECT_EQ(node1.transport_open_fds(), 0);
  }
  EXPECT_EQ(CountOpenFds(), before);
}

}  // namespace
}  // namespace hdd
